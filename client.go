package tuplex

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a tuplex-serve daemon's /v1/jobs API. The zero value
// is unusable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:5005").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// Job is one submitted pipeline's lifecycle record, as reported by the
// service: queued → running → done | failed | canceled.
type Job struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`

	SubmittedAt time.Time `json:"submitted_at"`
	DurationNS  int64     `json:"duration_ns"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// JobResult is a finished job's output: rows for collect/take sinks
// (possibly truncated by the server's row cap), rendered CSV or its
// output path for csv sinks, the accumulator for aggregate sinks.
type JobResult struct {
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	Value     any      `json:"value,omitempty"`
	CSV       string   `json:"csv,omitempty"`
	CSVPath   string   `json:"csv_path,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`

	InputRows  int64 `json:"input_rows"`
	OutputRows int64 `json:"output_rows"`
	FailedRows int64 `json:"failed_rows"`
}

// ServiceError is a non-OK answer from the daemon. StatusCode
// distinguishes admission rejections (429 over capacity, 413 over
// budget, 503 draining) from job failures (500) and bad requests (400).
type ServiceError struct {
	StatusCode int
	Message    string
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("tuplex service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Submit runs the plan synchronously: it returns once the job reaches a
// terminal state, with the result inline. A failed or canceled job
// returns both the Job record and a *ServiceError.
func (c *Client) Submit(ctx context.Context, p *Plan) (*Job, error) {
	return c.submit(ctx, p, false)
}

// SubmitAsync enqueues the plan and returns immediately with the job id
// (HTTP 202); poll with Job until Done.
func (c *Client) SubmitAsync(ctx context.Context, p *Plan) (*Job, error) {
	return c.submit(ctx, p, true)
}

func (c *Client) submit(ctx context.Context, p *Plan, async bool) (*Job, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	url := c.base + "/v1/jobs"
	if async {
		url += "?wait=false"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

// Job fetches one job's current state by id.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Jobs lists every job the daemon knows about (live plus the retained
// finished ring), without result payloads.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp.StatusCode, raw)
	}
	var listing struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		return nil, fmt.Errorf("tuplex service: decoding listing: %w", err)
	}
	return listing.Jobs, nil
}

// Cancel requests cancellation of a running job and returns its state
// afterwards (a finished job is unaffected and reports its terminal
// state).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Wait polls a job until it reaches a terminal state (use after
// SubmitAsync). The poll interval backs off from 5ms to 250ms; ctx
// bounds the overall wait.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	delay := 5 * time.Millisecond
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Done() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, context.Cause(ctx)
		case <-time.After(delay):
		}
		if delay < 250*time.Millisecond {
			delay *= 2
		}
	}
}

// do executes a request whose successful answers carry a Job document.
// Answers that carry a job alongside an error status (failed/canceled
// jobs) return both.
func (c *Client) do(req *http.Request) (*Job, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("tuplex service: decoding job: %w", err)
		}
		return &j, nil
	case http.StatusInternalServerError, http.StatusGatewayTimeout:
		// The body is still a job document for sync submissions that
		// failed or were canceled.
		var j Job
		if err := json.Unmarshal(raw, &j); err == nil && j.ID != "" {
			return &j, decodeError(resp.StatusCode, raw)
		}
		return nil, decodeError(resp.StatusCode, raw)
	default:
		return nil, decodeError(resp.StatusCode, raw)
	}
}

func decodeError(code int, raw []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &e); err == nil && e.Error != "" {
		msg = e.Error
	} else {
		var j Job
		if err := json.Unmarshal(raw, &j); err == nil && j.Error != "" {
			msg = j.Error
		}
	}
	return &ServiceError{StatusCode: code, Message: msg}
}
