package tuplex

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a tuplex-serve daemon's /v1/jobs API. The zero value
// is unusable; construct with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:5005").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// Job is one submitted pipeline's lifecycle record, as reported by the
// service: queued → running → done | failed | canceled.
type Job struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`
	// TraceID is the correlation id threading this job through the
	// service's logs, metrics exemplars and exported trace — the id the
	// client sent (SubmitTraced) or a server-generated one.
	TraceID string `json:"trace_id,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	DurationNS  int64     `json:"duration_ns"`

	Error string `json:"error,omitempty"`
	// Events is the service flight recorder's tail for this job,
	// attached automatically when the job failed.
	Events []JobEvent `json:"events,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// JobEvent is one service lifecycle event (admit, compile, cache_hit,
// execute, done, failed, ...) from the daemon's flight recorder.
type JobEvent struct {
	// AtNS is the event time in nanoseconds since the daemon started.
	AtNS int64 `json:"at_ns"`
	// Kind names the lifecycle step.
	Kind string `json:"kind"`
	// Job / TraceID tie the event to a submission.
	Job     string `json:"job,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// DurNS carries the step's duration where one applies (queue wait
	// for admit, end-to-end latency for done/failed).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Detail is a short qualifier (shed reason, error class).
	Detail string `json:"detail,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (j *Job) Done() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// JobResult is a finished job's output: rows for collect/take sinks
// (possibly truncated by the server's row cap), rendered CSV or its
// output path for csv sinks, the accumulator for aggregate sinks.
type JobResult struct {
	Columns   []string `json:"columns,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	Value     any      `json:"value,omitempty"`
	CSV       string   `json:"csv,omitempty"`
	CSVPath   string   `json:"csv_path,omitempty"`
	Truncated bool     `json:"truncated,omitempty"`

	InputRows  int64 `json:"input_rows"`
	OutputRows int64 `json:"output_rows"`
	FailedRows int64 `json:"failed_rows"`
}

// ServiceError is a non-OK answer from the daemon. StatusCode
// distinguishes admission rejections (429 over capacity, 413 over
// budget, 503 draining) from job failures (500) and bad requests (400).
type ServiceError struct {
	StatusCode int
	Message    string
}

func (e *ServiceError) Error() string {
	return fmt.Sprintf("tuplex service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Submit runs the plan synchronously: it returns once the job reaches a
// terminal state, with the result inline. A failed or canceled job
// returns both the Job record and a *ServiceError. Every submission
// carries a generated trace id (X-Tuplex-Trace) so the job can be
// followed through the daemon's metrics and exported trace; use
// SubmitTraced to thread your own.
func (c *Client) Submit(ctx context.Context, p *Plan) (*Job, error) {
	return c.submit(ctx, p, false, "")
}

// SubmitTraced is Submit with a caller-chosen trace id (letters,
// digits, "-", "_", "." — up to 64 chars; anything else is replaced by
// a server-generated id).
func (c *Client) SubmitTraced(ctx context.Context, p *Plan, traceID string) (*Job, error) {
	return c.submit(ctx, p, false, traceID)
}

// SubmitAsync enqueues the plan and returns immediately with the job id
// (HTTP 202); poll with Job until Done.
func (c *Client) SubmitAsync(ctx context.Context, p *Plan) (*Job, error) {
	return c.submit(ctx, p, true, "")
}

func (c *Client) submit(ctx context.Context, p *Plan, async bool, traceID string) (*Job, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	url := c.base + "/v1/jobs"
	if async {
		url += "?wait=false"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID == "" {
		traceID = newClientTraceID()
	}
	req.Header.Set("X-Tuplex-Trace", traceID)
	return c.do(req)
}

// Trace fetches a finished job's span tree: the service-side phases
// (admission queue wait, plan-cache lookup) with the engine's own spans
// — stages, tasks, routing ledger — nested beneath them.
func (c *Client) Trace(ctx context.Context, id string) (*Trace, error) {
	raw, err := c.traceRaw(ctx, id, "native")
	if err != nil {
		return nil, err
	}
	return ParseTrace(raw)
}

// TraceChrome fetches a finished job's trace as a Chrome trace-event
// JSON document, ready to drop into chrome://tracing or
// https://ui.perfetto.dev.
func (c *Client) TraceChrome(ctx context.Context, id string) ([]byte, error) {
	return c.traceRaw(ctx, id, "chrome")
}

func (c *Client) traceRaw(ctx context.Context, id, format string) ([]byte, error) {
	url := c.base + "/v1/jobs/" + id + "/trace?format=" + format
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp.StatusCode, raw)
	}
	return raw, nil
}

// newClientTraceID generates a 16-hex-char submission trace id.
func newClientTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// Job fetches one job's current state by id.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Jobs lists every job the daemon knows about (live plus the retained
// finished ring), without result payloads.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp.StatusCode, raw)
	}
	var listing struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		return nil, fmt.Errorf("tuplex service: decoding listing: %w", err)
	}
	return listing.Jobs, nil
}

// Cancel requests cancellation of a running job and returns its state
// afterwards (a finished job is unaffected and reports its terminal
// state).
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// Wait polls a job until it reaches a terminal state (use after
// SubmitAsync). The poll interval backs off from 5ms to 250ms; ctx
// bounds the overall wait.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	delay := 5 * time.Millisecond
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Done() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, context.Cause(ctx)
		case <-time.After(delay):
		}
		if delay < 250*time.Millisecond {
			delay *= 2
		}
	}
}

// do executes a request whose successful answers carry a Job document.
// Answers that carry a job alongside an error status (failed/canceled
// jobs) return both.
func (c *Client) do(req *http.Request) (*Job, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		var j Job
		if err := json.Unmarshal(raw, &j); err != nil {
			return nil, fmt.Errorf("tuplex service: decoding job: %w", err)
		}
		return &j, nil
	case http.StatusInternalServerError, http.StatusGatewayTimeout:
		// The body is still a job document for sync submissions that
		// failed or were canceled.
		var j Job
		if err := json.Unmarshal(raw, &j); err == nil && j.ID != "" {
			return &j, decodeError(resp.StatusCode, raw)
		}
		return nil, decodeError(resp.StatusCode, raw)
	default:
		return nil, decodeError(resp.StatusCode, raw)
	}
}

func decodeError(code int, raw []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if err := json.Unmarshal(raw, &e); err == nil && e.Error != "" {
		msg = e.Error
	} else {
		var j Job
		if err := json.Unmarshal(raw, &j); err == nil && j.Error != "" {
			msg = j.Error
		}
	}
	return &ServiceError{StatusCode: code, Message: msg}
}
