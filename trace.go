package tuplex

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/trace"
)

// TraceLevel selects how much observability a run records (see
// WithTracing).
type TraceLevel uint8

const (
	// TraceOff disables tracing entirely (Result.Trace is nil).
	TraceOff = TraceLevel(trace.LevelOff)
	// TraceSpans records the span tree with wall times and per-executor
	// task timings. This is the default; it adds zero per-row work.
	TraceSpans = TraceLevel(trace.LevelSpans)
	// TraceRows additionally records the per-operator row-routing ledger:
	// for every operator, how many rows entered it on the normal /
	// general / fallback paths and how its exception rows were resolved.
	TraceRows = TraceLevel(trace.LevelRows)
	// TraceSamples additionally retains a bounded sample of exception
	// rows (exception kind, operator, rendered input, outcome) per stage.
	TraceSamples = TraceLevel(trace.LevelSamples)
)

// String names the level.
func (l TraceLevel) String() string { return trace.Level(l).String() }

// WithTracing sets the run's observability level. The default is
// TraceSpans; use TraceRows or TraceSamples to see where rows went, or
// TraceOff to disable the tracer.
func WithTracing(level TraceLevel) Option {
	return Option{apply: func(o *core.Options) { o.Trace = trace.Level(level) }}
}

// Trace is the run-scoped observability record: a tree of spans (plan →
// per-stage sample/compile/execute/resolve → sink) with wall times,
// per-executor task timings and — at TraceRows and above — the
// row-routing ledger explaining where every row went. Its JSON form is
// stable and round-trips exactly; String() renders a human-readable
// tree.
type Trace struct {
	Level TraceLevel `json:"level"`
	Root  *Span      `json:"root"`
}

// Span is one node of the trace tree.
type Span struct {
	// Name identifies the phase ("run", "stage", "execute", ...).
	Name string `json:"name"`
	// Attrs annotate the span (stage index, output rows, ...).
	Attrs []TraceAttr `json:"attrs,omitempty"`
	// StartNS / DurNS position the span in nanoseconds since run start.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Tasks holds per-executor task timings (execute spans).
	Tasks []TaskTiming `json:"tasks,omitempty"`
	// Routing is the stage's row-routing ledger (stage spans, TraceRows+).
	Routing []OpRouting `json:"routing,omitempty"`
	// Samples holds retained exception rows (stage spans, TraceSamples).
	Samples []ExceptionSample `json:"samples,omitempty"`
	// Children are the nested spans in start order.
	Children []*Span `json:"children,omitempty"`
}

// TraceAttr is one key/value annotation on a span.
type TraceAttr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// TaskTiming is one executor task (one partition or one streamed chunk)
// within a stage's execute phase.
type TaskTiming struct {
	// Part is the partition index the task processed.
	Part int `json:"part"`
	// Worker is the executor slot that ran the task.
	Worker int `json:"worker"`
	// Rows is the number of input rows the task consumed.
	Rows int64 `json:"rows"`
	// StartNS / DurNS position the task in nanoseconds since run start.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// OpRouting is one operator's row-routing ledger entry: where its rows
// went across the engine's paths. Entry 0 of a stage's ledger is the
// source/parse pseudo-operator and the last entry is the stage terminal.
// Rows that raise on the normal path are attributed to the operator that
// raised, and their eventual outcome (resolved on the general path, the
// interpreter fallback, by a user resolver, ignored, or failed) is
// counted on that same entry — so the ledger reconciles with Metrics.
type OpRouting struct {
	// Op names the operator ("source", "map", "join(code)", ...).
	Op string `json:"op"`
	// NormalIn counts rows entering this operator on the compiled
	// normal path (TraceRows and above).
	NormalIn int64 `json:"normal_in"`
	// NormalExc counts rows that raised at this operator on the normal
	// path (classifier/parse rejects land on the source entry).
	NormalExc int64 `json:"normal_exc"`
	// GeneralIn / FallbackIn count rows entering this operator on the
	// compiled general path / the interpreter fallback path.
	GeneralIn  int64 `json:"general_in"`
	FallbackIn int64 `json:"fallback_in"`
	// GeneralResolved / FallbackResolved / ResolverResolved count rows
	// raised at this operator that the respective path recovered.
	GeneralResolved  int64 `json:"general_resolved"`
	FallbackResolved int64 `json:"fallback_resolved"`
	ResolverResolved int64 `json:"resolver_resolved"`
	// Ignored / Failed count rows raised at this operator that an
	// ignore() handler dropped / that no path could process.
	Ignored int64 `json:"ignored"`
	Failed  int64 `json:"failed"`
	// Bounced counts rows that left the columnar batch plane at this
	// operator (the stage barrier) and finished on the row bridge.
	Bounced int64 `json:"bounced,omitempty"`
}

// ExceptionSample is one retained exception row (TraceSamples).
type ExceptionSample struct {
	// Op is the operator the row raised at.
	Op string `json:"op"`
	// Exc is the Python exception class raised on the normal path.
	Exc string `json:"exc"`
	// Input is the rendered input row (truncated).
	Input string `json:"input"`
	// Outcome is "general", "fallback", "resolver", "ignored" or
	// "failed".
	Outcome string `json:"outcome"`
}

// newTrace converts the engine's internal trace into the public view.
func newTrace(t *trace.Trace) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{Level: TraceLevel(t.Level), Root: newSpan(t.Root)}
}

func newSpan(s *trace.Span) *Span {
	if s == nil {
		return nil
	}
	out := &Span{Name: s.Name, StartNS: s.StartNS, DurNS: s.DurNS}
	for _, a := range s.Attrs {
		out.Attrs = append(out.Attrs, TraceAttr{Key: a.Key, Val: a.Val})
	}
	for _, t := range s.Tasks {
		out.Tasks = append(out.Tasks, TaskTiming{
			Part: t.Part, Worker: t.Worker, Rows: t.Rows,
			StartNS: t.StartNS, DurNS: t.DurNS,
		})
	}
	for _, r := range s.Routing {
		out.Routing = append(out.Routing, OpRouting(r))
	}
	for _, e := range s.Samples {
		out.Samples = append(out.Samples, ExceptionSample(e))
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, newSpan(c))
	}
	return out
}

// toInternal converts the public view back into the engine's internal
// representation (the exact inverse of newTrace; the two forms share
// JSON tags, so this is field-for-field).
func (t *Trace) toInternal() *trace.Trace {
	if t == nil {
		return nil
	}
	return &trace.Trace{Level: trace.Level(t.Level), Root: toInternalSpan(t.Root)}
}

func toInternalSpan(s *Span) *trace.Span {
	if s == nil {
		return nil
	}
	out := &trace.Span{Name: s.Name, StartNS: s.StartNS, DurNS: s.DurNS}
	for _, a := range s.Attrs {
		out.Attrs = append(out.Attrs, trace.Attr{Key: a.Key, Val: a.Val})
	}
	for _, t := range s.Tasks {
		out.Tasks = append(out.Tasks, trace.TaskTiming{
			Part: t.Part, Worker: t.Worker, Rows: t.Rows,
			StartNS: t.StartNS, DurNS: t.DurNS,
		})
	}
	for _, r := range s.Routing {
		out.Routing = append(out.Routing, trace.OpRouting(r))
	}
	for _, e := range s.Samples {
		out.Samples = append(out.Samples, trace.ExcSample(e))
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, toInternalSpan(c))
	}
	return out
}

// MarshalChrome renders the trace as a Chrome trace-event JSON document
// loadable in chrome://tracing or https://ui.perfetto.dev: spans become
// nested complete events on a driver track, per-executor task timings
// become swimlanes, and routing ledgers / exception samples land in the
// event args panel.
func (t *Trace) MarshalChrome() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("tuplex: no trace recorded (tracing off?)")
	}
	return t.toInternal().MarshalChrome()
}

// ParseTrace decodes a trace's native JSON form (the output of
// json.Marshal on Trace, or GET /v1/jobs/{id}/trace). The span tree
// round-trips exactly.
func ParseTrace(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tuplex: parsing trace JSON: %w", err)
	}
	return &t, nil
}

// String renders the trace as a human-readable tree:
//
//	run 12.4ms
//	├─ plan 10µs optimized=true
//	├─ stage 11.0ms index=0 ops=2
//	│  ├─ sample 1.2ms
//	│  ├─ compile 300µs udfs=2
//	//	...
//	└─ sink 140µs kind=collect output_rows=990
func (t *Trace) String() string {
	if t == nil || t.Root == nil {
		return "trace: (empty)"
	}
	var sb strings.Builder
	renderSpan(&sb, t.Root, "", "")
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, head, tail string) {
	sb.WriteString(head)
	sb.WriteString(s.Name)
	fmt.Fprintf(sb, " %s", fmtDur(s.DurNS))
	for _, a := range s.Attrs {
		fmt.Fprintf(sb, " %s=%s", a.Key, a.Val)
	}
	if n := len(s.Tasks); n > 0 {
		workers := map[int]bool{}
		var rows int64
		for _, t := range s.Tasks {
			workers[t.Worker] = true
			rows += t.Rows
		}
		fmt.Fprintf(sb, " [%d tasks, %d workers, %d rows]", n, len(workers), rows)
	}
	sb.WriteByte('\n')
	for _, r := range s.Routing {
		if r == (OpRouting{Op: r.Op}) {
			continue
		}
		fmt.Fprintf(sb, "%s· %-12s", tail, r.Op)
		writeCount(sb, "normal", r.NormalIn)
		writeCount(sb, "exc", r.NormalExc)
		writeCount(sb, "general", r.GeneralIn)
		writeCount(sb, "fallback", r.FallbackIn)
		writeCount(sb, "general_ok", r.GeneralResolved)
		writeCount(sb, "fallback_ok", r.FallbackResolved)
		writeCount(sb, "resolver_ok", r.ResolverResolved)
		writeCount(sb, "ignored", r.Ignored)
		writeCount(sb, "failed", r.Failed)
		writeCount(sb, "bounced", r.Bounced)
		sb.WriteByte('\n')
	}
	for _, e := range s.Samples {
		fmt.Fprintf(sb, "%s! %s at %s (%s): %s\n", tail, e.Exc, e.Op, e.Outcome, e.Input)
	}
	for i, c := range s.Children {
		branch, cont := "├─ ", "│  "
		if i == len(s.Children)-1 {
			branch, cont = "└─ ", "   "
		}
		renderSpan(sb, c, tail+branch, tail+cont)
	}
}

func writeCount(sb *strings.Builder, label string, n int64) {
	if n != 0 {
		fmt.Fprintf(sb, " %s=%d", label, n)
	}
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
