// Package types implements Tuplex's static type lattice.
//
// Tuplex types rows and UDF expressions with a small lattice derived from
// the sampled input data (§4.2 of the paper): primitive scalars, option
// types for nullable data, and structured tuple/list/dict types. The
// lattice bottoms out at Any, which forces general-case or fallback-path
// execution.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the basic shapes in the lattice.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a valid Type.
	KindInvalid Kind = iota
	// KindNull is the type of Python's None.
	KindNull
	// KindBool is a Python bool.
	KindBool
	// KindI64 is a Python int (modelled as 64-bit; the paper's prototype
	// does the same).
	KindI64
	// KindF64 is a Python float.
	KindF64
	// KindStr is a Python str.
	KindStr
	// KindOption wraps an element type that may also be None.
	KindOption
	// KindTuple is a fixed-arity heterogeneous tuple.
	KindTuple
	// KindList is a homogeneous list.
	KindList
	// KindDict is a string-keyed dictionary with homogeneous values
	// (sufficient for the JSON-ish dictionaries the pipelines touch).
	KindDict
	// KindFunc is a UDF or builtin function value.
	KindFunc
	// KindMatch is a regex match object (re.search result, always
	// wrapped in Option by re.search itself).
	KindMatch
	// KindIter is an iterator produced by range() and friends.
	KindIter
	// KindRow is a heterogeneous named-column row (the type of a UDF's
	// row parameter). Rows subscript by constant column name or
	// position.
	KindRow
	// KindAny is the lattice bottom: a value only the interpreter can
	// process.
	KindAny
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindI64:
		return "i64"
	case KindF64:
		return "f64"
	case KindStr:
		return "str"
	case KindOption:
		return "option"
	case KindTuple:
		return "tuple"
	case KindList:
		return "list"
	case KindDict:
		return "dict"
	case KindFunc:
		return "func"
	case KindMatch:
		return "match"
	case KindIter:
		return "iter"
	case KindRow:
		return "row"
	case KindAny:
		return "any"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// Type is an immutable type descriptor. Construct via the factory
// functions; compare with Equal.
type Type struct {
	kind Kind
	elem *Type   // Option/List/Iter element, Dict value
	elts []Type  // Tuple elements
	sch  *Schema // Row columns
}

// Row returns the row type over schema s.
func Row(s *Schema) Type { return Type{kind: KindRow, sch: s} }

// Schema returns a row type's schema. It panics for non-row types.
func (t Type) Schema() *Schema {
	if t.kind != KindRow {
		panic("types: Schema on " + t.String())
	}
	return t.sch
}

// Pre-built singletons for the scalar types.
var (
	Null = Type{kind: KindNull}
	Bool = Type{kind: KindBool}
	I64  = Type{kind: KindI64}
	F64  = Type{kind: KindF64}
	Str  = Type{kind: KindStr}
	Any  = Type{kind: KindAny}
	Func = Type{kind: KindFunc}
	// Match is the type of a successful regex match object.
	Match = Type{kind: KindMatch}
)

// Option returns the option type over t. Option(Option(t)) collapses to
// Option(t) and Option(Null) collapses to Null, mirroring Python's None.
func Option(t Type) Type {
	if t.kind == KindOption || t.kind == KindNull {
		return t
	}
	if t.kind == KindAny {
		return Any
	}
	e := t
	return Type{kind: KindOption, elem: &e}
}

// List returns the homogeneous list type over t.
func List(t Type) Type {
	e := t
	return Type{kind: KindList, elem: &e}
}

// Iter returns an iterator type over t.
func Iter(t Type) Type {
	e := t
	return Type{kind: KindIter, elem: &e}
}

// Tuple returns the tuple type with the given element types.
func Tuple(elts ...Type) Type {
	return Type{kind: KindTuple, elts: elts}
}

// Dict returns a string-keyed dict type with value type v.
func Dict(v Type) Type {
	e := v
	return Type{kind: KindDict, elem: &e}
}

// Kind reports the type's kind.
func (t Type) Kind() Kind { return t.kind }

// IsValid reports whether t was properly constructed.
func (t Type) IsValid() bool { return t.kind != KindInvalid }

// IsOption reports whether t is an option type (or Null, which behaves as
// an "always None" option).
func (t Type) IsOption() bool { return t.kind == KindOption }

// IsNumeric reports whether t is bool, i64 or f64 (Python's numeric tower
// treats bool as int).
func (t Type) IsNumeric() bool {
	return t.kind == KindBool || t.kind == KindI64 || t.kind == KindF64
}

// Elem returns the element type of an Option, List, Iter or Dict. It
// panics for other kinds.
func (t Type) Elem() Type {
	if t.elem == nil {
		panic("types: Elem on " + t.String())
	}
	return *t.elem
}

// Elts returns the element types of a tuple. The returned slice must not
// be mutated.
func (t Type) Elts() []Type {
	if t.kind != KindTuple {
		panic("types: Elts on " + t.String())
	}
	return t.elts
}

// Unwrap strips one Option layer if present; for Null it returns Null.
func (t Type) Unwrap() Type {
	if t.kind == KindOption {
		return *t.elem
	}
	return t
}

// Equal reports structural equality.
func Equal(a, b Type) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindOption, KindList, KindDict, KindIter:
		return Equal(*a.elem, *b.elem)
	case KindRow:
		if a.sch.Len() != b.sch.Len() {
			return false
		}
		for i := 0; i < a.sch.Len(); i++ {
			ca, cb := a.sch.Col(i), b.sch.Col(i)
			if ca.Name != cb.Name || !Equal(ca.Type, cb.Type) {
				return false
			}
		}
		return true
	case KindTuple:
		if len(a.elts) != len(b.elts) {
			return false
		}
		for i := range a.elts {
			if !Equal(a.elts[i], b.elts[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type like the paper renders them (i64, f64, str,
// Option[str], (i64,f64), List[str], Dict[str]).
func (t Type) String() string {
	switch t.kind {
	case KindRow:
		return "Row" + t.sch.String()
	case KindOption:
		return "Option[" + t.elem.String() + "]"
	case KindList:
		return "List[" + t.elem.String() + "]"
	case KindIter:
		return "Iter[" + t.elem.String() + "]"
	case KindDict:
		return "Dict[" + t.elem.String() + "]"
	case KindTuple:
		parts := make([]string, len(t.elts))
		for i, e := range t.elts {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	default:
		return t.kind.String()
	}
}

// Unify returns the least upper bound of a and b in the lattice. Numeric
// types widen (bool < i64 < f64); Null unifies with T to Option(T);
// mismatched structures unify to Any.
func Unify(a, b Type) Type {
	if !a.IsValid() {
		return b
	}
	if !b.IsValid() {
		return a
	}
	if Equal(a, b) {
		return a
	}
	if a.kind == KindAny || b.kind == KindAny {
		return Any
	}
	// None against anything yields an option.
	if a.kind == KindNull {
		return Option(b)
	}
	if b.kind == KindNull {
		return Option(a)
	}
	// Option distributes over unification of the element types.
	if a.kind == KindOption || b.kind == KindOption {
		u := Unify(a.Unwrap(), b.Unwrap())
		if u.kind == KindAny {
			return Any
		}
		return Option(u)
	}
	// Numeric widening.
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindF64 || b.kind == KindF64 {
			return F64
		}
		return I64
	}
	if a.kind == b.kind {
		switch a.kind {
		case KindRow:
			if a.sch.Len() != b.sch.Len() {
				return Any
			}
			cols := make([]Column, a.sch.Len())
			for i := range cols {
				ca, cb := a.sch.Col(i), b.sch.Col(i)
				if ca.Name != cb.Name {
					return Any
				}
				u := Unify(ca.Type, cb.Type)
				if u.kind == KindAny {
					return Any
				}
				cols[i] = Column{Name: ca.Name, Type: u}
			}
			return Row(NewSchema(cols))
		case KindList, KindDict, KindIter:
			u := Unify(*a.elem, *b.elem)
			if u.kind == KindAny {
				return Any
			}
			switch a.kind {
			case KindList:
				return List(u)
			case KindDict:
				return Dict(u)
			default:
				return Iter(u)
			}
		case KindTuple:
			if len(a.elts) == len(b.elts) {
				elts := make([]Type, len(a.elts))
				for i := range elts {
					elts[i] = Unify(a.elts[i], b.elts[i])
					if elts[i].kind == KindAny {
						return Any
					}
				}
				return Tuple(elts...)
			}
		}
	}
	return Any
}

// UnifyAll folds Unify over ts; it returns an invalid Type for an empty
// slice.
func UnifyAll(ts []Type) Type {
	var u Type
	for _, t := range ts {
		u = Unify(u, t)
	}
	return u
}

// Column describes one named, typed column of a row schema.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered row schema. Schemas are immutable once built.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Duplicate names keep the first
// occurrence in the index (later duplicates are only reachable by
// position), mirroring how the paper's prototype handles join prefixes.
func NewSchema(cols []Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if _, dup := s.index[c.Name]; !dup {
			s.index[c.Name] = i
		}
	}
	return s
}

// Len reports the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column slice.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the ordered column names.
func (s *Schema) Names() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.Name
	}
	return names
}

// Lookup returns the position of the named column.
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Types returns the ordered column types.
func (s *Schema) Types() []Type {
	ts := make([]Type, len(s.cols))
	for i, c := range s.cols {
		ts[i] = c.Type
	}
	return ts
}

// WithColumn returns a new schema with the named column appended, or with
// its type replaced if it already exists.
func (s *Schema) WithColumn(name string, t Type) *Schema {
	cols := s.Columns()
	if i, ok := s.index[name]; ok {
		cols[i].Type = t
		return NewSchema(cols)
	}
	return NewSchema(append(cols, Column{Name: name, Type: t}))
}

// Select returns a new schema with only the named columns, in the given
// order, and the positions of those columns in s. It returns an error
// naming the first missing column.
func (s *Schema) Select(names []string) (*Schema, []int, error) {
	cols := make([]Column, len(names))
	idx := make([]int, len(names))
	for i, n := range names {
		j, ok := s.index[n]
		if !ok {
			return nil, nil, fmt.Errorf("schema has no column %q (have %v)", n, s.Names())
		}
		cols[i] = s.cols[j]
		idx[i] = j
	}
	return NewSchema(cols), idx, nil
}

// Rename returns a new schema with column old renamed to new.
func (s *Schema) Rename(old, new string) (*Schema, error) {
	i, ok := s.index[old]
	if !ok {
		return nil, fmt.Errorf("schema has no column %q (have %v)", old, s.Names())
	}
	cols := s.Columns()
	cols[i].Name = new
	return NewSchema(cols), nil
}

// String renders the schema as name:type pairs.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + ":" + c.Type.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
