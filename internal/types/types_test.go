package types

import (
	"testing"
	"testing/quick"
)

// arbitrary returns a deterministic type derived from seed bits, for
// property tests.
func arbitrary(seed uint64, depth int) Type {
	scalars := []Type{Null, Bool, I64, F64, Str}
	if depth <= 0 {
		return scalars[seed%uint64(len(scalars))]
	}
	switch seed % 8 {
	case 0, 1, 2, 3:
		return scalars[(seed>>3)%uint64(len(scalars))]
	case 4:
		return Option(arbitrary(seed>>3, depth-1))
	case 5:
		return List(arbitrary(seed>>3, depth-1))
	case 6:
		return Tuple(arbitrary(seed>>3, depth-1), arbitrary(seed>>7, depth-1))
	default:
		return Dict(arbitrary(seed>>3, depth-1))
	}
}

func TestUnifyIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		a := arbitrary(seed, 3)
		return Equal(Unify(a, a), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnifyCommutative(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a, b := arbitrary(s1, 3), arbitrary(s2, 3)
		return Equal(Unify(a, b), Unify(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnifyUpperBound(t *testing.T) {
	// Unify(a, b) unified again with either operand is a fixpoint.
	f := func(s1, s2 uint64) bool {
		a, b := arbitrary(s1, 2), arbitrary(s2, 2)
		u := Unify(a, b)
		return Equal(Unify(u, a), u) && Equal(Unify(u, b), u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnifySpecificCases(t *testing.T) {
	cases := []struct{ a, b, want Type }{
		{I64, F64, F64},
		{Bool, I64, I64},
		{Bool, Bool, Bool},
		{Null, Str, Option(Str)},
		{Option(I64), F64, Option(F64)},
		{Null, Null, Null},
		{Str, I64, Any},
		{List(I64), List(F64), List(F64)},
		{List(I64), List(Str), Any},
		{Tuple(I64, Str), Tuple(F64, Str), Tuple(F64, Str)},
		{Tuple(I64), Tuple(I64, I64), Any},
		{Option(Str), Null, Option(Str)},
		{Any, I64, Any},
	}
	for _, c := range cases {
		if got := Unify(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("Unify(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestOptionCollapses(t *testing.T) {
	if !Equal(Option(Option(I64)), Option(I64)) {
		t.Error("Option(Option(T)) must collapse")
	}
	if !Equal(Option(Null), Null) {
		t.Error("Option(Null) must collapse to Null")
	}
	if !Equal(Option(Any), Any) {
		t.Error("Option(Any) must collapse to Any")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"i64":               I64,
		"Option[str]":       Option(Str),
		"List[f64]":         List(F64),
		"(i64,Option[str])": Tuple(I64, Option(Str)),
		"Dict[str]":         Dict(Str),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema([]Column{{"a", I64}, {"b", Str}, {"c", F64}})
	if s.Len() != 3 {
		t.Fatal("len")
	}
	if i, ok := s.Lookup("b"); !ok || i != 1 {
		t.Fatalf("lookup b = %d, %v", i, ok)
	}
	sel, idx, err := s.Select([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Col(0).Name != "c" || idx[0] != 2 || idx[1] != 0 {
		t.Fatalf("select = %v %v", sel.Names(), idx)
	}
	if _, _, err := s.Select([]string{"zz"}); err == nil {
		t.Fatal("select missing column succeeded")
	}
	r, err := s.Rename("a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("x"); !ok {
		t.Fatal("rename failed")
	}
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("rename mutated the original schema")
	}
	w := s.WithColumn("b", Option(Str))
	if c := w.Col(1); !Equal(c.Type, Option(Str)) {
		t.Fatal("WithColumn replace failed")
	}
	w2 := s.WithColumn("d", Bool)
	if w2.Len() != 4 {
		t.Fatal("WithColumn append failed")
	}
}

func TestSchemaDuplicateNames(t *testing.T) {
	s := NewSchema([]Column{{"a", I64}, {"a", Str}})
	if i, _ := s.Lookup("a"); i != 0 {
		t.Fatal("first duplicate must win")
	}
}
