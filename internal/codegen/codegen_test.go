package codegen

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/interp"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// compileUDF parses, types and compiles a UDF for the given param types.
func compileUDF(t *testing.T, src string, params []types.Type, opts Options) (*UDF, *inference.Info) {
	t.Helper()
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := inference.TypeFunction(fn, params, nil, inference.Options{})
	if err != nil {
		t.Fatalf("inference: %v", err)
	}
	u, err := Compile(info, nil, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return u, info
}

func callUDF(t *testing.T, u *UDF, args ...rows.Slot) (rows.Slot, ECode) {
	t.Helper()
	fr := NewFrame(u.NumSlots())
	return u.Call(fr, args)
}

func wantSlot(t *testing.T, got rows.Slot, ec ECode, want rows.Slot) {
	t.Helper()
	if ec != 0 {
		t.Fatalf("unexpected exception %v", ec)
	}
	if !rows.Equal(got, want) || got.Tag != want.Tag {
		t.Fatalf("got %v (%v), want %v (%v)", got.Value(), got.Tag, want.Value(), want.Tag)
	}
}

func TestCompiledArithmetic(t *testing.T) {
	u, _ := compileUDF(t, "lambda m: m * 1.609", []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(100))
	wantSlot(t, v, ec, rows.F64(160.9))
	if !types.Equal(u.ReturnType(), types.F64) {
		t.Fatalf("ret = %s", u.ReturnType())
	}
}

func TestCompiledIntOps(t *testing.T) {
	u, _ := compileUDF(t, "lambda a, b: a // b + a % b", []types.Type{types.I64, types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(-7), rows.I64(2))
	wantSlot(t, v, ec, rows.I64(-3)) // -4 + 1
	_, ec = callUDF(t, u, rows.I64(1), rows.I64(0))
	if ec != pyvalue.ExcZeroDivisionError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestCompiledTernaryWithOption(t *testing.T) {
	u, _ := compileUDF(t, "lambda m: m * 1.609 if m else 0.0",
		[]types.Type{types.Option(types.F64)}, DefaultOptions())
	v, ec := callUDF(t, u, rows.F64(2))
	wantSlot(t, v, ec, rows.F64(3.218))
	v, ec = callUDF(t, u, rows.Null())
	wantSlot(t, v, ec, rows.F64(0))
}

func TestCompiledNullPathConstantFold(t *testing.T) {
	// Column typed Null: the then branch is dead; result is the constant
	// else arm (the paper's 3-instruction example).
	u, info := compileUDF(t, "lambda m: m * 1.609 if m else 0.0",
		[]types.Type{types.Null}, DefaultOptions())
	if len(info.Dead) != 1 {
		t.Fatalf("dead = %v", info.Dead)
	}
	v, ec := callUDF(t, u, rows.Null())
	wantSlot(t, v, ec, rows.F64(0))
}

func TestCompiledRowAccess(t *testing.T) {
	sch := types.NewSchema([]types.Column{
		{Name: "price", Type: types.I64},
		{Name: "city", Type: types.Str},
	})
	u, _ := compileUDF(t, "lambda x: x['price'] * 2", []types.Type{types.Row(sch)}, DefaultOptions())
	row := rows.Tuple([]rows.Slot{rows.I64(21), rows.Str("boston")})
	v, ec := callUDF(t, u, row)
	wantSlot(t, v, ec, rows.I64(42))

	u2, _ := compileUDF(t, "lambda x: x[1].upper()", []types.Type{types.Row(sch)}, DefaultOptions())
	v, ec = callUDF(t, u2, row)
	wantSlot(t, v, ec, rows.Str("BOSTON"))
}

func TestCompiledStringMethods(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s[s.find('$')+1:].replace(',', '')",
		[]types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("$1,250,000"))
	wantSlot(t, v, ec, rows.Str("1250000"))
}

func TestCompiledIntParse(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: int(s)", []types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str(" 42 "))
	wantSlot(t, v, ec, rows.I64(42))
	_, ec = callUDF(t, u, rows.Str("1,5"))
	if ec != pyvalue.ExcValueError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestCompiledNoneMethodRaisesAttributeError(t *testing.T) {
	// Optional string column, receiver is None at runtime.
	u, _ := compileUDF(t, "lambda s: s.find('x')",
		[]types.Type{types.Option(types.Str)}, DefaultOptions())
	_, ec := callUDF(t, u, rows.Null())
	if ec != pyvalue.ExcAttributeError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestCompiledChainedCompare(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: 100000 < x <= 2e7", []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(150000))
	wantSlot(t, v, ec, rows.Bool(true))
	v, ec = callUDF(t, u, rows.I64(99))
	wantSlot(t, v, ec, rows.Bool(false))
}

func TestCompiledRegexSearch(t *testing.T) {
	src := `def parse(x):
    match = re_search('^(\S+) (\S+)', x)
    if match:
        return match[1]
    return ''
`
	u, _ := compileUDF(t, src, []types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("1.2.3.4 - rest"))
	wantSlot(t, v, ec, rows.Str("1.2.3.4"))
	v, ec = callUDF(t, u, rows.Str(""))
	wantSlot(t, v, ec, rows.Str(""))
}

func TestCompiledReSub(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: re_sub('^/~[^/]+', '/~anon', x)",
		[]types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("/~alice/pubs"))
	wantSlot(t, v, ec, rows.Str("/~anon/pubs"))
}

func TestCompiledRangeLoop(t *testing.T) {
	src := `def f(n):
    total = 0
    for i in range(n):
        if i % 2 == 0:
            continue
        total += i
    return total
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(10))
	wantSlot(t, v, ec, rows.I64(25))
}

func TestCompiledListCompJoin(t *testing.T) {
	fn, err := pyast.ParseUDF("lambda x: ''.join([random_choice(LETTERS) for t in range(10)])")
	if err != nil {
		t.Fatal(err)
	}
	info, err := inference.TypeFunction(fn, []types.Type{types.Str},
		map[string]types.Type{"LETTERS": types.Str}, inference.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	u, err := Compile(info, map[string]pyvalue.Value{"LETTERS": pyvalue.Str("ABC")}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v, ec := callUDF(t, u, rows.Str("x"))
	if ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	if len(v.S) != 10 {
		t.Fatalf("len = %d", len(v.S))
	}
	for i := range v.S {
		if v.S[i] < 'A' || v.S[i] > 'C' {
			t.Fatalf("bad char %q", v.S)
		}
	}
}

func TestCompiledDictReturn(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: {'a': x + 1, 'b': 'y'}", []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(1))
	if ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	keys, ok := DictSlotKeys(v)
	if !ok || len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("keys = %v, %v", keys, ok)
	}
	if !rows.Equal(v.Seq[0], rows.I64(2)) {
		t.Fatalf("a = %v", v.Seq[0])
	}
}

func TestCompiledFailedNodeExits(t *testing.T) {
	// str + int is a static TypeError: compiled code must return the
	// TypeError code, sending the row to the exception path.
	u, info := compileUDF(t, "lambda x: x + 1", []types.Type{types.Str}, DefaultOptions())
	if info.Compilable() {
		t.Fatal("should not be compilable")
	}
	_, ec := callUDF(t, u, rows.Str("a"))
	if ec != pyvalue.ExcTypeError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestCompiledFormatCalls(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100)",
		[]types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(545))
	wantSlot(t, v, ec, rows.Str("05:45"))

	u2, _ := compileUDF(t, "lambda x: '%05d' % int(x)", []types.Type{types.Str}, DefaultOptions())
	v, ec = callUDF(t, u2, rows.Str("2134"))
	wantSlot(t, v, ec, rows.Str("02134"))
}

// TestCompiledMatchesInterpreter is the core dual-mode invariant (§4.1):
// for rows on the fast path, compiled execution must be indistinguishable
// from the interpreter — same values or same exception kinds.
func TestCompiledMatchesInterpreter(t *testing.T) {
	cases := []struct {
		src    string
		params []types.Type
		args   [][]rows.Slot
	}{
		{
			"lambda m: m * 1.609 if m else 0.0",
			[]types.Type{types.Option(types.F64)},
			[][]rows.Slot{{rows.F64(2)}, {rows.Null()}, {rows.F64(0)}},
		},
		{
			"lambda a, b: a / b",
			[]types.Type{types.I64, types.I64},
			[][]rows.Slot{{rows.I64(7), rows.I64(2)}, {rows.I64(1), rows.I64(0)}},
		},
		{
			"lambda s: s[0].upper() + s[1:].lower()",
			[]types.Type{types.Str},
			[][]rows.Slot{{rows.Str("bOSTON")}, {rows.Str("")}, {rows.Str("x")}},
		},
		{
			"lambda s: int(s.replace(',', ''))",
			[]types.Type{types.Str},
			[][]rows.Slot{{rows.Str("1,560")}, {rows.Str("bad")}, {rows.Str("")}},
		},
		{
			"lambda x: 100000 < x <= 2e7",
			[]types.Type{types.F64},
			[][]rows.Slot{{rows.F64(5e5)}, {rows.F64(1)}, {rows.F64(2e7)}},
		},
		{
			`def f(n):
    total = 0
    for i in range(n):
        total += i * i
    return total
`,
			[]types.Type{types.I64},
			[][]rows.Slot{{rows.I64(10)}, {rows.I64(0)}, {rows.I64(-3)}},
		},
		{
			"lambda s: s.split(',')[1].strip()",
			[]types.Type{types.Str},
			[][]rows.Slot{{rows.Str("a, b, c")}, {rows.Str("solo")}},
		},
		{
			"lambda s: 'sale' in s or 'rent' in s",
			[]types.Type{types.Str},
			[][]rows.Slot{{rows.Str("for sale!")}, {rows.Str("to rent")}, {rows.Str("sold")}},
		},
		{
			"lambda x: -x ** 2",
			[]types.Type{types.I64},
			[][]rows.Slot{{rows.I64(3)}, {rows.I64(-2)}},
		},
		{
			"lambda s: s.strip()[1:-1]",
			[]types.Type{types.Str},
			[][]rows.Slot{{rows.Str("  [abc]  ")}, {rows.Str("")}},
		},
	}
	for _, tc := range cases {
		for _, mode := range []Options{DefaultOptions(), {Specialize: false}} {
			u, _ := compileUDF(t, tc.src, tc.params, mode)
			fn, _ := pyast.ParseUDF(tc.src)
			ip := interp.New(nil)
			for _, args := range tc.args {
				gotSlot, gotEc := callUDF(t, u, args...)
				boxedArgs := make([]pyvalue.Value, len(args))
				for i, a := range args {
					boxedArgs[i] = a.Value()
				}
				want, werr := ip.Call(fn, boxedArgs)
				wantEc := pyvalue.KindOf(werr)
				if gotEc != 0 {
					// ExcUnsupported means "retry on general path": verify
					// the general path (boxed) handles it. Otherwise the
					// exception kinds must agree.
					if gotEc != pyvalue.ExcUnsupported && gotEc != wantEc {
						t.Errorf("%s %v [spec=%v]: compiled ec=%v, interp err=%v",
							tc.src, args, mode.Specialize, gotEc, werr)
					}
					continue
				}
				if wantEc != 0 {
					t.Errorf("%s %v [spec=%v]: compiled ok, interp err=%v", tc.src, args, mode.Specialize, werr)
					continue
				}
				if !pyvalue.Equal(gotSlot.Value(), want) {
					t.Errorf("%s %v [spec=%v]: compiled %s, interp %s",
						tc.src, args, mode.Specialize, pyvalue.Repr(gotSlot.Value()), pyvalue.Repr(want))
				}
			}
		}
	}
}

func TestCompiledZillowExtractBd(t *testing.T) {
	src := `def extractBd(x):
    val = x['facts and features']
    max_idx = val.find(' bd')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	sch := types.NewSchema([]types.Column{{Name: "facts and features", Type: types.Str}})
	u, info := compileUDF(t, src, []types.Type{types.Row(sch)}, DefaultOptions())
	if !info.Compilable() {
		t.Fatalf("failed: %v", info.Failed)
	}
	row := rows.Tuple([]rows.Slot{rows.Str("3 bds, 2 ba , 1,560 sqft")})
	v, ec := callUDF(t, u, row)
	wantSlot(t, v, ec, rows.I64(3))
	// Dirty row raises ValueError as a return code.
	dirty := rows.Tuple([]rows.Slot{rows.Str("studio apartment")})
	_, ec = callUDF(t, u, dirty)
	if ec != pyvalue.ExcValueError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestUnassignedLocalRaisesNameError(t *testing.T) {
	src := `def f(x):
    if x > 0:
        y = 1
    return y
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(5))
	wantSlot(t, v, ec, rows.I64(1))
	_, ec = callUDF(t, u, rows.I64(-1))
	if ec != pyvalue.ExcNameError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestFrameReuseDoesNotLeakState(t *testing.T) {
	src := `def f(x):
    if x > 0:
        y = x
    else:
        y = 0
    return y
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	fr := NewFrame(u.NumSlots())
	v, ec := u.Call(fr, []rows.Slot{rows.I64(7)})
	wantSlot(t, v, ec, rows.I64(7))
	// Second call with the else path must not see the previous y.
	v, ec = u.Call(fr, []rows.Slot{rows.I64(-1)})
	wantSlot(t, v, ec, rows.I64(0))
}
