// Package codegen compiles typed UDF ASTs into specialized closures over
// unboxed slots — Tuplex's normal-case code path (§4.3).
//
// Where the paper's prototype emits LLVM IR and JIT-compiles it, this
// implementation emits a tree of monomorphic Go closures operating on
// rows.Slot registers: no heap boxing, no dynamic dispatch on value
// kinds, exceptions as integer return codes (the paper's own choice, §5).
// The asymmetry this creates against the boxed interpreter is the
// mechanism every Tuplex speedup in §6 rests on.
//
// Typing failures recorded by the inference pass compile into exception
// exits: at runtime the affected row leaves the fast path with a return
// code and is retried on the general-case path, never aborting the
// pipeline (§4.3 "Exception handling").
//
// With Options.Specialize=false the generator instead emits generic
// closures that box each operand and dispatch through pyvalue — the
// "LLVM optimizers disabled" configuration of the paper's factor
// analysis (Fig. 11): same code structure, none of the monomorphic
// specialization.
package codegen

import (
	"fmt"
	"sort"

	"github.com/gotuplex/tuplex/internal/dataflow"
	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyre"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/strarena"
	"github.com/gotuplex/tuplex/internal/types"
)

// ECode is the return-code representation of a Python exception on the
// compiled paths (0 = no exception).
type ECode = pyvalue.ExcKind

// Frame is the mutable register file for one UDF invocation. Engines
// allocate one Frame per task and reuse it across rows (the paper's
// thread-local region allocator serves the same purpose).
type Frame struct {
	Slots []rows.Slot
	// Rand powers random.choice on the fast path.
	Rand *pyre.PRNG
	// argBuf backs Call1/Call2 so per-row calls never allocate an args
	// slice; Call copies the slots out before returning.
	argBuf [2]rows.Slot
	// Scratch is reusable byte scratch for string-building operations
	// (case folding, replace, percent formatting). Leaf-use only: a
	// closure may use it strictly between — never across — nested
	// closure calls, so contents never survive past one operation.
	Scratch []byte
	// Arena interns result strings of hot string operations so each
	// produced string does not cost its own heap allocation.
	Arena strarena.Arena
}

// NewFrame returns a frame with capacity for n slots.
func NewFrame(n int) *Frame {
	return &Frame{Slots: make([]rows.Slot, n), Rand: pyre.NewPRNG(0x7457_1e4)}
}

type ctl uint8

const (
	ctlNext ctl = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

type exprFn func(fr *Frame) (rows.Slot, ECode)
type stmtFn func(fr *Frame) (ctl, rows.Slot, ECode)

// Options tunes code generation.
type Options struct {
	// Specialize enables monomorphic unboxed operator code. When false,
	// operators box through pyvalue (Fig. 11's "without LLVM optimizers"
	// arm).
	Specialize bool
	// Flow, when non-nil, supplies dataflow facts for dead-branch
	// pruning, constant folding and check elision. Facts resting on
	// sampled value statistics are consumed through queries that mark
	// their columns load-bearing; Compile turns those into runtime
	// guards in the UDF prologue, so a row violating a sampled
	// constraint exits to the general path instead of observing a
	// mis-specialized result.
	Flow *dataflow.Result
}

// DefaultOptions is fully optimized generation.
func DefaultOptions() Options { return Options{Specialize: true} }

// OptStats counts the optimization decisions made while compiling one
// UDF; surfaced per-UDF through the trace "analyze" span.
type OptStats struct {
	// BranchesPruned counts If/IfExpr arms dropped via dataflow facts
	// (beyond what inference's own static pruning found).
	BranchesPruned int
	// ConstsFolded counts non-literal expressions compiled to constants.
	ConstsFolded int
	// ChecksElided counts runtime checks skipped: zero-divisor tests,
	// negative-exponent tests and Option null checks.
	ChecksElided int
	// RaiseExits counts expressions compiled directly into exception
	// exits because they provably always raise.
	RaiseExits int
}

type guardFn func(args []rows.Slot) bool

// UDF is a compiled normal-case UDF.
type UDF struct {
	Info   *inference.Info
	nslots int
	params []int
	body   []stmtFn
	// clearSlots lists slots that may be read before assignment and must
	// be reset between calls (so stale state can't leak and unbound
	// reads raise NameError). Slots proven assigned-before-use are
	// skipped — the analog of LLVM promoting locals to registers.
	clearSlots []int
	// guards are the compiled runtime preconditions for sample-seeded
	// facts this UDF's code consumed; Guards describes them.
	guards []guardFn
	// Guards lists the sampled-constraint preconditions compiled into
	// the prologue.
	Guards []dataflow.Guard
	// Opt reports the optimization decisions made during compilation.
	Opt OptStats
}

// NumSlots reports the frame size this UDF requires.
func (u *UDF) NumSlots() int { return u.nslots }

// ReturnType is the UDF's inferred normal-case result type.
func (u *UDF) ReturnType() types.Type { return u.Info.ReturnType }

// Call runs the UDF on args using (and resizing) fr. Args are typically
// row slots wrapped per parameter; see rows.Tuple for row parameters.
func (u *UDF) Call(fr *Frame, args []rows.Slot) (rows.Slot, ECode) {
	for _, g := range u.guards {
		if !g(args) {
			// A sampled constraint the specialization rests on does not
			// hold for this row: bail to the general path before any
			// specialized code runs.
			return rows.Slot{}, pyvalue.ExcUnsupported
		}
	}
	if cap(fr.Slots) < u.nslots {
		fr.Slots = make([]rows.Slot, u.nslots)
		fr.Slots = fr.Slots[:u.nslots]
		for i := range fr.Slots {
			fr.Slots[i] = rows.Slot{}
		}
	} else {
		fr.Slots = fr.Slots[:u.nslots]
		for _, s := range u.clearSlots {
			fr.Slots[s] = rows.Slot{} // Tag 0 = unassigned
		}
	}
	for i, p := range u.params {
		fr.Slots[p] = args[i]
	}
	for _, st := range u.body {
		c, v, ec := st(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		if c == ctlReturn {
			return v, 0
		}
	}
	return rows.Null(), 0
}

// Call1 invokes a one-parameter UDF without allocating the args slice
// (the hot-path form used by per-row and batch kernels).
func (u *UDF) Call1(fr *Frame, arg rows.Slot) (rows.Slot, ECode) {
	fr.argBuf[0] = arg
	return u.Call(fr, fr.argBuf[:1])
}

// Call2 invokes a two-parameter UDF (aggregate step) without allocating
// the args slice.
func (u *UDF) Call2(fr *Frame, a, b rows.Slot) (rows.Slot, ECode) {
	fr.argBuf[0], fr.argBuf[1] = a, b
	return u.Call(fr, fr.argBuf[:2])
}

// compiler carries compilation state.
type compiler struct {
	info    *inference.Info
	opts    Options
	slots   map[string]int
	globals map[string]rows.Slot
	stats   OptStats
}

// Compile builds the fast-path closures for a typed UDF. globals supplies
// module-level constants as pre-unboxed slots (may be nil). Compilation
// fails only on structural problems; per-node typing failures compile
// into exception exits instead.
func Compile(info *inference.Info, globals map[string]pyvalue.Value, opts Options) (*UDF, error) {
	c := &compiler{
		info:    info,
		opts:    opts,
		slots:   map[string]int{},
		globals: map[string]rows.Slot{},
	}
	for k, v := range globals {
		c.globals[k] = rows.FromValue(v)
	}
	u := &UDF{Info: info}
	for _, p := range info.Fn.Params {
		u.params = append(u.params, c.slot(p))
	}
	// Pre-allocate assigned names (function-wide local scoping).
	pyast.InspectStmts(info.Fn.Body, func(n pyast.Node) bool {
		switch n := n.(type) {
		case *pyast.Assign:
			c.slotTarget(n.Target)
		case *pyast.AugAssign:
			c.slotTarget(n.Target)
		case *pyast.For:
			c.slotTarget(n.Var)
		case *pyast.ListComp:
			c.slot(n.Var)
		}
		return true
	})
	body, err := c.stmts(info.Fn.Body)
	if err != nil {
		return nil, err
	}
	u.body = body
	u.nslots = len(c.slots)
	u.clearSlots = c.slotsToClear(info.Fn)
	u.Opt = c.stats
	if opts.Flow != nil {
		// All fact queries have been made; compile the guards they
		// obligate. Column indices refer to the row parameter's columns
		// (or, for a single scalar parameter, to the argument itself).
		rowMode := len(u.params) == 1 && info.ParamTypes[0].Kind() == types.KindRow
		u.Guards = opts.Flow.RequiredGuards()
		for _, g := range u.Guards {
			u.guards = append(u.guards, compileGuard(g, rowMode))
		}
	}
	return u, nil
}

// compileGuard builds the runtime precondition check for one guard.
func compileGuard(g dataflow.Guard, rowMode bool) guardFn {
	col := g.Col
	slot := func(args []rows.Slot) (rows.Slot, bool) {
		if rowMode {
			if len(args) != 1 || col >= len(args[0].Seq) {
				return rows.Slot{}, false
			}
			return args[0].Seq[col], true
		}
		if col >= len(args) {
			return rows.Slot{}, false
		}
		return args[col], true
	}
	if g.Const != nil {
		want := rows.FromValue(g.Const)
		return func(args []rows.Slot) bool {
			s, ok := slot(args)
			if !ok || s.Tag != want.Tag {
				return false
			}
			return s.Tag == types.KindNull || rows.Equal(s, want)
		}
	}
	lo, hi := g.Lo, g.Hi
	return func(args []rows.Slot) bool {
		s, ok := slot(args)
		return ok && s.Tag == types.KindI64 && s.I >= lo && s.I <= hi
	}
}

// flowDead reports a fact-derived dead arm for an If/IfExpr node.
func (c *compiler) flowDead(n pyast.Node) inference.Branch {
	if c.opts.Flow == nil {
		return inference.DeadNone
	}
	return c.opts.Flow.DeadBranch(n)
}

func (c *compiler) flowNonZero(x pyast.Expr) bool {
	return c.opts.Flow != nil && x != nil && c.opts.Flow.NonZero(x)
}

func (c *compiler) flowNonNegative(x pyast.Expr) bool {
	return c.opts.Flow != nil && x != nil && c.opts.Flow.NonNegative(x)
}

func (c *compiler) flowNonNull(x pyast.Expr) bool {
	return c.opts.Flow != nil && x != nil && c.opts.Flow.NonNull(x)
}

// flowFold compiles x straight to a constant or an exception exit when
// the dataflow facts decide it. Literals are skipped (already free).
func (c *compiler) flowFold(x pyast.Expr) (exprFn, bool) {
	if c.opts.Flow == nil {
		return nil, false
	}
	if k, ok := c.opts.Flow.AlwaysRaises(x); ok {
		c.stats.RaiseExits++
		ec := k
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, ec }, true
	}
	switch x.(type) {
	case *pyast.NumLit, *pyast.StrLit, *pyast.BoolLit, *pyast.NoneLit:
		return nil, false
	}
	v, ok := c.opts.Flow.Constant(x)
	if !ok {
		return nil, false
	}
	s := rows.FromValue(v)
	c.stats.ConstsFolded++
	return func(fr *Frame) (rows.Slot, ECode) { return s, 0 }, true
}

// slotsToClear computes which non-parameter slots could be observed
// before assignment and therefore must be reset between calls. A local
// whose first top-level statement mention is a plain assignment is
// definitely-assigned before any later read; everything else (first
// mention inside a branch/loop, comprehension variables, reads) stays in
// the clear set.
func (c *compiler) slotsToClear(fn *pyast.Function) []int {
	isParam := map[string]bool{}
	for _, p := range fn.Params {
		isParam[p] = true
	}
	safe := map[string]bool{}
	for _, s := range fn.Body {
		as, ok := s.(*pyast.Assign)
		if !ok {
			break // conservatively stop at the first non-assignment
		}
		nm, ok := as.Target.(*pyast.Name)
		if !ok {
			break
		}
		// The RHS must not read any not-yet-safe local.
		unsafeRead := false
		pyast.Inspect(as.Value, func(n pyast.Node) bool {
			if r, isName := n.(*pyast.Name); isName {
				if _, isLocal := c.slots[r.Ident]; isLocal && !isParam[r.Ident] && !safe[r.Ident] {
					unsafeRead = true
				}
			}
			return true
		})
		if unsafeRead {
			break
		}
		safe[nm.Ident] = true
	}
	var clear []int
	for name, slot := range c.slots {
		if !isParam[name] && !safe[name] {
			clear = append(clear, slot)
		}
	}
	sort.Ints(clear)
	return clear
}

func (c *compiler) slot(name string) int {
	if s, ok := c.slots[name]; ok {
		return s
	}
	s := len(c.slots)
	c.slots[name] = s
	return s
}

func (c *compiler) slotTarget(t pyast.Expr) {
	switch t := t.(type) {
	case *pyast.Name:
		c.slot(t.Ident)
	case *pyast.TupleLit:
		for _, el := range t.Elts {
			if n, ok := el.(*pyast.Name); ok {
				c.slot(n.Ident)
			}
		}
	}
}

// failedExit returns the exception-exit closure for a node recorded as
// failed by inference, or nil.
func (c *compiler) failedExit(n pyast.Node) exprFn {
	f, ok := c.info.Failed[n]
	if !ok {
		return nil
	}
	ec := excFromName(f.Raises)
	return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, ec }
}

func excFromName(name string) ECode {
	switch name {
	case "TypeError":
		return pyvalue.ExcTypeError
	case "ValueError":
		return pyvalue.ExcValueError
	case "ZeroDivisionError":
		return pyvalue.ExcZeroDivisionError
	case "IndexError":
		return pyvalue.ExcIndexError
	case "KeyError":
		return pyvalue.ExcKeyError
	case "AttributeError":
		return pyvalue.ExcAttributeError
	case "NameError":
		return pyvalue.ExcNameError
	default:
		return pyvalue.ExcUnsupported
	}
}

func (c *compiler) stmts(ss []pyast.Stmt) ([]stmtFn, error) {
	out := make([]stmtFn, 0, len(ss))
	for _, s := range ss {
		cs, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, cs)
	}
	return out, nil
}

func runStmts(fr *Frame, body []stmtFn) (ctl, rows.Slot, ECode) {
	for _, st := range body {
		ct, v, ec := st(fr)
		if ec != 0 || ct != ctlNext {
			return ct, v, ec
		}
	}
	return ctlNext, rows.Slot{}, 0
}

func (c *compiler) stmt(s pyast.Stmt) (stmtFn, error) {
	if _, failed := c.info.Failed[s]; failed {
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			return ctlNext, rows.Slot{}, pyvalue.ExcUnsupported
		}, nil
	}
	switch s := s.(type) {
	case *pyast.ExprStmt:
		x, err := c.expr(s.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			_, ec := x(fr)
			return ctlNext, rows.Slot{}, ec
		}, nil
	case *pyast.Assign:
		if name, ok := s.Target.(*pyast.Name); ok {
			if st, err := c.assignNat(name, s.Value); err != nil {
				return nil, err
			} else if st != nil {
				return st, nil
			}
		}
		v, err := c.expr(s.Value)
		if err != nil {
			return nil, err
		}
		return c.assign(s.Target, v)
	case *pyast.AugAssign:
		cur, err := c.expr(s.Target)
		if err != nil {
			return nil, err
		}
		rhs, err := c.expr(s.Value)
		if err != nil {
			return nil, err
		}
		var lt, rt types.Type
		if te, ok := s.Target.(pyast.Expr); ok {
			lt = te.Type()
		}
		rt = s.Value.Type()
		// Result type of target op= value matches what inference stored
		// on the target after the statement; recompute from operands.
		comb, err := c.binOp(s.Op, cur, rhs, s.Target, s.Value, lt, rt, resultTypeOf(s.Op, lt, rt))
		if err != nil {
			return nil, err
		}
		return c.assign(s.Target, comb)
	case *pyast.Return:
		if s.X == nil {
			return func(fr *Frame) (ctl, rows.Slot, ECode) {
				return ctlReturn, rows.Null(), 0
			}, nil
		}
		x, err := c.expr(s.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			v, ec := x(fr)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			return ctlReturn, v, 0
		}, nil
	case *pyast.If:
		return c.ifStmt(s)
	case *pyast.For:
		return c.forStmt(s)
	case *pyast.While:
		cond, err := c.truthExpr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := c.stmts(s.Body)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			for iter := 0; ; iter++ {
				if iter > maxLoopIters {
					return ctlNext, rows.Slot{}, pyvalue.ExcUnsupported
				}
				t, ec := cond(fr)
				if ec != 0 {
					return ctlNext, rows.Slot{}, ec
				}
				if !t {
					return ctlNext, rows.Slot{}, 0
				}
				ct, v, ec := runStmts(fr, body)
				if ec != 0 {
					return ctlNext, rows.Slot{}, ec
				}
				if ct == ctlReturn {
					return ct, v, 0
				}
				if ct == ctlBreak {
					return ctlNext, rows.Slot{}, 0
				}
			}
		}, nil
	case *pyast.Pass:
		return func(fr *Frame) (ctl, rows.Slot, ECode) { return ctlNext, rows.Slot{}, 0 }, nil
	case *pyast.Break:
		return func(fr *Frame) (ctl, rows.Slot, ECode) { return ctlBreak, rows.Slot{}, 0 }, nil
	case *pyast.Continue:
		return func(fr *Frame) (ctl, rows.Slot, ECode) { return ctlContinue, rows.Slot{}, 0 }, nil
	default:
		return nil, fmt.Errorf("codegen: unsupported statement %T", s)
	}
}

// maxLoopIters bounds while-loops on the fast path; a UDF exceeding it is
// kicked to the exception path rather than hanging an executor.
const maxLoopIters = 10_000_000

func (c *compiler) ifStmt(s *pyast.If) (stmtFn, error) {
	// Statically pruned branches compile only the live arm (§4.7).
	dead := c.info.Dead[s]
	if dead == inference.DeadNone {
		if d := c.flowDead(s); d != inference.DeadNone {
			dead = d
			c.stats.BranchesPruned++
		}
	}
	switch dead {
	case inference.DeadThen:
		if s.Else == nil {
			return func(fr *Frame) (ctl, rows.Slot, ECode) { return ctlNext, rows.Slot{}, 0 }, nil
		}
		body, err := c.stmts(s.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (ctl, rows.Slot, ECode) { return runStmts(fr, body) }, nil
	case inference.DeadElse:
		body, err := c.stmts(s.Then)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (ctl, rows.Slot, ECode) { return runStmts(fr, body) }, nil
	}
	cond, err := c.truthExpr(s.Cond)
	if err != nil {
		return nil, err
	}
	then, err := c.stmts(s.Then)
	if err != nil {
		return nil, err
	}
	var els []stmtFn
	if s.Else != nil {
		if els, err = c.stmts(s.Else); err != nil {
			return nil, err
		}
	}
	return func(fr *Frame) (ctl, rows.Slot, ECode) {
		t, ec := cond(fr)
		if ec != 0 {
			return ctlNext, rows.Slot{}, ec
		}
		if t {
			return runStmts(fr, then)
		}
		if els != nil {
			return runStmts(fr, els)
		}
		return ctlNext, rows.Slot{}, 0
	}, nil
}

func (c *compiler) forStmt(s *pyast.For) (stmtFn, error) {
	body, err := c.stmts(s.Body)
	if err != nil {
		return nil, err
	}
	// Specialization: `for v in range(...)` compiles to a counting loop
	// with no list materialization.
	if rng, ok := rangeCall(s.Iter); ok {
		nm, isName := s.Var.(*pyast.Name)
		if isName {
			vslot := c.slot(nm.Ident)
			bounds, err := c.rangeBounds(rng)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (ctl, rows.Slot, ECode) {
				start, stop, step, ec := bounds(fr)
				if ec != 0 {
					return ctlNext, rows.Slot{}, ec
				}
				for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
					fr.Slots[vslot] = rows.I64(i)
					ct, v, ec := runStmts(fr, body)
					if ec != 0 {
						return ctlNext, rows.Slot{}, ec
					}
					if ct == ctlReturn {
						return ct, v, 0
					}
					if ct == ctlBreak {
						break
					}
				}
				return ctlNext, rows.Slot{}, 0
			}, nil
		}
	}
	iter, err := c.expr(s.Iter)
	if err != nil {
		return nil, err
	}
	setVar, err := c.assignSetter(s.Var)
	if err != nil {
		return nil, err
	}
	iterT := s.Iter.Type().Unwrap()
	return func(fr *Frame) (ctl, rows.Slot, ECode) {
		it, ec := iter(fr)
		if ec != 0 {
			return ctlNext, rows.Slot{}, ec
		}
		elems, ec := iterateSlot(it, iterT)
		if ec != 0 {
			return ctlNext, rows.Slot{}, ec
		}
		for _, el := range elems {
			if ec := setVar(fr, el); ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			ct, v, ec := runStmts(fr, body)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			if ct == ctlReturn {
				return ct, v, 0
			}
			if ct == ctlBreak {
				break
			}
		}
		return ctlNext, rows.Slot{}, 0
	}, nil
}

// iterateSlot expands an iterable slot into elements.
func iterateSlot(s rows.Slot, t types.Type) ([]rows.Slot, ECode) {
	switch s.Tag {
	case types.KindList, types.KindTuple:
		return s.Seq, 0
	case types.KindStr:
		out := make([]rows.Slot, len(s.S))
		for i := range s.S {
			out[i] = rows.Str(s.S[i : i+1])
		}
		return out, 0
	case types.KindNull:
		return nil, pyvalue.ExcTypeError
	default:
		return nil, pyvalue.ExcUnsupported
	}
}

func rangeCall(e pyast.Expr) (*pyast.Call, bool) {
	call, ok := e.(*pyast.Call)
	if !ok {
		return nil, false
	}
	nm, ok := call.Fn.(*pyast.Name)
	if !ok || nm.Ident != "range" || len(call.Args) == 0 || len(call.Args) > 3 {
		return nil, false
	}
	return call, true
}

// rangeBounds compiles range arguments into a (start, stop, step) thunk.
func (c *compiler) rangeBounds(call *pyast.Call) (func(fr *Frame) (int64, int64, int64, ECode), error) {
	args := make([]exprFn, len(call.Args))
	for i, a := range call.Args {
		e, err := c.intExpr(a)
		if err != nil {
			return nil, err
		}
		args[i] = e
	}
	return func(fr *Frame) (start, stop, step int64, ec ECode) {
		step = 1
		vals := make([]int64, len(args))
		for i, a := range args {
			s, e := a(fr)
			if e != 0 {
				return 0, 0, 0, e
			}
			vals[i] = s.I
		}
		switch len(vals) {
		case 1:
			stop = vals[0]
		case 2:
			start, stop = vals[0], vals[1]
		case 3:
			start, stop, step = vals[0], vals[1], vals[2]
			if step == 0 {
				return 0, 0, 0, pyvalue.ExcValueError
			}
		}
		return start, stop, step, 0
	}, nil
}

func (c *compiler) assign(target pyast.Expr, value exprFn) (stmtFn, error) {
	set, err := c.assignSetter(target)
	if err != nil {
		return nil, err
	}
	return func(fr *Frame) (ctl, rows.Slot, ECode) {
		v, ec := value(fr)
		if ec != 0 {
			return ctlNext, rows.Slot{}, ec
		}
		return ctlNext, rows.Slot{}, set(fr, v)
	}, nil
}

func (c *compiler) assignSetter(target pyast.Expr) (func(fr *Frame, v rows.Slot) ECode, error) {
	switch t := target.(type) {
	case *pyast.Name:
		s := c.slot(t.Ident)
		return func(fr *Frame, v rows.Slot) ECode {
			fr.Slots[s] = v
			return 0
		}, nil
	case *pyast.TupleLit:
		setters := make([]func(fr *Frame, v rows.Slot) ECode, len(t.Elts))
		for i, el := range t.Elts {
			set, err := c.assignSetter(el)
			if err != nil {
				return nil, err
			}
			setters[i] = set
		}
		return func(fr *Frame, v rows.Slot) ECode {
			if v.Tag != types.KindTuple && v.Tag != types.KindList {
				return pyvalue.ExcTypeError
			}
			if len(v.Seq) != len(setters) {
				return pyvalue.ExcValueError
			}
			for i, set := range setters {
				if ec := set(fr, v.Seq[i]); ec != 0 {
					return ec
				}
			}
			return 0
		}, nil
	case *pyast.Subscript:
		// In-place container mutation stays off the fast path (UDF state
		// is row-local; the general path handles it).
		return func(fr *Frame, v rows.Slot) ECode { return pyvalue.ExcUnsupported }, nil
	default:
		return nil, fmt.Errorf("codegen: unsupported assignment target %T", target)
	}
}

// resultTypeOf mirrors inference's binOpType result for augmented
// assignment without re-running inference.
func resultTypeOf(op string, l, r types.Type) types.Type {
	lu, ru := l.Unwrap(), r.Unwrap()
	num := func(t types.Type) bool { return t.IsNumeric() }
	switch op {
	case "/", "":
		return types.F64
	case "+", "-", "*", "//", "%", "**":
		if num(lu) && num(ru) {
			if lu.Kind() == types.KindF64 || ru.Kind() == types.KindF64 {
				return types.F64
			}
			return types.I64
		}
		if lu.Kind() == types.KindStr {
			return types.Str
		}
		return lu
	default:
		return types.I64
	}
}
