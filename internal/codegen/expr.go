package codegen

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// expr compiles one expression. Nodes recorded as typing failures
// compile into exception exits.
func (c *compiler) expr(x pyast.Expr) (exprFn, error) {
	if exit := c.failedExit(x); exit != nil {
		return exit, nil
	}
	if fn, ok := c.flowFold(x); ok {
		return fn, nil
	}
	switch x := x.(type) {
	case *pyast.NumLit:
		if x.IsFloat {
			s := rows.F64(x.F)
			return func(fr *Frame) (rows.Slot, ECode) { return s, 0 }, nil
		}
		s := rows.I64(x.I)
		return func(fr *Frame) (rows.Slot, ECode) { return s, 0 }, nil
	case *pyast.StrLit:
		s := rows.Str(x.S)
		return func(fr *Frame) (rows.Slot, ECode) { return s, 0 }, nil
	case *pyast.BoolLit:
		s := rows.Bool(x.B)
		return func(fr *Frame) (rows.Slot, ECode) { return s, 0 }, nil
	case *pyast.NoneLit:
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Null(), 0 }, nil
	case *pyast.Name:
		if s, ok := c.slots[x.Ident]; ok {
			return func(fr *Frame) (rows.Slot, ECode) {
				v := fr.Slots[s]
				if v.Tag == types.KindInvalid {
					return rows.Slot{}, pyvalue.ExcNameError
				}
				return v, 0
			}, nil
		}
		if g, ok := c.globals[x.Ident]; ok {
			return func(fr *Frame) (rows.Slot, ECode) { return g, 0 }, nil
		}
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, pyvalue.ExcNameError }, nil
	case *pyast.BinOp:
		l, err := c.expr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.expr(x.Right)
		if err != nil {
			return nil, err
		}
		return c.binOp(x.Op, l, r, x.Left, x.Right, x.Left.Type(), x.Right.Type(), x.Type())
	case *pyast.UnaryOp:
		return c.unaryOp(x)
	case *pyast.Compare:
		return c.compare(x)
	case *pyast.BoolOp:
		return c.boolOp(x)
	case *pyast.IfExpr:
		dead := c.info.Dead[x]
		if dead == inference.DeadNone {
			if d := c.flowDead(x); d != inference.DeadNone {
				dead = d
				c.stats.BranchesPruned++
			}
		}
		switch dead {
		case inference.DeadThen:
			return c.expr(x.Else)
		case inference.DeadElse:
			return c.expr(x.Then)
		}
		cond, err := c.truthExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.expr(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.expr(x.Else)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			t, ec := cond(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if t {
				return then(fr)
			}
			return els(fr)
		}, nil
	case *pyast.Subscript:
		return c.subscript(x)
	case *pyast.Slice:
		return c.slice(x)
	case *pyast.TupleLit:
		elts, err := c.exprs(x.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			seq := make([]rows.Slot, len(elts))
			for i, e := range elts {
				v, ec := e(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				seq[i] = v
			}
			return rows.Tuple(seq), 0
		}, nil
	case *pyast.ListLit:
		elts, err := c.exprs(x.Elts)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			seq := make([]rows.Slot, len(elts))
			for i, e := range elts {
				v, ec := e(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				seq[i] = v
			}
			return rows.List(seq), 0
		}, nil
	case *pyast.DictLit:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			lit, ok := k.(*pyast.StrLit)
			if !ok {
				return nil, fmt.Errorf("codegen: non-constant dict key survived inference")
			}
			keys[i] = lit.S
		}
		vals, err := c.exprs(x.Vals)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			// Fast-path dicts are only produced to be consumed as row
			// outputs; represent as a tuple slot with attached names via
			// boxed dict only when escaping. The engine unwraps dict
			// returns by key order, so a tuple with parallel keys
			// suffices.
			seq := make([]rows.Slot, len(vals))
			for i, e := range vals {
				v, ec := e(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				seq[i] = v
			}
			return rows.Slot{Tag: types.KindDict, Seq: seq, Obj: dictKeys(keys)}, 0
		}, nil
	case *pyast.ListComp:
		return c.listComp(x)
	case *pyast.Call:
		return c.call(x)
	default:
		return nil, fmt.Errorf("codegen: unsupported expression %T survived inference", x)
	}
}

// dictKeys wraps a key list as a boxed marker carried in the Obj field of
// dict slots produced on the fast path; the engine reads it to map dict
// returns onto output columns without round-tripping through boxed
// dicts.
func dictKeys(keys []string) pyvalue.Value {
	items := make([]pyvalue.Value, len(keys))
	for i, k := range keys {
		items[i] = pyvalue.Str(k)
	}
	return &pyvalue.Tuple{Items: items}
}

// DictSlotKeys extracts the column names of a fast-path dict slot.
func DictSlotKeys(s rows.Slot) ([]string, bool) {
	if s.Tag != types.KindDict || s.Obj == nil {
		return nil, false
	}
	t, ok := s.Obj.(*pyvalue.Tuple)
	if !ok {
		return nil, false
	}
	out := make([]string, len(t.Items))
	for i, it := range t.Items {
		str, ok := it.(pyvalue.Str)
		if !ok {
			return nil, false
		}
		out[i] = string(str)
	}
	return out, true
}

func (c *compiler) exprs(xs []pyast.Expr) ([]exprFn, error) {
	out := make([]exprFn, len(xs))
	for i, x := range xs {
		e, err := c.expr(x)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// truthExpr compiles an expression into a Python-truthiness test.
func (c *compiler) truthExpr(x pyast.Expr) (func(fr *Frame) (bool, ECode), error) {
	if c.opts.Specialize && !c.nativeBail(x) {
		// Comparisons and scalar name tests — the bulk of filter and
		// branch conditions — produce the bool directly, no Slot.
		if cmp, ok := x.(*pyast.Compare); ok {
			if f, err := c.compareBool(cmp); err != nil {
				return nil, err
			} else if f != nil {
				return f, nil
			}
		}
		if nm, ok := x.(*pyast.Name); ok {
			if idx, ok := c.slots[nm.Ident]; ok {
				if t := nm.Type(); !t.IsOption() {
					if f := truthSlotFn(idx, t.Kind()); f != nil {
						return f, nil
					}
				}
			}
		}
	}
	e, err := c.expr(x)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	if t.IsOption() && c.flowNonNull(x) {
		// Null-check elision: the Option value is proven non-null here,
		// so truthiness dispatches on the unwrapped kind directly.
		t = t.Unwrap()
		c.stats.ChecksElided++
	}
	if c.opts.Specialize {
		// Monomorphic truthiness for the common scalar cases.
		switch t.Kind() {
		case types.KindBool:
			return func(fr *Frame) (bool, ECode) {
				v, ec := e(fr)
				return v.B, ec
			}, nil
		case types.KindI64:
			return func(fr *Frame) (bool, ECode) {
				v, ec := e(fr)
				return v.I != 0, ec
			}, nil
		case types.KindF64:
			return func(fr *Frame) (bool, ECode) {
				v, ec := e(fr)
				return v.F != 0, ec
			}, nil
		case types.KindStr:
			return func(fr *Frame) (bool, ECode) {
				v, ec := e(fr)
				return v.S != "", ec
			}, nil
		case types.KindNull:
			return func(fr *Frame) (bool, ECode) {
				_, ec := e(fr)
				return false, ec
			}, nil
		}
	}
	return func(fr *Frame) (bool, ECode) {
		v, ec := e(fr)
		if ec != 0 {
			return false, ec
		}
		return v.Truth(), 0
	}, nil
}

// intExpr compiles an expression guaranteed by typing to be int-like into
// an I64-slot producer (bools coerce; Options null-check).
func (c *compiler) intExpr(x pyast.Expr) (exprFn, error) {
	e, err := c.expr(x)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	switch t.Kind() {
	case types.KindI64:
		return e, nil
	case types.KindBool:
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := e(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if v.B {
				return rows.I64(1), 0
			}
			return rows.I64(0), 0
		}, nil
	default:
		// Option[i64] and friends: runtime tag check.
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := e(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			switch v.Tag {
			case types.KindI64:
				return v, 0
			case types.KindBool:
				if v.B {
					return rows.I64(1), 0
				}
				return rows.I64(0), 0
			case types.KindNull:
				return rows.Slot{}, pyvalue.ExcTypeError
			default:
				return rows.Slot{}, pyvalue.ExcTypeError
			}
		}, nil
	}
}

func (c *compiler) unaryOp(x *pyast.UnaryOp) (exprFn, error) {
	sub, err := c.expr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "not":
		inner, err := c.truthExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			t, ec := inner(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Bool(!t), 0
		}, nil
	case "-", "+", "~":
		op := x.Op
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := sub(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			switch v.Tag {
			case types.KindI64:
				switch op {
				case "-":
					return rows.I64(-v.I), 0
				case "+":
					return v, 0
				default:
					return rows.I64(^v.I), 0
				}
			case types.KindBool:
				n := int64(0)
				if v.B {
					n = 1
				}
				switch op {
				case "-":
					return rows.I64(-n), 0
				case "+":
					return rows.I64(n), 0
				default:
					return rows.I64(^n), 0
				}
			case types.KindF64:
				if op == "~" {
					return rows.Slot{}, pyvalue.ExcTypeError
				}
				if op == "-" {
					return rows.F64(-v.F), 0
				}
				return v, 0
			default:
				return rows.Slot{}, pyvalue.ExcTypeError
			}
		}, nil
	default:
		return nil, fmt.Errorf("codegen: unary %q", x.Op)
	}
}

func (c *compiler) boolOp(x *pyast.BoolOp) (exprFn, error) {
	subs, err := c.exprs(x.Xs)
	if err != nil {
		return nil, err
	}
	isAnd := x.Op == "and"
	return func(fr *Frame) (rows.Slot, ECode) {
		var v rows.Slot
		var ec ECode
		for i, sub := range subs {
			v, ec = sub(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if i == len(subs)-1 {
				break
			}
			t := v.Truth()
			if isAnd && !t {
				return v, 0
			}
			if !isAnd && t {
				return v, 0
			}
		}
		return v, 0
	}, nil
}

func (c *compiler) subscript(x *pyast.Subscript) (exprFn, error) {
	// Row column access resolved by inference: a direct slice load. When
	// the row is a named frame slot the element is read through a
	// pointer, skipping the copy of the whole row Slot.
	if x.RowIdx >= 0 {
		if c.opts.Specialize {
			if el := c.rowElemAt(x); el != nil {
				return func(fr *Frame) (rows.Slot, ECode) {
					p, ec := el(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return *p, 0
				}, nil
			}
		}
		base, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		idx := x.RowIdx
		return func(fr *Frame) (rows.Slot, ECode) {
			row, ec := base(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if idx >= len(row.Seq) {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			return row.Seq[idx], 0
		}, nil
	}
	cont, err := c.expr(x.X)
	if err != nil {
		return nil, err
	}
	ct := x.X.Type().Unwrap()
	switch ct.Kind() {
	case types.KindStr:
		idx, err := c.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := cont(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if s.Tag != types.KindStr {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			iv, ec := idx(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			i := iv.I
			n := int64(len(s.S))
			if i < 0 {
				i += n
			}
			if i < 0 || i >= n {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			return rows.Str(s.S[i : i+1]), 0
		}, nil
	case types.KindList, types.KindTuple:
		idx, err := c.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := cont(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if s.Tag != types.KindList && s.Tag != types.KindTuple {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			iv, ec := idx(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			i := iv.I
			n := int64(len(s.Seq))
			if i < 0 {
				i += n
			}
			if i < 0 || i >= n {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			return s.Seq[i], 0
		}, nil
	case types.KindMatch:
		idx, err := c.intExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := cont(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if s.Tag == types.KindNull {
				return rows.Slot{}, pyvalue.ExcTypeError // None is not subscriptable
			}
			m, ok := s.Obj.(*pyvalue.Match)
			if !ok {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			iv, ec := idx(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			i := iv.I
			if i < 0 || int(i) >= len(m.Groups) {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			if !m.Present[i] {
				// Normal-case typing says Str; an absent group retries on
				// the general path, which yields None (§4.3).
				return rows.Slot{}, pyvalue.ExcUnsupported
			}
			return rows.Str(m.Groups[i]), 0
		}, nil
	case types.KindDict:
		lit, ok := x.Index.(*pyast.StrLit)
		if !ok {
			return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, pyvalue.ExcUnsupported }, nil
		}
		key := lit.S
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := cont(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if keys, ok := DictSlotKeys(s); ok {
				for i, k := range keys {
					if k == key {
						return s.Seq[i], 0
					}
				}
				return rows.Slot{}, pyvalue.ExcKeyError
			}
			if s.Tag == types.KindNull {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			return rows.Slot{}, pyvalue.ExcUnsupported
		}, nil
	case types.KindNull:
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, pyvalue.ExcTypeError }, nil
	default:
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, pyvalue.ExcUnsupported }, nil
	}
}

func (c *compiler) slice(x *pyast.Slice) (exprFn, error) {
	cont, err := c.expr(x.X)
	if err != nil {
		return nil, err
	}
	bound := func(b pyast.Expr) (exprFn, error) {
		if b == nil {
			return nil, nil
		}
		return c.intExpr(b)
	}
	lo, err := bound(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := bound(x.Hi)
	if err != nil {
		return nil, err
	}
	step, err := bound(x.Step)
	if err != nil {
		return nil, err
	}
	evalBound := func(fr *Frame, b exprFn) (*int64, ECode) {
		if b == nil {
			return nil, 0
		}
		v, ec := b(fr)
		if ec != 0 {
			return nil, ec
		}
		n := v.I
		return &n, 0
	}
	isStr := x.X.Type().Unwrap().Kind() == types.KindStr
	return func(fr *Frame) (rows.Slot, ECode) {
		s, ec := cont(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		l, ec := evalBound(fr, lo)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		h, ec := evalBound(fr, hi)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		stp, ec := evalBound(fr, step)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		st := int64(1)
		if stp != nil {
			st = *stp
			if st == 0 {
				return rows.Slot{}, pyvalue.ExcValueError
			}
		}
		if isStr && s.Tag == types.KindStr {
			n := int64(len(s.S))
			start, stop := pyvalue.SliceBounds(l, h, st, n)
			if st == 1 {
				if start >= stop {
					return rows.Str(""), 0
				}
				return rows.Str(s.S[start:stop]), 0
			}
			buf := make([]byte, 0, 8)
			for i := start; (st > 0 && i < stop) || (st < 0 && i > stop); i += st {
				buf = append(buf, s.S[i])
			}
			return rows.Str(string(buf)), 0
		}
		if s.Tag == types.KindList || s.Tag == types.KindTuple {
			n := int64(len(s.Seq))
			start, stop := pyvalue.SliceBounds(l, h, st, n)
			var out []rows.Slot
			for i := start; (st > 0 && i < stop) || (st < 0 && i > stop); i += st {
				out = append(out, s.Seq[i])
			}
			if s.Tag == types.KindTuple {
				return rows.Tuple(out), 0
			}
			return rows.List(out), 0
		}
		if s.Tag == types.KindNull {
			return rows.Slot{}, pyvalue.ExcTypeError
		}
		return rows.Slot{}, pyvalue.ExcUnsupported
	}, nil
}

func (c *compiler) listComp(x *pyast.ListComp) (exprFn, error) {
	vslot := c.slot(x.Var)
	var cond func(fr *Frame) (bool, ECode)
	var err error
	if x.Cond != nil {
		cond, err = c.truthExpr(x.Cond)
		if err != nil {
			return nil, err
		}
	}
	elt, err := c.expr(x.Elt)
	if err != nil {
		return nil, err
	}
	// range specialization.
	if rng, ok := rangeCall(x.Iter); ok {
		bounds, err := c.rangeBounds(rng)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			start, stop, step, ec := bounds(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			var out []rows.Slot
			for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
				fr.Slots[vslot] = rows.I64(i)
				if cond != nil {
					t, ec := cond(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if !t {
						continue
					}
				}
				v, ec := elt(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				out = append(out, v)
			}
			return rows.List(out), 0
		}, nil
	}
	iter, err := c.expr(x.Iter)
	if err != nil {
		return nil, err
	}
	iterT := x.Iter.Type().Unwrap()
	return func(fr *Frame) (rows.Slot, ECode) {
		it, ec := iter(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		elems, ec := iterateSlot(it, iterT)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		out := make([]rows.Slot, 0, len(elems))
		for _, el := range elems {
			fr.Slots[vslot] = el
			if cond != nil {
				t, ec := cond(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if !t {
					continue
				}
			}
			v, ec := elt(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			out = append(out, v)
		}
		return rows.List(out), 0
	}, nil
}
