package codegen

import (
	"math"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// boxedBinOp is the non-specialized fallback: box operands, dispatch
// through pyvalue, unbox the result. It is what "LLVM optimizers off"
// compiles to in the Fig. 11 ablation.
func boxedBinOp(op string, l, r exprFn) exprFn {
	return func(fr *Frame) (rows.Slot, ECode) {
		a, ec := l(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		b, ec := r(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		v, err := applyBoxedOp(op, a.Value(), b.Value())
		if err != nil {
			return rows.Slot{}, pyvalue.KindOf(err)
		}
		return rows.FromValue(v), 0
	}
}

func applyBoxedOp(op string, a, b pyvalue.Value) (pyvalue.Value, error) {
	switch op {
	case "+":
		return pyvalue.Add(a, b)
	case "-":
		return pyvalue.Sub(a, b)
	case "*":
		return pyvalue.Mul(a, b)
	case "/":
		return pyvalue.TrueDiv(a, b)
	case "//":
		return pyvalue.FloorDiv(a, b)
	case "%":
		return pyvalue.Mod(a, b)
	case "**":
		return pyvalue.Pow(a, b)
	case "&":
		return pyvalue.BitAnd(a, b)
	case "|":
		return pyvalue.BitOr(a, b)
	case "^":
		return pyvalue.BitXor(a, b)
	case "<<":
		return pyvalue.LShift(a, b)
	case ">>":
		return pyvalue.RShift(a, b)
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "operator %q", op)
	}
}

// asI64 wraps e (typed int-like, possibly optional) into an int64
// producer with runtime checks only where the static type demands them.
func asI64(e exprFn, t types.Type) func(fr *Frame) (int64, ECode) {
	u := t.Unwrap()
	if !t.IsOption() && u.Kind() == types.KindI64 {
		return func(fr *Frame) (int64, ECode) {
			v, ec := e(fr)
			return v.I, ec
		}
	}
	return func(fr *Frame) (int64, ECode) {
		v, ec := e(fr)
		if ec != 0 {
			return 0, ec
		}
		switch v.Tag {
		case types.KindI64:
			return v.I, 0
		case types.KindBool:
			if v.B {
				return 1, 0
			}
			return 0, 0
		default:
			return 0, pyvalue.ExcTypeError
		}
	}
}

// asF64 wraps e (typed numeric, possibly optional) into a float64
// producer.
func asF64(e exprFn, t types.Type) func(fr *Frame) (float64, ECode) {
	u := t.Unwrap()
	if !t.IsOption() {
		switch u.Kind() {
		case types.KindF64:
			return func(fr *Frame) (float64, ECode) {
				v, ec := e(fr)
				return v.F, ec
			}
		case types.KindI64:
			return func(fr *Frame) (float64, ECode) {
				v, ec := e(fr)
				return float64(v.I), ec
			}
		}
	}
	return func(fr *Frame) (float64, ECode) {
		v, ec := e(fr)
		if ec != 0 {
			return 0, ec
		}
		switch v.Tag {
		case types.KindF64:
			return v.F, 0
		case types.KindI64:
			return float64(v.I), 0
		case types.KindBool:
			if v.B {
				return 1, 0
			}
			return 0, 0
		default:
			return 0, pyvalue.ExcTypeError
		}
	}
}

// asStr wraps e (typed str, possibly optional) into a string producer.
// A None at runtime raises ec (TypeError by default; AttributeError for
// method receivers).
func asStr(e exprFn, t types.Type, onNull ECode) func(fr *Frame) (string, ECode) {
	if !t.IsOption() && t.Kind() == types.KindStr {
		return func(fr *Frame) (string, ECode) {
			v, ec := e(fr)
			return v.S, ec
		}
	}
	return func(fr *Frame) (string, ECode) {
		v, ec := e(fr)
		if ec != 0 {
			return "", ec
		}
		if v.Tag != types.KindStr {
			return "", onNull
		}
		return v.S, 0
	}
}

// binOp compiles a typed binary operator. lx/rx are the operand AST
// nodes when available (nil otherwise); they let dataflow facts elide
// runtime checks the values provably cannot trip.
func (c *compiler) binOp(op string, l, r exprFn, lx, rx pyast.Expr, lt, rt, resT types.Type) (exprFn, error) {
	if !c.opts.Specialize {
		return boxedBinOp(op, l, r), nil
	}
	// Null-check elision: an Option operand proven non-null on this path
	// compiles with the unwrapped type's direct accessor.
	if lt.IsOption() && c.flowNonNull(lx) {
		lt = lt.Unwrap()
		c.stats.ChecksElided++
	}
	if rt.IsOption() && c.flowNonNull(rx) {
		rt = rt.Unwrap()
		c.stats.ChecksElided++
	}
	lu, ru := lt.Unwrap(), rt.Unwrap()
	numeric := lu.IsNumeric() && ru.IsNumeric()
	intResult := numeric && resT.Unwrap().Kind() == types.KindI64

	switch op {
	case "+", "-", "*", "//", "%", "**":
		if numeric && intResult {
			li, ri := c.i64OpFB(lx, lt, l), c.i64OpFB(rx, rt, r)
			switch op {
			case "+":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.I64(a + b), 0
				}, nil
			case "-":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.I64(a - b), 0
				}, nil
			case "*":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.I64(a * b), 0
				}, nil
			case "//":
				if c.flowNonZero(rx) {
					c.stats.ChecksElided++
					return func(fr *Frame) (rows.Slot, ECode) {
						a, ec := li(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						b, ec := ri(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						return rows.I64(pyvalue.FloorDivInt(a, b)), 0
					}, nil
				}
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if b == 0 {
						return rows.Slot{}, pyvalue.ExcZeroDivisionError
					}
					return rows.I64(pyvalue.FloorDivInt(a, b)), 0
				}, nil
			case "%":
				if c.flowNonZero(rx) {
					c.stats.ChecksElided++
					return func(fr *Frame) (rows.Slot, ECode) {
						a, ec := li(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						b, ec := ri(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						return rows.I64(pyvalue.FloorModInt(a, b)), 0
					}, nil
				}
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if b == 0 {
						return rows.Slot{}, pyvalue.ExcZeroDivisionError
					}
					return rows.I64(pyvalue.FloorModInt(a, b)), 0
				}, nil
			case "**":
				if c.flowNonNegative(rx) {
					c.stats.ChecksElided++
					return func(fr *Frame) (rows.Slot, ECode) {
						a, ec := li(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						b, ec := ri(fr)
						if ec != 0 {
							return rows.Slot{}, ec
						}
						return rows.I64(pyvalue.IPow(a, b)), 0
					}, nil
				}
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := li(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := ri(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if b < 0 {
						// int**negative is a float in Python: off the
						// normal-case type, retried on the general path.
						return rows.Slot{}, pyvalue.ExcUnsupported
					}
					return rows.I64(pyvalue.IPow(a, b)), 0
				}, nil
			}
		}
		if numeric {
			lf, rf := c.f64OpFB(lx, lt, l), c.f64OpFB(rx, rt, r)
			switch op {
			case "+":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.F64(a + b), 0
				}, nil
			case "-":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.F64(a - b), 0
				}, nil
			case "*":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.F64(a * b), 0
				}, nil
			case "//":
				checkZero := !c.flowNonZero(rx)
				if !checkZero {
					c.stats.ChecksElided++
				}
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if checkZero && b == 0 {
						return rows.Slot{}, pyvalue.ExcZeroDivisionError
					}
					return rows.F64(math.Floor(a / b)), 0
				}, nil
			case "%":
				checkZero := !c.flowNonZero(rx)
				if !checkZero {
					c.stats.ChecksElided++
				}
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					if checkZero && b == 0 {
						return rows.Slot{}, pyvalue.ExcZeroDivisionError
					}
					return rows.F64(pyvalue.FloorModFloat(a, b)), 0
				}, nil
			case "**":
				return func(fr *Frame) (rows.Slot, ECode) {
					a, ec := lf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					b, ec := rf(fr)
					if ec != 0 {
						return rows.Slot{}, ec
					}
					return rows.F64(math.Pow(a, b)), 0
				}, nil
			}
		}
		// String cases.
		if op == "+" && lu.Kind() == types.KindStr && ru.Kind() == types.KindStr {
			ls, rs := c.strOpFB(lx, lt, l, pyvalue.ExcTypeError), c.strOpFB(rx, rt, r, pyvalue.ExcTypeError)
			return func(fr *Frame) (rows.Slot, ECode) {
				a, ec := ls(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				b, ec := rs(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if a == "" {
					return rows.Str(b), 0
				}
				if b == "" {
					return rows.Str(a), 0
				}
				return rows.Str(fr.Arena.Concat(a, b)), 0
			}, nil
		}
		if op == "*" && lu.Kind() == types.KindStr && ru.IsNumeric() {
			ls, ri := c.strOpFB(lx, lt, l, pyvalue.ExcTypeError), c.i64OpFB(rx, rt, r)
			return func(fr *Frame) (rows.Slot, ECode) {
				a, ec := ls(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				n, ec := ri(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if n <= 0 {
					return rows.Str(""), 0
				}
				return rows.Str(strings.Repeat(a, int(n))), 0
			}, nil
		}
		if op == "%" && lu.Kind() == types.KindStr {
			// printf-style formatting: the shared formatter appends into
			// the frame's scratch buffer and the result is arena-interned,
			// so a hot-loop format pays only the operand boxing.
			ls := c.strOpFB(lx, lt, l, pyvalue.ExcTypeError)
			return func(fr *Frame) (rows.Slot, ECode) {
				a, ec := ls(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				b, ec := r(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				out, err := pyvalue.AppendPercentFormat(fr.Scratch[:0], a, b.Value())
				if err != nil {
					return rows.Slot{}, pyvalue.KindOf(err)
				}
				fr.Scratch = out[:0]
				return rows.Str(fr.Arena.Intern(out)), 0
			}, nil
		}
		if op == "+" && lu.Kind() == types.KindList && ru.Kind() == types.KindList {
			return boxedBinOp(op, l, r), nil
		}
		return boxedBinOp(op, l, r), nil
	case "/":
		lf, rf := c.f64OpFB(lx, lt, l), c.f64OpFB(rx, rt, r)
		checkZero := !c.flowNonZero(rx)
		if !checkZero {
			c.stats.ChecksElided++
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			a, ec := lf(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			b, ec := rf(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if checkZero && b == 0 {
				return rows.Slot{}, pyvalue.ExcZeroDivisionError
			}
			return rows.F64(a / b), 0
		}, nil
	case "&", "|", "^", "<<", ">>":
		li, ri := c.i64OpFB(lx, lt, l), c.i64OpFB(rx, rt, r)
		o := op
		return func(fr *Frame) (rows.Slot, ECode) {
			a, ec := li(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			b, ec := ri(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			switch o {
			case "&":
				return rows.I64(a & b), 0
			case "|":
				return rows.I64(a | b), 0
			case "^":
				return rows.I64(a ^ b), 0
			case "<<":
				return rows.I64(a << uint(b)), 0
			default:
				return rows.I64(a >> uint(b)), 0
			}
		}, nil
	default:
		return boxedBinOp(op, l, r), nil
	}
}

// compare compiles a (possibly chained) comparison.
func (c *compiler) compare(x *pyast.Compare) (exprFn, error) {
	if f, err := c.compareBool(x); err != nil {
		return nil, err
	} else if f != nil {
		return func(fr *Frame) (rows.Slot, ECode) {
			ok, ec := f(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Bool(ok), 0
		}, nil
	}
	operands := append([]pyast.Expr{x.First}, x.Rest...)
	fns := make([]exprFn, len(operands))
	for i, e := range operands {
		f, err := c.expr(e)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	steps := make([]func(fr *Frame, a, b rows.Slot) (bool, ECode), len(x.Ops))
	for i, op := range x.Ops {
		lt := operands[i].Type()
		rt := operands[i+1].Type()
		step, err := c.compareStep(op, lt, rt)
		if err != nil {
			return nil, err
		}
		steps[i] = step
	}
	if len(steps) == 1 {
		lf, rf := fns[0], fns[1]
		step := steps[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			a, ec := lf(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			b, ec := rf(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			ok, ec := step(fr, a, b)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Bool(ok), 0
		}, nil
	}
	return func(fr *Frame) (rows.Slot, ECode) {
		left, ec := fns[0](fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		for i, step := range steps {
			right, ec := fns[i+1](fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			ok, ec := step(fr, left, right)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if !ok {
				return rows.Bool(false), 0
			}
			left = right
		}
		return rows.Bool(true), 0
	}, nil
}

func (c *compiler) compareStep(op string, lt, rt types.Type) (func(fr *Frame, a, b rows.Slot) (bool, ECode), error) {
	boxed := func(fr *Frame, a, b rows.Slot) (bool, ECode) {
		v, err := pyvalue.Compare(op, a.Value(), b.Value())
		if err != nil {
			return false, pyvalue.KindOf(err)
		}
		return pyvalue.Truth(v), 0
	}
	if !c.opts.Specialize {
		return boxed, nil
	}
	lu, ru := lt.Unwrap(), rt.Unwrap()
	switch op {
	case "==", "!=":
		neg := op == "!="
		return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
			return rows.Equal(a, b) != neg, 0
		}, nil
	case "is":
		return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
			return a.Tag == types.KindNull && b.Tag == types.KindNull ||
				(a.Tag == b.Tag && rows.Equal(a, b)), 0
		}, nil
	case "is not":
		return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
			same := a.Tag == types.KindNull && b.Tag == types.KindNull ||
				(a.Tag == b.Tag && rows.Equal(a, b))
			return !same, 0
		}, nil
	case "in", "not in":
		neg := op == "not in"
		if ru.Kind() == types.KindStr {
			return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
				if a.Tag != types.KindStr || b.Tag != types.KindStr {
					return false, pyvalue.ExcTypeError
				}
				return strings.Contains(b.S, a.S) != neg, 0
			}, nil
		}
		return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
			if b.Tag != types.KindList && b.Tag != types.KindTuple {
				return boxed(fr, a, b)
			}
			found := false
			for _, el := range b.Seq {
				if rows.Equal(el, a) {
					found = true
					break
				}
			}
			return found != neg, 0
		}, nil
	case "<", "<=", ">", ">=":
		if lu.IsNumeric() && ru.IsNumeric() {
			o := op
			return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
				af, aok := slotF64(a)
				bf, bok := slotF64(b)
				if !aok || !bok {
					return false, pyvalue.ExcTypeError
				}
				switch o {
				case "<":
					return af < bf, 0
				case "<=":
					return af <= bf, 0
				case ">":
					return af > bf, 0
				default:
					return af >= bf, 0
				}
			}, nil
		}
		if lu.Kind() == types.KindStr && ru.Kind() == types.KindStr {
			o := op
			return func(fr *Frame, a, b rows.Slot) (bool, ECode) {
				if a.Tag != types.KindStr || b.Tag != types.KindStr {
					return false, pyvalue.ExcTypeError
				}
				cmp := strings.Compare(a.S, b.S)
				switch o {
				case "<":
					return cmp < 0, 0
				case "<=":
					return cmp <= 0, 0
				case ">":
					return cmp > 0, 0
				default:
					return cmp >= 0, 0
				}
			}, nil
		}
		return boxed, nil
	default:
		return boxed, nil
	}
}

func slotF64(s rows.Slot) (float64, bool) {
	switch s.Tag {
	case types.KindI64:
		return float64(s.I), true
	case types.KindF64:
		return s.F, true
	case types.KindBool:
		if s.B {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}
