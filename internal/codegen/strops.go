package codegen

import (
	"strings"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// strMethodCall compiles the string methods that dominate data-wrangling
// UDFs into direct implementations over the slot's string, with no
// boxing. None receivers (optional columns) raise AttributeError as
// return codes, matching Python.
func (c *compiler) strMethodCall(x *pyast.Call, attr *pyast.Attr) (exprFn, error) {
	recvE, err := c.expr(attr.X)
	if err != nil {
		return nil, err
	}
	recv := c.strOpFB(attr.X, attr.X.Type(), recvE, pyvalue.ExcAttributeError)
	args, err := c.exprs(x.Args)
	if err != nil {
		return nil, err
	}
	strArg := func(i int) strFn {
		return c.strOpFB(x.Args[i], x.Args[i].Type(), args[i], pyvalue.ExcTypeError)
	}
	intArg := func(i int) i64Fn {
		return c.i64OpFB(x.Args[i], x.Args[i].Type(), args[i])
	}

	if !c.opts.Specialize {
		// Generic path: box receiver and args, dispatch by name.
		name := attr.Name
		return func(fr *Frame) (rows.Slot, ECode) {
			rv, ec := recvE(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			vals := make([]pyvalue.Value, len(args))
			for i, a := range args {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				vals[i] = v.Value()
			}
			res, err := pyvalue.CallMethod(rv.Value(), name, vals)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.FromValue(res), 0
		}, nil
	}

	switch attr.Name {
	case "find", "rfind", "index", "rindex":
		sub := strArg(0)
		last := attr.Name == "rfind" || attr.Name == "rindex"
		raises := attr.Name == "index" || attr.Name == "rindex"
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			needle, ec := sub(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			var i int
			if last {
				i = strings.LastIndex(s, needle)
			} else {
				i = strings.Index(s, needle)
			}
			if i < 0 && raises {
				return rows.Slot{}, pyvalue.ExcValueError
			}
			return rows.I64(int64(i)), 0
		}, nil
	case "lower":
		return wrapStr(strCaseFoldS(recv, false)), nil
	case "upper":
		return wrapStr(strCaseFoldS(recv, true)), nil
	case "capitalize":
		return strUnary(recv, pyvalue.Capitalize), nil
	case "title":
		return strUnary(recv, pyvalue.TitleCase), nil
	case "strip", "lstrip", "rstrip":
		var cut strFn
		if len(args) >= 1 {
			cut = strArg(0)
		}
		return wrapStr(strStripS(recv, cut, attr.Name)), nil
	case "replace":
		return wrapStr(strReplaceS(recv, strArg(0), strArg(1))), nil
	case "split":
		if len(args) == 0 {
			return func(fr *Frame) (rows.Slot, ECode) {
				s, ec := recv(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				fields := strings.Fields(s)
				out := make([]rows.Slot, len(fields))
				for i, f := range fields {
					out[i] = rows.Str(f)
				}
				return rows.List(out), 0
			}, nil
		}
		sep := strArg(0)
		var maxSplit func(fr *Frame) (int64, ECode)
		if len(args) >= 2 {
			maxSplit = intArg(1)
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			sp, ec := sep(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if sp == "" {
				return rows.Slot{}, pyvalue.ExcValueError
			}
			n := -1
			if maxSplit != nil {
				m, ec := maxSplit(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if m >= 0 {
					n = int(m) + 1
				}
			}
			parts := strings.SplitN(s, sp, n)
			out := make([]rows.Slot, len(parts))
			for i, p := range parts {
				out[i] = rows.Str(p)
			}
			return rows.List(out), 0
		}, nil
	case "join":
		arg := args[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			sep, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			v, ec := arg(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if v.Tag != types.KindList && v.Tag != types.KindTuple {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			parts := make([]string, len(v.Seq))
			for i, el := range v.Seq {
				if el.Tag != types.KindStr {
					return rows.Slot{}, pyvalue.ExcTypeError
				}
				parts[i] = el.S
			}
			return rows.Str(strings.Join(parts, sep)), 0
		}, nil
	case "startswith", "endswith":
		pre := strArg(0)
		isPrefix := attr.Name == "startswith"
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			p, ec := pre(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if isPrefix {
				return rows.Bool(strings.HasPrefix(s, p)), 0
			}
			return rows.Bool(strings.HasSuffix(s, p)), 0
		}, nil
	case "count":
		sub := strArg(0)
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			needle, ec := sub(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if needle == "" {
				return rows.I64(int64(len(s) + 1)), 0
			}
			return rows.I64(int64(strings.Count(s, needle))), 0
		}, nil
	case "isdigit", "isalpha", "isalnum", "isspace", "islower", "isupper":
		name := attr.Name
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			res, err := pyvalue.CallMethod(pyvalue.Str(s), name, nil)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.Bool(bool(res.(pyvalue.Bool))), 0
		}, nil
	case "format":
		return func(fr *Frame) (rows.Slot, ECode) {
			f, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			vals := make([]pyvalue.Value, len(args))
			for i, a := range args {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				vals[i] = v.Value()
			}
			res, err := pyvalue.StrFormat(f, vals)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.Str(string(res.(pyvalue.Str))), 0
		}, nil
	case "zfill", "ljust", "rjust":
		name := attr.Name
		w := intArg(0)
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			width, ec := w(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			res, err := pyvalue.CallMethod(pyvalue.Str(s), name, []pyvalue.Value{pyvalue.Int(width)})
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.Str(string(res.(pyvalue.Str))), 0
		}, nil
	default:
		return exitFn(pyvalue.ExcUnsupported), nil
	}
}

func strUnary(recv strFn, f func(string) string) exprFn {
	return wrapStr(strUnaryS(recv, f))
}

func strUnaryS(recv strFn, f func(string) string) strFn {
	return func(fr *Frame) (string, ECode) {
		s, ec := recv(fr)
		if ec != 0 {
			return "", ec
		}
		return f(s), 0
	}
}

// strCaseFoldS is lower()/upper() with an ASCII fast path: unchanged
// input is returned as-is (no allocation), changed ASCII input is
// folded into frame scratch and arena-interned, and any non-ASCII byte
// falls back to the stdlib's full Unicode case mapping.
func strCaseFoldS(recv strFn, upper bool) strFn {
	return func(fr *Frame) (string, ECode) {
		s, ec := recv(fr)
		if ec != 0 {
			return "", ec
		}
		changed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 0x80 {
				if upper {
					return strings.ToUpper(s), 0
				}
				return strings.ToLower(s), 0
			}
			if upper {
				changed = changed || (c >= 'a' && c <= 'z')
			} else {
				changed = changed || (c >= 'A' && c <= 'Z')
			}
		}
		if !changed {
			return s, 0
		}
		buf := fr.Scratch[:0]
		for i := 0; i < len(s); i++ {
			c := s[i]
			if upper {
				if c >= 'a' && c <= 'z' {
					c -= 'a' - 'A'
				}
			} else if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf = append(buf, c)
		}
		fr.Scratch = buf[:0]
		return fr.Arena.Intern(buf), 0
	}
}

// strReplaceS is str.replace with no-match and empty-needle handled
// without rebuilding, and rebuilt results arena-interned.
func strReplaceS(recv, oldA, newA strFn) strFn {
	return func(fr *Frame) (string, ECode) {
		s, ec := recv(fr)
		if ec != 0 {
			return "", ec
		}
		o, ec := oldA(fr)
		if ec != 0 {
			return "", ec
		}
		n, ec := newA(fr)
		if ec != 0 {
			return "", ec
		}
		if o == "" || !strings.Contains(s, o) {
			// Python's ''.replace('', n) interleaves n between
			// characters; rare enough to leave to the stdlib. No match
			// returns the receiver unchanged: zero cost.
			if o == "" {
				return strings.ReplaceAll(s, o, n), 0
			}
			return s, 0
		}
		buf := fr.Scratch[:0]
		for {
			i := strings.Index(s, o)
			if i < 0 {
				buf = append(buf, s...)
				break
			}
			buf = append(buf, s[:i]...)
			buf = append(buf, n...)
			s = s[i+len(o):]
		}
		fr.Scratch = buf[:0]
		return fr.Arena.Intern(buf), 0
	}
}

// strStripS is strip/lstrip/rstrip; cut nil means whitespace.
func strStripS(recv, cut strFn, name string) strFn {
	return func(fr *Frame) (string, ECode) {
		s, ec := recv(fr)
		if ec != 0 {
			return "", ec
		}
		cutset := " \t\n\r\v\f"
		if cut != nil {
			cutset, ec = cut(fr)
			if ec != 0 {
				return "", ec
			}
		}
		switch name {
		case "strip":
			return strings.Trim(s, cutset), 0
		case "lstrip":
			return strings.TrimLeft(s, cutset), 0
		default:
			return strings.TrimRight(s, cutset), 0
		}
	}
}
