package codegen

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

func TestCompiledWhileLoop(t *testing.T) {
	src := `def isqrt(n):
    i = 0
    while i * i <= n:
        i += 1
    return i - 1
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(17))
	wantSlot(t, v, ec, rows.I64(4))
	v, ec = callUDF(t, u, rows.I64(0))
	wantSlot(t, v, ec, rows.I64(0))
}

func TestCompiledBitwiseOps(t *testing.T) {
	u, _ := compileUDF(t, "lambda a, b: (a & b) | (a ^ b) | (a << 1) | (a >> 1)",
		[]types.Type{types.I64, types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(12), rows.I64(10))
	want := (int64(12) & 10) | (12 ^ 10) | (12 << 1) | (12 >> 1)
	wantSlot(t, v, ec, rows.I64(want))
}

func TestCompiledIsNone(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: x is None", []types.Type{types.Option(types.Str)}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Null())
	wantSlot(t, v, ec, rows.Bool(true))
	v, ec = callUDF(t, u, rows.Str("x"))
	wantSlot(t, v, ec, rows.Bool(false))

	u2, _ := compileUDF(t, "lambda x: x is not None", []types.Type{types.Option(types.I64)}, DefaultOptions())
	v, ec = callUDF(t, u2, rows.I64(0))
	wantSlot(t, v, ec, rows.Bool(true))
}

func TestCompiledStringPredicates(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s.isdigit() or s.startswith('x')",
		[]types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("123"))
	wantSlot(t, v, ec, rows.Bool(true))
	v, ec = callUDF(t, u, rows.Str("xab"))
	wantSlot(t, v, ec, rows.Bool(true))
	v, ec = callUDF(t, u, rows.Str("zz9"))
	wantSlot(t, v, ec, rows.Bool(false))
}

func TestCompiledZfillTitleJust(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s.zfill(6) + '|' + s.title() + '|' + s.ljust(4)",
		[]types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("ab"))
	wantSlot(t, v, ec, rows.Str("0000ab|Ab|ab  "))
}

func TestCompiledMinMaxNumeric(t *testing.T) {
	u, _ := compileUDF(t, "lambda a, b: min(a, b) + max(a, b)",
		[]types.Type{types.I64, types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(3), rows.I64(9))
	wantSlot(t, v, ec, rows.I64(12))
}

func TestCompiledAbsRound(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: abs(x)", []types.Type{types.F64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.F64(-2.5))
	wantSlot(t, v, ec, rows.F64(2.5))
	u2, _ := compileUDF(t, "lambda x: round(x)", []types.Type{types.F64}, DefaultOptions())
	v, ec = callUDF(t, u2, rows.F64(2.5)) // banker's rounding
	wantSlot(t, v, ec, rows.I64(2))
}

func TestCompiledStrOfEverything(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: str(x)", []types.Type{types.Option(types.F64)}, DefaultOptions())
	v, ec := callUDF(t, u, rows.F64(1.5))
	wantSlot(t, v, ec, rows.Str("1.5"))
	v, ec = callUDF(t, u, rows.Null())
	wantSlot(t, v, ec, rows.Str("None"))
}

func TestCompiledNegativeStringIndex(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s[-1] + s[-2]", []types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("abc"))
	wantSlot(t, v, ec, rows.Str("cb"))
	_, ec = callUDF(t, u, rows.Str("a"))
	if ec != pyvalue.ExcIndexError {
		t.Fatalf("ec = %v", ec)
	}
}

func TestCompiledStepSlices(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s[::2] + '|' + s[::-1]", []types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("abcdef"))
	wantSlot(t, v, ec, rows.Str("ace|fedcba"))
}

func TestCompiledTupleReturn(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: (x, x * 2, 'tag')", []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(5))
	if ec != 0 || v.Tag != types.KindTuple || len(v.Seq) != 3 {
		t.Fatalf("v = %+v ec = %v", v, ec)
	}
	if v.Seq[1].I != 10 || v.Seq[2].S != "tag" {
		t.Fatalf("seq = %+v", v.Seq)
	}
}

func TestCompiledTupleUnpack(t *testing.T) {
	src := `def f(x):
    a, b = x, x + 1
    return b * 10 + a
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(3))
	wantSlot(t, v, ec, rows.I64(43))
}

func TestCompiledBreakContinue(t *testing.T) {
	src := `def f(n):
    total = 0
    for i in range(100):
        if i >= n:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(6))
	wantSlot(t, v, ec, rows.I64(9)) // 1 + 3 + 5
}

func TestCompiledNestedConditionalChains(t *testing.T) {
	src := `def band(x):
    if x < 10:
        return 'small'
    elif x < 100:
        return 'medium'
    elif x < 1000:
        return 'large'
    else:
        return 'huge'
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	for in, want := range map[int64]string{5: "small", 50: "medium", 500: "large", 5000: "huge"} {
		v, ec := callUDF(t, u, rows.I64(in))
		wantSlot(t, v, ec, rows.Str(want))
	}
}

func TestClearSlotAnalysis(t *testing.T) {
	// Locals assigned in a straight-line prefix are not cleared between
	// calls; conditionally-assigned locals are.
	src := `def f(x):
    a = x + 1
    b = a * 2
    if x > 0:
        c = 1
    return b
`
	u, _ := compileUDF(t, src, []types.Type{types.I64}, DefaultOptions())
	// slots: x, a, b, c -> only c needs clearing.
	if len(u.clearSlots) != 1 {
		t.Fatalf("clearSlots = %v", u.clearSlots)
	}
	// Behavior across reused frames stays correct.
	fr := NewFrame(u.NumSlots())
	v, ec := u.Call(fr, []rows.Slot{rows.I64(5)})
	wantSlot(t, v, ec, rows.I64(12))
	v, ec = u.Call(fr, []rows.Slot{rows.I64(-5)})
	wantSlot(t, v, ec, rows.I64(-8))
}

func TestCompiledPercentFormats(t *testing.T) {
	u, _ := compileUDF(t, "lambda x: '%s=%d (%.1f%%)' % (x, x * 2, 12.5)",
		[]types.Type{types.I64}, DefaultOptions())
	v, ec := callUDF(t, u, rows.I64(4))
	wantSlot(t, v, ec, rows.Str("4=8 (12.5%)"))
}

func TestCompiledInOnListLiteral(t *testing.T) {
	u, _ := compileUDF(t, "lambda s: s in ('a', 'b', 'c')", []types.Type{types.Str}, DefaultOptions())
	v, ec := callUDF(t, u, rows.Str("b"))
	wantSlot(t, v, ec, rows.Bool(true))
	v, ec = callUDF(t, u, rows.Str("z"))
	wantSlot(t, v, ec, rows.Bool(false))
}
