package codegen

import (
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyre"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// call compiles function/method/module calls. Regex patterns that are
// string literals compile at UDF-compile time (the paper's prototype
// does the same with PCRE2); everything else specializes on the static
// receiver/argument types established by inference.
func (c *compiler) call(x *pyast.Call) (exprFn, error) {
	if attr, ok := x.Fn.(*pyast.Attr); ok {
		if mod, ok := attr.X.(*pyast.Name); ok && isModuleIdent(mod.Ident) {
			if _, shadowed := c.slots[mod.Ident]; !shadowed {
				return c.moduleCall(x, mod.Ident+"."+attr.Name)
			}
		}
		return c.methodCall(x, attr)
	}
	name, ok := x.Fn.(*pyast.Name)
	if !ok {
		return exitFn(pyvalue.ExcUnsupported), nil
	}
	switch name.Ident {
	case "re_search":
		return c.moduleCall(x, "re.search")
	case "re_match":
		return c.moduleCall(x, "re.match")
	case "re_sub":
		return c.moduleCall(x, "re.sub")
	case "random_choice":
		return c.moduleCall(x, "random.choice")
	case "string_capwords":
		return c.moduleCall(x, "string.capwords")
	}
	return c.builtinCall(x, name.Ident)
}

func isModuleIdent(n string) bool { return n == "re" || n == "random" || n == "string" }

func exitFn(ec ECode) exprFn {
	return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, ec }
}

// constPattern extracts a compile-time regex from a literal argument.
func constPattern(e pyast.Expr) (string, bool) {
	lit, ok := e.(*pyast.StrLit)
	if !ok {
		return "", false
	}
	return lit.S, true
}

func (c *compiler) moduleCall(x *pyast.Call, qual string) (exprFn, error) {
	switch qual {
	case "re.search", "re.match":
		pat, ok := constPattern(x.Args[0])
		if !ok {
			return exitFn(pyvalue.ExcUnsupported), nil
		}
		re, err := pyre.Compile(pat)
		if err != nil {
			return exitFn(pyvalue.ExcValueError), nil
		}
		sub, err := c.expr(x.Args[1])
		if err != nil {
			return nil, err
		}
		subject := asStr(sub, x.Args[1].Type(), pyvalue.ExcTypeError)
		prefixOnly := qual == "re.match"
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := subject(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			var saves []int
			if prefixOnly {
				saves = re.MatchPrefix(s)
			} else {
				saves = re.Search(s)
			}
			if saves == nil {
				return rows.Null(), 0
			}
			n := len(saves) / 2
			m := &pyvalue.Match{Groups: make([]string, n), Present: make([]bool, n)}
			for i := range n {
				if saves[2*i] >= 0 {
					m.Groups[i] = s[saves[2*i]:saves[2*i+1]]
					m.Present[i] = true
				}
			}
			return rows.Slot{Tag: types.KindMatch, Obj: m}, 0
		}, nil
	case "re.sub":
		pat, ok := constPattern(x.Args[0])
		if !ok {
			return exitFn(pyvalue.ExcUnsupported), nil
		}
		re, err := pyre.Compile(pat)
		if err != nil {
			return exitFn(pyvalue.ExcValueError), nil
		}
		repl, err := c.expr(x.Args[1])
		if err != nil {
			return nil, err
		}
		replStr := asStr(repl, x.Args[1].Type(), pyvalue.ExcTypeError)
		sub, err := c.expr(x.Args[2])
		if err != nil {
			return nil, err
		}
		subject := asStr(sub, x.Args[2].Type(), pyvalue.ExcTypeError)
		return func(fr *Frame) (rows.Slot, ECode) {
			r, ec := replStr(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			s, ec := subject(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Str(re.Sub(r, s)), 0
		}, nil
	case "random.choice":
		arg, err := c.expr(x.Args[0])
		if err != nil {
			return nil, err
		}
		at := x.Args[0].Type().Unwrap()
		if at.Kind() == types.KindStr {
			seq := asStr(arg, x.Args[0].Type(), pyvalue.ExcTypeError)
			return func(fr *Frame) (rows.Slot, ECode) {
				s, ec := seq(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if s == "" {
					return rows.Slot{}, pyvalue.ExcIndexError
				}
				return rows.Str(fr.Rand.Choice(s)), 0
			}, nil
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := arg(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if (v.Tag != types.KindList && v.Tag != types.KindTuple) || len(v.Seq) == 0 {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			return v.Seq[fr.Rand.Intn(len(v.Seq))], 0
		}, nil
	case "string.capwords":
		arg, err := c.expr(x.Args[0])
		if err != nil {
			return nil, err
		}
		s := asStr(arg, x.Args[0].Type(), pyvalue.ExcTypeError)
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := s(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Str(pyvalue.Capwords(v)), 0
		}, nil
	default:
		return exitFn(pyvalue.ExcUnsupported), nil
	}
}

func (c *compiler) builtinCall(x *pyast.Call, name string) (exprFn, error) {
	args, err := c.exprs(x.Args)
	if err != nil {
		return nil, err
	}
	argT := func(i int) types.Type { return x.Args[i].Type() }
	switch name {
	case "len":
		a := args[0]
		switch argT(0).Unwrap().Kind() {
		case types.KindStr:
			s := c.strOpFB(x.Args[0], argT(0), a, pyvalue.ExcTypeError)
			return func(fr *Frame) (rows.Slot, ECode) {
				v, ec := s(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				return rows.I64(int64(len(v))), 0
			}, nil
		default:
			return func(fr *Frame) (rows.Slot, ECode) {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				switch v.Tag {
				case types.KindStr:
					return rows.I64(int64(len(v.S))), 0
				case types.KindList, types.KindTuple, types.KindDict:
					return rows.I64(int64(len(v.Seq))), 0
				case types.KindNull:
					return rows.Slot{}, pyvalue.ExcTypeError
				default:
					return rows.Slot{}, pyvalue.ExcUnsupported
				}
			}, nil
		}
	case "int":
		if len(args) == 0 {
			return func(fr *Frame) (rows.Slot, ECode) { return rows.I64(0), 0 }, nil
		}
		a := args[0]
		switch argT(0).Unwrap().Kind() {
		case types.KindStr:
			s := c.strOpFB(x.Args[0], argT(0), a, pyvalue.ExcTypeError)
			return func(fr *Frame) (rows.Slot, ECode) {
				v, ec := s(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				n, perr := parseIntPython(v)
				if perr != 0 {
					return rows.Slot{}, perr
				}
				return rows.I64(n), 0
			}, nil
		default:
			return func(fr *Frame) (rows.Slot, ECode) {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				switch v.Tag {
				case types.KindI64:
					return v, 0
				case types.KindF64:
					return rows.I64(int64(truncToward0(v.F))), 0
				case types.KindBool:
					if v.B {
						return rows.I64(1), 0
					}
					return rows.I64(0), 0
				case types.KindStr:
					n, perr := parseIntPython(v.S)
					if perr != 0 {
						return rows.Slot{}, perr
					}
					return rows.I64(n), 0
				default:
					return rows.Slot{}, pyvalue.ExcTypeError
				}
			}, nil
		}
	case "float":
		if len(args) == 0 {
			return func(fr *Frame) (rows.Slot, ECode) { return rows.F64(0), 0 }, nil
		}
		a := args[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			switch v.Tag {
			case types.KindF64:
				return v, 0
			case types.KindI64:
				return rows.F64(float64(v.I)), 0
			case types.KindBool:
				if v.B {
					return rows.F64(1), 0
				}
				return rows.F64(0), 0
			case types.KindStr:
				f, perr := parseFloatPython(v.S)
				if perr != 0 {
					return rows.Slot{}, perr
				}
				return rows.F64(f), 0
			default:
				return rows.Slot{}, pyvalue.ExcTypeError
			}
		}, nil
	case "str":
		if len(args) == 0 {
			return func(fr *Frame) (rows.Slot, ECode) { return rows.Str(""), 0 }, nil
		}
		a := args[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if v.Tag == types.KindStr {
				return v, 0
			}
			return rows.Str(pyvalue.ToStr(v.Value())), 0
		}, nil
	case "bool":
		if len(args) == 0 {
			return func(fr *Frame) (rows.Slot, ECode) { return rows.Bool(false), 0 }, nil
		}
		a := args[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			return rows.Bool(v.Truth()), 0
		}, nil
	case "abs":
		a := args[0]
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			switch v.Tag {
			case types.KindI64:
				if v.I < 0 {
					return rows.I64(-v.I), 0
				}
				return v, 0
			case types.KindF64:
				if v.F < 0 {
					return rows.F64(-v.F), 0
				}
				return v, 0
			case types.KindBool:
				if v.B {
					return rows.I64(1), 0
				}
				return rows.I64(0), 0
			default:
				return rows.Slot{}, pyvalue.ExcTypeError
			}
		}, nil
	case "min", "max":
		wantMax := name == "max"
		return func(fr *Frame) (rows.Slot, ECode) {
			var vals []pyvalue.Value
			for _, a := range args {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				vals = append(vals, v.Value())
			}
			res, err := pyvalue.MinMax(vals, wantMax)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.FromValue(res), 0
		}, nil
	case "round":
		a := args[0]
		var nd exprFn
		if len(args) >= 2 {
			nd = args[1]
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			v, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			f, ok := slotF64(v)
			if !ok {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			var ndp *int64
			if nd != nil {
				nv, ec := nd(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				if nv.Tag == types.KindI64 {
					ndp = &nv.I
				}
			}
			res, err := pyvalue.Round(pyvalue.Float(f), ndp)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.FromValue(res), 0
		}, nil
	case "range":
		bounds, err := c.rangeBounds(x)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (rows.Slot, ECode) {
			start, stop, step, ec := bounds(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			var out []rows.Slot
			for i := start; (step > 0 && i < stop) || (step < 0 && i > stop); i += step {
				out = append(out, rows.I64(i))
			}
			return rows.List(out), 0
		}, nil
	case "ord":
		a := asStr(args[0], argT(0), pyvalue.ExcTypeError)
		return func(fr *Frame) (rows.Slot, ECode) {
			s, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if len(s) != 1 {
				return rows.Slot{}, pyvalue.ExcTypeError
			}
			return rows.I64(int64(s[0])), 0
		}, nil
	case "chr":
		a := asI64(args[0], argT(0))
		return func(fr *Frame) (rows.Slot, ECode) {
			n, ec := a(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if n < 0 || n > 127 {
				return rows.Slot{}, pyvalue.ExcValueError
			}
			return rows.Str(string(rune(n))), 0
		}, nil
	case "sorted", "sum":
		// Boxed via the shared runtime; these are cold in row UDFs.
		return func(fr *Frame) (rows.Slot, ECode) { return rows.Slot{}, pyvalue.ExcUnsupported }, nil
	default:
		return exitFn(pyvalue.ExcNameError), nil
	}
}

func truncToward0(f float64) float64 {
	if f < 0 {
		return -float64(int64(-f))
	}
	return float64(int64(f))
}

// parseIntPython parses like Python's int(str): surrounding whitespace
// allowed, sign, decimal digits. Hand-rolled rather than
// strconv.ParseInt so the (common, data-driven) failure case costs no
// error allocation — bad cells are normal traffic on the fast path.
func parseIntPython(s string) (int64, ECode) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, pyvalue.ExcValueError
	}
	if strings.ContainsRune(t, '_') {
		t = strings.ReplaceAll(t, "_", "")
		if t == "" {
			return 0, pyvalue.ExcValueError
		}
	}
	neg := false
	i := 0
	if t[0] == '+' || t[0] == '-' {
		neg = t[0] == '-'
		i++
	}
	if i >= len(t) {
		return 0, pyvalue.ExcValueError
	}
	var n uint64
	for ; i < len(t); i++ {
		c := t[i]
		if c < '0' || c > '9' {
			return 0, pyvalue.ExcValueError
		}
		// Overflow reports ValueError like the strconv-based parse did
		// (the engine has no bigint normal path).
		if n > (1<<63)/10 {
			return 0, pyvalue.ExcValueError
		}
		n = n*10 + uint64(c-'0')
		if n > 1<<63 {
			return 0, pyvalue.ExcValueError
		}
	}
	if neg {
		return -int64(n), 0
	}
	if n == 1<<63 {
		return 0, pyvalue.ExcValueError
	}
	return int64(n), 0
}

func parseFloatPython(s string) (float64, ECode) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, pyvalue.ExcValueError
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, pyvalue.ExcValueError
	}
	return f, 0
}

// methodCall compiles obj.method(args) with a receiver type known from
// inference.
func (c *compiler) methodCall(x *pyast.Call, attr *pyast.Attr) (exprFn, error) {
	recvT := attr.X.Type()
	ru := recvT.Unwrap()
	switch ru.Kind() {
	case types.KindStr:
		return c.strMethodCall(x, attr)
	case types.KindMatch:
		return c.matchMethodCall(x, attr)
	case types.KindList, types.KindDict:
		// List/dict mutation methods are cold; run boxed.
		recv, err := c.expr(attr.X)
		if err != nil {
			return nil, err
		}
		args, err := c.exprs(x.Args)
		if err != nil {
			return nil, err
		}
		name := attr.Name
		return func(fr *Frame) (rows.Slot, ECode) {
			rv, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			if rv.Tag == types.KindList {
				// Boxed list methods would not write back into the slot;
				// keep mutations off the fast path.
				return rows.Slot{}, pyvalue.ExcUnsupported
			}
			vals := make([]pyvalue.Value, len(args))
			for i, a := range args {
				v, ec := a(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				vals[i] = v.Value()
			}
			res, err := pyvalue.CallMethod(rv.Value(), name, vals)
			if err != nil {
				return rows.Slot{}, pyvalue.KindOf(err)
			}
			return rows.FromValue(res), 0
		}, nil
	default:
		return exitFn(pyvalue.ExcAttributeError), nil
	}
}

func (c *compiler) matchMethodCall(x *pyast.Call, attr *pyast.Attr) (exprFn, error) {
	recv, err := c.expr(attr.X)
	if err != nil {
		return nil, err
	}
	var idx exprFn
	if len(x.Args) >= 1 {
		if idx, err = c.intExpr(x.Args[0]); err != nil {
			return nil, err
		}
	}
	switch attr.Name {
	case "group":
		return func(fr *Frame) (rows.Slot, ECode) {
			rv, ec := recv(fr)
			if ec != 0 {
				return rows.Slot{}, ec
			}
			m, ok := rv.Obj.(*pyvalue.Match)
			if !ok {
				return rows.Slot{}, pyvalue.ExcAttributeError
			}
			i := int64(0)
			if idx != nil {
				iv, ec := idx(fr)
				if ec != 0 {
					return rows.Slot{}, ec
				}
				i = iv.I
			}
			if i < 0 || int(i) >= len(m.Groups) {
				return rows.Slot{}, pyvalue.ExcIndexError
			}
			if !m.Present[i] {
				return rows.Slot{}, pyvalue.ExcUnsupported
			}
			return rows.Str(m.Groups[i]), 0
		}, nil
	default:
		return exitFn(pyvalue.ExcUnsupported), nil
	}
}
