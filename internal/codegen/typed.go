package codegen

// typed.go — native typed operand compilation.
//
// The generic compiler represents every intermediate value as a
// rows.Slot; each closure boundary copies and zeroes one 80-byte
// struct. Kernel profiles show those copies are the single largest
// cost of row UDFs. The functions here compile the operand shapes hot
// in row UDFs — column loads, string methods, arithmetic, comparisons,
// percent formatting — into closures passing unboxed Go scalars
// (string, int64, float64), recursing through nested expressions, with
// the generic Slot path as fallback for everything else. Operator
// closures in ops.go/strops.go remain the Slot boundary toward
// statements, so semantics (exception codes, null handling, row
// accounting) are unchanged.

import (
	"math"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

type i64Fn = func(*Frame) (int64, ECode)
type f64Fn = func(*Frame) (float64, ECode)
type strFn = func(*Frame) (string, ECode)
type boolFn = func(*Frame) (bool, ECode)

// nativeBail reports whether x must take the generic compile path:
// typing failures and dataflow folds carry semantics (exception exits,
// constant folding) the typed fast paths do not reproduce. It probes
// without bumping optimizer stats so a discarded native attempt leaves
// no trace.
func (c *compiler) nativeBail(x pyast.Expr) bool {
	if _, ok := c.info.Failed[x]; ok {
		return true
	}
	if c.opts.Flow != nil {
		if _, ok := c.opts.Flow.AlwaysRaises(x); ok {
			return true
		}
		switch x.(type) {
		case *pyast.NumLit, *pyast.StrLit, *pyast.BoolLit, *pyast.NoneLit:
			return false
		}
		if _, ok := c.opts.Flow.Constant(x); ok {
			return true
		}
	}
	return false
}

// wrapStr lifts a typed string producer back into a Slot producer.
func wrapStr(f strFn) exprFn {
	return func(fr *Frame) (rows.Slot, ECode) {
		s, ec := f(fr)
		if ec != 0 {
			return rows.Slot{}, ec
		}
		return rows.Str(s), 0
	}
}

// ---- operand entry points with precompiled fallback --------------------
//
// The *OpFB variants are used at operator call sites that already hold
// the generic compile of the operand (binOp, strMethodCall): try the
// native form, adapt the existing closure otherwise. Native compile
// errors cannot introduce new failures — the generic compile of the
// same node already succeeded — so they fall back silently.

func (c *compiler) i64OpFB(x pyast.Expr, t types.Type, fb exprFn) i64Fn {
	if x != nil {
		if f, err := c.i64Nat(x); err == nil && f != nil {
			return f
		}
	}
	return asI64(fb, t)
}

func (c *compiler) f64OpFB(x pyast.Expr, t types.Type, fb exprFn) f64Fn {
	if x != nil {
		if f, err := c.f64Nat(x); err == nil && f != nil {
			return f
		}
	}
	return asF64(fb, t)
}

func (c *compiler) strOpFB(x pyast.Expr, t types.Type, fb exprFn, onNull ECode) strFn {
	if x != nil {
		if f, err := c.strNat(x, onNull); err == nil && f != nil {
			return f
		}
	}
	return asStr(fb, t, onNull)
}

// ---- child compilers (native first, fresh generic fallback) ------------

func (c *compiler) i64Child(x pyast.Expr) (i64Fn, error) {
	if f, err := c.i64Nat(x); err != nil || f != nil {
		return f, err
	}
	e, err := c.expr(x)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	if t.IsOption() && c.flowNonNull(x) {
		t = t.Unwrap()
		c.stats.ChecksElided++
	}
	return asI64(e, t), nil
}

func (c *compiler) f64Child(x pyast.Expr) (f64Fn, error) {
	if f, err := c.f64Nat(x); err != nil || f != nil {
		return f, err
	}
	e, err := c.expr(x)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	if t.IsOption() && c.flowNonNull(x) {
		t = t.Unwrap()
		c.stats.ChecksElided++
	}
	return asF64(e, t), nil
}

func (c *compiler) strChild(x pyast.Expr, onNull ECode) (strFn, error) {
	if f, err := c.strNat(x, onNull); err != nil || f != nil {
		return f, err
	}
	e, err := c.expr(x)
	if err != nil {
		return nil, err
	}
	t := x.Type()
	if t.IsOption() && c.flowNonNull(x) {
		t = t.Unwrap()
		c.stats.ChecksElided++
	}
	return asStr(e, t, onNull), nil
}

// assignNat compiles `name = <typed expr>` into a closure that writes
// the scalar straight into the variable's slot: the generic path
// returns a Slot from the RHS closure, copies it into the statement
// closure, and copies it again into the slot — three 80-byte moves the
// typed store collapses into one.
func (c *compiler) assignNat(target *pyast.Name, value pyast.Expr) (stmtFn, error) {
	if !c.opts.Specialize || c.nativeBail(value) {
		return nil, nil
	}
	t := value.Type()
	if t.IsOption() {
		return nil, nil
	}
	switch t.Kind() {
	case types.KindStr:
		f, err := c.strNat(value, pyvalue.ExcTypeError)
		if err != nil || f == nil {
			return nil, err
		}
		idx := c.slot(target.Ident)
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			v, ec := f(fr)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			p := &fr.Slots[idx]
			p.Tag, p.S = types.KindStr, v
			p.Seq, p.Obj = nil, nil
			return ctlNext, rows.Slot{}, 0
		}, nil
	case types.KindI64:
		f, err := c.i64Nat(value)
		if err != nil || f == nil {
			return nil, err
		}
		idx := c.slot(target.Ident)
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			v, ec := f(fr)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			p := &fr.Slots[idx]
			p.Tag, p.I = types.KindI64, v
			p.S, p.Seq, p.Obj = "", nil, nil
			return ctlNext, rows.Slot{}, 0
		}, nil
	case types.KindF64:
		f, err := c.f64Nat(value)
		if err != nil || f == nil {
			return nil, err
		}
		idx := c.slot(target.Ident)
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			v, ec := f(fr)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			p := &fr.Slots[idx]
			p.Tag, p.F = types.KindF64, v
			p.S, p.Seq, p.Obj = "", nil, nil
			return ctlNext, rows.Slot{}, 0
		}, nil
	case types.KindBool:
		cmp, ok := value.(*pyast.Compare)
		if !ok {
			return nil, nil
		}
		f, err := c.compareBool(cmp)
		if err != nil || f == nil {
			return nil, err
		}
		idx := c.slot(target.Ident)
		return func(fr *Frame) (ctl, rows.Slot, ECode) {
			v, ec := f(fr)
			if ec != 0 {
				return ctlNext, rows.Slot{}, ec
			}
			p := &fr.Slots[idx]
			p.Tag, p.B = types.KindBool, v
			p.S, p.Seq, p.Obj = "", nil, nil
			return ctlNext, rows.Slot{}, 0
		}, nil
	}
	return nil, nil
}

// rowElemAt compiles `name[rowIdx]` column access into a pointer read:
// no copy of the row Slot, no copy of the element.
func (c *compiler) rowElemAt(x *pyast.Subscript) func(fr *Frame) (*rows.Slot, ECode) {
	if x.RowIdx < 0 {
		return nil
	}
	nm, ok := x.X.(*pyast.Name)
	if !ok || c.nativeBail(nm) {
		return nil
	}
	idx, ok := c.slots[nm.Ident]
	if !ok {
		return nil
	}
	col := x.RowIdx
	return func(fr *Frame) (*rows.Slot, ECode) {
		row := &fr.Slots[idx]
		if row.Tag == types.KindInvalid {
			return nil, pyvalue.ExcNameError
		}
		if col >= len(row.Seq) {
			return nil, pyvalue.ExcIndexError
		}
		return &row.Seq[col], 0
	}
}

// ---- native string compilation -----------------------------------------

func (c *compiler) strNat(x pyast.Expr, onNull ECode) (strFn, error) {
	if !c.opts.Specialize || c.nativeBail(x) {
		return nil, nil
	}
	switch x := x.(type) {
	case *pyast.StrLit:
		s := x.S
		return func(*Frame) (string, ECode) { return s, 0 }, nil
	case *pyast.Name:
		idx, ok := c.slots[x.Ident]
		if !ok {
			if g, ok := c.globals[x.Ident]; ok && g.Tag == types.KindStr {
				s := g.S
				return func(*Frame) (string, ECode) { return s, 0 }, nil
			}
			return nil, nil
		}
		t := x.Type()
		if !t.IsOption() && t.Kind() == types.KindStr {
			return func(fr *Frame) (string, ECode) {
				sl := &fr.Slots[idx]
				if sl.Tag == types.KindInvalid {
					return "", pyvalue.ExcNameError
				}
				return sl.S, 0
			}, nil
		}
		ec0 := onNull
		return func(fr *Frame) (string, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return "", pyvalue.ExcNameError
			}
			if sl.Tag != types.KindStr {
				return "", ec0
			}
			return sl.S, 0
		}, nil
	case *pyast.Subscript:
		if el := c.rowElemAt(x); el != nil {
			t := x.Type()
			if !t.IsOption() && t.Kind() == types.KindStr {
				return func(fr *Frame) (string, ECode) {
					p, ec := el(fr)
					if ec != 0 {
						return "", ec
					}
					return p.S, 0
				}, nil
			}
			ec0 := onNull
			return func(fr *Frame) (string, ECode) {
				p, ec := el(fr)
				if ec != 0 {
					return "", ec
				}
				if p.Tag != types.KindStr {
					return "", ec0
				}
				return p.S, 0
			}, nil
		}
		if x.RowIdx < 0 && x.X.Type().Unwrap().Kind() == types.KindStr {
			// Single-character subscript on a string.
			recv, err := c.strChild(x.X, pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			idx, err := c.i64Child(x.Index)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (string, ECode) {
				s, ec := recv(fr)
				if ec != 0 {
					return "", ec
				}
				i, ec := idx(fr)
				if ec != 0 {
					return "", ec
				}
				n := int64(len(s))
				if i < 0 {
					i += n
				}
				if i < 0 || i >= n {
					return "", pyvalue.ExcIndexError
				}
				return s[i : i+1], 0
			}, nil
		}
		return nil, nil
	case *pyast.Slice:
		return c.strSliceNat(x)
	case *pyast.BinOp:
		switch x.Op {
		case "+":
			if x.Type().Unwrap().Kind() != types.KindStr ||
				x.Left.Type().Unwrap().Kind() != types.KindStr ||
				x.Right.Type().Unwrap().Kind() != types.KindStr {
				return nil, nil
			}
			ls, err := c.strChild(x.Left, pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			rs, err := c.strChild(x.Right, pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (string, ECode) {
				a, ec := ls(fr)
				if ec != 0 {
					return "", ec
				}
				b, ec := rs(fr)
				if ec != 0 {
					return "", ec
				}
				if a == "" {
					return b, 0
				}
				if b == "" {
					return a, 0
				}
				return fr.Arena.Concat(a, b), 0
			}, nil
		case "%":
			if x.Type().Unwrap().Kind() != types.KindStr ||
				x.Left.Type().Unwrap().Kind() != types.KindStr {
				return nil, nil
			}
			ls, err := c.strChild(x.Left, pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			r, err := c.expr(x.Right)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (string, ECode) {
				a, ec := ls(fr)
				if ec != 0 {
					return "", ec
				}
				b, ec := r(fr)
				if ec != 0 {
					return "", ec
				}
				out, err := pyvalue.AppendPercentFormat(fr.Scratch[:0], a, b.Value())
				if err != nil {
					return "", pyvalue.KindOf(err)
				}
				fr.Scratch = out[:0]
				return fr.Arena.Intern(out), 0
			}, nil
		}
		return nil, nil
	case *pyast.Call:
		return c.strCallNat(x)
	}
	return nil, nil
}

// strSliceNat compiles a unit-step slice of a string.
func (c *compiler) strSliceNat(x *pyast.Slice) (strFn, error) {
	if x.X.Type().Unwrap().Kind() != types.KindStr || x.Step != nil {
		return nil, nil
	}
	recv, err := c.strChild(x.X, pyvalue.ExcTypeError)
	if err != nil {
		return nil, err
	}
	bound := func(b pyast.Expr) (i64Fn, error) {
		if b == nil {
			return nil, nil
		}
		return c.i64Child(b)
	}
	lo, err := bound(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := bound(x.Hi)
	if err != nil {
		return nil, err
	}
	return func(fr *Frame) (string, ECode) {
		s, ec := recv(fr)
		if ec != 0 {
			return "", ec
		}
		var l, h *int64
		if lo != nil {
			v, ec := lo(fr)
			if ec != 0 {
				return "", ec
			}
			l = &v
		}
		if hi != nil {
			v, ec := hi(fr)
			if ec != 0 {
				return "", ec
			}
			h = &v
		}
		start, stop := pyvalue.SliceBounds(l, h, 1, int64(len(s)))
		if start >= stop {
			return "", 0
		}
		return s[start:stop], 0
	}, nil
}

// strCallNat compiles the string-returning string methods whose bodies
// are shared with strops.go.
func (c *compiler) strCallNat(x *pyast.Call) (strFn, error) {
	attr, ok := x.Fn.(*pyast.Attr)
	if !ok {
		return nil, nil
	}
	if mod, ok := attr.X.(*pyast.Name); ok && isModuleIdent(mod.Ident) {
		if _, shadowed := c.slots[mod.Ident]; !shadowed {
			return nil, nil
		}
	}
	if attr.X.Type().Unwrap().Kind() != types.KindStr {
		return nil, nil
	}
	switch attr.Name {
	case "lower", "upper":
		if len(x.Args) != 0 {
			return nil, nil
		}
	case "capitalize", "title":
		if len(x.Args) != 0 {
			return nil, nil
		}
	case "replace":
		if len(x.Args) != 2 {
			return nil, nil
		}
	case "strip", "lstrip", "rstrip":
		if len(x.Args) > 1 {
			return nil, nil
		}
	default:
		return nil, nil
	}
	recv, err := c.strChild(attr.X, pyvalue.ExcAttributeError)
	if err != nil {
		return nil, err
	}
	switch attr.Name {
	case "lower":
		return strCaseFoldS(recv, false), nil
	case "upper":
		return strCaseFoldS(recv, true), nil
	case "capitalize":
		return strUnaryS(recv, pyvalue.Capitalize), nil
	case "title":
		return strUnaryS(recv, pyvalue.TitleCase), nil
	case "replace":
		oldA, err := c.strChild(x.Args[0], pyvalue.ExcTypeError)
		if err != nil {
			return nil, err
		}
		newA, err := c.strChild(x.Args[1], pyvalue.ExcTypeError)
		if err != nil {
			return nil, err
		}
		return strReplaceS(recv, oldA, newA), nil
	default: // strip family
		var cut strFn
		if len(x.Args) == 1 {
			cut, err = c.strChild(x.Args[0], pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
		}
		return strStripS(recv, cut, attr.Name), nil
	}
}

// ---- native int64 compilation ------------------------------------------

func (c *compiler) i64Nat(x pyast.Expr) (i64Fn, error) {
	if !c.opts.Specialize || c.nativeBail(x) {
		return nil, nil
	}
	switch x := x.(type) {
	case *pyast.NumLit:
		if x.IsFloat {
			return nil, nil
		}
		n := x.I
		return func(*Frame) (int64, ECode) { return n, 0 }, nil
	case *pyast.BoolLit:
		n := int64(0)
		if x.B {
			n = 1
		}
		return func(*Frame) (int64, ECode) { return n, 0 }, nil
	case *pyast.Name:
		idx, ok := c.slots[x.Ident]
		if !ok {
			if g, ok := c.globals[x.Ident]; ok && g.Tag == types.KindI64 {
				n := g.I
				return func(*Frame) (int64, ECode) { return n, 0 }, nil
			}
			return nil, nil
		}
		t := x.Type()
		if !t.IsOption() && t.Kind() == types.KindI64 {
			return func(fr *Frame) (int64, ECode) {
				sl := &fr.Slots[idx]
				if sl.Tag == types.KindInvalid {
					return 0, pyvalue.ExcNameError
				}
				return sl.I, 0
			}, nil
		}
		return func(fr *Frame) (int64, ECode) {
			sl := &fr.Slots[idx]
			switch sl.Tag {
			case types.KindI64:
				return sl.I, 0
			case types.KindBool:
				if sl.B {
					return 1, 0
				}
				return 0, 0
			case types.KindInvalid:
				return 0, pyvalue.ExcNameError
			default:
				return 0, pyvalue.ExcTypeError
			}
		}, nil
	case *pyast.Subscript:
		el := c.rowElemAt(x)
		if el == nil {
			return nil, nil
		}
		t := x.Type()
		if !t.IsOption() && t.Kind() == types.KindI64 {
			return func(fr *Frame) (int64, ECode) {
				p, ec := el(fr)
				if ec != 0 {
					return 0, ec
				}
				return p.I, 0
			}, nil
		}
		return func(fr *Frame) (int64, ECode) {
			p, ec := el(fr)
			if ec != 0 {
				return 0, ec
			}
			switch p.Tag {
			case types.KindI64:
				return p.I, 0
			case types.KindBool:
				if p.B {
					return 1, 0
				}
				return 0, 0
			default:
				return 0, pyvalue.ExcTypeError
			}
		}, nil
	case *pyast.BinOp:
		return c.i64BinNat(x)
	case *pyast.Call:
		return c.i64CallNat(x)
	}
	return nil, nil
}

func (c *compiler) i64BinNat(x *pyast.BinOp) (i64Fn, error) {
	lu := x.Left.Type().Unwrap()
	ru := x.Right.Type().Unwrap()
	switch x.Op {
	case "+", "-", "*", "//", "%", "**":
		if !lu.IsNumeric() || !ru.IsNumeric() || x.Type().Unwrap().Kind() != types.KindI64 {
			return nil, nil
		}
	case "&", "|", "^", "<<", ">>":
		if lu.Kind() != types.KindI64 || ru.Kind() != types.KindI64 {
			return nil, nil
		}
	default:
		return nil, nil
	}
	a, err := c.i64Child(x.Left)
	if err != nil {
		return nil, err
	}
	b, err := c.i64Child(x.Right)
	if err != nil {
		return nil, err
	}
	eval2 := func(fr *Frame) (int64, int64, ECode) {
		av, ec := a(fr)
		if ec != 0 {
			return 0, 0, ec
		}
		bv, ec := b(fr)
		return av, bv, ec
	}
	switch x.Op {
	case "+":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av + bv, ec
		}, nil
	case "-":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av - bv, ec
		}, nil
	case "*":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av * bv, ec
		}, nil
	case "//", "%":
		mod := x.Op == "%"
		checkZero := !c.flowNonZero(x.Right)
		if !checkZero {
			c.stats.ChecksElided++
		}
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			if ec != 0 {
				return 0, ec
			}
			if checkZero && bv == 0 {
				return 0, pyvalue.ExcZeroDivisionError
			}
			if mod {
				return pyvalue.FloorModInt(av, bv), 0
			}
			return pyvalue.FloorDivInt(av, bv), 0
		}, nil
	case "**":
		checkNeg := !c.flowNonNegative(x.Right)
		if !checkNeg {
			c.stats.ChecksElided++
		}
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			if ec != 0 {
				return 0, ec
			}
			if checkNeg && bv < 0 {
				// int**negative is a float in Python: off the normal-case
				// type, retried on the general path.
				return 0, pyvalue.ExcUnsupported
			}
			return pyvalue.IPow(av, bv), 0
		}, nil
	case "&":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av & bv, ec
		}, nil
	case "|":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av | bv, ec
		}, nil
	case "^":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av ^ bv, ec
		}, nil
	case "<<":
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av << uint(bv), ec
		}, nil
	default: // ">>"
		return func(fr *Frame) (int64, ECode) {
			av, bv, ec := eval2(fr)
			return av >> uint(bv), ec
		}, nil
	}
}

func (c *compiler) i64CallNat(x *pyast.Call) (i64Fn, error) {
	name, ok := x.Fn.(*pyast.Name)
	if !ok || len(x.Args) != 1 {
		return nil, nil
	}
	argT := x.Args[0].Type().Unwrap()
	switch name.Ident {
	case "int":
		switch argT.Kind() {
		case types.KindStr:
			s, err := c.strChild(x.Args[0], pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (int64, ECode) {
				v, ec := s(fr)
				if ec != 0 {
					return 0, ec
				}
				return parseIntPython(v)
			}, nil
		case types.KindI64, types.KindBool:
			return c.i64Child(x.Args[0])
		case types.KindF64:
			f, err := c.f64Child(x.Args[0])
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (int64, ECode) {
				v, ec := f(fr)
				if ec != 0 {
					return 0, ec
				}
				return int64(truncToward0(v)), 0
			}, nil
		}
		return nil, nil
	case "len":
		if argT.Kind() != types.KindStr {
			return nil, nil
		}
		s, err := c.strChild(x.Args[0], pyvalue.ExcTypeError)
		if err != nil {
			return nil, err
		}
		return func(fr *Frame) (int64, ECode) {
			v, ec := s(fr)
			if ec != 0 {
				return 0, ec
			}
			return int64(len(v)), 0
		}, nil
	}
	return nil, nil
}

// ---- native float64 compilation ----------------------------------------

func (c *compiler) f64Nat(x pyast.Expr) (f64Fn, error) {
	if !c.opts.Specialize || c.nativeBail(x) {
		return nil, nil
	}
	switch x := x.(type) {
	case *pyast.NumLit:
		f := x.F
		if !x.IsFloat {
			f = float64(x.I)
		}
		return func(*Frame) (float64, ECode) { return f, 0 }, nil
	case *pyast.Name:
		idx, ok := c.slots[x.Ident]
		if !ok {
			if g, ok := c.globals[x.Ident]; ok && g.Tag == types.KindF64 {
				f := g.F
				return func(*Frame) (float64, ECode) { return f, 0 }, nil
			}
			return nil, nil
		}
		t := x.Type()
		if !t.IsOption() {
			switch t.Kind() {
			case types.KindF64:
				return func(fr *Frame) (float64, ECode) {
					sl := &fr.Slots[idx]
					if sl.Tag == types.KindInvalid {
						return 0, pyvalue.ExcNameError
					}
					return sl.F, 0
				}, nil
			case types.KindI64:
				return func(fr *Frame) (float64, ECode) {
					sl := &fr.Slots[idx]
					if sl.Tag == types.KindInvalid {
						return 0, pyvalue.ExcNameError
					}
					return float64(sl.I), 0
				}, nil
			}
		}
		return func(fr *Frame) (float64, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return 0, pyvalue.ExcNameError
			}
			f, ok := slotF64(*sl)
			if !ok {
				return 0, pyvalue.ExcTypeError
			}
			return f, 0
		}, nil
	case *pyast.Subscript:
		el := c.rowElemAt(x)
		if el == nil {
			return nil, nil
		}
		t := x.Type()
		if !t.IsOption() {
			switch t.Kind() {
			case types.KindF64:
				return func(fr *Frame) (float64, ECode) {
					p, ec := el(fr)
					if ec != 0 {
						return 0, ec
					}
					return p.F, 0
				}, nil
			case types.KindI64:
				return func(fr *Frame) (float64, ECode) {
					p, ec := el(fr)
					if ec != 0 {
						return 0, ec
					}
					return float64(p.I), 0
				}, nil
			}
		}
		return func(fr *Frame) (float64, ECode) {
			p, ec := el(fr)
			if ec != 0 {
				return 0, ec
			}
			f, ok := slotF64(*p)
			if !ok {
				return 0, pyvalue.ExcTypeError
			}
			return f, 0
		}, nil
	case *pyast.BinOp:
		return c.f64BinNat(x)
	case *pyast.Call:
		name, ok := x.Fn.(*pyast.Name)
		if !ok || name.Ident != "float" || len(x.Args) != 1 {
			return nil, nil
		}
		switch x.Args[0].Type().Unwrap().Kind() {
		case types.KindStr:
			s, err := c.strChild(x.Args[0], pyvalue.ExcTypeError)
			if err != nil {
				return nil, err
			}
			return func(fr *Frame) (float64, ECode) {
				v, ec := s(fr)
				if ec != 0 {
					return 0, ec
				}
				return parseFloatPython(v)
			}, nil
		case types.KindF64, types.KindI64, types.KindBool:
			return c.f64Child(x.Args[0])
		}
		return nil, nil
	}
	return nil, nil
}

func (c *compiler) f64BinNat(x *pyast.BinOp) (f64Fn, error) {
	lu := x.Left.Type().Unwrap()
	ru := x.Right.Type().Unwrap()
	if !lu.IsNumeric() || !ru.IsNumeric() {
		return nil, nil
	}
	switch x.Op {
	case "/":
	case "+", "-", "*", "//", "%", "**":
		if x.Type().Unwrap().Kind() != types.KindF64 {
			return nil, nil
		}
	default:
		return nil, nil
	}
	a, err := c.f64Child(x.Left)
	if err != nil {
		return nil, err
	}
	b, err := c.f64Child(x.Right)
	if err != nil {
		return nil, err
	}
	eval2 := func(fr *Frame) (float64, float64, ECode) {
		av, ec := a(fr)
		if ec != 0 {
			return 0, 0, ec
		}
		bv, ec := b(fr)
		return av, bv, ec
	}
	switch x.Op {
	case "+":
		return func(fr *Frame) (float64, ECode) {
			av, bv, ec := eval2(fr)
			return av + bv, ec
		}, nil
	case "-":
		return func(fr *Frame) (float64, ECode) {
			av, bv, ec := eval2(fr)
			return av - bv, ec
		}, nil
	case "*":
		return func(fr *Frame) (float64, ECode) {
			av, bv, ec := eval2(fr)
			return av * bv, ec
		}, nil
	case "/", "//", "%":
		op := x.Op
		checkZero := !c.flowNonZero(x.Right)
		if !checkZero {
			c.stats.ChecksElided++
		}
		return func(fr *Frame) (float64, ECode) {
			av, bv, ec := eval2(fr)
			if ec != 0 {
				return 0, ec
			}
			if checkZero && bv == 0 {
				return 0, pyvalue.ExcZeroDivisionError
			}
			switch op {
			case "/":
				return av / bv, 0
			case "//":
				return math.Floor(av / bv), 0
			default:
				return pyvalue.FloorModFloat(av, bv), 0
			}
		}, nil
	default: // "**"
		return func(fr *Frame) (float64, ECode) {
			av, bv, ec := eval2(fr)
			if ec != 0 {
				return 0, ec
			}
			return math.Pow(av, bv), 0
		}, nil
	}
}

// truthSlotFn builds a truthiness test reading a scalar frame slot in
// place; nil when the kind has no monomorphic test.
func truthSlotFn(idx int, k types.Kind) boolFn {
	switch k {
	case types.KindBool:
		return func(fr *Frame) (bool, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return false, pyvalue.ExcNameError
			}
			return sl.B, 0
		}
	case types.KindI64:
		return func(fr *Frame) (bool, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return false, pyvalue.ExcNameError
			}
			return sl.I != 0, 0
		}
	case types.KindF64:
		return func(fr *Frame) (bool, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return false, pyvalue.ExcNameError
			}
			return sl.F != 0, 0
		}
	case types.KindStr:
		return func(fr *Frame) (bool, ECode) {
			sl := &fr.Slots[idx]
			if sl.Tag == types.KindInvalid {
				return false, pyvalue.ExcNameError
			}
			return sl.S != "", 0
		}
	}
	return nil
}

// ---- native comparisons -------------------------------------------------

// compareBool compiles a single-step comparison over scalar operands
// into a bool producer without Slot traffic. Returns nil when the shape
// is outside the native subset (chained compares, containers, identity
// tests, mixed null comparisons).
func (c *compiler) compareBool(x *pyast.Compare) (boolFn, error) {
	if !c.opts.Specialize || len(x.Ops) != 1 || c.nativeBail(x) {
		return nil, nil
	}
	op := x.Ops[0]
	l, r := x.First, x.Rest[0]
	lt, rt := l.Type(), r.Type()
	if lt.IsOption() || rt.IsOption() {
		// Option operands keep the generic rows.Equal/None semantics.
		return nil, nil
	}
	lu, ru := lt.Unwrap(), rt.Unwrap()
	if lu.Kind() == types.KindStr && ru.Kind() == types.KindStr {
		switch op {
		case "==", "!=", "<", "<=", ">", ">=", "in", "not in":
		default:
			return nil, nil
		}
		a, err := c.strChild(l, pyvalue.ExcTypeError)
		if err != nil {
			return nil, err
		}
		b, err := c.strChild(r, pyvalue.ExcTypeError)
		if err != nil {
			return nil, err
		}
		o := op
		return func(fr *Frame) (bool, ECode) {
			av, ec := a(fr)
			if ec != 0 {
				return false, ec
			}
			bv, ec := b(fr)
			if ec != 0 {
				return false, ec
			}
			switch o {
			case "==":
				return av == bv, 0
			case "!=":
				return av != bv, 0
			case "<":
				return av < bv, 0
			case "<=":
				return av <= bv, 0
			case ">":
				return av > bv, 0
			case ">=":
				return av >= bv, 0
			case "in":
				return strings.Contains(bv, av), 0
			default: // "not in"
				return !strings.Contains(bv, av), 0
			}
		}, nil
	}
	if lu.IsNumeric() && ru.IsNumeric() {
		switch op {
		case "==", "!=", "<", "<=", ">", ">=":
		default:
			return nil, nil
		}
		if lu.Kind() == types.KindI64 && ru.Kind() == types.KindI64 {
			a, err := c.i64Child(l)
			if err != nil {
				return nil, err
			}
			b, err := c.i64Child(r)
			if err != nil {
				return nil, err
			}
			o := op
			return func(fr *Frame) (bool, ECode) {
				av, ec := a(fr)
				if ec != 0 {
					return false, ec
				}
				bv, ec := b(fr)
				if ec != 0 {
					return false, ec
				}
				switch o {
				case "==":
					return av == bv, 0
				case "!=":
					return av != bv, 0
				case "<":
					return av < bv, 0
				case "<=":
					return av <= bv, 0
				case ">":
					return av > bv, 0
				default:
					return av >= bv, 0
				}
			}, nil
		}
		a, err := c.f64Child(l)
		if err != nil {
			return nil, err
		}
		b, err := c.f64Child(r)
		if err != nil {
			return nil, err
		}
		o := op
		return func(fr *Frame) (bool, ECode) {
			av, ec := a(fr)
			if ec != 0 {
				return false, ec
			}
			bv, ec := b(fr)
			if ec != 0 {
				return false, ec
			}
			switch o {
			case "==":
				return av == bv, 0
			case "!=":
				return av != bv, 0
			case "<":
				return av < bv, 0
			case "<=":
				return av <= bv, 0
			case ">":
				return av > bv, 0
			default:
				return av >= bv, 0
			}
		}, nil
	}
	return nil, nil
}
