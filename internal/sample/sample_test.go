package sample

import (
	"fmt"
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

func recs(lines ...string) [][]byte {
	out := make([][]byte, len(lines))
	for i, l := range lines {
		out[i] = []byte(l)
	}
	return out
}

func TestSniffCellHeuristics(t *testing.T) {
	nulls := []string{"", "NULL"}
	cases := map[string]CellKind{
		"":        CellNull,
		"NULL":    CellNull,
		"0":       CellBool,
		"1":       CellBool,
		"true":    CellBool,
		"False":   CellBool,
		"42":      CellI64,
		"-7":      CellI64,
		"1.5":     CellF64,
		"2e7":     CellF64,
		"1,560":   CellStr,
		"$500":    CellStr,
		"12abc":   CellStr,
		"veryStr": CellStr,
	}
	for cell, want := range cases {
		if got := SniffCell(cell, false, nulls); got != want {
			t.Errorf("SniffCell(%q) = %v, want %v", cell, got, want)
		}
	}
	if got := SniffCell("42", true, nulls); got != CellStr {
		t.Error("quoted cell must be str")
	}
}

func TestRowStructureHistogram(t *testing.T) {
	// Most rows have 3 columns; one dirty row has 2.
	plan, err := Sample(recs("a,1,2.0", "b,2,3.0", "c,3,4.0", "dirty,5"), ',', nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCols != 3 {
		t.Fatalf("NumCols = %d", plan.NumCols)
	}
	if plan.Schema.Len() != 3 {
		t.Fatalf("schema = %s", plan.Schema)
	}
}

func TestMajorityTypePerColumn(t *testing.T) {
	plan, err := Sample(recs(
		"42,x,1.5",
		"17,y,2.5",
		"abc,z,3", // one dirty int; ints in float column widen
	), ',', []string{"n", "s", "f"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Schema.Col(0).Type; !types.Equal(got, types.I64) {
		t.Errorf("col n = %s, want i64 (majority)", got)
	}
	if got := plan.Schema.Col(1).Type; !types.Equal(got, types.Str) {
		t.Errorf("col s = %s", got)
	}
	if got := plan.Schema.Col(2).Type; !types.Equal(got, types.F64) {
		t.Errorf("col f = %s, want f64 (widened)", got)
	}
}

func TestNullThresholdPolicy(t *testing.T) {
	// Column A: always null -> Null. Column B: 50% null -> Option.
	// Column C: 2% null -> plain type (nulls exceptional).
	var lines []string
	for i := range 100 {
		b := "5"
		if i%2 == 0 {
			b = ""
		}
		c := "x"
		if i < 2 {
			c = ""
		}
		lines = append(lines, fmt.Sprintf(",%s,%s", b, c))
	}
	plan, err := Sample(recs(lines...), ',', []string{"a", "b", "c"}, Config{Delta: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Schema.Col(0).Type; !types.Equal(got, types.Null) {
		t.Errorf("a = %s, want null", got)
	}
	if got := plan.Schema.Col(1).Type; !types.Equal(got, types.Option(types.I64)) {
		t.Errorf("b = %s, want Option[i64]", got)
	}
	if got := plan.Schema.Col(2).Type; !types.Equal(got, types.Str) {
		t.Errorf("c = %s, want str", got)
	}
}

func TestDisableNullOptForcesOptions(t *testing.T) {
	var lines []string
	for i := range 100 {
		c := "7"
		if i == 0 {
			c = ""
		}
		lines = append(lines, c)
	}
	plan, err := Sample(recs(lines...), ',', []string{"v"}, Config{DisableNullOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Schema.Col(0).Type; !types.Equal(got, types.Option(types.I64)) {
		t.Errorf("v = %s, want Option[i64] with null opt disabled", got)
	}
}

func TestGeneralSchemaIsAllOptions(t *testing.T) {
	plan, err := Sample(recs("1,x", "2,y"), ',', nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.GeneralSchema.Len(); i++ {
		ty := plan.GeneralSchema.Col(i).Type
		if !ty.IsOption() {
			t.Errorf("general col %d = %s, want Option", i, ty)
		}
	}
}

func TestCustomNullValues(t *testing.T) {
	plan, err := Sample(recs("N/a,1", "N/A,2", ",3"), ',', []string{"a", "b"},
		Config{NullValues: []string{"", "N/a", "N/A"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Schema.Col(0).Type; !types.Equal(got, types.Null) {
		t.Errorf("a = %s, want null", got)
	}
}

func TestSampleSizeLimit(t *testing.T) {
	var lines []string
	for range 50 {
		lines = append(lines, "1")
	}
	// Rows beyond the sample budget must not be read.
	lines = append(lines, "this,would,change,structure", "so,would,this,too")
	plan, err := Sample(recs(lines...), ',', nil, Config{Size: 50})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCols != 1 || plan.SampleRows != 50 {
		t.Fatalf("NumCols=%d SampleRows=%d", plan.NumCols, plan.SampleRows)
	}
}

func TestAllExceptionsSample(t *testing.T) {
	// Sample majority structure 2 columns, but no row conforms after
	// re-check: construct rows whose structure histogram is a tie broken
	// to a count no row has... simplest: a single empty input is fine, so
	// instead exercise via SampleValues with zero conforming rows being
	// impossible; assert the flag stays false on a normal sample.
	plan, err := Sample(recs("a,b"), ',', nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AllExceptions {
		t.Fatal("unexpected AllExceptions")
	}
	if _, err := Sample(nil, ',', nil, Config{}); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestSampleValues(t *testing.T) {
	rowsIn := [][]pyvalue.Value{
		{pyvalue.Int(1), pyvalue.Str("a"), pyvalue.None{}},
		{pyvalue.Int(2), pyvalue.Str("b"), pyvalue.None{}},
		{pyvalue.Float(2.5), pyvalue.Str("c"), pyvalue.None{}},
	}
	plan, err := SampleValues(rowsIn, []string{"n", "s", "z"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Schema.Col(0).Type; !types.Equal(got, types.I64) {
		t.Errorf("n = %s (majority int)", got)
	}
	if got := plan.Schema.Col(1).Type; !types.Equal(got, types.Str) {
		t.Errorf("s = %s", got)
	}
	if got := plan.Schema.Col(2).Type; !types.Equal(got, types.Null) {
		t.Errorf("z = %s", got)
	}
}
