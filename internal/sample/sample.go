// Package sample implements Tuplex's data-driven normal-case detection
// (§4.2): it inspects a configurable sample of the input, histograms row
// structure and per-column cell types, and emits a CasePlan — the
// contract between the row classifier, the generated parser and the code
// generator.
//
// Per the paper: the most common column count becomes the normal row
// structure; per column, the most common type becomes the normal-case
// type; and null frequency is compared against the threshold δ — above δ
// the column is typed Null, below 1-δ nulls are exceptional, in between
// the column gets a polymorphic Option type.
package sample

import (
	"fmt"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// DefaultSize is the default number of sample rows, in the spirit of the
// paper's "sample of configurable size".
const DefaultSize = 1000

// DefaultDelta is the default null-frequency threshold δ.
const DefaultDelta = 0.9

// Config tunes sampling.
type Config struct {
	Size  int
	Delta float64
	// NullValues are the cell spellings meaning NULL.
	NullValues []string
	// DisableNullOpt forces every nullable column to a polymorphic
	// Option type instead of specializing on δ (§6.3.3 ablation: "shift
	// rare null values to the general-case path" off).
	DisableNullOpt bool
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Size <= 0 {
		c.Size = DefaultSize
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		c.Delta = DefaultDelta
	}
	if c.NullValues == nil {
		c.NullValues = csvio.DefaultNullValues
	}
	return c
}

// CellKind is a histogram bucket for one cell's apparent type.
type CellKind uint8

const (
	CellNull CellKind = iota
	CellBool
	CellI64
	CellF64
	CellStr
	cellKinds
)

// SniffCell classifies one raw CSV cell using the §4.2 heuristics:
// explicit null spellings are null; true/false and 0/1 are booleans;
// digit strings are ints; numeric strings containing a period (or
// exponent) are floats; everything else is a string. Quoted cells are
// always strings.
func SniffCell(cell string, quoted bool, nullValues []string) CellKind {
	if !quoted {
		for _, nv := range nullValues {
			if cell == nv {
				return CellNull
			}
		}
	}
	if quoted {
		return CellStr
	}
	if cell == "0" || cell == "1" || isBoolWord(cell) {
		return CellBool
	}
	if _, ok := csvio.ParseI64(cell); ok {
		return CellI64
	}
	if _, ok := csvio.ParseF64(cell); ok && containsAny(cell, ".eE") {
		return CellF64
	}
	return CellStr
}

func isBoolWord(s string) bool {
	switch s {
	case "true", "True", "TRUE", "false", "False", "FALSE":
		return true
	}
	return false
}

func containsAny(s, chars string) bool {
	for i := 0; i < len(s); i++ {
		for j := 0; j < len(chars); j++ {
			if s[i] == chars[j] {
				return true
			}
		}
	}
	return false
}

// ColumnStats accumulates the per-column histogram plus lightweight
// value statistics (constant cells, integer value range) that seed the
// dataflow lattice in internal/dataflow. The value statistics describe
// the sample only — consumers that specialize on them must guard at
// runtime (rows violating a sampled constraint take the general path).
type ColumnStats struct {
	Counts [cellKinds]int
	Total  int

	constVal    pyvalue.Value
	constBroken bool
	intLo       int64
	intHi       int64
	intSeen     bool
}

// Add records one cell observation by kind only (no value statistics;
// the cell counts as varying for constancy purposes).
func (cs *ColumnStats) Add(k CellKind) {
	cs.Counts[k]++
	cs.Total++
	if k != CellNull {
		cs.constVal, cs.constBroken = nil, true
	}
}

// AddValue records one cell observation together with its parsed value
// (nil for null cells), feeding the constancy and integer-range
// statistics.
func (cs *ColumnStats) AddValue(k CellKind, v pyvalue.Value) {
	cs.Counts[k]++
	cs.Total++
	if k == CellNull || v == nil {
		return
	}
	if !cs.constBroken {
		if cs.constVal == nil {
			cs.constVal = v
		} else if !sameScalar(cs.constVal, v) {
			cs.constVal, cs.constBroken = nil, true
		}
	}
	switch v := v.(type) {
	case pyvalue.Int:
		cs.widenIntRange(int64(v))
	case pyvalue.Bool:
		// 0/1 cells sniff as bool but materialize as I64 when the
		// column's normal-case type is integer; they must widen the
		// range or a seeded guard would wrongly exclude them.
		if v {
			cs.widenIntRange(1)
		} else {
			cs.widenIntRange(0)
		}
	}
}

func (cs *ColumnStats) widenIntRange(n int64) {
	if !cs.intSeen {
		cs.intLo, cs.intHi, cs.intSeen = n, n, true
		return
	}
	if n < cs.intLo {
		cs.intLo = n
	}
	if n > cs.intHi {
		cs.intHi = n
	}
}

// ConstValue reports the single value every non-null sampled cell held,
// if the column was constant across the sample (strict same-kind
// equality: Int(1) and Float(1.0) do not fold together, so the value's
// kind matches what the normal-case parser will materialize).
func (cs *ColumnStats) ConstValue() (pyvalue.Value, bool) {
	if cs.constBroken || cs.constVal == nil {
		return nil, false
	}
	return cs.constVal, true
}

// IntRange reports the [lo, hi] range of integer-valued sampled cells.
// ok is false when the column held no integer cells.
func (cs *ColumnStats) IntRange() (lo, hi int64, ok bool) {
	return cs.intLo, cs.intHi, cs.intSeen
}

// sameScalar is strict same-kind scalar equality (unlike pyvalue.Equal,
// which implements Python's cross-kind numeric ==). Non-scalar values
// never compare equal — constancy tracking only covers scalars.
func sameScalar(a, b pyvalue.Value) bool {
	switch a := a.(type) {
	case pyvalue.Bool:
		bb, ok := b.(pyvalue.Bool)
		return ok && a == bb
	case pyvalue.Int:
		bb, ok := b.(pyvalue.Int)
		return ok && a == bb
	case pyvalue.Float:
		bb, ok := b.(pyvalue.Float)
		return ok && a == bb
	case pyvalue.Str:
		bb, ok := b.(pyvalue.Str)
		return ok && a == bb
	}
	return false
}

// NullFraction reports the fraction of null cells.
func (cs *ColumnStats) NullFraction() float64 {
	if cs.Total == 0 {
		return 0
	}
	return float64(cs.Counts[CellNull]) / float64(cs.Total)
}

// normalType resolves the column's normal-case type under δ.
func (cs *ColumnStats) normalType(delta float64, disableNullOpt, foldSpellings bool) types.Type {
	base := cs.majorityNonNull(foldSpellings)
	nf := cs.NullFraction()
	if disableNullOpt {
		if cs.Counts[CellNull] > 0 {
			if !base.IsValid() {
				return types.Null
			}
			return types.Option(base)
		}
		if !base.IsValid() {
			return types.Str
		}
		return base
	}
	switch {
	case nf >= delta || !base.IsValid():
		// Nulls dominate: None is the normal case (§4.2 "Option types").
		return types.Null
	case nf <= 1-delta:
		// Nulls are exceptional: the fast path assumes non-null.
		return base
	default:
		return types.Option(base)
	}
}

// majorityNonNull picks the most common non-null kind (§4.2 "Tuplex then
// uses the most common type in the histogram as the normal-case type").
// Minority spellings become exception rows at parse time — except that
// bool cells conform to int columns and int cells to float columns by
// construction of the parsers, so those mixes cost nothing. Ties break
// toward the wider type.
func (cs *ColumnStats) majorityNonNull(foldSpellings bool) types.Type {
	nonNull := cs.Total - cs.Counts[CellNull]
	if nonNull == 0 {
		return types.Type{}
	}
	// For CSV cells, fold subset spellings upward before taking the
	// majority: 0/1 cells parse as ints, and int spellings parse as
	// floats, so a column with any genuine int cells treats bool-looking
	// cells as ints, and a column with any float cells treats int-looking
	// cells as floats. Typed-object inputs have no spelling ambiguity and
	// use the strict majority (§4.2).
	counts := cs.Counts
	if foldSpellings && counts[CellF64] > 0 {
		counts[CellF64] += counts[CellI64] + counts[CellBool]
		counts[CellI64], counts[CellBool] = 0, 0
	} else if foldSpellings && counts[CellI64] > 0 {
		counts[CellI64] += counts[CellBool]
		counts[CellBool] = 0
	}
	best, bestKind := 0, CellStr
	// Iterate wider-first so ties break wide.
	for _, k := range []CellKind{CellStr, CellF64, CellI64, CellBool} {
		if counts[k] > best {
			best, bestKind = counts[k], k
		}
	}
	switch bestKind {
	case CellBool:
		return types.Bool
	case CellI64:
		return types.I64
	case CellF64:
		return types.F64
	default:
		return types.Str
	}
}

// CasePlan is the sampled contract for one CSV input.
type CasePlan struct {
	// NumCols is the normal-case column count (most common structure).
	NumCols int
	// Schema is the normal-case schema (δ-specialized types).
	Schema *types.Schema
	// GeneralSchema types every column most generally (Option over the
	// widened type) for the general-case path.
	GeneralSchema *types.Schema
	// SampleRows is how many rows the plan was derived from.
	SampleRows int
	// AllExceptions is set when the sample itself produced no usable
	// normal case (§7: Tuplex warns the user to revise the pipeline or
	// enlarge the sample).
	AllExceptions bool
	// Stats holds the per-column histograms and value statistics the
	// plan was derived from, indexed like Schema. internal/dataflow
	// seeds its lattice from these.
	Stats []ColumnStats
	// Config echoes the effective configuration.
	Config Config
}

// Sample derives a CasePlan from raw CSV records. header supplies column
// names; if nil, columns are named _0.._n-1 like the paper's prototype.
func Sample(records [][]byte, delim byte, header []string, cfg Config) (*CasePlan, error) {
	cfg = cfg.WithDefaults()
	n := len(records)
	if n > cfg.Size {
		n = cfg.Size
	}
	if n == 0 {
		return nil, fmt.Errorf("sample: no input rows")
	}

	// Pass 1: row-structure histogram.
	structHist := map[int]int{}
	var cellsScratch []string
	for _, rec := range records[:n] {
		structHist[csvio.CountCells(rec, delim)]++
	}
	numCols, best := 0, 0
	for cols, count := range structHist {
		if count > best || (count == best && cols > numCols) {
			numCols, best = cols, count
		}
	}

	// Pass 2: per-column type histograms over structurally-conforming
	// rows.
	stats := make([]ColumnStats, numCols)
	conforming := 0
	for _, rec := range records[:n] {
		cells := csvio.SplitCells(rec, delim, cellsScratch)
		cellsScratch = cells
		if len(cells) != numCols {
			continue
		}
		conforming++
		for i, c := range cells {
			// Re-detect quoting cheaply: SplitCells already unquoted, so
			// sniff on the unquoted text (quoted numeric cells are rare
			// and widen to str only via the histogram).
			k := SniffCell(c, false, cfg.NullValues)
			stats[i].AddValue(k, cellValue(c, k))
		}
	}
	if conforming == 0 {
		return &CasePlan{NumCols: numCols, SampleRows: n, AllExceptions: true, Config: cfg}, nil
	}

	cols := make([]types.Column, numCols)
	gcols := make([]types.Column, numCols)
	for i := range stats {
		name := fmt.Sprintf("_%d", i)
		if header != nil && i < len(header) {
			name = header[i]
		}
		nt := stats[i].normalType(cfg.Delta, cfg.DisableNullOpt, true)
		cols[i] = types.Column{Name: name, Type: nt}
		g := stats[i].majorityNonNull(true)
		if !g.IsValid() {
			g = types.Str
		}
		gcols[i] = types.Column{Name: name, Type: types.Option(g)}
	}
	return &CasePlan{
		NumCols:       numCols,
		Schema:        types.NewSchema(cols),
		GeneralSchema: types.NewSchema(gcols),
		SampleRows:    n,
		Stats:         stats,
		Config:        cfg,
	}, nil
}

// cellValue parses one CSV cell into the boxed value the normal-case
// parser would materialize for the sniffed kind (nil for nulls).
func cellValue(cell string, k CellKind) pyvalue.Value {
	switch k {
	case CellNull:
		return nil
	case CellBool:
		switch cell {
		case "true", "True", "TRUE", "1":
			return pyvalue.Bool(true)
		}
		return pyvalue.Bool(false)
	case CellI64:
		n, _ := csvio.ParseI64(cell)
		return pyvalue.Int(n)
	case CellF64:
		f, _ := csvio.ParseF64(cell)
		return pyvalue.Float(f)
	default:
		// The cell string aliases the caller's record buffer; clone
		// before retaining it in the stats.
		return pyvalue.Str(strings.Clone(cell))
	}
}

// SampleValues derives a CasePlan from in-memory boxed rows (for
// Parallelize-style inputs).
func SampleValues(rowsIn [][]pyvalue.Value, names []string, cfg Config) (*CasePlan, error) {
	cfg = cfg.WithDefaults()
	n := len(rowsIn)
	if n > cfg.Size {
		n = cfg.Size
	}
	if n == 0 {
		return nil, fmt.Errorf("sample: no input rows")
	}
	structHist := map[int]int{}
	for _, r := range rowsIn[:n] {
		structHist[len(r)]++
	}
	numCols, best := 0, 0
	for cols, count := range structHist {
		if count > best || (count == best && cols > numCols) {
			numCols, best = cols, count
		}
	}
	stats := make([]ColumnStats, numCols)
	colTypes := make([][]types.Type, numCols)
	for _, r := range rowsIn[:n] {
		if len(r) != numCols {
			continue
		}
		for i, v := range r {
			switch v.(type) {
			case pyvalue.None:
				stats[i].AddValue(CellNull, nil)
			case pyvalue.Bool:
				stats[i].AddValue(CellBool, v)
			case pyvalue.Int:
				stats[i].AddValue(CellI64, v)
			case pyvalue.Float:
				stats[i].AddValue(CellF64, v)
			case pyvalue.Str:
				stats[i].AddValue(CellStr, v)
			default:
				stats[i].Add(CellStr)
				colTypes[i] = append(colTypes[i], typeOfValue(v))
			}
		}
	}
	cols := make([]types.Column, numCols)
	gcols := make([]types.Column, numCols)
	for i := range stats {
		name := fmt.Sprintf("_%d", i)
		if names != nil && i < len(names) {
			name = names[i]
		}
		nt := stats[i].normalType(cfg.Delta, cfg.DisableNullOpt, false)
		if len(colTypes[i]) > 0 {
			nt = types.UnifyAll(colTypes[i])
		}
		cols[i] = types.Column{Name: name, Type: nt}
		g := stats[i].majorityNonNull(false)
		if !g.IsValid() {
			g = types.Str
		}
		gcols[i] = types.Column{Name: name, Type: types.Option(g)}
	}
	return &CasePlan{
		NumCols:       numCols,
		Schema:        types.NewSchema(cols),
		GeneralSchema: types.NewSchema(gcols),
		SampleRows:    n,
		Stats:         stats,
		Config:        cfg,
	}, nil
}

func typeOfValue(v pyvalue.Value) types.Type {
	switch v := v.(type) {
	case pyvalue.None:
		return types.Null
	case pyvalue.Bool:
		return types.Bool
	case pyvalue.Int:
		return types.I64
	case pyvalue.Float:
		return types.F64
	case pyvalue.Str:
		return types.Str
	case *pyvalue.List:
		var u types.Type
		for _, it := range v.Items {
			u = types.Unify(u, typeOfValue(it))
		}
		if !u.IsValid() {
			u = types.Any
		}
		return types.List(u)
	case *pyvalue.Tuple:
		elts := make([]types.Type, len(v.Items))
		for i, it := range v.Items {
			elts[i] = typeOfValue(it)
		}
		return types.Tuple(elts...)
	case *pyvalue.Dict:
		var u types.Type
		for _, k := range v.Keys() {
			val, _ := v.Get(k)
			u = types.Unify(u, typeOfValue(val))
		}
		if !u.IsValid() {
			u = types.Any
		}
		return types.Dict(u)
	default:
		return types.Any
	}
}
