package pyre

// PRNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Tuplex tasks each own a PRNG seeded from the pipeline
// seed and partition index so runs are reproducible regardless of
// scheduling — the engine analog of the paper's `random.choice` support
// in generated code.
type PRNG struct {
	state uint64
}

// NewPRNG returns a PRNG with the given seed.
func NewPRNG(seed uint64) *PRNG { return &PRNG{state: seed} }

// Next returns the next 64 random bits.
func (p *PRNG) Next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("pyre: Intn with non-positive n")
	}
	return int(p.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Next()>>11) / float64(1<<53)
}

// Choice returns a uniformly chosen byte of s as a one-character string
// (random.choice over a string).
func (p *PRNG) Choice(s string) string {
	if len(s) == 0 {
		return ""
	}
	i := p.Intn(len(s))
	return s[i : i+1]
}
