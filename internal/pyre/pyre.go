// Package pyre implements a small regular-expression engine with
// Python-re semantics for the pattern subset that data-wrangling UDFs
// use: anchors, character classes (including \d \w \s and negations),
// greedy/lazy quantifiers, bounded repetition, alternation and capturing
// groups.
//
// The engine mirrors the role PCRE2 plays in the paper's prototype:
// patterns are compiled once when a UDF is compiled, and matching runs
// without interpreter involvement. Patterns compile to a bytecode program
// executed by a recursive backtracking VM. It operates on bytes, which is
// exact for the ASCII log/CSV data the pipelines process.
package pyre

import (
	"fmt"
	"strconv"
	"strings"
)

// Regexp is a compiled pattern.
type Regexp struct {
	pattern string
	prog    []inst
	ngroups int // number of capturing groups, excluding group 0
	// anchoredStart is set when the pattern begins with '^': search can
	// skip the scan loop.
	anchoredStart bool
}

type opcode uint8

const (
	opChar opcode = iota
	opClass
	opAny   // '.' — any byte except newline
	opBegin // '^'
	opEnd   // '$'
	opSave
	opSplit
	opJump
	opMatch
)

type inst struct {
	op   opcode
	c    byte
	cls  *class
	x, y int // split targets / jump target / save slot in x
}

// class is a 256-bit byte-set.
type class struct {
	bits [4]uint64
	neg  bool
}

func (c *class) set(b byte) { c.bits[b>>6] |= 1 << (b & 63) }
func (c *class) setRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.set(byte(b))
	}
}

func (c *class) matches(b byte) bool {
	in := c.bits[b>>6]&(1<<(b&63)) != 0
	return in != c.neg
}

// CompileError reports a bad pattern.
type CompileError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("pyre: bad pattern %q at %d: %s", e.Pattern, e.Pos, e.Msg)
}

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	node, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, &CompileError{pattern, p.pos, "unexpected )"}
	}
	c := &compiler{}
	// Program: Save(0) body Save(1) Match.
	c.emit(inst{op: opSave, x: 0})
	c.compile(node)
	c.emit(inst{op: opSave, x: 1})
	c.emit(inst{op: opMatch})
	re := &Regexp{pattern: pattern, prog: c.prog, ngroups: p.ngroups}
	if n, ok := node.(*seqNode); ok && len(n.subs) > 0 {
		if _, isBegin := n.subs[0].(*beginNode); isBegin {
			re.anchoredStart = true
		}
	} else if _, isBegin := node.(*beginNode); isBegin {
		re.anchoredStart = true
	}
	return re, nil
}

// MustCompile is Compile that panics on error (for package-level patterns
// in tests and generators).
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// Pattern returns the source pattern.
func (re *Regexp) Pattern() string { return re.pattern }

// NumGroups returns the number of capturing groups (excluding group 0).
func (re *Regexp) NumGroups() int { return re.ngroups }

// Search finds the leftmost match like Python's re.search. It returns
// nil when there is no match; otherwise saves[2i],saves[2i+1] bound group
// i (-1 for groups that did not participate).
func (re *Regexp) Search(s string) []int {
	n := 2 * (re.ngroups + 1)
	saves := make([]int, n)
	limit := len(s)
	if re.anchoredStart {
		limit = 0
	}
	for start := 0; start <= limit; start++ {
		for i := range saves {
			saves[i] = -1
		}
		m := &machine{re: re, input: s, saves: saves}
		if m.run(0, start) {
			return saves
		}
	}
	return nil
}

// MatchPrefix reports whether the pattern matches at position 0 (like
// re.match).
func (re *Regexp) MatchPrefix(s string) []int {
	n := 2 * (re.ngroups + 1)
	saves := make([]int, n)
	for i := range saves {
		saves[i] = -1
	}
	m := &machine{re: re, input: s, saves: saves}
	if m.run(0, 0) {
		return saves
	}
	return nil
}

// Sub replaces all non-overlapping matches with repl, like re.sub with a
// literal replacement (backreferences like \1 in repl are expanded).
func (re *Regexp) Sub(repl, s string) string {
	var sb strings.Builder
	pos := 0
	for pos <= len(s) {
		var saves []int
		found := -1
		limit := len(s)
		if re.anchoredStart {
			limit = 0
			if pos > 0 {
				break
			}
		}
		for start := pos; start <= limit; start++ {
			n := 2 * (re.ngroups + 1)
			sv := make([]int, n)
			for i := range sv {
				sv[i] = -1
			}
			m := &machine{re: re, input: s, saves: sv}
			if m.run(0, start) {
				saves, found = sv, start
				break
			}
		}
		if found < 0 {
			break
		}
		sb.WriteString(s[pos:found])
		sb.WriteString(re.expand(repl, s, saves))
		end := saves[1]
		if end == found {
			// Empty match: copy one byte and move on to avoid looping.
			if found < len(s) {
				sb.WriteByte(s[found])
			}
			pos = found + 1
		} else {
			pos = end
		}
	}
	if pos < len(s) {
		sb.WriteString(s[pos:])
	}
	return sb.String()
}

// expand substitutes \1..\9 group backreferences in repl.
func (re *Regexp) expand(repl, s string, saves []int) string {
	if !strings.ContainsRune(repl, '\\') {
		return repl
	}
	var sb strings.Builder
	for i := 0; i < len(repl); i++ {
		c := repl[i]
		if c == '\\' && i+1 < len(repl) {
			n := repl[i+1]
			if n >= '1' && n <= '9' {
				g := int(n - '0')
				if 2*g+1 < len(saves) && saves[2*g] >= 0 {
					sb.WriteString(s[saves[2*g]:saves[2*g+1]])
				}
				i++
				continue
			}
			if n == '\\' {
				sb.WriteByte('\\')
				i++
				continue
			}
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// machine executes the program with recursive backtracking.
type machine struct {
	re    *Regexp
	input string
	saves []int
	steps int
}

// maxSteps bounds pathological backtracking; the patterns the pipelines
// use are linear in practice.
const maxSteps = 1 << 22

func (m *machine) run(pc, sp int) bool {
	prog := m.re.prog
	for {
		m.steps++
		if m.steps > maxSteps {
			return false
		}
		in := prog[pc]
		switch in.op {
		case opChar:
			if sp >= len(m.input) || m.input[sp] != in.c {
				return false
			}
			pc++
			sp++
		case opClass:
			if sp >= len(m.input) || !in.cls.matches(m.input[sp]) {
				return false
			}
			pc++
			sp++
		case opAny:
			if sp >= len(m.input) || m.input[sp] == '\n' {
				return false
			}
			pc++
			sp++
		case opBegin:
			if sp != 0 {
				return false
			}
			pc++
		case opEnd:
			if sp != len(m.input) && !(sp == len(m.input)-1 && m.input[sp] == '\n') {
				return false
			}
			pc++
		case opSave:
			old := m.saves[in.x]
			m.saves[in.x] = sp
			if m.run(pc+1, sp) {
				return true
			}
			m.saves[in.x] = old
			return false
		case opSplit:
			if m.run(in.x, sp) {
				return true
			}
			pc = in.y
		case opJump:
			pc = in.x
		case opMatch:
			return true
		}
	}
}

// ---- pattern AST ----

type node interface{}

type charNode struct{ c byte }
type classNode struct{ cls *class }
type anyNode struct{}
type beginNode struct{}
type endNode struct{}
type seqNode struct{ subs []node }
type altNode struct{ subs []node }
type groupNode struct {
	idx int // 0 for non-capturing
	sub node
}
type repeatNode struct {
	sub      node
	min, max int // max<0 means unbounded
	lazy     bool
}

type parser struct {
	src     string
	pos     int
	ngroups int
}

func (p *parser) errf(format string, args ...any) error {
	return &CompileError{p.src, p.pos, fmt.Sprintf(format, args...)}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseAlt() (node, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	if p.peek() != '|' {
		return first, nil
	}
	alt := &altNode{subs: []node{first}}
	for p.peek() == '|' {
		p.pos++
		sub, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		alt.subs = append(alt.subs, sub)
	}
	return alt, nil
}

func (p *parser) parseSeq() (node, error) {
	seq := &seqNode{}
	for p.pos < len(p.src) {
		c := p.peek()
		if c == '|' || c == ')' {
			break
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		atom, err = p.parseQuantifier(atom)
		if err != nil {
			return nil, err
		}
		seq.subs = append(seq.subs, atom)
	}
	if len(seq.subs) == 1 {
		return seq.subs[0], nil
	}
	return seq, nil
}

func (p *parser) parseQuantifier(atom node) (node, error) {
	switch p.peek() {
	case '*':
		p.pos++
		return &repeatNode{sub: atom, min: 0, max: -1, lazy: p.acceptLazy()}, nil
	case '+':
		p.pos++
		return &repeatNode{sub: atom, min: 1, max: -1, lazy: p.acceptLazy()}, nil
	case '?':
		p.pos++
		return &repeatNode{sub: atom, min: 0, max: 1, lazy: p.acceptLazy()}, nil
	case '{':
		// Bounded repetition {m}, {m,}, {m,n}. A '{' that does not parse
		// as a quantifier is a literal (Python allows this).
		save := p.pos
		p.pos++
		body := ""
		for p.pos < len(p.src) && p.src[p.pos] != '}' {
			body += string(p.src[p.pos])
			p.pos++
		}
		if p.pos >= len(p.src) {
			p.pos = save
			return atom, nil
		}
		p.pos++ // '}'
		min, max, ok := parseBounds(body)
		if !ok {
			p.pos = save
			return atom, nil
		}
		return &repeatNode{sub: atom, min: min, max: max, lazy: p.acceptLazy()}, nil
	}
	return atom, nil
}

func (p *parser) acceptLazy() bool {
	if p.peek() == '?' {
		p.pos++
		return true
	}
	return false
}

func parseBounds(body string) (min, max int, ok bool) {
	parts := strings.SplitN(body, ",", 2)
	m, err := strconv.Atoi(parts[0])
	if err != nil || m < 0 {
		return 0, 0, false
	}
	if len(parts) == 1 {
		return m, m, true
	}
	if parts[1] == "" {
		return m, -1, true
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < m {
		return 0, 0, false
	}
	return m, n, true
}

func (p *parser) parseAtom() (node, error) {
	c := p.peek()
	switch c {
	case '^':
		p.pos++
		return &beginNode{}, nil
	case '$':
		p.pos++
		return &endNode{}, nil
	case '.':
		p.pos++
		return &anyNode{}, nil
	case '(':
		p.pos++
		idx := 0
		if strings.HasPrefix(p.src[p.pos:], "?:") {
			p.pos += 2
		} else if p.peek() == '?' {
			return nil, p.errf("unsupported group flag")
		} else {
			p.ngroups++
			idx = p.ngroups
		}
		sub, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing )")
		}
		p.pos++
		return &groupNode{idx: idx, sub: sub}, nil
	case '[':
		return p.parseClass()
	case '\\':
		return p.parseEscape()
	case '*', '+', '?':
		return nil, p.errf("nothing to repeat")
	case 0:
		return nil, p.errf("unexpected end of pattern")
	default:
		p.pos++
		return &charNode{c: c}, nil
	}
}

func (p *parser) parseEscape() (node, error) {
	p.pos++ // backslash
	if p.pos >= len(p.src) {
		return nil, p.errf("trailing backslash")
	}
	c := p.src[p.pos]
	p.pos++
	if cls := predefClass(c); cls != nil {
		return &classNode{cls: cls}, nil
	}
	switch c {
	case 'n':
		return &charNode{c: '\n'}, nil
	case 't':
		return &charNode{c: '\t'}, nil
	case 'r':
		return &charNode{c: '\r'}, nil
	case 'b':
		return nil, p.errf(`\b word boundaries are not supported`)
	default:
		// Escaped metacharacter or ordinary char: literal.
		return &charNode{c: c}, nil
	}
}

// predefClass returns the class for \d \D \w \W \s \S, or nil.
func predefClass(c byte) *class {
	cls := &class{}
	switch c {
	case 'd', 'D':
		cls.setRange('0', '9')
	case 'w', 'W':
		cls.setRange('0', '9')
		cls.setRange('a', 'z')
		cls.setRange('A', 'Z')
		cls.set('_')
	case 's', 'S':
		for _, b := range []byte{' ', '\t', '\n', '\r', '\v', '\f'} {
			cls.set(b)
		}
	default:
		return nil
	}
	if c == 'D' || c == 'W' || c == 'S' {
		cls.neg = true
	}
	return cls
}

func (p *parser) parseClass() (node, error) {
	p.pos++ // '['
	cls := &class{}
	if p.peek() == '^' {
		cls.neg = true
		p.pos++
	}
	first := true
	for {
		c := p.peek()
		if c == 0 {
			return nil, p.errf("unterminated character class")
		}
		if c == ']' && !first {
			p.pos++
			return &classNode{cls: cls}, nil
		}
		first = false
		if c == '\\' {
			p.pos++
			e := p.peek()
			if e == 0 {
				return nil, p.errf("trailing backslash in class")
			}
			p.pos++
			if pc := predefClass(e); pc != nil {
				if pc.neg {
					// Merge a negated predef into a positive class by
					// enumerating (rare; supported for completeness).
					for b := 0; b < 256; b++ {
						if pc.matches(byte(b)) {
							cls.set(byte(b))
						}
					}
				} else {
					for i := range cls.bits {
						cls.bits[i] |= pc.bits[i]
					}
				}
				continue
			}
			switch e {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case 'r':
				c = '\r'
			default:
				c = e
			}
		} else {
			p.pos++
		}
		// Range?
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // '-'
			hi := p.peek()
			if hi == '\\' {
				p.pos++
				hi = p.peek()
			}
			p.pos++
			if hi < c {
				return nil, p.errf("bad character range")
			}
			cls.setRange(c, hi)
			continue
		}
		cls.set(c)
	}
}

// ---- compiler ----

type compiler struct{ prog []inst }

func (c *compiler) emit(in inst) int {
	c.prog = append(c.prog, in)
	return len(c.prog) - 1
}

func (c *compiler) compile(n node) {
	switch n := n.(type) {
	case *charNode:
		c.emit(inst{op: opChar, c: n.c})
	case *classNode:
		c.emit(inst{op: opClass, cls: n.cls})
	case *anyNode:
		c.emit(inst{op: opAny})
	case *beginNode:
		c.emit(inst{op: opBegin})
	case *endNode:
		c.emit(inst{op: opEnd})
	case *seqNode:
		for _, s := range n.subs {
			c.compile(s)
		}
	case *altNode:
		// split L1, L2; L1: a; jmp END; L2: b; ... END:
		var jumps []int
		for i, s := range n.subs {
			if i == len(n.subs)-1 {
				c.compile(s)
				break
			}
			sp := c.emit(inst{op: opSplit})
			c.prog[sp].x = len(c.prog)
			c.compile(s)
			jumps = append(jumps, c.emit(inst{op: opJump}))
			c.prog[sp].y = len(c.prog)
		}
		end := len(c.prog)
		for _, j := range jumps {
			c.prog[j].x = end
		}
	case *groupNode:
		if n.idx == 0 {
			c.compile(n.sub)
			return
		}
		c.emit(inst{op: opSave, x: 2 * n.idx})
		c.compile(n.sub)
		c.emit(inst{op: opSave, x: 2*n.idx + 1})
	case *repeatNode:
		c.compileRepeat(n)
	}
}

func (c *compiler) compileRepeat(n *repeatNode) {
	// Mandatory prefix.
	for range n.min {
		c.compile(n.sub)
	}
	switch {
	case n.max < 0:
		// star: L1: split L2, L3 ; L2: sub; jmp L1; L3:
		l1 := c.emit(inst{op: opSplit})
		c.prog[l1].x = len(c.prog)
		c.compile(n.sub)
		c.emit(inst{op: opJump, x: l1})
		c.prog[l1].y = len(c.prog)
		if n.lazy {
			c.prog[l1].x, c.prog[l1].y = c.prog[l1].y, c.prog[l1].x
		}
	default:
		// Up to (max-min) optional copies.
		var splits []int
		for range n.max - n.min {
			sp := c.emit(inst{op: opSplit})
			c.prog[sp].x = len(c.prog)
			c.compile(n.sub)
			splits = append(splits, sp)
		}
		end := len(c.prog)
		for _, sp := range splits {
			c.prog[sp].y = end
			if n.lazy {
				c.prog[sp].x, c.prog[sp].y = c.prog[sp].y, c.prog[sp].x
			}
		}
	}
}
