package pyre

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestSearchBasics(t *testing.T) {
	re := MustCompile(`ab+c`)
	if m := re.Search("xxabbbcyy"); m == nil || m[0] != 2 || m[1] != 7 {
		t.Fatalf("match = %v", m)
	}
	if m := re.Search("ac"); m != nil {
		t.Fatalf("unexpected match %v", m)
	}
}

func TestAnchors(t *testing.T) {
	re := MustCompile(`^ab`)
	if re.Search("xab") != nil {
		t.Fatal("^ should anchor")
	}
	if re.Search("abx") == nil {
		t.Fatal("^ab should match prefix")
	}
	re = MustCompile(`ab$`)
	if re.Search("abx") != nil {
		t.Fatal("$ should anchor")
	}
	if re.Search("xab") == nil {
		t.Fatal("ab$ should match suffix")
	}
}

func TestClasses(t *testing.T) {
	re := MustCompile(`[a-c]+`)
	if m := re.Search("zzabcaz"); m == nil || m[0] != 2 || m[1] != 6 {
		t.Fatalf("match = %v", m)
	}
	re = MustCompile(`[^/]+`)
	if m := re.Search("/~alice/x"); m == nil || m[0] != 1 || m[1] != 7 {
		t.Fatalf("negated class = %v", m)
	}
	re = MustCompile(`\d{3}`)
	if re.Search("ab12c") != nil {
		t.Fatal("\\d{3} should need 3 digits")
	}
	if re.Search("ab123c") == nil {
		t.Fatal("\\d{3} should match")
	}
}

func TestPredefinedClassesInsideClass(t *testing.T) {
	re := MustCompile(`[\w:/]+`)
	if m := re.Search(" ab:/cd "); m == nil || m[1]-m[0] != 6 {
		t.Fatalf("match = %v", m)
	}
}

func TestGroups(t *testing.T) {
	re := MustCompile(`(\S+) (\S+)`)
	m := re.Search("hello world rest")
	if m == nil {
		t.Fatal("no match")
	}
	if got := "hello"; "hello world rest"[m[2]:m[3]] != got {
		t.Fatalf("group1 = %q", "hello world rest"[m[2]:m[3]])
	}
	if got := "world"; "hello world rest"[m[4]:m[5]] != got {
		t.Fatalf("group2 = %q", "hello world rest"[m[4]:m[5]])
	}
	if re.NumGroups() != 2 {
		t.Fatalf("ngroups = %d", re.NumGroups())
	}
}

func TestAlternation(t *testing.T) {
	re := MustCompile(`cat|dog|bird`)
	for _, s := range []string{"a cat", "the dog", "birds"} {
		if re.Search(s) == nil {
			t.Errorf("no match in %q", s)
		}
	}
	if re.Search("cow") != nil {
		t.Error("matched cow")
	}
}

func TestOptionalAndStar(t *testing.T) {
	re := MustCompile(`colou?r`)
	if re.Search("color") == nil || re.Search("colour") == nil {
		t.Fatal("optional failed")
	}
	re = MustCompile(`a*b`)
	if m := re.Search("aaab"); m == nil || m[0] != 0 {
		t.Fatalf("star = %v", m)
	}
	if re.Search("b") == nil {
		t.Fatal("a*b should match bare b")
	}
}

func TestGreedyVsLazy(t *testing.T) {
	s := `"abc" and "def"`
	if m := MustCompile(`".*"`).Search(s); m == nil || s[m[0]:m[1]] != `"abc" and "def"` {
		t.Fatalf("greedy = %v", m)
	}
	if m := MustCompile(`".*?"`).Search(s); m == nil || s[m[0]:m[1]] != `"abc"` {
		t.Fatalf("lazy = %v", m)
	}
}

func TestApacheLogPattern(t *testing.T) {
	// The weblog pipeline's single-regex pattern, verbatim.
	pat := `^(\S+) (\S+) (\S+) \[([\w:/]+\s[+\-]\d{4})\] "(\S+) (\S+)\s*(\S*)\s*" (\d{3}) (\S+)`
	re := MustCompile(pat)
	line := `192.168.1.1 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`
	m := re.Search(line)
	if m == nil {
		t.Fatal("no match on valid log line")
	}
	group := func(i int) string {
		if m[2*i] < 0 {
			return ""
		}
		return line[m[2*i]:m[2*i+1]]
	}
	if group(1) != "192.168.1.1" {
		t.Errorf("ip = %q", group(1))
	}
	if group(4) != "10/Oct/2000:13:55:36 -0700" {
		t.Errorf("date = %q", group(4))
	}
	if group(5) != "GET" || group(6) != "/apache_pb.gif" || group(7) != "HTTP/1.0" {
		t.Errorf("request = %q %q %q", group(5), group(6), group(7))
	}
	if group(8) != "200" || group(9) != "2326" {
		t.Errorf("status = %q size = %q", group(8), group(9))
	}
	// A malformed line must not match.
	if re.Search("not a log line") != nil {
		t.Error("matched garbage")
	}
}

func TestSubBasic(t *testing.T) {
	re := MustCompile(`^/~[^/]+`)
	got := re.Sub("/~XXXX", "/~alice/papers/x.pdf")
	if got != "/~XXXX/papers/x.pdf" {
		t.Fatalf("sub = %q", got)
	}
	// Anchored pattern must only substitute at the start.
	got = re.Sub("/~XXXX", "/pub/~alice")
	if got != "/pub/~alice" {
		t.Fatalf("sub = %q", got)
	}
}

func TestSubAll(t *testing.T) {
	re := MustCompile(`\d+`)
	if got := re.Sub("N", "a1b22c333"); got != "aNbNcN" {
		t.Fatalf("sub = %q", got)
	}
}

func TestSubBackreference(t *testing.T) {
	re := MustCompile(`(\w+)@(\w+)`)
	if got := re.Sub(`\2.\1`, "user@host"); got != "host.user" {
		t.Fatalf("sub = %q", got)
	}
}

func TestSubEmptyMatch(t *testing.T) {
	re := MustCompile(`x*`)
	// Must terminate and behave like Python: re.sub('x*', '-', 'abc') ==
	// '-a-b-c-'.
	if got := re.Sub("-", "abc"); got != "-a-b-c-" {
		t.Fatalf("sub = %q", got)
	}
}

func TestBoundedRepetition(t *testing.T) {
	re := MustCompile(`a{2,3}`)
	if re.Search("a") != nil {
		t.Fatal("a{2,3} matched single a")
	}
	if m := re.Search("aaaa"); m == nil || m[1]-m[0] != 3 {
		t.Fatalf("greedy bound = %v", m)
	}
	re = MustCompile(`a{2,}`)
	if m := re.Search("aaaa"); m == nil || m[1]-m[0] != 4 {
		t.Fatalf("open bound = %v", m)
	}
}

func TestLiteralBrace(t *testing.T) {
	re := MustCompile(`a{x}`)
	if re.Search("a{x}") == nil {
		t.Fatal("literal brace failed")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{"(", "[", "a(b", "*a", `a\`, "(?P<n>x)"} {
		if _, err := Compile(pat); err == nil {
			t.Errorf("Compile(%q) succeeded", pat)
		}
	}
}

func TestAgainstGoRegexpOracle(t *testing.T) {
	// Property test: for random ASCII inputs, our engine agrees with
	// Go's regexp on a set of shared-semantics patterns.
	pats := []string{
		`a+b`, `[a-z]+\d*`, `(\w+) (\w+)`, `^x.*y$`, `a|bc|def`,
		`[^ ]+`, `f(o?)(x+)`,
	}
	alphabet := []byte("abxyz 019f")
	for _, pat := range pats {
		mine := MustCompile(pat)
		theirs := regexp.MustCompile(pat)
		f := func(raw []byte) bool {
			var sb strings.Builder
			for _, b := range raw {
				sb.WriteByte(alphabet[int(b)%len(alphabet)])
			}
			s := sb.String()
			m := mine.Search(s)
			loc := theirs.FindStringIndex(s)
			if (m == nil) != (loc == nil) {
				t.Logf("pat=%q s=%q mine=%v theirs=%v", pat, s, m, loc)
				return false
			}
			if m != nil && (m[0] != loc[0] || m[1] != loc[1]) {
				t.Logf("pat=%q s=%q mine=%v theirs=%v", pat, s, m[:2], loc)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("pattern %q disagrees with oracle: %v", pat, err)
		}
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for range 100 {
		if a.Next() != b.Next() {
			t.Fatal("PRNG not deterministic")
		}
	}
	c := NewPRNG(43)
	if a.Next() == c.Next() {
		t.Fatal("different seeds produced same stream (suspicious)")
	}
}

func TestPRNGChoice(t *testing.T) {
	p := NewPRNG(1)
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	seen := map[string]bool{}
	for range 1000 {
		ch := p.Choice(letters)
		if len(ch) != 1 || !strings.Contains(letters, ch) {
			t.Fatalf("bad choice %q", ch)
		}
		seen[ch] = true
	}
	if len(seen) < 20 {
		t.Fatalf("poor coverage: %d distinct letters", len(seen))
	}
}

func BenchmarkRegexEngines(b *testing.B) {
	// Paper §6.1.3 prose: the PCRE2 engine Tuplex uses is much faster than
	// java.util.regex. This microbenchmark compares our compiled engine
	// against Go's stdlib RE2 on the weblog pattern as the repo's analog.
	pat := `^(\S+) (\S+) (\S+) \[([\w:/]+\s[+\-]\d{4})\] "(\S+) (\S+)\s*(\S*)\s*" (\d{3}) (\S+)`
	line := `192.168.1.1 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326`
	b.Run("pyre", func(b *testing.B) {
		re := MustCompile(pat)
		b.ResetTimer()
		for range b.N {
			if re.Search(line) == nil {
				b.Fatal("no match")
			}
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		re := regexp.MustCompile(pat)
		b.ResetTimer()
		for range b.N {
			if re.FindStringSubmatchIndex(line) == nil {
				b.Fatal("no match")
			}
		}
	})
}
