package core

import "fmt"

// warnSource classifies Result warnings by origin so each source gets
// its own cap: a UDF with dozens of lints cannot starve engine advice
// out of Result.Warnings, and vice versa. (Parallelize unsupported-type
// warnings are capped separately at the API layer, before the run
// starts, with their own truncation summary.)
type warnSource int

const (
	// warnAdvice is engine advice: sampler and planner observations
	// about the run as a whole (e.g. the §7 all-exceptions sample).
	warnAdvice warnSource = iota
	// warnLint is per-UDF static-analysis output: dataflow lints and
	// dead-resolver findings.
	warnLint
	numWarnSources
)

// warnCaps bounds each source independently. Lints get the larger
// budget: there is one advice message per condition but potentially
// several lints per UDF (already capped per UDF by maxLintWarnings).
var warnCaps = [numWarnSources]int{
	warnAdvice: 16,
	warnLint:   24,
}

var warnLabels = [numWarnSources]string{
	warnAdvice: "engine advice warning(s)",
	warnLint:   "UDF lint warning(s)",
}

// warnings accumulates capped per-source messages during a run. The
// zero value is ready to use. Not safe for concurrent use: every
// warning site runs on the planning/driver goroutine.
type warnings struct {
	msgs    [numWarnSources][]string
	dropped [numWarnSources]int
}

func (w *warnings) add(src warnSource, format string, args ...any) {
	if len(w.msgs[src]) >= warnCaps[src] {
		w.dropped[src]++
		return
	}
	w.msgs[src] = append(w.msgs[src], fmt.Sprintf(format, args...))
}

// flush renders the collected warnings in source order, closing each
// overflowed source with its own truncation summary line.
func (w *warnings) flush() []string {
	var out []string
	for src := warnSource(0); src < numWarnSources; src++ {
		out = append(out, w.msgs[src]...)
		if d := w.dropped[src]; d > 0 {
			out = append(out, fmt.Sprintf("%d more %s suppressed", d, warnLabels[src]))
		}
	}
	return out
}
