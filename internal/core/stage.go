package core

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/dataflow"
	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/pyre"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/sample"
	"github.com/gotuplex/tuplex/internal/trace"
	"github.com/gotuplex/tuplex/internal/types"
)

// ECode aliases the return-code exception representation.
type ECode = codegen.ECode

// csvBufPool recycles task CSV output buffers across tasks and runs. A
// steady-state buffer is already output-sized, so sink rendering avoids
// both doubling-growth copies and the runtime's large-allocation
// zeroing, which otherwise dominate the sink path's profile.
var csvBufPool sync.Pool // holds *[]byte

func getCSVBuf() []byte {
	if p, _ := csvBufPool.Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putCSVBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	csvBufPool.Put(&b)
}

// nstep is one compiled normal-path step (push model: each step calls
// the next; a nonzero return code aborts the row, which the driver then
// pools).
type nstep func(ts *task, key uint64, row rows.Row) ECode

// opHandlers are the resolvers/ignores attached to one UDF operator.
type opHandlers struct {
	resolvers []resolverSpec
	ignores   []pyvalue.ExcKind
}

type resolverSpec struct {
	exc pyvalue.ExcKind
	udf *boxedUDF
}

// compiledStage is one stage ready to run.
type compiledStage struct {
	eng      *engine
	terminal physical.TerminalKind
	termOp   logical.Op

	// Source-side state.
	records    [][]byte      // raw records for materialized CSV/text sources
	stream     *streamSource // chunked ingest for file-backed sources
	parse      *csvio.ParseSpec
	isText     bool
	nFields    int               // projected parser field count (source stages)
	boxedInput *mat        // input materialization for non-source stages
	inputSlots []rows.Row  // parallelize source (unboxed slot rows)
	partRanges [][2]int

	inSchema   *types.Schema
	outSchema  *types.Schema
	nullValues []string
	// srcFacts seeds the dataflow analysis for the first UDF: per-column
	// type facts plus sampled value statistics (constants, int ranges)
	// for sources that sample values. Nil means type facts only.
	srcFacts []dataflow.ColFact

	entry nstep // head of the compiled normal path
	// batch is the stage's columnar plan (CSV sources with Columnar on);
	// runRecords dispatches to it instead of the per-row entry chain.
	batch   *batchProg
	maxCols int
	nUDFs   int
	// sinkCSV marks a final stage that renders CSV inside the tasks.
	sinkCSV bool

	// Boxed-path program (general & fallback), parallel to stage ops.
	boxed []*boxedOp

	// aggregate state
	aggInit     pyvalue.Value
	aggScalar   bool
	aggSlotType types.Type
	aggUDF      *stageUDF
	combUDF     *boxedUDF

	sampleTime time.Duration
	tasks      []*task

	// Tracing state. opNames names the routing-ledger entries: index 0
	// is the source/parse pseudo-op, 1..len(ops) follow the stage's
	// operators and the last entry is the terminal. routing accumulates
	// the serial resolve-phase outcomes (plus merged per-task counters),
	// samples the bounded exception-row sample.
	opNames      []string
	routing      []trace.OpRouting
	samples      []trace.ExcSample
	traceRows    bool
	traceSamples bool
	termRouteIdx int32
	// poolSize is the stage's exception-pool size (set by
	// resolveExceptions, reported on the resolve span).
	poolSize int

	// bstPool recycles batch memory (parse vectors, derived vectors,
	// selection buffers) across the stage's tasks: string-vector byte
	// buffers reach steady capacity after a few chunks instead of
	// regrowing per task.
	bstPool sync.Pool
}

// stageUDF bundles one operator's three compiled forms.
type stageUDF struct {
	spec     *logical.UDFSpec
	compiled *codegen.UDF // normal path; nil if not fast-path compilable
	boxed    *boxedUDF
	// flow carries the dataflow analysis for the typed normal-case form
	// (nil when typing failed); consulted for dead-resolver warnings.
	flow *dataflow.Result
	// scalarParam reports that the UDF receives the bare column value
	// (single-column rows / mapColumn).
	scalarParam bool
	frameIdx    int
}

// task is per-partition execution state.
type task struct {
	eng  *engine
	cs   *compiledStage
	part int

	frames  []*codegen.Frame
	scratch [][]rows.Slot
	rowBuf  []rows.Slot
	// keyBuf is the reusable scratch buffer for hash-key encodings (join
	// probes, unique terminal) — the hot paths never allocate per row.
	keyBuf []byte

	outRows []rows.Row
	outKeys []uint64
	// outSlab backs materialized outRows: rows append here and slice
	// capped views out, so the collect sink costs one amortized slab
	// per task instead of one allocation per row.
	outSlab []rows.Slot
	pool    []exRow

	// streaming CSV sink state
	csvW     *csvio.Writer
	lineEnds []int

	// bst is the lazily-created columnar batch memory (batch stages only).
	bst *batchState

	aggSlot rows.Slot
	hasAgg  bool

	uniq *uniqSet

	// probe counters accumulate locally and flush with the other
	// per-task counters (atomics per probe would dominate tight loops).
	probeHits, probeMisses int64

	// Batch-plane counters (columnar stages only). columnarRows counts
	// rows that completed the kernel prefix in vector form; bounced
	// counts rows handed to the row-at-a-time suffix at the stage
	// barrier; fusedPasses counts fused-group scans over a batch;
	// nullElided/nullChecked count batch-column dispatches that did /
	// did not take the no-null inner loop.
	columnarRows, bounced   int64
	bouncedFlushed          int64
	fusedPasses             int64
	nullElided, nullChecked int64

	// Tracing scratch. worker/start/dur/inRows feed the execute span's
	// task timings (filled only when the tracer is on). route/routeExc
	// are the task's routing-ledger counters, indexed like cs.opNames
	// (nil below trace.LevelRows — the default path carries none of
	// this). excOp is the ledger index of the operator that raised the
	// current row's normal-path exception; every raise site stores it,
	// so it is valid exactly when the entry chain returns nonzero.
	worker int
	start  time.Time
	dur    time.Duration
	inRows int64
	route    []int64
	routeExc []int64
	excOp    int32
}

func (cs *compiledStage) numPartitions() int { return len(cs.partRanges) }

func (cs *compiledStage) newTask(eng *engine, part int) *task {
	ts := &task{eng: eng, cs: cs, part: part}
	ts.frames = make([]*codegen.Frame, cs.nUDFs)
	for i := range ts.frames {
		ts.frames[i] = codegen.NewFrame(8)
		ts.frames[i].Rand = pyre.NewPRNG(eng.opts.Seed + uint64(part)*1000003 + uint64(i))
	}
	ts.scratch = make([][]rows.Slot, cs.nUDFs+4)
	ts.rowBuf = make([]rows.Slot, 0, cs.maxCols)
	ts.keyBuf = make([]byte, 0, 64)
	if cs.terminal == physical.TerminalUnique {
		ts.uniq = newUniqSet()
	}
	if cs.terminal == physical.TerminalAggregate {
		ts.aggSlot = coerceSlot(rows.FromValue(cs.aggInit), cs.aggSlotType)
		ts.hasAgg = true
	}
	if cs.sinkCSV {
		ts.csvW = csvio.NewWriterBuf(',', getCSVBuf())
	}
	if cs.traceRows {
		ts.route = make([]int64, len(cs.opNames))
		ts.routeExc = make([]int64, len(cs.opNames))
	}
	return ts
}

// routeWrap counts rows entering the wrapped step into the task's
// routing ledger. Wrappers are composed into the chain only at
// trace.LevelRows and above, so the default normal path is exactly the
// uninstrumented one.
func routeWrap(next nstep, ridx int32) nstep {
	return func(ts *task, key uint64, row rows.Row) ECode {
		ts.route[ridx]++
		return next(ts, key, row)
	}
}

// mergedRouting folds the per-task ledger counters and the boxed-path
// atomics into the stage ledger. Called serially after workers join.
func (cs *compiledStage) mergedRouting() []trace.OpRouting {
	if cs.routing == nil {
		return nil
	}
	out := cs.routing
	for _, ts := range cs.tasks {
		if ts == nil || ts.route == nil {
			continue
		}
		for i := range out {
			out[i].NormalIn += ts.route[i]
			out[i].NormalExc += ts.routeExc[i]
		}
		// Rows that fell off the kernel prefix at the stage barrier are
		// attributed to the barrier op itself, not folded into the
		// generic boxed counters.
		if cs.batch != nil && cs.batch.suffix != nil && int(cs.batch.barrierIdx) < len(out) {
			out[cs.batch.barrierIdx].Bounced += ts.bounced
		}
	}
	for oi, bop := range cs.boxed {
		if bop.stats == nil {
			continue
		}
		out[oi+1].GeneralIn += bop.stats.generalIn.Load()
		out[oi+1].FallbackIn += bop.stats.fallbackIn.Load()
	}
	return out
}

// runRecords feeds raw source records through the normal path with
// order keys baseKey+i. Counters accumulate locally and flush once per
// call — atomics per row would dominate tight loops. copyRaw detaches
// pooled exception rows from the record storage (required when records
// alias a reusable chunk buffer).
func (cs *compiledStage) runRecords(ts *task, p int, recs [][]byte, baseKey uint64, copyRaw bool) error {
	if cs.batch != nil {
		return cs.runRecordsColumnar(ts, p, recs, baseKey, copyRaw)
	}
	var input, rejects, normalExc, normal int64
	for i, rec := range recs {
		key := baseKey + uint64(i)
		input++
		var row rows.Row
		var ec ECode
		if cs.isText {
			row = ts.rowBuf[:1]
			row[0] = rows.Str(string(rec))
		} else {
			row = ts.rowBuf[:cs.nFields]
			ec = cs.parse.ParseLine(rec, row)
		}
		if ec != 0 {
			rejects++
			ts.pool = append(ts.pool, exRow{part: p, key: key, raw: rec, ec: ec})
			continue
		}
		if ec = cs.entry(ts, key, row); ec != 0 {
			normalExc++
			ts.pool = append(ts.pool, exRow{part: p, key: key, raw: rec, ec: ec, op: ts.excOp})
			if ts.routeExc != nil {
				ts.routeExc[ts.excOp]++
			}
			continue
		}
		normal++
	}
	c := &ts.eng.res.Metrics.Counters
	c.InputRows.Add(input)
	c.ClassifierRejects.Add(rejects)
	c.NormalPathExceptions.Add(normalExc)
	c.NormalRows.Add(normal)
	ts.inRows += input
	if ts.route != nil {
		ts.route[0] += input
		ts.routeExc[0] += rejects
	}
	ts.flushProbeCounters()
	if copyRaw {
		for i := range ts.pool {
			if ts.pool[i].raw != nil {
				ts.pool[i].raw = append([]byte(nil), ts.pool[i].raw...)
			}
		}
	}
	return nil
}

// runPartition feeds a materialized partition's rows through the normal
// path.
func (cs *compiledStage) runPartition(ts *task, p int) error {
	r := cs.partRanges[p]
	if cs.records != nil {
		return cs.runRecords(ts, p, cs.records[r[0]:r[1]], uint64(r[0]), false)
	}
	if cs.inputSlots != nil && cs.batch != nil {
		return cs.runSlotsColumnar(ts, p)
	}
	var input, rejects, normalExc, normal int64
	switch {
	case cs.inputSlots != nil:
		for i := r[0]; i < r[1]; i++ {
			key := uint64(i)
			input++
			src := cs.inputSlots[i]
			if !rowConforms(src, cs.inSchema) {
				rejects++
				ts.pool = append(ts.pool, exRow{part: p, key: key, vals: rows.RowToValues(src), ec: pyvalue.ExcBadParse})
				continue
			}
			row := append(ts.rowBuf[:0], src...)
			if ec := cs.entry(ts, key, row); ec != 0 {
				normalExc++
				ts.pool = append(ts.pool, exRow{part: p, key: key, vals: rows.RowToValues(src), ec: ec, op: ts.excOp})
				if ts.routeExc != nil {
					ts.routeExc[ts.excOp]++
				}
				continue
			}
			normal++
		}
	default:
		in := cs.boxedInput
		rowsP, keysP := in.parts[p], in.keys[p]
		for i := range rowsP {
			input++
			row := append(ts.rowBuf[:0], rowsP[i]...)
			if ec := cs.entry(ts, keysP[i], row); ec != 0 {
				normalExc++
				ts.pool = append(ts.pool, exRow{part: p, key: keysP[i], vals: rows.RowToValues(rowsP[i]), ec: ec, op: ts.excOp})
				if ts.routeExc != nil {
					ts.routeExc[ts.excOp]++
				}
				continue
			}
			normal++
		}
	}
	c := &ts.eng.res.Metrics.Counters
	c.InputRows.Add(input)
	c.ClassifierRejects.Add(rejects)
	c.NormalPathExceptions.Add(normalExc)
	c.NormalRows.Add(normal)
	ts.inRows += input
	if ts.route != nil {
		ts.route[0] += input
		ts.routeExc[0] += rejects
	}
	ts.flushProbeCounters()
	return nil
}

// flushProbeCounters drains the task-local join probe tallies into the
// shared metrics.
func (ts *task) flushProbeCounters() {
	if ts.probeHits == 0 && ts.probeMisses == 0 {
		return
	}
	jm := &ts.eng.res.Metrics.Join
	jm.ProbeHits.Add(ts.probeHits)
	jm.ProbeMisses.Add(ts.probeMisses)
	ts.probeHits, ts.probeMisses = 0, 0
}

// flushBatchCounters drains the task-local batch-plane tallies into the
// shared metrics (called once per run-partition call, like the probe
// counters; ts.bounced stays live for the routing-ledger merge).
func (ts *task) flushBatchCounters() {
	bm := &ts.eng.res.Metrics.Batch
	if ts.columnarRows != 0 {
		bm.ColumnarRows.Add(ts.columnarRows)
		ts.columnarRows = 0
	}
	if d := ts.bounced - ts.bouncedFlushed; d != 0 {
		bm.BouncedRows.Add(d)
		ts.bouncedFlushed = ts.bounced
	}
	if ts.fusedPasses != 0 {
		bm.FusedPasses.Add(ts.fusedPasses)
		ts.fusedPasses = 0
	}
	if ts.nullElided != 0 {
		bm.NullElisions.Add(ts.nullElided)
		ts.nullElided = 0
	}
	if ts.nullChecked != 0 {
		bm.NullChecked.Add(ts.nullChecked)
		ts.nullChecked = 0
	}
}

// unboxConforming converts a boxed row to slots when it matches the
// normal schema.
func unboxConforming(vals []pyvalue.Value, sch *types.Schema, buf []rows.Slot) (rows.Row, bool) {
	if len(vals) != sch.Len() {
		return nil, false
	}
	row := buf[:len(vals)]
	for i, v := range vals {
		s := rows.FromValue(v)
		if !rows.Matches(s, sch.Col(i).Type) {
			return nil, false
		}
		row[i] = s
	}
	return row, true
}

// rowConforms reports whether a slot row matches the normal schema
// (the classifier for slot-native sources — no conversion needed).
func rowConforms(row rows.Row, sch *types.Schema) bool {
	if len(row) != sch.Len() {
		return false
	}
	for i, s := range row {
		if !rows.Matches(s, sch.Col(i).Type) {
			return false
		}
	}
	return true
}

// compileStage builds the normal and boxed programs for one stage.
func (eng *engine) compileStage(st *physical.Stage, input *mat) (*compiledStage, error) {
	cs := &compiledStage{eng: eng, terminal: st.Terminal, termOp: st.TerminalOp}
	cs.sinkCSV = st.Terminal == physical.TerminalSink && eng.sink == SinkCSV
	if err := eng.prepareSource(cs, st, input); err != nil {
		return nil, err
	}

	// Routing-ledger layout (one entry per operator plus the source and
	// terminal pseudo-entries); counters are only allocated at LevelRows.
	cs.traceRows = eng.tr.Rows()
	cs.traceSamples = eng.tr.Samples()
	cs.opNames = make([]string, 0, len(st.Ops)+2)
	cs.opNames = append(cs.opNames, "source")
	for _, op := range st.Ops {
		cs.opNames = append(cs.opNames, opName(op))
	}
	cs.opNames = append(cs.opNames, terminalName(st.Terminal, cs.sinkCSV))
	cs.termRouteIdx = int32(len(st.Ops) + 1)
	if cs.traceRows {
		cs.routing = make([]trace.OpRouting, len(cs.opNames))
		for i, n := range cs.opNames {
			cs.routing[i].Op = n
		}
	}

	// Walk ops: compute schemas, compile UDFs, build step compilers.
	type compiledOp struct {
		make func(next nstep) nstep
		// ridx is the op's routing-ledger index.
		ridx int32
		// batch is the op's columnar kernel (nil = not batch-compilable;
		// the kernel prefix ends at the first nil).
		batch *batchKernel
	}
	var nops []compiledOp
	schema := cs.inSchema
	cs.maxCols = schema.Len()
	frameIdx := 0
	var lastHandlers *opHandlers
	// lastUDF tracks the UDF a following resolve() attaches to, for the
	// dead-resolver lint.
	var lastUDF *stageUDF
	// colFacts tracks the per-column dataflow seeds alongside schema.
	// Ops that change columns rebuild it (cloning first: earlier UDFs'
	// analysis results hold references to prior versions).
	colFacts := cs.srcFacts
	if colFacts == nil {
		colFacts = typeColFacts(schema)
	}

	for oi, op := range st.Ops {
		ridx := int32(oi + 1)
		switch op := op.(type) {
		case *logical.MapOp:
			scalar, paramT := paramStyle(op.UDF, schema)
			su, err := eng.compileUDF(op.UDF, []types.Type{paramT}, scalar, colFacts, opName(op))
			if err != nil {
				return nil, err
			}
			lastUDF = su
			su.frameIdx = frameIdx
			frameIdx++
			outSchema := mapOutputSchema(su)
			h := &opHandlers{}
			bop := &boxedOp{kind: bOpMap, udf: su.boxed, handlers: h, inSchema: schema, outSchema: outSchema, scalar: scalar}
			cs.boxed = append(cs.boxed, bop)
			lastHandlers = h
			inIdx := 0 // scalar single-column index
			nCols := outSchema.Len()
			scratchIdx := su.frameIdx
			outTs := make([]types.Type, outSchema.Len())
			for i := range outTs {
				outTs[i] = outSchema.Col(i).Type
			}
			bk := &batchKernel{kind: bkMap, su: su, ridx: ridx, scalar: scalar, colIdx: inIdx,
				inCols: schema.Len(), argCols: kernelArgCols(su, schema), outTypes: outTs}
			nops = append(nops, compiledOp{ridx: ridx, batch: bk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					v, ec := callNormalUDF(ts, su, row, inIdx, scalar)
					if ec != 0 {
						ts.excOp = ridx
						return ec
					}
					out := ts.opScratch(scratchIdx, cs.maxCols)
					switch {
					case len(v.Seq) > 0 && (v.Tag == types.KindDict || v.Tag == types.KindTuple):
						if len(v.Seq) != nCols {
							ts.excOp = ridx
							return pyvalue.ExcUnsupported
						}
						out = append(out, v.Seq...)
					case nCols == 1:
						out = append(out, v)
					default:
						ts.excOp = ridx
						return pyvalue.ExcUnsupported
					}
					return next(ts, key, out)
				}
			}})
			schema = outSchema
			colFacts = typeColFacts(outSchema)
			if schema.Len() > cs.maxCols {
				cs.maxCols = schema.Len() + 8
			}

		case *logical.FilterOp:
			scalar, paramT := paramStyle(op.UDF, schema)
			su, err := eng.compileUDF(op.UDF, []types.Type{paramT}, scalar, colFacts, opName(op))
			if err != nil {
				return nil, err
			}
			lastUDF = su
			su.frameIdx = frameIdx
			frameIdx++
			h := &opHandlers{}
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpFilter, udf: su.boxed, handlers: h, inSchema: schema, scalar: scalar})
			lastHandlers = h
			fbk := &batchKernel{kind: bkFilter, su: su, ridx: ridx, scalar: scalar,
				inCols: schema.Len(), argCols: kernelArgCols(su, schema)}
			nops = append(nops, compiledOp{ridx: ridx, batch: fbk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					v, ec := callNormalUDF(ts, su, row, 0, scalar)
					if ec != 0 {
						ts.excOp = ridx
						return ec
					}
					if !v.Truth() {
						return 0
					}
					return next(ts, key, row)
				}
			}})

		case *logical.WithColumnOp:
			scalar, paramT := paramStyle(op.UDF, schema)
			su, err := eng.compileUDF(op.UDF, []types.Type{paramT}, scalar, colFacts, opName(op))
			if err != nil {
				return nil, err
			}
			lastUDF = su
			su.frameIdx = frameIdx
			frameIdx++
			retT := su.returnType()
			replaceIdx, exists := schema.Lookup(op.Col)
			if !exists {
				replaceIdx = -1
			}
			h := &opHandlers{}
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpWithColumn, udf: su.boxed, handlers: h, inSchema: schema, col: op.Col, colIdx: replaceIdx, scalar: scalar})
			lastHandlers = h
			wbk := &batchKernel{kind: bkWithColumn, su: su, ridx: ridx, scalar: scalar, colIdx: replaceIdx,
				inCols: schema.Len(), argCols: kernelArgCols(su, schema), outTypes: []types.Type{retT}}
			nops = append(nops, compiledOp{ridx: ridx, batch: wbk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					v, ec := callNormalUDF(ts, su, row, 0, scalar)
					if ec != 0 {
						ts.excOp = ridx
						return ec
					}
					if replaceIdx >= 0 {
						row[replaceIdx] = v
					} else {
						row = append(row, v)
					}
					return next(ts, key, row)
				}
			}})
			schema = schema.WithColumn(op.Col, retT)
			nf := append([]dataflow.ColFact(nil), colFacts...)
			if replaceIdx >= 0 && replaceIdx < len(nf) {
				nf[replaceIdx] = dataflow.ColFact{Type: retT}
			} else {
				nf = append(nf, dataflow.ColFact{Type: retT})
			}
			colFacts = nf
			if schema.Len() > cs.maxCols {
				cs.maxCols = schema.Len() + 8
			}

		case *logical.MapColumnOp:
			idx, ok := schema.Lookup(op.Col)
			if !ok {
				return nil, fmt.Errorf("core: mapColumn: no column %q in %s", op.Col, schema)
			}
			colT := schema.Col(idx).Type
			su, err := eng.compileUDF(op.UDF, []types.Type{colT}, true,
				[]dataflow.ColFact{colFacts[idx]}, opName(op))
			if err != nil {
				return nil, err
			}
			lastUDF = su
			su.frameIdx = frameIdx
			frameIdx++
			h := &opHandlers{}
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpMapColumn, udf: su.boxed, handlers: h, inSchema: schema, col: op.Col, colIdx: idx, scalar: true})
			lastHandlers = h
			mbk := &batchKernel{kind: bkMapColumn, su: su, ridx: ridx, scalar: true, colIdx: idx,
				inCols: schema.Len(), outTypes: []types.Type{su.returnType()}}
			nops = append(nops, compiledOp{ridx: ridx, batch: mbk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					v, ec := callNormalUDF(ts, su, row, idx, true)
					if ec != 0 {
						ts.excOp = ridx
						return ec
					}
					row[idx] = v
					return next(ts, key, row)
				}
			}})
			schema = schema.WithColumn(op.Col, su.returnType())
			nf := append([]dataflow.ColFact(nil), colFacts...)
			nf[idx] = dataflow.ColFact{Type: su.returnType()}
			colFacts = nf

		case *logical.RenameOp:
			ns, err := schema.Rename(op.Old, op.New)
			if err != nil {
				return nil, err
			}
			schema = ns
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpNoop})

		case *logical.SelectOp:
			ns, idx, err := schema.Select(op.Cols)
			if err != nil {
				return nil, err
			}
			nf := make([]dataflow.ColFact, len(idx))
			for i, j := range idx {
				if j < len(colFacts) {
					nf[i] = colFacts[j]
				} else {
					nf[i] = dataflow.ColFact{Type: ns.Col(i).Type}
				}
			}
			colFacts = nf
			schema = ns
			sel := append([]int(nil), idx...)
			selScratch := frameIdx
			frameIdx++
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpSelect, sel: sel})
			sbk := &batchKernel{kind: bkSelect, ridx: ridx, perm: sel}
			nops = append(nops, compiledOp{ridx: ridx, batch: sbk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					out := ts.opScratch(selScratch, len(sel))
					for _, i := range sel {
						out = append(out, row[i])
					}
					return next(ts, key, out)
				}
			}})

		case *logical.ResolveOp:
			if lastHandlers == nil {
				return nil, fmt.Errorf("core: resolve() without a preceding UDF operator")
			}
			bu, err := compileBoxedUDF(op.UDF)
			if err != nil {
				return nil, err
			}
			lastHandlers.resolvers = append(lastHandlers.resolvers, resolverSpec{exc: op.Exc, udf: bu})
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpNoop})
			// Dead-resolver lint: the compiled normal-case path provably
			// never raises this kind. The resolver still applies on the
			// general path (non-conforming rows run full Python
			// semantics), so this is a warning, not an error.
			if lastUDF != nil && lastUDF.compiled != nil && lastUDF.flow != nil &&
				!lastUDF.flow.MayRaise(op.Exc) {
				eng.warns.add(warnLint,
					"resolve(%s): the compiled normal-case path of the preceding UDF cannot raise %s; the resolver only applies to general-path rows",
					op.Exc, op.Exc)
			}

		case *logical.IgnoreOp:
			if lastHandlers == nil {
				return nil, fmt.Errorf("core: ignore() without a preceding UDF operator")
			}
			lastHandlers.ignores = append(lastHandlers.ignores, op.Exc)
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpNoop})

		case *logical.JoinOp:
			// The build side runs its whole chain here (§4.5), so its
			// stage spans nest under a join-build span.
			jsp := eng.tr.Begin("join-build", trace.Str("key", op.RightKey))
			bt, err := eng.buildJoinTable(op)
			if err != nil {
				return nil, err
			}
			jsp.Add(trace.Int("build_rows", int64(bt.buildRows)),
				trace.Int("general_rows", int64(bt.genCount)),
				trace.Int("shards", int64(len(bt.shards))))
			eng.tr.End(jsp)
			keyIdx, ok := schema.Lookup(op.LeftKey)
			if !ok {
				return nil, fmt.Errorf("core: join: no column %q in %s", op.LeftKey, schema)
			}
			outSchema := joinOutputSchema(schema, op, bt)
			left := op.Left
			bAdd := bt.addedCols
			scratchIdx := frameIdx
			frameIdx++ // reserve a scratch slot (no frame needed)
			cs.boxed = append(cs.boxed, &boxedOp{kind: bOpJoin, join: bt, keyIdx: keyIdx, leftOuter: left, inSchema: schema, outSchema: outSchema})
			jOutTs := make([]types.Type, outSchema.Len())
			for i := range jOutTs {
				jOutTs[i] = outSchema.Col(i).Type
			}
			jbk := &batchKernel{kind: bkJoin, ridx: ridx, colIdx: keyIdx, join: bt, leftOuter: left,
				inCols: schema.Len(), outTypes: jOutTs}
			nops = append(nops, compiledOp{ridx: ridx, batch: jbk, make: func(next nstep) nstep {
				return func(ts *task, key uint64, row rows.Row) ECode {
					// Probe: encode the key into the task scratch buffer,
					// hash, and look up the shard — no allocation. (The
					// string(buf) map index below does not allocate; Go
					// optimizes byte-slice map probes, and the general map
					// is only consulted when exception build rows exist.)
					buf, ok := rows.AppendJoinKey(ts.keyBuf[:0], row[keyIdx])
					ts.keyBuf = buf
					var matches []buildRef
					if ok {
						if bt.genCount > 0 && len(bt.general[string(buf)]) > 0 {
							// Normal×exception join pairs run on the
							// exception path (§4.5 pairwise joins).
							ts.excOp = ridx
							return pyvalue.ExcUnsupported
						}
						matches = bt.lookup(rows.Hash64(buf), buf)
					}
					if len(matches) == 0 {
						ts.probeMisses++
						if !left {
							return 0
						}
						out := ts.opScratch(scratchIdx, cs.maxCols)
						out = append(out, row...)
						for range bAdd {
							out = append(out, rows.Null())
						}
						return next(ts, key*256, out)
					}
					ts.probeHits++
					for i, ref := range matches {
						sub := uint64(i)
						if sub > 255 {
							sub = 255
						}
						out := ts.opScratch(scratchIdx, cs.maxCols)
						out = append(out, row...)
						out = bt.appendRow(out, ref)
						if ec := next(ts, key*256+sub, out); ec != 0 {
							return ec
						}
					}
					return 0
				}
			}})
			nf := append([]dataflow.ColFact(nil), colFacts...)
			for i := schema.Len(); i < outSchema.Len(); i++ {
				nf = append(nf, dataflow.ColFact{Type: outSchema.Col(i).Type})
			}
			colFacts = nf
			schema = outSchema
			if schema.Len() > cs.maxCols {
				cs.maxCols = schema.Len() + 8
			}

		default:
			return nil, fmt.Errorf("core: unsupported operator %T", op)
		}
	}

	cs.outSchema = schema
	cs.nUDFs = frameIdx + 1

	// Terminal handling.
	if st.Terminal == physical.TerminalAggregate {
		agg := st.TerminalOp.(*logical.AggregateOp)
		if err := eng.compileAggregate(cs, agg, schema); err != nil {
			return nil, err
		}
	}
	term, err := cs.makeTerminal()
	if err != nil {
		return nil, err
	}
	// Compose the chain back to front; at LevelRows every step (and the
	// terminal) is preceded by its ledger counter. compose(from) builds
	// the chain starting at op index from — compose(0) is the full row
	// path, later starts serve as the batch plan's row-at-a-time suffix.
	compose := func(from int) nstep {
		entry := term
		if cs.traceRows {
			entry = routeWrap(entry, cs.termRouteIdx)
		}
		for i := len(nops) - 1; i >= from; i-- {
			entry = nops[i].make(entry)
			if cs.traceRows {
				entry = routeWrap(entry, nops[i].ridx)
			}
		}
		return entry
	}
	cs.entry = compose(0)

	// Columnar batch plan: CSV and Parallelize sources compile the
	// maximal prefix of batchable ops into kernels; anything after (plus
	// non-batchable terminals) runs through the composed suffix via the
	// row bridge. Adjacent per-row kernels group into fused passes that
	// share one selection-vector scan.
	if eng.opts.Columnar && ((cs.parse != nil && !cs.isText) || cs.inputSlots != nil) {
		prefix := 0
		for prefix < len(nops) && nops[prefix].batch != nil {
			prefix++
		}
		kernels := make([]*batchKernel, prefix)
		for i := range kernels {
			kernels[i] = nops[i].batch
		}
		bp := &batchProg{kernels: kernels, groups: fuseKernels(kernels)}
		batchTerm := cs.terminal == physical.TerminalSink || cs.terminal == physical.TerminalMaterialize ||
			cs.terminal == physical.TerminalUnique || cs.terminal == physical.TerminalAggregate
		if prefix < len(nops) || !batchTerm {
			bp.suffix = compose(prefix)
			// The stage barrier: rows reaching the end of the kernel
			// prefix bounce to the composed row path at this ledger index.
			bp.barrierIdx = cs.termRouteIdx
			if prefix < len(nops) {
				bp.barrierIdx = nops[prefix].ridx
			}
		}
		cs.batch = bp
	}
	if cs.traceRows {
		for _, bop := range cs.boxed {
			bop.stats = &boxedOpStats{}
		}
	}
	return cs, nil
}

// opName names an operator for the routing ledger and trace output.
func opName(op logical.Op) string {
	switch op := op.(type) {
	case *logical.MapOp:
		return "map"
	case *logical.FilterOp:
		return "filter"
	case *logical.WithColumnOp:
		return "withColumn(" + op.Col + ")"
	case *logical.MapColumnOp:
		return "mapColumn(" + op.Col + ")"
	case *logical.RenameOp:
		return "rename"
	case *logical.SelectOp:
		return "select"
	case *logical.ResolveOp:
		return "resolve"
	case *logical.IgnoreOp:
		return "ignore"
	case *logical.JoinOp:
		return "join(" + op.LeftKey + ")"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// terminalName names the stage terminal for the routing ledger.
func terminalName(k physical.TerminalKind, sinkCSV bool) string {
	switch k {
	case physical.TerminalUnique:
		return "unique"
	case physical.TerminalAggregate:
		return "aggregate"
	default:
		if sinkCSV {
			return "csv"
		}
		return "collect"
	}
}

// opScratch returns a reusable slot buffer for op i.
func (ts *task) opScratch(i, capHint int) []rows.Slot {
	for i >= len(ts.scratch) {
		ts.scratch = append(ts.scratch, nil)
	}
	if cap(ts.scratch[i]) < capHint {
		ts.scratch[i] = make([]rows.Slot, 0, capHint+8)
	}
	return ts.scratch[i][:0]
}

// callNormalUDF invokes a compiled UDF with either the whole row or one
// column value.
func callNormalUDF(ts *task, su *stageUDF, row rows.Row, colIdx int, scalar bool) (rows.Slot, ECode) {
	if su.compiled == nil {
		return rows.Slot{}, pyvalue.ExcUnsupported
	}
	fr := ts.frames[su.frameIdx]
	var arg rows.Slot
	if scalar {
		arg = row[colIdx]
	} else {
		arg = rows.Tuple(row)
	}
	return su.compiled.Call1(fr, arg)
}

func (su *stageUDF) returnType() types.Type {
	if su.compiled != nil {
		return su.compiled.ReturnType()
	}
	return types.Any
}

// paramStyle decides whether a UDF receives the bare value of a
// single-column row or the whole row (dict/tuple access compiles to
// direct column loads either way).
func paramStyle(spec *logical.UDFSpec, schema *types.Schema) (scalar bool, paramT types.Type) {
	if schema.Len() == 1 {
		if len(spec.Access.ByName) > 0 {
			if _, ok := schema.Lookup(spec.Access.ByName[0]); ok {
				return false, types.Row(schema)
			}
		}
		return true, schema.Col(0).Type
	}
	return false, types.Row(schema)
}

// compileUDF builds the three execution forms for one UDF and runs the
// static dataflow analysis over the typed normal-case form: its lints
// surface as result warnings, and when compiler optimizations are on
// its facts drive dead-branch pruning, constant folding and check
// elision in codegen (guarded where they rest on sampled values).
// colFacts seeds the analysis for the UDF's input columns; label names
// the operator in warnings and trace output.
func (eng *engine) compileUDF(spec *logical.UDFSpec, paramTypes []types.Type, scalar bool, colFacts []dataflow.ColFact, label string) (*stageUDF, error) {
	su := &stageUDF{spec: spec, scalarParam: scalar}
	bu, err := compileBoxedUDF(spec)
	if err != nil {
		return nil, err
	}
	su.boxed = bu
	globalTypes := map[string]types.Type{}
	for k, v := range spec.Globals {
		globalTypes[k] = typeOfBoxed(v)
	}
	infOpts := inference.Options{DisableNullPruning: eng.opts.Sample.DisableNullOpt}
	info, err := inference.TypeFunction(spec.Fn, paramTypes, globalTypes, infOpts)
	if err != nil {
		// Structural mismatch (e.g. wrong arity): the UDF can still run
		// boxed; the fast path is simply absent.
		return su, nil
	}
	flow := dataflow.Analyze(info, dataflow.Options{
		Columns:   colFacts,
		NullFacts: !eng.opts.Sample.DisableNullOpt,
		Globals:   spec.Globals,
	})
	su.flow = flow
	eng.reportLints(label, flow.Lints())
	cgOpts := eng.opts.Codegen
	if cgOpts.Specialize {
		cgOpts.Flow = flow
	}
	u, err := codegen.Compile(info, spec.Globals, cgOpts)
	if err != nil {
		eng.traceAnalyze(label, flow, nil)
		return su, nil
	}
	su.compiled = u
	eng.traceAnalyze(label, flow, u)
	return su, nil
}

// maxLintWarnings bounds how many lint diagnostics one UDF contributes
// to Result.Warnings.
const maxLintWarnings = 8

// reportLints surfaces UDF lints as user-facing result warnings.
func (eng *engine) reportLints(label string, lints []dataflow.Lint) {
	n := len(lints)
	if n > maxLintWarnings {
		n = maxLintWarnings
	}
	for _, l := range lints[:n] {
		eng.warns.add(warnLint, "%s: UDF %s", label, l)
	}
	if len(lints) > n {
		eng.warns.add(warnLint, "%s: %d more UDF lints suppressed", label, len(lints)-n)
	}
}

// traceAnalyze records the per-UDF analysis facts on an "analyze" span
// (child of the enclosing stage span). u is nil when codegen bailed.
func (eng *engine) traceAnalyze(label string, flow *dataflow.Result, u *codegen.UDF) {
	attrs := []trace.Attr{trace.Str("op", label)}
	if raise := flow.CanRaise(); len(raise) > 0 {
		names := make([]string, len(raise))
		for i, k := range raise {
			names[i] = k.String()
		}
		attrs = append(attrs, trace.Str("can_raise", strings.Join(names, ",")))
	}
	attrs = append(attrs, trace.Int("lints", int64(len(flow.Lints()))))
	if u != nil {
		attrs = append(attrs,
			trace.Int("branches_pruned", int64(u.Opt.BranchesPruned)),
			trace.Int("consts_folded", int64(u.Opt.ConstsFolded)),
			trace.Int("checks_elided", int64(u.Opt.ChecksElided)),
			trace.Int("raise_exits", int64(u.Opt.RaiseExits)),
			trace.Int("guards", int64(len(u.Guards))))
	}
	eng.tr.Child("analyze", 0, attrs...)
}

// mapOutputSchema derives the schema a MapOp produces.
func mapOutputSchema(su *stageUDF) *types.Schema {
	rt := su.returnType()
	switch rt.Kind() {
	case types.KindRow:
		return rt.Schema()
	case types.KindTuple:
		elts := rt.Elts()
		cols := make([]types.Column, len(elts))
		for i, t := range elts {
			cols[i] = types.Column{Name: fmt.Sprintf("_%d", i), Type: t}
		}
		return types.NewSchema(cols)
	default:
		name := "value"
		if su.spec.Access != nil && len(su.spec.Access.OutputColumns) == 1 {
			name = su.spec.Access.OutputColumns[0]
		}
		return types.NewSchema([]types.Column{{Name: name, Type: rt}})
	}
}

// prepareSource loads records / wires the input mat and derives the
// stage input schema.
func (eng *engine) prepareSource(cs *compiledStage, st *physical.Stage, input *mat) error {
	switch src := st.Source.(type) {
	case *logical.CSVSource:
		delim := src.Delim
		if delim == 0 {
			delim = ','
		}
		var records [][]byte
		var names []string
		if src.Data == nil && eng.opts.Streaming {
			// Chunked, pipelined ingest for file-backed sources: only the
			// sampling prefix is read here; the rest streams at execute
			// time, overlapping disk I/O with record splitting, parsing
			// and UDF execution.
			t0 := time.Now()
			ss, err := eng.openStreamSource(src.Path, delim, src.Header, csvio.ChunkCSV)
			if err != nil {
				return err
			}
			records = ss.prefixRecords()
			if len(records) == 0 {
				ss.close()
				return fmt.Errorf("core: empty CSV input %s", src.Path)
			}
			names = ss.headerNames
			cs.stream = ss
			cs.sampleTime = time.Since(t0)
		} else {
			var bytesRead int64
			var err error
			records, names, bytesRead, err = readCSVRecords(src, delim)
			if err != nil {
				return err
			}
			eng.res.Metrics.Ingest.BytesRead.Add(bytesRead)
			if len(records) == 0 {
				return fmt.Errorf("core: empty CSV input %s", src.Path)
			}
			cs.records = records
			cs.partRanges = splitRange(len(records), eng.partSize(len(records)))
		}
		if src.Columns != nil {
			names = src.Columns
		}
		t0 := time.Now()
		plan, err := sample.Sample(records, delim, names, eng.mkSampleCfg(src.NullValues))
		cs.sampleTime += time.Since(t0)
		if err != nil {
			if cs.stream != nil {
				cs.stream.close()
			}
			return err
		}
		if plan.AllExceptions {
			eng.warns.add(warnAdvice,
				"sample produced only exceptions; revise the pipeline or increase the sample size")
		}
		cs.nullValues = plan.Config.NullValues
		// Projection pushdown into the generated parser.
		proj := src.Projected()
		fields, schema, idxs := projectedFields(plan, proj)
		cs.parse = csvio.NewParseSpec(delim, plan.NumCols, fields, plan.Config.NullValues)
		cs.nFields = len(fields)
		cs.inSchema = schema
		cs.srcFacts = seedColFacts(schema, plan.Stats, idxs)
		cs.boxedInput = &mat{schema: plan.GeneralSchema}
	case *logical.TextSource:
		colName := src.Column
		if colName == "" {
			colName = "value"
		}
		cs.isText = true
		cs.nullValues = csvio.DefaultNullValues
		cs.inSchema = types.NewSchema([]types.Column{{Name: colName, Type: types.Str}})
		if src.Data == nil && eng.opts.Streaming {
			ss, err := eng.openStreamSource(src.Path, 0, false, csvio.ChunkText)
			if err != nil {
				return err
			}
			cs.stream = ss
		} else {
			lines, bytesRead, err := readTextLines(src)
			if err != nil {
				return err
			}
			eng.res.Metrics.Ingest.BytesRead.Add(bytesRead)
			cs.records = lines
			cs.partRanges = splitRange(len(lines), eng.partSize(len(lines)))
		}
	case *logical.ParallelizeSource:
		t0 := time.Now()
		slotRows := src.SlotRows
		if slotRows == nil && src.Rows != nil {
			// Legacy boxed form: unbox once up front.
			slotRows = make([]rows.Row, len(src.Rows))
			for i, r := range src.Rows {
				slotRows[i] = rows.RowFromValues(r)
			}
		}
		// The sampler only reads the prefix; box exactly those rows
		// instead of the whole input.
		need := eng.mkSampleCfg(nil).WithDefaults().Size
		if need > len(slotRows) {
			need = len(slotRows)
		}
		sampleRows := make([][]pyvalue.Value, need)
		for i := range sampleRows {
			sampleRows[i] = rows.RowToValues(slotRows[i])
		}
		plan, err := sample.SampleValues(sampleRows, src.Names, eng.mkSampleCfg(nil))
		cs.sampleTime = time.Since(t0)
		if err != nil {
			return err
		}
		cs.inputSlots = slotRows
		cs.nullValues = csvio.DefaultNullValues
		cs.inSchema = plan.Schema
		cs.srcFacts = seedColFacts(plan.Schema, plan.Stats, nil)
		cs.partRanges = splitRange(len(slotRows), eng.partSize(len(slotRows)))
	case nil:
		if input == nil {
			return fmt.Errorf("core: stage without source or input")
		}
		cs.boxedInput = input
		cs.inSchema = input.schema
		cs.nullValues = input.nullValues
		cs.partRanges = make([][2]int, len(input.parts))
		for i, p := range input.parts {
			cs.partRanges[i] = [2]int{0, len(p)}
		}
	default:
		return fmt.Errorf("core: unsupported source %T", st.Source)
	}
	if cs.nullValues == nil {
		cs.nullValues = csvio.DefaultNullValues
	}
	return nil
}

// readCSVRecords materializes a CSV source's records: inline data, or
// the paper's ','.join(paths) multi-file spelling. Each file carries its
// own header; the first one names the columns (unless configured), the
// rest are dropped. Shared by the cold path and cached-plan rebinding.
func readCSVRecords(src *logical.CSVSource, delim byte) (records [][]byte, names []string, bytesRead int64, err error) {
	addData := func(data []byte) {
		recs := csvio.SplitRecords(data)
		if src.Header && len(recs) > 0 {
			if names == nil && src.Columns == nil {
				names = csvio.SplitCells(recs[0], delim, nil)
			}
			recs = recs[1:]
		}
		records = append(records, recs...)
	}
	if src.Data != nil {
		addData(src.Data)
		return records, names, 0, nil
	}
	for _, path := range strings.Split(src.Path, ",") {
		data, rerr := os.ReadFile(strings.TrimSpace(path))
		if rerr != nil {
			return nil, nil, bytesRead, fmt.Errorf("core: reading %s: %w", path, rerr)
		}
		bytesRead += int64(len(data))
		addData(data)
	}
	return records, names, bytesRead, nil
}

// readTextLines materializes a text source's lines (inline data or one
// file). Shared by the cold path and cached-plan rebinding.
func readTextLines(src *logical.TextSource) ([][]byte, int64, error) {
	data := src.Data
	var n int64
	if data == nil {
		var err error
		data, err = os.ReadFile(src.Path)
		if err != nil {
			return nil, 0, fmt.Errorf("core: reading %s: %w", src.Path, err)
		}
		n = int64(len(data))
	}
	return splitPlainLines(data), n, nil
}

func (eng *engine) mkSampleCfg(nullValues []string) sample.Config {
	cfg := eng.opts.Sample
	if nullValues != nil {
		cfg.NullValues = nullValues
	}
	return cfg
}

// typeColFacts seeds type-only dataflow facts for a schema (no value
// statistics, hence no guard obligations).
func typeColFacts(schema *types.Schema) []dataflow.ColFact {
	facts := make([]dataflow.ColFact, schema.Len())
	for i := range facts {
		facts[i].Type = schema.Col(i).Type
	}
	return facts
}

// seedColFacts derives the dataflow seeds for a stage input schema from
// the sampled per-column statistics. idxs maps schema positions to
// stats positions (nil for identity). Value-statistic facts describe
// the sample only; any specialization resting on them is guarded.
func seedColFacts(schema *types.Schema, stats []sample.ColumnStats, idxs []int) []dataflow.ColFact {
	facts := typeColFacts(schema)
	for i := range facts {
		si := i
		if idxs != nil {
			if i >= len(idxs) {
				continue
			}
			si = idxs[i]
		}
		if si < 0 || si >= len(stats) {
			continue
		}
		st := &stats[si]
		if c, ok := st.ConstValue(); ok {
			facts[i].Const = c
		}
		if lo, hi, ok := st.IntRange(); ok {
			facts[i].Lo, facts[i].Hi, facts[i].HasRange = lo, hi, true
		}
	}
	return facts
}

// projectedFields maps the pushed projection to parser fields, the
// stage input schema (source column order), and the source column index
// of each projected field.
func projectedFields(plan *sample.CasePlan, proj []string) ([]csvio.FieldSpec, *types.Schema, []int) {
	full := plan.Schema
	var idxs []int
	if proj == nil {
		idxs = make([]int, full.Len())
		for i := range idxs {
			idxs[i] = i
		}
	} else {
		seen := map[int]bool{}
		for _, name := range proj {
			if i, ok := full.Lookup(name); ok && !seen[i] {
				idxs = append(idxs, i)
				seen[i] = true
			}
		}
		sort.Ints(idxs)
		if len(idxs) == 0 {
			// Degenerate projection (e.g. a count-only pipeline): keep
			// the first column so rows still flow.
			idxs = []int{0}
		}
	}
	fields := make([]csvio.FieldSpec, len(idxs))
	cols := make([]types.Column, len(idxs))
	for i, idx := range idxs {
		fields[i] = csvio.FieldSpec{Col: idx, Type: full.Col(idx).Type}
		cols[i] = full.Col(idx)
	}
	return fields, types.NewSchema(cols), idxs
}

func (eng *engine) partSize(n int) int {
	per := n / (4 * eng.opts.Executors)
	if per < 1024 {
		per = 1024
	}
	if per > eng.opts.PartitionRows {
		per = eng.opts.PartitionRows
	}
	return per
}

func splitRange(n, size int) [][2]int {
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, [2]int{start, end})
	}
	return out
}

// splitPlainLines splits text content on newlines (no quoting).
func splitPlainLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			end := i
			if end > start && data[end-1] == '\r' {
				end--
			}
			out = append(out, data[start:end])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
