package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/interp"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/trace"
	"github.com/gotuplex/tuplex/internal/types"
)

// pathMode selects which exception path executes a boxed row.
type pathMode uint8

const (
	// pathGeneral is the compiled general-case path (closure-compiled
	// boxed UDFs, most general column types).
	pathGeneral pathMode = iota
	// pathFallback is the tree-walking interpreter (always available).
	pathFallback
)

// errDropped signals that a row was legitimately removed (filter false,
// ignore() handler, inner-join miss).
var errDropped = errors.New("row dropped")

// boxedUDF is one UDF's boxed execution forms, with a private
// interpreter instance (the boxed paths run serially, mirroring the
// prototype's GIL acquisition for interpreter work).
type boxedUDF struct {
	spec     *logical.UDFSpec
	ip       *interp.Interp
	compiled *interp.Compiled
	// dictParam selects dict-style (vs tuple-style) boxed rows for
	// whole-row UDFs, from the UDF's observed access pattern.
	dictParam bool
}

// compileBoxedUDF prepares a UDF for the exception paths. It is a free
// function (not an engine method) because cached-plan clones rebuild
// their boxed programs outside any live run.
func compileBoxedUDF(spec *logical.UDFSpec) (*boxedUDF, error) {
	u := &boxedUDF{spec: spec, ip: interp.New(spec.Globals)}
	u.dictParam = len(spec.Access.ByName) > 0 || len(spec.Access.ByIndex) == 0
	if compiled, err := u.ip.Compile(spec.Fn); err == nil {
		u.compiled = compiled
	}
	return u, nil
}

// call runs the UDF in the given mode.
func (u *boxedUDF) call(mode pathMode, args []pyvalue.Value) (pyvalue.Value, error) {
	if mode == pathGeneral {
		if u.compiled == nil {
			return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "UDF not compilable on general path")
		}
		return u.compiled.Call(u.ip, args)
	}
	return u.ip.Call(u.spec.Fn, args)
}

// bOpKind enumerates boxed-path operator kinds.
type bOpKind uint8

const (
	bOpNoop bOpKind = iota
	bOpMap
	bOpFilter
	bOpWithColumn
	bOpMapColumn
	bOpSelect
	bOpJoin
)

// boxedOp is one stage operator in boxed form.
type boxedOp struct {
	kind      bOpKind
	udf       *boxedUDF
	handlers  *opHandlers
	inSchema  *types.Schema
	outSchema *types.Schema
	col       string
	colIdx    int
	scalar    bool
	sel       []int
	join      *buildTable
	keyIdx    int
	leftOuter bool
	// accessCols caches the row positions of the UDF's accessed columns
	// (lazily resolved; -1 for columns missing from the schema).
	accessCols []int
	// stats counts rows entering this op on the exception paths (nil
	// below trace.LevelRows); the pointer is shared across
	// cloneBoxedProgram copies, hence atomics.
	stats *boxedOpStats
}

// boxedOpStats is the routing ledger's exception-path side for one
// operator. Atomics are fine here: exception rows are rare by
// construction, so contention never touches the fast path.
type boxedOpStats struct {
	generalIn, fallbackIn atomic.Int64
}

// applyHandlers wraps a UDF invocation with the operator's ignore and
// resolve handlers (§3: resolvers run on the exception paths only; a
// compilable resolver runs on the general path, every resolver runs on
// the fallback path).
func applyHandlers(h *opHandlers, mode pathMode, call func() (pyvalue.Value, error), args []pyvalue.Value) (pyvalue.Value, error, bool) {
	v, err := call()
	if err == nil {
		return v, nil, false
	}
	kind := pyvalue.KindOf(err)
	if h != nil {
		for _, ig := range h.ignores {
			if ig == kind {
				return nil, errDropped, false
			}
		}
		for _, r := range h.resolvers {
			if r.exc != kind {
				continue
			}
			rv, rerr := r.udf.call(mode, args)
			if rerr == nil {
				return rv, nil, true
			}
			// The resolver itself failed: surface its error (a general
			// path failure will retry everything on the fallback path).
			return nil, rerr, false
		}
	}
	return nil, err, false
}

// cloneBoxedProgram builds an independent copy of the boxed op list with
// fresh interpreter instances, so the general-case path can run in
// parallel across executors (§4.3's batched slow path; only the
// interpreter fallback serializes, modeling the GIL).
func (cs *compiledStage) cloneBoxedProgram() []*boxedOp {
	out := make([]*boxedOp, len(cs.boxed))
	cloneUDF := func(u *boxedUDF) *boxedUDF {
		if u == nil {
			return nil
		}
		nu, err := compileBoxedUDF(u.spec)
		if err != nil {
			return u
		}
		return nu
	}
	for i, op := range cs.boxed {
		cp := *op
		cp.udf = cloneUDF(op.udf)
		if op.handlers != nil {
			h := &opHandlers{ignores: op.handlers.ignores}
			for _, r := range op.handlers.resolvers {
				h.resolvers = append(h.resolvers, resolverSpec{exc: r.exc, udf: cloneUDF(r.udf)})
			}
			cp.handlers = h
		}
		out[i] = &cp
	}
	return out
}

// runBoxedRow pushes one boxed row through the given boxed program and
// returns the output rows (possibly several after joins, or none after
// filters/inner-join misses). resolved reports whether a user resolver
// fired.
func (cs *compiledStage) runBoxedRow(prog []*boxedOp, mode pathMode, vals []pyvalue.Value) (out [][]pyvalue.Value, resolved bool, err error) {
	cur := [][]pyvalue.Value{vals}
	for _, op := range prog {
		if len(cur) == 0 {
			return nil, resolved, errDropped
		}
		if op.stats != nil {
			if mode == pathGeneral {
				op.stats.generalIn.Add(int64(len(cur)))
			} else {
				op.stats.fallbackIn.Add(int64(len(cur)))
			}
		}
		var next [][]pyvalue.Value
		for _, row := range cur {
			produced, res, err := op.apply(mode, row)
			if err != nil {
				if errors.Is(err, errDropped) {
					continue
				}
				return nil, resolved, err
			}
			resolved = resolved || res
			next = append(next, produced...)
		}
		cur = next
	}
	if len(cur) == 0 {
		return nil, resolved, errDropped
	}
	return cur, resolved, nil
}

// udfArg builds the boxed argument for a whole-row or scalar UDF.
func (op *boxedOp) udfArg(row []pyvalue.Value) pyvalue.Value {
	if op.scalar {
		idx := op.colIdx
		if op.kind != bOpMapColumn {
			idx = 0
		}
		if idx >= len(row) {
			return pyvalue.None{}
		}
		return row[idx]
	}
	if op.udf != nil && op.udf.dictParam {
		names := op.inSchema.Names()
		d := pyvalue.NewDict()
		// Build only the columns the UDF reads (the access analysis is
		// sound: whole-row escapes force the full dict) — the general
		// path's analog of the planner's projection pushdown.
		access := op.udf.spec.Access
		if !access.WholeRow && len(access.ByName) > 0 {
			if op.accessCols == nil {
				op.accessCols = make([]int, len(access.ByName))
				for j, name := range access.ByName {
					op.accessCols[j] = -1
					for i, n := range names {
						if n == name {
							op.accessCols[j] = i
							break
						}
					}
				}
			}
			for j, idx := range op.accessCols {
				if idx >= 0 && idx < len(row) {
					d.Set(access.ByName[j], row[idx])
				}
			}
			return d
		}
		for i, v := range row {
			if i < len(names) {
				d.Set(names[i], v)
			}
		}
		return d
	}
	return &pyvalue.Tuple{Items: row}
}

// apply runs one boxed operator on one row.
func (op *boxedOp) apply(mode pathMode, row []pyvalue.Value) ([][]pyvalue.Value, bool, error) {
	switch op.kind {
	case bOpNoop:
		return [][]pyvalue.Value{row}, false, nil
	case bOpMap:
		arg := op.udfArg(row)
		v, err, res := applyHandlers(op.handlers, mode, func() (pyvalue.Value, error) {
			return op.udf.call(mode, []pyvalue.Value{arg})
		}, []pyvalue.Value{arg})
		if err != nil {
			return nil, res, err
		}
		out, err := mapResultRow(v, op.outSchema)
		if err != nil {
			return nil, res, err
		}
		return [][]pyvalue.Value{out}, res, nil
	case bOpFilter:
		arg := op.udfArg(row)
		v, err, res := applyHandlers(op.handlers, mode, func() (pyvalue.Value, error) {
			return op.udf.call(mode, []pyvalue.Value{arg})
		}, []pyvalue.Value{arg})
		if err != nil {
			return nil, res, err
		}
		if !pyvalue.Truth(v) {
			return nil, res, errDropped
		}
		return [][]pyvalue.Value{row}, res, nil
	case bOpWithColumn:
		arg := op.udfArg(row)
		v, err, res := applyHandlers(op.handlers, mode, func() (pyvalue.Value, error) {
			return op.udf.call(mode, []pyvalue.Value{arg})
		}, []pyvalue.Value{arg})
		if err != nil {
			return nil, res, err
		}
		out := append(append([]pyvalue.Value{}, row...), nil)
		if op.colIdx >= 0 && op.colIdx < len(row) {
			out = out[:len(row)]
			out[op.colIdx] = v
		} else {
			out[len(row)] = v
		}
		return [][]pyvalue.Value{out}, res, nil
	case bOpMapColumn:
		if op.colIdx >= len(row) {
			return nil, false, pyvalue.Raise(pyvalue.ExcIndexError, "row too short for column %q", op.col)
		}
		arg := row[op.colIdx]
		v, err, res := applyHandlers(op.handlers, mode, func() (pyvalue.Value, error) {
			return op.udf.call(mode, []pyvalue.Value{arg})
		}, []pyvalue.Value{arg})
		if err != nil {
			return nil, res, err
		}
		out := append([]pyvalue.Value{}, row...)
		out[op.colIdx] = v
		return [][]pyvalue.Value{out}, res, nil
	case bOpSelect:
		out := make([]pyvalue.Value, len(op.sel))
		for i, idx := range op.sel {
			if idx >= len(row) {
				return nil, false, pyvalue.Raise(pyvalue.ExcIndexError, "row too short for select")
			}
			out[i] = row[idx]
		}
		return [][]pyvalue.Value{out}, false, nil
	case bOpJoin:
		return op.applyJoin(row)
	default:
		return nil, false, fmt.Errorf("core: unknown boxed op %d", op.kind)
	}
}

// applyJoin probes both the sharded normal table and the general build
// map (§4.5's pairwise NC/EC coverage for exception-side probe rows).
func (op *boxedOp) applyJoin(row []pyvalue.Value) ([][]pyvalue.Value, bool, error) {
	if op.keyIdx >= len(row) {
		return nil, false, pyvalue.Raise(pyvalue.ExcKeyError, "row too short for join key")
	}
	bt := op.join
	var out [][]pyvalue.Value
	if key, ok := rows.AppendJoinKeyValue(nil, row[op.keyIdx]); ok {
		for _, ref := range bt.lookup(rows.Hash64(key), key) {
			joined := append(append([]pyvalue.Value{}, row...), bt.boxRow(ref)...)
			out = append(out, joined)
		}
		for _, m := range bt.general[string(key)] {
			joined := append(append([]pyvalue.Value{}, row...), m...)
			out = append(out, joined)
		}
	}
	if len(out) == 0 {
		if !op.leftOuter {
			return nil, false, errDropped
		}
		joined := append([]pyvalue.Value{}, row...)
		for range bt.addedCols {
			joined = append(joined, pyvalue.None{})
		}
		out = append(out, joined)
	}
	return out, false, nil
}

// mapResultRow converts a map UDF's boxed result into a positional row
// per the output schema.
func mapResultRow(v pyvalue.Value, outSchema *types.Schema) ([]pyvalue.Value, error) {
	switch v := v.(type) {
	case *pyvalue.Dict:
		out := make([]pyvalue.Value, outSchema.Len())
		for i, name := range outSchema.Names() {
			val, ok := v.Get(name)
			if !ok {
				return nil, pyvalue.Raise(pyvalue.ExcKeyError, "map result missing column %q", name)
			}
			out[i] = val
		}
		return out, nil
	case *pyvalue.Tuple:
		if v == nil || len(v.Items) != outSchema.Len() {
			return nil, pyvalue.Raise(pyvalue.ExcValueError, "map result arity mismatch")
		}
		return v.Items, nil
	default:
		if outSchema.Len() != 1 {
			return nil, pyvalue.Raise(pyvalue.ExcValueError, "map result arity mismatch")
		}
		return []pyvalue.Value{v}, nil
	}
}

// resolveExceptions drains the stage's exception pool through the
// general path, the fallback path and user resolvers (§4.3, Figure 2),
// updating the materialization in place. It runs serially — exception
// rows are rare by construction, and the fallback path models the
// prototype's GIL.
func (eng *engine) resolveExceptions(cs *compiledStage, out *mat) error {
	pool := out.exceptional
	out.exceptional = nil
	// Input-materialization exceptions from the previous stage also run
	// through this stage's boxed program. Source stages (materialized
	// records or streamed chunks) have no previous stage.
	if cs.boxedInput != nil && cs.records == nil && cs.stream == nil && cs.inputSlots == nil {
		n := len(pool)
		pool = append(pool, cs.boxedInput.exceptional...)
		// Carried-over rows raised in a previous stage; their op indexes
		// don't map to this stage's ledger, so they attribute to the
		// source entry.
		for i := n; i < len(pool); i++ {
			pool[i].op = 0
		}
	}
	cs.poolSize = len(pool)
	// rt is this stage's routing ledger (nil below LevelRows); outcome
	// increments below mirror the Metrics counter sites exactly so the
	// ledger totals reconcile with the run counters.
	rt := cs.routing
	addSample := func(ex *exRow, vals []pyvalue.Value, outcome string) {
		// ec == 0 marks a row carried over from a previous stage's
		// exception path, not a new exception — don't sample it.
		if !cs.traceSamples || ex.ec == 0 || len(cs.samples) >= trace.MaxExcSamples {
			return
		}
		in := renderInput(*ex, vals)
		if len(in) > trace.MaxSampleInput {
			in = in[:trace.MaxSampleInput]
		}
		cs.samples = append(cs.samples, trace.ExcSample{
			Op:      cs.opNames[ex.op],
			Exc:     ex.ec.String(),
			Input:   in,
			Outcome: outcome,
		})
	}
	// Unique terminal: merge task sets (shard-parallel) before
	// deduplicating exceptions against them.
	var uniqSeen *uniqIndex
	if cs.terminal == physical.TerminalUnique {
		uniqSeen = eng.mergeUnique(cs, out)
	}
	c := &eng.res.Metrics.Counters
	joinScale := uint64(1)
	for _, op := range cs.boxed {
		if op.kind == bOpJoin {
			joinScale *= 256
		}
	}
	var boxedAgg pyvalue.Value
	boxedAggRows := 0

	// Generalize raw rows once.
	genVals := func(ex *exRow) []pyvalue.Value {
		if ex.vals != nil {
			return ex.vals
		}
		if cs.isText {
			return []pyvalue.Value{pyvalue.Str(string(ex.raw))}
		}
		// Parse generally, then project to the stage's input columns so
		// positions line up with the (possibly pushdown-narrowed)
		// schema. Cells missing from short rows become None — the
		// interpreter view of dirty data.
		full := csvio.GeneralParse(ex.raw, cs.parse.Delim, cs.nullValues)
		vals := make([]pyvalue.Value, len(cs.parse.Fields))
		for i, f := range cs.parse.Fields {
			if f.Col < len(full) {
				vals[i] = full[f.Col]
			} else {
				vals[i] = pyvalue.None{}
			}
		}
		return vals
	}

	// runResolve wraps runBoxedRow with per-row resolve-latency
	// recording; with telemetry off it is the bare call.
	runResolve := cs.runBoxedRow
	if eng.mon != nil {
		runResolve = func(prog []*boxedOp, mode pathMode, vals []pyvalue.Value) ([][]pyvalue.Value, bool, error) {
			t := time.Now()
			outRows, resolved, err := cs.runBoxedRow(prog, mode, vals)
			eng.mon.RecordResolve(time.Since(t))
			return outRows, resolved, err
		}
	}

	// Phase 1 — the compiled general path, fanned across executors for
	// large pools.
	type exOutcome struct {
		vals     []pyvalue.Value
		outRows  [][]pyvalue.Value
		resolved bool
		err      error
		mode     pathMode
	}
	outcomes := make([]exOutcome, len(pool))
	workers := eng.opts.Executors
	// Cancellation is observed every 256 rows; the parallel fan-out
	// finishes its wg.Wait before bailing so no worker is abandoned
	// mid-chunk with half-written outcomes.
	var ctxStop atomic.Bool
	if workers > 1 && len(pool) >= 64 {
		var wg sync.WaitGroup
		chunk := (len(pool) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(pool) {
				hi = len(pool)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				prog := cs.cloneBoxedProgram()
				for i := lo; i < hi; i++ {
					if (i-lo)&0xff == 0 && (ctxStop.Load() || eng.canceled() != nil) {
						ctxStop.Store(true)
						return
					}
					vals := genVals(&pool[i])
					outRows, resolved, err := runResolve(prog, pathGeneral, vals)
					outcomes[i] = exOutcome{vals: vals, outRows: outRows, resolved: resolved, err: err, mode: pathGeneral}
				}
			}(lo, hi)
		}
		wg.Wait()
		if ctxStop.Load() {
			if err := eng.canceled(); err != nil {
				return err
			}
		}
	} else {
		for i := range pool {
			if i&0xff == 0 {
				if err := eng.canceled(); err != nil {
					return err
				}
			}
			vals := genVals(&pool[i])
			outRows, resolved, err := runResolve(cs.boxed, pathGeneral, vals)
			outcomes[i] = exOutcome{vals: vals, outRows: outRows, resolved: resolved, err: err, mode: pathGeneral}
		}
	}

	// Phase 2 — retries on the interpreter fallback run serially (the
	// GIL analog), then terminal application in input order.
	for i := range pool {
		if i&0xff == 0 {
			if err := eng.canceled(); err != nil {
				return err
			}
		}
		ex := pool[i]
		oc := &outcomes[i]
		vals := oc.vals
		mode := oc.mode
		outRows, resolved, err := oc.outRows, oc.resolved, oc.err
		if err != nil && !errors.Is(err, errDropped) {
			mode = pathFallback
			outRows, resolved, err = runResolve(cs.boxed, mode, vals)
		}
		if errors.Is(err, errDropped) {
			c.IgnoredRows.Add(1)
			if rt != nil {
				rt[ex.op].Ignored++
			}
			addSample(&ex, vals, "ignored")
			continue
		}
		if err != nil {
			c.FailedRows.Add(1)
			if rt != nil {
				rt[ex.op].Failed++
			}
			addSample(&ex, vals, "failed")
			eng.res.Failed = append(eng.res.Failed, FailedRow{
				Exc:   pyvalue.KindOf(err),
				Msg:   err.Error(),
				Input: renderInput(ex, vals),
			})
			continue
		}
		switch {
		case resolved:
			c.ResolverResolved.Add(1)
			if rt != nil {
				rt[ex.op].ResolverResolved++
			}
			addSample(&ex, vals, "resolver")
		case mode == pathGeneral:
			c.GeneralResolved.Add(1)
			if rt != nil {
				rt[ex.op].GeneralResolved++
			}
			addSample(&ex, vals, "general")
		default:
			c.FallbackResolved.Add(1)
			if rt != nil {
				rt[ex.op].FallbackResolved++
			}
			addSample(&ex, vals, "fallback")
		}
		// Terminal application.
		switch cs.terminal {
		case physical.TerminalAggregate:
			for _, r := range outRows {
				acc := boxedAgg
				if boxedAggRows == 0 {
					acc = cs.aggInit
				}
				arg := aggRowArg(cs, r)
				v, aerr := cs.aggUDF.boxed.call(pathFallback, []pyvalue.Value{acc, arg})
				if aerr != nil {
					c.FailedRows.Add(1)
					if rt != nil {
						rt[cs.termRouteIdx].Failed++
					}
					eng.res.Failed = append(eng.res.Failed, FailedRow{
						Exc: pyvalue.KindOf(aerr), Msg: aerr.Error(), Input: renderInput(ex, vals)})
					continue
				}
				boxedAgg = v
				boxedAggRows++
			}
		case physical.TerminalUnique:
			for _, r := range outRows {
				if uniqSeen.addRow(rows.RowFromValues(r)) {
					out.exceptional = append(out.exceptional, exRow{part: ex.part, key: ex.key * joinScale, vals: r})
				}
			}
		default:
			for i, r := range outRows {
				sub := uint64(i)
				if sub > joinScale-1 {
					sub = joinScale - 1
				}
				out.exceptional = append(out.exceptional, exRow{part: ex.part, key: ex.key*joinScale + sub, vals: r})
			}
		}
	}

	// Finalize aggregates: combine task partials plus the boxed partial.
	if cs.terminal == physical.TerminalAggregate {
		v, err := eng.combinePartials(cs, boxedAgg, boxedAggRows)
		if err != nil {
			return err
		}
		out.aggValue = v
		out.isAgg = true
		out.parts = [][]rows.Row{nil}
		out.keys = [][]uint64{nil}
	}
	return nil
}

// aggRowArg builds the row argument for the boxed aggregate UDF.
func aggRowArg(cs *compiledStage, r []pyvalue.Value) pyvalue.Value {
	if cs.outSchema.Len() == 1 && len(cs.aggUDF.spec.Access.ByName) == 0 {
		return r[0]
	}
	if cs.aggUDF.boxed.dictParam {
		d := pyvalue.NewDict()
		for i, name := range cs.outSchema.Names() {
			if i < len(r) {
				d.Set(name, r[i])
			}
		}
		return d
	}
	return &pyvalue.Tuple{Items: r}
}

// combinePartials folds per-task accumulators (and the boxed exception
// partial) with the combiner UDF (§4.6 "merging of partial aggregates").
// With multiple executors and enough partials, the fold runs as a
// parallel binary tree: each round pairs adjacent partials and combines
// the pairs concurrently (each pair on a private interpreter clone), so
// streamed runs with hundreds of chunk partials reduce in O(log n)
// rounds instead of a serial chain. The tree keeps the left-to-right
// pairing, so for the associative combiners §4.6 requires the result
// matches the serial fold.
func (eng *engine) combinePartials(cs *compiledStage, boxedAgg pyvalue.Value, boxedRows int) (pyvalue.Value, error) {
	var partials []pyvalue.Value
	for _, ts := range cs.tasks {
		if ts != nil && ts.hasAgg {
			partials = append(partials, ts.aggSlot.Value())
		}
	}
	if boxedRows > 0 {
		partials = append(partials, boxedAgg)
	}
	if len(partials) == 0 {
		return cs.aggInit, nil
	}
	if len(partials) > 1 && cs.combUDF == nil {
		return nil, fmt.Errorf("core: aggregate over multiple partitions requires a combiner UDF")
	}
	if eng.opts.Executors > 1 && len(partials) >= 4 {
		for len(partials) > 1 {
			pairs := len(partials) / 2
			next := make([]pyvalue.Value, (len(partials)+1)/2)
			errs := make([]error, pairs)
			eng.parallelFor(pairs, func(i int) {
				cu, err := compileBoxedUDF(cs.combUDF.spec)
				if err != nil {
					errs[i] = err
					return
				}
				v, err := cu.call(pathFallback, []pyvalue.Value{partials[2*i], partials[2*i+1]})
				if err != nil {
					errs[i] = fmt.Errorf("core: combiner failed: %w", err)
					return
				}
				next[i] = v
			})
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			if len(partials)%2 == 1 {
				next[pairs] = partials[len(partials)-1]
			}
			partials = next
		}
		return partials[0], nil
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		v, err := cs.combUDF.call(pathFallback, []pyvalue.Value{acc, p})
		if err != nil {
			return nil, fmt.Errorf("core: combiner failed: %w", err)
		}
		acc = v
	}
	return acc, nil
}

func renderInput(ex exRow, vals []pyvalue.Value) string {
	if ex.raw != nil {
		return string(ex.raw)
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = pyvalue.Repr(v)
	}
	return "(" + joinStrings(parts, ", ") + ")"
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
