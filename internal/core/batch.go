package core

// Columnar batch execution (the normal-case data plane over column
// vectors). CSV source stages compile the maximal prefix of
// map/filter/withColumn/mapColumn/select operators into batch kernels:
// the generated parser appends cells directly onto typed column vectors
// (internal/colvec), each kernel loops over the batch's selection vector
// calling the compiled scalar UDF with only the columns it reads, and
// filters shrink the selection instead of copying columns. Operators the
// kernels cannot batch (joins, uncompiled UDF suffixes) and the
// unique/aggregate terminals run through the composed row-at-a-time
// chain via a batch→row bridge, and exception rows bounce to the pooled
// boxed path exactly like the row path — output bytes and row accounting
// are identical by construction (enforced by the columnar differential
// suite).

import (
	"github.com/gotuplex/tuplex/internal/colvec"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// batchMaxRows bounds one batch so vector memory stays chunk-sized even
// for materialized partitions.
const batchMaxRows = 4096

// bkKind enumerates batch kernel kinds.
type bkKind uint8

const (
	bkMap bkKind = iota
	bkFilter
	bkWithColumn
	bkMapColumn
	bkSelect
)

// batchKernel is one operator compiled for batch execution.
type batchKernel struct {
	kind bkKind
	su   *stageUDF
	ridx int32
	// scalar marks UDFs receiving a bare column value; colIdx is that
	// column (also the mapColumn target and the withColumn replace index,
	// -1 = append).
	scalar bool
	colIdx int
	// inCols is the schema width entering the op; argCols lists the
	// columns a whole-row UDF actually reads (accessed columns plus guard
	// columns; nil = fill every column).
	inCols  int
	argCols []int
	// outTypes types the derived output vectors (map: one per output
	// column; withColumn/mapColumn: one).
	outTypes []types.Type
	// perm is the select permutation.
	perm []int
}

// batchProg is a stage's batch plan.
type batchProg struct {
	kernels []*batchKernel
	// suffix is the composed row-at-a-time chain for the operators after
	// the kernel prefix plus the terminal; nil when the terminal itself is
	// batch-executable (CSV sink / materialize) and every operator
	// compiled to a kernel.
	suffix nstep
}

// batchState is the per-task reusable batch memory: parse target
// vectors, per-kernel derived vectors, selection double-buffer, order
// keys and raw records of the current batch.
type batchState struct {
	src     []*colvec.Vec
	derived [][]*colvec.Vec
	cols    []*colvec.Vec
	cols2   []*colvec.Vec
	sel     []int32
	sel2    []int32
	keys    []uint64
	raws    [][]byte
	argBuf  []rows.Slot
}

func newBatchState(cs *compiledStage) *batchState {
	bst := &batchState{src: cs.parse.NewVecsFor()}
	bst.derived = make([][]*colvec.Vec, len(cs.batch.kernels))
	for ki, k := range cs.batch.kernels {
		if len(k.outTypes) == 0 {
			continue
		}
		vecs := make([]*colvec.Vec, len(k.outTypes))
		for j, t := range k.outTypes {
			vecs[j] = colvec.NewVec(t)
		}
		bst.derived[ki] = vecs
	}
	bst.argBuf = make([]rows.Slot, cs.maxCols)
	return bst
}

// runRecordsColumnar is runRecords on the batch plan: identical order
// keys, pool entries, counters and routing ledger arithmetic, with the
// per-row parse/step/render work replaced by per-batch vector loops.
func (cs *compiledStage) runRecordsColumnar(ts *task, p int, recs [][]byte, baseKey uint64, copyRaw bool) error {
	if ts.bst == nil {
		if got, ok := cs.bstPool.Get().(*batchState); ok {
			ts.bst = got
		} else {
			ts.bst = newBatchState(cs)
		}
	}
	bst := ts.bst
	bp := cs.batch
	var input, rejects, normalExc int64

	for start := 0; start < len(recs); start += batchMaxRows {
		end := start + batchMaxRows
		if end > len(recs) {
			end = len(recs)
		}
		sub := recs[start:end]
		input += int64(len(sub))

		// Parse straight into the source vectors; rejected records pool
		// with their raw bytes, exactly like the row path.
		for _, v := range bst.src {
			v.Reset()
		}
		bst.keys = bst.keys[:0]
		bst.raws = bst.raws[:0]
		for i, rec := range sub {
			key := baseKey + uint64(start+i)
			if ec := cs.parse.ParseLineVecs(rec, bst.src); ec != 0 {
				rejects++
				ts.pool = append(ts.pool, exRow{part: p, key: key, raw: rec, ec: ec})
				continue
			}
			bst.keys = append(bst.keys, key)
			bst.raws = append(bst.raws, rec)
		}
		n := len(bst.keys)
		bst.sel = bst.sel[:0]
		for i := 0; i < n; i++ {
			bst.sel = append(bst.sel, int32(i))
		}
		bst.cols = append(bst.cols[:0], bst.src...)

		// Kernel prefix: per-batch ledger arithmetic replaces the row
		// path's per-row routeWrap counters.
		for ki, k := range bp.kernels {
			if ts.route != nil {
				ts.route[k.ridx] += int64(len(bst.sel))
			}
			normalExc += k.run(ts, bst, n, p, bst.derived[ki])
		}

		// Terminal: batch render/gather, or bridge into the composed
		// row-at-a-time suffix (joins, uncompiled ops, unique/aggregate).
		if bp.suffix == nil {
			if ts.route != nil {
				ts.route[cs.termRouteIdx] += int64(len(bst.sel))
			}
			if cs.sinkCSV {
				cs.renderBatchCSV(ts, bst)
			} else {
				cs.gatherBatch(ts, bst, n)
			}
		} else {
			for _, r := range bst.sel {
				row := ts.rowBuf[:len(bst.cols)]
				for c, v := range bst.cols {
					row[c] = v.Slot(int(r))
				}
				if ec := bp.suffix(ts, bst.keys[r], row); ec != 0 {
					normalExc++
					ts.pool = append(ts.pool, exRow{part: p, key: bst.keys[r], raw: bst.raws[r], ec: ec, op: ts.excOp})
					if ts.routeExc != nil {
						ts.routeExc[ts.excOp]++
					}
				}
			}
		}
	}

	normal := input - rejects - normalExc
	c := &ts.eng.res.Metrics.Counters
	c.InputRows.Add(input)
	c.ClassifierRejects.Add(rejects)
	c.NormalPathExceptions.Add(normalExc)
	c.NormalRows.Add(normal)
	ts.inRows += input
	if ts.route != nil {
		ts.route[0] += input
		ts.routeExc[0] += rejects
	}
	ts.flushProbeCounters()
	if copyRaw {
		for i := range ts.pool {
			if ts.pool[i].raw != nil {
				ts.pool[i].raw = append([]byte(nil), ts.pool[i].raw...)
			}
		}
	}
	// Return the batch memory to the stage pool: nothing in it escapes
	// the call (strings are sealed copies, pooled raw records point at
	// stable input memory or were detached above, output rows have fresh
	// backing).
	ts.bst = nil
	cs.bstPool.Put(bst)
	return nil
}

// run executes one kernel over the batch's live rows, updating
// bst.cols/bst.sel in place and pooling per-row exceptions. Returns the
// exception count.
//tuplex:kernel
func (k *batchKernel) run(ts *task, bst *batchState, n, part int, derived []*colvec.Vec) int64 {
	if k.kind == bkSelect {
		out := bst.cols2[:0]
		for _, i := range k.perm {
			out = append(out, bst.cols[i])
		}
		bst.cols, bst.cols2 = out, bst.cols
		return 0
	}

	var excs int64
	for _, v := range derived {
		v.Reset()
		v.Grow(n)
	}
	newSel := bst.sel2[:0]
	for _, r := range bst.sel {
		arg := k.gatherArg(bst, int(r))
		v, ec := callKernelUDF(ts, k.su, arg)
		if ec != 0 {
			ts.pool = append(ts.pool, exRow{part: part, key: bst.keys[r], raw: bst.raws[r], ec: ec, op: k.ridx})
			if ts.routeExc != nil {
				ts.routeExc[k.ridx]++
			}
			excs++
			continue
		}
		switch k.kind {
		case bkFilter:
			if !v.Truth() {
				continue
			}
		case bkMap:
			switch {
			case len(v.Seq) > 0 && (v.Tag == types.KindDict || v.Tag == types.KindTuple):
				if len(v.Seq) != len(derived) {
					ts.pool = append(ts.pool, exRow{part: part, key: bst.keys[r], raw: bst.raws[r], ec: pyvalue.ExcUnsupported, op: k.ridx})
					if ts.routeExc != nil {
						ts.routeExc[k.ridx]++
					}
					excs++
					continue
				}
				for j := range derived {
					derived[j].Set(int(r), v.Seq[j])
				}
			case len(derived) == 1:
				derived[0].Set(int(r), v)
			default:
				ts.pool = append(ts.pool, exRow{part: part, key: bst.keys[r], raw: bst.raws[r], ec: pyvalue.ExcUnsupported, op: k.ridx})
				if ts.routeExc != nil {
					ts.routeExc[k.ridx]++
				}
				excs++
				continue
			}
		case bkWithColumn, bkMapColumn:
			derived[0].Set(int(r), v)
		}
		newSel = append(newSel, r)
	}
	bst.sel, bst.sel2 = newSel, bst.sel

	switch k.kind {
	case bkMap:
		bst.cols = append(bst.cols[:0], derived...)
	case bkMapColumn:
		bst.cols[k.colIdx] = derived[0]
	case bkWithColumn:
		if k.colIdx >= 0 {
			bst.cols[k.colIdx] = derived[0]
		} else {
			bst.cols = append(bst.cols, derived[0])
		}
	}
	return excs
}

// gatherArg assembles the UDF argument for batch row r: the bare column
// for scalar UDFs, else the row tuple with only the accessed (and
// guarded) columns filled — unread positions keep stale slots that the
// compiled body never loads.
//tuplex:kernel
func (k *batchKernel) gatherArg(bst *batchState, r int) rows.Slot {
	if k.scalar {
		return bst.cols[k.colIdx].Slot(r)
	}
	row := bst.argBuf[:k.inCols]
	if k.argCols == nil {
		for c, v := range bst.cols[:k.inCols] {
			row[c] = v.Slot(r)
		}
	} else {
		for _, c := range k.argCols {
			row[c] = bst.cols[c].Slot(r)
		}
	}
	return rows.Tuple(row)
}

// callKernelUDF is callNormalUDF with the argument already gathered.
func callKernelUDF(ts *task, su *stageUDF, arg rows.Slot) (rows.Slot, ECode) {
	if su.compiled == nil {
		return rows.Slot{}, pyvalue.ExcUnsupported
	}
	return su.compiled.Call1(ts.frames[su.frameIdx], arg)
}

// renderBatchCSV renders the live rows straight from the vectors into
// the task's CSV writer — no row materialization, no per-cell strings.
//tuplex:kernel
func (cs *compiledStage) renderBatchCSV(ts *task, bst *batchState) {
	w := ts.csvW
	for _, r := range bst.sel {
		ri := int(r)
		for c, v := range bst.cols {
			if c > 0 {
				w.Delim()
			}
			if v.IsNull(ri) {
				continue
			}
			switch v.Kind {
			case types.KindBool:
				w.CellBool(v.B[ri])
			case types.KindI64:
				w.CellI64(v.I[ri])
			case types.KindF64:
				w.CellF64(v.F[ri])
			case types.KindStr:
				w.CellStrBytes(v.RawStr(ri))
			case types.KindNull:
			default:
				w.CellSlot(v.Slots[ri])
			}
		}
		w.EndRecord()
		ts.lineEnds = append(ts.lineEnds, w.Len())
		ts.outKeys = append(ts.outKeys, bst.keys[r])
	}
}

// gatherBatch materializes the live rows (collect/materialize terminal)
// with one bulk backing allocation per batch.
func (cs *compiledStage) gatherBatch(ts *task, bst *batchState, n int) {
	b := colvec.Batch{Cols: bst.cols, N: n}
	got := b.GatherRows(bst.sel)
	ts.outRows = append(ts.outRows, got...)
	for _, r := range bst.sel {
		ts.outKeys = append(ts.outKeys, bst.keys[r])
	}
}

// kernelArgCols resolves the column set a whole-row UDF reads at this
// schema point: accessed columns from the static analysis plus the
// columns its compiled guards test. nil means the analysis could not
// attribute reads (or a name failed to resolve) and the kernel must fill
// every column.
func kernelArgCols(su *stageUDF, schema *types.Schema) []int {
	acc := su.spec.Access
	if acc == nil || acc.WholeRow {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, nm := range acc.ByName {
		i, ok := schema.Lookup(nm)
		if !ok {
			return nil
		}
		add(i)
	}
	for _, i := range acc.ByIndex {
		if i < 0 || i >= schema.Len() {
			return nil
		}
		add(i)
	}
	if su.compiled != nil {
		for _, g := range su.compiled.Guards {
			if g.Col < 0 || g.Col >= schema.Len() {
				return nil
			}
			add(g.Col)
		}
	}
	return out
}
