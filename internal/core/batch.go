package core

// Columnar batch execution (the normal-case data plane over column
// vectors). CSV and Parallelize source stages compile the maximal
// prefix of map/filter/withColumn/mapColumn/select/join operators into
// batch kernels: the generated parser (or the slot-row ingest) appends
// cells directly onto typed column vectors (internal/colvec), adjacent
// per-row kernels fuse into one pass over the shared selection vector,
// joins probe the sharded build table and emit gathered column vectors,
// and filters shrink the selection instead of copying columns. Operators
// the kernels cannot batch (uncompiled UDF suffixes) run through the
// composed row-at-a-time chain via a batch→row bridge at the stage
// barrier, and exception rows bounce to the pooled boxed path exactly
// like the row path — output bytes and row accounting are identical by
// construction (enforced by the columnar differential suites).
//
// Join fan-out replicates the row path's depth-first abort semantics:
// the first failure downstream of a join pools the SOURCE row once
// (unscaled key — resolve replays the whole boxed program from source
// values) and invalidates the same source's not-yet-processed output
// rows, while already-emitted earlier matches stay.

import (
	"github.com/gotuplex/tuplex/internal/colvec"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// batchMaxRows bounds one batch so vector memory stays chunk-sized even
// for materialized partitions.
const batchMaxRows = 4096

// bkKind enumerates batch kernel kinds.
type bkKind uint8

const (
	bkMap bkKind = iota
	bkFilter
	bkWithColumn
	bkMapColumn
	bkSelect
	bkJoin
)

// batchKernel is one operator compiled for batch execution.
type batchKernel struct {
	kind bkKind
	su   *stageUDF
	ridx int32
	// ki is the kernel's index in the stage plan (set by fuseKernels);
	// it addresses the kernel's derived vectors in batchState.
	ki int
	// scalar marks UDFs receiving a bare column value; colIdx is that
	// column (also the mapColumn target, the withColumn replace index
	// with -1 = append, and the join probe-key column).
	scalar bool
	colIdx int
	// inCols is the schema width entering the op; argCols lists the
	// columns a whole-row UDF actually reads (accessed columns plus guard
	// columns; nil = fill every column).
	inCols  int
	argCols []int
	// outTypes types the derived output vectors (map: one per output
	// column; withColumn/mapColumn: one; join: the full output schema).
	outTypes []types.Type
	// perm is the select permutation.
	perm []int
	// join state (bkJoin): the materialized build table and the
	// left-outer flag.
	join      *buildTable
	leftOuter bool
}

// batchProg is a stage's batch plan.
type batchProg struct {
	kernels []*batchKernel
	// groups partitions the kernel prefix into fused passes: runs of
	// adjacent map/filter/withColumn/mapColumn kernels execute in one
	// scan over the selection vector; select and join kernels form
	// singleton groups (they change the column layout / index space).
	groups [][]*batchKernel
	// suffix is the composed row-at-a-time chain for the operators after
	// the kernel prefix plus the terminal; nil when the terminal itself is
	// batch-executable and every operator compiled to a kernel.
	suffix nstep
	// barrierIdx is the routing-ledger index of the first suffix op (the
	// stage barrier rows bounce at); the terminal index when the whole
	// operator chain compiled to kernels.
	barrierIdx int32
}

// fuseKernels partitions the kernel prefix into fused passes and stamps
// each kernel's plan index.
func fuseKernels(kernels []*batchKernel) [][]*batchKernel {
	var groups [][]*batchKernel
	var cur []*batchKernel
	for i, k := range kernels {
		k.ki = i
		switch k.kind {
		case bkSelect, bkJoin:
			if len(cur) > 0 {
				groups = append(groups, cur)
				cur = nil
			}
			groups = append(groups, []*batchKernel{k})
		default:
			cur = append(cur, k)
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// batchState is the per-task reusable batch memory: ingest target
// vectors, per-kernel derived vectors, selection double-buffer, order
// keys and source rows of the current batch, plus the join index-space
// remapping state.
type batchState struct {
	src     []*colvec.Vec
	derived [][]*colvec.Vec
	cols    []*colvec.Vec
	cols2   []*colvec.Vec
	sel     []int32
	sel2    []int32
	// keys / raws / srcRows are indexed by SOURCE batch position: the
	// per-record order keys, raw records (parse ingest) and slot rows
	// (slot ingest) of the rows that survived classification.
	keys    []uint64
	raws    [][]byte
	srcRows []rows.Row
	argBuf  []rows.Slot

	// n is the current index-space size: the source row count until a
	// join remaps the batch to its fan-out output space.
	n int

	// srcIdx maps current index → source index (nil = identity, before
	// any join); outKeys carries the join-scaled order keys (nil =
	// bst.keys, unscaled). The *2 twins are the swap spares.
	srcIdx, srcIdx2   []int32
	outKeys, outKeys2 []uint64

	// dropped marks current-index rows invalidated by a same-source
	// failure earlier in the pass; pooledSrc marks source rows already
	// pooled (one pool entry per source row, like the row path's abort).
	dropped, pooledSrc    colvec.Bitmap
	anyDropped, anyPooled bool

	// Fused-pass scratch: per-kernel input column views (arena-backed),
	// the set of vectors writable within the current group, the per-
	// kernel argument accessors, and the CSV renderer's per-column
	// no-null flags.
	views     [][]*colvec.Vec
	viewArena []*colvec.Vec
	writeSet  []*colvec.Vec
	argFns    []func(int32) rows.Slot
	noNull    []bool
}

func newBatchState(cs *compiledStage) *batchState {
	bst := &batchState{}
	if cs.parse != nil {
		bst.src = cs.parse.NewVecsFor()
	} else {
		bst.src = make([]*colvec.Vec, cs.inSchema.Len())
		for i := range bst.src {
			bst.src[i] = colvec.NewVec(cs.inSchema.Col(i).Type)
		}
	}
	bst.derived = make([][]*colvec.Vec, len(cs.batch.kernels))
	for ki, k := range cs.batch.kernels {
		if len(k.outTypes) == 0 {
			continue
		}
		vecs := make([]*colvec.Vec, len(k.outTypes))
		for j, t := range k.outTypes {
			vecs[j] = colvec.NewVec(t)
		}
		bst.derived[ki] = vecs
	}
	bst.argBuf = make([]rows.Slot, cs.maxCols)
	return bst
}

// getBatchState takes a batch-state from the stage pool (or builds one).
func (cs *compiledStage) getBatchState(ts *task) *batchState {
	if ts.bst == nil {
		if got, ok := cs.bstPool.Get().(*batchState); ok {
			ts.bst = got
		} else {
			ts.bst = newBatchState(cs)
		}
	}
	return ts.bst
}

// putBatchState returns the batch memory to the stage pool: nothing in
// it escapes the task (strings are sealed views under the donated-buffer
// protocol, pooled raw records point at stable input memory or were
// detached, output rows have fresh backing).
func (cs *compiledStage) putBatchState(ts *task) {
	bst := ts.bst
	ts.bst = nil
	cs.bstPool.Put(bst)
}

// beginBatch resets the per-batch state: ingest vectors, index-space
// remaps (back to identity) and failure bitmaps.
func (bst *batchState) beginBatch() {
	for _, v := range bst.src {
		v.Reset()
	}
	bst.keys = bst.keys[:0]
	bst.srcIdx2 = bst.srcIdx[:0]
	bst.srcIdx = nil
	bst.outKeys2 = bst.outKeys[:0]
	bst.outKeys = nil
	bst.dropped.Reset()
	bst.pooledSrc.Reset()
	bst.anyDropped, bst.anyPooled = false, false
}

// srcOf maps a current-index row to its source batch position.
func (bst *batchState) srcOf(r int32) int32 {
	if bst.srcIdx == nil {
		return r
	}
	return bst.srcIdx[r]
}

// keyOf is the row's order key in the current index space (join-scaled
// after a join kernel, the source key before).
func (bst *batchState) keyOf(r int32) uint64 {
	if bst.outKeys == nil {
		return bst.keys[r]
	}
	return bst.outKeys[r]
}

// sourceEx builds the pool entry for source row sr: raw record bytes on
// the parse path, boxed source values on the slot path. The key is the
// SOURCE order key — resolve replays the whole boxed program from source
// values and rescales per join.
func (bst *batchState) sourceEx(p int, sr int32, ec ECode, op int32) exRow {
	ex := exRow{part: p, key: bst.keys[sr], ec: ec, op: op}
	if bst.raws != nil {
		ex.raw = bst.raws[sr]
	} else {
		ex.vals = rows.RowToValues(bst.srcRows[sr])
	}
	return ex
}

// failBatchRow handles a normal-path failure at current-index row r:
// pool the source row once and invalidate the same source's later
// output rows (the row path aborts the whole source row depth-first at
// its first failure; earlier emitted matches stay). Returns 1 iff a new
// pool entry was made, mirroring the row path's one exception per
// source row.
func (cs *compiledStage) failBatchRow(ts *task, bst *batchState, p int, r int32, ec ECode, op int32) int64 {
	sr := bst.srcOf(r)
	if bst.srcIdx != nil {
		// Join fan-out keeps a source's output rows consecutive, so the
		// forward scan covers exactly the not-yet-processed siblings.
		for nr := int(r) + 1; nr < bst.n && bst.srcIdx[nr] == sr; nr++ {
			bst.dropped.Set(nr)
			bst.anyDropped = true
		}
	}
	if bst.anyPooled && bst.pooledSrc.Get(int(sr)) {
		return 0
	}
	bst.pooledSrc.Set(int(sr))
	bst.anyPooled = true
	ts.pool = append(ts.pool, bst.sourceEx(p, sr, ec, op))
	if ts.routeExc != nil {
		ts.routeExc[op]++
	}
	return 1
}

// runRecordsColumnar is runRecords on the batch plan: identical order
// keys, pool entries, counters and routing ledger arithmetic, with the
// per-row parse/step/render work replaced by per-batch vector loops.
func (cs *compiledStage) runRecordsColumnar(ts *task, p int, recs [][]byte, baseKey uint64, copyRaw bool) error {
	bst := cs.getBatchState(ts)
	var input, rejects, normalExc int64

	for start := 0; start < len(recs); start += batchMaxRows {
		end := start + batchMaxRows
		if end > len(recs) {
			end = len(recs)
		}
		sub := recs[start:end]
		input += int64(len(sub))

		// Parse straight into the source vectors; rejected records pool
		// with their raw bytes, exactly like the row path.
		bst.beginBatch()
		bst.srcRows = nil
		bst.raws = bst.raws[:0]
		for i, rec := range sub {
			key := baseKey + uint64(start+i)
			if ec := cs.parse.ParseLineVecs(rec, bst.src); ec != 0 {
				rejects++
				ts.pool = append(ts.pool, exRow{part: p, key: key, raw: rec, ec: ec})
				continue
			}
			bst.keys = append(bst.keys, key)
			bst.raws = append(bst.raws, rec)
		}
		normalExc += cs.runBatchBody(ts, bst, p)
	}

	normal := input - rejects - normalExc
	c := &ts.eng.res.Metrics.Counters
	c.InputRows.Add(input)
	c.ClassifierRejects.Add(rejects)
	c.NormalPathExceptions.Add(normalExc)
	c.NormalRows.Add(normal)
	ts.inRows += input
	if ts.route != nil {
		ts.route[0] += input
		ts.routeExc[0] += rejects
	}
	ts.flushProbeCounters()
	ts.flushBatchCounters()
	if copyRaw {
		for i := range ts.pool {
			if ts.pool[i].raw != nil {
				ts.pool[i].raw = append([]byte(nil), ts.pool[i].raw...)
			}
		}
	}
	cs.putBatchState(ts)
	return nil
}

// runSlotsColumnar is the batch plan over a slot-native Parallelize
// source: conforming rows ingest straight into the source vectors (no
// boxing); non-conforming rows pool boxed like the row path.
func (cs *compiledStage) runSlotsColumnar(ts *task, p int) error {
	bst := cs.getBatchState(ts)
	rg := cs.partRanges[p]
	var input, rejects, normalExc int64

	for start := rg[0]; start < rg[1]; start += batchMaxRows {
		end := start + batchMaxRows
		if end > rg[1] {
			end = rg[1]
		}
		input += int64(end - start)

		bst.beginBatch()
		bst.raws = nil
		bst.srcRows = bst.srcRows[:0]
		for i := start; i < end; i++ {
			src := cs.inputSlots[i]
			if !rowConforms(src, cs.inSchema) {
				rejects++
				ts.pool = append(ts.pool, exRow{part: p, key: uint64(i), vals: rows.RowToValues(src), ec: pyvalue.ExcBadParse})
				continue
			}
			for c, v := range bst.src {
				v.AppendSlot(src[c])
			}
			bst.keys = append(bst.keys, uint64(i))
			bst.srcRows = append(bst.srcRows, src)
		}
		normalExc += cs.runBatchBody(ts, bst, p)
	}

	normal := input - rejects - normalExc
	c := &ts.eng.res.Metrics.Counters
	c.InputRows.Add(input)
	c.ClassifierRejects.Add(rejects)
	c.NormalPathExceptions.Add(normalExc)
	c.NormalRows.Add(normal)
	ts.inRows += input
	if ts.route != nil {
		ts.route[0] += input
		ts.routeExc[0] += rejects
	}
	ts.flushProbeCounters()
	ts.flushBatchCounters()
	cs.putBatchState(ts)
	return nil
}

// runBatchBody executes the kernel groups and the terminal (or the
// row-bridge suffix) over one ingested batch. Returns the normal-path
// exception count (one per failed source row).
func (cs *compiledStage) runBatchBody(ts *task, bst *batchState, p int) int64 {
	bp := cs.batch
	n := len(bst.keys)
	bst.n = n
	bst.sel = bst.sel[:0]
	for i := 0; i < n; i++ {
		bst.sel = append(bst.sel, int32(i))
	}
	bst.cols = append(bst.cols[:0], bst.src...)

	var normalExc int64
	for _, g := range bp.groups {
		switch g[0].kind {
		case bkJoin:
			normalExc += cs.runJoinKernel(ts, bst, g[0], p)
		case bkSelect:
			k := g[0]
			if ts.route != nil {
				ts.route[k.ridx] += int64(len(bst.sel))
			}
			out := bst.cols2[:0]
			for _, i := range k.perm {
				out = append(out, bst.cols[i])
			}
			bst.cols, bst.cols2 = out, bst.cols
		default:
			normalExc += cs.runGroup(ts, bst, g, p)
		}
	}
	ts.columnarRows += int64(len(bst.sel))

	if bp.suffix == nil {
		switch {
		case cs.sinkCSV:
			if ts.route != nil {
				ts.route[cs.termRouteIdx] += int64(len(bst.sel))
			}
			cs.renderBatchCSV(ts, bst)
		case cs.terminal == physical.TerminalUnique:
			if ts.route != nil {
				ts.route[cs.termRouteIdx] += int64(len(bst.sel))
			}
			cs.uniqueBatch(ts, bst)
		case cs.terminal == physical.TerminalAggregate:
			normalExc += cs.aggregateBatch(ts, bst, p)
		default:
			if ts.route != nil {
				ts.route[cs.termRouteIdx] += int64(len(bst.sel))
			}
			cs.gatherBatch(ts, bst)
		}
	} else {
		// The stage barrier: bounce the surviving rows to the composed
		// row-at-a-time suffix (its routeWrap counters take over).
		for _, r := range bst.sel {
			if bst.anyDropped && bst.dropped.Get(int(r)) {
				continue
			}
			ts.bounced++
			row := ts.rowBuf[:len(bst.cols)]
			for c, v := range bst.cols {
				row[c] = v.Slot(int(r))
			}
			if ec := bp.suffix(ts, bst.keyOf(r), row); ec != 0 {
				normalExc += cs.failBatchRow(ts, bst, p, r, ec, ts.excOp)
			}
		}
	}
	return normalExc
}

// layoutAfter simulates kernel k's column-layout transformation over an
// input view (layout is row-independent, so each fused pass computes
// every kernel's input view once per batch).
func layoutAfter(bst *batchState, k *batchKernel, in []*colvec.Vec) []*colvec.Vec {
	d := bst.derived[k.ki]
	switch k.kind {
	case bkFilter:
		return in
	case bkMap:
		return d
	case bkMapColumn:
		out := bst.carve(len(in))
		copy(out, in)
		out[k.colIdx] = d[0]
		return out
	case bkWithColumn:
		if k.colIdx >= 0 {
			out := bst.carve(len(in))
			copy(out, in)
			out[k.colIdx] = d[0]
			return out
		}
		out := bst.carve(len(in) + 1)
		copy(out, in)
		out[len(in)] = d[0]
		return out
	}
	return in
}

// carve takes an n-slot view from the arena (capped so later carves
// never stomp it; a reallocation strands already-filled views safely).
func (bst *batchState) carve(n int) []*colvec.Vec {
	start := len(bst.viewArena)
	if cap(bst.viewArena)-start < n {
		bst.viewArena = append(bst.viewArena, make([]*colvec.Vec, n)...)
	} else {
		bst.viewArena = bst.viewArena[:start+n]
	}
	return bst.viewArena[start : start+n : start+n]
}

// argAccessor builds kernel k's per-row argument reader against its
// input view. Scalar kernels over a column the batch proves all-valid —
// and that no kernel in the current fused group writes — dispatch to a
// null-check-elided variant reading a re-sliced typed array (bounds
// checks hoisted to the [:n] re-slice).
func (cs *compiledStage) argAccessor(ts *task, bst *batchState, k *batchKernel, view []*colvec.Vec, n int) func(int32) rows.Slot {
	if !k.scalar {
		return func(r int32) rows.Slot { return gatherArgView(k, view, bst, int(r)) }
	}
	v := view[k.colIdx]
	writable := false
	for _, w := range bst.writeSet {
		if w == v {
			writable = true
			break
		}
	}
	if !writable && v.AllValid() {
		switch v.Kind {
		case types.KindI64:
			ts.nullElided++
			vals := v.I[:n]
			return func(r int32) rows.Slot { return rows.I64(vals[r]) }
		case types.KindF64:
			ts.nullElided++
			vals := v.F[:n]
			return func(r int32) rows.Slot { return rows.F64(vals[r]) }
		case types.KindBool:
			ts.nullElided++
			vals := v.B[:n]
			return func(r int32) rows.Slot { return rows.Bool(vals[r]) }
		case types.KindStr:
			ts.nullElided++
			return func(r int32) rows.Slot { return rows.Str(v.Str(int(r))) }
		}
	}
	ts.nullChecked++
	return func(r int32) rows.Slot { return v.Slot(int(r)) }
}

// runGroup executes one fused pass: every kernel in the group runs over
// each live row in a single scan of the selection vector, with per-row
// filter short-circuits and the shared drop/pool failure protocol.
//tuplex:kernel
func (cs *compiledStage) runGroup(ts *task, bst *batchState, group []*batchKernel, p int) int64 {
	n := bst.n
	// Static per-batch setup: input views, derived vectors grown to the
	// index space, argument accessors.
	bst.viewArena = bst.viewArena[:0]
	bst.views = bst.views[:0]
	cur := bst.cols
	for _, k := range group {
		bst.views = append(bst.views, cur)
		for _, v := range bst.derived[k.ki] {
			v.Reset()
			v.Grow(n)
		}
		cur = layoutAfter(bst, k, cur)
	}
	final := cur
	bst.writeSet = bst.writeSet[:0]
	for _, k := range group {
		bst.writeSet = append(bst.writeSet, bst.derived[k.ki]...)
	}
	bst.argFns = bst.argFns[:0]
	for gi, k := range group {
		bst.argFns = append(bst.argFns, cs.argAccessor(ts, bst, k, bst.views[gi], n))
	}

	var excs int64
	newSel := bst.sel2[:0]
rowLoop:
	for _, r := range bst.sel {
		if bst.anyDropped && bst.dropped.Get(int(r)) {
			continue
		}
		for gi, k := range group {
			if ts.route != nil {
				ts.route[k.ridx]++
			}
			v, ec := callKernelUDF(ts, k.su, bst.argFns[gi](r))
			if ec != 0 {
				excs += cs.failBatchRow(ts, bst, p, r, ec, k.ridx)
				continue rowLoop
			}
			derived := bst.derived[k.ki]
			switch k.kind {
			case bkFilter:
				if !v.Truth() {
					continue rowLoop
				}
			case bkMap:
				switch {
				case len(v.Seq) > 0 && (v.Tag == types.KindDict || v.Tag == types.KindTuple):
					if len(v.Seq) != len(derived) {
						excs += cs.failBatchRow(ts, bst, p, r, pyvalue.ExcUnsupported, k.ridx)
						continue rowLoop
					}
					for j := range derived {
						derived[j].Set(int(r), v.Seq[j])
					}
				case len(derived) == 1:
					derived[0].Set(int(r), v)
				default:
					excs += cs.failBatchRow(ts, bst, p, r, pyvalue.ExcUnsupported, k.ridx)
					continue rowLoop
				}
			case bkWithColumn, bkMapColumn:
				derived[0].Set(int(r), v)
			}
		}
		newSel = append(newSel, r)
	}
	bst.sel, bst.sel2 = newSel, bst.sel
	bst.cols = append(bst.cols[:0], final...)
	ts.fusedPasses++
	return excs
}

// runJoinKernel probes the sharded build table for each live row and
// emits the join output as gathered column vectors, remapping the
// batch's index space to the fan-out output (srcIdx tracks each output
// row's source; outKeys carries the key*256+sub order keys the row path
// produces).
//tuplex:kernel
func (cs *compiledStage) runJoinKernel(ts *task, bst *batchState, k *batchKernel, p int) int64 {
	bt := k.join
	derived := bst.derived[k.ki]
	for _, v := range derived {
		v.Reset()
	}
	keyVec := bst.cols[k.colIdx]
	nIn := k.inCols
	var excs int64
	newSel := bst.sel2[:0]
	newKeys := bst.outKeys2[:0]
	newSrc := bst.srcIdx2[:0]
	m := 0
	for _, r := range bst.sel {
		if bst.anyDropped && bst.dropped.Get(int(r)) {
			continue
		}
		if ts.route != nil {
			ts.route[k.ridx]++
		}
		key := bst.keyOf(r)
		sr := bst.srcOf(r)
		buf, ok := rows.AppendJoinKey(ts.keyBuf[:0], keyVec.Slot(int(r)))
		ts.keyBuf = buf
		var matches []buildRef
		if ok {
			if bt.genCount > 0 && len(bt.general[string(buf)]) > 0 {
				// Normal×exception join pairs run on the exception path
				// (§4.5 pairwise joins).
				excs += cs.failBatchRow(ts, bst, p, r, pyvalue.ExcUnsupported, k.ridx)
				continue
			}
			matches = bt.lookup(rows.Hash64(buf), buf)
		}
		if len(matches) == 0 {
			ts.probeMisses++
			if !k.leftOuter {
				continue
			}
			for c := 0; c < nIn; c++ {
				derived[c].AppendFrom(bst.cols[c], int(r))
			}
			for c := nIn; c < len(derived); c++ {
				derived[c].AppendNull()
			}
			newSel = append(newSel, int32(m))
			newKeys = append(newKeys, key*256)
			newSrc = append(newSrc, sr)
			m++
			continue
		}
		ts.probeHits++
		for i, ref := range matches {
			sub := uint64(i)
			if sub > 255 {
				sub = 255
			}
			for c := 0; c < nIn; c++ {
				derived[c].AppendFrom(bst.cols[c], int(r))
			}
			bvecs := bt.bparts[ref>>32]
			bi := int(int32(ref))
			for c, bv := range bvecs {
				derived[nIn+c].AppendFrom(bv, bi)
			}
			newSel = append(newSel, int32(m))
			newKeys = append(newKeys, key*256+sub)
			newSrc = append(newSrc, sr)
			m++
		}
	}
	bst.sel, bst.sel2 = newSel, bst.sel
	bst.outKeys, bst.outKeys2 = newKeys, bst.outKeys[:0]
	bst.srcIdx, bst.srcIdx2 = newSrc, bst.srcIdx[:0]
	bst.cols = append(bst.cols[:0], derived...)
	bst.n = m
	// New index space: drop marks from the input space don't carry over
	// (the surviving rows were re-emitted above).
	bst.dropped.Reset()
	bst.anyDropped = false
	return excs
}

// gatherArgView assembles a whole-row UDF argument for batch row r from
// the kernel's input view: the row tuple with only the accessed (and
// guarded) columns filled — unread positions keep stale slots that the
// compiled body never loads.
//tuplex:kernel
func gatherArgView(k *batchKernel, view []*colvec.Vec, bst *batchState, r int) rows.Slot {
	row := bst.argBuf[:k.inCols]
	if k.argCols == nil {
		for c, v := range view[:k.inCols] {
			row[c] = v.Slot(r)
		}
	} else {
		for _, c := range k.argCols {
			row[c] = view[c].Slot(r)
		}
	}
	return rows.Tuple(row)
}

// callKernelUDF is callNormalUDF with the argument already gathered.
func callKernelUDF(ts *task, su *stageUDF, arg rows.Slot) (rows.Slot, ECode) {
	if su.compiled == nil {
		return rows.Slot{}, pyvalue.ExcUnsupported
	}
	return su.compiled.Call1(ts.frames[su.frameIdx], arg)
}

// renderBatchCSV renders the live rows straight from the vectors into
// the task's CSV writer — no row materialization, no per-cell strings.
// Columns the batch proves all-valid skip the per-cell null check.
//tuplex:kernel
func (cs *compiledStage) renderBatchCSV(ts *task, bst *batchState) {
	w := ts.csvW
	noNull := bst.noNull[:0]
	for _, v := range bst.cols {
		nv := v.AllValid()
		if nv {
			ts.nullElided++
		} else {
			ts.nullChecked++
		}
		noNull = append(noNull, nv)
	}
	bst.noNull = noNull
	for _, r := range bst.sel {
		ri := int(r)
		for c, v := range bst.cols {
			if c > 0 {
				w.Delim()
			}
			if !noNull[c] && v.IsNull(ri) {
				continue
			}
			switch v.Kind {
			case types.KindBool:
				w.CellBool(v.B[ri])
			case types.KindI64:
				w.CellI64(v.I[ri])
			case types.KindF64:
				w.CellF64(v.F[ri])
			case types.KindStr:
				w.CellStrBytes(v.RawStr(ri))
			case types.KindNull:
			default:
				w.CellSlot(v.Slots[ri])
			}
		}
		w.EndRecord()
		ts.lineEnds = append(ts.lineEnds, w.Len())
		ts.outKeys = append(ts.outKeys, bst.keyOf(r))
	}
}

// uniqueBatch feeds the live rows into the task's open distinct set (the
// columnar unique terminal — same encoded row keys and insertion order
// as the row path's terminal step).
//tuplex:kernel
func (cs *compiledStage) uniqueBatch(ts *task, bst *batchState) {
	for _, r := range bst.sel {
		row := ts.rowBuf[:len(bst.cols)]
		for c, v := range bst.cols {
			row[c] = v.Slot(int(r))
		}
		buf := rows.AppendRowKey(ts.keyBuf[:0], row)
		ts.keyBuf = buf
		ts.uniq.insert(rows.Hash64(buf), buf, row, bst.keyOf(r))
	}
}

// aggregateBatch folds the live rows into the task's accumulator slot
// (the columnar aggregate terminal); failures pool the source row like
// every other batch step.
//tuplex:kernel
func (cs *compiledStage) aggregateBatch(ts *task, bst *batchState, p int) int64 {
	su := cs.aggUDF
	var excs int64
	for _, r := range bst.sel {
		if bst.anyDropped && bst.dropped.Get(int(r)) {
			continue
		}
		if ts.route != nil {
			ts.route[cs.termRouteIdx]++
		}
		if su == nil || su.compiled == nil {
			excs += cs.failBatchRow(ts, bst, p, r, pyvalue.ExcUnsupported, cs.termRouteIdx)
			continue
		}
		var arg rows.Slot
		if cs.aggScalar {
			arg = bst.cols[0].Slot(int(r))
		} else {
			row := ts.rowBuf[:len(bst.cols)]
			for c, v := range bst.cols {
				row[c] = v.Slot(int(r))
			}
			arg = rows.Tuple(row)
		}
		v, ec := su.compiled.Call2(ts.frames[su.frameIdx], ts.aggSlot, arg)
		if ec != 0 {
			excs += cs.failBatchRow(ts, bst, p, r, ec, cs.termRouteIdx)
			continue
		}
		ts.aggSlot = v
	}
	return excs
}

// gatherBatch materializes the live rows (collect/materialize terminal)
// with one bulk backing allocation per batch.
func (cs *compiledStage) gatherBatch(ts *task, bst *batchState) {
	b := colvec.Batch{Cols: bst.cols, N: bst.n}
	got := b.GatherRows(bst.sel)
	ts.outRows = append(ts.outRows, got...)
	for _, r := range bst.sel {
		ts.outKeys = append(ts.outKeys, bst.keyOf(r))
	}
}

// kernelArgCols resolves the column set a whole-row UDF reads at this
// schema point: accessed columns from the static analysis plus the
// columns its compiled guards test. nil means the analysis could not
// attribute reads (or a name failed to resolve) and the kernel must fill
// every column.
func kernelArgCols(su *stageUDF, schema *types.Schema) []int {
	acc := su.spec.Access
	if acc == nil || acc.WholeRow {
		return nil
	}
	seen := make(map[int]bool)
	var out []int
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, nm := range acc.ByName {
		i, ok := schema.Lookup(nm)
		if !ok {
			return nil
		}
		add(i)
	}
	for _, i := range acc.ByIndex {
		if i < 0 || i >= schema.Len() {
			return nil
		}
		add(i)
	}
	if su.compiled != nil {
		for _, g := range su.compiled.Guards {
			if g.Col < 0 || g.Col >= schema.Len() {
				return nil
			}
			add(g.Col)
		}
	}
	return out
}
