package core

import (
	"bytes"
	"fmt"

	"github.com/gotuplex/tuplex/internal/colvec"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// buildTable is a materialized hash-join build side (§4.5): the build
// plan's normal-case rows keyed for probing, plus a separate map of
// exception-path rows. A probe key that hits the exception map sends the
// probe row to the exception path so all four NC/EC join pairs are
// covered without slowing the fast path.
//
// The normal side stores its contributed columns as column vectors, one
// vector set per build partition (bparts), and the hash table holds
// packed (partition, row) references instead of materialized rows: the
// probe gathers match cells straight from the vectors — column-at-a-time
// on the batch plane, slot-at-a-time on the row bridge — so the build
// never boxes and never allocates per row. Hashing is sharded over the
// canonical 64-bit key hash (internal/rows): shard = hash & shardMask,
// and within a shard a map from hash to the (rare) list of entries
// sharing it, each holding the encoded key bytes for exact equality.
// Probing costs one scratch-buffer key encoding, one map lookup and one
// bytes.Equal — no per-row heap allocation. Shards exist so the build
// can run in parallel across the build side's partitions and so future
// grouped/shuffled operators can reuse the layout.
type buildTable struct {
	schema  *types.Schema // build-side columns in output order (key excluded)
	keyName string
	shards  []buildShard
	// shardMask is len(shards)-1 (shard count is a power of two).
	shardMask uint64
	// bparts holds the build side's contributed columns as column
	// vectors, one set per build partition, plus a trailing overflow
	// partition for conforming exception rows. buildRef values index
	// into it. Vectors are sealed once after the build — concurrent
	// probes read cells without mutating vector state.
	bparts [][]*colvec.Vec
	// general holds exception-path build rows, keyed by the same encoded
	// key bytes (as string, for map use); probe keys hitting it divert to
	// the exception path. Rare by construction, so a boxed map is fine.
	general  map[string][][]pyvalue.Value
	genCount int
	// addedCols is the number of columns the build side contributes.
	addedCols int
	// buildRows counts normal-path rows hashed into the shards.
	buildRows int
}

// buildRef packs one build row's location as partition<<32 | row; the
// partition indexes bt.bparts.
type buildRef = int64

// buildEntry is one distinct join key within a shard.
type buildEntry struct {
	key  []byte
	refs []buildRef
}

// buildShard is one hash shard: a map from 64-bit key hash to the
// entries sharing that hash (almost always exactly one).
type buildShard struct {
	m    map[uint64][]buildEntry
	rows int
}

// insert appends ref under (h, key), keeping insertion order per key.
// key must stay valid for the table's lifetime (arena- or heap-backed).
func (sh *buildShard) insert(h uint64, key []byte, ref buildRef) {
	ents := sh.m[h]
	for i := range ents {
		if bytes.Equal(ents[i].key, key) {
			ents[i].refs = append(ents[i].refs, ref)
			sh.rows++
			return
		}
	}
	sh.m[h] = append(ents, buildEntry{key: key, refs: []buildRef{ref}})
	sh.rows++
}

// lookup returns the build-row references matching (h, key), or nil.
func (bt *buildTable) lookup(h uint64, key []byte) []buildRef {
	for _, e := range bt.shards[h&bt.shardMask].m[h] {
		if bytes.Equal(e.key, key) {
			return e.refs
		}
	}
	return nil
}

// insert routes one ref to its shard (serial use only — the parallel
// build path writes shards directly).
func (bt *buildTable) insert(h uint64, key []byte, ref buildRef) {
	bt.shards[h&bt.shardMask].insert(h, key, ref)
	bt.buildRows++
}

// appendRow gathers the referenced build row's cells onto out (the
// row-bridge probe path).
func (bt *buildTable) appendRow(out rows.Row, ref buildRef) rows.Row {
	vecs := bt.bparts[ref>>32]
	i := int(int32(ref))
	for _, v := range vecs {
		out = append(out, v.Slot(i))
	}
	return out
}

// boxRow boxes the referenced build row (the exception-path join).
func (bt *buildTable) boxRow(ref buildRef) []pyvalue.Value {
	vecs := bt.bparts[ref>>32]
	i := int(int32(ref))
	out := make([]pyvalue.Value, len(vecs))
	for j, v := range vecs {
		out[j] = v.Slot(i).Value()
	}
	return out
}

// maxShardRows reports the largest shard's row count (balance metric).
func (bt *buildTable) maxShardRows() int {
	max := 0
	for i := range bt.shards {
		if bt.shards[i].rows > max {
			max = bt.shards[i].rows
		}
	}
	return max
}

// shardCount picks a power-of-two shard count: enough to spread the
// parallel build and merge across the executors without fragmenting
// small tables.
func shardCount(executors int) int {
	n := 1
	for n < 4*executors {
		n <<= 1
	}
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return n
}

// pendingBuildRow is one hashed build row awaiting its shard merge.
type pendingBuildRow struct {
	h uint64
	// off/end delimit the encoded key in the partition's key arena.
	off, end int32
	ref      buildRef
}

// buildJoinTable executes the build-side plan and hashes it. Per §4.5,
// Tuplex "executes all code paths for the build side of the join and
// resolves its exception rows before executing any code path of the
// other side". The normal-case rows are hashed in two parallel phases
// over the existing partitions: each partition encodes its keys into a
// private arena, appends its projected cells onto per-partition column
// vectors, and buckets packed row references by shard; then each shard
// merges its buckets in partition order (so duplicate-key match order
// stays the input order, exactly as the old single-map build produced).
func (eng *engine) buildJoinTable(op *logical.JoinOp) (*buildTable, error) {
	// The build side always materializes rows for the hash table,
	// whatever the run's final sink is: with the engine-wide sink left
	// at SinkCSV the sub-chain's terminal stage would render CSV and
	// materialize nothing, silently emptying every build table.
	prevSink := eng.sink
	eng.sink = SinkCollect
	buildMat, err := eng.runChain(op.Build)
	eng.sink = prevSink
	if err != nil {
		return nil, err
	}
	if buildMat.isAgg {
		return nil, fmt.Errorf("core: cannot join against an aggregate result")
	}
	sch := buildMat.schema
	keyIdx, ok := sch.Lookup(op.RightKey)
	if !ok {
		return nil, fmt.Errorf("core: join: build side has no column %q (have %v)", op.RightKey, sch.Names())
	}
	// Output columns: build side minus the key, prefixed.
	var outCols []types.Column
	var colMap []int
	for i := 0; i < sch.Len(); i++ {
		if i == keyIdx {
			continue
		}
		c := sch.Col(i)
		t := c.Type
		if op.Left {
			// Unmatched probe rows pad with None, so every contributed
			// column is optional in the output schema.
			t = types.Option(t)
		}
		outCols = append(outCols, types.Column{Name: op.RightPrefix + c.Name, Type: t})
		colMap = append(colMap, i)
	}
	nshards := shardCount(eng.opts.Executors)
	bt := &buildTable{
		schema:    types.NewSchema(outCols),
		keyName:   op.RightKey,
		shards:    make([]buildShard, nshards),
		shardMask: uint64(nshards - 1),
		general:   make(map[string][][]pyvalue.Value),
		addedCols: len(outCols),
	}

	// Phase 1 — partition-parallel: encode keys, hash, append projected
	// cells onto the partition's column vectors, bucket packed refs by
	// shard. Keys are slices of one per-partition arena and cells live in
	// the vectors: O(1) allocations per partition instead of per row.
	nparts := len(buildMat.parts)
	pend := make([][][]pendingBuildRow, nparts)
	arenas := make([][]byte, nparts)
	bt.bparts = make([][]*colvec.Vec, nparts, nparts+1)
	eng.parallelFor(nparts, func(p int) {
		part := buildMat.parts[p]
		byShard := make([][]pendingBuildRow, nshards)
		arena := make([]byte, 0, len(part)*12)
		vecs := make([]*colvec.Vec, len(colMap))
		for j, i := range colMap {
			vecs[j] = colvec.NewVec(sch.Col(i).Type)
		}
		var buf []byte
		nrows := 0
		for _, r := range part {
			key, kok := rows.AppendJoinKey(buf[:0], r[keyIdx])
			buf = key
			if !kok {
				continue // null keys never match
			}
			h := rows.Hash64(key)
			off := len(arena)
			arena = append(arena, key...)
			for j, i := range colMap {
				vecs[j].AppendSlot(r[i])
			}
			s := h & bt.shardMask
			byShard[s] = append(byShard[s], pendingBuildRow{h: h, off: int32(off), end: int32(len(arena)),
				ref: buildRef(p)<<32 | buildRef(nrows)})
			nrows++
		}
		pend[p] = byShard
		arenas[p] = arena
		bt.bparts[p] = vecs
	})

	// Phase 2 — shard-parallel merge in partition order.
	eng.parallelFor(nshards, func(s int) {
		sh := &bt.shards[s]
		n := 0
		for p := range pend {
			n += len(pend[p][s])
		}
		if n == 0 {
			return
		}
		sh.m = make(map[uint64][]buildEntry, n)
		for p := range pend {
			for _, e := range pend[p][s] {
				sh.insert(e.h, arenas[p][e.off:e.end], e.ref)
			}
		}
	})
	for s := range bt.shards {
		bt.buildRows += bt.shards[s].rows
		if bt.shards[s].m == nil {
			bt.shards[s].m = map[uint64][]buildEntry{}
		}
	}

	// Exception-path build rows (rare): conforming ones join the fast
	// table serially via a trailing overflow partition, the rest stay
	// boxed in the general map.
	var buf []byte
	var overflow []*colvec.Vec
	ovRows := 0
	for _, ex := range buildMat.exceptional {
		if len(ex.vals) != sch.Len() {
			continue
		}
		key, kok := rows.AppendJoinKeyValue(buf[:0], ex.vals[keyIdx])
		buf = key
		if !kok {
			continue
		}
		// Conforming rows can join on the fast path; the rest stay boxed.
		if slots, okc := unboxConforming(ex.vals, sch, make([]rows.Slot, sch.Len())); okc {
			if overflow == nil {
				overflow = make([]*colvec.Vec, len(colMap))
				for j, i := range colMap {
					overflow[j] = colvec.NewVec(sch.Col(i).Type)
				}
				bt.bparts = append(bt.bparts, overflow)
			}
			for j, i := range colMap {
				overflow[j].AppendSlot(slots[i])
			}
			ref := buildRef(len(bt.bparts)-1)<<32 | buildRef(ovRows)
			ovRows++
			bt.insert(rows.Hash64(key), append([]byte(nil), key...), ref)
			continue
		}
		proj := make([]pyvalue.Value, len(colMap))
		for j, i := range colMap {
			proj[j] = ex.vals[i]
		}
		bt.general[string(key)] = append(bt.general[string(key)], proj)
		bt.genCount++
	}

	// Seal every string vector now: concurrent probe tasks read cells via
	// Slot(), which must never hit the lazy first Seal in parallel.
	for _, vecs := range bt.bparts {
		for _, v := range vecs {
			v.Seal()
		}
	}

	jm := &eng.res.Metrics.Join
	jm.BuildTables.Add(1)
	jm.BuildRows.Add(int64(bt.buildRows))
	jm.GeneralRows.Add(int64(bt.genCount))
	jm.Shards.Store(int64(nshards))
	if m := int64(bt.maxShardRows()); m > jm.MaxShardRows.Load() {
		jm.MaxShardRows.Store(m)
	}
	return bt, nil
}

// joinOutputSchema is the probe-side schema after the join.
func joinOutputSchema(probe *types.Schema, op *logical.JoinOp, bt *buildTable) *types.Schema {
	cols := make([]types.Column, 0, probe.Len()+bt.schema.Len())
	for i := 0; i < probe.Len(); i++ {
		c := probe.Col(i)
		cols = append(cols, types.Column{Name: op.LeftPrefix + c.Name, Type: c.Type})
	}
	cols = append(cols, bt.schema.Columns()...)
	return types.NewSchema(cols)
}
