package core

import (
	"fmt"
	"strconv"

	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// buildTable is a materialized hash-join build side (§4.5): the build
// plan's normal-case rows keyed for probing, plus a separate map of
// exception-path rows. A probe key that hits the exception map sends the
// probe row to the exception path so all four NC/EC join pairs are
// covered without slowing the fast path.
type buildTable struct {
	schema   *types.Schema // build-side columns in output order (key excluded)
	keyName  string
	normal   map[string][]rows.Row
	general  map[string][][]pyvalue.Value
	genCount int
	// addedCols is the number of columns the build side contributes.
	addedCols int
}

// buildJoinTable executes the build-side plan and hashes it. Per §4.5,
// Tuplex "executes all code paths for the build side of the join and
// resolves its exception rows before executing any code path of the
// other side".
func (eng *engine) buildJoinTable(op *logical.JoinOp) (*buildTable, error) {
	buildMat, err := eng.runChain(op.Build)
	if err != nil {
		return nil, err
	}
	if buildMat.isAgg {
		return nil, fmt.Errorf("core: cannot join against an aggregate result")
	}
	sch := buildMat.schema
	keyIdx, ok := sch.Lookup(op.RightKey)
	if !ok {
		return nil, fmt.Errorf("core: join: build side has no column %q (have %v)", op.RightKey, sch.Names())
	}
	// Output columns: build side minus the key, prefixed.
	var outCols []types.Column
	var colMap []int
	for i := 0; i < sch.Len(); i++ {
		if i == keyIdx {
			continue
		}
		c := sch.Col(i)
		t := c.Type
		if op.Left {
			// Unmatched probe rows pad with None, so every contributed
			// column is optional in the output schema.
			t = types.Option(t)
		}
		outCols = append(outCols, types.Column{Name: op.RightPrefix + c.Name, Type: t})
		colMap = append(colMap, i)
	}
	bt := &buildTable{
		schema:    types.NewSchema(outCols),
		keyName:   op.RightKey,
		normal:    make(map[string][]rows.Row),
		general:   make(map[string][][]pyvalue.Value),
		addedCols: len(outCols),
	}
	for p := range buildMat.parts {
		for _, r := range buildMat.parts[p] {
			k, ok := joinKeySlot(r[keyIdx])
			if !ok {
				continue // null keys never match
			}
			proj := make(rows.Row, len(colMap))
			for j, i := range colMap {
				proj[j] = r[i]
			}
			bt.normal[k] = append(bt.normal[k], proj)
		}
	}
	for _, ex := range buildMat.exceptional {
		if len(ex.vals) != sch.Len() {
			continue
		}
		k, ok := joinKeyBoxed(ex.vals[keyIdx])
		if !ok {
			continue
		}
		// Conforming rows can join on the fast path; the rest stay boxed.
		if slots, okc := unboxConforming(ex.vals, sch, make([]rows.Slot, sch.Len())); okc {
			proj := make(rows.Row, len(colMap))
			for j, i := range colMap {
				proj[j] = slots[i]
			}
			bt.normal[k] = append(bt.normal[k], proj)
			continue
		}
		proj := make([]pyvalue.Value, len(colMap))
		for j, i := range colMap {
			proj[j] = ex.vals[i]
		}
		bt.general[k] = append(bt.general[k], proj)
		bt.genCount++
	}
	return bt, nil
}

// joinOutputSchema is the probe-side schema after the join.
func joinOutputSchema(probe *types.Schema, op *logical.JoinOp, bt *buildTable) *types.Schema {
	cols := make([]types.Column, 0, probe.Len()+bt.schema.Len())
	for i := 0; i < probe.Len(); i++ {
		c := probe.Col(i)
		cols = append(cols, types.Column{Name: op.LeftPrefix + c.Name, Type: c.Type})
	}
	cols = append(cols, bt.schema.Columns()...)
	return types.NewSchema(cols)
}

// joinKeySlot normalizes a slot into a hash key. Numerics normalize so
// 1, 1.0 and True join (Python equality); None yields no key.
func joinKeySlot(s rows.Slot) (string, bool) {
	switch s.Tag {
	case types.KindStr:
		return "s:" + s.S, true
	case types.KindI64:
		return "i:" + strconv.FormatInt(s.I, 10), true
	case types.KindBool:
		if s.B {
			return "i:1", true
		}
		return "i:0", true
	case types.KindF64:
		if s.F == float64(int64(s.F)) {
			return "i:" + strconv.FormatInt(int64(s.F), 10), true
		}
		return "f:" + strconv.FormatFloat(s.F, 'g', -1, 64), true
	case types.KindNull:
		return "", false
	default:
		return "", false
	}
}

// joinKeyBoxed normalizes a boxed value identically to joinKeySlot.
func joinKeyBoxed(v pyvalue.Value) (string, bool) {
	return joinKeySlot(rows.FromValue(v))
}
