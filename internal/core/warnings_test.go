package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestWarningsPerSourceCaps(t *testing.T) {
	var w warnings
	// Flood the lint source well past its cap, then add advice: the
	// advice must still surface in full, with each overflowed source
	// closed by its own truncation summary.
	lintTotal := warnCaps[warnLint] + 10
	for i := 0; i < lintTotal; i++ {
		w.add(warnLint, "lint %d", i)
	}
	adviceTotal := warnCaps[warnAdvice] + 3
	for i := 0; i < adviceTotal; i++ {
		w.add(warnAdvice, "advice %d", i)
	}

	out := w.flush()
	var lints, advice, summaries int
	for _, msg := range out {
		switch {
		case strings.HasPrefix(msg, "lint "):
			lints++
		case strings.HasPrefix(msg, "advice "):
			advice++
		case strings.Contains(msg, "suppressed"):
			summaries++
		default:
			t.Fatalf("unexpected warning %q", msg)
		}
	}
	if lints != warnCaps[warnLint] {
		t.Fatalf("lint warnings = %d, want cap %d", lints, warnCaps[warnLint])
	}
	if advice != warnCaps[warnAdvice] {
		t.Fatalf("advice warnings = %d, want cap %d", advice, warnCaps[warnAdvice])
	}
	if summaries != 2 {
		t.Fatalf("truncation summaries = %d, want one per overflowed source: %v", summaries, out)
	}
	wantLintSummary := fmt.Sprintf("%d more %s suppressed", lintTotal-warnCaps[warnLint], warnLabels[warnLint])
	wantAdviceSummary := fmt.Sprintf("%d more %s suppressed", adviceTotal-warnCaps[warnAdvice], warnLabels[warnAdvice])
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, wantLintSummary) {
		t.Fatalf("missing lint summary %q in %v", wantLintSummary, out)
	}
	if !strings.Contains(joined, wantAdviceSummary) {
		t.Fatalf("missing advice summary %q in %v", wantAdviceSummary, out)
	}
	// Advice renders before lints and each source's summary directly
	// follows its own block.
	if !strings.HasPrefix(out[0], "advice ") {
		t.Fatalf("out[0] = %q, want advice first", out[0])
	}
	if out[warnCaps[warnAdvice]] != wantAdviceSummary {
		t.Fatalf("out[%d] = %q, want advice summary", warnCaps[warnAdvice], out[warnCaps[warnAdvice]])
	}
	if out[len(out)-1] != wantLintSummary {
		t.Fatalf("last = %q, want lint summary", out[len(out)-1])
	}
}

func TestWarningsNoSummaryUnderCap(t *testing.T) {
	var w warnings
	w.add(warnAdvice, "only advice")
	w.add(warnLint, "only lint")
	out := w.flush()
	if len(out) != 2 {
		t.Fatalf("warnings = %v, want exactly the two added", out)
	}
	for _, msg := range out {
		if strings.Contains(msg, "suppressed") {
			t.Fatalf("unexpected truncation summary %q", msg)
		}
	}
	if out[0] != "only advice" || out[1] != "only lint" {
		t.Fatalf("order = %v, want advice before lint", out)
	}
}

func TestWarningsEmptyFlush(t *testing.T) {
	var w warnings
	if out := w.flush(); len(out) != 0 {
		t.Fatalf("empty collector flushed %v", out)
	}
}
