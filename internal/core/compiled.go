package core

import (
	"context"
	"fmt"
	"time"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/metrics"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
)

// CompiledPlan is a reusable compilation artifact: the sampled normal
// case, the generated per-stage closures, the columnar batch plans and
// the join build tables of one completed run, detached from that run's
// mutable state. Re-executing it skips sampling, type inference,
// dataflow analysis and code generation — the amortization a long-lived
// service needs (Tupleware's "distributed shared jobs"; ROADMAP item 2).
//
// A CompiledPlan is immutable after construction and safe for
// concurrent Execute calls: compile-time artifacts (entry chains, batch
// programs, build tables, codegen UDFs) are shared read-only, while
// per-run state (tasks, exception pools, boxed interpreters, routing
// ledgers, source bindings) is cloned per call.
//
// Correctness does not depend on the new input resembling the sampled
// one: rows that fall outside the compiled normal case are classifier
// rejects and flow through the general/fallback paths like any other
// exception row. A drifted input is merely slow, never wrong — callers
// (the service cache) key plans by an input fingerprint for performance,
// not safety.
type CompiledPlan struct {
	opts   Options
	kind   SinkKind
	stages []*stageTemplate
}

// stageTemplate pairs one physical stage with its stripped compiled
// form. The physical stage is kept for source rebinding (paths, inline
// data, parallelize rows live on the logical source nodes).
type stageTemplate struct {
	st *physical.Stage
	cs *compiledStage
}

// newCompiledPlan detaches the engine's captured stages into a reusable
// plan. Called once, after the capturing run has fully finished, so
// nulling the per-run fields below cannot race with anything.
func newCompiledPlan(eng *engine) *CompiledPlan {
	cp := &CompiledPlan{opts: eng.opts, kind: eng.sink, stages: eng.captured}
	for _, tpl := range cp.stages {
		cs := tpl.cs
		cs.eng = nil
		cs.records = nil
		cs.stream = nil
		cs.tasks = nil
		cs.routing = nil
		cs.samples = nil
		cs.poolSize = 0
		cs.sampleTime = 0
		switch tpl.st.Source.(type) {
		case nil:
			// Interior stage: the input materialization is per-run.
			cs.boxedInput = nil
			cs.partRanges = nil
		case *logical.ParallelizeSource:
			// Inline rows are part of the plan; keep slots + ranges.
		default:
			// File-backed source: partitioning depends on the file read at
			// execute time.
			cs.partRanges = nil
		}
	}
	return cp
}

// Stages reports the plan's stage count (observability only).
func (cp *CompiledPlan) Stages() int { return len(cp.stages) }

// Kind reports the plan's sink form.
func (cp *CompiledPlan) Kind() SinkKind { return cp.kind }

// Execute re-runs the compiled plan against its sources under ctx,
// skipping the sample/compile phases entirely. The run uses the options
// the plan was compiled with (partitioning, streaming and columnar
// choices are baked into the compiled artifacts); csvPath optionally
// redirects a CSV sink to a file, exactly like Execute's parameter.
func (cp *CompiledPlan) Execute(ctx context.Context, csvPath string) (*Result, error) {
	return cp.ExecuteLabeled(ctx, csvPath, "")
}

// ExecuteLabeled is Execute with a per-run telemetry label override, so
// a long-lived service can attribute each warm re-execution of a shared
// plan to the job that requested it in /metrics and /runz.
func (cp *CompiledPlan) ExecuteLabeled(ctx context.Context, csvPath, label string) (*Result, error) {
	opts := cp.opts
	if label != "" {
		opts.Telemetry.Label = label
	}
	res := &Result{Metrics: &metrics.Metrics{}}
	t0 := time.Now()
	eng := &engine{ctx: ctx, opts: opts, res: res, sink: cp.kind, tr: trace.New(opts.Trace)}
	if opts.Telemetry.Enabled || telemetry.AutoEnabled() {
		eng.mon = telemetry.NewRunMonitor(opts.Telemetry, res.Metrics, opts.Executors)
		telemetry.Default.Register(eng.mon)
		eng.mon.Start()
		defer func() {
			eng.mon.Stop()
			telemetry.Default.Unregister(eng.mon)
		}()
	}
	eng.tr.Child("plan", 0, trace.Bool("cached", true))
	eng.res.Metrics.Stages = len(cp.stages)
	eng.mon.SetStages(len(cp.stages))

	var cur *mat
	for _, tpl := range cp.stages {
		if err := eng.canceled(); err != nil {
			return nil, err
		}
		var err error
		cur, err = eng.runCachedStage(tpl, cur)
		if err != nil {
			return nil, err
		}
	}
	tSink := time.Now()
	if err := eng.finish(cur, cp.kind, csvPath, res); err != nil {
		return nil, err
	}
	eng.tr.Child("sink", time.Since(tSink),
		trace.Str("kind", sinkName(cp.kind)),
		trace.Int("output_rows", res.Metrics.Counters.OutputRows.Load()))
	res.Metrics.Timings.Total = time.Since(t0)
	res.Warnings = append(res.Warnings, eng.warns.flush()...)
	res.Metrics.Latency = eng.mon.Latency()
	res.Trace = eng.tr.Finish()
	return res, nil
}

// runCachedStage executes one templated stage: clone the per-run state,
// rebind the source to fresh data, then run the shared
// execute-and-resolve path.
func (eng *engine) runCachedStage(tpl *stageTemplate, input *mat) (*mat, error) {
	ssp, restore := eng.beginStage(len(tpl.st.Ops))
	defer restore()
	cs := tpl.cloneForRun(eng)
	if err := eng.rebindSource(cs, tpl.st, input); err != nil {
		return nil, err
	}
	return eng.execAndResolve(cs, ssp)
}

// cloneForRun builds a run-private compiledStage from the template.
// Copied fields are the immutable compile-time artifacts; everything a
// run mutates is either freshly allocated here or rebound by
// rebindSource. The copy is explicit field-by-field (not a struct copy)
// because compiledStage embeds a sync.Pool, and so the set of shared
// fields is auditable in one place.
func (tpl *stageTemplate) cloneForRun(eng *engine) *compiledStage {
	t := tpl.cs
	nc := &compiledStage{
		eng:      eng,
		terminal: t.terminal,
		termOp:   t.termOp,

		parse:      t.parse,
		isText:     t.isText,
		nFields:    t.nFields,
		boxedInput: t.boxedInput,
		inputSlots: t.inputSlots,
		partRanges: t.partRanges,

		inSchema:   t.inSchema,
		outSchema:  t.outSchema,
		nullValues: t.nullValues,
		srcFacts:   t.srcFacts,

		entry:   t.entry,
		batch:   t.batch,
		maxCols: t.maxCols,
		nUDFs:   t.nUDFs,
		sinkCSV: t.sinkCSV,

		aggInit:     t.aggInit,
		aggScalar:   t.aggScalar,
		aggSlotType: t.aggSlotType,

		opNames:      t.opNames,
		traceRows:    t.traceRows,
		traceSamples: t.traceSamples,
		termRouteIdx: t.termRouteIdx,
	}
	// Boxed interpreters are not thread-safe: every run gets a private
	// program (and private resolver interpreters) via the same cloning
	// the parallel resolve phase uses.
	nc.boxed = t.cloneBoxedProgram()
	if nc.traceRows {
		// Fresh routing ledger and fresh boxed-path counters: the clone
		// must not fold its rows into the template's (or a concurrent
		// run's) ledger.
		nc.routing = make([]trace.OpRouting, len(nc.opNames))
		for i, n := range nc.opNames {
			nc.routing[i].Op = n
		}
		for _, op := range nc.boxed {
			if op.stats != nil {
				op.stats = &boxedOpStats{}
			}
		}
	}
	if t.aggUDF != nil {
		// The terminal's compiled aggregate closure reads only
		// su.compiled/su.frameIdx (shared-safe); the boxed form holds an
		// interpreter and must be private.
		su := *t.aggUDF
		if fresh, err := compileBoxedUDF(su.spec); err == nil {
			su.boxed = fresh
		}
		nc.aggUDF = &su
	}
	if t.combUDF != nil {
		if fresh, err := compileBoxedUDF(t.combUDF.spec); err == nil {
			nc.combUDF = fresh
		} else {
			nc.combUDF = t.combUDF
		}
	}
	return nc
}

// rebindSource points a cloned stage at fresh input data: re-open and
// re-read file-backed sources, or wire the previous stage's output. The
// sampling prefix read by a streamed source here feeds execution
// directly — no records are sampled again.
func (eng *engine) rebindSource(cs *compiledStage, st *physical.Stage, input *mat) error {
	switch src := st.Source.(type) {
	case *logical.CSVSource:
		delim := src.Delim
		if delim == 0 {
			delim = ','
		}
		if src.Data == nil && eng.opts.Streaming {
			ss, err := eng.openStreamSource(src.Path, delim, src.Header, csvio.ChunkCSV)
			if err != nil {
				return err
			}
			if len(ss.prefixRecords()) == 0 {
				ss.close()
				return fmt.Errorf("core: empty CSV input %s", src.Path)
			}
			cs.stream = ss
			return nil
		}
		records, _, bytesRead, err := readCSVRecords(src, delim)
		if err != nil {
			return err
		}
		eng.res.Metrics.Ingest.BytesRead.Add(bytesRead)
		if len(records) == 0 {
			return fmt.Errorf("core: empty CSV input %s", src.Path)
		}
		cs.records = records
		cs.partRanges = splitRange(len(records), eng.partSize(len(records)))
	case *logical.TextSource:
		if src.Data == nil && eng.opts.Streaming {
			ss, err := eng.openStreamSource(src.Path, 0, false, csvio.ChunkText)
			if err != nil {
				return err
			}
			cs.stream = ss
			return nil
		}
		lines, bytesRead, err := readTextLines(src)
		if err != nil {
			return err
		}
		eng.res.Metrics.Ingest.BytesRead.Add(bytesRead)
		cs.records = lines
		cs.partRanges = splitRange(len(lines), eng.partSize(len(lines)))
	case *logical.ParallelizeSource:
		// Inline rows travel with the template (inputSlots/partRanges
		// survive the strip); nothing to rebind.
	case nil:
		if input == nil {
			return fmt.Errorf("core: stage without source or input")
		}
		cs.boxedInput = input
		cs.partRanges = make([][2]int, len(input.parts))
		for i, p := range input.parts {
			cs.partRanges[i] = [2]int{0, len(p)}
		}
	default:
		return fmt.Errorf("core: unsupported source %T", st.Source)
	}
	return nil
}
