// Package core is Tuplex's execution engine: it samples inputs, compiles
// each stage's three code paths (normal / general / fallback), runs
// partitions across a pool of executor threads, collects exception rows
// post-facto, resolves them through the slower paths and user resolvers,
// and merges results in input order (§4.3–§4.6).
//
// The three paths and their engines:
//
//   - normal case:   internal/codegen — unboxed slot closures, return-code
//     exceptions ("LLVM fast path");
//   - general case:  internal/interp.Compiled — closure-compiled over
//     boxed values with the most general (Option) column types;
//   - fallback:      internal/interp tree-walking — the "Python
//     interpreter", always able to run any supported UDF.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/metrics"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/sample"
	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
	"github.com/gotuplex/tuplex/internal/types"
)

// Options configures one execution.
type Options struct {
	// Executors is the worker-thread count (the paper's per-server
	// executor threads).
	Executors int
	// PartitionRows caps rows per partition task.
	PartitionRows int
	// Sample configures normal-case detection.
	Sample sample.Config
	// Logical toggles the planner rewrites.
	Logical logical.Options
	// Fusion keeps stages maximal (§6.3.2 ablation when false).
	Fusion bool
	// Codegen configures fast-path generation.
	Codegen codegen.Options
	// Seed seeds per-task PRNGs (random.choice reproducibility).
	Seed uint64
	// Streaming enables chunked pipelined ingest for file-backed sources
	// (§4.4): disk I/O, record splitting, parsing and UDF execution
	// overlap instead of materializing the whole input up front.
	Streaming bool
	// Columnar enables batch execution over column vectors for CSV
	// sources: the generated parser fills typed column vectors directly
	// and map/filter/withColumn/select run as batch kernels with
	// selection vectors (the row-at-a-time path remains for exception
	// rows, later operators and non-CSV sources).
	Columnar bool
	// ChunkSize is the streamed ingest chunk size in bytes (0 uses
	// csvio.DefaultChunkSize).
	ChunkSize int
	// Trace selects the run's observability level (internal/trace). The
	// default, trace.LevelSpans, records the span tree and per-task
	// timings with zero per-row overhead; trace.LevelOff disables the
	// tracer entirely.
	Trace trace.Level
	// Telemetry configures live monitoring (internal/telemetry). Off by
	// default; also forced on while an introspection server is active in
	// the process (telemetry.AutoEnabled).
	Telemetry telemetry.Config
	// Validate runs the whole-plan static verifier at each DataSet
	// operator chain step, failing construction on error-severity
	// findings (internal/plancheck; off by default).
	Validate bool
}

// DefaultOptions returns the fully-optimized single-threaded setup.
func DefaultOptions() Options {
	return Options{
		Executors:     1,
		PartitionRows: 1 << 16,
		Logical:       logical.AllOptimizations(),
		Fusion:        true,
		Codegen:       codegen.DefaultOptions(),
		Seed:          0x745,
		Streaming:     true,
		Columnar:      true,
		ChunkSize:     csvio.DefaultChunkSize,
		Trace:         trace.LevelSpans,
	}
}

func (o Options) withDefaults() Options {
	if o.Executors <= 0 {
		o.Executors = 1
	}
	if o.PartitionRows <= 0 {
		o.PartitionRows = 1 << 16
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = csvio.DefaultChunkSize
	}
	return o
}

// SinkKind selects the pipeline output form.
type SinkKind uint8

const (
	// SinkCollect returns boxed rows in the Result.
	SinkCollect SinkKind = iota
	// SinkCSV renders CSV bytes (and optionally writes them to a path).
	SinkCSV
)

// FailedRow describes an input row no path could process (§3: reported
// to the user, never crashing the pipeline).
type FailedRow struct {
	Exc   pyvalue.ExcKind
	Msg   string
	Input string
}

// Result is the outcome of one pipeline execution.
type Result struct {
	Schema *types.Schema
	// Rows holds boxed output rows. Only aggregate results populate it;
	// collect sinks return SlotRows and leave boxing to the caller.
	Rows [][]pyvalue.Value
	// SlotRows holds collect-sink output as unboxed slot rows in input
	// order; callers box lazily (slab boxing in the public API avoids
	// the per-cell interface allocations a [][]pyvalue.Value forces).
	SlotRows []rows.Row
	CSV      []byte
	Failed  []FailedRow
	Metrics *metrics.Metrics
	// Trace is the run's observability trace (nil when Options.Trace is
	// trace.LevelOff).
	Trace *trace.Trace
	// Warnings carries advisory messages (e.g. the §7 all-exceptions
	// sample warning).
	Warnings []string
}

// ErrCanceled reports that an execution stopped because its context was
// canceled or its deadline expired. Errors returned by the context-aware
// entry points wrap it, so callers test with errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("execution canceled")

// Execute runs the plan rooted at sink.
func Execute(sinkNode *logical.Node, kind SinkKind, csvPath string, opts Options) (*Result, error) {
	return ExecuteContext(context.Background(), sinkNode, kind, csvPath, opts)
}

// ExecuteContext runs the plan rooted at sink under ctx. Cancellation is
// observed at chunk/task boundaries (never per row), so a canceled run
// stops within one partition's worth of work and returns an error
// wrapping ErrCanceled.
func ExecuteContext(ctx context.Context, sinkNode *logical.Node, kind SinkKind, csvPath string, opts Options) (*Result, error) {
	res, _, err := executeWith(ctx, sinkNode, kind, csvPath, opts, false)
	return res, err
}

// CompileAndExecute runs the plan like ExecuteContext and additionally
// captures the compiled stages into a CompiledPlan: the sampled normal
// case, the generated stage closures, the batch plans and the join build
// tables survive the run and can be re-executed against fresh inputs
// with (*CompiledPlan).Execute, skipping sampling and compilation.
func CompileAndExecute(ctx context.Context, sinkNode *logical.Node, kind SinkKind, csvPath string, opts Options) (*Result, *CompiledPlan, error) {
	return executeWith(ctx, sinkNode, kind, csvPath, opts, true)
}

func executeWith(ctx context.Context, sinkNode *logical.Node, kind SinkKind, csvPath string, opts Options, capture bool) (*Result, *CompiledPlan, error) {
	opts = opts.withDefaults()
	res := &Result{Metrics: &metrics.Metrics{}}
	t0 := time.Now()
	eng := &engine{ctx: ctx, opts: opts, res: res, sink: kind, tr: trace.New(opts.Trace), capture: capture}
	// Live monitoring: only when opted in (or an introspection server is
	// up) does a RunMonitor exist — with mon nil every hook below is a
	// nil-receiver no-op and the execution path is the unmonitored one.
	if opts.Telemetry.Enabled || telemetry.AutoEnabled() {
		eng.mon = telemetry.NewRunMonitor(opts.Telemetry, res.Metrics, opts.Executors)
		telemetry.Default.Register(eng.mon)
		eng.mon.Start()
		defer func() {
			eng.mon.Stop()
			telemetry.Default.Unregister(eng.mon)
		}()
	}

	tOpt := time.Now()
	plan := sinkNode
	var err error
	optimized := opts.Logical != (logical.Options{})
	if optimized {
		plan, err = logical.Optimize(sinkNode, opts.Logical)
		if err != nil {
			return nil, nil, err
		}
	}
	res.Metrics.Timings.Optimize = time.Since(tOpt)
	eng.tr.Child("plan", res.Metrics.Timings.Optimize, trace.Bool("optimized", optimized))

	out, err := eng.runChain(plan)
	if err != nil {
		return nil, nil, err
	}
	tSink := time.Now()
	if err := eng.finish(out, kind, csvPath, res); err != nil {
		return nil, nil, err
	}
	eng.tr.Child("sink", time.Since(tSink),
		trace.Str("kind", sinkName(kind)),
		trace.Int("output_rows", res.Metrics.Counters.OutputRows.Load()))
	res.Metrics.Timings.Total = time.Since(t0)
	res.Warnings = append(res.Warnings, eng.warns.flush()...)
	res.Metrics.Latency = eng.mon.Latency()
	res.Trace = eng.tr.Finish()
	var cp *CompiledPlan
	if capture {
		cp = newCompiledPlan(eng)
	}
	return res, cp, nil
}

func sinkName(kind SinkKind) string {
	if kind == SinkCSV {
		return "csv"
	}
	return "collect"
}

// engine carries run-wide state.
type engine struct {
	// ctx is the run's cancellation context (nil means background).
	// Checked at chunk/task boundaries only, never per row.
	ctx  context.Context
	opts Options
	res  *Result
	// capture/captured collect the compiled stages for CompileAndExecute.
	capture  bool
	captured []*stageTemplate
	// sink is the requested output form; the final stage's terminal
	// renders CSV directly when it is SinkCSV.
	sink SinkKind
	// tr is the run tracer (nil when tracing is off); curStage is the
	// span routing/samples attach to, stageSeq a run-wide stage counter.
	tr       *trace.Tracer
	curStage *trace.Span
	stageSeq int
	// mon is the live-monitoring hook (nil when telemetry is off; all
	// its methods are nil-safe).
	mon *telemetry.RunMonitor
	// warns collects advisory messages with per-source caps; Execute
	// flushes it into Result.Warnings.
	warns warnings
}

// canceled returns the run's cancellation error when eng.ctx is done,
// nil otherwise. Call sites sit at partition/chunk/stage boundaries so
// the per-row hot paths stay uninstrumented.
func (eng *engine) canceled() error {
	if eng.ctx == nil {
		return nil
	}
	select {
	case <-eng.ctx.Done():
		return fmt.Errorf("core: %w: %w", ErrCanceled, context.Cause(eng.ctx))
	default:
		return nil
	}
}

// exRow is one pooled exception row awaiting slow-path processing.
type exRow struct {
	part int
	key  uint64
	// vals is the boxed stage-input row (nil when raw is the source
	// record still to be parsed generally).
	vals []pyvalue.Value
	raw  []byte
	ec   pyvalue.ExcKind
	// op is the routing-ledger index of the operator the row raised at
	// (0 = source/parse; rows carried over from a previous stage keep 0).
	op int32
}

// mat is a materialized row set between stages.
type mat struct {
	schema *types.Schema
	// parts/keys are the normal-case rows per partition (keys parallel).
	parts [][]rows.Row
	keys  [][]uint64
	// exceptional rows carry boxed data outside the normal case.
	exceptional []exRow
	// csvParts/csvEnds hold per-partition rendered CSV (streaming sink):
	// csvEnds[i] records the byte offset after each row in csvParts[i].
	csvParts [][]byte
	csvEnds  [][]int
	isCSV    bool
	// delimiter/nullValues propagate source config for exception parsing.
	nullValues []string
	// aggregate terminal result (when the producing stage aggregated).
	aggValue pyvalue.Value
	isAgg    bool
}

// runChain executes the full chain of stages for one plan and returns
// the final materialization.
func (eng *engine) runChain(sinkNode *logical.Node) (*mat, error) {
	pplan, err := physical.Split(sinkNode, physical.Options{Fusion: eng.opts.Fusion})
	if err != nil {
		return nil, err
	}
	eng.res.Metrics.Stages += pplan.NumStages()
	eng.mon.SetStages(eng.res.Metrics.Stages)
	var cur *mat
	for si := range pplan.Stages {
		if err := eng.canceled(); err != nil {
			return nil, err
		}
		st := &pplan.Stages[si]
		cur, err = eng.runStage(st, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// beginStage opens a stage span and points eng.curStage at it; the
// returned func restores the previous current stage (call via defer).
func (eng *engine) beginStage(nops int) (*trace.Span, func()) {
	stageIdx := eng.stageSeq
	eng.stageSeq++
	eng.mon.SetStage(stageIdx)
	ssp := eng.tr.Begin("stage",
		trace.Int("index", int64(stageIdx)),
		trace.Int("ops", int64(nops)))
	prevStage := eng.curStage
	eng.curStage = ssp
	return ssp, func() { eng.curStage = prevStage }
}

// runStage compiles and executes one stage over its input.
func (eng *engine) runStage(st *physical.Stage, input *mat) (*mat, error) {
	ssp, restore := eng.beginStage(len(st.Ops))
	defer restore()

	tCompile := time.Now()
	cs, err := eng.compileStage(st, input)
	if err != nil {
		return nil, err
	}
	dCompile := time.Since(tCompile) - cs.sampleTime
	eng.res.Metrics.Timings.Compile += dCompile
	eng.res.Metrics.Timings.Sample += cs.sampleTime
	if cs.sampleTime > 0 {
		eng.tr.Child("sample", cs.sampleTime)
	}
	eng.tr.Child("compile", dCompile, trace.Int("udfs", int64(cs.nUDFs)))
	if eng.capture {
		eng.captured = append(eng.captured, &stageTemplate{st: st, cs: cs})
	}
	return eng.execAndResolve(cs, ssp)
}

// execAndResolve runs a compiled stage's partitions and the post-facto
// exception-resolution pass, closing the stage span. Shared by the cold
// path (runStage) and the cached path ((*CompiledPlan).Execute).
func (eng *engine) execAndResolve(cs *compiledStage, ssp *trace.Span) (*mat, error) {
	esp := eng.tr.Begin("execute")
	tExec := time.Now()
	bytes0 := eng.res.Metrics.Ingest.BytesRead.Load()
	rows0 := eng.res.Metrics.Counters.InputRows.Load()
	bm := &eng.res.Metrics.Batch
	columnar0, bounced0 := bm.ColumnarRows.Load(), bm.BouncedRows.Load()
	fused0, elided0, checked0 := bm.FusedPasses.Load(), bm.NullElisions.Load(), bm.NullChecked.Load()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	out, err := eng.executeStage(cs)
	if err != nil {
		return nil, err
	}
	dExec := time.Since(tExec)
	runtime.ReadMemStats(&ms)
	eng.res.Metrics.Timings.Execute += dExec
	eng.res.Metrics.Stage = append(eng.res.Metrics.Stage, metrics.StageIngest{
		Stage:    len(eng.res.Metrics.Stage),
		Bytes:    eng.res.Metrics.Ingest.BytesRead.Load() - bytes0,
		Records:  eng.res.Metrics.Counters.InputRows.Load() - rows0,
		Allocs:   int64(ms.Mallocs - mallocs0),
		Duration: dExec,
	})
	// Stage-delta batch-plane attrs: how much of this stage ran
	// column-at-a-time, how much bounced to the row bridge, and whether
	// the no-null kernel variants kicked in.
	if columnar := bm.ColumnarRows.Load() - columnar0; columnar > 0 {
		esp.Add(trace.Int("columnar_rows", columnar),
			trace.Int("bounced_rows", bm.BouncedRows.Load()-bounced0),
			trace.Int("fused_passes", bm.FusedPasses.Load()-fused0),
			trace.Int("null_elisions", bm.NullElisions.Load()-elided0),
			trace.Int("null_checked", bm.NullChecked.Load()-checked0))
	}
	if esp != nil {
		esp.Tasks = eng.taskTimings(cs.tasks)
	}
	eng.tr.End(esp)

	// Post-facto exception resolution (§4.3): general path, then
	// fallback, then user resolvers along the way.
	tRes := time.Now()
	if err := eng.resolveExceptions(cs, out); err != nil {
		return nil, err
	}
	dRes := time.Since(tRes)
	eng.res.Metrics.Timings.Resolve += dRes
	eng.tr.Child("resolve", dRes, trace.Int("pool", int64(cs.poolSize)))
	if eng.tr.Rows() {
		ssp.Routing = cs.mergedRouting()
	}
	if eng.tr.Samples() {
		ssp.Samples = cs.samples
	}
	eng.tr.End(ssp)
	return out, nil
}

// taskTimings converts the stage's finished tasks into span timings.
func (eng *engine) taskTimings(tasks []*task) []trace.TaskTiming {
	if eng.tr == nil {
		return nil
	}
	out := make([]trace.TaskTiming, 0, len(tasks))
	for _, ts := range tasks {
		if ts == nil {
			continue
		}
		out = append(out, trace.TaskTiming{
			Part:    ts.part,
			Worker:  ts.worker,
			Rows:    ts.inRows,
			StartNS: eng.tr.OffsetNS(ts.start),
			DurNS:   ts.dur.Nanoseconds(),
		})
	}
	return out
}

// executeStage drives the partitions through the compiled normal path.
func (eng *engine) executeStage(cs *compiledStage) (*mat, error) {
	if cs.stream != nil {
		return eng.executeStreamed(cs)
	}
	nparts := cs.numPartitions()
	out := &mat{
		schema:     cs.outSchema,
		parts:      make([][]rows.Row, nparts),
		keys:       make([][]uint64, nparts),
		nullValues: cs.nullValues,
		isCSV:      cs.sinkCSV,
	}
	if cs.sinkCSV {
		out.csvParts = make([][]byte, nparts)
		out.csvEnds = make([][]int, nparts)
	}
	workers := eng.opts.Executors
	if workers > nparts {
		workers = nparts
	}
	if workers < 1 {
		workers = 1
	}
	tasks := make([]*task, nparts)
	var wg sync.WaitGroup
	partCh := make(chan int, nparts)
	for p := range nparts {
		partCh <- p
	}
	close(partCh)
	errs := make([]error, workers)
	// stop flags the first worker error so the remaining workers drain
	// partCh without running doomed partitions (fail fast on large
	// inputs).
	var stop atomic.Bool
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := func(context.Context) {
				for p := range partCh {
					if stop.Load() {
						continue
					}
					if err := eng.canceled(); err != nil {
						errs[w] = err
						stop.Store(true)
						continue
					}
					ts := cs.newTask(eng, p)
					ts.worker = w
					tasks[p] = ts
					timed := eng.tr != nil || eng.mon != nil
					if timed {
						ts.start = time.Now()
					}
					eng.mon.TaskStart()
					err := cs.runPartition(ts, p)
					if timed {
						ts.dur = time.Since(ts.start)
					}
					eng.mon.TaskDone(ts.dur)
					if err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
					out.parts[p] = ts.outRows
					out.keys[p] = ts.outKeys
					if ts.csvW != nil {
						out.csvParts[p] = ts.csvW.Take()
						out.csvEnds[p] = ts.lineEnds
					}
				}
			}
			if eng.tr != nil {
				// pprof labels make executor goroutines attributable in CPU
				// profiles (tuplex=executor, stage=N, worker=W).
				pprof.Do(context.Background(), pprof.Labels(
					"tuplex", "executor",
					"stage", strconv.Itoa(eng.stageSeq-1),
					"worker", strconv.Itoa(w)), body)
				return
			}
			body(context.Background())
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Gather exception pools and terminal state.
	for _, ts := range tasks {
		if ts == nil {
			continue
		}
		out.exceptional = append(out.exceptional, ts.pool...)
	}
	cs.tasks = tasks
	if cs.terminal == physical.TerminalAggregate {
		out.isAgg = true
	}
	return out, nil
}

// finish converts the final materialization into the requested sink
// form.
func (eng *engine) finish(out *mat, kind SinkKind, csvPath string, res *Result) error {
	res.Schema = out.schema
	if out.isAgg {
		// Aggregate results: one row holding the accumulator.
		res.Rows = [][]pyvalue.Value{{out.aggValue}}
		if kind == SinkCSV {
			return fmt.Errorf("core: tocsv on an aggregate result is not supported; use collect")
		}
		return nil
	}
	switch kind {
	case SinkCollect:
		merged := eng.mergeOrderedSlots(out)
		eng.res.Metrics.Counters.OutputRows.Add(int64(len(merged)))
		res.SlotRows = merged
		return nil
	case SinkCSV:
		// Rows were rendered inside the partition tasks; stitch buffers
		// per partition in parallel (splicing exception-path rows into
		// position where needed), then concatenate in partition order.
		exByPart := map[int][]exRow{}
		for _, ex := range out.exceptional {
			exByPart[ex.part] = append(exByPart[ex.part], ex)
		}
		stitched := make([][]byte, len(out.csvParts))
		counts := make([]int64, len(out.csvParts))
		eng.parallelFor(len(out.csvParts), func(p int) {
			buf, ends := out.csvParts[p], out.csvEnds[p]
			keysP := out.keys[p]
			exs := exByPart[p]
			if len(exs) == 0 {
				stitched[p] = buf
				counts[p] = int64(len(ends))
				return
			}
			sortExRows(exs)
			pw := csvio.NewWriterBuf(',', getCSVBuf())
			pw.Grow(len(buf) + len(exs)*64)
			i, j := 0, 0
			for i < len(ends) || j < len(exs) {
				if j >= len(exs) || (i < len(ends) && keysP[i] <= exs[j].key) {
					start := 0
					if i > 0 {
						start = ends[i-1]
					}
					pw.WriteRaw(buf[start:ends[i]])
					i++
				} else {
					pw.WriteValues(exs[j].vals)
					j++
				}
				counts[p]++
			}
			stitched[p] = pw.Take()
			putCSVBuf(buf) // task buffer fully copied into pw
		})
		w := newCSVWriterFor(out.schema)
		tot := 0
		for p := range stitched {
			tot += len(stitched[p])
		}
		w.Grow(tot)
		n := int64(0)
		for p := range stitched {
			w.WriteRaw(stitched[p])
			n += counts[p]
			putCSVBuf(stitched[p]) // copied into w; recycle for future tasks
		}
		eng.res.Metrics.Counters.OutputRows.Add(n)
		res.CSV = w.Take()
		if csvPath != "" {
			if err := os.WriteFile(csvPath, res.CSV, 0o644); err != nil {
				return fmt.Errorf("core: writing %s: %w", csvPath, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("core: unknown sink kind %d", kind)
	}
}

// mergeOrderedSlots merges normal and exception-resolved rows back into
// input order (§4.3 "Merge Rows") without boxing: normal rows pass
// through as the slot rows the compiled path produced, exception rows
// unbox once. Partitions merge independently in parallel; the final
// concatenation follows partition order, which is input order.
func (eng *engine) mergeOrderedSlots(out *mat) []rows.Row {
	// Group resolved exceptional rows per partition.
	exByPart := map[int][]exRow{}
	for _, ex := range out.exceptional {
		exByPart[ex.part] = append(exByPart[ex.part], ex)
	}
	perPart := make([][]rows.Row, len(out.parts))
	eng.parallelFor(len(out.parts), func(p int) {
		exs := exByPart[p]
		sortExRows(exs)
		rowsP, keysP := out.parts[p], out.keys[p]
		m := make([]rows.Row, 0, len(rowsP)+len(exs))
		i, j := 0, 0
		for i < len(rowsP) || j < len(exs) {
			if j >= len(exs) || (i < len(rowsP) && keysP[i] <= exs[j].key) {
				m = append(m, rowsP[i])
				i++
			} else {
				m = append(m, rows.RowFromValues(exs[j].vals))
				j++
			}
		}
		perPart[p] = m
	})
	total := 0
	for _, m := range perPart {
		total += len(m)
	}
	merged := make([]rows.Row, 0, total)
	for _, m := range perPart {
		merged = append(merged, m...)
	}
	return merged
}

// parallelFor runs fn over [0, n) across the engine's executor threads.
// fn must only touch index-disjoint state.
func (eng *engine) parallelFor(n int, fn func(i int)) {
	workers := eng.opts.Executors
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range n {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func sortExRows(exs []exRow) {
	// Insertion sort: exception lists are short by design.
	for i := 1; i < len(exs); i++ {
		for j := i; j > 0 && exs[j].key < exs[j-1].key; j-- {
			exs[j], exs[j-1] = exs[j-1], exs[j]
		}
	}
}

func typeOfBoxed(v pyvalue.Value) types.Type {
	switch v := v.(type) {
	case pyvalue.None:
		return types.Null
	case pyvalue.Bool:
		return types.Bool
	case pyvalue.Int:
		return types.I64
	case pyvalue.Float:
		return types.F64
	case pyvalue.Str:
		return types.Str
	case *pyvalue.List:
		var u types.Type
		for _, it := range v.Items {
			u = types.Unify(u, typeOfBoxed(it))
		}
		if !u.IsValid() {
			u = types.Any
		}
		return types.List(u)
	case *pyvalue.Tuple:
		elts := make([]types.Type, len(v.Items))
		for i, it := range v.Items {
			elts[i] = typeOfBoxed(it)
		}
		return types.Tuple(elts...)
	default:
		return types.Any
	}
}
