package core

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/codegen"
	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// makeTerminal builds the stage's final step.
func (cs *compiledStage) makeTerminal() (nstep, error) {
	switch cs.terminal {
	case physical.TerminalSink, physical.TerminalMaterialize:
		if cs.sinkCSV {
			// Render rows straight into the per-task writer — no copy,
			// no boxing. Byte offsets let the engine splice resolved
			// exception rows back into position.
			return func(ts *task, key uint64, row rows.Row) ECode {
				ts.csvW.WriteRow(row)
				ts.lineEnds = append(ts.lineEnds, ts.csvW.Len())
				ts.outKeys = append(ts.outKeys, key)
				return 0
			}, nil
		}
		// Materialize rows with order keys; the engine merges and
		// renders at finish(). Rows copy into the task's slot slab —
		// one amortized backing array per task instead of one heap
		// allocation per output row. Slices are capped so later slab
		// growth can never write through an earlier row's view.
		return func(ts *task, key uint64, row rows.Row) ECode {
			start := len(ts.outSlab)
			ts.outSlab = append(ts.outSlab, row...)
			ts.outRows = append(ts.outRows, ts.outSlab[start:len(ts.outSlab):len(ts.outSlab)])
			ts.outKeys = append(ts.outKeys, key)
			return 0
		}, nil
	case physical.TerminalUnique:
		// Per-task open set over encoded row keys: duplicate rows (the
		// common case) cost one hash lookup and no allocation; the sets
		// merge shard-parallel at finish (mergeUnique).
		return func(ts *task, key uint64, row rows.Row) ECode {
			buf := rows.AppendRowKey(ts.keyBuf[:0], row)
			ts.keyBuf = buf
			ts.uniq.insert(rows.Hash64(buf), buf, row, key)
			return 0
		}, nil
	case physical.TerminalAggregate:
		su := cs.aggUDF
		scalar := cs.aggScalar
		ridx := cs.termRouteIdx
		return func(ts *task, key uint64, row rows.Row) ECode {
			if su == nil || su.compiled == nil {
				ts.excOp = ridx
				return pyvalue.ExcUnsupported
			}
			fr := ts.frames[su.frameIdx]
			arg := rows.Tuple(row)
			if scalar {
				arg = row[0]
			}
			v, ec := su.compiled.Call2(fr, ts.aggSlot, arg)
			if ec != 0 {
				ts.excOp = ridx
				return ec
			}
			ts.aggSlot = v
			return 0
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown terminal %d", cs.terminal)
	}
}

// compileAggregate compiles the aggregate UDF against the accumulator
// and row types, widening the accumulator type to a fixpoint (int
// accumulators often become floats after the first few rows, which the
// normal path must anticipate).
func (eng *engine) compileAggregate(cs *compiledStage, agg *logical.AggregateOp, schema *types.Schema) error {
	cs.aggInit = agg.Initial
	bu, err := compileBoxedUDF(agg.Agg)
	if err != nil {
		return err
	}
	var comb *boxedUDF
	if agg.Comb != nil {
		comb, err = compileBoxedUDF(agg.Comb)
		if err != nil {
			return err
		}
	}
	cs.combUDF = comb

	su := &stageUDF{spec: agg.Agg, boxed: bu}
	accT := typeOfBoxed(agg.Initial)
	rowT := types.Row(schema)
	if schema.Len() == 1 && len(agg.Agg.Access.ByName) == 0 {
		rowT = schema.Col(0).Type
		cs.aggScalar = true
	}
	globalTypes := map[string]types.Type{}
	for k, v := range agg.Agg.Globals {
		globalTypes[k] = typeOfBoxed(v)
	}
	for range 3 {
		info, err := inference.TypeFunction(agg.Agg.Fn, []types.Type{accT, rowT}, globalTypes, inference.Options{})
		if err != nil {
			break // wrong arity etc: boxed-only aggregation
		}
		if !info.Compilable() {
			break
		}
		ret := info.ReturnType
		if types.Equal(ret, accT) {
			u, cerr := codegen.Compile(info, agg.Agg.Globals, eng.opts.Codegen)
			if cerr == nil {
				su.compiled = u
			}
			break
		}
		widened := types.Unify(ret, accT)
		if types.Equal(widened, accT) || widened.Kind() == types.KindAny {
			break
		}
		accT = widened
	}
	su.frameIdx = cs.nUDFs - 1 // the frame slot reserved for the terminal
	cs.aggUDF = su
	cs.aggSlotType = accT
	return nil
}

// newCSVWriterFor returns a writer with the schema's header already
// written.
func newCSVWriterFor(schema *types.Schema) *csvio.Writer {
	w := csvio.NewWriter(',')
	if schema != nil {
		w.WriteHeader(schema.Names())
	}
	return w
}

// coerceSlot converts a slot to the widened accumulator type so the
// compiled aggregate's monomorphic code reads the right union member.
func coerceSlot(s rows.Slot, t types.Type) rows.Slot {
	switch t.Unwrap().Kind() {
	case types.KindF64:
		switch s.Tag {
		case types.KindI64:
			return rows.F64(float64(s.I))
		case types.KindBool:
			if s.B {
				return rows.F64(1)
			}
			return rows.F64(0)
		}
	case types.KindI64:
		if s.Tag == types.KindBool {
			if s.B {
				return rows.I64(1)
			}
			return rows.I64(0)
		}
	}
	return s
}
