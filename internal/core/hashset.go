package core

import (
	"bytes"
	"sort"

	"github.com/gotuplex/tuplex/internal/rows"
)

// uniqSet is an open hash set over encoded row keys (internal/rows
// AppendRowKey), used per task by the unique terminal and per shard by
// the finish-time merge. Duplicate rows — the common case for unique —
// cost one map lookup plus one bytes.Equal and no allocation; only the
// first occurrence of a key copies the key bytes and the row. Entries
// with colliding 64-bit hashes chain through next indices into ents.
type uniqSet struct {
	idx  map[uint64]int32
	ents []uniqEntry
}

type uniqEntry struct {
	h   uint64
	key []byte
	row rows.Row
	// ord is the row's order key; the merged output keeps, per distinct
	// key, the row with the smallest ord (first in input order).
	ord  uint64
	next int32
}

func newUniqSet() *uniqSet {
	return &uniqSet{idx: map[uint64]int32{}}
}

// find returns the entry index for (h, key) or -1.
func (u *uniqSet) find(h uint64, key []byte) int32 {
	i, ok := u.idx[h]
	if !ok {
		return -1
	}
	for i >= 0 {
		if u.ents[i].h == h && bytes.Equal(u.ents[i].key, key) {
			return i
		}
		i = u.ents[i].next
	}
	return -1
}

// insert adds (h, key, row, ord) if the key is absent and reports
// whether it inserted. key is copied; row is copied via rows.CopyRow
// (nil rows stay nil — the exception-dedup index stores keys only).
func (u *uniqSet) insert(h uint64, key []byte, row rows.Row, ord uint64) bool {
	if u.find(h, key) >= 0 {
		return false
	}
	head, had := u.idx[h]
	next := int32(-1)
	if had {
		next = head
	}
	var rcopy rows.Row
	if row != nil {
		rcopy = rows.CopyRow(row)
	}
	u.ents = append(u.ents, uniqEntry{h: h, key: append([]byte(nil), key...), row: rcopy, ord: ord, next: next})
	u.idx[h] = int32(len(u.ents) - 1)
	return true
}

// mergeEntry folds one already-encoded entry into the set, keeping the
// smallest ord per key. The entry's key and row are referenced, not
// copied — merge inputs outlive the merged set.
func (u *uniqSet) mergeEntry(e *uniqEntry) {
	if i := u.find(e.h, e.key); i >= 0 {
		if e.ord < u.ents[i].ord {
			u.ents[i].row = e.row
			u.ents[i].ord = e.ord
		}
		return
	}
	head, had := u.idx[e.h]
	next := int32(-1)
	if had {
		next = head
	}
	u.ents = append(u.ents, uniqEntry{h: e.h, key: e.key, row: e.row, ord: e.ord, next: next})
	u.idx[e.h] = int32(len(u.ents) - 1)
}

// uniqIndex is the merged, sharded unique set produced at finish. The
// exception-resolution path probes and extends it (serially) to
// deduplicate slow-path rows against the normal-path output.
type uniqIndex struct {
	shards []*uniqSet
	mask   uint64
	buf    []byte
}

// addRow encodes a boxed-origin row, inserts its key, and reports
// whether the row was new.
func (ui *uniqIndex) addRow(r rows.Row) bool {
	buf := rows.AppendRowKey(ui.buf[:0], r)
	ui.buf = buf
	h := rows.Hash64(buf)
	return ui.shards[h&ui.mask].insert(h, buf, nil, 0)
}

// mergeUnique folds per-task unique sets into the output mat,
// shard-parallel: phase 1 buckets each task's entries by hash shard,
// phase 2 merges each shard across tasks (keeping the smallest order key
// per row), and the surviving entries sort back into input order. It
// returns the merged index for exception deduplication.
func (eng *engine) mergeUnique(cs *compiledStage, out *mat) *uniqIndex {
	nshards := shardCount(eng.opts.Executors)
	mask := uint64(nshards - 1)

	tasks := make([]*task, 0, len(cs.tasks))
	for _, ts := range cs.tasks {
		if ts != nil && ts.uniq != nil {
			tasks = append(tasks, ts)
		}
	}

	// Phase 1 — task-parallel: bucket entry indexes by shard.
	perTask := make([][][]int32, len(tasks))
	eng.parallelFor(len(tasks), func(t int) {
		byShard := make([][]int32, nshards)
		for i := range tasks[t].uniq.ents {
			s := tasks[t].uniq.ents[i].h & mask
			byShard[s] = append(byShard[s], int32(i))
		}
		perTask[t] = byShard
	})

	// Phase 2 — shard-parallel merge.
	shards := make([]*uniqSet, nshards)
	eng.parallelFor(nshards, func(s int) {
		us := newUniqSet()
		for t := range tasks {
			ents := tasks[t].uniq.ents
			for _, i := range perTask[t][s] {
				us.mergeEntry(&ents[i])
			}
		}
		shards[s] = us
	})

	// Collect survivors and restore input order.
	total := 0
	for _, us := range shards {
		total += len(us.ents)
	}
	type ordered struct {
		row rows.Row
		ord uint64
	}
	entries := make([]ordered, 0, total)
	for _, us := range shards {
		for i := range us.ents {
			entries = append(entries, ordered{row: us.ents[i].row, ord: us.ents[i].ord})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ord < entries[j].ord })
	rowsOut := make([]rows.Row, len(entries))
	keysOut := make([]uint64, len(entries))
	for i, e := range entries {
		rowsOut[i] = e.row
		keysOut[i] = e.ord
	}
	out.parts = [][]rows.Row{rowsOut}
	out.keys = [][]uint64{keysOut}
	return &uniqIndex{shards: shards, mask: mask}
}
