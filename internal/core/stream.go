package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/physical"
	"github.com/gotuplex/tuplex/internal/rows"
)

// Streamed ingest (§4.4, §6.3.2): file-backed sources are not
// materialized up front. A producer goroutine streams record-aligned
// chunks off disk (csvio.ChunkReader) through a bounded channel; each
// chunk becomes one partition, split into records and pushed through the
// compiled normal path by whichever executor picks it up. Disk I/O,
// record splitting, generated parsing and UDF execution overlap, and
// partition count is dynamic — it grows with the input instead of being
// fixed by an upfront scan.
//
// Order keys: a streamed partition p assigns row i the key p<<32|i, so
// keys are monotone in input order both within a partition and across
// partitions (unique terminals and the ordered merge rely on this).

// streamKeyShift positions the partition index above the in-chunk row
// index in streamed order keys.
const streamKeyShift = 32

// streamSource is a chunked file-backed source mid-stream: the sampling
// prefix has been read at compile time, the rest is produced during
// execution.
type streamSource struct {
	prod *chunkProducer
	// prefix holds the chunks consumed while sampling; they are emitted
	// as the first partitions so no byte is read twice.
	prefix []prefixChunk
	// exhausted reports that the prefix covers the whole input.
	exhausted bool
	// headerNames are the column names from the first file's header row.
	headerNames []string
}

type prefixChunk struct {
	chunk *csvio.Chunk
	recs  [][]byte
}

// prefixRecords returns the sampling records (all records of the prefix
// chunks, in input order).
func (ss *streamSource) prefixRecords() [][]byte {
	var out [][]byte
	for _, pc := range ss.prefix {
		out = append(out, pc.recs...)
	}
	return out
}

func (ss *streamSource) close() {
	for _, pc := range ss.prefix {
		pc.chunk.Release()
	}
	ss.prefix = nil
	ss.prod.close()
}

// openStreamSource opens a (possibly multi-file) source for chunked
// ingest and reads just enough prefix chunks to sample the normal case.
func (eng *engine) openStreamSource(pathSpec string, delim byte, header bool, mode csvio.ChunkMode) (*streamSource, error) {
	paths := strings.Split(pathSpec, ",")
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	if eng.mon != nil {
		// Known input size gives the progress view an ETA; the stat is
		// skipped entirely on unmonitored runs.
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				eng.mon.AddTotalBytes(fi.Size())
			}
		}
	}
	size := eng.opts.ChunkSize
	if size <= 0 {
		size = csvio.DefaultChunkSize
	}
	prod := &chunkProducer{
		paths: paths,
		mode:  mode,
		delim: delim,
		strip: header,
		size:  size,
		pool:  csvio.NewChunkPool(size),
	}
	ss := &streamSource{prod: prod}
	if mode == csvio.ChunkText {
		// Text sources have a fixed schema; no sampling prefix needed.
		return ss, nil
	}
	need := eng.mkSampleCfg(nil).WithDefaults().Size
	have := 0
	for have < need {
		c, err := prod.next()
		if err != nil {
			ss.close()
			return nil, err
		}
		if c == nil {
			ss.exhausted = true
			break
		}
		recs := csvio.SplitRecords(c.Data)
		ss.prefix = append(ss.prefix, prefixChunk{chunk: c, recs: recs})
		have += len(recs)
	}
	ss.headerNames = prod.headerNames
	return ss, nil
}

// chunkProducer iterates record-aligned chunks over a list of files,
// stripping each file's header record when asked. Chunks never span
// files (matching the materialized per-file record split).
type chunkProducer struct {
	paths []string
	mode  csvio.ChunkMode
	delim byte
	strip bool
	size  int
	pool  *sync.Pool

	fileIdx     int
	f           *os.File
	cr          *csvio.ChunkReader
	firstOfFile bool
	headerNames []string
	closedBytes int64
}

// next returns the next chunk, (nil, nil) after the last file, or a read
// error.
func (p *chunkProducer) next() (*csvio.Chunk, error) {
	for {
		if p.cr == nil {
			if p.fileIdx >= len(p.paths) {
				return nil, nil
			}
			f, err := os.Open(p.paths[p.fileIdx])
			if err != nil {
				return nil, fmt.Errorf("core: reading %s: %w", p.paths[p.fileIdx], err)
			}
			p.f = f
			p.cr = csvio.NewChunkReader(f, p.mode, p.size, p.pool)
			p.firstOfFile = true
		}
		c, err := p.cr.Next()
		if errors.Is(err, io.EOF) {
			p.closedBytes += p.cr.BytesRead()
			p.f.Close()
			p.f, p.cr = nil, nil
			p.fileIdx++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: reading %s: %w", p.paths[p.fileIdx], err)
		}
		if p.firstOfFile {
			p.firstOfFile = false
			if p.strip {
				cut := csvio.SkipFirstRecord(c.Data, p.mode)
				if p.headerNames == nil {
					p.headerNames = csvio.SplitCells(trimRecord(c.Data[:cut]), p.delim, nil)
				}
				c.Data = c.Data[cut:]
				if len(c.Data) == 0 {
					// Header-only chunk (or header-only file).
					c.Release()
					continue
				}
			}
		}
		return c, nil
	}
}

// bytesRead reports raw bytes consumed across all files so far.
func (p *chunkProducer) bytesRead() int64 {
	n := p.closedBytes
	if p.cr != nil {
		n += p.cr.BytesRead()
	}
	return n
}

func (p *chunkProducer) close() {
	if p.f != nil {
		p.f.Close()
		p.f, p.cr = nil, nil
	}
}

// trimRecord drops a record's trailing newline / CRLF.
func trimRecord(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// chunkTask is one streamed partition in flight.
type chunkTask struct {
	part  int
	chunk *csvio.Chunk
	// recs is the pre-split record list for prefix chunks (nil when the
	// worker should split).
	recs [][]byte
}

// executeStreamed drives a streamed source stage: one producer reading
// chunks, opts.Executors workers consuming them through a bounded
// channel. The first worker error (or producer error) stops the
// producer and drains the channel so large inputs fail fast.
func (eng *engine) executeStreamed(cs *compiledStage) (*mat, error) {
	ss := cs.stream
	defer ss.prod.close()

	workers := eng.opts.Executors
	if workers < 1 {
		workers = 1
	}
	taskCh := make(chan chunkTask, workers)
	var stop atomic.Bool
	var prodErr error

	go func() {
		defer close(taskCh)
		// The sampling prefix was already read off disk; publish those
		// bytes before queueing so a sampler never observes processed
		// rows with zero ingest progress (the batch kernels finish the
		// first chunks faster than the producer reads the next one).
		eng.mon.StoreStreamBytes(ss.prod.bytesRead())
		part := 0
		for _, pc := range ss.prefix {
			if stop.Load() {
				pc.chunk.Release()
				continue
			}
			taskCh <- chunkTask{part: part, chunk: pc.chunk, recs: pc.recs}
			part++
		}
		ss.prefix = nil
		for !ss.exhausted && !stop.Load() {
			if err := eng.canceled(); err != nil {
				prodErr = err
				stop.Store(true)
				return
			}
			c, err := ss.prod.next()
			if err != nil {
				prodErr = err
				stop.Store(true)
				return
			}
			if c == nil {
				return
			}
			// Publish in-flight bytes so the sampler sees ingest progress
			// before the stage folds it into the shared counter below.
			eng.mon.StoreStreamBytes(ss.prod.bytesRead())
			taskCh <- chunkTask{part: part, chunk: c}
			part++
		}
	}()

	var mu sync.Mutex
	var tasks []*task
	var workErr error
	recordsSplit := int64(0)

	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := func(context.Context) {
				for t := range taskCh {
					if stop.Load() {
						t.chunk.Release()
						continue
					}
					if err := eng.canceled(); err != nil {
						t.chunk.Release()
						mu.Lock()
						if workErr == nil {
							workErr = err
						}
						mu.Unlock()
						stop.Store(true)
						continue
					}
					recs := t.recs
					if recs == nil {
						if cs.isText {
							recs = splitPlainLines(t.chunk.Data)
						} else {
							recs = csvio.SplitRecords(t.chunk.Data)
						}
					}
					ts := cs.newTask(eng, t.part)
					ts.worker = w
					timed := eng.tr != nil || eng.mon != nil
					if timed {
						ts.start = time.Now()
					}
					eng.mon.TaskStart()
					err := cs.runRecords(ts, t.part, recs, uint64(t.part)<<streamKeyShift, true)
					if timed {
						ts.dur = time.Since(ts.start)
					}
					eng.mon.TaskDone(ts.dur)
					t.chunk.Release()
					mu.Lock()
					if err != nil {
						if workErr == nil {
							workErr = err
						}
						stop.Store(true)
					} else {
						for t.part >= len(tasks) {
							tasks = append(tasks, nil)
						}
						tasks[t.part] = ts
						recordsSplit += int64(len(recs))
					}
					mu.Unlock()
				}
			}
			if eng.tr != nil {
				pprof.Do(context.Background(), pprof.Labels(
					"tuplex", "executor",
					"stage", strconv.Itoa(eng.stageSeq-1),
					"worker", strconv.Itoa(w)), body)
				return
			}
			body(context.Background())
		}(w)
	}
	wg.Wait()
	if prodErr != nil {
		return nil, prodErr
	}
	if workErr != nil {
		return nil, workErr
	}
	// Reset the in-flight counter before folding the stage's bytes into
	// the shared ingest counter: a sampler tick between the two lines
	// undercounts briefly instead of double-counting.
	eng.mon.StoreStreamBytes(0)
	eng.res.Metrics.Ingest.BytesRead.Add(ss.prod.bytesRead())
	eng.res.Metrics.Ingest.RecordsSplit.Add(recordsSplit)

	// Assemble the dynamic partitions into a materialization.
	nparts := len(tasks)
	out := &mat{
		schema:     cs.outSchema,
		parts:      make([][]rows.Row, nparts),
		keys:       make([][]uint64, nparts),
		nullValues: cs.nullValues,
		isCSV:      cs.sinkCSV,
	}
	if cs.sinkCSV {
		out.csvParts = make([][]byte, nparts)
		out.csvEnds = make([][]int, nparts)
	}
	for p, ts := range tasks {
		if ts == nil {
			return nil, fmt.Errorf("core: streamed partition %d missing", p)
		}
		out.parts[p] = ts.outRows
		out.keys[p] = ts.outKeys
		if ts.csvW != nil {
			out.csvParts[p] = ts.csvW.Take()
			out.csvEnds[p] = ts.lineEnds
		}
		out.exceptional = append(out.exceptional, ts.pool...)
	}
	cs.tasks = tasks
	if cs.terminal == physical.TerminalAggregate {
		out.isAgg = true
	}
	return out, nil
}
