package plancheck_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
)

// TestValidateCleanPlansCompile is the verifier's soundness
// differential: any plan Validate passes without errors must build
// against this binary's operator set, and — when its sources are inline
// — run end to end without a top-level failure. Rows may still route to
// the exception path (that is dual-mode execution working, e.g. the
// always-raising corpus map); what must never happen is a clean verdict
// followed by a schema or compilation error.
func TestValidateCleanPlansCompile(t *testing.T) {
	var plans []struct {
		name   string
		plan   *tuplex.Plan
		inline bool
	}

	specs, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, filepath.Join("..", "..", "testdata", "plan_full.json"))
	for _, sp := range specs {
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tuplex.ParsePlan(data)
		if err != nil {
			continue // accumulated decode errors: corpus for TPX000
		}
		plans = append(plans, struct {
			name   string
			plan   *tuplex.Plan
			inline bool
		}{filepath.Base(sp), p, !strings.Contains(string(data), `"path"`)})
	}
	for name, p := range paperPlans(t) {
		plans = append(plans, struct {
			name   string
			plan   *tuplex.Plan
			inline bool
		}{"paper/" + name, p, true})
	}

	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			hasError := false
			for _, d := range tuplex.Validate(tc.plan) {
				if d.Severity == "error" {
					hasError = true
				}
			}
			if hasError {
				t.Skip("plan has validation errors; rejection is the contract")
			}
			if err := tc.plan.Validate(); err != nil {
				t.Fatalf("Validate-clean plan failed to build: %v", err)
			}
			if !tc.inline {
				return // file-backed sources may not exist in the test env
			}
			if _, err := tc.plan.Run(context.Background()); err != nil {
				t.Fatalf("Validate-clean plan failed to run: %v", err)
			}
		})
	}
}
