package plancheck

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/spec"
)

// liveEvent is one operator's read/write summary, recorded during the
// forward walk and replayed backwards by deadWrites. inNames is the
// operator's input column set (nil when the schema was open at that
// point).
type liveEvent struct {
	path      string
	kind      string
	ord       int
	inNames   []string
	col       string   // withColumn/mapColumn target, renameColumn old
	renamedTo string   // renameColumn new
	reads     []string // columns the op's UDF reads by name
	readsAll  bool     // whole-row/positional/unknown access: reads everything
	sel       []string // selectColumns projection list
}

// deadWrites runs a backward liveness pass over one chain's events: a
// column is live when some later operator or the sink reads it. A
// withColumn/mapColumn whose target is provably never read before being
// dropped or overwritten is a TPX006 dead write. The pass is
// conservative in exactly one direction — whenever reads are unknown
// (open schema, whole-row access, unknown op) everything becomes live —
// so it never reports a false dead write.
func (c *checker) deadWrites(events []liveEvent, final absSchema, p *spec.Pipeline, top bool) {
	live := map[string]bool{}
	allLive := final.open
	if !allLive {
		for _, n := range final.names() {
			live[n] = true
		}
	}
	if top && p.Sink.Kind == "aggregate" {
		// The fold may read any column; its access set is not threaded
		// through events, so keep everything live.
		allLive = true
	}

	markAll := func(ev *liveEvent) {
		if ev.inNames == nil {
			allLive = true
			return
		}
		for _, n := range ev.inNames {
			live[n] = true
		}
	}
	markReads := func(ev *liveEvent) {
		if ev.readsAll {
			markAll(ev)
			return
		}
		for _, n := range ev.reads {
			live[n] = true
		}
	}

	for i := len(events) - 1; i >= 0; i-- {
		ev := &events[i]
		switch ev.kind {
		case "withColumn":
			if !allLive && ev.col != "" && !live[ev.col] {
				c.addAt(ev.ord, CodeDeadWrite, SevWarning, ev.path, ev.kind,
					"column %q is written here but never read before being dropped or overwritten", ev.col)
			}
			if ev.col != "" {
				delete(live, ev.col)
			}
			markReads(ev)

		case "mapColumn":
			if !allLive && ev.col != "" && !live[ev.col] {
				c.addAt(ev.ord, CodeDeadWrite, SevWarning, ev.path, ev.kind,
					"column %q is rewritten here but never read before being dropped or overwritten", ev.col)
			}
			markReads(ev) // reads includes the target column itself

		case "map":
			// The map's output replaces the whole row: only its own reads
			// are live upstream of it.
			live = map[string]bool{}
			allLive = false
			markReads(ev)

		case "filter", "resolve", "ignore":
			markReads(ev)

		case "renameColumn":
			if ev.col != "" && ev.renamedTo != "" && !allLive {
				if live[ev.renamedTo] {
					delete(live, ev.renamedTo)
					live[ev.col] = true
				}
			} else if allLive {
				// Everything stays live; nothing to rewrite.
			}

		case "selectColumns":
			// Columns not in the projection cannot be read downstream.
			kept := map[string]bool{}
			for _, n := range ev.sel {
				if allLive || live[n] {
					kept[n] = true
				}
			}
			live = kept
			allLive = false

		case "join", "unique", "aggregate":
			// Conservative: keys, hash inputs and fold inputs may touch any
			// column.
			markAll(ev)

		case "cache":
			// Pure materialization: liveness unchanged.

		default:
			allLive = true
		}
	}
}

// addAt appends a diagnostic stamped with an explicit document order, so
// backward-pass findings sort to their operator's position.
func (c *checker) addAt(ord int, code string, sev Severity, op, kind, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Code: code, Severity: sev, Op: op, Kind: kind,
		Msg: fmt.Sprintf(format, args...), ord: ord,
	})
}
