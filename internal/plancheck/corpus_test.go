package plancheck_test

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gotuplex/tuplex/internal/plancheck"
	"github.com/gotuplex/tuplex/internal/spec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// corpusDir is the shared adversarial spec corpus, also exercised by
// `make plancheck` and the service's /v1/validate tests.
const corpusDir = "../../testdata/plancheck"

// checkFile runs the verifier over one corpus spec, mapping
// accumulated decode problems to TPX000 the way the service does.
func checkFile(t *testing.T, path string) []plancheck.Diagnostic {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Decode(data)
	if err != nil {
		var de *spec.DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("decode %s: %v", path, err)
		}
		var diags []plancheck.Diagnostic
		for _, prob := range de.Problems {
			diags = append(diags, plancheck.Diagnostic{
				Code: plancheck.CodeDecode, Severity: plancheck.SevError, Msg: prob,
			})
		}
		return diags
	}
	return plancheck.Check(p)
}

// TestAdversarialCorpusGoldens pins every diagnostic the corpus
// produces — codes, severities and op/line attribution — against golden
// files, one per spec.
func TestAdversarialCorpusGoldens(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no corpus specs in %s (err=%v)", corpusDir, err)
	}
	for _, sp := range specs {
		name := strings.TrimSuffix(filepath.Base(sp), ".json")
		t.Run(name, func(t *testing.T) {
			diags := checkFile(t, sp)
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			golden := strings.TrimSuffix(sp, ".json") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestCorpusCoversEveryCode asserts the adversarial corpus exercises
// every diagnostic code the verifier can emit, so no code ships without
// a golden pinning its text and attribution.
func TestCorpusCoversEveryCode(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		for _, d := range checkFile(t, sp) {
			seen[d.Code] = true
		}
	}
	all := []string{
		plancheck.CodeDecode, plancheck.CodeUndefinedColumn, plancheck.CodeJoinKeyMismatch,
		plancheck.CodeAlwaysRaises, plancheck.CodeDeadResolver, plancheck.CodeConstantFilter,
		plancheck.CodeDeadWrite, plancheck.CodeOrphanResolver, plancheck.CodeNoopOperator,
		plancheck.CodeNoopOption, plancheck.CodeMalformedSpec, plancheck.CodeUnknownSchema,
	}
	for _, code := range all {
		if !seen[code] {
			t.Errorf("no corpus spec produces %s", code)
		}
	}
}
