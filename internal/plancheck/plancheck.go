// Package plancheck is a sample-free static verifier for pipeline
// specs: an abstract interpreter that walks the full operator DAG of a
// decoded spec.Pipeline — source, every operator (join build sides
// included) and the sink — propagating per-column abstract schemas
// (column name sets plus internal/types lattice types seeded at ⊤
// instead of sample statistics) and reusing the internal/dataflow
// transfer functions over each UDF's typed AST.
//
// Where the engine's dual-mode compiler proves per-UDF facts from a
// data sample at run time, plancheck proves whole-plan facts from the
// spec alone: no input is read beyond a bounded CSV header peek, no UDF
// is compiled and nothing executes. That makes it cheap enough to run
// on every service submission (fail-fast admission), at DataSet
// construction, and in CI over spec corpora.
//
// Diagnostics carry stable TPX0xx codes and are severity-graded:
// errors are defects that would fail compilation or execution
// deterministically (undefined column, incompatible join keys,
// malformed spec), warnings are provable logic defects that execute but
// almost certainly do not mean what the author intended (always-raising
// UDF, dead resolver, constant filter, dead column write), and infos
// are no-ops worth knowing about. Because type seeding starts at ⊤,
// every fact the checker derives is sound for all inputs: plancheck
// never reports a false undefined column or a false dead write on a
// plan the engine would accept.
package plancheck

import (
	"fmt"
	"sort"

	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/types"
)

// Severity grades a diagnostic. The service rejects submissions only on
// SevError; warnings and infos flow back to the client but do not block
// admission.
type Severity string

const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
	SevInfo    Severity = "info"
)

// Stable diagnostic codes. Codes are part of the wire contract: tests,
// clients and CI gates match on them, so they never change meaning.
const (
	// CodeDecode marks a spec that failed strict decoding (unknown
	// field, unknown kind, bad version). Emitted by the service layer
	// from spec.DecodeError; Check itself never sees undecodable input.
	CodeDecode = "TPX000"
	// CodeUndefinedColumn: an operator references a column that does not
	// exist in its input schema.
	CodeUndefinedColumn = "TPX001"
	// CodeJoinKeyMismatch: the probe and build key columns have types
	// that cannot unify (e.g. str vs i64) — the join can never match.
	CodeJoinKeyMismatch = "TPX002"
	// CodeAlwaysRaises: a UDF expression provably raises every time it
	// is evaluated (e.g. a constant 1/0).
	CodeAlwaysRaises = "TPX003"
	// CodeDeadResolver: a resolve()/ignore() names an exception the
	// preceding UDF provably cannot raise.
	CodeDeadResolver = "TPX004"
	// CodeConstantFilter: a filter condition is constantly true (no-op)
	// or constantly false (drops every row).
	CodeConstantFilter = "TPX005"
	// CodeDeadWrite: a column is written but never read before a sink
	// (overwritten, dropped by a projection, or shadowed by a map).
	CodeDeadWrite = "TPX006"
	// CodeOrphanResolver: a resolve()/ignore() has no preceding UDF
	// operator to attach to — compilation rejects the plan.
	CodeOrphanResolver = "TPX007"
	// CodeNoopOperator: an operator that provably does nothing
	// (identity selectColumns, renameColumn to the same name).
	CodeNoopOperator = "TPX008"
	// CodeNoopOption: an option or sink configuration with no effect
	// (chunk_size with streaming disabled, take(0)).
	CodeNoopOption = "TPX009"
	// CodeMalformedSpec: a structural defect Build would reject (missing
	// udf/col/keys, unknown kind, unparsable UDF, bad sink).
	CodeMalformedSpec = "TPX010"
	// CodeUnknownSchema: the source's column set cannot be determined
	// statically (unreadable path, headerless CSV without columns);
	// downstream column checks are suppressed rather than guessed.
	CodeUnknownSchema = "TPX011"
)

// Diagnostic is one finding, attributed to a spec location (op path)
// and, for UDF-level findings, a line:col position inside the UDF
// source.
type Diagnostic struct {
	// Code is the stable TPX0xx identifier.
	Code string `json:"code"`
	// Severity is error, warning or info.
	Severity Severity `json:"severity"`
	// Op locates the finding in the spec: "source", "ops[2]",
	// "ops[1].build.ops[0]", "sink" or "options".
	Op string `json:"op,omitempty"`
	// Kind is the operator/source/sink kind at Op, when applicable.
	Kind string `json:"kind,omitempty"`
	// Pos is the line:col inside the UDF source for UDF-level findings.
	Pos string `json:"pos,omitempty"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`

	ord int // document order for stable sorting
}

func (d Diagnostic) String() string {
	loc := d.Op
	if d.Pos != "" {
		loc += " @" + d.Pos
	}
	if loc != "" {
		loc = " " + loc
	}
	return fmt.Sprintf("%s %s%s: %s", d.Code, d.Severity, loc, d.Msg)
}

// HasErrors reports whether any diagnostic is SevError — the admission
// gate's question.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// Check statically verifies a decoded pipeline and returns every
// diagnostic, sorted by spec position. A nil/empty result means the
// plan is clean: it will not fail compilation with a schema error, and
// no provable logic defect was found.
func Check(p *spec.Pipeline) []Diagnostic {
	c := &checker{}
	if p == nil {
		c.add(Diagnostic{Code: CodeMalformedSpec, Severity: SevError, Msg: "nil pipeline"})
		return c.diags
	}
	c.pipeline(p, "", true)
	sort.SliceStable(c.diags, func(i, j int) bool {
		if c.diags[i].ord != c.diags[j].ord {
			return c.diags[i].ord < c.diags[j].ord
		}
		return c.diags[i].Code < c.diags[j].Code
	})
	return c.diags
}

// checker accumulates diagnostics across the walk. ord stamps document
// order so liveness findings (computed in a second, backward pass)
// still sort to their op's position.
type checker struct {
	diags []Diagnostic
	ord   int
}

func (c *checker) add(d Diagnostic) {
	d.ord = c.ord
	c.diags = append(c.diags, d)
}

// addf is the common emit path: code+severity at an op path.
func (c *checker) addf(code string, sev Severity, op, kind, pos, format string, args ...any) {
	c.add(Diagnostic{Code: code, Severity: sev, Op: op, Kind: kind, Pos: pos,
		Msg: fmt.Sprintf(format, args...)})
}

// pipeline walks one chain (the top-level pipeline or a join build
// side) and returns its output abstract schema. top gates sink and
// options checks, which nested build pipelines do not have.
func (c *checker) pipeline(p *spec.Pipeline, prefix string, top bool) absSchema {
	c.ord++
	cur := c.sourceSchema(&p.Source, prefix+"source")

	var events []liveEvent
	// lastUDF carries the most recent map/filter/withColumn/mapColumn
	// analysis for resolver attachment, mirroring the engine's lastUDF
	// (which intervening rename/select/join ops do not reset).
	var lastUDF *udfResult
	var lastUDFIn absSchema
	sawUDFOp := false

	for i := range p.Ops {
		op := &p.Ops[i]
		c.ord++
		path := fmt.Sprintf("%sops[%d]", prefix, i)
		ev := liveEvent{path: path, kind: op.Kind, ord: c.ord, inNames: cur.names()}

		switch op.Kind {
		case "map":
			u := c.requireUDF(op, cur, path)
			if u != nil && u.spec != nil {
				c.checkRowAccess(u, cur, path, op.Kind)
			}
			lastUDF, lastUDFIn, sawUDFOp = u, cur, true
			ev.reads, ev.readsAll = udfReads(u, cur)
			cur = c.mapOutputSchema(u, cur)

		case "filter":
			u := c.requireUDF(op, cur, path)
			if u != nil && u.spec != nil {
				c.checkRowAccess(u, cur, path, op.Kind)
				c.checkConstantFilter(u, path)
			}
			lastUDF, lastUDFIn, sawUDFOp = u, cur, true
			ev.reads, ev.readsAll = udfReads(u, cur)

		case "withColumn":
			u := c.requireUDF(op, cur, path)
			if op.Col == "" {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "withColumn needs col")
			}
			if u != nil && u.spec != nil {
				c.checkRowAccess(u, cur, path, op.Kind)
			}
			lastUDF, lastUDFIn, sawUDFOp = u, cur, true
			ev.col = op.Col
			ev.reads, ev.readsAll = udfReads(u, cur)
			if !cur.open && op.Col != "" {
				cur = closedSchema(cur.sch.WithColumn(op.Col, returnType(u)))
			}

		case "mapColumn":
			if op.Col == "" {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "mapColumn needs col")
			}
			colT := types.Any
			colKnown := false
			if !cur.open && op.Col != "" {
				if idx, ok := cur.sch.Lookup(op.Col); ok {
					colT, colKnown = cur.sch.Col(idx).Type, true
				} else {
					c.addf(CodeUndefinedColumn, SevError, path, op.Kind, "",
						"mapColumn: no column %q in %s", op.Col, cur.sch)
				}
			}
			var u *udfResult
			if op.UDF == nil {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "mapColumn needs a udf")
			} else {
				u = c.analyzeScalarUDF(op.UDF, colT, path, op.Kind)
			}
			lastUDF, lastUDFIn, sawUDFOp = u, cur, true
			if cur.open || colKnown {
				// Only record the write when the target exists; a missing
				// column already got TPX001 and a dead-write report on top
				// would be cascade noise.
				ev.col = op.Col
				ev.reads = []string{op.Col}
			}
			if colKnown {
				cur = closedSchema(cur.sch.WithColumn(op.Col, returnType(u)))
			}

		case "renameColumn":
			if op.Old == "" || op.New == "" {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "renameColumn needs old and new")
				break
			}
			if op.Old == op.New {
				c.addf(CodeNoopOperator, SevInfo, path, op.Kind, "",
					"renaming column %q to itself is a no-op", op.Old)
			}
			ev.col, ev.renamedTo = op.Old, op.New
			if !cur.open {
				ns, err := cur.sch.Rename(op.Old, op.New)
				if err != nil {
					c.addf(CodeUndefinedColumn, SevError, path, op.Kind, "",
						"renameColumn: no column %q in %s", op.Old, cur.sch)
				} else {
					cur = closedSchema(ns)
				}
			}

		case "selectColumns":
			if len(op.Cols) == 0 {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "selectColumns needs cols")
				break
			}
			ev.sel = op.Cols
			if !cur.open {
				missing := false
				var kept []types.Column
				for _, name := range op.Cols {
					if idx, ok := cur.sch.Lookup(name); ok {
						kept = append(kept, cur.sch.Col(idx))
					} else {
						missing = true
						c.addf(CodeUndefinedColumn, SevError, path, op.Kind, "",
							"selectColumns: no column %q in %s", name, cur.sch)
					}
				}
				if !missing && identitySelect(op.Cols, cur.sch) {
					c.addf(CodeNoopOperator, SevInfo, path, op.Kind, "",
						"selectColumns keeps every column in its current order; the projection is a no-op")
				}
				cur = closedSchema(types.NewSchema(kept))
			}

		case "resolve", "ignore":
			if !sawUDFOp {
				c.addf(CodeOrphanResolver, SevError, path, op.Kind, "",
					"%s() without a preceding UDF operator (map/filter/withColumn/mapColumn) to attach to", op.Kind)
			}
			exc, excOK := spec.ExcKindFor(op.Exc)
			if !excOK {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "",
					"unknown exception class %q", op.Exc)
			}
			if op.Kind == "resolve" {
				if op.UDF == nil {
					c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "resolve needs a udf")
				} else if u := c.parseUDF(op.UDF, path, op.Kind); u != nil {
					// The resolver re-runs over the failing op's input row.
					c.checkRowAccess(u, lastUDFIn, path, op.Kind)
					ev.reads, ev.readsAll = udfReads(u, lastUDFIn)
				}
			}
			if excOK && sawUDFOp && lastUDF != nil && lastUDF.clean() &&
				!lastUDF.flow.MayRaise(exc) {
				c.addf(CodeDeadResolver, SevWarning, path, op.Kind, "",
					"%s(%s): the preceding UDF provably cannot raise %s; the handler is dead",
					op.Kind, op.Exc, op.Exc)
			}

		case "join":
			buildSchema := absSchema{open: true}
			if op.Build == nil {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "join needs a build pipeline")
			} else {
				buildSchema = c.pipeline(op.Build, path+".build.", false)
			}
			if op.LeftKey == "" || op.RightKey == "" {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "join needs left_key and right_key")
				cur = absSchema{open: true}
				break
			}
			lt, ltOK := cur.colType(op.LeftKey)
			if !cur.open && !ltOK {
				c.addf(CodeUndefinedColumn, SevError, path, op.Kind, "",
					"join: no probe-side column %q in %s", op.LeftKey, cur.sch)
			}
			rt, rtOK := buildSchema.colType(op.RightKey)
			if !buildSchema.open && !rtOK {
				c.addf(CodeUndefinedColumn, SevError, path, op.Kind, "",
					"join: build side has no column %q in %s", op.RightKey, buildSchema.sch)
			}
			if ltOK && rtOK {
				lk, rk := lt.Unwrap(), rt.Unwrap()
				if lk.IsValid() && rk.IsValid() &&
					lk.Kind() != types.KindAny && rk.Kind() != types.KindAny &&
					lk.Kind() != types.KindNull && rk.Kind() != types.KindNull &&
					types.Unify(lk, rk).Kind() == types.KindAny {
					c.addf(CodeJoinKeyMismatch, SevError, path, op.Kind, "",
						"join keys can never match: probe %q is %s, build %q is %s",
						op.LeftKey, lt, op.RightKey, rt)
				}
			}
			cur = joinSchema(cur, buildSchema, op)

		case "aggregate":
			if op.Agg == nil || op.Comb == nil {
				c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "aggregate needs agg and comb UDFs")
			} else {
				c.checkAggregate(op.Agg, op.Comb, op.Initial, cur, path, op.Kind)
			}
			// Everything folds into the accumulator; nothing schema-like
			// survives for downstream ops.
			cur = absSchema{open: true}

		case "unique", "cache":
			// Schema unchanged.

		default:
			c.addf(CodeMalformedSpec, SevError, path, op.Kind, "",
				"unknown op kind %q", op.Kind)
			cur = absSchema{open: true}
		}
		events = append(events, ev)
	}

	if top {
		c.checkSink(p, cur, prefix)
		c.checkOptions(p, prefix)
	}
	c.deadWrites(events, cur, p, top)
	return cur
}

// identitySelect reports whether cols is exactly the schema's column
// list in order — a projection that does nothing.
func identitySelect(cols []string, sch *types.Schema) bool {
	if len(cols) != sch.Len() {
		return false
	}
	for i, name := range cols {
		if sch.Col(i).Name != name {
			return false
		}
	}
	return true
}

// checkSink validates the terminal action and analyzes aggregate-sink
// UDFs.
func (c *checker) checkSink(p *spec.Pipeline, cur absSchema, prefix string) {
	c.ord++
	path := prefix + "sink"
	switch p.Sink.Kind {
	case "", "collect", "csv":
	case "take":
		if p.Sink.N < 0 {
			c.addf(CodeMalformedSpec, SevError, path, "take", "",
				"take sink needs n >= 0, got %d", p.Sink.N)
		} else if p.Sink.N == 0 {
			c.addf(CodeNoopOption, SevInfo, path, "take", "",
				"take(0) returns no rows; the whole pipeline's output is discarded")
		}
	case "aggregate":
		if p.Sink.Agg == nil || p.Sink.Comb == nil {
			c.addf(CodeMalformedSpec, SevError, path, "aggregate", "",
				"aggregate sink needs both agg and comb UDFs")
			return
		}
		c.checkAggregate(p.Sink.Agg, p.Sink.Comb, p.Sink.Initial, cur, path, "aggregate")
	default:
		c.addf(CodeMalformedSpec, SevError, path, p.Sink.Kind, "",
			"unknown sink kind %q", p.Sink.Kind)
	}
}

// checkOptions flags option combinations that provably do nothing.
func (c *checker) checkOptions(p *spec.Pipeline, prefix string) {
	o := p.Options
	if o == nil {
		return
	}
	c.ord++
	path := prefix + "options"
	if o.ChunkSize > 0 && o.Streaming != nil && !*o.Streaming {
		c.addf(CodeNoopOption, SevInfo, path, "", "",
			"chunk_size=%d has no effect with streaming disabled", o.ChunkSize)
	}
	if o.SampleSize > 0 && o.SampleSize < 2 {
		c.addf(CodeNoopOption, SevInfo, path, "", "",
			"sample_size=%d gives the sampler a single row; normal-case inference degenerates", o.SampleSize)
	}
}
