package plancheck_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

// paperPlans builds the five paper evaluation pipelines (Appendix A /
// §6.1) over inline synthetic data, exactly as the integration tests
// run them.
func paperPlans(t *testing.T) map[string]*tuplex.Plan {
	t.Helper()
	c := tuplex.NewContext()
	plans := map[string]*tuplex.Plan{}
	add := func(name string, ds *tuplex.DataSet) {
		t.Helper()
		p, err := ds.Plan()
		if err != nil {
			t.Fatalf("%s: Plan: %v", name, err)
		}
		plans[name] = p
	}

	zillow := data.Zillow(data.ZillowConfig{Rows: 200, Seed: 42, DirtyFraction: 0.01})
	add("zillow", pipelines.Zillow(c.CSV("", tuplex.CSVData(zillow))))

	perf := data.Flights(data.FlightsConfig{Rows: 200, Seed: 11})
	in := pipelines.FlightsSources(c, perf, data.Carriers(), data.Airports())
	add("flights", pipelines.Flights(in))

	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 200, Seed: 5})
	add("weblogs", pipelines.Weblogs(
		c.Text("", tuplex.TextData(logs)),
		c.CSV("", tuplex.CSVData(bad)),
		pipelines.WeblogStrip))

	svc := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 200, Seed: 9})
	add("311", pipelines.ThreeOneOne(c.CSV("", tuplex.CSVData(svc))))

	q6 := data.TPCHLineitem(data.TPCHConfig{Rows: 200, Seed: 13})
	q6ds := c.CSV("", tuplex.CSVData(q6))
	p, err := q6ds.Plan()
	if err != nil {
		t.Fatalf("q6: Plan: %v", err)
	}
	plans["q6"] = p.WithAggregateSink(
		tuplex.UDF(fmt.Sprintf(
			"lambda acc, r: acc + r['l_extendedprice'] * r['l_discount'] if (r['l_shipdate'] >= %d and r['l_shipdate'] < %d and 0.05 <= r['l_discount'] <= 0.07 and r['l_quantity'] < 24) else acc",
			data.Q6DateLo, data.Q6DateHi)),
		tuplex.UDF("lambda a, b: a + b"),
		0.0)
	return plans
}

// TestPaperPipelinesValidateClean pins the verifier's zero-false-
// positive contract: all five paper pipelines validate with zero
// diagnostics, checked against golden files so any future finding on
// them is an explicit, reviewed change.
func TestPaperPipelinesValidateClean(t *testing.T) {
	for name, p := range paperPlans(t) {
		t.Run(name, func(t *testing.T) {
			diags := tuplex.Validate(p)
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			golden := filepath.Join("testdata", "paper", name+".golden")
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed for %s:\ngot:\n%swant:\n%s", name, got, want)
			}
			if len(diags) != 0 {
				t.Errorf("paper pipeline %s must validate clean, got %d diagnostics", name, len(diags))
			}
		})
	}
}
