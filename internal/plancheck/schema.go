package plancheck

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/types"
)

// absSchema is the abstract schema flowing through the walk: a closed
// column list with lattice types, or "open" when the column set cannot
// be determined statically. Open schemas suppress downstream
// name-resolution checks — the checker never guesses, so it never
// reports a false undefined column.
type absSchema struct {
	open bool
	sch  *types.Schema
}

func closedSchema(s *types.Schema) absSchema { return absSchema{sch: s} }

// names returns the column names (nil when open).
func (a absSchema) names() []string {
	if a.open || a.sch == nil {
		return nil
	}
	return a.sch.Names()
}

// colType looks up a column's lattice type. ok is false when the
// schema is open or the column is absent.
func (a absSchema) colType(name string) (types.Type, bool) {
	if a.open || a.sch == nil {
		return types.Any, false
	}
	idx, ok := a.sch.Lookup(name)
	if !ok {
		return types.Any, false
	}
	return a.sch.Col(idx).Type, true
}

// headerPeekLimit bounds how much of a file-backed CSV source the
// checker reads to learn column names. Validation must stay cheap: one
// bounded read, never a scan.
const headerPeekLimit = 64 << 10

// sourceSchema derives the abstract input schema for a spec source.
// CSV columns are seeded at ⊤ (types.Any): without running the sampler
// there is no evidence for anything narrower. Parallelize rows carry
// literal values in the spec itself, so their types are exact — a
// static fact of the program text, not a sample.
func (c *checker) sourceSchema(s *spec.Source, path string) absSchema {
	switch s.Kind {
	case "csv":
		return c.csvSchema(s, path)
	case "text":
		col := s.Column
		if col == "" {
			col = "value"
		}
		if s.Path == "" && s.Data == "" {
			c.addf(CodeMalformedSpec, SevError, path, s.Kind, "", "text source needs path or data")
		}
		return closedSchema(types.NewSchema([]types.Column{{Name: col, Type: types.Str}}))
	case "parallelize":
		return c.parallelizeSchema(s, path)
	default:
		c.addf(CodeMalformedSpec, SevError, path, s.Kind, "",
			"unknown source kind %q", s.Kind)
		return absSchema{open: true}
	}
}

func (c *checker) csvSchema(s *spec.Source, path string) absSchema {
	delim := byte(',')
	if s.Delim != "" {
		if len(s.Delim) != 1 {
			c.addf(CodeMalformedSpec, SevError, path, s.Kind, "",
				"csv delim must be one character, got %q", s.Delim)
		} else {
			delim = s.Delim[0]
		}
	}
	if s.Path == "" && s.Data == "" {
		c.addf(CodeMalformedSpec, SevError, path, s.Kind, "", "csv source needs path or data")
		return absSchema{open: true}
	}
	header := s.Header == nil || *s.Header

	var names []string
	switch {
	case len(s.Columns) > 0:
		names = s.Columns
	default:
		line, ok := c.firstLine(s, path)
		if !ok {
			return absSchema{open: true}
		}
		cells := csvio.SplitCells(line, delim, nil)
		if header {
			names = append([]string(nil), cells...)
		} else {
			// Headerless without explicit columns: the engine names them
			// positionally, and so do we.
			names = make([]string, len(cells))
			for i := range cells {
				names[i] = fmt.Sprintf("_%d", i)
			}
		}
	}
	cols := make([]types.Column, len(names))
	for i, n := range names {
		cols[i] = types.Column{Name: n, Type: types.Any} // ⊤: no sample, no evidence
	}
	return closedSchema(types.NewSchema(cols))
}

// firstLine returns the first record line of a CSV source: from inline
// data, or a bounded peek at the first file of a path list. A failed
// peek emits TPX011 and reports !ok (open schema downstream).
func (c *checker) firstLine(s *spec.Source, path string) ([]byte, bool) {
	if s.Data != "" {
		line, ok := splitFirstLine([]byte(s.Data))
		if !ok {
			c.addf(CodeUnknownSchema, SevInfo, path, s.Kind, "",
				"csv data is empty; column set unknown, downstream column checks skipped")
			return nil, false
		}
		return line, true
	}
	first := s.Path
	if i := strings.IndexByte(first, ','); i >= 0 {
		first = first[:i]
	}
	first = strings.TrimSpace(first)
	f, err := os.Open(first)
	if err != nil {
		c.addf(CodeUnknownSchema, SevInfo, path, s.Kind, "",
			"cannot peek csv header of %s (%v); column set unknown, downstream column checks skipped", first, err)
		return nil, false
	}
	defer f.Close()
	buf := make([]byte, headerPeekLimit)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		c.addf(CodeUnknownSchema, SevInfo, path, s.Kind, "",
			"cannot peek csv header of %s (%v); column set unknown, downstream column checks skipped", first, err)
		return nil, false
	}
	line, ok := splitFirstLine(buf[:n])
	if !ok {
		c.addf(CodeUnknownSchema, SevInfo, path, s.Kind, "",
			"no complete header line in the first %d bytes of %s; column set unknown", headerPeekLimit, first)
		return nil, false
	}
	return line, true
}

// splitFirstLine extracts the first newline-terminated line (CR
// stripped). ok is false for empty input; input without any newline is
// accepted as a single-line file.
func splitFirstLine(data []byte) ([]byte, bool) {
	if len(data) == 0 {
		return nil, false
	}
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	return bytes.TrimSuffix(data, []byte{'\r'}), true
}

func (c *checker) parallelizeSchema(s *spec.Source, path string) absSchema {
	if len(s.Rows) == 0 {
		c.addf(CodeMalformedSpec, SevError, path, s.Kind, "", "parallelize source needs rows")
		return absSchema{open: true}
	}
	// Column count: the widest common width, matching the sampler's
	// majority vote closely enough for static purposes (mismatched rows
	// route to the exception path at run time either way).
	width := 0
	for _, r := range s.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	cols := make([]types.Column, width)
	for i := range cols {
		var u types.Type
		for _, r := range s.Rows {
			if i < len(r) {
				u = types.Unify(u, typeOfValue(r[i]))
			}
		}
		if !u.IsValid() {
			u = types.Any
		}
		name := fmt.Sprintf("_%d", i)
		if i < len(s.Columns) {
			name = s.Columns[i]
		}
		cols[i] = types.Column{Name: name, Type: u}
	}
	return closedSchema(types.NewSchema(cols))
}

// typeOfValue types a wire value (decoded JSON) in the lattice — exact,
// because the value is part of the spec text.
func typeOfValue(v any) types.Type {
	switch v := spec.BoxValue(v).(type) {
	case pyvalue.None:
		return types.Null
	case pyvalue.Bool:
		return types.Bool
	case pyvalue.Int:
		return types.I64
	case pyvalue.Float:
		return types.F64
	case pyvalue.Str:
		return types.Str
	case *pyvalue.List:
		var u types.Type
		for _, it := range v.Items {
			u = types.Unify(u, typeOfValue(it))
		}
		if !u.IsValid() {
			u = types.Any
		}
		return types.List(u)
	default:
		return types.Any
	}
}

// joinSchema mirrors the engine's join output layout: probe columns
// with the left prefix, then build columns minus the build key with the
// right prefix (Option-wrapped for left joins, which pad unmatched
// probe rows with None).
func joinSchema(probe, build absSchema, op *spec.Op) absSchema {
	if probe.open || build.open {
		return absSchema{open: true}
	}
	cols := make([]types.Column, 0, probe.sch.Len()+build.sch.Len())
	for i := 0; i < probe.sch.Len(); i++ {
		col := probe.sch.Col(i)
		cols = append(cols, types.Column{Name: op.LeftPrefix + col.Name, Type: col.Type})
	}
	keyIdx, _ := build.sch.Lookup(op.RightKey)
	for i := 0; i < build.sch.Len(); i++ {
		if i == keyIdx {
			continue
		}
		col := build.sch.Col(i)
		t := col.Type
		if op.Left {
			t = types.Option(t)
		}
		cols = append(cols, types.Column{Name: op.RightPrefix + col.Name, Type: t})
	}
	return closedSchema(types.NewSchema(cols))
}
