package plancheck

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/dataflow"
	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/logical"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/types"
)

// udfResult is one UDF's static analysis under ⊤-seeded types: the
// parsed spec, and — when the function types cleanly against the
// abstract input schema — the inference and dataflow results.
type udfResult struct {
	spec   *logical.UDFSpec
	info   *inference.Info
	flow   *dataflow.Result
	scalar bool
}

// clean reports whether every fact the analysis derived is trustworthy:
// the function typed without failures and contains no constructs the
// analysis models as "could raise anything". Dead-resolver and
// return-type conclusions are only drawn from clean results.
func (u *udfResult) clean() bool {
	return u != nil && u.info != nil && len(u.info.Failed) == 0 &&
		u.flow != nil && !u.flow.MayRaise(pyvalue.ExcUnsupported)
}

// returnType is the UDF's proven return type, or ⊤ when unproven.
func returnType(u *udfResult) types.Type {
	if u.clean() {
		return u.info.ReturnType
	}
	return types.Any
}

// requireUDF parses and analyzes an operator's UDF against its input
// row schema, emitting TPX010 when the UDF is missing or unparsable.
func (c *checker) requireUDF(op *spec.Op, in absSchema, path string) *udfResult {
	if op.UDF == nil {
		c.addf(CodeMalformedSpec, SevError, path, op.Kind, "", "%s needs a udf", op.Kind)
		return nil
	}
	u := c.parseUDF(op.UDF, path, op.Kind)
	if u == nil {
		return nil
	}
	c.analyze(u, in, path, op.Kind)
	return u
}

// parseUDF parses UDF source + globals; parse failures are TPX010
// errors (Build would reject the spec identically).
func (c *checker) parseUDF(u *spec.UDF, path, kind string) *udfResult {
	var globals map[string]pyvalue.Value
	if len(u.Globals) > 0 {
		globals = make(map[string]pyvalue.Value, len(u.Globals))
		for k, v := range u.Globals {
			globals[k] = spec.BoxValue(v)
		}
	}
	s, err := logical.ParseUDF(u.Code, globals)
	if err != nil {
		c.addf(CodeMalformedSpec, SevError, path, kind, "", "unparsable UDF: %v", err)
		return nil
	}
	return &udfResult{spec: s}
}

// analyze types the UDF against the abstract input schema and runs the
// dataflow analysis with type-only (⊤-seeded) column facts — the same
// transfer functions the engine seeds from sample statistics, minus the
// sample. Provable always-raising expressions surface as TPX003.
func (c *checker) analyze(u *udfResult, in absSchema, path, kind string) {
	if in.open || in.sch == nil {
		return // unknown inputs: no facts worth deriving
	}
	scalar, paramT := rowParamStyle(u.spec.Access, in.sch)
	u.scalar = scalar
	var colFacts []dataflow.ColFact
	if scalar {
		colFacts = []dataflow.ColFact{{Type: in.sch.Col(0).Type}}
	} else {
		colFacts = make([]dataflow.ColFact, in.sch.Len())
		for i := range colFacts {
			colFacts[i] = dataflow.ColFact{Type: in.sch.Col(i).Type}
		}
	}
	c.analyzeTyped(u, []types.Type{paramT}, colFacts, path, kind)
}

// analyzeScalarUDF analyzes a mapColumn UDF, which always receives the
// named column's bare value.
func (c *checker) analyzeScalarUDF(su *spec.UDF, colT types.Type, path, kind string) *udfResult {
	u := c.parseUDF(su, path, kind)
	if u == nil {
		return nil
	}
	u.scalar = true
	c.analyzeTyped(u, []types.Type{colT}, []dataflow.ColFact{{Type: colT}}, path, kind)
	return u
}

// analyzeTyped runs inference + dataflow with explicit parameter types
// and column facts, surfacing provable raise sites.
func (c *checker) analyzeTyped(u *udfResult, paramTypes []types.Type, colFacts []dataflow.ColFact, path, kind string) {
	globalTypes := map[string]types.Type{}
	for k, v := range u.spec.Globals {
		globalTypes[k] = typeOfBoxed(v)
	}
	info, err := inference.TypeFunction(u.spec.Fn, paramTypes, globalTypes, inference.Options{})
	if err != nil {
		return // structural mismatch (wrong arity): boxed-only at run time
	}
	u.info = info
	u.flow = dataflow.Analyze(info, dataflow.Options{
		Columns:   colFacts,
		NullFacts: true,
		Globals:   u.spec.Globals,
	})
	c.reportRaises(u, path, kind)
}

// reportRaises surfaces the dataflow's always-raises proofs as TPX003.
// Only the dataflow's own dep-free constant proofs (e.g. a literal 1//0)
// are sound under ⊤ seeding; the inference layer also marks failed
// nodes as raising, but under ⊤ a node like `x.find(...)` on an
// Any-typed value "raises" only for the types the sample would have
// ruled out — reporting those would flag every paper pipeline. Failed
// nodes are identified by position and skipped.
func (c *checker) reportRaises(u *udfResult, path, kind string) {
	failedPos := map[string]bool{}
	for n := range u.info.Failed {
		failedPos[n.Pos().String()] = true
	}
	for _, l := range u.flow.Lints() {
		if l.Code != "always-raises" || failedPos[l.Pos.String()] {
			continue
		}
		c.addf(CodeAlwaysRaises, SevWarning, path, kind, l.Pos.String(),
			"UDF provably raises on every row: %s", l.Msg)
	}
}

// rowParamStyle mirrors the engine's paramStyle: a single-column schema
// whose UDF does not address that column by name passes the bare cell
// value; everything else passes the row.
func rowParamStyle(acc *pyast.ColumnAccess, sch *types.Schema) (scalar bool, paramT types.Type) {
	if sch.Len() == 1 {
		if acc != nil && len(acc.ByName) > 0 {
			if _, ok := sch.Lookup(acc.ByName[0]); ok {
				return false, types.Row(sch)
			}
		}
		return true, sch.Col(0).Type
	}
	return false, types.Row(sch)
}

// checkRowAccess verifies every column the UDF addresses exists in its
// input schema (TPX001). Scalar-parameter UDFs are skipped: their
// subscripts address the cell value, not columns.
func (c *checker) checkRowAccess(u *udfResult, in absSchema, path, kind string) {
	if u == nil || u.spec == nil || u.spec.Access == nil || in.open || in.sch == nil {
		return
	}
	acc := u.spec.Access
	if scalar, _ := rowParamStyle(acc, in.sch); scalar {
		return
	}
	for _, name := range acc.ByName {
		if _, ok := in.sch.Lookup(name); !ok {
			c.addf(CodeUndefinedColumn, SevError, path, kind, "",
				"UDF references column %q, which does not exist in %s", name, in.sch)
		}
	}
	for _, idx := range acc.ByIndex {
		if idx < 0 || idx >= in.sch.Len() {
			c.addf(CodeUndefinedColumn, SevError, path, kind, "",
				"UDF references column index %d, out of range for the %d-column schema %s",
				idx, in.sch.Len(), in.sch)
		}
	}
}

// checkConstantFilter flags filters whose every return value is a
// proven constant of one truthiness: constantly true keeps every row (a
// no-op), constantly false drops all of them. Only clean analyses are
// trusted — a failed or raising path could change the outcome.
func (c *checker) checkConstantFilter(u *udfResult, path string) {
	if !u.clean() {
		return
	}
	var rets []*pyast.Return
	pyast.InspectStmts(u.info.Fn.Body, func(n pyast.Node) bool {
		if r, ok := n.(*pyast.Return); ok && r.X != nil {
			rets = append(rets, r)
		}
		return true
	})
	if len(rets) == 0 {
		return
	}
	truth, any := false, false
	for _, r := range rets {
		t, ok := u.flow.ConstantTruth(r.X)
		if !ok {
			return
		}
		if any && t != truth {
			return // mixed constant outcomes: path-dependent, not constant
		}
		truth, any = t, true
	}
	if truth {
		c.addf(CodeConstantFilter, SevWarning, path, "filter", "",
			"filter condition is constantly true; the filter keeps every row and is a no-op")
	} else {
		c.addf(CodeConstantFilter, SevWarning, path, "filter", "",
			"filter condition is constantly false; the filter drops every row")
	}
}

// checkAggregate analyzes an aggregate fold (operator or sink): the agg
// UDF types as (acc, row) and the combiner as (acc, acc), both seeded
// from the literal initial value — exact, since it is spec text.
func (c *checker) checkAggregate(agg, comb *spec.UDF, initial any, in absSchema, path, kind string) {
	accT := typeOfValue(initial)
	ua := c.parseUDF(agg, path, kind)
	uc := c.parseUDF(comb, path, kind)
	if ua != nil && !in.open && in.sch != nil {
		rowT := types.Row(in.sch)
		if in.sch.Len() == 1 && (ua.spec.Access == nil || len(ua.spec.Access.ByName) == 0) {
			rowT = in.sch.Col(0).Type
		}
		c.analyzeTyped(ua, []types.Type{accT, rowT}, nil, path, kind)
	}
	if uc != nil {
		c.analyzeTyped(uc, []types.Type{accT, accT}, nil, path, kind)
	}
}

// udfReads summarizes a UDF's column reads for the liveness pass.
// readsAll is the conservative answer for whole-row, positional or
// unanalyzable access.
func udfReads(u *udfResult, in absSchema) (reads []string, readsAll bool) {
	if u == nil || u.spec == nil || u.spec.Access == nil {
		return nil, true
	}
	acc := u.spec.Access
	if acc.WholeRow || len(acc.ByIndex) > 0 {
		return nil, true
	}
	if !in.open && in.sch != nil {
		if scalar, _ := rowParamStyle(acc, in.sch); scalar {
			return []string{in.sch.Col(0).Name}, false
		}
	}
	return acc.ByName, false
}

// typeOfBoxed types a boxed Python value in the lattice (globals,
// aggregate initial values).
func typeOfBoxed(v pyvalue.Value) types.Type {
	switch v := v.(type) {
	case pyvalue.None:
		return types.Null
	case pyvalue.Bool:
		return types.Bool
	case pyvalue.Int:
		return types.I64
	case pyvalue.Float:
		return types.F64
	case pyvalue.Str:
		return types.Str
	case *pyvalue.List:
		var u types.Type
		for _, it := range v.Items {
			u = types.Unify(u, typeOfBoxed(it))
		}
		if !u.IsValid() {
			u = types.Any
		}
		return types.List(u)
	case *pyvalue.Tuple:
		elts := make([]types.Type, len(v.Items))
		for i, it := range v.Items {
			elts[i] = typeOfBoxed(it)
		}
		return types.Tuple(elts...)
	default:
		return types.Any
	}
}

// mapOutputSchema derives the schema a map produces, mirroring the
// engine: Row-typed returns carry their own schema, tuples become
// positional columns, and anything else is a single column named by the
// dict-literal output or "value". Unproven returns yield an open
// schema — downstream checks are suppressed rather than guessed.
func (c *checker) mapOutputSchema(u *udfResult, in absSchema) absSchema {
	if !u.clean() {
		return absSchema{open: true}
	}
	rt := u.info.ReturnType
	switch rt.Kind() {
	case types.KindRow:
		return closedSchema(rt.Schema())
	case types.KindTuple:
		elts := rt.Elts()
		cols := make([]types.Column, len(elts))
		for i, t := range elts {
			cols[i] = types.Column{Name: fmt.Sprintf("_%d", i), Type: t}
		}
		return closedSchema(types.NewSchema(cols))
	default:
		name := "value"
		if u.spec.Access != nil && len(u.spec.Access.OutputColumns) == 1 {
			name = u.spec.Access.OutputColumns[0]
		}
		return closedSchema(types.NewSchema([]types.Column{{Name: name, Type: rt}}))
	}
}
