// Package metrics collects the execution statistics Tuplex reports:
// per-path row counts, exception statistics, and phase timings. The
// experiment harness prints these next to every benchmark so the §6
// figures can show exception rates (e.g. the 2.6% general-case rows of
// the flights pipeline).
package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Counters tallies rows by the path that produced them. All fields are
// updated atomically; executors share one Counters per run.
type Counters struct {
	// InputRows is the number of input records read.
	InputRows atomic.Int64
	// NormalRows completed entirely on the compiled normal-case path.
	NormalRows atomic.Int64
	// ClassifierRejects failed the row classifier / generated parser.
	ClassifierRejects atomic.Int64
	// NormalPathExceptions raised while running normal-case code.
	NormalPathExceptions atomic.Int64
	// GeneralResolved were recovered by the compiled general-case path.
	GeneralResolved atomic.Int64
	// FallbackResolved were recovered by the interpreter fallback path.
	FallbackResolved atomic.Int64
	// ResolverResolved were recovered by user-provided resolvers.
	ResolverResolved atomic.Int64
	// IgnoredRows were dropped by user-provided ignore() handlers.
	IgnoredRows atomic.Int64
	// FailedRows could not be processed by any path.
	FailedRows atomic.Int64
	// OutputRows reached the sink.
	OutputRows atomic.Int64
}

// ExceptionRate reports the fraction of input rows that left the normal
// path.
func (c *Counters) ExceptionRate() float64 {
	in := c.InputRows.Load()
	if in == 0 {
		return 0
	}
	return float64(c.ClassifierRejects.Load()+c.NormalPathExceptions.Load()) / float64(in)
}

// Timings records the phases of a run.
type Timings struct {
	Sample   time.Duration
	Optimize time.Duration
	Compile  time.Duration
	Execute  time.Duration
	Resolve  time.Duration
	Total    time.Duration
}

// Metrics bundles counters and timings for one pipeline execution.
type Metrics struct {
	Counters Counters
	Timings  Timings
	// Stages is the number of generated stages.
	Stages int
}

// String renders a compact single-run summary.
func (m *Metrics) String() string {
	var sb strings.Builder
	c := &m.Counters
	fmt.Fprintf(&sb, "rows: in=%d out=%d normal=%d", c.InputRows.Load(), c.OutputRows.Load(), c.NormalRows.Load())
	if n := c.ClassifierRejects.Load(); n > 0 {
		fmt.Fprintf(&sb, " classifier_rejects=%d", n)
	}
	if n := c.NormalPathExceptions.Load(); n > 0 {
		fmt.Fprintf(&sb, " normal_exceptions=%d", n)
	}
	if n := c.GeneralResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " general_resolved=%d", n)
	}
	if n := c.FallbackResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " fallback_resolved=%d", n)
	}
	if n := c.ResolverResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " resolver_resolved=%d", n)
	}
	if n := c.IgnoredRows.Load(); n > 0 {
		fmt.Fprintf(&sb, " ignored=%d", n)
	}
	if n := c.FailedRows.Load(); n > 0 {
		fmt.Fprintf(&sb, " failed=%d", n)
	}
	fmt.Fprintf(&sb, " | sample=%s compile=%s exec=%s resolve=%s total=%s",
		round(m.Timings.Sample), round(m.Timings.Compile), round(m.Timings.Execute),
		round(m.Timings.Resolve), round(m.Timings.Total))
	return sb.String()
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond * 10) }
