// Package metrics collects the execution statistics Tuplex reports:
// per-path row counts, exception statistics, and phase timings. The
// experiment harness prints these next to every benchmark so the §6
// figures can show exception rates (e.g. the 2.6% general-case rows of
// the flights pipeline).
package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Counters tallies rows by the path that produced them. All fields are
// updated atomically; executors share one Counters per run.
type Counters struct {
	// InputRows is the number of input records read.
	InputRows atomic.Int64
	// NormalRows completed entirely on the compiled normal-case path.
	NormalRows atomic.Int64
	// ClassifierRejects failed the row classifier / generated parser.
	ClassifierRejects atomic.Int64
	// NormalPathExceptions raised while running normal-case code.
	NormalPathExceptions atomic.Int64
	// GeneralResolved were recovered by the compiled general-case path.
	GeneralResolved atomic.Int64
	// FallbackResolved were recovered by the interpreter fallback path.
	FallbackResolved atomic.Int64
	// ResolverResolved were recovered by user-provided resolvers.
	ResolverResolved atomic.Int64
	// IgnoredRows were dropped by user-provided ignore() handlers.
	IgnoredRows atomic.Int64
	// FailedRows could not be processed by any path.
	FailedRows atomic.Int64
	// OutputRows reached the sink.
	OutputRows atomic.Int64
}

// ExceptionRate reports the fraction of input rows that left the normal
// path.
func (c *Counters) ExceptionRate() float64 {
	in := c.InputRows.Load()
	if in == 0 {
		return 0
	}
	return float64(c.ClassifierRejects.Load()+c.NormalPathExceptions.Load()) / float64(in)
}

// Ingest tallies the streaming ingest path (§4.4): raw bytes consumed
// from disk and records produced by the chunk boundary scan. Shared by
// the producer and all executors; updated atomically.
type Ingest struct {
	// BytesRead is the raw input bytes consumed (all source files).
	BytesRead atomic.Int64
	// RecordsSplit is the number of records the boundary scan produced.
	RecordsSplit atomic.Int64
}

// Join tallies the sharded hash-join kernels (§4.5). Build-side fields
// accumulate over every build table of the run; probe fields accumulate
// over every probed row (flushed per task, not per row).
type Join struct {
	// BuildTables is the number of join build tables constructed.
	BuildTables atomic.Int64
	// BuildRows is the number of normal-path rows hashed into shards.
	BuildRows atomic.Int64
	// GeneralRows is the number of exception-path build rows kept boxed.
	GeneralRows atomic.Int64
	// ProbeHits / ProbeMisses count probe rows that found / did not find
	// a build match.
	ProbeHits   atomic.Int64
	ProbeMisses atomic.Int64
	// Shards is the per-table shard count (all tables in a run share it).
	Shards atomic.Int64
	// MaxShardRows is the largest shard's row count over all tables.
	MaxShardRows atomic.Int64
}

// ShardBalance reports the largest shard's load relative to a perfectly
// even spread (1.0 = balanced; 0 when no rows were hashed).
func (j *Join) ShardBalance() float64 {
	rows, shards := j.BuildRows.Load(), j.Shards.Load()
	if rows == 0 || shards == 0 {
		return 0
	}
	return float64(j.MaxShardRows.Load()) / (float64(rows) / float64(shards))
}

// HitRate reports the fraction of probed rows that matched.
func (j *Join) HitRate() float64 {
	n := j.ProbeHits.Load() + j.ProbeMisses.Load()
	if n == 0 {
		return 0
	}
	return float64(j.ProbeHits.Load()) / float64(n)
}

// Batch tallies the columnar batch plane: how many rows ran
// column-at-a-time versus bounced to the row bridge at a stage barrier,
// plus kernel-fusion and null-check-elision activity. Flushed per task.
type Batch struct {
	// ColumnarRows counts row×kernel-group passes executed on the batch
	// plane (a row surviving three fused groups counts three times, so
	// the ratio to BouncedRows reflects actual columnar work done).
	ColumnarRows atomic.Int64
	// BouncedRows counts rows that left the batch plane at a stage
	// barrier and finished on the compiled row bridge.
	BouncedRows atomic.Int64
	// FusedPasses counts fused kernel-group executions (one scan over a
	// batch's selection vector, however many adjacent ops it covers).
	FusedPasses atomic.Int64
	// NullElisions / NullChecked count per-batch argument-dispatch
	// decisions: a column bound with the no-null inner loop versus one
	// that kept its per-row null check.
	NullElisions atomic.Int64
	NullChecked  atomic.Int64
}

// ElisionRate reports the fraction of batch argument bindings that
// skipped per-row null checks.
func (b *Batch) ElisionRate() float64 {
	n := b.NullElisions.Load() + b.NullChecked.Load()
	if n == 0 {
		return 0
	}
	return float64(b.NullElisions.Load()) / float64(n)
}

// StageIngest is one stage's throughput figures.
type StageIngest struct {
	// Stage is the stage index within the run.
	Stage int
	// Bytes read from disk during this stage (0 for non-source stages).
	Bytes int64
	// Records consumed as stage input.
	Records int64
	// Allocs is the number of heap allocations during the stage's
	// execute phase (runtime mallocs delta — the hash kernels keep this
	// near-constant per probe/unique row).
	Allocs int64
	// Duration is the stage's execute-phase wall clock.
	Duration time.Duration
}

// RowsPerSec reports stage-input rows per second.
func (s StageIngest) RowsPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Records) / s.Duration.Seconds()
}

// MBPerSec reports raw ingest throughput in MB/s (0 when the stage read
// no bytes).
func (s StageIngest) MBPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / 1e6 / s.Duration.Seconds()
}

// Timings records the phases of a run.
type Timings struct {
	Sample   time.Duration
	Optimize time.Duration
	Compile  time.Duration
	Execute  time.Duration
	Resolve  time.Duration
	Total    time.Duration
}

// LatencySummary reports quantiles of one latency distribution,
// extracted from a telemetry histogram at run end.
type LatencySummary struct {
	// Count is the number of recorded observations.
	Count int64
	// P50 / P90 / P99 are quantiles (upper bucket bound, ≤6.25%
	// relative error); Max is the largest observation's bucket bound.
	P50 time.Duration
	P90 time.Duration
	P99 time.Duration
	Max time.Duration
}

// Latency bundles the run's latency distributions (zero when telemetry
// was off).
type Latency struct {
	// Chunk is per-task processing wall time (one partition or one
	// streamed chunk per observation).
	Chunk LatencySummary
	// Resolve is per-exception-row resolve wall time.
	Resolve LatencySummary
}

// Metrics bundles counters and timings for one pipeline execution.
type Metrics struct {
	Counters Counters
	Timings  Timings
	Ingest   Ingest
	// Join tallies hash-join build and probe activity.
	Join Join
	// Batch tallies columnar batch-plane activity.
	Batch Batch
	// Stage holds per-stage throughput figures in execution order.
	Stage []StageIngest
	// Stages is the number of generated stages.
	Stages int
	// Latency holds telemetry latency quantiles (zero when telemetry
	// was off for the run).
	Latency Latency
}

// String renders a compact single-run summary.
func (m *Metrics) String() string {
	var sb strings.Builder
	c := &m.Counters
	fmt.Fprintf(&sb, "rows: in=%d out=%d normal=%d", c.InputRows.Load(), c.OutputRows.Load(), c.NormalRows.Load())
	if n := c.ClassifierRejects.Load(); n > 0 {
		fmt.Fprintf(&sb, " classifier_rejects=%d", n)
	}
	if n := c.NormalPathExceptions.Load(); n > 0 {
		fmt.Fprintf(&sb, " normal_exceptions=%d", n)
	}
	if n := c.GeneralResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " general_resolved=%d", n)
	}
	if n := c.FallbackResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " fallback_resolved=%d", n)
	}
	if n := c.ResolverResolved.Load(); n > 0 {
		fmt.Fprintf(&sb, " resolver_resolved=%d", n)
	}
	if n := c.IgnoredRows.Load(); n > 0 {
		fmt.Fprintf(&sb, " ignored=%d", n)
	}
	if n := c.FailedRows.Load(); n > 0 {
		fmt.Fprintf(&sb, " failed=%d", n)
	}
	fmt.Fprintf(&sb, " | sample=%s compile=%s exec=%s resolve=%s total=%s",
		round(m.Timings.Sample), round(m.Timings.Compile), round(m.Timings.Execute),
		round(m.Timings.Resolve), round(m.Timings.Total))
	if b := m.Ingest.BytesRead.Load(); b > 0 {
		fmt.Fprintf(&sb, " | ingest: %.1f MB, %d records", float64(b)/1e6, m.Ingest.RecordsSplit.Load())
	}
	if j := &m.Join; j.BuildTables.Load() > 0 {
		fmt.Fprintf(&sb, " | join: build=%d probe_hits=%d probe_misses=%d shards=%d balance=%.2f",
			j.BuildRows.Load(), j.ProbeHits.Load(), j.ProbeMisses.Load(), j.Shards.Load(), j.ShardBalance())
		if n := j.GeneralRows.Load(); n > 0 {
			fmt.Fprintf(&sb, " general=%d", n)
		}
	}
	if b := &m.Batch; b.ColumnarRows.Load() > 0 || b.BouncedRows.Load() > 0 {
		fmt.Fprintf(&sb, " | batch: columnar=%d bounced=%d fused_passes=%d elision=%.2f",
			b.ColumnarRows.Load(), b.BouncedRows.Load(), b.FusedPasses.Load(), b.ElisionRate())
	}
	for _, s := range m.Stage {
		if s.Records == 0 && s.Bytes == 0 {
			continue
		}
		fmt.Fprintf(&sb, " | stage%d: %.0f rows/s", s.Stage, s.RowsPerSec())
		if s.Bytes > 0 {
			fmt.Fprintf(&sb, " %.1f MB/s", s.MBPerSec())
		}
	}
	return sb.String()
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond * 10) }
