package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExceptionRate(t *testing.T) {
	var c Counters
	if c.ExceptionRate() != 0 {
		t.Fatal("empty counters should report 0")
	}
	c.InputRows.Add(1000)
	c.ClassifierRejects.Add(20)
	c.NormalPathExceptions.Add(6)
	if got := c.ExceptionRate(); got != 0.026 {
		t.Fatalf("rate = %v", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.InputRows.Add(1)
				c.NormalRows.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.InputRows.Load() != 8000 || c.NormalRows.Load() != 8000 {
		t.Fatalf("in=%d normal=%d", c.InputRows.Load(), c.NormalRows.Load())
	}
}

func TestStringOmitsZeroSections(t *testing.T) {
	m := &Metrics{}
	m.Counters.InputRows.Add(10)
	m.Counters.NormalRows.Add(10)
	m.Timings.Total = 5 * time.Millisecond
	s := m.String()
	if strings.Contains(s, "failed=") || strings.Contains(s, "resolver_resolved=") {
		t.Fatalf("zero sections rendered: %q", s)
	}
	m.Counters.FailedRows.Add(2)
	if !strings.Contains(m.String(), "failed=2") {
		t.Fatalf("failed count missing: %q", m.String())
	}
}
