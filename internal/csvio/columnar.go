package csvio

import (
	"strings"

	"github.com/gotuplex/tuplex/internal/colvec"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// ParseLineVecs runs the generated parser on one record, appending each
// projected cell directly onto its column vector — the columnar twin of
// ParseLine (one append per cell, zero per-cell boxing). vecs[i] receives
// p.Fields[i]; all vectors must be the same length on entry. On any
// mismatch the vectors are rolled back to their entry length and the
// record's ExcBadParse routes the raw line to the exception pool, exactly
// like the row path. The scan logic must mirror ParseLine byte for byte —
// the csvio equivalence tests enforce this.
//tuplex:kernel
func (p *ParseSpec) ParseLineVecs(line []byte, vecs []*colvec.Vec) pyvalue.ExcKind {
	n0 := 0
	if len(vecs) > 0 {
		n0 = vecs[0].Len()
	}
	n := len(line)
	i := 0
	col := 0
	fi := 0
	for {
		wanted := fi < len(p.Fields) && p.Fields[fi].Col == col
		var raw []byte
		var cell string
		quoted := false
		if i < n && line[i] == '"' {
			quoted = true
			start := i + 1
			i++
			escaped := false
			for i < n {
				c := line[i]
				if c == '"' {
					if i+1 < n && line[i+1] == '"' {
						escaped = true
						i += 2
						continue
					}
					break
				}
				i++
			}
			body := line[start:i]
			if i < n {
				i++ // closing quote
			}
			if wanted {
				if escaped {
					cell = strings.ReplaceAll(string(body), `""`, `"`)
				} else {
					raw = body
				}
			}
			for i < n && line[i] != p.Delim {
				i++ // tolerate trailing garbage
			}
		} else {
			start := i
			for i < n && line[i] != p.Delim {
				i++
			}
			if wanted {
				raw = line[start:i]
			}
		}
		if wanted {
			if ec := p.appendCell(raw, cell, quoted, p.Fields[fi].Type, vecs[fi]); ec != 0 {
				rollbackVecs(vecs, n0)
				return ec
			}
			fi++
		}
		col++
		if i >= n {
			break
		}
		i++ // delimiter
	}
	if col != p.NumCols || fi != len(p.Fields) {
		rollbackVecs(vecs, n0)
		return pyvalue.ExcBadParse
	}
	return 0
}

func rollbackVecs(vecs []*colvec.Vec, n int) {
	for _, v := range vecs {
		v.Truncate(n)
	}
}

// appendCell is parseCellBytes appending onto a vector instead of a slot.
func (p *ParseSpec) appendCell(raw []byte, cell string, quoted bool, t types.Type, v *colvec.Vec) pyvalue.ExcKind {
	switch t.Kind() {
	case types.KindOption:
		if !quoted && p.isNullBytes(raw, cell) {
			v.AppendNull()
			return 0
		}
		return p.appendCell(raw, cell, quoted, t.Elem(), v)
	case types.KindNull:
		if !quoted && p.isNullBytes(raw, cell) {
			v.AppendUnit()
			return 0
		}
		return pyvalue.ExcBadParse
	case types.KindStr:
		if raw != nil {
			v.AppendStrBytes(raw)
		} else {
			v.AppendStr(cell)
		}
		return 0
	case types.KindI64:
		x, ok := ParseI64Bytes(raw, cell)
		if !ok {
			return pyvalue.ExcBadParse
		}
		v.AppendI64(x)
		return 0
	case types.KindF64:
		var x float64
		var ok bool
		if raw != nil {
			x, ok = ParseF64Bytes(raw)
		} else {
			x, ok = ParseF64(cell)
		}
		if !ok {
			return pyvalue.ExcBadParse
		}
		v.AppendF64(x)
		return 0
	case types.KindBool:
		s := cell
		if raw != nil {
			s = string(raw) // bool cells are tiny; alloc is fine
		}
		x, ok := ParseBool(s)
		if !ok {
			return pyvalue.ExcBadParse
		}
		v.AppendBool(x)
		return 0
	default:
		return pyvalue.ExcBadParse
	}
}

// NewVecsFor allocates one vector per projected field of the spec.
func (p *ParseSpec) NewVecsFor() []*colvec.Vec {
	vecs := make([]*colvec.Vec, len(p.Fields))
	for i, f := range p.Fields {
		vecs[i] = colvec.NewVec(f.Type)
	}
	return vecs
}
