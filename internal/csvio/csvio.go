// Package csvio implements CSV reading and writing for the engine.
//
// The reader has two layers, mirroring the paper's design:
//
//   - a general tokenizer that splits lines into cells (quotes, escapes),
//     used for sampling and the exception paths; and
//   - a "generated" parser (ParseSpec.ParseLine) specialized to the
//     normal-case plan: it touches only the columns the pipeline actually
//     reads (projection pushdown into the parser, §6.2.2's end-to-end
//     advantage) and parses each directly into an unboxed slot of the
//     expected type. Any mismatch returns a BadParse code, which routes
//     the raw line to the exception row pool — the generated parser IS
//     the row classifier for CSV sources (§4.3).
package csvio

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// NullValues are the cell spellings treated as NULL by default, matching
// the pipelines' conventions (the flights pipeline passes custom ones).
var DefaultNullValues = []string{""}

var recordSep = []byte{'\n'}

// SplitRecords splits raw CSV bytes into physical lines, respecting
// quoted fields that span cell boundaries (quoted newlines are kept
// within one record). The returned slices alias data.
func SplitRecords(data []byte) [][]byte {
	// Presize from the newline count (vectorized scan): quoted newlines
	// overestimate slightly, which only wastes a few spare slots.
	out := make([][]byte, 0, bytes.Count(data, recordSep)+1)
	start := 0
	inQuote := false
	for i := 0; i < len(data); i++ {
		switch data[i] {
		case '"':
			inQuote = !inQuote
		case '\n':
			if inQuote {
				continue
			}
			end := i
			if end > start && data[end-1] == '\r' {
				end--
			}
			out = append(out, data[start:end])
			start = i + 1
		}
	}
	if start < len(data) {
		end := len(data)
		if end > start && data[end-1] == '\r' {
			end--
		}
		if end > start {
			out = append(out, data[start:end])
		}
	}
	return out
}

// SplitCells tokenizes one record into cells. Quoted cells are unescaped
// ("" -> "). The scratch slice is reused when capacity allows.
func SplitCells(line []byte, delim byte, scratch []string) []string {
	cells := scratch[:0]
	i := 0
	n := len(line)
	for {
		if i >= n {
			cells = append(cells, "")
			return cells
		}
		if line[i] == '"' {
			// Quoted cell.
			var sb strings.Builder
			i++
			for i < n {
				c := line[i]
				if c == '"' {
					if i+1 < n && line[i+1] == '"' {
						sb.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(c)
				i++
			}
			cells = append(cells, sb.String())
			if i < n && line[i] == delim {
				i++
				continue
			}
			if i >= n {
				return cells
			}
			// Garbage after closing quote: take it verbatim to the next
			// delimiter (dirty data stays data, not an error).
			start := i
			for i < n && line[i] != delim {
				i++
			}
			cells[len(cells)-1] += string(line[start:i])
			if i < n {
				i++
				continue
			}
			return cells
		}
		start := i
		for i < n && line[i] != delim {
			i++
		}
		cells = append(cells, string(line[start:i]))
		if i < n {
			i++ // skip delimiter
			continue
		}
		return cells
	}
}

// CountCells counts cells without materializing them. Quotes are only
// significant at the start of a cell, matching SplitCells.
func CountCells(line []byte, delim byte) int {
	count := 1
	i, n := 0, len(line)
	for i < n {
		if line[i] == '"' {
			i++
			for i < n {
				if line[i] == '"' {
					if i+1 < n && line[i+1] == '"' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		}
		for i < n && line[i] != delim {
			i++
		}
		if i < n {
			count++
			i++
		}
	}
	return count
}

// FieldSpec describes one projected column of a generated parser.
type FieldSpec struct {
	// Col is the CSV column index.
	Col int
	// Type is the expected normal-case type (Option/Null allowed).
	Type types.Type
}

// ParseSpec is a parsing plan specialized to a sampled normal case: the
// expected column count, the projected fields and the null spellings.
type ParseSpec struct {
	Delim      byte
	NumCols    int
	Fields     []FieldSpec
	NullValues []string
	// maxCol caches the highest projected column.
	maxCol int
}

// NewParseSpec builds a parse plan. fields must be sorted by Col.
func NewParseSpec(delim byte, numCols int, fields []FieldSpec, nullValues []string) *ParseSpec {
	if nullValues == nil {
		nullValues = DefaultNullValues
	}
	maxCol := -1
	for i, f := range fields {
		if i > 0 && fields[i-1].Col >= f.Col {
			panic("csvio: fields must be sorted by column")
		}
		maxCol = f.Col
	}
	return &ParseSpec{Delim: delim, NumCols: numCols, Fields: fields, NullValues: nullValues, maxCol: maxCol}
}

// IsNullCell reports whether the cell spells NULL under the plan.
func (p *ParseSpec) IsNullCell(cell string) bool {
	for _, nv := range p.NullValues {
		if cell == nv {
			return true
		}
	}
	return false
}

// ParseLine runs the generated parser on one record, writing the
// projected columns into out (len(out) must equal len(p.Fields)). It
// returns ExcBadParse when the line does not match the normal case —
// wrong column count or a cell that fails to parse as its expected type.
// Only the projected cells are materialized; skipped columns cost a scan
// only, and numeric cells parse straight from the input bytes without a
// string allocation (the "generated parser" advantage of §6.2.2).
func (p *ParseSpec) ParseLine(line []byte, out rows.Row) pyvalue.ExcKind {
	n := len(line)
	i := 0
	col := 0
	fi := 0
	for {
		wanted := fi < len(p.Fields) && p.Fields[fi].Col == col
		var raw []byte
		var cell string
		quoted := false
		if i < n && line[i] == '"' {
			quoted = true
			start := i + 1
			i++
			escaped := false
			for i < n {
				c := line[i]
				if c == '"' {
					if i+1 < n && line[i+1] == '"' {
						escaped = true
						i += 2
						continue
					}
					break
				}
				i++
			}
			body := line[start:i]
			if i < n {
				i++ // closing quote
			}
			if wanted {
				if escaped {
					cell = strings.ReplaceAll(string(body), `""`, `"`)
				} else {
					raw = body
				}
			}
			for i < n && line[i] != p.Delim {
				i++ // tolerate trailing garbage
			}
		} else {
			start := i
			for i < n && line[i] != p.Delim {
				i++
			}
			if wanted {
				raw = line[start:i]
			}
		}
		if wanted {
			if ec := p.parseCellBytes(raw, cell, quoted, p.Fields[fi].Type, &out[fi]); ec != 0 {
				return ec
			}
			fi++
		}
		col++
		if i >= n {
			break
		}
		i++ // delimiter
	}
	if col != p.NumCols {
		return pyvalue.ExcBadParse
	}
	if fi != len(p.Fields) {
		return pyvalue.ExcBadParse
	}
	return 0
}

// parseCellBytes parses one projected cell. raw holds the bytes unless
// the cell needed unescaping (then cell holds the text).
func (p *ParseSpec) parseCellBytes(raw []byte, cell string, quoted bool, t types.Type, out *rows.Slot) pyvalue.ExcKind {
	switch t.Kind() {
	case types.KindOption:
		if !quoted && p.isNullBytes(raw, cell) {
			*out = rows.Null()
			return 0
		}
		return p.parseCellBytes(raw, cell, quoted, t.Elem(), out)
	case types.KindNull:
		if !quoted && p.isNullBytes(raw, cell) {
			*out = rows.Null()
			return 0
		}
		return pyvalue.ExcBadParse
	case types.KindStr:
		if raw != nil {
			*out = rows.Str(string(raw))
		} else {
			*out = rows.Str(cell)
		}
		return 0
	case types.KindI64:
		v, ok := ParseI64Bytes(raw, cell)
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.I64(v)
		return 0
	case types.KindF64:
		var v float64
		var ok bool
		if raw != nil {
			v, ok = ParseF64Bytes(raw)
		} else {
			v, ok = ParseF64(cell)
		}
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.F64(v)
		return 0
	case types.KindBool:
		s := cell
		if raw != nil {
			s = string(raw) // bool cells are tiny; alloc is fine
		}
		v, ok := ParseBool(s)
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.Bool(v)
		return 0
	default:
		return pyvalue.ExcBadParse
	}
}

func (p *ParseSpec) isNullBytes(raw []byte, cell string) bool {
	if raw != nil {
		for _, nv := range p.NullValues {
			if string(raw) == nv { // no alloc: comparison special case
				return true
			}
		}
		return false
	}
	return p.IsNullCell(cell)
}

// ParseI64Bytes parses a strict integer from bytes (or from cell when
// raw is nil).
func ParseI64Bytes(raw []byte, cell string) (int64, bool) {
	if raw == nil {
		return ParseI64(cell)
	}
	if len(raw) == 0 {
		return 0, false
	}
	i := 0
	neg := false
	if raw[0] == '+' || raw[0] == '-' {
		neg = raw[0] == '-'
		i = 1
		if len(raw) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(raw); i++ {
		c := raw[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// ParseF64Bytes parses a float from bytes without allocating for the
// common fixed-point spellings ("123", "-4.5"); other spellings fall
// back to strconv.
func ParseF64Bytes(raw []byte) (float64, bool) {
	if len(raw) == 0 {
		return 0, false
	}
	i := 0
	neg := false
	if raw[0] == '+' || raw[0] == '-' {
		neg = raw[0] == '-'
		i = 1
	}
	intPart := int64(0)
	digits := 0
	for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
		intPart = intPart*10 + int64(raw[i]-'0')
		i++
		digits++
	}
	if i == len(raw) && digits > 0 && digits < 19 {
		f := float64(intPart)
		if neg {
			f = -f
		}
		return f, true
	}
	if i < len(raw) && raw[i] == '.' {
		i++
		frac := int64(0)
		fdigits := 0
		for i < len(raw) && raw[i] >= '0' && raw[i] <= '9' {
			frac = frac*10 + int64(raw[i]-'0')
			i++
			fdigits++
		}
		// Only the exactly-representable fractions take the no-alloc
		// path ("123.0", "4.5", "2.25"); everything else goes through
		// strconv so results are bit-identical with the general parsers.
		if i == len(raw) && digits > 0 && digits < 16 && fdigits > 0 && exactFrac(frac, fdigits) {
			f := float64(intPart) + float64(frac)/pow10Table[fdigits]
			if neg {
				f = -f
			}
			return f, true
		}
	}
	return ParseF64(string(raw))
}

var pow10Table = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// exactFrac reports whether frac/10^fdigits is exactly representable in
// a float64 (so the fast path matches strconv bit-for-bit): the reduced
// denominator must be a power of two, i.e. frac must absorb all factors
// of 5^fdigits.
func exactFrac(frac int64, fdigits int) bool {
	if fdigits >= len(pow10Table) {
		return false
	}
	for i := 0; i < fdigits; i++ {
		if frac%5 != 0 {
			if frac != 0 {
				return false
			}
			break
		}
		frac /= 5
	}
	return true
}

// parseCell parses one cell against its expected type.
func (p *ParseSpec) parseCell(cell string, quoted bool, t types.Type, out *rows.Slot) pyvalue.ExcKind {
	switch t.Kind() {
	case types.KindOption:
		if !quoted && p.IsNullCell(cell) {
			*out = rows.Null()
			return 0
		}
		return p.parseCell(cell, quoted, t.Elem(), out)
	case types.KindNull:
		if !quoted && p.IsNullCell(cell) {
			*out = rows.Null()
			return 0
		}
		return pyvalue.ExcBadParse
	case types.KindStr:
		*out = rows.Str(cell)
		return 0
	case types.KindI64:
		v, ok := ParseI64(cell)
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.I64(v)
		return 0
	case types.KindF64:
		v, ok := ParseF64(cell)
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.F64(v)
		return 0
	case types.KindBool:
		v, ok := ParseBool(cell)
		if !ok {
			return pyvalue.ExcBadParse
		}
		*out = rows.Bool(v)
		return 0
	default:
		return pyvalue.ExcBadParse
	}
}

// ParseI64 parses a strict integer cell (optional sign, digits).
func ParseI64(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	i := 0
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	var v int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// ParseF64 parses a float cell (accepts integer spellings too).
func ParseF64(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// ParseBool parses boolean cells: true/false (any case), 0/1 — the §4.2
// heuristics.
func ParseBool(s string) (bool, bool) {
	switch s {
	case "0":
		return false, true
	case "1":
		return true, true
	}
	switch strings.ToLower(s) {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return false, false
}

// GeneralParse parses every cell of a record as the most general type
// for the exception paths: null spellings become None, numeric-looking
// cells numbers, booleans booleans, everything else strings. This
// mirrors the interpreter's view of a CSV row.
func GeneralParse(line []byte, delim byte, nullValues []string) []pyvalue.Value {
	cells := SplitCells(line, delim, nil)
	out := make([]pyvalue.Value, len(cells))
	for i, c := range cells {
		out[i] = SniffValue(c, nullValues)
	}
	return out
}

// SniffValue converts a raw cell into the boxed value its spelling
// suggests.
func SniffValue(cell string, nullValues []string) pyvalue.Value {
	for _, nv := range nullValues {
		if cell == nv {
			return pyvalue.None{}
		}
	}
	if b, ok := ParseBool(cell); ok {
		if cell == "0" || cell == "1" {
			// Keep plain 0/1 cells as ints when boxing generally; the
			// bool reading only wins when a column's histogram says so.
			if cell == "0" {
				return pyvalue.Int(0)
			}
			return pyvalue.Int(1)
		}
		return pyvalue.Bool(b)
	}
	if v, ok := ParseI64(cell); ok {
		return pyvalue.Int(v)
	}
	if f, ok := ParseF64(cell); ok && strings.ContainsAny(cell, ".eE") {
		return pyvalue.Float(f)
	}
	return pyvalue.Str(cell)
}

// ---- Writer ----

// Writer writes rows as CSV with minimal quoting. Internally it is a
// plain byte buffer with per-cell append methods, so the columnar render
// path emits cells without materializing intermediate strings; the
// row-level methods below are built on the same cells.
type Writer struct {
	buf     []byte
	scratch []byte // requote staging, reused
	delim   byte
}

// NewWriter returns a Writer using the given delimiter.
func NewWriter(delim byte) *Writer { return &Writer{delim: delim} }

// NewWriterBuf returns a writer rendering into buf's storage (length is
// reset), for callers that recycle output buffers across tasks: a
// steady-state pooled buffer is already output-sized, so the writer
// never pays doubling growth or large-allocation zeroing.
func NewWriterBuf(delim byte, buf []byte) *Writer {
	return &Writer{delim: delim, buf: buf[:0]}
}

// WriteHeader writes the column-name row.
func (w *Writer) WriteHeader(names []string) {
	for i, n := range names {
		if i > 0 {
			w.buf = append(w.buf, w.delim)
		}
		w.CellString(n)
	}
	w.buf = append(w.buf, '\n')
}

// WriteRow renders one row.
func (w *Writer) WriteRow(r rows.Row) {
	for i, s := range r {
		if i > 0 {
			w.buf = append(w.buf, w.delim)
		}
		w.CellSlot(s)
	}
	w.buf = append(w.buf, '\n')
}

// WriteValues renders one boxed row (exception-path results).
func (w *Writer) WriteValues(vs []pyvalue.Value) {
	for i, v := range vs {
		if i > 0 {
			w.buf = append(w.buf, w.delim)
		}
		if _, isNone := v.(pyvalue.None); isNone {
			continue
		}
		w.CellString(pyvalue.ToStr(v))
	}
	w.buf = append(w.buf, '\n')
}

// ---- Per-cell append API (columnar render path) ----
//
// A record is emitted as Cell*([delim] Cell*)... EndRecord. Every Cell
// method finishes with the minimal-quoting check, so output is
// byte-identical with the row-level writers.

// Delim emits the column separator.
func (w *Writer) Delim() { w.buf = append(w.buf, w.delim) }

// EndRecord terminates the current record.
func (w *Writer) EndRecord() { w.buf = append(w.buf, '\n') }

// CellNull emits an empty cell (None renders as nothing).
func (w *Writer) CellNull() {}

// CellBool emits a bool cell.
func (w *Writer) CellBool(b bool) {
	if b {
		w.buf = append(w.buf, "True"...)
	} else {
		w.buf = append(w.buf, "False"...)
	}
}

// CellI64 emits an integer cell.
func (w *Writer) CellI64(v int64) {
	start := len(w.buf)
	w.buf = strconv.AppendInt(w.buf, v, 10)
	w.finishCell(start)
}

// CellF64 emits a float cell with Python repr spelling.
func (w *Writer) CellF64(f float64) {
	start := len(w.buf)
	w.buf = pyvalue.AppendFloatRepr(w.buf, f)
	w.finishCell(start)
}

// CellStrBytes emits a string cell from raw bytes.
func (w *Writer) CellStrBytes(b []byte) {
	start := len(w.buf)
	w.buf = append(w.buf, b...)
	w.finishCell(start)
}

// CellString emits a string cell.
func (w *Writer) CellString(s string) {
	start := len(w.buf)
	w.buf = append(w.buf, s...)
	w.finishCell(start)
}

// CellSlot emits an arbitrary slot cell.
func (w *Writer) CellSlot(s rows.Slot) {
	start := len(w.buf)
	w.buf = s.AppendRender(w.buf)
	w.finishCell(start)
}

// finishCell applies minimal quoting to the cell rendered at buf[start:]:
// if the body contains the delimiter, a quote or a line break, it is
// rewritten in place as a quoted cell with doubled quotes.
func (w *Writer) finishCell(start int) {
	needs := false
	for i := start; i < len(w.buf); i++ {
		c := w.buf[i]
		if c == w.delim || c == '"' || c == '\n' || c == '\r' {
			needs = true
			break
		}
	}
	if !needs {
		return
	}
	w.scratch = append(w.scratch[:0], w.buf[start:]...)
	w.buf = append(w.buf[:start], '"')
	for _, c := range w.scratch {
		if c == '"' {
			w.buf = append(w.buf, '"', '"')
			continue
		}
		w.buf = append(w.buf, c)
	}
	w.buf = append(w.buf, '"')
}

// WriteRaw appends pre-rendered CSV bytes.
func (w *Writer) WriteRaw(b []byte) { w.buf = append(w.buf, b...) }

// Bytes returns a copy of the accumulated output (the writer may be
// reset and reused by pooled tasks after the caller keeps the bytes).
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Take transfers ownership of the accumulated output without copying
// and leaves the writer empty. Use when the writer is done for good
// (per-task sink buffers the engine keeps whole).
func (w *Writer) Take() []byte {
	out := w.buf
	w.buf = nil
	return out
}

// Grow ensures capacity for n more bytes, so callers that know the
// output size (stitching pre-rendered partitions) avoid doubling
// copies.
func (w *Writer) Grow(n int) {
	if cap(w.buf)-len(w.buf) >= n {
		return
	}
	buf := make([]byte, len(w.buf), len(w.buf)+n)
	copy(buf, w.buf)
	w.buf = buf
}

// Len returns the accumulated output size.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the writer, keeping capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// WriteFile flushes the accumulated output to path.
func (w *Writer) WriteFile(path string) error {
	if err := os.WriteFile(path, w.Bytes(), 0o644); err != nil {
		return fmt.Errorf("csvio: writing %s: %w", path, err)
	}
	return nil
}
