package csvio

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// collectChunks drains a reader, checking alignment invariants, and
// returns the concatenated bytes plus the records of each chunk.
func collectChunks(t *testing.T, data []byte, mode ChunkMode, size int) ([]byte, [][]byte) {
	t.Helper()
	cr := NewChunkReader(bytes.NewReader(data), mode, size, nil)
	var cat []byte
	var recs [][]byte
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(c.Data) == 0 {
			t.Fatalf("empty chunk emitted")
		}
		cat = append(cat, c.Data...)
		var chunkRecs [][]byte
		if mode == ChunkText {
			chunkRecs = splitTextLines(c.Data)
		} else {
			chunkRecs = SplitRecords(c.Data)
		}
		for _, r := range chunkRecs {
			recs = append(recs, append([]byte(nil), r...))
		}
		c.Release()
	}
	if cr.BytesRead() != int64(len(data)) {
		t.Fatalf("BytesRead = %d, want %d", cr.BytesRead(), len(data))
	}
	return cat, recs
}

// splitTextLines mirrors core's plain-line splitting for text chunks.
func splitTextLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i < len(data); i++ {
		if data[i] == '\n' {
			end := i
			if end > start && data[end-1] == '\r' {
				end--
			}
			out = append(out, data[start:end])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// diffAgainstSplitRecords checks that chunked splitting at every small
// chunk size yields exactly SplitRecords(data) on identical bytes.
func diffAgainstSplitRecords(t *testing.T, data []byte) {
	t.Helper()
	want := SplitRecords(data)
	for size := 1; size <= len(data)+2; size++ {
		cat, got := collectChunks(t, data, ChunkCSV, size)
		if !bytes.Equal(cat, data) {
			t.Fatalf("size %d: chunk concatenation differs from input", size)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("size %d: record %d = %q, want %q", size, i, got[i], want[i])
			}
		}
	}
}

func TestChunkReaderQuotedFieldAcrossSeam(t *testing.T) {
	// Quoted fields with embedded newlines and delimiters; every chunk
	// size forces a seam inside the quoted region at some point.
	data := []byte("a,\"line one\nline two\",c\nd,\"x,y\",f\n\"q\"\"uote\",2,3\n")
	diffAgainstSplitRecords(t, data)
}

func TestChunkReaderCRLFAcrossSeam(t *testing.T) {
	data := []byte("a,b\r\nc,d\r\ne,f\r\n")
	diffAgainstSplitRecords(t, data)
}

func TestChunkReaderRecordLargerThanChunk(t *testing.T) {
	big := strings.Repeat("x", 300)
	data := []byte("small,1\n" + big + ",2\n\"" + big + "\n" + big + "\",3\nlast,4\n")
	// Chunk sizes far below the record length force the growth path.
	for _, size := range []int{1, 7, 64, 128} {
		cat, got := collectChunks(t, data, ChunkCSV, size)
		if !bytes.Equal(cat, data) {
			t.Fatalf("size %d: concatenation mismatch", size)
		}
		want := SplitRecords(data)
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("size %d: record %d mismatch", size, i)
			}
		}
	}
}

func TestChunkReaderEmptyTrailingChunk(t *testing.T) {
	// Input length an exact multiple of the chunk size: the final read
	// returns zero bytes and no empty chunk may be emitted.
	data := []byte("ab\ncd\n") // 6 bytes
	for _, size := range []int{1, 2, 3, 6} {
		cat, got := collectChunks(t, data, ChunkCSV, size)
		if !bytes.Equal(cat, data) {
			t.Fatalf("size %d: concatenation mismatch", size)
		}
		if len(got) != 2 {
			t.Fatalf("size %d: %d records, want 2", size, len(got))
		}
	}
	// Empty input yields EOF immediately.
	cr := NewChunkReader(bytes.NewReader(nil), ChunkCSV, 4, nil)
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("empty input: err = %v, want io.EOF", err)
	}
}

func TestChunkReaderNoTrailingNewline(t *testing.T) {
	data := []byte("a,1\nb,2\nc,3")
	diffAgainstSplitRecords(t, data)
}

func TestChunkReaderTextMode(t *testing.T) {
	data := []byte("line one\r\nline two\n\nline four")
	want := splitTextLines(data)
	for size := 1; size <= len(data)+2; size++ {
		cat, got := collectChunks(t, data, ChunkText, size)
		if !bytes.Equal(cat, data) {
			t.Fatalf("size %d: concatenation mismatch", size)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d lines, want %d", size, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("size %d: line %d = %q, want %q", size, i, got[i], want[i])
			}
		}
	}
}

func TestChunkReaderSeamNeverInsideQuotes(t *testing.T) {
	// Except for the final chunk, every chunk must end just after an
	// unquoted newline.
	data := []byte("h1,h2\n\"a\nb\",1\n\"c\"\"d\",2\nplain,3\n")
	for size := 1; size < len(data); size++ {
		cr := NewChunkReader(bytes.NewReader(data), ChunkCSV, size, nil)
		for {
			c, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if c.Data[len(c.Data)-1] != '\n' && cr.BytesRead() != int64(len(data)) {
				t.Fatalf("size %d: non-final chunk does not end at a record boundary", size)
			}
			c.Release()
		}
	}
}

func TestSkipFirstRecord(t *testing.T) {
	cases := []struct {
		data string
		mode ChunkMode
		want int
	}{
		{"a,b\nrest", ChunkCSV, 4},
		{"\"x\ny\",b\nrest", ChunkCSV, 8},
		{"no newline", ChunkCSV, 10},
		{"\"open quote\nnext\n", ChunkText, 12},
	}
	for _, c := range cases {
		if got := SkipFirstRecord([]byte(c.data), c.mode); got != c.want {
			t.Errorf("SkipFirstRecord(%q, %d) = %d, want %d", c.data, c.mode, got, c.want)
		}
	}
}
