package csvio

import (
	"math"
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// specAndLines builds a projected spec over mixed types plus a pile of
// tricky records: quoted cells, escaped quotes, nulls, bad parses, wrong
// column counts, trailing garbage after quotes.
func equivSpec() *ParseSpec {
	return NewParseSpec(',', 5, []FieldSpec{
		{Col: 0, Type: types.I64},
		{Col: 1, Type: types.Str},
		{Col: 3, Type: types.Option(types.F64)},
		{Col: 4, Type: types.Option(types.Str)},
	}, nil)
}

var equivLines = []string{
	`1,hello,skip,2.5,world`,
	`-7,"quoted, cell",x,,`,
	`3,"esc""aped",x,4.25,ok`,
	`4,plain,x,1e3,"multi` + "\n" + `line"`,
	`5,s,x,notafloat,y`,    // bad float → reject
	`6,s,x,1.5`,            // wrong column count → reject
	`7,s,x,1.5,a,extra`,    // wrong column count → reject
	`notanint,s,x,1.5,a`,   // bad int → reject
	`8,"q"garbage,x,0.5,t`, // trailing garbage after quote
	`9,,x,,`,
}

func TestParseLineVecsEquivalence(t *testing.T) {
	spec := equivSpec()
	vecs := spec.NewVecsFor()
	var accepted []rows.Row
	for _, ln := range equivLines {
		row := make(rows.Row, len(spec.Fields))
		ecRow := spec.ParseLine([]byte(ln), row)
		n0 := vecs[0].Len()
		ecVec := spec.ParseLineVecs([]byte(ln), vecs)
		if ecRow != ecVec {
			t.Fatalf("line %q: row ec=%v vec ec=%v", ln, ecRow, ecVec)
		}
		if ecRow != 0 {
			for _, v := range vecs {
				if v.Len() != n0 {
					t.Fatalf("line %q: rejected record left vector rows (len %d, want %d)", ln, v.Len(), n0)
				}
			}
			continue
		}
		accepted = append(accepted, row)
	}
	if vecs[0].Len() != len(accepted) {
		t.Fatalf("vec rows %d, accepted rows %d", vecs[0].Len(), len(accepted))
	}
	for i, want := range accepted {
		for c := range spec.Fields {
			got := vecs[c].Slot(i)
			if !rows.Equal(got, want[c]) {
				t.Fatalf("row %d col %d: vec %+v, row %+v", i, c, got, want[c])
			}
			if got.Tag != want[c].Tag {
				t.Fatalf("row %d col %d: tag %v vs %v", i, c, got.Tag, want[c].Tag)
			}
		}
	}
}

func TestWriterCellAPIEquivalence(t *testing.T) {
	rws := []rows.Row{
		{rows.I64(42), rows.Str("plain"), rows.F64(2.5), rows.Bool(true), rows.Null()},
		{rows.I64(-1), rows.Str("with,comma"), rows.F64(1e300), rows.Bool(false), rows.Str(`has "quotes"`)},
		{rows.I64(0), rows.Str("line\nbreak"), rows.F64(math.Inf(-1)), rows.Bool(true), rows.Str("")},
		{rows.I64(7), rows.Str("\rcr"), rows.F64(1234567.0), rows.Bool(false), rows.Str("end")},
	}
	rowW := NewWriter(',')
	cellW := NewWriter(',')
	for _, r := range rws {
		rowW.WriteRow(r)
		for i, s := range r {
			if i > 0 {
				cellW.Delim()
			}
			switch s.Tag {
			case types.KindNull:
				cellW.CellNull()
			case types.KindBool:
				cellW.CellBool(s.B)
			case types.KindI64:
				cellW.CellI64(s.I)
			case types.KindF64:
				cellW.CellF64(s.F)
			case types.KindStr:
				cellW.CellStrBytes([]byte(s.S))
			}
			_ = i
		}
		cellW.EndRecord()
	}
	if string(rowW.Bytes()) != string(cellW.Bytes()) {
		t.Fatalf("cell API output differs:\nrow:  %q\ncell: %q", rowW.Bytes(), cellW.Bytes())
	}
}

func TestAppendFloatReprMatchesFloatRepr(t *testing.T) {
	cases := []float64{0, 1, -1, 2.5, -4.25, 0.1, 123456.789, 1e15, 1e16, 1e-4, 1e-5,
		math.Inf(1), math.Inf(-1), math.NaN(), 3.141592653589793, -0.00012345, 9e18}
	for _, f := range cases {
		want := pyvalue.FloatRepr(f)
		got := string(pyvalue.AppendFloatRepr(nil, f))
		if got != want {
			t.Fatalf("AppendFloatRepr(%v) = %q, FloatRepr = %q", f, got, want)
		}
	}
}
