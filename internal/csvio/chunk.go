package csvio

import (
	"errors"
	"io"
	"sync"
)

// Chunked ingest (§4.4): instead of materializing a whole file before
// the first executor runs, the engine streams fixed-size byte chunks off
// disk and hands each to a worker as one partition. Every chunk this
// reader emits starts at a record boundary and — except possibly the
// final one — ends immediately after a record terminator, so a chunk can
// be record-split and parsed in isolation. The alignment scan tracks
// RFC-4180 quote parity, so quoted fields containing newlines and CRLF
// sequences never straddle an emitted chunk seam; a record longer than
// the chunk size grows the chunk until its terminator is found.

// ChunkMode selects the record-boundary scanner.
type ChunkMode uint8

const (
	// ChunkCSV tracks quote parity: newlines inside quoted fields do not
	// terminate records.
	ChunkCSV ChunkMode = iota
	// ChunkText treats every newline as a record terminator.
	ChunkText
)

// DefaultChunkSize is the streaming ingest chunk size (~16 MiB).
const DefaultChunkSize = 16 << 20

// Chunk is one record-aligned slice of the input. Data aliases a pooled
// buffer: callers must not retain Data (or sub-slices of it) past
// Release.
type Chunk struct {
	// Data holds whole records; except for the final chunk of a file it
	// ends right after a record terminator ('\n').
	Data []byte
	// Index is the chunk's sequence number within its reader.
	Index int

	buf  []byte
	pool *sync.Pool
}

// Release returns the chunk's backing buffer to the pool for reuse.
func (c *Chunk) Release() {
	if c.pool != nil && c.buf != nil {
		buf := c.buf
		c.pool.Put(&buf)
		c.buf, c.Data, c.pool = nil, nil, nil
	}
}

// NewChunkPool returns a buffer pool for chunks of the given size. One
// pool can back many readers; steady-state ingest then performs zero
// large allocations (buffers cycle producer → worker → pool).
func NewChunkPool(size int) *sync.Pool {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &sync.Pool{New: func() any {
		buf := make([]byte, size)
		return &buf
	}}
}

// ChunkReader streams record-aligned chunks from r.
type ChunkReader struct {
	r    io.Reader
	mode ChunkMode
	size int
	pool *sync.Pool

	// carry holds the partial record trailing the last emitted chunk; it
	// is owned by the reader and prepended to the next chunk.
	carry []byte
	idx   int
	eof   bool
	bytes int64
}

// NewChunkReader wraps r. size is the target chunk size (0 uses
// DefaultChunkSize); pool supplies chunk buffers (nil allocates a
// private pool).
func NewChunkReader(r io.Reader, mode ChunkMode, size int, pool *sync.Pool) *ChunkReader {
	if size <= 0 {
		size = DefaultChunkSize
	}
	if pool == nil {
		pool = NewChunkPool(size)
	}
	return &ChunkReader{r: r, mode: mode, size: size, pool: pool}
}

// BytesRead reports the raw bytes consumed from the underlying reader.
func (cr *ChunkReader) BytesRead() int64 { return cr.bytes }

// Next returns the next record-aligned chunk, or (nil, io.EOF) when the
// input is exhausted. Any other error is a read failure.
func (cr *ChunkReader) Next() (*Chunk, error) {
	if cr.eof && len(cr.carry) == 0 {
		return nil, io.EOF
	}
	bufp := cr.pool.Get().(*[]byte)
	buf := *bufp
	if cap(buf) < cr.size {
		buf = make([]byte, cr.size)
	}
	if len(cr.carry) > cap(buf) {
		// An oversized-record round left more carry than one chunk;
		// return the pooled buffer and take a bigger one.
		cr.pool.Put(&buf)
		buf = make([]byte, len(cr.carry)+cr.size)
	}
	buf = buf[:cap(buf)]
	data := buf[:copy(buf, cr.carry)]
	cr.carry = cr.carry[:0]

	for {
		if !cr.eof {
			// Fill up to the target size (at least one read past the
			// carried bytes).
			want := cr.size - len(data)
			if want <= 0 {
				want = cr.size
			}
			if len(data)+want > cap(buf) {
				grown := make([]byte, len(data), len(data)+want)
				copy(grown, data)
				buf, data = grown, grown
			}
			n, err := io.ReadFull(cr.r, buf[len(data):len(data)+want])
			data = data[:len(data)+n]
			cr.bytes += int64(n)
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				cr.eof = true
			} else if err != nil {
				cr.pool.Put(&buf)
				return nil, err
			}
		}
		if cr.eof {
			if len(data) == 0 {
				cr.pool.Put(&buf)
				return nil, io.EOF
			}
			// Final chunk: the trailing record needs no terminator.
			c := &Chunk{Data: data, Index: cr.idx, buf: buf, pool: cr.pool}
			cr.idx++
			return c, nil
		}
		cut := lastRecordEnd(data, cr.mode)
		if cut > 0 {
			cr.carry = append(cr.carry[:0], data[cut:]...)
			c := &Chunk{Data: data[:cut], Index: cr.idx, buf: buf, pool: cr.pool}
			cr.idx++
			return c, nil
		}
		// No record terminator yet: a record larger than the chunk size.
		// Keep reading into a grown buffer until one appears (or EOF).
	}
}

// lastRecordEnd returns the index just past the last record terminator
// in data, or 0 if none. data must start at a record boundary, so CSV
// quote parity starts closed.
func lastRecordEnd(data []byte, mode ChunkMode) int {
	last := 0
	if mode == ChunkText {
		for i := len(data) - 1; i >= 0; i-- {
			if data[i] == '\n' {
				return i + 1
			}
		}
		return 0
	}
	inQuote := false
	for i := 0; i < len(data); i++ {
		switch data[i] {
		case '"':
			inQuote = !inQuote
		case '\n':
			if !inQuote {
				last = i + 1
			}
		}
	}
	return last
}

// SkipFirstRecord returns the index just past the first record
// terminator in data (for header stripping), or len(data) when the data
// holds a single unterminated record.
func SkipFirstRecord(data []byte, mode ChunkMode) int {
	inQuote := false
	for i := 0; i < len(data); i++ {
		switch data[i] {
		case '"':
			if mode == ChunkCSV {
				inQuote = !inQuote
			}
		case '\n':
			if !inQuote {
				return i + 1
			}
		}
	}
	return len(data)
}
