package csvio

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

func TestSplitRecords(t *testing.T) {
	data := []byte("a,b\nc,d\r\ne,\"f\ng\"\nlast")
	recs := SplitRecords(data)
	if len(recs) != 4 {
		t.Fatalf("records = %d: %q", len(recs), recs)
	}
	if string(recs[1]) != "c,d" {
		t.Fatalf("rec1 = %q", recs[1])
	}
	if string(recs[2]) != "e,\"f\ng\"" {
		t.Fatalf("quoted newline split: %q", recs[2])
	}
	if string(recs[3]) != "last" {
		t.Fatalf("no trailing newline: %q", recs[3])
	}
}

func TestSplitCells(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{"a,,c", []string{"a", "", "c"}},
		{"a,b,", []string{"a", "b", ""}},
		{"", []string{""}},
		{`"a,b",c`, []string{"a,b", "c"}},
		{`"say ""hi""",x`, []string{`say "hi"`, "x"}},
		{`"multi
line",y`, []string{"multi\nline", "y"}},
	}
	for _, c := range cases {
		got := SplitCells([]byte(c.line), ',', nil)
		if len(got) != len(c.want) {
			t.Errorf("%q: got %q, want %q", c.line, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q[%d]: got %q, want %q", c.line, i, got[i], c.want[i])
			}
		}
	}
}

func TestCountCellsMatchesSplit(t *testing.T) {
	f := func(raw []byte) bool {
		// Constrain to printable-ish CSV data.
		var sb strings.Builder
		alphabet := "ab,\"x1"
		for _, b := range raw {
			sb.WriteByte(alphabet[int(b)%len(alphabet)])
		}
		line := []byte(sb.String())
		return CountCells(line, ',') == len(SplitCells(line, ',', nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedParserProjectsAndTypes(t *testing.T) {
	spec := NewParseSpec(',', 4, []FieldSpec{
		{Col: 0, Type: types.I64},
		{Col: 2, Type: types.Str},
		{Col: 3, Type: types.F64},
	}, nil)
	out := make(rows.Row, 3)
	if ec := spec.ParseLine([]byte("42,skipped,hello,1.5"), out); ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	if out[0].I != 42 || out[1].S != "hello" || out[2].F != 1.5 {
		t.Fatalf("out = %+v", out)
	}
}

func TestGeneratedParserRejectsBadStructure(t *testing.T) {
	spec := NewParseSpec(',', 3, []FieldSpec{{Col: 0, Type: types.I64}}, nil)
	out := make(rows.Row, 1)
	// Wrong column count.
	if ec := spec.ParseLine([]byte("1,2"), out); ec != pyvalue.ExcBadParse {
		t.Fatalf("short row ec = %v", ec)
	}
	if ec := spec.ParseLine([]byte("1,2,3,4"), out); ec != pyvalue.ExcBadParse {
		t.Fatalf("long row ec = %v", ec)
	}
	// Type mismatch in a projected column.
	if ec := spec.ParseLine([]byte("abc,2,3"), out); ec != pyvalue.ExcBadParse {
		t.Fatalf("bad int ec = %v", ec)
	}
	// Mismatch in a skipped column is fine.
	if ec := spec.ParseLine([]byte("7,anything,at all"), out); ec != 0 {
		t.Fatalf("skipped col ec = %v", ec)
	}
}

func TestGeneratedParserNullPolicy(t *testing.T) {
	spec := NewParseSpec(',', 2, []FieldSpec{
		{Col: 0, Type: types.Option(types.I64)},
		{Col: 1, Type: types.Null},
	}, []string{"", "N/A"})
	out := make(rows.Row, 2)
	if ec := spec.ParseLine([]byte("5,"), out); ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	if out[0].I != 5 || !out[1].IsNull() {
		t.Fatalf("out = %+v", out)
	}
	if ec := spec.ParseLine([]byte("N/A,N/A"), out); ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	if !out[0].IsNull() {
		t.Fatalf("null spelled N/A not detected")
	}
	// A non-null cell in a Null-typed column violates the normal case.
	if ec := spec.ParseLine([]byte("5,value"), out); ec != pyvalue.ExcBadParse {
		t.Fatalf("ec = %v", ec)
	}
}

func TestGeneratedParserQuotedCells(t *testing.T) {
	spec := NewParseSpec(',', 2, []FieldSpec{{Col: 1, Type: types.Str}}, nil)
	out := make(rows.Row, 1)
	if ec := spec.ParseLine([]byte(`1,"hello, world"`), out); ec != 0 {
		t.Fatalf("ec = %v", ec)
	}
	if out[0].S != "hello, world" {
		t.Fatalf("got %q", out[0].S)
	}
}

func TestStrictNumericParsers(t *testing.T) {
	if _, ok := ParseI64("12a"); ok {
		t.Fatal("12a parsed as int")
	}
	if _, ok := ParseI64(""); ok {
		t.Fatal("empty parsed as int")
	}
	if v, ok := ParseI64("-42"); !ok || v != -42 {
		t.Fatal("-42 failed")
	}
	if _, ok := ParseF64("1.2.3"); ok {
		t.Fatal("1.2.3 parsed as float")
	}
	if v, ok := ParseF64("2e7"); !ok || v != 2e7 {
		t.Fatal("2e7 failed")
	}
	if b, ok := ParseBool("TRUE"); !ok || !b {
		t.Fatal("TRUE failed")
	}
	if b, ok := ParseBool("0"); !ok || b {
		t.Fatal("0 failed")
	}
	if _, ok := ParseBool("2"); ok {
		t.Fatal("2 parsed as bool")
	}
}

func TestWriterQuoting(t *testing.T) {
	w := NewWriter(',')
	w.WriteHeader([]string{"a", "b,comma"})
	w.WriteRow(rows.Row{rows.Str("plain"), rows.Str(`has "quotes", and comma`)})
	w.WriteRow(rows.Row{rows.I64(5), rows.Null()})
	w.WriteRow(rows.Row{rows.F64(2.5), rows.Bool(true)})
	got := string(w.Bytes())
	want := "a,\"b,comma\"\nplain,\"has \"\"quotes\"\", and comma\"\n5,\n2.5,True\n"
	if got != want {
		t.Fatalf("got:\n%q\nwant:\n%q", got, want)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	w := NewWriter(',')
	in := rows.Row{rows.Str("a,b"), rows.Str(`"q"`), rows.Str("plain"), rows.Str("nl\nin cell")}
	w.WriteRow(in)
	recs := SplitRecords(w.Bytes())
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	cells := SplitCells(recs[0], ',', nil)
	if len(cells) != 4 {
		t.Fatalf("cells = %q", cells)
	}
	for i := range cells {
		if cells[i] != in[i].S {
			t.Errorf("cell %d: got %q, want %q", i, cells[i], in[i].S)
		}
	}
}

func TestGeneralParseSniffsValues(t *testing.T) {
	vs := GeneralParse([]byte("42,1.5,text,,true"), ',', []string{""})
	if !pyvalue.Equal(vs[0], pyvalue.Int(42)) {
		t.Fatalf("v0 = %s", pyvalue.Repr(vs[0]))
	}
	if !pyvalue.Equal(vs[1], pyvalue.Float(1.5)) {
		t.Fatalf("v1 = %s", pyvalue.Repr(vs[1]))
	}
	if !pyvalue.Equal(vs[2], pyvalue.Str("text")) {
		t.Fatalf("v2 = %s", pyvalue.Repr(vs[2]))
	}
	if !pyvalue.Equal(vs[3], pyvalue.None{}) {
		t.Fatalf("v3 = %s", pyvalue.Repr(vs[3]))
	}
	if !pyvalue.Equal(vs[4], pyvalue.Bool(true)) {
		t.Fatalf("v4 = %s", pyvalue.Repr(vs[4]))
	}
}
