package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// analyze parses src as a single file of a package in dir and runs the
// given analyzers.
func analyze(t *testing.T, dir, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return runFiles(fset, []*ast.File{f}, dir, analyzers, nil)
}

func wantDiag(t *testing.T, diags []Diagnostic, analyzer, frag string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Msg, frag) {
			return
		}
	}
	t.Fatalf("no %s diagnostic containing %q in %v", analyzer, frag, diags)
}

func TestAPIInternalFlagsSeededViolations(t *testing.T) {
	src := `package tuplex

import (
	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/trace"
)

// Exported signatures naming internal types must be flagged.
func Leaky() *core.Engine { return nil }

func LeakyParam(o core.Options) {}

type Exposed struct {
	Tr *trace.Tracer
}

type LeakyIface interface {
	Span() *trace.Span
}

var LeakyVar *core.Engine
`
	diags := analyze(t, ".", src, APIInternal)
	wantDiag(t, diags, "apiinternal", "core.Engine")
	wantDiag(t, diags, "apiinternal", "core.Options")
	wantDiag(t, diags, "apiinternal", "trace.Tracer")
	wantDiag(t, diags, "apiinternal", "trace.Span")
	if len(diags) != 5 {
		t.Fatalf("diagnostics = %d, want 5: %v", len(diags), diags)
	}
}

func TestAPIInternalAllowsCleanAPI(t *testing.T) {
	src := `package tuplex

import (
	"github.com/gotuplex/tuplex/internal/core"
)

// Internal types may appear in unexported positions.
type Result struct {
	Rows []int
	eng  *core.Engine
}

func (r *Result) Count() int { return len(r.Rows) }

func newEngine() *core.Engine { return nil }

type hidden struct{ e *core.Engine }

func (h *hidden) Engine() *core.Engine { return h.e }
`
	if diags := analyze(t, ".", src, APIInternal); len(diags) != 0 {
		t.Fatalf("clean API flagged: %v", diags)
	}
}

func TestAPIInternalSkipsInternalPackages(t *testing.T) {
	src := `package core

import "github.com/gotuplex/tuplex/internal/trace"

func NewTracer() *trace.Tracer { return nil }
`
	if diags := analyze(t, "internal/core", src, APIInternal); len(diags) != 0 {
		t.Fatalf("internal package flagged: %v", diags)
	}
}

func TestSpanPairFlagsUnfinishedSpan(t *testing.T) {
	src := `package core

func leak(tr *Tracer) {
	sp := tr.Begin("stage")
	sp.Add()
}
`
	diags := analyze(t, "internal/core", src, SpanPair)
	wantDiag(t, diags, "spanpair", "never finished")
}

func TestSpanPairFlagsDiscardedBegin(t *testing.T) {
	src := `package core

func leak(tr *Tracer) {
	tr.Begin("stage")
	_ = tr.Begin("other")
}
`
	diags := analyze(t, "internal/core", src, SpanPair)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want 2 discarded-span reports", diags)
	}
	wantDiag(t, diags, "spanpair", "discarded")
}

func TestSpanPairAllowsPairedAndEscapingSpans(t *testing.T) {
	src := `package core

func paired(tr *Tracer) {
	sp := tr.Begin("stage")
	defer tr.End(sp)
	other := tr.Begin("execute")
	if bad() {
		return // early return without End is allowed; an End site exists
	}
	tr.End(other)
}

func escapes(tr *Tracer) *Span {
	sp := tr.Begin("stage")
	return sp
}

func handsOff(tr *Tracer) {
	sp := tr.Begin("stage")
	finishLater(sp)
}

func stored(tr *Tracer, s *state) {
	s.span = tr.Begin("stage")
}

func captured(tr *Tracer) func() {
	sp := tr.Begin("stage")
	return func() { tr.End(sp) }
}
`
	if diags := analyze(t, "internal/core", src, SpanPair); len(diags) != 0 {
		t.Fatalf("paired/escaping spans flagged: %v", diags)
	}
}

func TestRunDirOnThisPackageIsClean(t *testing.T) {
	diags, err := RunDir(".", All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/lint fails its own analyzers: %v", diags)
	}
}

func TestAtomicCopyFlagsSeededViolations(t *testing.T) {
	src := `package metrics

import "sync/atomic"

type Counters struct {
	InputRows atomic.Int64
}

// Wrapper nests the atomic one level down; the fact fixpoint must
// still mark it.
type Wrapper struct {
	C Counters
}

type Plain struct {
	N int64
}

func SnapshotBad(c Counters) {}

func ReturnBad() Counters { return Counters{} }

func (c Counters) RateBad() float64 { return 0 }

func WrapBad(w Wrapper) {}

func RawBad(v atomic.Int64) {}

func SnapshotGood(c *Counters) {}

func PlainGood(p Plain) {}
`
	diags := analyze(t, "internal/metrics", src, AtomicCopy)
	wantDiag(t, diags, "atomiccopy", "func SnapshotBad passes atomic-bearing type Counters")
	wantDiag(t, diags, "atomiccopy", "func ReturnBad returns atomic-bearing type Counters")
	wantDiag(t, diags, "atomiccopy", "method RateBad copies atomic-bearing receiver type Counters")
	wantDiag(t, diags, "atomiccopy", "func WrapBad passes atomic-bearing type Wrapper")
	wantDiag(t, diags, "atomiccopy", "func RawBad passes atomic-bearing type atomic.Int64")
	if len(diags) != 5 {
		t.Fatalf("diagnostics = %d, want 5: %v", len(diags), diags)
	}
}

func TestAtomicCopyCrossPackageFacts(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		t.Helper()
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// The defining package is scanned for facts only; the using package
	// references the type qualified and must be flagged.
	metricsFile := parse("metrics.go", `package metrics

import "sync/atomic"

type Counters struct {
	N atomic.Int64
}
`)
	coreFile := parse("core.go", `package core

import "example.com/tuplex/internal/metrics"

func Bad(c metrics.Counters) {}

func Good(c *metrics.Counters) {}
`)
	facts := NewFacts()
	for changed := true; changed; {
		changed = collectFacts([]*ast.File{metricsFile}, facts)
		if collectFacts([]*ast.File{coreFile}, facts) {
			changed = true
		}
	}
	diags := runFiles(fset, []*ast.File{coreFile}, "internal/core", []*Analyzer{AtomicCopy}, facts)
	wantDiag(t, diags, "atomiccopy", "metrics.Counters")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1: %v", len(diags), diags)
	}
}
