package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// HotAlloc flags per-row allocation patterns inside functions marked
// with a `//tuplex:kernel` directive: kernels run once per batch with
// loops over the batch's rows, so a `make` in a loop body or an
// `append` that grows a fresh slice each iteration turns into one heap
// allocation per row — exactly the cost the columnar layer exists to
// avoid. Amortized self-appends (`x = append(x, ...)`, including
// through struct fields) are allowed: they reuse capacity and allocate
// only on growth.
//
// Beyond raw allocation, the analyzer also flags per-row boxed-row
// construction: a `rows.Slot{...}` composite literal or an
// `unboxConforming` call inside a kernel loop means the kernel is
// rebuilding boxed rows the columnar plane was supposed to retire —
// the bounce path exists for that, and it lives outside kernels.
//
// The check is syntactic: it sees loop bodies, not dominance, so an
// allocation hoisted out of the loop (per-batch setup) is never
// flagged, and a flagged site can be silenced by hoisting or by
// switching to a reused scratch buffer.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/append-per-row allocation or boxed-Slot construction inside //tuplex:kernel loop bodies",
	Run:  runHotAlloc,
}

// kernelDirective is the marker comment, written immediately above the
// function declaration (within its doc comment group).
const kernelDirective = "tuplex:kernel"

func runHotAlloc(p *Pass) {
	for _, f := range p.Files {
		// Directives may sit in the doc group or as a detached comment
		// line directly above the declaration; collect every comment
		// line carrying the marker and match by position.
		marked := map[*ast.FuncDecl]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), kernelDirective) {
						marked[fd] = true
					}
				}
			}
		}
		for fd := range marked {
			if fd.Body != nil {
				checkKernelBody(p, fd.Body)
			}
		}
	}
}

// checkKernelBody walks the kernel's statements, flagging allocation
// calls that appear lexically inside any for/range body.
func checkKernelBody(p *Pass, body *ast.BlockStmt) {
	// handled marks calls already judged as part of an enclosing
	// assignment, so the bare-call case does not re-report them.
	handled := map[*ast.CallExpr]bool{}
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Init != nil {
					inLoop(m.Init, depth)
				}
				inLoop(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(m.Body, depth+1)
				return false
			case *ast.FuncLit:
				// A nested closure is its own (possibly non-per-row)
				// context; kernels do not call closures per row on the
				// fast path, and flagging them would punish setup
				// helpers defined inline.
				return false
			case *ast.AssignStmt:
				if depth > 0 {
					for i, rhs := range m.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok {
							continue
						}
						switch builtinName(call) {
						case "make":
							handled[call] = true
							p.Reportf(call.Pos(), "make inside kernel loop allocates per row; hoist it out of the loop or reuse a scratch buffer")
						case "append":
							handled[call] = true
							if i < len(m.Lhs) && len(call.Args) > 0 && exprString(m.Lhs[i]) == exprString(call.Args[0]) {
								continue // amortized self-append
							}
							p.Reportf(call.Pos(), "append to a different slice inside kernel loop allocates per row; use a self-append (x = append(x, ...)) or preallocate")
						}
					}
				}
			case *ast.CompositeLit:
				if depth > 0 && isSlotLiteral(m) {
					p.Reportf(m.Pos(), "rows.Slot composite inside kernel loop rebuilds boxed rows per row; read cells through vector accessors or bounce the row outside the kernel")
				}
			case *ast.CallExpr:
				if depth > 0 && !handled[m] {
					switch builtinName(m) {
					case "make":
						p.Reportf(m.Pos(), "make inside kernel loop allocates per row; hoist it out of the loop or reuse a scratch buffer")
					case "append":
						// An append outside a self-assignment builds a
						// fresh slice per row (discarded, passed as an
						// argument, or assigned elsewhere).
						p.Reportf(m.Pos(), "append result not stored back inside kernel loop allocates per row")
					}
					if calleeName(m) == "unboxConforming" {
						p.Reportf(m.Pos(), "unboxConforming inside kernel loop reboxes per row; classify once per batch or bounce the row outside the kernel")
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}

// builtinName returns the name of a builtin call target ("make",
// "append") or "".
func builtinName(call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	switch id.Name {
	case "make", "append":
		return id.Name
	}
	return ""
}

// isSlotLiteral reports whether the composite builds a rows.Slot (seen
// as `rows.Slot{...}` from other packages or `Slot{...}` within
// package rows).
func isSlotLiteral(cl *ast.CompositeLit) bool {
	switch t := cl.Type.(type) {
	case *ast.SelectorExpr:
		pkg, ok := t.X.(*ast.Ident)
		return ok && pkg.Name == "rows" && t.Sel.Name == "Slot"
	case *ast.Ident:
		return t.Name == "Slot"
	}
	return false
}

// calleeName returns the called function's bare name for plain and
// selector calls ("" for anything else).
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// exprString renders an expression for syntactic identity comparison.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
