package lint

import "testing"

func TestHotAllocFlagsSeededViolations(t *testing.T) {
	src := `package core

//tuplex:kernel
func badKernel(rows [][]byte, sel []int32) [][]string {
	var out [][]string
	for _, r := range sel {
		cells := make([]string, 4) // per-row make: flagged
		_ = cells
		tmp := append([]string(nil), string(rows[r])) // append to fresh slice: flagged
		out = append(out, tmp)                        // self-append: allowed
	}
	for i := 0; i < len(rows); i++ {
		sink(append(sel, int32(i))) // append result passed on: flagged
	}
	return out
}

func sink(v []int32) {}
`
	diags := analyze(t, "internal/core", src, HotAlloc)
	wantDiag(t, diags, "hotalloc", "make inside kernel loop")
	wantDiag(t, diags, "hotalloc", "append to a different slice")
	wantDiag(t, diags, "hotalloc", "append result not stored back")
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d, want 3: %v", len(diags), diags)
	}
}

func TestHotAllocFlagsBoxedSlotConstruction(t *testing.T) {
	src := `package core

type slotRow []int

//tuplex:kernel
func boxyKernel(vals []int64, sel []int32, sch *schema) {
	for _, r := range sel {
		s := rows.Slot{}            // boxed-Slot composite: flagged
		_ = s
		row, ok := unboxConforming(nil, sch, nil) // rebox call: flagged
		_, _ = row, ok
		_ = cs.unboxConforming(r) // selector form: flagged
		_ = vals[r]
	}
	pad := rows.Slot{} // outside the loop: allowed
	_ = pad
}

type schema struct{}
`
	diags := analyze(t, "internal/core", src, HotAlloc)
	wantDiag(t, diags, "hotalloc", "rows.Slot composite inside kernel loop")
	wantDiag(t, diags, "hotalloc", "unboxConforming inside kernel loop")
	if len(diags) != 3 {
		t.Fatalf("diagnostics = %d, want 3: %v", len(diags), diags)
	}
}

func TestHotAllocAllowsAmortizedAndHoisted(t *testing.T) {
	src := `package core

type vec struct{ b []byte }

//tuplex:kernel
func goodKernel(v *vec, rows [][]byte, sel []int32) []int {
	out := make([]int, 0, len(sel)) // per-batch make outside the loop
	for _, r := range sel {
		v.b = append(v.b, rows[r]...) // self-append through a field
		out = append(out, int(r))     // self-append local
	}
	return out
}

// Unmarked functions are never checked, whatever they allocate.
func notAKernel(sel []int32) {
	for range sel {
		_ = make([]byte, 64)
	}
}
`
	diags := analyze(t, "internal/core", src, HotAlloc)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}

func TestHotAllocSkipsNestedClosures(t *testing.T) {
	src := `package core

//tuplex:kernel
func kernelWithSetupClosure(sel []int32) {
	build := func(n int) []byte { return make([]byte, n) }
	for _, r := range sel {
		_ = r
	}
	_ = build(4)
}
`
	diags := analyze(t, "internal/core", src, HotAlloc)
	if len(diags) != 0 {
		t.Fatalf("diagnostics = %v, want none", diags)
	}
}
