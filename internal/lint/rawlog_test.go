package lint

import "testing"

func TestRawLogFlagsSeededViolations(t *testing.T) {
	src := `package service

import (
	"fmt"
	"log"
)

func noisy(err error) {
	fmt.Println("admitting job")
	fmt.Printf("queue wait %v\n", err)
	log.Printf("shed: %v", err)
	log.Fatalf("boom: %v", err)
}
`
	diags := analyze(t, "internal/service", src, RawLog)
	wantDiag(t, diags, "rawlog", "fmt.Println")
	wantDiag(t, diags, "rawlog", "fmt.Printf")
	wantDiag(t, diags, "rawlog", "log.Printf")
	wantDiag(t, diags, "rawlog", "log.Fatalf")
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %d, want 4: %v", len(diags), diags)
	}
}

func TestRawLogFollowsAliases(t *testing.T) {
	src := `package telemetry

import stdlog "log"

func alias() {
	stdlog.Print("sneaky")
}
`
	diags := analyze(t, "internal/telemetry", src, RawLog)
	wantDiag(t, diags, "rawlog", "log.Print")
}

func TestRawLogAllowsCleanAndUnscopedCode(t *testing.T) {
	// Fprintf to a caller-supplied writer is how the scoped packages
	// legitimately render (telemetry's Prometheus text, progress lines).
	clean := `package telemetry

import "fmt"

import "io"

func render(w io.Writer, v int) {
	fmt.Fprintf(w, "value %d\n", v)
	_ = fmt.Sprintf("label %d", v)
}
`
	if diags := analyze(t, "internal/telemetry", clean, RawLog); len(diags) != 0 {
		t.Fatalf("clean writer usage flagged: %v", diags)
	}

	// Commands and unscoped packages keep their user-facing prints.
	cmd := `package main

import "fmt"

func main() { fmt.Println("collected 3 rows") }
`
	if diags := analyze(t, "cmd/tuplex-run", cmd, RawLog); len(diags) != 0 {
		t.Fatalf("command output flagged: %v", diags)
	}

	// Selectors on non-package identifiers named like the packages must
	// not trip the syntactic check.
	shadow := `package core

type logger struct{}

func (logger) Printf(string, ...any) {}

func use(log logger) { log.Printf("fine") }
`
	if diags := analyze(t, "internal/core", shadow, RawLog); len(diags) != 0 {
		t.Fatalf("shadowed identifier flagged: %v", diags)
	}
}
