package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// RawLog flags fmt.Print*/log.Print* (and log.Fatal*/log.Panic*) calls
// in the engine, service and telemetry packages. Those layers run
// inside library callers and inside tuplex-serve, where raw writes to
// stdout/stderr bypass the flight recorder and the structured slow-job
// log, corrupt machine-read output (tuplex-loadgen -json, serve-smoke
// parsing), and cannot be correlated with a job's trace id. Diagnostics
// belong in the span tree, the flight recorder, or a returned error —
// not on the process streams. Commands (package main) and the other
// packages keep fmt for their user-facing output.
var RawLog = &Analyzer{
	Name: "rawlog",
	Doc:  "no fmt.Print*/log.Print* in core, service or telemetry — use traces, the flight recorder or errors",
	Run:  runRawLog,
}

// rawLogDirs are the package directories (module-relative) the check
// applies to, matched as exact dirs or prefixes (subpackages included).
var rawLogDirs = []string{
	"internal/core",
	"internal/service",
	"internal/telemetry",
}

// rawLogScoped reports whether dir falls under one of rawLogDirs.
func rawLogScoped(dir string) bool {
	d := filepath.ToSlash(dir)
	// RunDir is invoked with module-relative paths from cmd/tuplex-vet,
	// but tests and ad-hoc runs may pass absolute ones.
	for _, scoped := range rawLogDirs {
		if d == scoped || strings.HasSuffix(d, "/"+scoped) || strings.Contains(d+"/", "/"+scoped+"/") {
			return true
		}
	}
	return false
}

// rawLogCalls maps import path -> banned function-name prefixes.
var rawLogCalls = map[string][]string{
	"fmt": {"Print"},
	"log": {"Print", "Fatal", "Panic"},
}

// rawLogImports maps each file-local name of a banned package to its
// import path, following aliases (so `stdlog "log"` is still caught).
func rawLogImports(f *ast.File) map[string]string {
	byName := map[string]string{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || rawLogCalls[p] == nil {
			continue
		}
		name := p
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name != "_" && name != "." {
			byName[name] = p
		}
	}
	return byName
}

func runRawLog(p *Pass) {
	if !rawLogScoped(p.Dir) {
		return
	}
	for _, f := range p.Files {
		imports := rawLogImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := imports[id.Name]
			if !ok {
				return true
			}
			for _, prefix := range rawLogCalls[path] {
				if strings.HasPrefix(sel.Sel.Name, prefix) {
					p.Reportf(call.Pos(),
						"%s.%s writes raw output from %s; route diagnostics through the trace, flight recorder or a returned error",
						path, sel.Sel.Name, p.Dir)
					break
				}
			}
			return true
		})
	}
}
