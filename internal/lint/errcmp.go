package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strconv"
	"strings"
	"unicode"
)

// ErrCmp flags ==/!= comparisons against another package's sentinel
// errors (err == core.ErrCanceled). Sentinels cross wrap boundaries:
// the service layer wraps engine errors with %w, so a direct equality
// silently stops matching the moment anyone adds context to the chain.
// errors.Is is the only comparison that survives wrapping, and the
// repo's cancellation path (core.ErrCanceled traveling through
// service job handling) is exactly where a broken comparison would
// turn a graceful cancel into a spurious failure.
//
// The check is scoped to qualified references: inside the defining
// package a bare `err == ErrX` can be a deliberate identity check on
// an unwrapped value, so it stays legal.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors from other packages must be compared with errors.Is",
	Run:  runErrCmp,
}

// importNames returns the file-local names under which f's imports are
// accessible (explicit alias, else the import path's base).
func importNames(f *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name != "_" && name != "." {
			names[name] = true
		}
	}
	return names
}

// isSentinelName reports whether name follows the ErrXxx sentinel
// convention (Err followed by an upper-case rune, or exactly "Err").
func isSentinelName(name string) bool {
	if name == "Err" {
		return true
	}
	rest, ok := strings.CutPrefix(name, "Err")
	if !ok || rest == "" {
		return false
	}
	return unicode.IsUpper([]rune(rest)[0])
}

// wellKnownSentinels are stdlib sentinels that predate the ErrXxx
// naming convention but break under wrapping all the same.
var wellKnownSentinels = map[string]bool{
	"context.Canceled":         true,
	"context.DeadlineExceeded": true,
	"io.EOF":                   true,
}

// foreignSentinel reports whether e is a qualified reference to a
// sentinel error in another package (imports scopes the selector base
// to real packages, so struct fields like resp.ErrCount don't trip).
func foreignSentinel(e ast.Expr, imports map[string]bool) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !imports[id.Name] {
		return false
	}
	return isSentinelName(sel.Sel.Name) || wellKnownSentinels[id.Name+"."+sel.Sel.Name]
}

func runErrCmp(p *Pass) {
	for _, f := range p.Files {
		imports := importNames(f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if foreignSentinel(side, imports) {
					p.Reportf(be.Pos(),
						"comparison %s with sentinel error %s breaks under wrapping; use errors.Is",
						be.Op, types.ExprString(side))
					break
				}
			}
			return true
		})
	}
}
