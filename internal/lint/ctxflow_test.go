package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestCtxFlowFlagsSeededViolations(t *testing.T) {
	src := `package service

import "context"

func run(node int) {}

func runContext(ctx context.Context, node int) {}

type engine struct{}

func (e *engine) Execute(n int) {}

func (e *engine) ExecuteContext(ctx context.Context, n int) {}

// Handle receives ctx but calls the context-free variants.
func Handle(ctx context.Context, e *engine) {
	run(1)
	e.Execute(2)
}

// HandleRight threads ctx through; nothing to report.
func HandleRight(ctx context.Context, e *engine) {
	runContext(ctx, 1)
	e.ExecuteContext(ctx, 2)
}

// lower is unexported: internal plumbing may hold ctx in state.
func lower(ctx context.Context, e *engine) { e.Execute(2) }

// NoCtx takes no context, so it has nothing to pass.
func NoCtx(e *engine) { e.Execute(2) }
`
	diags := analyze(t, "internal/service", src, CtxFlow)
	wantDiag(t, diags, "ctxflow", "Handle drops ctx calling run; use runContext(ctx, ...)")
	wantDiag(t, diags, "ctxflow", "Handle drops ctx calling Execute; use ExecuteContext(ctx, ...)")
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %d, want 2: %v", len(diags), diags)
	}
}

func TestCtxFlowCrossPackageFacts(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		t.Helper()
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	coreFile := parse("core.go", `package core

import "context"

func Execute(n int) {}

func ExecuteContext(ctx context.Context, n int) {}
`)
	serviceFile := parse("service.go", `package service

import (
	"context"
	"example.com/tuplex/internal/core"
)

func Run(ctx context.Context) { core.Execute(1) }

func RunRight(ctx context.Context) { core.ExecuteContext(ctx, 1) }
`)
	facts := NewFacts()
	for changed := true; changed; {
		changed = collectFacts([]*ast.File{coreFile}, facts)
		if collectFacts([]*ast.File{serviceFile}, facts) {
			changed = true
		}
	}
	diags := runFiles(fset, []*ast.File{serviceFile}, "internal/service", []*Analyzer{CtxFlow}, facts)
	wantDiag(t, diags, "ctxflow", "Run drops ctx calling core.Execute; use core.ExecuteContext(ctx, ...)")
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %d, want 1: %v", len(diags), diags)
	}
}

func TestCtxFlowScopedToBlockingTiers(t *testing.T) {
	// The same drop outside internal/core & internal/service stays
	// unflagged: higher tiers are allowed deliberate Background() use.
	src := `package pipelines

import "context"

func step(n int) {}

func stepContext(ctx context.Context, n int) {}

func Build(ctx context.Context) { step(1) }
`
	if diags := analyze(t, "internal/pipelines", src, CtxFlow); len(diags) != 0 {
		t.Fatalf("non-blocking tier flagged: %v", diags)
	}
}
