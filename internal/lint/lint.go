// Package lint is a minimal, stdlib-only analogue of the go/analysis
// vet framework, carrying the repo's custom analyzers. cmd/tuplex-vet
// drives it over the module's packages as part of `make check`.
//
// The framework is deliberately syntactic: analyzers see one parsed
// package at a time (go/ast, no type information), which keeps the tool
// dependency-free and fast while still catching the two defect classes
// it exists for — internal types leaking into the exported API, and
// trace spans that are started but never finished.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check over a parsed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass hands an analyzer one package's worth of parsed files.
type Pass struct {
	Fset *token.FileSet
	// Files are the package's parsed non-test sources.
	Files []*ast.File
	// Dir is the package directory relative to the module root.
	Dir string
	// Internal marks packages under internal/ (or package main), whose
	// API is not importable by external modules.
	Internal bool
	// Facts carries cross-package information from the RunDirs prepass
	// (nil when the package is analyzed in isolation).
	Facts *Facts

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, formatted like a vet report.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Msg)
}

// All returns the repo's analyzer set.
func All() []*Analyzer {
	return []*Analyzer{APIInternal, SpanPair, AtomicCopy, HotAlloc, ErrCmp, CtxFlow, RawLog}
}

// parseDir parses the package's non-test sources in dir (nil files when
// the directory holds no Go package). Test files are skipped: the
// checks guard the shipped API and runtime behaviour, and fixtures
// inside tests would trip them spuriously.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// RunDir parses the package in dir and applies the analyzers with no
// cross-package facts (fact-dependent analyzers fall back to
// package-local collection).
func RunDir(dir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil || len(files) == 0 {
		return nil, err
	}
	return runFiles(fset, files, dir, analyzers, nil), nil
}

// RunDirs analyzes a set of package dirs with a shared fact prepass:
// every package is parsed first, facts (atomic-bearing named types) are
// collected to a fixpoint across all of them, then the analyzers run
// per package with the facts attached.
func RunDirs(dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	parsed := make([][]*ast.File, 0, len(dirs))
	kept := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		if len(files) == 0 {
			continue
		}
		parsed = append(parsed, files)
		kept = append(kept, dir)
	}
	facts := NewFacts()
	for changed := true; changed; {
		changed = false
		for _, files := range parsed {
			if collectFacts(files, facts) {
				changed = true
			}
		}
	}
	var diags []Diagnostic
	for i, files := range parsed {
		diags = append(diags, runFiles(fset, files, kept[i], analyzers, facts)...)
	}
	return diags, nil
}

// runFiles applies the analyzers to already-parsed files (the test
// entry point; RunDir/RunDirs feed it from disk).
func runFiles(fset *token.FileSet, files []*ast.File, dir string, analyzers []*Analyzer, facts *Facts) []Diagnostic {
	internal := files[0].Name.Name == "main" ||
		strings.Contains(filepath.ToSlash(dir)+"/", "/internal/") ||
		strings.HasPrefix(filepath.ToSlash(dir), "internal/")
	var diags []Diagnostic
	for _, a := range analyzers {
		p := &Pass{Fset: fset, Files: files, Dir: dir, Internal: internal, Facts: facts, analyzer: a, diags: &diags}
		a.Run(p)
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags
}

// PackageDirs walks root for Go package directories, skipping hidden
// directories and testdata.
func PackageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
