package lint

import "testing"

func TestErrCmpFlagsSeededViolations(t *testing.T) {
	src := `package service

import (
	"context"
	"github.com/gotuplex/tuplex/internal/core"
)

func handle(err error) bool {
	if err == core.ErrCanceled {
		return true
	}
	if core.ErrCanceled == err {
		return true
	}
	return err != context.Canceled && err != core.Err
}
`
	diags := analyze(t, "internal/service", src, ErrCmp)
	wantDiag(t, diags, "errcmp", "core.ErrCanceled")
	wantDiag(t, diags, "errcmp", "use errors.Is")
	wantDiag(t, diags, "errcmp", "core.Err breaks")
	if len(diags) != 4 {
		t.Fatalf("diagnostics = %d, want 4: %v", len(diags), diags)
	}
}

func TestErrCmpAllowsLegitimateComparisons(t *testing.T) {
	src := `package service

import (
	"errors"
	"github.com/gotuplex/tuplex/internal/core"
)

type resp struct {
	ErrCount int
	Errs     []error
}

func handle(err error, r resp, core2 resp) bool {
	if errors.Is(err, core.ErrCanceled) {
		return true
	}
	if err == nil || r.ErrCount == 0 {
		return false
	}
	// Selector bases that aren't imported packages are not sentinels.
	return core2.ErrCount != 1
}

// Inside the defining package a bare identity check stays legal.
var ErrLocal = errors.New("local")

func local(err error) bool { return err == ErrLocal }
`
	if diags := analyze(t, "internal/service", src, ErrCmp); len(diags) != 0 {
		t.Fatalf("legitimate comparisons flagged: %v", diags)
	}
}

func TestErrCmpNotScopedToServiceDirs(t *testing.T) {
	// Unlike ctxflow, sentinel comparisons are wrong anywhere.
	src := `package pipelines

import "github.com/gotuplex/tuplex/internal/core"

func bad(err error) bool { return err == core.ErrCanceled }
`
	diags := analyze(t, "internal/pipelines", src, ErrCmp)
	wantDiag(t, diags, "errcmp", "core.ErrCanceled")
}
