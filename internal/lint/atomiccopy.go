package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// AtomicCopy flags functions and methods that pass or return a
// sync/atomic value — or a struct (transitively) containing one — by
// value. Copying an atomic silently forks its state: the copy's
// increments are invisible to everyone holding the original, exactly
// the class of bug a shared-counter design (metrics.Counters, the
// telemetry monitor) cannot afford. go vet's copylocks catches many of
// these via the noCopy field inside the atomic types, but not structs
// that merely embed them behind another level, and not our own
// atomic-bearing named types referenced cross-package.
//
// The framework is syntactic, so cross-package knowledge ("does
// metrics.Counters contain atomics?") comes from a fact prepass over
// all package dirs (CollectFacts / RunDirs).
var AtomicCopy = &Analyzer{
	Name: "atomiccopy",
	Doc:  "atomic-bearing types must be passed and returned by pointer",
	Run:  runAtomicCopy,
}

// Facts carries cross-package information collected before the
// per-package passes (the stand-in for type information).
type Facts struct {
	// atomicStructs maps "pkg.TypeName" to true for named struct types
	// that transitively contain sync/atomic fields.
	atomicStructs map[string]bool
	// ctxVariants records declared ...Context functions: "pkg.Name" for
	// top-level funcs, bare "Name" for methods (see ctxflow).
	ctxVariants map[string]bool
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{atomicStructs: map[string]bool{}, ctxVariants: map[string]bool{}}
}

// atomicImportName returns the file-local name of the sync/atomic
// import ("" when the file does not import it).
func atomicImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "sync/atomic" {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "atomic"
	}
	return ""
}

// typeContainsAtomic reports whether a value of type t embeds
// sync/atomic state when copied. pkg qualifies bare identifiers,
// atomicName is the file's sync/atomic import name.
func typeContainsAtomic(t ast.Expr, pkg, atomicName string, facts *Facts) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return facts.atomicStructs[pkg+"."+t.Name]
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		if !ok {
			return false
		}
		if atomicName != "" && id.Name == atomicName {
			return true
		}
		return facts.atomicStructs[id.Name+"."+t.Sel.Name]
	case *ast.IndexExpr: // generic instantiation, e.g. atomic.Pointer[T]
		return typeContainsAtomic(t.X, pkg, atomicName, facts)
	case *ast.IndexListExpr:
		return typeContainsAtomic(t.X, pkg, atomicName, facts)
	case *ast.ArrayType:
		// Fixed-size arrays copy their elements; slices share them.
		if t.Len == nil {
			return false
		}
		return typeContainsAtomic(t.Elt, pkg, atomicName, facts)
	case *ast.StructType:
		for _, fl := range t.Fields.List {
			if typeContainsAtomic(fl.Type, pkg, atomicName, facts) {
				return true
			}
		}
		return false
	default:
		// Pointers, maps, chans, funcs, interfaces: no copy hazard.
		return false
	}
}

// collectFacts scans one package's files for atomic-bearing named
// struct types, reporting whether the fact set grew (the caller
// iterates dirs to a fixpoint so nesting across files and packages
// resolves regardless of scan order).
func collectFacts(files []*ast.File, facts *Facts) (changed bool) {
	changed = collectCtxVariants(files, facts)
	for _, f := range files {
		pkg := f.Name.Name
		atomicName := atomicImportName(f)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				key := pkg + "." + ts.Name.Name
				if facts.atomicStructs[key] {
					continue
				}
				if typeContainsAtomic(ts.Type, pkg, atomicName, facts) {
					facts.atomicStructs[key] = true
					changed = true
				}
			}
		}
	}
	return changed
}

func runAtomicCopy(p *Pass) {
	facts := p.Facts
	if facts == nil {
		// No prepass (single-package invocation): collect facts from
		// this package alone.
		facts = NewFacts()
		for collectFacts(p.Files, facts) {
		}
	}
	for _, f := range p.Files {
		pkg := f.Name.Name
		atomicName := atomicImportName(f)
		hazardous := func(t ast.Expr) bool {
			return typeContainsAtomic(t, pkg, atomicName, facts)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, fl := range fd.Recv.List {
					if hazardous(fl.Type) {
						p.Reportf(fl.Type.Pos(),
							"method %s copies atomic-bearing receiver type %s; use a pointer receiver",
							fd.Name.Name, types.ExprString(fl.Type))
					}
				}
			}
			if fd.Type.Params != nil {
				for _, fl := range fd.Type.Params.List {
					if hazardous(fl.Type) {
						p.Reportf(fl.Type.Pos(),
							"func %s passes atomic-bearing type %s by value; pass a pointer",
							fd.Name.Name, types.ExprString(fl.Type))
					}
				}
			}
			if fd.Type.Results != nil {
				for _, fl := range fd.Type.Results.List {
					if hazardous(fl.Type) {
						p.Reportf(fl.Type.Pos(),
							"func %s returns atomic-bearing type %s by value; return a pointer",
							fd.Name.Name, types.ExprString(fl.Type))
					}
				}
			}
		}
	}
}
