package lint

import (
	"go/ast"
	"go/token"
)

// SpanPair flags trace-span begin/end mispairings: a span started with
// Begin must be finished by an End call in the same function, unless
// the span value escapes (returned, stored, or passed on) — then the
// pairing obligation moves with it. A Begin whose result is discarded
// can never be finished and is always a leak.
//
// The check is syntactic and per-function: it does not prove End runs
// on every path (early error returns legitimately abandon spans), only
// that a matching End site exists at all.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "trace spans started with Begin must be finished with End or escape",
	Run:  runSpanPair,
}

func runSpanPair(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkSpanBody(p, body)
			}
			return true
		})
	}
}

// beginVar tracks one `x := tr.Begin(...)` binding.
type beginVar struct {
	obj     *ast.Object
	pos     token.Pos
	ended   bool
	escaped bool
}

func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	var begun []*beginVar
	find := func(obj *ast.Object) *beginVar {
		for _, b := range begun {
			if b.obj == obj {
				return b
			}
		}
		return nil
	}

	// Pass 1: collect Begin bindings and discarded Begin results.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested functions get their own check
		case *ast.ExprStmt:
			if isSpanCall(n.X, "Begin") {
				p.Reportf(n.Pos(), "span started with Begin is discarded; it can never be finished with End")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 || !isSpanCall(n.Rhs[0], "Begin") {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				if !ok {
					return true // stored into a field/map: escapes
				}
				p.Reportf(n.Pos(), "span started with Begin is discarded; it can never be finished with End")
				return true
			}
			if id.Obj != nil {
				begun = append(begun, &beginVar{obj: id.Obj, pos: n.Pos()})
			}
		}
		return true
	})
	if len(begun) == 0 {
		return
	}

	// Pass 2: find End calls and escapes for the collected bindings.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the span may finish it; treat capture
			// as an escape rather than chasing the closure body.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Obj != nil {
					if b := find(id.Obj); b != nil {
						b.escaped = true
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				for _, arg := range n.Args {
					if id, ok := arg.(*ast.Ident); ok && id.Obj != nil {
						if b := find(id.Obj); b != nil {
							b.ended = true
						}
					}
				}
				return true
			}
			// Passed to any other call: the obligation moves with it.
			// (A selector receiver like sp.Add(...) is not an escape.)
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Obj != nil {
					if b := find(id.Obj); b != nil {
						b.escaped = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := r.(*ast.Ident); ok && id.Obj != nil {
					if b := find(id.Obj); b != nil {
						b.escaped = true
					}
				}
			}
		case *ast.AssignStmt:
			// Re-assigned elsewhere (struct field, other variable): the
			// new name carries the obligation.
			for _, r := range n.Rhs {
				if id, ok := r.(*ast.Ident); ok && id.Obj != nil {
					if b := find(id.Obj); b != nil {
						b.escaped = true
					}
				}
			}
		}
		return true
	})

	for _, b := range begun {
		if !b.ended && !b.escaped {
			p.Reportf(b.pos, "span started with Begin is never finished: no End call in this function and the span does not escape")
		}
	}
}

// isSpanCall reports whether e is a method call named method (e.g.
// tr.Begin(...)).
func isSpanCall(e ast.Expr, method string) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == method
}
