package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// CtxFlow flags exported functions in the blocking tiers
// (internal/core, internal/service, and the public API) that accept a
// context.Context but then call a helper through its context-free
// variant when a ...Context twin exists. Dropping ctx at one hop
// severs the whole cancellation chain below it: the service's
// request-timeout and DELETE-cancel paths rely on ctx reaching every
// chunk boundary, so a core.Execute call inside a handler that was
// given ctx is a silent hang-forever bug, not a style issue.
//
// Detection is syntactic. The fact prepass records every *Context
// function and method declared across the module; a call to Bar or
// pkg.Bar (or method x.Bar) inside an exported ctx-taking function is
// flagged when BarContext is known to exist.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx-taking exported functions must call the ...Context variant of blocking helpers",
	Run:  runCtxFlow,
}

// ctxFlowDir limits the check to the tiers whose calls block on the
// engine; test fixtures pass matching dirs explicitly.
func ctxFlowDir(dir string) bool {
	d := filepath.ToSlash(dir) + "/"
	return strings.Contains(d, "internal/core/") ||
		strings.Contains(d, "internal/service/")
}

// collectCtxVariants records the package's ...Context declarations
// into facts: top-level funcs as "pkg.Name", methods by bare name
// (receiver types are not resolvable syntactically, so method variants
// match on name alone).
func collectCtxVariants(files []*ast.File, facts *Facts) (changed bool) {
	for _, f := range files {
		pkg := f.Name.Name
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasSuffix(fd.Name.Name, "Context") || fd.Name.Name == "Context" {
				continue
			}
			key := pkg + "." + fd.Name.Name
			if fd.Recv != nil {
				key = fd.Name.Name
			}
			if !facts.ctxVariants[key] {
				facts.ctxVariants[key] = true
				changed = true
			}
		}
	}
	return changed
}

// ctxParamName returns the name of fn's context.Context parameter ("")
// when fn takes none or leaves it blank (a blank ctx cannot be passed
// through, so there is nothing to enforce).
func ctxParamName(fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	for _, fl := range fn.Type.Params.List {
		sel, ok := fl.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "context" {
			continue
		}
		for _, name := range fl.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

func runCtxFlow(p *Pass) {
	if !ctxFlowDir(p.Dir) {
		return
	}
	facts := p.Facts
	if facts == nil {
		facts = NewFacts()
		for collectCtxVariants(p.Files, facts) {
		}
	}
	for _, f := range p.Files {
		pkg := f.Name.Name
		imports := importNames(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if ctxParamName(fd) == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if facts.ctxVariants[pkg+"."+fun.Name+"Context"] {
						p.Reportf(call.Pos(),
							"%s drops ctx calling %s; use %sContext(ctx, ...)",
							fd.Name.Name, fun.Name, fun.Name)
					}
				case *ast.SelectorExpr:
					id, isIdent := fun.X.(*ast.Ident)
					name := fun.Sel.Name
					switch {
					case isIdent && imports[id.Name]: // qualified pkg.Bar
						if facts.ctxVariants[id.Name+"."+name+"Context"] {
							p.Reportf(call.Pos(),
								"%s drops ctx calling %s.%s; use %s.%sContext(ctx, ...)",
								fd.Name.Name, id.Name, name, id.Name, name)
						}
					default: // method x.Bar — match variants by bare name
						if facts.ctxVariants[name+"Context"] {
							p.Reportf(call.Pos(),
								"%s drops ctx calling %s; use %sContext(ctx, ...)",
								fd.Name.Name, name, name)
						}
					}
				}
				return true
			})
		}
	}
}
