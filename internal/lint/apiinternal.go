package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// APIInternal forbids internal/* types in the exported API of
// importable packages: a signature or exported field naming an internal
// type hands callers a value they cannot themselves name, freezing the
// internal package into the public contract.
var APIInternal = &Analyzer{
	Name: "apiinternal",
	Doc:  "exported API signatures must not name internal/* types",
	Run:  runAPIInternal,
}

func runAPIInternal(p *Pass) {
	if p.Internal {
		return
	}
	for _, f := range p.Files {
		// Map import names (alias or path base) to internal import paths.
		internalPkgs := map[string]string{}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !strings.Contains(path, "/internal/") && !strings.HasSuffix(path, "/internal") {
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if imp.Name != nil {
				name = imp.Name.Name
			}
			internalPkgs[name] = path
		}
		if len(internalPkgs) == 0 {
			continue
		}
		check := func(what string, t ast.Expr) {
			if t == nil {
				return
			}
			ast.Inspect(t, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if path, hit := internalPkgs[id.Name]; hit {
					p.Reportf(sel.Pos(), "%s names internal type %s.%s (%s)",
						what, id.Name, sel.Sel.Name, path)
				}
				return false
			})
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if !decl.Name.IsExported() || unexportedRecv(decl) {
					continue
				}
				what := "exported func " + decl.Name.Name
				if decl.Type.Params != nil {
					for _, fl := range decl.Type.Params.List {
						check(what, fl.Type)
					}
				}
				if decl.Type.Results != nil {
					for _, fl := range decl.Type.Results.List {
						check(what, fl.Type)
					}
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if !spec.Name.IsExported() {
							continue
						}
						checkTypeSpec(p, spec, check)
					case *ast.ValueSpec:
						for _, name := range spec.Names {
							if name.IsExported() {
								check("exported var/const "+name.Name, spec.Type)
								break
							}
						}
					}
				}
			}
		}
	}
}

// checkTypeSpec checks an exported type's externally visible parts:
// exported struct fields, interface method signatures, and the
// underlying type of aliases and simple named types.
func checkTypeSpec(p *Pass, spec *ast.TypeSpec, check func(string, ast.Expr)) {
	what := "exported type " + spec.Name.Name
	switch t := spec.Type.(type) {
	case *ast.StructType:
		for _, fl := range t.Fields.List {
			exported := len(fl.Names) == 0 // embedded
			for _, n := range fl.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported {
				check(what+" field", fl.Type)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			check(what+" method", m.Type)
		}
	default:
		check(what, spec.Type)
	}
}

// unexportedRecv reports whether decl is a method on an unexported
// receiver type (not part of the importable API).
func unexportedRecv(decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return false
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}
