package hyper

import (
	"math"
	"testing"

	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
)

func TestQ6IndexedMatchesScanAndNative(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 8000, Seed: 5})
	tab, err := Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	tab.BuildIndex()
	idx := tab.Q6Indexed(data.Q6DateLo, data.Q6DateHi)
	scan := tab.Q6Scan(data.Q6DateLo, data.Q6DateHi)
	want := handopt.Q6(raw, data.Q6DateLo, data.Q6DateHi)
	if math.Abs(idx-scan) > 1e-9*math.Max(1, scan) {
		t.Fatalf("indexed %.6f != scan %.6f", idx, scan)
	}
	if math.Abs(idx-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("indexed %.4f, native %.4f", idx, want)
	}
}

func TestIndexSortedness(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 2000, Seed: 6})
	tab, _ := Load(raw)
	tab.BuildIndex()
	for i := 1; i < len(tab.shipSorted); i++ {
		if tab.shipSorted[i] < tab.shipSorted[i-1] {
			t.Fatal("index not sorted")
		}
	}
}
