// Package hyper is the Hyper-analog baseline of §6.2.3: a typed columnar
// SQL executor whose query speed comes from indexes built at load time.
// Query-only, the indexed range scan beats every scan-based system;
// end-to-end, the upfront load + index build hands the win to Tuplex's
// generated parser (Fig. 10).
package hyper

import (
	"fmt"
	"sort"

	"github.com/gotuplex/tuplex/internal/csvio"
)

// Lineitem is the typed, loaded table.
type Lineitem struct {
	Quantity      []int64
	ExtendedPrice []float64
	Discount      []float64
	ShipDate      []int64
	// perm sorts rows by ShipDate; shipSorted is ShipDate gathered
	// through perm (the clustered index).
	perm       []int32
	shipSorted []int64
}

// Load parses the lineitem CSV into typed columns.
func Load(raw []byte) (*Lineitem, error) {
	records := csvio.SplitRecords(raw)
	if len(records) < 2 {
		return nil, fmt.Errorf("hyper: empty lineitem input")
	}
	records = records[1:]
	t := &Lineitem{
		Quantity:      make([]int64, 0, len(records)),
		ExtendedPrice: make([]float64, 0, len(records)),
		Discount:      make([]float64, 0, len(records)),
		ShipDate:      make([]int64, 0, len(records)),
	}
	var cells []string
	for _, rec := range records {
		cells = csvio.SplitCells(rec, ',', cells)
		if len(cells) != 4 {
			continue
		}
		q, ok1 := csvio.ParseI64(cells[0])
		p, ok2 := csvio.ParseF64(cells[1])
		d, ok3 := csvio.ParseF64(cells[2])
		s, ok4 := csvio.ParseI64(cells[3])
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		t.Quantity = append(t.Quantity, q)
		t.ExtendedPrice = append(t.ExtendedPrice, p)
		t.Discount = append(t.Discount, d)
		t.ShipDate = append(t.ShipDate, s)
	}
	return t, nil
}

// BuildIndex sorts a permutation over ShipDate — the upfront cost §6.2.3
// charges to end-to-end time ("Hyper relies on indexes for
// performance").
func (t *Lineitem) BuildIndex() {
	t.perm = make([]int32, len(t.ShipDate))
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	sort.Slice(t.perm, func(a, b int) bool {
		return t.ShipDate[t.perm[a]] < t.ShipDate[t.perm[b]]
	})
	t.shipSorted = make([]int64, len(t.perm))
	for i, p := range t.perm {
		t.shipSorted[i] = t.ShipDate[p]
	}
}

// Q6Indexed answers Q6 via the shipdate index: binary-search the date
// range, then scan only the qualifying run.
func (t *Lineitem) Q6Indexed(dateLo, dateHi int64) float64 {
	if t.perm == nil {
		t.BuildIndex()
	}
	lo := sort.Search(len(t.shipSorted), func(i int) bool { return t.shipSorted[i] >= dateLo })
	hi := sort.Search(len(t.shipSorted), func(i int) bool { return t.shipSorted[i] >= dateHi })
	revenue := 0.0
	for i := lo; i < hi; i++ {
		r := t.perm[i]
		if t.Discount[r] >= 0.05 && t.Discount[r] <= 0.07 && t.Quantity[r] < 24 {
			revenue += t.ExtendedPrice[r] * t.Discount[r]
		}
	}
	return revenue
}

// Q6Scan answers Q6 by full scan (for comparison).
func (t *Lineitem) Q6Scan(dateLo, dateHi int64) float64 {
	revenue := 0.0
	for i := range t.ShipDate {
		if t.ShipDate[i] >= dateLo && t.ShipDate[i] < dateHi &&
			t.Discount[i] >= 0.05 && t.Discount[i] <= 0.07 && t.Quantity[i] < 24 {
			revenue += t.ExtendedPrice[i] * t.Discount[i]
		}
	}
	return revenue
}
