package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	tuplex "github.com/gotuplex/tuplex"
)

// traceOpts returns the extra context options implied by Scale.TraceDir:
// when tracing is requested, runs record the row-routing ledger so the
// saved traces explain where every row went.
func (s Scale) traceOpts() []tuplex.Option {
	if s.TraceDir == "" {
		return nil
	}
	return []tuplex.Option{tuplex.WithTracing(tuplex.TraceRows)}
}

// saveTrace prints a run's trace tree and writes it as JSON under
// Scale.TraceDir. No-op when tracing is off or the run kept no trace.
func saveTrace(s Scale, id string, res *tuplex.Result, w io.Writer) {
	if s.TraceDir == "" || res == nil || res.Trace == nil {
		return
	}
	fmt.Fprintf(w, "\n-- trace: %s --\n%s", id, res.Trace)
	b, err := json.MarshalIndent(res.Trace, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(s.TraceDir, traceFileName(id))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(w, "  trace write failed: %v\n", err)
		return
	}
	fmt.Fprintf(w, "wrote %s\n", path)
}

// traceFileName turns a system/experiment label into a filename.
func traceFileName(id string) string {
	r := strings.NewReplacer(" ", "-", ",", "", "/", "-", "(", "", ")", "")
	return r.Replace(id) + ".trace.json"
}
