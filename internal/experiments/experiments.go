// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on synthetic data: for each experiment it runs every
// compared system, times it, and prints rows in the paper's layout next
// to the paper's published numbers so the shape (who wins, by what
// factor) can be compared directly. cmd/tuplex-bench is the CLI over
// this package and the repo's EXPERIMENTS.md is generated from it.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Scale sizes the generated datasets. Defaults target tens of seconds on
// a laptop; the paper's inputs are 10-75 GB.
type Scale struct {
	ZillowRows  int
	FlightRows  int
	WeblogRows  int
	Rows311     int
	Q6Rows      int
	Parallelism int
	Repeats     int
	// TraceDir, when non-empty, enables run tracing (TraceRows) for the
	// experiments that capture a Result and writes each run's trace as
	// <TraceDir>/<id>.trace.json, printing the trace tree alongside the
	// timing table.
	TraceDir string
}

// DefaultScale is the harness default.
func DefaultScale() Scale {
	p := runtime.NumCPU()
	if p > 16 {
		p = 16
	}
	return Scale{
		ZillowRows:  200_000,
		FlightRows:  100_000,
		WeblogRows:  300_000,
		Rows311:     400_000,
		Q6Rows:      2_000_000,
		Parallelism: p,
		Repeats:     1,
	}
}

// Small returns a fast scale for tests and -short runs.
func (s Scale) Small() Scale {
	s.ZillowRows = 20_000
	s.FlightRows = 10_000
	s.WeblogRows = 20_000
	s.Rows311 = 30_000
	s.Q6Rows = 200_000
	return s
}

// Row is one measured system in an experiment.
type Row struct {
	System  string
	Seconds float64
	// PaperSeconds is the published number for the corresponding system
	// ("-" rendered when absent).
	PaperSeconds float64
	Note         string
}

// Experiment is one table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Speedup reports row i's time relative to the named reference system.
func (e *Experiment) Speedup(ref, system string) float64 {
	var rs, ss float64
	for _, r := range e.Rows {
		if r.System == ref {
			rs = r.Seconds
		}
		if r.System == system {
			ss = r.Seconds
		}
	}
	if ss == 0 {
		return 0
	}
	return rs / ss
}

// Find returns the row for a system.
func (e *Experiment) Find(system string) (Row, bool) {
	for _, r := range e.Rows {
		if r.System == system {
			return r, true
		}
	}
	return Row{}, false
}

// Print renders the experiment as an aligned table.
func (e *Experiment) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", e.ID, e.Title)
	width := 28
	for _, r := range e.Rows {
		if len(r.System) > width {
			width = len(r.System)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %14s  %s\n", width, "system", "measured", "paper (§6)", "")
	for _, r := range e.Rows {
		paper := "-"
		if r.PaperSeconds > 0 {
			paper = fmt.Sprintf("%.1fs", r.PaperSeconds)
		}
		fmt.Fprintf(w, "%-*s  %11.3fs  %14s  %s\n", width, r.System, r.Seconds, paper, r.Note)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Markdown renders the experiment as a Markdown table (for
// EXPERIMENTS.md).
func (e *Experiment) Markdown(w io.Writer) {
	fmt.Fprintf(w, "\n### %s — %s\n\n", e.ID, e.Title)
	fmt.Fprintf(w, "| system | measured | paper |\n|---|---|---|\n")
	for _, r := range e.Rows {
		paper := "—"
		if r.PaperSeconds > 0 {
			paper = fmt.Sprintf("%.1f s", r.PaperSeconds)
		}
		note := ""
		if r.Note != "" {
			note = " (" + r.Note + ")"
		}
		fmt.Fprintf(w, "| %s | %.3f s%s | %s |\n", r.System, r.Seconds, note, paper)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
}

// timeIt measures fn (best of n repeats).
func timeIt(repeats int, fn func() error) (float64, error) {
	if repeats < 1 {
		repeats = 1
	}
	best := 0.0
	for i := 0; i < repeats; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(t0).Seconds()
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// mbOf renders a byte count as MB.
func mbOf(n int) string {
	return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
}

func countLines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}

// header renders a run banner.
func header(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "tuplex-bench: %d-way parallelism, scales: zillow=%d flights=%d weblogs=%d 311=%d q6=%d\n",
		scale.Parallelism, scale.ZillowRows, scale.FlightRows, scale.WeblogRows, scale.Rows311, scale.Q6Rows)
	fmt.Fprintln(w, strings.Repeat("-", 78))
}

// All runs every experiment in order.
func All(scale Scale, w io.Writer) ([]*Experiment, error) {
	header(w, scale)
	var out []*Experiment
	runs := []func(Scale, io.Writer) (*Experiment, error){
		Table2, Fig3Single, Fig3Parallel, Fig4, Fig5, Fig6, Fig7,
		Fig9, Fig10, Fig11, Fig12, Ingest, Join,
	}
	for _, fn := range runs {
		e, err := fn(scale, w)
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
