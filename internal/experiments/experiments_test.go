package experiments

import (
	"io"
	"strings"
	"testing"
)

// tinyScale keeps the smoke tests fast.
func tinyScale() Scale {
	s := DefaultScale()
	s.ZillowRows = 2000
	s.FlightRows = 1500
	s.WeblogRows = 2000
	s.Rows311 = 3000
	s.Q6Rows = 20000
	s.Parallelism = 2
	return s
}

// TestExperimentsSmoke runs every experiment at tiny scale: each must
// complete, produce rows for every system, and never report a zero time
// for a real run.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test is slow")
	}
	scale := tinyScale()
	runs := []struct {
		name string
		fn   func(Scale, io.Writer) (*Experiment, error)
		min  int
	}{
		{"table2", Table2, 5},
		{"fig3a", Fig3Single, 5},
		{"fig3b", Fig3Parallel, 5},
		{"fig4", Fig4, 6},
		{"fig5", Fig5, 10},
		{"fig6", Fig6, 9},
		{"fig7", Fig7, 4},
		{"fig9", Fig9, 7},
		{"fig10", Fig10, 6},
		{"fig11", Fig11, 8},
		{"fig12", Fig12, 2},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			var sb strings.Builder
			e, err := r.fn(scale, &sb)
			if err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
			if len(e.Rows) < r.min {
				t.Fatalf("%s: %d rows, want >= %d", r.name, len(e.Rows), r.min)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Fatalf("%s: printed output missing header", r.name)
			}
			// Markdown rendering must not panic and must contain a table.
			var md strings.Builder
			e.Markdown(&md)
			if !strings.Contains(md.String(), "| system |") {
				t.Fatalf("%s: markdown output malformed", r.name)
			}
		})
	}
}

func TestSpeedupAndFind(t *testing.T) {
	e := &Experiment{Rows: []Row{{System: "a", Seconds: 10}, {System: "b", Seconds: 2}}}
	if got := e.Speedup("a", "b"); got != 5 {
		t.Fatalf("speedup = %v", got)
	}
	if _, ok := e.Find("zz"); ok {
		t.Fatal("found missing system")
	}
}
