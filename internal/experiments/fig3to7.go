package experiments

import (
	"fmt"
	"io"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/blackbox"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
	"github.com/gotuplex/tuplex/internal/pandaframe"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

// Table2 regenerates the dataset-overview table.
func Table2(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Table 2", Title: "Dataset overview (generated, scaled)"}
	zillow := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows, Seed: 1, DirtyFraction: 0.005})
	perf := data.Flights(data.FlightsConfig{Rows: scale.FlightRows, Seed: 1})
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: scale.WeblogRows, Seed: 1})
	svc := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: scale.Rows311, Seed: 1})
	li := data.TPCHLineitem(data.TPCHConfig{Rows: scale.Q6Rows, Seed: 1})
	add := func(name string, b []byte, cols int) {
		e.Rows = append(e.Rows, Row{
			System: name,
			Note:   fmt.Sprintf("%s, %d rows, %d columns", mbOf(len(b)), countLines(b)-1, cols),
		})
	}
	add("Zillow", zillow, 10)
	add("Flights", perf, 110)
	e.Rows = append(e.Rows, Row{System: "Logs",
		Note: fmt.Sprintf("%s, %d rows, 1 column (+%d bad IPs)", mbOf(len(logs)), countLines(logs), countLines(bad)-1)})
	add("311", svc, len(data.ThreeOneOneColumns))
	add("TPC-H lineitem", li, 4)
	e.Notes = append(e.Notes,
		"paper: Zillow 10.0GB/48.7M, Flights 5.9-30.4GB/14-69M, Logs 75.6GB/715M, 311 1.2GB/197.6M, TPC-H SF10 1.5GB/59.9M")
	e.Print(w)
	return e, nil
}

// Fig3Single is the single-threaded Zillow comparison (Fig. 3a).
func Fig3Single(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 3a", Title: "Zillow, single-threaded: Python/Pandas/Tuplex/native"}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows, Seed: 2, DirtyFraction: 0})

	run := func(system string, paper float64, fn func() error) error {
		secs, err := timeIt(scale.Repeats, fn)
		if err != nil {
			return fmt.Errorf("%s: %w", system, err)
		}
		e.Rows = append(e.Rows, Row{System: system, Seconds: secs, PaperSeconds: paper})
		return nil
	}
	if err := run("Python (dict)", 1166.5, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsDicts}).RunZillow(raw)
		return err
	}); err != nil {
		return nil, err
	}
	if err := run("Python (tuple)", 492.7, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsTuples}).RunZillow(raw)
		return err
	}); err != nil {
		return nil, err
	}
	if err := run("Pandas", 609.7, func() error {
		_, err := pandaframe.NewEngine().RunZillow(raw)
		return err
	}); err != nil {
		return nil, err
	}
	if err := run("Tuplex", 76.0, func() error {
		c := tuplex.NewContext(tuplex.WithExecutors(1))
		_, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV("")
		return err
	}); err != nil {
		return nil, err
	}
	if err := run("hand-opt native (C++ analog)", 37.0, func() error {
		out := handopt.ZillowCSV(raw)
		if len(out) == 0 {
			return fmt.Errorf("empty output")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("tuplex vs python-tuple: %.1fx (paper 6.5x); vs dict: %.1fx (paper 15.5x); native vs tuplex: %.2fx (paper ~2x e2e)",
			e.Speedup("Python (tuple)", "Tuplex"), e.Speedup("Python (dict)", "Tuplex"),
			e.Speedup("hand-opt native (C++ analog)", "Tuplex")))
	e.Print(w)
	return e, nil
}

// Fig3Parallel is the 16-way Zillow comparison (Fig. 3b).
func Fig3Parallel(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 3b", Title: fmt.Sprintf("Zillow, %d-way: PySpark/Dask/Tuplex", scale.Parallelism)}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows, Seed: 2, DirtyFraction: 0})
	p := scale.Parallelism

	cases := []struct {
		name  string
		paper float64
		fn    func() error
	}{
		{"PySpark (dict)", 109.4, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: p, RowFormat: blackbox.RowsAsDicts}).RunZillow(raw)
			return err
		}},
		{"PySpark (tuple)", 88.6, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: p, RowFormat: blackbox.RowsAsTuples}).RunZillow(raw)
			return err
		}},
		{"PySparkSQL", 106.8, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePySparkSQL, Executors: p, RowFormat: blackbox.RowsAsDicts}).RunZillow(raw)
			return err
		}},
		{"Dask", 50.0, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p, RowFormat: blackbox.RowsAsDicts}).RunZillow(raw)
			return err
		}},
		{"Tuplex", 5.3, func() error {
			c := tuplex.NewContext(tuplex.WithExecutors(p))
			_, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV("")
			return err
		}},
	}
	for _, cse := range cases {
		secs, err := timeIt(scale.Repeats, cse.fn)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cse.name, err)
		}
		e.Rows = append(e.Rows, Row{System: cse.name, Seconds: secs, PaperSeconds: cse.paper})
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("tuplex vs best pyspark: %.1fx (paper 16.7x); vs dask: %.1fx (paper 9.4x)",
			e.Speedup("PySpark (tuple)", "Tuplex"), e.Speedup("Dask", "Tuplex")))
	e.Print(w)
	return e, nil
}

// Fig4 is the flights comparison at two scales.
func Fig4(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 4", Title: "Flights (3 joins, sparse nulls): Dask/PySparkSQL/Tuplex"}
	p := scale.Parallelism
	carriers, airports := data.Carriers(), data.Airports()
	for _, sc := range []struct {
		label string
		rows  int
		paper map[string]float64
	}{
		{"2y", scale.FlightRows, map[string]float64{"Dask": 804, "PySparkSQL": 185, "Tuplex": 17}},
		{"10y", scale.FlightRows * 5, map[string]float64{"Dask": 3783, "PySparkSQL": 734, "Tuplex": 65}},
	} {
		perf := data.Flights(data.FlightsConfig{Rows: sc.rows, Seed: 3})
		secs, err := timeIt(scale.Repeats, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p}).RunFlights(perf, carriers, airports)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("dask flights: %w", err)
		}
		e.Rows = append(e.Rows, Row{System: "Dask (" + sc.label + ")", Seconds: secs, PaperSeconds: sc.paper["Dask"]})
		secs, err = timeIt(scale.Repeats, func() error {
			_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePySparkSQL, Executors: p}).RunFlights(perf, carriers, airports)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("pysparksql flights: %w", err)
		}
		e.Rows = append(e.Rows, Row{System: "PySparkSQL (" + sc.label + ")", Seconds: secs, PaperSeconds: sc.paper["PySparkSQL"]})
		var exRate float64
		var last *tuplex.Result
		topts := append([]tuplex.Option{tuplex.WithExecutors(p)}, scale.traceOpts()...)
		secs, err = timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(topts...)
			res, err := pipelines.Flights(pipelines.FlightsSources(c, perf, carriers, airports)).Collect()
			if err == nil {
				exRate = res.Metrics.Rows.ExceptionRate()
				last = res
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("tuplex flights: %w", err)
		}
		saveTrace(scale, "flights-"+sc.label, last, w)
		e.Rows = append(e.Rows, Row{System: "Tuplex (" + sc.label + ")", Seconds: secs,
			PaperSeconds: sc.paper["Tuplex"],
			Note:         fmt.Sprintf("%.1f%% rows off normal path (paper 2.6%%)", exRate*100)})
	}
	e.Notes = append(e.Notes, "paper speedups: Tuplex 10.9x over PySparkSQL, 47x over Dask (2y); 11.3x / 58.2x (10y)")
	e.Print(w)
	return e, nil
}

// Fig5 is the weblog comparison across parse variants.
func Fig5(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 5", Title: "Weblogs: strip/split/per-column regex/single regex"}
	p := scale.Parallelism
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: scale.WeblogRows, Seed: 4})

	bb := func(mode blackbox.Mode, variant pipelines.WeblogVariant) func() error {
		return func() error {
			_, err := blackbox.New(blackbox.Config{Mode: mode, Executors: p}).RunWeblogs(logs, bad, variant)
			return err
		}
	}
	tpx := func(variant pipelines.WeblogVariant) func() error {
		return func() error {
			c := tuplex.NewContext(tuplex.WithExecutors(p))
			_, err := pipelines.Weblogs(
				c.Text("", tuplex.TextData(logs)),
				c.CSV("", tuplex.CSVData(bad)), variant).ToCSV("")
			return err
		}
	}
	cases := []struct {
		name  string
		paper float64
		fn    func() error
	}{
		{"PySpark (strip)", 10878, bb(blackbox.ModePySpark, pipelines.WeblogStrip)},
		{"PySpark (single regex)", 11241, bb(blackbox.ModePySpark, pipelines.WeblogRegex)},
		{"PySparkSQL (split)", 2547, bb(blackbox.ModePySparkSQL, pipelines.WeblogSplit)},
		{"PySparkSQL (per-col regex)", 1248, bb(blackbox.ModePySparkSQL, pipelines.WeblogPerColRegex)},
		{"Dask (strip)", 3094, bb(blackbox.ModeDask, pipelines.WeblogStrip)},
		{"Dask (single regex)", 3220, bb(blackbox.ModeDask, pipelines.WeblogRegex)},
		{"Tuplex (strip)", 103, tpx(pipelines.WeblogStrip)},
		{"Tuplex (split)", 140, tpx(pipelines.WeblogSplit)},
		{"Tuplex (per-col regex)", 231, tpx(pipelines.WeblogPerColRegex)},
		{"Tuplex (single regex)", 108, tpx(pipelines.WeblogRegex)},
	}
	for _, cse := range cases {
		secs, err := timeIt(scale.Repeats, cse.fn)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cse.name, err)
		}
		e.Rows = append(e.Rows, Row{System: cse.name, Seconds: secs, PaperSeconds: cse.paper})
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("tuplex(single regex) vs pysparksql(per-col): %.1fx (paper 5.4x); vs dask(strip): %.1fx (paper ~30x)",
			e.Speedup("PySparkSQL (per-col regex)", "Tuplex (single regex)"),
			e.Speedup("Dask (strip)", "Tuplex (single regex)")))
	e.Print(w)
	return e, nil
}

// Fig6 is the PyPy (tracing JIT) comparison over the Zillow setups.
func Fig6(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 6", Title: "Tracing-JIT (PyPy analog) vs interpreter, Zillow"}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows / 2, Seed: 2, DirtyFraction: 0})
	p := scale.Parallelism

	pairs := []struct {
		name  string
		base  blackbox.Config
		paper string
	}{
		{"Python (dict)", blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsDicts}, "paper: pypy ~1.0-1.3x slower"},
		{"Python (tuple)", blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsTuples}, ""},
		{"PySpark (tuple)", blackbox.Config{Mode: blackbox.ModePySpark, Executors: p, RowFormat: blackbox.RowsAsTuples}, ""},
		{"Dask", blackbox.Config{Mode: blackbox.ModeDask, Executors: p, CExtCost: 2}, "paper: ~3x slower under pypy (cpyext)"},
	}
	for _, pr := range pairs {
		cfg := pr.base
		secs, err := timeIt(scale.Repeats, func() error {
			_, err := blackbox.New(cfg).RunZillow(raw)
			return err
		})
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, Row{System: pr.name + " / CPython", Seconds: secs})
		cfgT := cfg
		cfgT.UDFEngine = blackbox.EngineTraced
		secsT, err := timeIt(scale.Repeats, func() error {
			_, err := blackbox.New(cfgT).RunZillow(raw)
			return err
		})
		if err != nil {
			return nil, err
		}
		e.Rows = append(e.Rows, Row{System: pr.name + " / PyPy-analog", Seconds: secsT, Note: pr.paper})
	}
	// Tuplex reference point.
	secs, err := timeIt(scale.Repeats, func() error {
		c := tuplex.NewContext(tuplex.WithExecutors(p))
		_, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV("")
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Tuplex", Seconds: secs})
	e.Notes = append(e.Notes,
		"shape check: the tracing JIT stays boxed and guard-checked, so it cannot approach Tuplex (paper: PyPy never beats CPython here; our traced mode is at best modestly faster)")
	e.Print(w)
	return e, nil
}

// Fig7 compares compile time and runtime across Python compilers.
func Fig7(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 7", Title: "Zillow single-threaded: compile + run across compilers"}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows, Seed: 2, DirtyFraction: 0})

	secs, err := timeIt(scale.Repeats, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePython, RowFormat: blackbox.RowsAsDicts}).RunZillow(raw)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "CPython (interpreter)", Seconds: secs, PaperSeconds: 492.7})

	secs, err = timeIt(scale.Repeats, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePython, UDFEngine: blackbox.EngineTranspiled}).RunZillow(raw)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Cython/Nuitka analog (transpiled, boxed)", Seconds: secs,
		PaperSeconds: 394.1, Note: "paper compile: 5.3-8.5s (gcc); ours: closure build, <1ms"})

	var compile float64
	secs, err = timeIt(scale.Repeats, func() error {
		c := tuplex.NewContext(tuplex.WithExecutors(1))
		res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV("")
		if err == nil {
			compile = res.Metrics.Timings.Compile.Seconds() + res.Metrics.Timings.Sample.Seconds()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Tuplex", Seconds: secs, PaperSeconds: 74.6,
		Note: fmt.Sprintf("compile+sample %.3fs (paper 0.6s)", compile)})

	secs, err = timeIt(scale.Repeats, func() error {
		out := handopt.ZillowCSV(raw)
		if len(out) == 0 {
			return fmt.Errorf("empty output")
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "hand-opt native", Seconds: secs, PaperSeconds: 36.6})
	e.Notes = append(e.Notes,
		fmt.Sprintf("tuplex vs transpiler: %.1fx (paper ~5x); transpiler vs interpreter: %.2fx (paper ~1.25x)",
			e.Speedup("Cython/Nuitka analog (transpiled, boxed)", "Tuplex"),
			e.Speedup("CPython (interpreter)", "Cython/Nuitka analog (transpiled, boxed)")))
	e.Print(w)
	return e, nil
}
