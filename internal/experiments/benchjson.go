package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

// Perf-trajectory harness (`make bench-json`): runs the repo's
// throughput-critical benchmarks via testing.Benchmark and writes the
// results as a fixed-schema JSON array, so each PR can commit a
// BENCH_<n>.json snapshot and future PRs can diff against the committed
// baseline instead of re-deriving "was this always that slow?" from
// scratch. The benchmark bodies mirror BenchmarkIngest / BenchmarkJoin
// / BenchmarkFig4Flights (tuplex arm) / BenchmarkCompilerOptimizations
// in the root _test files; keep them in sync when those change.

// BenchEntry is one benchmark's result in the trajectory file. The
// schema is fixed: future PRs append files with the same fields.
type BenchEntry struct {
	Name string `json:"name"`
	// NsPerOp is wall time per benchmark iteration.
	NsPerOp int64 `json:"ns_per_op"`
	// MBPerSec is input throughput (0 when the benchmark has no byte
	// figure).
	MBPerSec float64 `json:"mb_per_sec"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// RowsPerSec is input rows per second (0 when rows are not the
	// benchmark's unit).
	RowsPerSec float64 `json:"rows_per_sec"`
}

// benchEntry converts a testing.BenchmarkResult, deriving rows/sec from
// the per-iteration input row count.
func benchEntry(name string, rows int64, r testing.BenchmarkResult) BenchEntry {
	e := BenchEntry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		e.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	if rows > 0 && r.NsPerOp() > 0 {
		e.RowsPerSec = float64(rows) / (float64(r.NsPerOp()) / 1e9)
	}
	return e
}

// BenchJSON runs the trajectory benchmarks and writes the JSON array to
// path (progress notes go to w).
func BenchJSON(path string, w io.Writer) error {
	var entries []BenchEntry
	add := func(name string, rows int64, fn func(b *testing.B)) {
		fmt.Fprintf(w, "bench %-28s", name)
		r := testing.Benchmark(fn)
		e := benchEntry(name, rows, r)
		fmt.Fprintf(w, " %12d ns/op", e.NsPerOp)
		if e.MBPerSec > 0 {
			fmt.Fprintf(w, " %8.1f MB/s", e.MBPerSec)
		}
		fmt.Fprintln(w)
		entries = append(entries, e)
	}

	// Ingest: the Zillow pipeline over an on-disk CSV in small chunks,
	// materialized vs streamed (mirrors BenchmarkIngest).
	const ingestRows = 100_000
	raw := data.Zillow(data.ZillowConfig{Rows: ingestRows, Seed: 2})
	dir, err := os.MkdirTemp("", "tuplex-benchjson")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	zpath := filepath.Join(dir, "zillow.csv")
	if err := os.WriteFile(zpath, raw, 0o644); err != nil {
		return err
	}
	const chunk = 256 << 10
	ingest := func(opts ...tuplex.Option) func(b *testing.B) {
		return func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for range b.N {
				c := tuplex.NewContext(opts...)
				res, err := pipelines.Zillow(c.CSV(zpath)).ToCSV("")
				if err != nil {
					b.Fatal(err)
				}
				if len(res.CSV) == 0 {
					b.Fatal("empty output")
				}
			}
		}
	}
	add("ingest/materialized", ingestRows,
		ingest(tuplex.WithExecutors(4), tuplex.WithStreamingIngest(false)))
	add("ingest/streamed", ingestRows,
		ingest(tuplex.WithExecutors(4), tuplex.WithChunkSize(chunk)))

	// Join: Parallelize build/probe sides through the sharded hash join
	// (mirrors BenchmarkJoin).
	const buildN, probeN = 2_000, 20_000
	build := make([][]any, buildN)
	for i := range build {
		build[i] = []any{int64(i), fmt.Sprintf("name-%d", i)}
	}
	probe := make([][]any, probeN)
	for i := range probe {
		probe[i] = []any{int64(i % (buildN * 5 / 4)), float64(i)}
	}
	add("join/sharded", probeN, func(b *testing.B) {
		b.ReportAllocs()
		for range b.N {
			c := tuplex.NewContext()
			lhs := c.Parallelize(probe, []string{"k", "v"})
			rhs := c.Parallelize(build, []string{"k", "name"})
			res, err := lhs.Join(rhs, "k", "k").Collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no join output")
			}
		}
	})

	// Flights: the two-join pipeline (mirrors BenchmarkFig4Flights's
	// tuplex arm).
	const flightRows = 10_000
	flights := data.Flights(data.FlightsConfig{Rows: flightRows, Seed: 3})
	carriers, airports := data.Carriers(), data.Airports()
	add("flights/tuplex", flightRows, func(b *testing.B) {
		b.ReportAllocs()
		for range b.N {
			c := tuplex.NewContext(tuplex.WithExecutors(4))
			res, err := pipelines.Flights(pipelines.FlightsSources(c, flights, carriers, airports)).Collect()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("no rows")
			}
		}
	})

	// Compiler optimizations: prunable-branch UDF, optimized vs not
	// (mirrors BenchmarkCompilerOptimizations).
	const optRows = 50_000
	var sb []byte
	sb = append(sb, "i,j,flag,tag\n"...)
	for n := range optRows {
		sb = fmt.Appendf(sb, "%d,%d,%d,steady\n", n, n%97+1, n%10)
	}
	udf := tuplex.UDF(
		"lambda x: x['i'] * x['i'] + x['j'] if x['flag'] > 100 else " +
			"(x['i'] + x['j'] if x['tag'] == 'never-this-value' else x['i'] - x['j'])")
	opt := func(on bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for range b.N {
				c := tuplex.NewContext(
					tuplex.WithExecutors(1), tuplex.WithCompilerOptimizations(on))
				res, err := c.CSV("", tuplex.CSVData(sb)).WithColumn("v", udf).Collect()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != optRows {
					b.Fatalf("rows = %d, want %d", len(res.Rows), optRows)
				}
			}
		}
	}
	add("compileropt/optimized", optRows, opt(true))
	add("compileropt/unoptimized", optRows, opt(false))

	// Serve: per-job daemon latency cold (sample+compile every time) vs
	// warm (compiled-pipeline cache hit), plus sustained jobs/sec.
	serve, err := serveEntries(w)
	if err != nil {
		return err
	}
	entries = append(entries, serve...)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}
