package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/pipelines"
)

// Ingest measures the streamed-vs-materialized ingest paths end to end:
// the Zillow pipeline over an on-disk CSV (so file I/O is on the
// measured path), at one executor and at full parallelism. The streamed
// path overlaps disk reads, record splitting, parsing and UDF execution
// (§4.4); materialized ingest reads and splits the whole file before the
// first executor runs.
func Ingest(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Ingest", Title: "Streamed vs materialized ingest (on-disk Zillow → CSV)"}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows, Seed: 2})
	dir, err := os.MkdirTemp("", "tuplex-ingest")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "zillow.csv")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return nil, err
	}

	run := func(system string, opts ...tuplex.Option) error {
		var m *tuplex.Metrics
		var last *tuplex.Result
		opts = append(opts, scale.traceOpts()...)
		secs, err := timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(opts...)
			res, err := pipelines.Zillow(c.CSV(path)).ToCSV("")
			if err == nil {
				m = res.Metrics
				last = res
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", system, err)
		}
		note := ""
		if m != nil && len(m.Stages) > 0 {
			s := m.Stages[0]
			note = fmt.Sprintf("%.0f rows/s, %.1f MB/s", s.RowsPerSec(), s.MBPerSec())
		}
		e.Rows = append(e.Rows, Row{System: system, Seconds: secs, Note: note})
		saveTrace(scale, "ingest-"+system, last, w)
		return nil
	}

	p := scale.Parallelism
	if err := run("materialized, 1 executor", tuplex.WithExecutors(1), tuplex.WithStreamingIngest(false)); err != nil {
		return nil, err
	}
	if err := run("streamed, 1 executor", tuplex.WithExecutors(1)); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("materialized, %d executors", p),
		tuplex.WithExecutors(p), tuplex.WithStreamingIngest(false)); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("streamed, %d executors", p), tuplex.WithExecutors(p)); err != nil {
		return nil, err
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("input %s on disk; streamed speedup %.2fx single-threaded, %.2fx at %d executors",
			mbOf(len(raw)),
			e.Speedup("materialized, 1 executor", "streamed, 1 executor"),
			e.Speedup(fmt.Sprintf("materialized, %d executors", p), fmt.Sprintf("streamed, %d executors", p)), p))
	e.Print(w)
	return e, nil
}
