package experiments

import (
	"fmt"
	"io"
	"math/rand"

	tuplex "github.com/gotuplex/tuplex"
)

// Join measures the sharded hash-join kernels (§4.5): an inner join of a
// probe table against a smaller build table, plus a Unique() pass over
// the probe keys, at one executor and at full parallelism. Notes report
// build/probe throughput and shard balance from Result.Metrics.Join.
func Join(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Join", Title: "Sharded hash join build/probe and unique"}

	probeRows := scale.FlightRows * 4
	buildRows := scale.FlightRows / 2
	if buildRows < 1 {
		buildRows = 1
	}
	rng := rand.New(rand.NewSource(7))
	build := make([][]any, buildRows)
	for i := range build {
		build[i] = []any{int64(i), fmt.Sprintf("carrier-%d", i%97)}
	}
	probe := make([][]any, probeRows)
	for i := range probe {
		// ~80% of probe keys hit the build side.
		k := int64(rng.Intn(buildRows * 5 / 4))
		probe[i] = []any{k, float64(i) * 0.5}
	}

	runJoin := func(system string, executors int) error {
		var m *tuplex.Metrics
		var last *tuplex.Result
		opts := append([]tuplex.Option{tuplex.WithExecutors(executors)}, scale.traceOpts()...)
		secs, err := timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(opts...)
			lhs := c.Parallelize(probe, []string{"code", "delay"})
			rhs := c.Parallelize(build, []string{"code", "carrier"})
			res, err := lhs.Join(rhs, "code", "code").Collect()
			if err == nil {
				m = res.Metrics
				last = res
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", system, err)
		}
		saveTrace(scale, "join-"+system, last, w)
		note := ""
		if m != nil {
			j := m.Join
			note = fmt.Sprintf("%.0f probe rows/s, hit rate %.0f%%, %d shards, balance %.2f",
				float64(j.ProbeHits+j.ProbeMisses)/secs,
				j.HitRate()*100, j.Shards, j.ShardBalance())
		}
		e.Rows = append(e.Rows, Row{System: system, Seconds: secs, Note: note})
		return nil
	}

	runUnique := func(system string, executors int) error {
		var nout int
		secs, err := timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(tuplex.WithExecutors(executors))
			res, err := c.Parallelize(probe, []string{"code", "delay"}).
				SelectColumns("code").Unique().Collect()
			if err == nil {
				nout = len(res.Rows)
			}
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", system, err)
		}
		e.Rows = append(e.Rows, Row{System: system, Seconds: secs,
			Note: fmt.Sprintf("%.0f rows/s, %d distinct", float64(probeRows)/secs, nout)})
		return nil
	}

	p := scale.Parallelism
	if err := runJoin("join, 1 executor", 1); err != nil {
		return nil, err
	}
	if err := runJoin(fmt.Sprintf("join, %d executors", p), p); err != nil {
		return nil, err
	}
	if err := runUnique("unique, 1 executor", 1); err != nil {
		return nil, err
	}
	if err := runUnique(fmt.Sprintf("unique, %d executors", p), p); err != nil {
		return nil, err
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("build %d rows, probe %d rows; join speedup %.2fx, unique speedup %.2fx at %d executors",
			buildRows, probeRows,
			e.Speedup("join, 1 executor", fmt.Sprintf("join, %d executors", p)),
			e.Speedup("unique, 1 executor", fmt.Sprintf("unique, %d executors", p)), p))
	e.Print(w)
	return e, nil
}
