package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/blackbox"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/hyper"
	"github.com/gotuplex/tuplex/internal/lambda"
	"github.com/gotuplex/tuplex/internal/pandaframe"
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/weld"
)

// Fig9 is the 311 cleaning comparison vs Weld (Figs. 8/9: query-only and
// end-to-end).
func Fig9(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 9", Title: "311 cleaning vs Weld: query-only and end-to-end"}
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: scale.Rows311, Seed: 5})
	p := scale.Parallelism

	// Weld query-only: columns preloaded, time the fused kernel.
	zips, err := pandaframe.Run311Load(raw)
	if err != nil {
		return nil, err
	}
	secs, err := timeIt(scale.Repeats, func() error {
		if len(weld.Clean311(zips)) == 0 {
			return fmt.Errorf("empty weld result")
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Weld (query only)", Seconds: secs, PaperSeconds: 17.1})

	// Weld end-to-end: Pandas-analog load + kernel.
	secs, err = timeIt(scale.Repeats, func() error {
		_, err := weld.Run311EndToEnd(raw)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Weld e2e (Pandas load + kernel)", Seconds: secs, PaperSeconds: 82.8})

	// Tuplex single-threaded, end-to-end and compute-only (from metrics).
	var computeOnly float64
	secs, err = timeIt(scale.Repeats, func() error {
		c := tuplex.NewContext(tuplex.WithExecutors(1))
		res, err := pipelines.ThreeOneOne(c.CSV("", tuplex.CSVData(raw))).Collect()
		if err == nil {
			computeOnly = (res.Metrics.Timings.Execute + res.Metrics.Timings.Compile +
				res.Metrics.Timings.Sample + res.Metrics.Timings.Resolve).Seconds()
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Tuplex 1x (query only)", Seconds: computeOnly, PaperSeconds: 23.0,
		Note: "compile+sample+exec from metrics"})
	e.Rows = append(e.Rows, Row{System: "Tuplex 1x e2e", Seconds: secs, PaperSeconds: 41.0})

	// Parallel comparisons.
	secs, err = timeIt(scale.Repeats, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: p}).Run311(raw)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: fmt.Sprintf("PySpark %dx e2e", p), Seconds: secs, PaperSeconds: 410.2})
	secs, err = timeIt(scale.Repeats, func() error {
		_, err := blackbox.New(blackbox.Config{Mode: blackbox.ModeDask, Executors: p}).Run311(raw)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: fmt.Sprintf("Dask %dx e2e", p), Seconds: secs, PaperSeconds: 264.4})
	secs, err = timeIt(scale.Repeats, func() error {
		c := tuplex.NewContext(tuplex.WithExecutors(p))
		_, err := pipelines.ThreeOneOne(c.CSV("", tuplex.CSVData(raw))).Collect()
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: fmt.Sprintf("Tuplex %dx e2e (parallel)", p), Seconds: secs, PaperSeconds: 6.3})
	e.Notes = append(e.Notes,
		fmt.Sprintf("shape: weld wins query-only (%.1fx vs tuplex 1x; paper 1.35x), tuplex wins e2e (%.1fx; paper 2x)",
			func() float64 {
				r, _ := e.Find("Tuplex 1x (query only)")
				q, _ := e.Find("Weld (query only)")
				return r.Seconds / math.Max(q.Seconds, 1e-9)
			}(),
			e.Speedup("Weld e2e (Pandas load + kernel)", "Tuplex 1x e2e")))
	e.Print(w)
	return e, nil
}

// Fig10 is TPC-H Q6 vs Weld and Hyper.
func Fig10(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 10", Title: "TPC-H Q6 vs Weld (vectorized) and Hyper (indexed)"}
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: scale.Q6Rows, Seed: 6})
	p := scale.Parallelism

	// Weld: query-only on preloaded columns; e2e includes columnar load.
	cols, err := weld.LoadQ6(raw)
	if err != nil {
		return nil, err
	}
	secs, err := timeIt(scale.Repeats, func() error {
		weld.Q6(cols, data.Q6DateLo, data.Q6DateHi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Weld (query only)", Seconds: secs, PaperSeconds: 0.69})
	secs, err = timeIt(scale.Repeats, func() error {
		c, err := weld.LoadQ6(raw)
		if err != nil {
			return err
		}
		weld.Q6(c, data.Q6DateLo, data.Q6DateHi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Weld e2e (load + kernel)", Seconds: secs, PaperSeconds: 20.1})

	// Hyper: indexed query-only; e2e includes load + index build.
	tab, err := hyper.Load(raw)
	if err != nil {
		return nil, err
	}
	tab.BuildIndex()
	secs, err = timeIt(scale.Repeats, func() error {
		tab.Q6Indexed(data.Q6DateLo, data.Q6DateHi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Hyper (indexed, query only)", Seconds: secs, PaperSeconds: 0.09})
	secs, err = timeIt(scale.Repeats, func() error {
		t2, err := hyper.Load(raw)
		if err != nil {
			return err
		}
		t2.BuildIndex()
		t2.Q6Indexed(data.Q6DateLo, data.Q6DateHi)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Hyper e2e (load + index + query)", Seconds: secs, PaperSeconds: 21.7})

	// Tuplex: aggregation inlined into the generated parser.
	var computeOnly float64
	tupRun := func(execs int) (float64, error) {
		return timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(tuplex.WithExecutors(execs))
			_, res, err := pipelines.Q6(c.CSV("", tuplex.CSVData(raw)))
			if err == nil {
				computeOnly = (res.Metrics.Timings.Execute + res.Metrics.Timings.Compile +
					res.Metrics.Timings.Sample + res.Metrics.Timings.Resolve).Seconds()
			}
			return err
		})
	}
	secs, err = tupRun(1)
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Tuplex 1x e2e", Seconds: secs, PaperSeconds: 39.3,
		Note: fmt.Sprintf("query-only %.3fs (paper 1.45s)", computeOnly)})
	secs, err = tupRun(p)
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: fmt.Sprintf("Tuplex %dx e2e (parallel)", p), Seconds: secs, PaperSeconds: 3.1})
	e.Notes = append(e.Notes,
		"shape: indexes/vectorization win query-only; Tuplex wins e2e by avoiding upfront load/index (paper: 7x vs Hyper, 2x vs Weld)")
	e.Print(w)
	return e, nil
}

// Fig11 is the factor analysis on the flights pipeline: logical
// optimizations, stage fusion, null-value optimization, each with and
// without compiler specialization.
func Fig11(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 11", Title: "Factor analysis (flights): +logical, +fusion, +null opt x compiler opts"}
	perf := data.Flights(data.FlightsConfig{Rows: scale.FlightRows, Seed: 7})
	carriers, airports := data.Carriers(), data.Airports()
	execs := 4 // the paper pins this experiment to 4-way on one NUMA node

	type cfg struct {
		name    string
		paper   float64
		options []tuplex.Option
	}
	mk := func(logical, fusion, nullOpt, compilerOpt bool) []tuplex.Option {
		opts := []tuplex.Option{tuplex.WithExecutors(execs)}
		if !logical {
			opts = append(opts, tuplex.WithoutLogicalOptimizations())
		}
		if !fusion {
			opts = append(opts, tuplex.WithoutStageFusion())
		}
		if !nullOpt {
			opts = append(opts, tuplex.WithoutNullOptimization())
		}
		if !compilerOpt {
			opts = append(opts, tuplex.WithoutCompilerOptimizations())
		}
		return opts
	}
	cases := []cfg{
		{"unopt", 441, mk(false, false, false, false)},
		{"+ logical", 178, mk(true, false, false, false)},
		{"+ stage fusion", 147, mk(true, true, false, false)},
		{"+ null opt", 122, mk(true, true, true, false)},
		{"+ compiler opts (all)", 57, mk(true, true, true, true)},
		{"compiler opts only", 333, mk(false, false, false, true)},
		{"compiler + logical", 96, mk(true, false, false, true)},
		{"compiler + fusion", 62, mk(true, true, false, true)},
	}
	for _, cse := range cases {
		opts := cse.options
		secs, err := timeIt(scale.Repeats, func() error {
			c := tuplex.NewContext(opts...)
			_, err := pipelines.Flights(pipelines.FlightsSources(c, perf, carriers, airports)).Collect()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cse.name, err)
		}
		e.Rows = append(e.Rows, Row{System: cse.name, Seconds: secs, PaperSeconds: cse.paper})
	}
	e.Notes = append(e.Notes,
		fmt.Sprintf("logical opts: %.2fx (paper 2.5x); fusion on top: %.2fx (paper ~1.2x); full stack vs unopt: %.1fx (paper 7.7x)",
			e.Speedup("unopt", "+ logical"),
			e.Speedup("+ logical", "+ stage fusion"),
			e.Speedup("unopt", "+ compiler opts (all)")))
	e.Notes = append(e.Notes, "§6.3.3: '+ null opt' vs '+ stage fusion' isolates shifting rare nulls off the normal path (paper: 8-17% compute)")
	e.Print(w)
	return e, nil
}

// Fig12 is the distributed scale-out comparison: serverless Tuplex vs a
// fixed Spark-style cluster over chunked objects.
func Fig12(scale Scale, w io.Writer) (*Experiment, error) {
	e := &Experiment{ID: "Fig 12", Title: "Distributed: 64 Lambdas (Tuplex) vs 64-executor cluster (blackbox)"}
	raw := data.Zillow(data.ZillowConfig{Rows: scale.ZillowRows * 2, Seed: 8, DirtyFraction: 0})
	store := lambda.NewObjectStore()
	chunkSize := len(raw)/48 + 1
	lambda.UploadChunks(store, "in/zillow", lambda.ChunkCSV(raw, chunkSize, true))

	concurrency := 64
	tuplexTask := func(chunk []byte) ([]byte, error) {
		c := tuplex.NewContext(tuplex.WithExecutors(1))
		res, err := pipelines.Zillow(c.CSV("", tuplex.CSVData(chunk))).ToCSV("")
		if err != nil {
			return nil, err
		}
		return res.CSV, nil
	}
	sparkTask := func(chunk []byte) ([]byte, error) {
		eng := blackbox.New(blackbox.Config{Mode: blackbox.ModePySpark, Executors: 1, RowFormat: blackbox.RowsAsTuples})
		f, err := eng.RunZillow(chunk)
		if err != nil {
			return nil, err
		}
		return eng.ToCSV(f), nil
	}

	cfg := lambda.DefaultConfig()
	cfg.MaxConcurrency = concurrency
	b := lambda.NewBackend(cfg)
	var lstats *lambda.Stats
	secs, err := timeIt(1, func() error {
		var err error
		lstats, err = b.Run(store, "in/zillow", "out/zillow-"+fmt.Sprint(time.Now().UnixNano()), tuplexTask)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Tuplex (64 Lambdas)", Seconds: secs, PaperSeconds: 31.5,
		Note: fmt.Sprintf("%d tasks, %d cold starts, writes to object store", lstats.Tasks, lstats.ColdStarts)})

	cl := &lambda.Cluster{Executors: concurrency}
	secs, err = timeIt(1, func() error {
		_, _, err := cl.Run(store, "in/zillow", sparkTask)
		return err
	})
	if err != nil {
		return nil, err
	}
	e.Rows = append(e.Rows, Row{System: "Spark cluster (64 executors)", Seconds: secs, PaperSeconds: 209.0,
		Note: "no provisioning cost, driver collect"})
	e.Notes = append(e.Notes,
		fmt.Sprintf("tuplex advantage: %.1fx (paper 5.1-6.6x) — compiled UDFs amortize the serverless overheads",
			e.Speedup("Spark cluster (64 executors)", "Tuplex (64 Lambdas)")))
	e.Print(w)
	return e, nil
}
