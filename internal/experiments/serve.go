package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/service"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// Serve-path entries for the trajectory file: what a tuplex-serve
// daemon costs per job. cold_submit compiles every plan (distinct
// fingerprints), warm_submit resubmits one byte-identical plan (cache
// hit skipping sample+compile — the gap between the two is what the
// compiled-pipeline cache saves), throughput is a concurrent
// warm-submission storm where rows_per_sec reads as jobs/sec.

// servePlan builds the loadgen "small" workload: tiny data under
// expression-heavy UDFs, so compilation dominates cold latency.
func servePlan(k int64) (*tuplex.Plan, error) {
	c := tuplex.NewContext(tuplex.WithExecutors(1))
	d := c.Parallelize([][]any{
		{int64(1), "aa"}, {int64(2), "bb"}, {int64(3), "cc"}, {int64(4), "dd"},
	}, []string{"a", "s"})
	prev := "a"
	for i := 0; i < 6; i++ {
		col := fmt.Sprintf("c%d", i)
		var sb []byte
		sb = fmt.Appendf(sb, "lambda x: x['%s'] + k0", prev)
		for t := 0; t < 40; t++ {
			sb = fmt.Appendf(sb, " + (x['%s'] * %d if x['%s'] %% %d == 0 else %d - x['%s'])",
				prev, t+1, prev, t+2, t, prev)
		}
		d = d.WithColumn(col, tuplex.UDF(string(sb)).WithGlobal("k0", k))
		prev = col
	}
	return d.SelectColumns("a", prev, "s").Plan()
}

// tinyServePlan is the per-job floor workload (minimal spec, minimal
// execution) used for the throughput entry.
func tinyServePlan(k int64) (*tuplex.Plan, error) {
	c := tuplex.NewContext(tuplex.WithExecutors(1))
	return c.Parallelize([][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}}, []string{"a"}).
		Map(tuplex.UDF("lambda a: a * k + 1").WithGlobal("k", k)).
		Plan()
}

// serveEntries measures the daemon over real HTTP on a loopback port.
func serveEntries(w io.Writer) ([]BenchEntry, error) {
	srv, err := service.Serve(service.Config{
		Addr:         "127.0.0.1:0",
		CacheEntries: 1 << 20, // cold benchmark must never evict
		Registry:     telemetry.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	cl := tuplex.NewClient("http://" + srv.Addr())
	ctx := context.Background()

	var entries []BenchEntry
	report := func(e BenchEntry) {
		fmt.Fprintf(w, "bench %-28s %12d ns/op %10.0f jobs/s\n", e.Name, e.NsPerOp, e.RowsPerSec)
		entries = append(entries, e)
	}

	// Cold: every submission is a distinct fingerprint, so each one
	// samples and compiles before it runs.
	var seq atomic.Int64
	seq.Store(1) // 0 is used below as the warm plan
	var benchErr error
	submit := func(p *tuplex.Plan) {
		if benchErr != nil {
			return
		}
		if _, err := cl.Submit(ctx, p); err != nil {
			benchErr = err
		}
	}
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := servePlan(seq.Add(1))
			if err != nil {
				benchErr = err
				return
			}
			submit(p)
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	report(benchEntry("serve/cold_submit", 1, cold))

	// Warm: one byte-identical plan over and over — after the first
	// submission every run is a cache hit.
	warmPlan, err := servePlan(0)
	if err != nil {
		return nil, err
	}
	submit(warmPlan)
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			submit(warmPlan)
		}
	})
	if benchErr != nil {
		return nil, benchErr
	}
	report(benchEntry("serve/warm_submit", 1, warm))

	// Throughput: concurrent warm submissions of the floor workload;
	// rows_per_sec is jobs/sec.
	tiny, err := tinyServePlan(0)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Submit(ctx, tiny); err != nil {
		return nil, err
	}
	const jobs, workers = 3000, 8
	var next, failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= jobs {
				if _, err := cl.Submit(ctx, tiny); err != nil {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("serve/throughput: %d submissions failed", n)
	}
	report(BenchEntry{
		Name:       "serve/throughput",
		NsPerOp:    elapsed.Nanoseconds() / jobs,
		RowsPerSec: float64(jobs) / elapsed.Seconds(),
	})
	return entries, nil
}
