// Package logical defines the operator DAG Tuplex pipelines build and
// the logical optimizations of §4.7: projection pushdown into sources,
// filter pushdown through UDFs, and reordering of column-rewriting UDFs
// past selective joins. All three are possible only because the planner
// sees inside Python UDFs via pyast.AnalyzeColumns — the optimization the
// paper contrasts against Spark/Dask's black-box UDFs.
package logical

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
)

// UDFSpec is a parsed user function plus everything the planner knows
// about it.
type UDFSpec struct {
	Source  string
	Fn      *pyast.Function
	Access  *pyast.ColumnAccess
	Globals map[string]pyvalue.Value
}

// ParseUDF parses UDF source and analyzes its column access.
func ParseUDF(source string, globals map[string]pyvalue.Value) (*UDFSpec, error) {
	fn, err := pyast.ParseUDF(source)
	if err != nil {
		return nil, err
	}
	return &UDFSpec{
		Source:  source,
		Fn:      fn,
		Access:  pyast.AnalyzeColumns(fn),
		Globals: globals,
	}, nil
}

// Op is a logical operator.
type Op interface {
	Name() string
}

// CSVSource reads CSV data (from a path or preloaded bytes).
type CSVSource struct {
	Path string
	// Data preloads the file content (tests and generated data).
	Data []byte
	// Delim is the field delimiter (default ',').
	Delim byte
	// Header reports whether the first record is a header row.
	Header bool
	// Columns supplies column names when Header is false.
	Columns []string
	// NullValues are the null spellings for this source.
	NullValues []string
	// projected is the set of live columns recorded by projection
	// pushdown; nil means all columns.
	projected []string
}

// TextSource reads newline-delimited text as single-column rows.
type TextSource struct {
	Path string
	Data []byte
	// Column is the single column's name (default "value").
	Column string
}

// ParallelizeSource wraps in-memory rows. SlotRows is the primary
// representation (unboxed slots over a shared slab, so the engine
// classifies and executes without a boxed detour); Rows is the legacy
// boxed form, still honored when SlotRows is nil.
type ParallelizeSource struct {
	Rows     [][]pyvalue.Value
	SlotRows []rows.Row
	Names    []string
}

// MapOp replaces each row with the UDF result (dict/tuple results become
// multi-column rows).
type MapOp struct{ UDF *UDFSpec }

// FilterOp keeps rows whose UDF result is truthy.
type FilterOp struct{ UDF *UDFSpec }

// WithColumnOp adds or replaces a column computed from the whole row.
type WithColumnOp struct {
	Col string
	UDF *UDFSpec
}

// MapColumnOp rewrites one column; its UDF receives the column value.
type MapColumnOp struct {
	Col string
	UDF *UDFSpec
}

// RenameOp renames a column.
type RenameOp struct{ Old, New string }

// SelectOp projects to the named columns, in order.
type SelectOp struct{ Cols []string }

// ResolveOp attaches an exception resolver to the nearest preceding UDF
// operator (§3's .resolve example).
type ResolveOp struct {
	Exc pyvalue.ExcKind
	UDF *UDFSpec
}

// IgnoreOp drops rows that raised the given exception in the nearest
// preceding UDF operator.
type IgnoreOp struct{ Exc pyvalue.ExcKind }

// JoinOp hash-joins with another plan (the build side, per §4.5 the
// right/"smaller" input).
type JoinOp struct {
	Build    *Node
	LeftKey  string
	RightKey string
	// Left reports a left outer join (unmatched probe rows padded with
	// nulls).
	Left bool
	// LeftPrefix/RightPrefix prepend to column names of each side.
	LeftPrefix  string
	RightPrefix string
}

// AggregateOp folds all rows into one accumulator (§4.6).
type AggregateOp struct {
	// Agg is the per-row UDF: lambda acc, row: ...
	Agg *UDFSpec
	// Comb merges two partial accumulators: lambda a, b: ...
	Comb *UDFSpec
	// Initial is the initial accumulator value.
	Initial pyvalue.Value
}

// UniqueOp deduplicates rows.
type UniqueOp struct{}

// CacheOp materializes the rows at this point (stage boundary).
type CacheOp struct{}

func (*CSVSource) Name() string         { return "csv" }
func (*TextSource) Name() string        { return "text" }
func (*ParallelizeSource) Name() string { return "parallelize" }
func (*MapOp) Name() string             { return "map" }
func (*FilterOp) Name() string          { return "filter" }
func (*WithColumnOp) Name() string      { return "withColumn" }
func (*MapColumnOp) Name() string       { return "mapColumn" }
func (*RenameOp) Name() string          { return "renameColumn" }
func (*SelectOp) Name() string          { return "selectColumns" }
func (*ResolveOp) Name() string         { return "resolve" }
func (*IgnoreOp) Name() string          { return "ignore" }
func (*JoinOp) Name() string            { return "join" }
func (*AggregateOp) Name() string       { return "aggregate" }
func (*UniqueOp) Name() string          { return "unique" }
func (*CacheOp) Name() string           { return "cache" }

// Node is one vertex of the plan: an operator and its upstream input
// (nil for sources). Join build sides hang off the JoinOp itself.
type Node struct {
	Op    Op
	Input *Node
}

// Chain returns the operators from source to n, in execution order.
func (n *Node) Chain() []*Node {
	var out []*Node
	for cur := n; cur != nil; cur = cur.Input {
		out = append(out, cur)
	}
	// Reverse.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// String renders the chain for plan debugging.
func (n *Node) String() string {
	s := ""
	for i, nd := range n.Chain() {
		if i > 0 {
			s += " -> "
		}
		s += nd.Op.Name()
	}
	return s
}

// Options toggles the logical optimizations (Fig. 11 factors).
type Options struct {
	// ProjectionPushdown prunes unread columns at the source.
	ProjectionPushdown bool
	// FilterPushdown hoists filters above column-producing operators
	// they do not depend on.
	FilterPushdown bool
	// JoinReorder pushes column-rewriting UDFs past selective joins.
	JoinReorder bool
}

// AllOptimizations enables everything.
func AllOptimizations() Options {
	return Options{ProjectionPushdown: true, FilterPushdown: true, JoinReorder: true}
}

// Optimize rewrites the plan chain under opts and returns the new sink
// node. The required columns at the sink (for projection pushdown) are
// everything the sink itself needs; callers pass the final select's
// columns implicitly via the chain.
func Optimize(sink *Node, opts Options) (*Node, error) {
	nodes := sink.Chain()
	// Recursively optimize join build sides first.
	for _, nd := range nodes {
		if j, ok := nd.Op.(*JoinOp); ok {
			ob, err := Optimize(j.Build, opts)
			if err != nil {
				return nil, err
			}
			j.Build = ob
		}
	}
	ops := make([]Op, len(nodes))
	for i, nd := range nodes {
		ops[i] = nd.Op
	}
	var err error
	if opts.FilterPushdown {
		ops = pushdownFilters(ops)
	}
	if opts.JoinReorder {
		ops = reorderPastJoins(ops)
	}
	if opts.ProjectionPushdown {
		ops, err = pushdownProjection(ops)
		if err != nil {
			return nil, err
		}
	}
	return rebuild(ops), nil
}

func rebuild(ops []Op) *Node {
	var cur *Node
	for _, op := range ops {
		cur = &Node{Op: op, Input: cur}
	}
	return cur
}

// producedColumn returns the column an op writes, or "" when it writes
// none / is not a simple column producer.
func producedColumn(op Op) string {
	switch op := op.(type) {
	case *WithColumnOp:
		return op.Col
	case *MapColumnOp:
		return op.Col
	default:
		return ""
	}
}

// readsColumns returns the set of column names an op reads, and whether
// it must be treated as reading everything.
func readsColumns(op Op) (map[string]bool, bool) {
	switch op := op.(type) {
	case *FilterOp:
		return accessSet(op.UDF)
	case *MapOp:
		return accessSet(op.UDF)
	case *WithColumnOp:
		return accessSet(op.UDF)
	case *MapColumnOp:
		return map[string]bool{op.Col: true}, false
	case *JoinOp:
		return map[string]bool{op.LeftKey: true}, false
	case *SelectOp:
		s := map[string]bool{}
		for _, c := range op.Cols {
			s[c] = true
		}
		return s, false
	case *RenameOp:
		return map[string]bool{op.Old: true}, false
	case *AggregateOp, *UniqueOp, *CacheOp:
		return nil, true
	default:
		return map[string]bool{}, false
	}
}

func accessSet(u *UDFSpec) (map[string]bool, bool) {
	if u.Access.WholeRow || len(u.Access.ByIndex) > 0 {
		// Positional access pins every column (positions shift under
		// projection).
		return nil, true
	}
	s := map[string]bool{}
	for _, c := range u.Access.ByName {
		s[c] = true
	}
	return s, false
}

// pushdownFilters moves each filter up past operators that do not
// produce a column the filter reads and do not change row multiplicity
// or structure.
func pushdownFilters(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	changed := true
	for changed {
		changed = false
		for i := 1; i < len(out); i++ {
			f, isFilter := out[i].(*FilterOp)
			if !isFilter {
				continue
			}
			reads, whole := readsColumns(f)
			if whole {
				continue
			}
			prev := out[i-1]
			movable := false
			switch p := prev.(type) {
			case *WithColumnOp:
				movable = !reads[p.Col]
			case *MapColumnOp:
				movable = !reads[p.Col]
			case *RenameOp:
				// Filter below the rename must read the old name instead;
				// skip (names are part of UDF source).
				movable = false
			default:
				movable = false
			}
			if movable {
				out[i-1], out[i] = out[i], out[i-1]
				changed = true
			}
		}
	}
	return out
}

// reorderPastJoins pushes a MapColumn that rewrites a non-key column
// below a subsequent selective join (§6.3.1's weblog optimization): the
// join shrinks the row count, so the UDF runs on fewer rows.
func reorderPastJoins(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	changed := true
	for changed {
		changed = false
		for i := 0; i+1 < len(out); i++ {
			mc, isMapCol := out[i].(*MapColumnOp)
			if !isMapCol {
				continue
			}
			j, isJoin := out[i+1].(*JoinOp)
			if !isJoin {
				continue
			}
			if j.LeftKey == mc.Col {
				continue // the join reads this column
			}
			if j.LeftPrefix != "" {
				continue // renaming would orphan the UDF's column
			}
			out[i], out[i+1] = out[i+1], out[i]
			changed = true
		}
	}
	return out
}

// pushdownProjection computes, per plan position, which source columns
// are still needed downstream, narrows CSV sources to exactly those
// columns (the engine's generated parser then skips the rest), and
// eliminates column-producing operators whose output is dead.
func pushdownProjection(ops []Op) ([]Op, error) {
	// Walk backward accumulating required column names. A terminal
	// Select pins its columns; until one is seen, everything is live.
	required := map[string]bool{}
	all := true
	keep := make([]bool, len(ops))
	for i := range keep {
		keep[i] = true
	}
	for i := len(ops) - 1; i >= 0; i-- {
		switch op := ops[i].(type) {
		case *SelectOp:
			if all {
				all = false
				required = map[string]bool{}
			}
			for _, c := range op.Cols {
				required[c] = true
			}
		case *RenameOp:
			if !all {
				if !required[op.New] {
					keep[i] = false // dead rename
					continue
				}
				delete(required, op.New)
				required[op.Old] = true
			}
		case *WithColumnOp:
			if !all {
				if !required[op.Col] {
					keep[i] = false // dead column producer
					continue
				}
				// The produced column no longer needs to come from
				// upstream; the UDF inputs do.
				delete(required, op.Col)
				reads, whole := accessSet(op.UDF)
				if whole {
					all = true
					continue
				}
				for c := range reads {
					required[c] = true
				}
			}
		case *MapColumnOp:
			if !all {
				if !required[op.Col] {
					keep[i] = false // rewrites a dead column
					continue
				}
				required[op.Col] = true
			}
		case *FilterOp:
			if !all {
				reads, whole := accessSet(op.UDF)
				if whole {
					all = true
					continue
				}
				for c := range reads {
					required[c] = true
				}
			}
		case *MapOp:
			if !all {
				reads, whole := accessSet(op.UDF)
				if whole {
					all = true
					continue
				}
				// A map replaces the whole row; upstream requirements are
				// exactly the UDF's reads.
				required = map[string]bool{}
				for c := range reads {
					required[c] = true
				}
			}
		case *JoinOp:
			if !all {
				// Columns produced by the build side come from the build
				// plan, not upstream (approximate; unknown names are
				// ignored at the source).
				for c := range buildSideColumns(op) {
					delete(required, c)
				}
				required[op.LeftKey] = true
			}
		case *AggregateOp, *UniqueOp:
			// Aggregations read whole rows (their UDFs index the row).
			all = true
		case *CSVSource:
			if !all {
				cols := make([]string, 0, len(required))
				for c := range required {
					cols = append(cols, c)
				}
				op.projected = cols
			} else {
				op.projected = nil
			}
		case *TextSource, *ParallelizeSource, *ResolveOp, *IgnoreOp, *CacheOp:
			// No effect on column liveness.
		default:
			return nil, fmt.Errorf("logical: projection pass: unhandled op %T", op)
		}
	}
	out := make([]Op, 0, len(ops))
	for i := 0; i < len(ops); i++ {
		if !keep[i] {
			// Resolvers/ignores attached to a dropped operator go with it.
			for i+1 < len(ops) {
				switch ops[i+1].(type) {
				case *ResolveOp, *IgnoreOp:
					i++
					continue
				}
				break
			}
			continue
		}
		out = append(out, ops[i])
	}
	return out, nil
}

// buildSideColumns approximates the column names the join's build side
// contributes (with prefix applied).
func buildSideColumns(j *JoinOp) map[string]bool {
	out := map[string]bool{}
	for _, nd := range j.Build.Chain() {
		switch op := nd.Op.(type) {
		case *CSVSource:
			for _, c := range op.Columns {
				out[j.RightPrefix+c] = true
			}
		case *WithColumnOp:
			out[j.RightPrefix+op.Col] = true
		case *RenameOp:
			delete(out, j.RightPrefix+op.Old)
			out[j.RightPrefix+op.New] = true
		case *SelectOp:
			keep := map[string]bool{}
			for _, c := range op.Cols {
				keep[j.RightPrefix+c] = true
			}
			for c := range out {
				if !keep[c] {
					delete(out, c)
				}
			}
		}
	}
	return out
}

// projected is stored on CSVSource by the optimizer.
func (s *CSVSource) Projected() []string { return s.projected }

// SetProjected allows the engine to override the pushed projection (for
// tests).
func (s *CSVSource) SetProjected(cols []string) { s.projected = cols }
