package logical

import (
	"sort"
	"testing"
)

func udf(t *testing.T, src string) *UDFSpec {
	t.Helper()
	u, err := ParseUDF(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func chainOf(ops ...Op) *Node {
	var cur *Node
	for _, op := range ops {
		cur = &Node{Op: op, Input: cur}
	}
	return cur
}

func opNames(n *Node) []string {
	var out []string
	for _, nd := range n.Chain() {
		out = append(out, nd.Op.Name())
	}
	return out
}

func TestProjectionPushdownRecordsLiveColumns(t *testing.T) {
	src := &CSVSource{Path: "x.csv", Header: true}
	sink := chainOf(
		src,
		&WithColumnOp{Col: "sum", UDF: udf(t, "lambda x: x['a'] + x['b']")},
		&SelectOp{Cols: []string{"sum", "c"}},
	)
	opt, err := Optimize(sink, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	_ = opt
	got := append([]string{}, src.Projected()...)
	sort.Strings(got)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("projected = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("projected = %v, want %v", got, want)
		}
	}
}

func TestProjectionDropsDeadColumnProducers(t *testing.T) {
	src := &CSVSource{Path: "x.csv", Header: true}
	sink := chainOf(
		src,
		&WithColumnOp{Col: "dead", UDF: udf(t, "lambda x: x['z'] * 2")},
		&WithColumnOp{Col: "live", UDF: udf(t, "lambda x: x['a'] + 1")},
		&SelectOp{Cols: []string{"live"}},
	)
	opt, err := Optimize(sink, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	names := opNames(opt)
	count := 0
	for _, n := range names {
		if n == "withColumn" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("dead withColumn not eliminated: %v", names)
	}
	// And 'z' must no longer be required at the source.
	for _, c := range src.Projected() {
		if c == "z" {
			t.Fatalf("dead input column still projected: %v", src.Projected())
		}
	}
}

func TestProjectionKeepsEverythingWithoutSelect(t *testing.T) {
	src := &CSVSource{Path: "x.csv", Header: true}
	sink := chainOf(src, &FilterOp{UDF: udf(t, "lambda x: x['a'] > 0")})
	if _, err := Optimize(sink, AllOptimizations()); err != nil {
		t.Fatal(err)
	}
	if src.Projected() != nil {
		t.Fatalf("no terminal select: all columns must stay live, got %v", src.Projected())
	}
}

func TestWholeRowUDFBlocksPushdown(t *testing.T) {
	src := &CSVSource{Path: "x.csv", Header: true}
	sink := chainOf(
		src,
		&MapOp{UDF: udf(t, "lambda x: len(x)")}, // whole-row escape
		&SelectOp{Cols: []string{"value"}},
	)
	if _, err := Optimize(sink, AllOptimizations()); err != nil {
		t.Fatal(err)
	}
	if src.Projected() != nil {
		t.Fatalf("whole-row UDF must pin all columns, got %v", src.Projected())
	}
}

func TestFilterPushdownHoistsAboveUnrelatedProducer(t *testing.T) {
	sink := chainOf(
		&CSVSource{Path: "x.csv", Header: true},
		&WithColumnOp{Col: "w", UDF: udf(t, "lambda x: x['a'] * 2")},
		&FilterOp{UDF: udf(t, "lambda x: x['b'] > 0")}, // does not read w
	)
	opt, err := Optimize(sink, Options{FilterPushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	names := opNames(opt)
	if names[1] != "filter" || names[2] != "withColumn" {
		t.Fatalf("filter not hoisted: %v", names)
	}
}

func TestFilterNotHoistedPastItsProducer(t *testing.T) {
	sink := chainOf(
		&CSVSource{Path: "x.csv", Header: true},
		&WithColumnOp{Col: "w", UDF: udf(t, "lambda x: x['a'] * 2")},
		&FilterOp{UDF: udf(t, "lambda x: x['w'] > 0")}, // reads w
	)
	opt, err := Optimize(sink, Options{FilterPushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	names := opNames(opt)
	if names[1] != "withColumn" || names[2] != "filter" {
		t.Fatalf("filter wrongly hoisted past its producer: %v", names)
	}
}

func TestJoinReorderPushesMapColumnPastJoin(t *testing.T) {
	build := chainOf(&CSVSource{Path: "bad.csv", Header: true})
	sink := chainOf(
		&CSVSource{Path: "logs.csv", Header: true},
		&MapColumnOp{Col: "endpoint", UDF: udf(t, "lambda x: x")},
		&JoinOp{Build: build, LeftKey: "ip", RightKey: "BadIPs"},
	)
	opt, err := Optimize(sink, Options{JoinReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	names := opNames(opt)
	if names[1] != "join" || names[2] != "mapColumn" {
		t.Fatalf("mapColumn not pushed past join: %v", names)
	}
}

func TestJoinReorderKeepsKeyRewriter(t *testing.T) {
	build := chainOf(&CSVSource{Path: "bad.csv", Header: true})
	sink := chainOf(
		&CSVSource{Path: "logs.csv", Header: true},
		&MapColumnOp{Col: "ip", UDF: udf(t, "lambda x: x.strip()")}, // rewrites the join key
		&JoinOp{Build: build, LeftKey: "ip", RightKey: "BadIPs"},
	)
	opt, err := Optimize(sink, Options{JoinReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	names := opNames(opt)
	if names[1] != "mapColumn" || names[2] != "join" {
		t.Fatalf("key-rewriting mapColumn wrongly moved: %v", names)
	}
}

func TestResolveFollowsDeadOperatorOut(t *testing.T) {
	src := &CSVSource{Path: "x.csv", Header: true}
	sink := chainOf(
		src,
		&MapColumnOp{Col: "dead", UDF: udf(t, "lambda x: x * 2")},
		&ResolveOp{UDF: udf(t, "lambda x: 0")},
		&WithColumnOp{Col: "live", UDF: udf(t, "lambda x: x['a'] + 1")},
		&SelectOp{Cols: []string{"live"}},
	)
	opt, err := Optimize(sink, AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range opNames(opt) {
		if n == "resolve" || n == "mapColumn" {
			t.Fatalf("dead op (or its resolver) survived: %v", opNames(opt))
		}
	}
}

func TestAnalyzedAccessDrivesUDFSpec(t *testing.T) {
	u := udf(t, "lambda x: x['price'] * 2")
	if u.Access.WholeRow || len(u.Access.ByName) != 1 || u.Access.ByName[0] != "price" {
		t.Fatalf("access = %+v", u.Access)
	}
}

func TestChainString(t *testing.T) {
	sink := chainOf(&CSVSource{}, &FilterOp{UDF: udf(t, "lambda x: x")}, &SelectOp{Cols: []string{"a"}})
	if got := sink.String(); got != "csv -> filter -> selectColumns" {
		t.Fatalf("String = %q", got)
	}
}

// Re-assigned or aliased row parameters defeat per-column attribution;
// AnalyzeColumns must fall back to reads-all so projection pushdown
// keeps every source column such a UDF might still read.
func TestShadowedRowParamBlocksPushdown(t *testing.T) {
	cases := []struct{ name, src string }{
		{"reassigned", "def f(x):\n    x = 1\n    return x"},
		{"tuple-reassigned", "def f(x):\n    x, y = 1, 2\n    return y"},
		{"aug-assigned", "def f(x):\n    x += 1\n    return x"},
		{"loop-var", "def f(x):\n    for x in [1, 2]:\n        pass\n    return 1"},
		{"tuple-loop-var", "def f(x):\n    for k, x in [(1, 2)]:\n        pass\n    return 1"},
		{"alias", "def f(x):\n    y = x\n    return y['a']"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := udf(t, tc.src)
			if !u.Access.WholeRow {
				t.Fatalf("access = %+v, want WholeRow", u.Access)
			}
			src := &CSVSource{Path: "x.csv", Header: true}
			sink := chainOf(
				src,
				&FilterOp{UDF: u},
				&SelectOp{Cols: []string{"a"}},
			)
			if _, err := Optimize(sink, AllOptimizations()); err != nil {
				t.Fatal(err)
			}
			if src.Projected() != nil {
				t.Fatalf("shadowed/aliased row param must pin all columns, got %v", src.Projected())
			}
		})
	}
}
