package service

import (
	"sync"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// planCache maps pipeline fingerprints to compiled plans with
// single-flight semantics: the first submitter of a key owns the
// compile, concurrent submitters of the same key wait on it, and a
// failed flight removes the entry so the next submitter retries instead
// of being served a poisoned error forever. Completed entries evict
// least-recently-used under the cap; in-flight compiles are never
// evicted (they are not in the LRU list until they complete).
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   []string // completed keys, least-recently-used first
	stats   *telemetry.ServiceStats
}

type cacheEntry struct {
	key   string
	ready chan struct{} // closed when the flight completes (either way)
	plan  *core.CompiledPlan
	built *spec.Built
	err   error // set (before close) when the flight failed
}

func newPlanCache(capEntries int, stats *telemetry.ServiceStats) *planCache {
	return &planCache{cap: capEntries, entries: make(map[string]*cacheEntry), stats: stats}
}

// acquire returns the entry for key and whether the caller owns the
// flight. Owners must call complete or fail exactly once; non-owners
// wait on entry.ready.
func (c *planCache) acquire(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.touch(key)
		return e, false
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// complete publishes a successful flight and applies LRU eviction.
func (c *planCache) complete(e *cacheEntry, plan *core.CompiledPlan, built *spec.Built) {
	c.mu.Lock()
	e.plan, e.built = plan, built
	close(e.ready)
	c.order = append(c.order, e.key)
	for len(c.order) > c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		if old, ok := c.entries[victim]; ok && old != e {
			delete(c.entries, victim)
			c.stats.CacheEvictions.Add(1)
		}
	}
	c.mu.Unlock()
}

// fail publishes a failed flight and removes the entry so a later
// submission of the same key compiles fresh. Waiters observe e.err.
func (c *planCache) fail(e *cacheEntry, err error) {
	c.mu.Lock()
	e.err = err
	close(e.ready)
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
}

// touch moves a completed key to the most-recently-used end. In-flight
// keys are absent from order; nothing to do for them.
func (c *planCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}

// has reports whether key holds a successfully completed plan. The
// submit path uses it to skip re-validating warm resubmissions: a
// cached plan passed the static verifier (and the compiler) on the
// cold submission, so only the first sighting of a spec pays for
// plancheck.
func (c *planCache) has(key string) bool {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.ready:
		return e.err == nil
	default:
		return false
	}
}

// len reports cached (completed) plans, for tests and reports.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}
