package service

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"

	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
)

// Job trace assembly: every finished job gets one span tree that starts
// at request arrival and nests the service-side phases (admission queue
// wait, plan-cache lookup) above the engine's own span tree, shifted
// onto the job clock. GET /v1/jobs/{id}/trace serves it natively or in
// Chrome trace-event form, and the slow-job log retains it for jobs
// over the configured threshold.

// newTraceID generates a 16-hex-char correlation id for submissions
// that did not propagate one via X-Tuplex-Trace.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeTraceID bounds a client-supplied id: printable subset, max 64
// chars; anything else is discarded (the server then generates one).
func sanitizeTraceID(id string) string {
	if len(id) > 64 {
		return ""
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// buildJobTrace assembles the combined job trace after the run
// finished. engine is the run's span tree (nil when execution never
// started or failed before producing one); its spans are shifted by the
// job's exec offset so everything shares the arrival-relative clock.
// The engine trace is owned by the job from here on (Shift mutates it).
func buildJobTrace(jb *job, engine *trace.Trace, total time.Duration) *trace.Trace {
	jb.mu.Lock()
	traceID, queueWait, lookupWait, execOffset := jb.traceID, jb.queueWait, jb.lookupWait, jb.execOffset
	hit, state := jb.cacheHit, jb.state
	jb.mu.Unlock()

	root := &trace.Span{
		Name:  "job",
		DurNS: total.Nanoseconds(),
		Attrs: []trace.Attr{
			trace.Str("job", jb.id),
			trace.Str("trace_id", traceID),
			trace.Str("state", state),
			trace.Bool("cache_hit", hit),
		},
	}
	root.Children = append(root.Children, &trace.Span{
		Name:  "admission",
		DurNS: queueWait.Nanoseconds(),
	})
	root.Children = append(root.Children, &trace.Span{
		Name:    "cache_lookup",
		StartNS: queueWait.Nanoseconds(),
		DurNS:   lookupWait.Nanoseconds(),
		Attrs:   []trace.Attr{trace.Bool("hit", hit)},
	})
	level := trace.LevelSpans
	if engine != nil && engine.Root != nil {
		trace.Shift(engine.Root, execOffset.Nanoseconds())
		root.Children = append(root.Children, engine.Root)
		if engine.Level > level {
			level = engine.Level
		}
	}
	return &trace.Trace{Level: level, Root: root}
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the assembled span
// tree natively (?format=native, the default) or as a Chrome
// trace-event document (?format=chrome) loadable in chrome://tracing
// and Perfetto.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request, jb *job) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET to fetch a job trace")
		return
	}
	t := jb.getTrace()
	if t == nil {
		httpError(w, http.StatusNotFound, "job %s has no trace yet (still %s)", jb.id, jb.status().State)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "native":
		writeJSON(w, http.StatusOK, t)
	case "chrome":
		b, err := t.MarshalChrome()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "rendering chrome trace: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	default:
		httpError(w, http.StatusBadRequest, "unknown trace format %q (native or chrome)", r.URL.Query().Get("format"))
	}
}

// maxSlowJobs bounds the slow-job log.
const maxSlowJobs = 32

// SlowJob is one slow-job log entry: the job's status (result stripped)
// plus its full trace, routing ledger included.
type SlowJob struct {
	Status JobStatus    `json:"status"`
	Trace  *trace.Trace `json:"trace,omitempty"`
}

// slowLog retains the most recent jobs that crossed the slow threshold.
type slowLog struct {
	mu      sync.Mutex
	entries []SlowJob // oldest first
}

func (l *slowLog) add(e SlowJob) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if len(l.entries) > maxSlowJobs {
		l.entries = l.entries[len(l.entries)-maxSlowJobs:]
	}
	l.mu.Unlock()
}

func (l *slowLog) snapshot() []SlowJob {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowJob(nil), l.entries...)
}

// handleSlowz serves /debug/tuplex/slowz: the retained slow jobs,
// oldest first, with the configured threshold.
func (s *Server) handleSlowz(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.snapshot()
	if entries == nil {
		entries = []SlowJob{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": s.cfg.SlowJobThreshold.Nanoseconds(),
		"slow_jobs":    entries,
	})
}

// noteSlow captures a job in the slow log (and the flight recorder)
// when it crossed the threshold.
func (s *Server) noteSlow(jb *job, dur time.Duration) {
	if s.cfg.SlowJobThreshold <= 0 || dur < s.cfg.SlowJobThreshold {
		return
	}
	st := jb.status()
	st.Result = nil // the log keeps timing and routing, not row payloads
	s.flight.Record(telemetry.EventSlow, jb.id, st.TraceID, dur.Nanoseconds(), "")
	s.slow.add(SlowJob{Status: st, Trace: jb.getTrace()})
}
