package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
)

// fetchTrace GETs a job's trace in the requested format.
func fetchTrace(t *testing.T, base, id, format string) (int, []byte) {
	t.Helper()
	url := base + "/v1/jobs/" + id + "/trace"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, []byte(sb.String())
}

// submitTraced POSTs a spec with a trace header and returns the status.
func submitTraced(t *testing.T, base, body, traceID string) JobStatus {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Tuplex-Trace", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestJobTraceNative covers the assembled job trace for a cold, then a
// warm (cache-hit) submission: service-side spans above the engine
// spans, the trace id propagated from the client header, and the warm
// job's routing ledger present.
func TestJobTraceNative(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 2})
	cold := submitTraced(t, hs.URL, smallSpec(1), "trace-cold-1")
	if cold.TraceID != "trace-cold-1" {
		t.Fatalf("cold trace id = %q, want propagated header", cold.TraceID)
	}
	if cold.CacheHit {
		t.Fatal("first submission must be a miss")
	}
	warm := submitTraced(t, hs.URL, smallSpec(1), "trace-warm-1")
	if !warm.CacheHit {
		t.Fatal("second submission must hit the cache")
	}

	for _, tc := range []struct {
		st  JobStatus
		hit bool
	}{{cold, false}, {warm, true}} {
		code, body := fetchTrace(t, hs.URL, tc.st.ID, "native")
		if code != http.StatusOK {
			t.Fatalf("trace fetch for %s = %d: %s", tc.st.ID, code, body)
		}
		tr, err := trace.Parse(body)
		if err != nil {
			t.Fatalf("parsing native trace: %v", err)
		}
		if tr.Root == nil || tr.Root.Name != "job" {
			t.Fatalf("root span = %+v, want job", tr.Root)
		}
		names := map[string]*trace.Span{}
		for _, c := range tr.Root.Children {
			names[c.Name] = c
		}
		for _, want := range []string{"admission", "cache_lookup", "run"} {
			if names[want] == nil {
				t.Fatalf("job %s trace lacks %q child (got %v)", tc.st.ID, want, tr.Root.Children)
			}
		}
		// Service spans sit above (before) the engine run on the timeline
		// root; the engine subtree must be inside the job window.
		run := names["run"]
		if run.StartNS < 0 || run.StartNS+run.DurNS > tr.Root.DurNS+run.DurNS {
			t.Fatalf("run span [%d,%d] outside job window %d", run.StartNS, run.StartNS+run.DurNS, tr.Root.DurNS)
		}
		var hitAttr string
		for _, a := range names["cache_lookup"].Attrs {
			if a.Key == "hit" {
				hitAttr = a.Val
			}
		}
		if want := fmt.Sprintf("%v", tc.hit); hitAttr != want {
			t.Fatalf("cache_lookup hit attr = %q, want %q", hitAttr, want)
		}
		// The engine subtree must carry a routing ledger (tuneOpts raises
		// the trace level to rows for service jobs, warm runs included).
		found := false
		var walk func(s *trace.Span)
		walk = func(s *trace.Span) {
			if len(s.Routing) > 0 {
				found = true
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(run)
		if !found {
			t.Fatalf("job %s engine trace has no routing ledger", tc.st.ID)
		}
	}
}

// TestJobTraceChrome validates the chrome export of a warm job's trace
// structurally: the document shape, pid/tid/ph/ts fields, one X event
// per span, and service spans present alongside engine spans.
func TestJobTraceChrome(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 2})
	submitTraced(t, hs.URL, smallSpec(2), "")
	warm := submitTraced(t, hs.URL, smallSpec(2), "")
	if !warm.CacheHit {
		t.Fatal("second submission must hit the cache")
	}

	code, body := fetchTrace(t, hs.URL, warm.ID, "chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome trace fetch = %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Compare against the native span tree: one X event per span.
	_, nbody := fetchTrace(t, hs.URL, warm.ID, "native")
	nat, err := trace.Parse(nbody)
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	var count func(s *trace.Span)
	count = func(s *trace.Span) {
		spans++
		for _, c := range s.Children {
			count(c)
		}
	}
	count(nat.Root)

	byName := map[string]bool{}
	var xEvents int
	for _, e := range doc.TraceEvents {
		if e.PID != 1 {
			t.Fatalf("event %q pid = %d", e.Name, e.PID)
		}
		switch e.Ph {
		case "M":
		case "X":
			if e.TS < 0 || e.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur", e.Name)
			}
			if e.TID == 1 {
				xEvents++
			}
			byName[e.Name] = true
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if xEvents != spans {
		t.Fatalf("driver X events = %d, native spans = %d", xEvents, spans)
	}
	for _, want := range []string{"job", "admission", "cache_lookup", "run"} {
		if !byName[want] {
			t.Fatalf("chrome trace lacks %q event", want)
		}
	}

	// Unknown format is a 400; unknown subresource a 404.
	if code, _ := fetchTrace(t, hs.URL, warm.ID, "svg"); code != http.StatusBadRequest {
		t.Fatalf("format=svg = %d, want 400", code)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + warm.ID + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown subresource = %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentJobTraceIsolation races distinct pipelines and checks
// every job ends with its own trace: the right job id attr, no span
// tree shared between jobs (run under -race this also proves the
// assembly path is data-race free).
func TestConcurrentJobTraceIsolation(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 4})
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := submitTraced(t, hs.URL, smallSpec(100+i%3), fmt.Sprintf("iso-%d", i))
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	seen := map[string]string{} // job attr -> id it came from
	for i, id := range ids {
		_, body := fetchTrace(t, hs.URL, id, "native")
		tr, err := trace.Parse(body)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		var jobAttr, traceAttr string
		for _, a := range tr.Root.Attrs {
			switch a.Key {
			case "job":
				jobAttr = a.Val
			case "trace_id":
				traceAttr = a.Val
			}
		}
		if jobAttr != id {
			t.Fatalf("trace for %s carries job attr %q", id, jobAttr)
		}
		if want := fmt.Sprintf("iso-%d", i); traceAttr != want {
			t.Fatalf("trace for %s carries trace_id %q, want %q", id, traceAttr, want)
		}
		if prev, dup := seen[jobAttr]; dup {
			t.Fatalf("jobs %s and %s share a trace", prev, id)
		}
		seen[jobAttr] = id
	}
}

// TestSlowJobLog submits with a zero threshold-crossing bar and checks
// the job lands in /debug/tuplex/slowz with its trace attached.
func TestSlowJobLog(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1, SlowJobThreshold: time.Nanosecond})
	st := submitTraced(t, hs.URL, smallSpec(3), "slowpoke")
	resp, err := http.Get(hs.URL + "/debug/tuplex/slowz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep struct {
		ThresholdNS int64     `json:"threshold_ns"`
		SlowJobs    []SlowJob `json:"slow_jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.ThresholdNS != 1 {
		t.Fatalf("threshold_ns = %d", rep.ThresholdNS)
	}
	if len(rep.SlowJobs) != 1 {
		t.Fatalf("slow jobs = %d, want 1", len(rep.SlowJobs))
	}
	e := rep.SlowJobs[0]
	if e.Status.ID != st.ID || e.Status.TraceID != "slowpoke" {
		t.Fatalf("slow entry = %+v", e.Status)
	}
	if e.Status.Result != nil {
		t.Fatal("slow log must not retain result payloads")
	}
	if e.Trace == nil || e.Trace.Root == nil || e.Trace.Root.Name != "job" {
		t.Fatalf("slow entry lacks the job trace: %+v", e.Trace)
	}
}

// TestShedEventsInFlightRecorder fills all slots and the queue, then
// checks the 429 storm left shed events in /debug/tuplex/eventz.
func TestShedEventsInFlightRecorder(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	// Occupy the only slot directly — no job needed.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	for i := 0; i < 3; i++ {
		code, _ := post(t, hs.URL+"/v1/jobs", smallSpec(4))
		if code != http.StatusTooManyRequests {
			t.Fatalf("want 429, got %d", code)
		}
	}
	resp, err := http.Get(hs.URL + "/debug/tuplex/eventz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep telemetry.EventzReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	shed := 0
	for _, e := range rep.Events {
		if e.Kind == telemetry.EventShed {
			shed++
			if e.Detail != "queueing disabled" {
				t.Fatalf("shed detail = %q", e.Detail)
			}
		}
	}
	if shed != 3 {
		t.Fatalf("shed events = %d, want 3\n%+v", shed, rep.Events)
	}
}

// TestFailedJobCarriesEvents checks a failing job's error payload dumps
// its flight-recorder tail (admit → compile → execute → failed).
func TestFailedJobCarriesEvents(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1})
	badSpec := `{"v":1,
		"source": {"kind":"csv","path":"/nonexistent/input.csv"},
		"ops": [{"kind":"filter","udf":{"code":"lambda x: True"}}]}`
	code, body := post(t, hs.URL+"/v1/jobs", badSpec)
	if code != http.StatusInternalServerError {
		t.Fatalf("want 500, got %d: %s", code, body)
	}
	st := decodeStatus(t, body)
	if st.State != StateFailed {
		t.Fatalf("state = %q", st.State)
	}
	if len(st.Events) == 0 {
		t.Fatal("failed job status carries no flight events")
	}
	kinds := map[string]bool{}
	for _, e := range st.Events {
		if e.Job != st.ID {
			t.Fatalf("foreign event in payload: %+v", e)
		}
		kinds[e.Kind] = true
	}
	for _, want := range []string{telemetry.EventAdmit, telemetry.EventCompile, telemetry.EventFailed} {
		if !kinds[want] {
			t.Fatalf("failed job events lack %q: %+v", want, st.Events)
		}
	}
}

// TestTraceIDGeneratedAndSanitized: a submission without the header
// gets a server-generated id; a hostile header is replaced.
func TestTraceIDGeneratedAndSanitized(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1})
	st := submitTraced(t, hs.URL, smallSpec(5), "")
	if len(st.TraceID) != 16 {
		t.Fatalf("generated trace id = %q, want 16 hex chars", st.TraceID)
	}
	st = submitTraced(t, hs.URL, smallSpec(5), "ok-id_1.2")
	if st.TraceID != "ok-id_1.2" {
		t.Fatalf("benign id rewritten to %q", st.TraceID)
	}
	if got := sanitizeTraceID(`evil"id`); got != "" {
		t.Fatalf("sanitize kept %q", got)
	}
	if got := sanitizeTraceID(strings.Repeat("a", 65)); got != "" {
		t.Fatal("sanitize kept overlong id")
	}
}
