package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/gotuplex/tuplex/internal/plancheck"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// validateResponse is the wire shape of POST /v1/validate and the 422
// body on /v1/jobs. OK is true when no error-severity diagnostic is
// present (warnings and infos do not block admission).
type validateResponse struct {
	OK          bool                   `json:"ok"`
	Diagnostics []plancheck.Diagnostic `json:"diagnostics"`
	Error       string                 `json:"error,omitempty"`
}

// decodeDiagnostics maps accumulated spec decode problems (unknown
// fields, version mismatch) onto TPX000 entries. Returns nil for
// errors that are not a *spec.DecodeError — e.g. syntactically broken
// JSON — which keep their plain 400 treatment.
func decodeDiagnostics(err error) []plancheck.Diagnostic {
	var de *spec.DecodeError
	if !errors.As(err, &de) {
		return nil
	}
	diags := make([]plancheck.Diagnostic, 0, len(de.Problems))
	for _, prob := range de.Problems {
		diags = append(diags, plancheck.Diagnostic{
			Code: plancheck.CodeDecode, Severity: plancheck.SevError, Msg: prob,
		})
	}
	return diags
}

// handleValidate runs the whole-plan static verifier over a posted
// spec and returns every diagnostic. Nothing is compiled, cached or
// executed — the endpoint is safe to hammer from editors and CI, and
// it never consumes an admission slot.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST with a pipeline spec body")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	diags := []plancheck.Diagnostic{}
	p, err := spec.Decode(body)
	if err != nil {
		dd := decodeDiagnostics(err)
		if dd == nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		diags = dd
	} else {
		diags = append(diags, plancheck.Check(p)...)
	}
	writeJSON(w, http.StatusOK, validateResponse{
		OK:          !plancheck.HasErrors(diags),
		Diagnostics: diags,
	})
}

// rejectInvalid answers a submission that failed static verification:
// 422 with the full diagnostic list. It runs before fingerprinting and
// admission, so an invalid spec consumes no queue slot, no cache entry
// and no job id — only the invalid counter moves.
func (s *Server) rejectInvalid(w http.ResponseWriter, traceID string, diags []plancheck.Diagnostic) {
	s.stats.JobsInvalid.Add(1)
	s.flight.Record(telemetry.EventInvalid, "", traceID, 0, "static verification")
	n := 0
	for _, d := range diags {
		if d.Severity == plancheck.SevError {
			n++
		}
	}
	writeJSON(w, http.StatusUnprocessableEntity, validateResponse{
		OK:          false,
		Diagnostics: diags,
		Error:       fmt.Sprintf("spec failed static verification with %d error(s)", n),
	})
}
