package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/gotuplex/tuplex/internal/plancheck"
)

// invalidSpec provably references a column the source does not carry,
// so the static verifier rejects it with TPX001 before compilation.
const invalidSpec = `{"v":1,
	"source": {"kind":"parallelize","columns":["a","b"],"rows":[[1,2]]},
	"ops": [{"kind":"withColumn","col":"c","udf":{"code":"lambda x: x['nope'] + 1"}}]}`

// unknownFieldSpec trips the accumulating decoder (TPX000), not the
// verifier proper.
const unknownFieldSpec = `{"v":1,
	"source": {"kind":"parallelize","columns":["a"],"rows":[[1]]},
	"bogus": true}`

func decodeValidate(t *testing.T, raw []byte) validateResponse {
	t.Helper()
	var vr validateResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatalf("decoding validate response: %v\n%s", err, raw)
	}
	return vr
}

// TestValidateEndpoint checks POST /v1/validate returns the full
// diagnostic list without compiling, caching or executing anything.
func TestValidateEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 2})

	code, raw := post(t, hs.URL+"/v1/validate", smallSpec(1))
	if code != http.StatusOK {
		t.Fatalf("valid spec: status %d (%s)", code, raw)
	}
	if vr := decodeValidate(t, raw); !vr.OK || len(vr.Diagnostics) != 0 {
		t.Fatalf("valid spec: want ok with no diagnostics, got %s", raw)
	}

	code, raw = post(t, hs.URL+"/v1/validate", invalidSpec)
	if code != http.StatusOK {
		t.Fatalf("invalid spec: status %d (%s)", code, raw)
	}
	vr := decodeValidate(t, raw)
	if vr.OK || len(vr.Diagnostics) == 0 {
		t.Fatalf("invalid spec: want diagnostics, got %s", raw)
	}
	if vr.Diagnostics[0].Code != plancheck.CodeUndefinedColumn {
		t.Fatalf("want %s first, got %s", plancheck.CodeUndefinedColumn, raw)
	}

	code, raw = post(t, hs.URL+"/v1/validate", unknownFieldSpec)
	if code != http.StatusOK {
		t.Fatalf("unknown-field spec: status %d (%s)", code, raw)
	}
	vr = decodeValidate(t, raw)
	if vr.OK || len(vr.Diagnostics) == 0 || vr.Diagnostics[0].Code != plancheck.CodeDecode {
		t.Fatalf("unknown-field spec: want %s diagnostics, got %s", plancheck.CodeDecode, raw)
	}

	if code, raw = post(t, hs.URL+"/v1/validate", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("broken JSON: want 400, got %d (%s)", code, raw)
	}

	resp, err := http.Get(hs.URL + "/v1/validate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: want 405, got %d", resp.StatusCode)
	}

	// Validation is pure: no job, no slot, no cache traffic.
	if n := s.stats.JobsSubmitted.Load(); n != 0 {
		t.Fatalf("validate consumed a submission: %d", n)
	}
	if n := s.stats.CacheMisses.Load() + s.stats.CacheHits.Load(); n != 0 {
		t.Fatalf("validate touched the plan cache: %d", n)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("validate populated the plan cache: %d entries", n)
	}
}

// TestSubmitFailsFastOnInvalidSpec is the admission contract: a spec
// the verifier rejects gets a 422 with diagnostics while consuming no
// admission slot, no cache entry and no job id — only jobs_invalid
// moves.
func TestSubmitFailsFastOnInvalidSpec(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})

	for _, tc := range []struct {
		name, body, wantCode string
	}{
		{"verifier", invalidSpec, plancheck.CodeUndefinedColumn},
		{"decoder", unknownFieldSpec, plancheck.CodeDecode},
	} {
		code, raw := post(t, hs.URL+"/v1/jobs", tc.body)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: want 422, got %d (%s)", tc.name, code, raw)
		}
		vr := decodeValidate(t, raw)
		if vr.OK || vr.Error == "" || len(vr.Diagnostics) == 0 {
			t.Fatalf("%s: want error + diagnostics, got %s", tc.name, raw)
		}
		if vr.Diagnostics[0].Code != tc.wantCode {
			t.Fatalf("%s: want %s first, got %s", tc.name, tc.wantCode, raw)
		}
	}

	if n := s.stats.JobsInvalid.Load(); n != 2 {
		t.Fatalf("want jobs_invalid=2, got %d", n)
	}
	if n := s.stats.JobsSubmitted.Load(); n != 0 {
		t.Fatalf("invalid submission was admitted: jobs_submitted=%d", n)
	}
	if n := s.stats.JobsRejected.Load(); n != 0 {
		t.Fatalf("422 must not count as admission rejection: jobs_rejected=%d", n)
	}
	if n := s.stats.QueueDepth.Load(); n != 0 {
		t.Fatalf("queue depth leaked: %d", n)
	}
	if n := s.stats.RunningJobs.Load(); n != 0 {
		t.Fatalf("running gauge leaked: %d", n)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("invalid submission populated the cache: %d entries", n)
	}
	s.cache.mu.Lock()
	inflight := len(s.cache.entries)
	s.cache.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("invalid submission left a cache flight: %d entries", inflight)
	}
	if jobs := s.jobs.list(); len(jobs) != 0 {
		t.Fatalf("invalid submission created a job: %d", len(jobs))
	}

	// The slot it did not consume is still free: a valid job runs.
	code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(7))
	if code != http.StatusOK {
		t.Fatalf("valid follow-up: status %d (%s)", code, raw)
	}
	if n := s.stats.JobsCompleted.Load(); n != 1 {
		t.Fatalf("valid follow-up did not complete: %d", n)
	}
}
