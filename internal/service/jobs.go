package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Job states. A job is queued between admission and execution start,
// running while the engine owns it, and exactly one of done / failed /
// canceled afterwards.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// maxRecentJobs bounds finished jobs retained for GET /v1/jobs/{id}.
const maxRecentJobs = 256

// JobStatus is the wire form of one job, returned by every /v1/jobs
// endpoint.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`

	SubmittedAt time.Time `json:"submitted_at"`
	// DurationNS is queue wait + execution so far (frozen at finish).
	DurationNS int64 `json:"duration_ns"`

	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
}

// JobResult carries a finished job's output and row accounting.
type JobResult struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// Value is the aggregate-sink accumulator.
	Value any `json:"value,omitempty"`
	// CSV inlines csv-sink bytes when the sink has no output path;
	// CSVPath echoes the path otherwise.
	CSV     string `json:"csv,omitempty"`
	CSVPath string `json:"csv_path,omitempty"`
	// Truncated marks a Rows payload capped by the server's
	// max-result-rows limit (OutputRows still reports the full count).
	Truncated bool `json:"truncated,omitempty"`

	InputRows  int64 `json:"input_rows"`
	OutputRows int64 `json:"output_rows"`
	FailedRows int64 `json:"failed_rows"`
}

type job struct {
	mu          sync.Mutex
	id          string
	state       string
	cacheHit    bool
	fingerprint string
	submitted   time.Time
	finished    time.Time
	cancel      context.CancelFunc
	err         error
	result      *JobResult
}

func (j *job) setRunning(cancel context.CancelFunc) {
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
}

func (j *job) finish(state string, hit bool, res *JobResult, err error) {
	j.mu.Lock()
	j.state = state
	j.cacheHit = hit
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
}

// requestCancel fires the job's cancel func if it is still running and
// reports the state observed.
func (j *job) requestCancel() string {
	j.mu.Lock()
	cancel, state := j.cancel, j.state
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return state
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:          j.id,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Fingerprint: j.fingerprint,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	s.DurationNS = end.Sub(j.submitted).Nanoseconds()
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// jobTable tracks live jobs plus a bounded ring of finished ones so
// clients can poll async submissions after completion.
type jobTable struct {
	mu     sync.Mutex
	nextID int64
	live   map[string]*job
	recent []*job // oldest first
}

func newJobTable() *jobTable {
	return &jobTable{live: make(map[string]*job)}
}

func (t *jobTable) create(fingerprint string) *job {
	t.mu.Lock()
	t.nextID++
	j := &job{
		id:          fmt.Sprintf("j%06d", t.nextID),
		state:       StateQueued,
		fingerprint: fingerprint,
		submitted:   time.Now(),
	}
	t.live[j.id] = j
	t.mu.Unlock()
	return j
}

// retire moves a finished job from the live set to the recent ring.
func (t *jobTable) retire(j *job) {
	t.mu.Lock()
	if _, ok := t.live[j.id]; ok {
		delete(t.live, j.id)
		t.recent = append(t.recent, j)
		if len(t.recent) > maxRecentJobs {
			t.recent = t.recent[len(t.recent)-maxRecentJobs:]
		}
	}
	t.mu.Unlock()
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.live[id]; ok {
		return j
	}
	for i := len(t.recent) - 1; i >= 0; i-- {
		if t.recent[i].id == id {
			return t.recent[i]
		}
	}
	return nil
}

// list snapshots every known job, live first, newest last within each
// group.
func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*job, 0, len(t.live)+len(t.recent))
	for _, j := range t.live {
		out = append(out, j)
	}
	out = append(out, t.recent...)
	return out
}
