package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
)

// Job states. A job is queued between admission and execution start,
// running while the engine owns it, and exactly one of done / failed /
// canceled afterwards.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// maxRecentJobs bounds finished jobs retained for GET /v1/jobs/{id}.
const maxRecentJobs = 256

// JobStatus is the wire form of one job, returned by every /v1/jobs
// endpoint.
type JobStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	CacheHit    bool   `json:"cache_hit"`
	Fingerprint string `json:"fingerprint"`
	// TraceID is the client-propagated (X-Tuplex-Trace) or
	// server-generated correlation id threading this job through logs,
	// exemplars and the exported trace.
	TraceID string `json:"trace_id,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	// DurationNS is queue wait + execution so far (frozen at finish).
	DurationNS int64 `json:"duration_ns"`

	Error string `json:"error,omitempty"`
	// Events is the flight-recorder tail for this job, attached
	// automatically when the job failed so the error payload carries its
	// own context (admission, cache outcome, execution start).
	Events []telemetry.FlightEvent `json:"events,omitempty"`
	Result *JobResult              `json:"result,omitempty"`
}

// JobResult carries a finished job's output and row accounting.
type JobResult struct {
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// Value is the aggregate-sink accumulator.
	Value any `json:"value,omitempty"`
	// CSV inlines csv-sink bytes when the sink has no output path;
	// CSVPath echoes the path otherwise.
	CSV     string `json:"csv,omitempty"`
	CSVPath string `json:"csv_path,omitempty"`
	// Truncated marks a Rows payload capped by the server's
	// max-result-rows limit (OutputRows still reports the full count).
	Truncated bool `json:"truncated,omitempty"`

	InputRows  int64 `json:"input_rows"`
	OutputRows int64 `json:"output_rows"`
	FailedRows int64 `json:"failed_rows"`
}

type job struct {
	mu          sync.Mutex
	id          string
	state       string
	cacheHit    bool
	fingerprint string
	submitted   time.Time
	finished    time.Time
	cancel      context.CancelFunc
	err         error
	result      *JobResult

	// Observability state (see trace.go): the correlation id, the
	// service-side timing samples the job trace is assembled from, the
	// assembled trace itself, and the flight-recorder tail attached to
	// failures.
	traceID    string
	arrival    time.Time     // request arrival (before admission)
	queueWait  time.Duration // admission slot wait
	lookupWait time.Duration // plan-cache resolution (wait-on-flight)
	execOffset time.Duration // arrival → engine execution start
	jobTrace   *trace.Trace
	events     []telemetry.FlightEvent
}

// setAdmission stamps the pre-execution observability fields right
// after the job is created (the queue wait happened before it existed).
func (j *job) setAdmission(traceID string, arrival time.Time, queueWait time.Duration) {
	j.mu.Lock()
	j.traceID = traceID
	if !arrival.IsZero() {
		j.arrival = arrival
	}
	j.queueWait = queueWait
	j.mu.Unlock()
}

// noteLookup records how long plan-cache resolution took (≈0 for the
// compile owner, the wait-on-flight time for warm waiters).
func (j *job) noteLookup(d time.Duration) {
	j.mu.Lock()
	j.lookupWait = d
	j.mu.Unlock()
}

// noteExecStart records when engine execution began relative to
// arrival, so the engine span tree can be shifted onto the job clock.
func (j *job) noteExecStart() {
	j.mu.Lock()
	j.execOffset = time.Since(j.arrival)
	j.mu.Unlock()
}

// setTrace publishes the assembled job trace for GET /v1/jobs/{id}/trace.
func (j *job) setTrace(t *trace.Trace) {
	j.mu.Lock()
	j.jobTrace = t
	j.mu.Unlock()
}

func (j *job) getTrace() *trace.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.jobTrace
}

// setEvents attaches the flight-recorder tail (failed jobs only).
func (j *job) setEvents(ev []telemetry.FlightEvent) {
	j.mu.Lock()
	j.events = ev
	j.mu.Unlock()
}

func (j *job) setRunning(cancel context.CancelFunc) {
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
}

func (j *job) finish(state string, hit bool, res *JobResult, err error) {
	j.mu.Lock()
	j.state = state
	j.cacheHit = hit
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
}

// requestCancel fires the job's cancel func if it is still running and
// reports the state observed.
func (j *job) requestCancel() string {
	j.mu.Lock()
	cancel, state := j.cancel, j.state
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return state
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:          j.id,
		State:       j.state,
		CacheHit:    j.cacheHit,
		Fingerprint: j.fingerprint,
		TraceID:     j.traceID,
		SubmittedAt: j.submitted,
		Events:      j.events,
		Result:      j.result,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	s.DurationNS = end.Sub(j.submitted).Nanoseconds()
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// jobTable tracks live jobs plus a bounded ring of finished ones so
// clients can poll async submissions after completion.
type jobTable struct {
	mu     sync.Mutex
	nextID int64
	live   map[string]*job
	recent []*job // oldest first
}

func newJobTable() *jobTable {
	return &jobTable{live: make(map[string]*job)}
}

func (t *jobTable) create(fingerprint string) *job {
	t.mu.Lock()
	t.nextID++
	now := time.Now()
	j := &job{
		id:          fmt.Sprintf("j%06d", t.nextID),
		state:       StateQueued,
		fingerprint: fingerprint,
		submitted:   now,
		arrival:     now, // refined by setAdmission when known
	}
	t.live[j.id] = j
	t.mu.Unlock()
	return j
}

// retire moves a finished job from the live set to the recent ring.
func (t *jobTable) retire(j *job) {
	t.mu.Lock()
	if _, ok := t.live[j.id]; ok {
		delete(t.live, j.id)
		t.recent = append(t.recent, j)
		if len(t.recent) > maxRecentJobs {
			t.recent = t.recent[len(t.recent)-maxRecentJobs:]
		}
	}
	t.mu.Unlock()
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.live[id]; ok {
		return j
	}
	for i := len(t.recent) - 1; i >= 0; i-- {
		if t.recent[i].id == id {
			return t.recent[i]
		}
	}
	return nil
}

// list snapshots every known job, live first, newest last within each
// group.
func (t *jobTable) list() []*job {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*job, 0, len(t.live)+len(t.recent))
	for _, j := range t.live {
		out = append(out, j)
	}
	out = append(out, t.recent...)
	return out
}
