// Package service implements the tuplex-serve daemon: a long-lived
// multi-tenant HTTP job service over the engine. Clients POST versioned
// JSON pipeline specs to /v1/jobs; the service admits them under a
// bounded concurrency cap and queue, executes them, and caches compiled
// pipelines keyed on (UDF sources, input schema, sample fingerprint) so
// byte-identical resubmissions skip sampling and compilation entirely.
package service

import (
	"runtime"
	"time"

	"github.com/gotuplex/tuplex/internal/telemetry"
)

// Config sizes the service. The zero value is usable: every field has a
// conservative default applied by withDefaults.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:5005"; ":0" picks a
	// free port — read it back with Addr()).
	Addr string

	// MaxConcurrent bounds jobs executing simultaneously (default:
	// GOMAXPROCS). Submissions beyond it queue.
	MaxConcurrent int
	// QueueDepth bounds submissions waiting for an execution slot
	// (default 64). Beyond it the service answers 429 immediately rather
	// than buffering unboundedly. Negative disables queuing (reject as
	// soon as all slots are busy).
	QueueDepth int

	// CacheEntries caps the compiled-pipeline cache (default 64 plans).
	// Completed entries evict least-recently-used; in-flight compiles are
	// never evicted.
	CacheEntries int

	// ExecutorsPerJob clamps the executor pool any single job may
	// request via its spec options (default 0 = no clamp). The per-job
	// budget keeps one greedy tenant from monopolizing the host.
	ExecutorsPerJob int
	// MemoryBudget caps the input bytes a job may reference — inline
	// data plus the on-disk size of file-backed sources, join build
	// sides included (default 0 = unlimited). Oversized submissions get
	// 413 before any work happens.
	MemoryBudget int64

	// RequestTimeout bounds one job end to end: queue wait plus
	// execution (default 60s). Jobs still running at the deadline are
	// canceled at the next chunk boundary.
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight jobs before
	// canceling them (default 30s).
	DrainTimeout time.Duration

	// MaxResultRows caps the rows a job response inlines (default
	// 10000); responses note truncation. CSV-sink jobs with an output
	// path are unaffected.
	MaxResultRows int
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64

	// SlowJobThreshold: jobs whose end-to-end latency meets or exceeds
	// it are captured — full span tree plus routing ledger — in the
	// slow-job log at /debug/tuplex/slowz (default 0 = disabled).
	SlowJobThreshold time.Duration
	// FlightEvents sizes the always-on lifecycle-event ring backing
	// /debug/tuplex/eventz (default 1024 events).
	FlightEvents int

	// Registry receives the service's job/cache stats and hosts
	// /metrics + /debug/tuplex/runz (default telemetry.Default; tests
	// use private registries).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:5005"
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxResultRows <= 0 {
		c.MaxResultRows = 10000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}
