package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/telemetry"
)

// newTestServer builds an unstarted server over a private registry and
// an httptest front end (the service mux is the same one Start binds).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Registry = telemetry.NewRegistry()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// smallSpec is a tiny parallelize pipeline whose compiled form depends
// on the global k, so distinct k values are distinct cache keys.
func smallSpec(k int) string {
	return fmt.Sprintf(`{"v":1,
		"source": {"kind":"parallelize","columns":["a","b"],"rows":[[1,"x"],[2,"y"],[3,"z"]]},
		"ops": [
			{"kind":"filter","udf":{"code":"lambda x: x['a'] >= 2"}},
			{"kind":"withColumn","col":"c","udf":{"code":"lambda x: x['a'] * k","globals":{"k":%d}}}
		],
		"options": {"executors": 1}}`, k)
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func decodeStatus(t *testing.T, raw []byte) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, raw)
	}
	return st
}

// TestConcurrentIdenticalSubmissions races N byte-identical jobs: the
// single-flight cache must compile exactly once, serve everyone the
// same answer, and count N-1 hits.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 4})
	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	results := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(10))
			codes[i] = code
			st := decodeStatus(t, raw)
			rows, _ := json.Marshal(st.Result)
			results[i] = string(rows)
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("submission %d: status %d (%s)", i, code, results[i])
		}
		if results[i] != results[0] {
			t.Fatalf("submission %d diverged:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
	if got := s.stats.CacheMisses.Load(); got != 1 {
		t.Fatalf("want exactly 1 compile, got %d", got)
	}
	if got := s.stats.CacheHits.Load(); got != n-1 {
		t.Fatalf("want %d cache hits, got %d", n-1, got)
	}
	if got := s.stats.JobsCompleted.Load(); got != n {
		t.Fatalf("want %d completed, got %d", n, got)
	}
}

// TestDistinctSubmissionsCompileSeparately checks distinct specs never
// share a cache entry.
func TestDistinctSubmissionsCompileSeparately(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 2})
	for k := 1; k <= 4; k++ {
		code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(k))
		if code != http.StatusOK {
			t.Fatalf("k=%d: status %d (%s)", k, code, raw)
		}
		st := decodeStatus(t, raw)
		// c = a * k for the first surviving row (a=2).
		if got := st.Result.Rows[0][2].(float64); got != float64(2*k) {
			t.Fatalf("k=%d: want c=%d, got %v", k, 2*k, got)
		}
	}
	if got := s.stats.CacheMisses.Load(); got != 4 {
		t.Fatalf("want 4 compiles, got %d", got)
	}
	if got := s.stats.CacheHits.Load(); got != 0 {
		t.Fatalf("want 0 hits, got %d", got)
	}
}

// TestCacheEvictionUnderCap fills the cache past its cap and checks
// LRU eviction plus recompilation of the evicted key.
func TestCacheEvictionUnderCap(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, CacheEntries: 2})
	for k := 1; k <= 4; k++ {
		if code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(k)); code != http.StatusOK {
			t.Fatalf("k=%d: status %d (%s)", k, code, raw)
		}
	}
	if got := s.stats.CacheEvictions.Load(); got != 2 {
		t.Fatalf("want 2 evictions, got %d", got)
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("want 2 cached plans, got %d", got)
	}
	// k=1 was evicted: resubmission recompiles rather than serving a
	// stale or missing entry.
	code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(1))
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d (%s)", code, raw)
	}
	if st := decodeStatus(t, raw); st.CacheHit {
		t.Fatalf("evicted entry must not report a cache hit")
	}
	if got := s.stats.CacheMisses.Load(); got != 5 {
		t.Fatalf("want 5 compiles after eviction, got %d", got)
	}
	// k=4 stayed cached.
	if _, raw := post(t, hs.URL+"/v1/jobs", smallSpec(4)); !decodeStatus(t, raw).CacheHit {
		t.Fatalf("recently-used entry should hit")
	}
}

// TestSchemaDriftNeverServesStalePlan is the correctness core of the
// cache: when the input file's content drifts (here int columns become
// floats), the fingerprint must miss and the job must recompile — the
// response is differentially compared against a from-scratch execution
// of the same spec.
func TestSchemaDriftNeverServesStalePlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobSpec := fmt.Sprintf(`{"v":1,
		"source": {"kind":"csv","path":%q},
		"ops": [{"kind":"withColumn","col":"s","udf":{"code":"lambda x: x['a'] + x['b']"}}],
		"options": {"executors": 1}}`, path)

	_, hs := newTestServer(t, Config{MaxConcurrent: 2})
	code, raw := post(t, hs.URL+"/v1/jobs", jobSpec)
	if code != http.StatusOK {
		t.Fatalf("cold: status %d (%s)", code, raw)
	}
	if st := decodeStatus(t, raw); st.CacheHit {
		t.Fatalf("first run cannot be a hit")
	}
	_, raw = post(t, hs.URL+"/v1/jobs", jobSpec)
	warm := decodeStatus(t, raw)
	if !warm.CacheHit {
		t.Fatalf("unchanged resubmission must hit")
	}

	// Drift the input schema: same columns, float cells.
	if err := os.WriteFile(path, []byte("a,b\n1.5,2.25\n3.5,4.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, raw = post(t, hs.URL+"/v1/jobs", jobSpec)
	if code != http.StatusOK {
		t.Fatalf("drifted: status %d (%s)", code, raw)
	}
	drifted := decodeStatus(t, raw)
	if drifted.CacheHit {
		t.Fatalf("schema drift served a stale plan")
	}

	// Differential check against a fresh, cache-free compile.
	p, err := spec.Decode([]byte(jobSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.ExecuteContext(context.Background(), b.Node, b.Kind, b.CSVPath, b.Opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(spec.ResultRows(fresh, -1))
	gotJSON, _ := json.Marshal(drifted.Result.Rows)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("drifted result diverged from fresh compile:\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestFailedRunsAreNotCached checks a failing flight doesn't poison
// its key: every resubmission retries the compile.
func TestFailedRunsAreNotCached(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1})
	bad := `{"v":1,"source":{"kind":"csv","path":"/nonexistent/input.csv"},
		"ops":[{"kind":"map","udf":{"code":"lambda x: x"}}]}`
	for i := 0; i < 2; i++ {
		code, raw := post(t, hs.URL+"/v1/jobs", bad)
		if code != http.StatusInternalServerError {
			t.Fatalf("attempt %d: want 500, got %d (%s)", i, code, raw)
		}
		if st := decodeStatus(t, raw); st.State != StateFailed || st.Error == "" {
			t.Fatalf("attempt %d: want failed state with error, got %+v", i, st)
		}
	}
	if got := s.stats.CacheMisses.Load(); got != 2 {
		t.Fatalf("failed flights must retry: want 2 compiles, got %d", got)
	}
	if got := s.cache.len(); got != 0 {
		t.Fatalf("failed plan cached: %d entries", got)
	}
	if got := s.stats.JobsFailed.Load(); got != 2 {
		t.Fatalf("want 2 failed jobs, got %d", got)
	}
}

// TestAdmissionRejects429 fills the only execution slot and checks
// overload answers 429 (with queueing disabled) instead of piling up.
func TestAdmissionRejects429(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	s.sem <- struct{}{} // occupy the slot
	code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(1))
	if code != http.StatusTooManyRequests {
		t.Fatalf("want 429 at capacity, got %d (%s)", code, raw)
	}
	if got := s.stats.JobsRejected.Load(); got != 1 {
		t.Fatalf("want 1 rejection, got %d", got)
	}
	<-s.sem
	if code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(1)); code != http.StatusOK {
		t.Fatalf("freed slot: want 200, got %d (%s)", code, raw)
	}
}

// TestQueueBoundsWaiters checks the queue admits up to its depth and
// rejects beyond it, and that a queued job runs once a slot frees.
func TestQueueBoundsWaiters(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	s.sem <- struct{}{}
	done := make(chan int, 1)
	go func() {
		code, _ := post(t, hs.URL+"/v1/jobs", smallSpec(2))
		done <- code
	}()
	// Wait for the submission to reach the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.stats.QueueDepth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("submission never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(3)); code != http.StatusTooManyRequests {
		t.Fatalf("queue full: want 429, got %d (%s)", code, raw)
	}
	<-s.sem // free the slot; the queued job proceeds
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued job: want 200, got %d", code)
	}
}

// TestAsyncLifecycle submits with ?wait=false and drives the job
// through GET polling, listing and DELETE semantics.
func TestAsyncLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 2})
	code, raw := post(t, hs.URL+"/v1/jobs?wait=false", smallSpec(7))
	if code != http.StatusAccepted {
		t.Fatalf("want 202, got %d (%s)", code, raw)
	}
	st := decodeStatus(t, raw)
	if st.ID == "" {
		t.Fatalf("async submission returned no job id: %s", raw)
	}

	var final JobStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		final = decodeStatus(t, buf.Bytes())
		if final.State == StateDone || final.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", final.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("want done with result, got %+v", final)
	}
	if len(final.Result.Rows) != 2 {
		t.Fatalf("want 2 rows, got %v", final.Result.Rows)
	}

	// Listing includes the job, without its row payload.
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, j := range listing.Jobs {
		if j.ID == st.ID {
			found = true
			if j.Result != nil {
				t.Fatalf("listing must not inline results")
			}
		}
	}
	if !found {
		t.Fatalf("job %s missing from listing", st.ID)
	}

	// DELETE on a finished job reports its (unchanged) terminal state.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(dresp.Body)
	dresp.Body.Close()
	if got := decodeStatus(t, buf.Bytes()); got.State != StateDone {
		t.Fatalf("DELETE after finish: want done, got %q", got.State)
	}

	// Unknown ids are 404 on both verbs.
	if resp, _ := http.Get(hs.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown: want 404, got %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/nope", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: want 404, got %d", resp.StatusCode)
	}
}

// TestCanceledJobReportsCanceled drives runJob with an already-canceled
// context (white box: deterministic, no timing) and checks the distinct
// canceled state and counter.
func TestCanceledJobReportsCanceled(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxConcurrent: 1})
	p, err := spec.Decode([]byte(smallSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	jb := s.jobs.create(fp)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.inflight.Add(1)
	s.sem <- struct{}{}
	s.runJob(ctx, jb, p)
	if st := jb.status(); st.State != StateCanceled {
		t.Fatalf("want canceled, got %q (err=%q)", st.State, st.Error)
	}
	if got := s.stats.JobsCanceled.Load(); got != 1 {
		t.Fatalf("want 1 canceled, got %d", got)
	}
	// The canceled flight must not poison the cache.
	if got := s.cache.len(); got != 0 {
		t.Fatalf("canceled compile cached: %d entries", got)
	}
}

// TestDrain checks the SIGTERM path: draining rejects new work with
// 503 and waits for in-flight jobs.
func TestDrain(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 2, DrainTimeout: 5 * time.Second})
	if code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(1)); code != http.StatusOK {
		t.Fatalf("pre-drain job: %d (%s)", code, raw)
	}

	s.inflight.Add(1) // a job still running
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("drain returned with a job in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New submissions are refused while draining.
	if code, raw := post(t, hs.URL+"/v1/jobs", smallSpec(2)); code != http.StatusServiceUnavailable {
		t.Fatalf("draining: want 503, got %d (%s)", code, raw)
	}
	s.inflight.Done()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestIntrospectionExposesService checks /metrics and /runz carry the
// service counters next to the per-run rows.
func TestIntrospectionExposesService(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1})
	post(t, hs.URL+"/v1/jobs", smallSpec(5))
	post(t, hs.URL+"/v1/jobs", smallSpec(5))

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"tuplex_service_jobs_submitted_total 2",
		"tuplex_service_cache_hits_total 1",
		"tuplex_service_cache_misses_total 1",
		"tuplex_service_cold_latency_seconds_count 1",
		"tuplex_service_warm_latency_seconds_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, err = http.Get(hs.URL + "/debug/tuplex/runz")
	if err != nil {
		t.Fatal(err)
	}
	var runz struct {
		Service *telemetry.ServiceReport `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&runz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if runz.Service == nil || runz.Service.JobsSubmitted != 2 || runz.Service.CacheHits != 1 {
		t.Fatalf("runz service section wrong: %+v", runz.Service)
	}
}

// TestSubmissionValidation covers the request-shaped rejections: bad
// JSON, wrong version, oversized bodies and the per-job memory budget.
func TestSubmissionValidation(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, MaxBodyBytes: 512, MemoryBudget: 10})
	if code, _ := post(t, hs.URL+"/v1/jobs", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("bad json: want 400, got %d", code)
	}
	// Version mismatches are accumulated decode problems now: 422 with
	// a TPX000 diagnostic instead of a bare 400.
	if code, raw := post(t, hs.URL+"/v1/jobs", `{"v":9,"source":{"kind":"csv","path":"x"}}`); code != http.StatusUnprocessableEntity ||
		!strings.Contains(string(raw), `"TPX000"`) {
		t.Fatalf("bad version: want 422 with TPX000, got %d (%s)", code, raw)
	}
	big := `{"v":1,"source":{"kind":"csv","data":"` + strings.Repeat("a", 600) + `"}}`
	if code, _ := post(t, hs.URL+"/v1/jobs", big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: want 413, got %d", code)
	}
	over := `{"v":1,"source":{"kind":"csv","data":"a,b\n1,2\n3,4\n5,6\n"}}`
	if code, raw := post(t, hs.URL+"/v1/jobs", over); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("memory budget: want 413, got %d (%s)", code, raw)
	}
	if got := s.stats.JobsRejected.Load(); got != 2 {
		t.Fatalf("want 2 rejections (413s), got %d", got)
	}
}

// TestTakeAndAggregateSinks round-trips the remaining sink kinds
// through the service.
func TestTakeAndAggregateSinks(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 1})
	takeSpec := `{"v":1,
		"source":{"kind":"parallelize","columns":["a"],"rows":[[1],[2],[3],[4]]},
		"sink":{"kind":"take","n":2},"options":{"executors":1}}`
	_, raw := post(t, hs.URL+"/v1/jobs", takeSpec)
	st := decodeStatus(t, raw)
	// A take cap is requested semantics, not server-side truncation.
	if len(st.Result.Rows) != 2 || st.Result.Truncated {
		t.Fatalf("take sink: want 2 rows untruncated, got %+v", st.Result)
	}

	aggSpec := `{"v":1,
		"source":{"kind":"parallelize","columns":["a"],"rows":[[1],[2],[3],[4]]},
		"sink":{"kind":"aggregate",
			"agg":{"code":"lambda acc, row: acc + row"},
			"comb":{"code":"lambda a, b: a + b"},
			"initial":0},
		"options":{"executors":1}}`
	_, raw = post(t, hs.URL+"/v1/jobs", aggSpec)
	st = decodeStatus(t, raw)
	if !reflect.DeepEqual(st.Result.Value, float64(10)) {
		t.Fatalf("aggregate sink: want 10, got %v (%T)", st.Result.Value, st.Result.Value)
	}
}
