package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gotuplex/tuplex/internal/core"
	"github.com/gotuplex/tuplex/internal/plancheck"
	"github.com/gotuplex/tuplex/internal/spec"
	"github.com/gotuplex/tuplex/internal/telemetry"
	"github.com/gotuplex/tuplex/internal/trace"
)

// Server is the tuplex-serve daemon: the telemetry introspection
// surface (/metrics, /debug/tuplex/runz, pprof) plus the /v1/jobs API
// with admission control and the compiled-pipeline cache.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	stats  *telemetry.ServiceStats
	cache  *planCache
	jobs   *jobTable
	flight *telemetry.FlightRecorder
	slow   *slowLog

	// sem holds one token per executing job (admission control).
	sem      chan struct{}
	draining atomic.Bool
	inflight sync.WaitGroup

	ln      net.Listener
	hsrv    *http.Server
	started bool
	done    chan struct{}
	release func() // telemetry process auto-enable
	closed  sync.Once
}

// New builds a server (not yet listening). While the server lives,
// every engine run in the process is telemetry-monitored, so each job
// shows up as its own row in /runz labeled with its job id.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		stats:   telemetry.NewServiceStats(),
		jobs:    newJobTable(),
		flight:  telemetry.NewFlightRecorder(cfg.FlightEvents),
		slow:    &slowLog{},
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		done:    make(chan struct{}),
		release: telemetry.EnableProcess(),
	}
	s.cache = newPlanCache(cfg.CacheEntries, s.stats)
	cfg.Registry.SetService(s.stats)
	cfg.Registry.SetFlight(s.flight)
	s.mux = telemetry.NewMux(cfg.Registry)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/v1/validate", s.handleValidate)
	s.mux.HandleFunc("/debug/tuplex/slowz", s.handleSlowz)
	return s
}

// Serve builds a server and starts listening on cfg.Addr.
func Serve(cfg Config) (*Server, error) {
	s := New(cfg)
	if err := s.Start(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Start binds the listen address and serves in the background.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.mux}
	s.started = true
	go func() {
		defer close(s.done)
		s.hsrv.Serve(ln)
	}()
	return nil
}

// Addr reports the listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handler exposes the full mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the live service counters.
func (s *Server) Stats() *telemetry.ServiceStats { return s.stats }

// Close stops the listener immediately. In-flight jobs keep their
// slots until they notice cancellation; prefer Drain for shutdown.
func (s *Server) Close() error {
	var err error
	s.closed.Do(func() {
		if s.started {
			err = s.hsrv.Close()
			<-s.done
		}
		s.release()
	})
	return err
}

// Drain is the graceful-shutdown path (SIGTERM): stop admitting
// (503 from here on), wait up to DrainTimeout for in-flight jobs, then
// cancel stragglers and close. ctx aborts the wait early.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.flight.Record(telemetry.EventDrain, "", "", 0, "")
	idle := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(idle)
	}()
	t := time.NewTimer(s.cfg.DrainTimeout)
	defer t.Stop()
	select {
	case <-idle:
	case <-t.C:
		s.cancelAll()
		select {
		case <-idle:
		case <-ctx.Done():
		}
	case <-ctx.Done():
		s.cancelAll()
	}
	return s.Close()
}

func (s *Server) cancelAll() {
	for _, j := range s.jobs.list() {
		j.requestCancel()
	}
}

// ---- handlers ----

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		s.handleList(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list jobs")
	}
}

// handleSubmit admits and runs one job. Default is synchronous (the
// response carries the result); ?wait=false answers 202 immediately
// and the client polls GET /v1/jobs/{id}.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	traceID := sanitizeTraceID(r.Header.Get("X-Tuplex-Trace"))
	if traceID == "" {
		traceID = newTraceID()
	}
	if s.draining.Load() {
		s.flight.Record(telemetry.EventReject, "", traceID, 0, "draining")
		s.reject(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.flight.Record(telemetry.EventReject, "", traceID, 0, "body too large")
		s.reject(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	p, err := spec.Decode(body)
	if err != nil {
		if diags := decodeDiagnostics(err); diags != nil {
			s.rejectInvalid(w, traceID, diags)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.MemoryBudget > 0 {
		if n := estimateInputBytes(p); n > s.cfg.MemoryBudget {
			s.flight.Record(telemetry.EventReject, "", traceID, 0, "memory budget")
			s.reject(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("job references ~%d input bytes, per-job budget is %d", n, s.cfg.MemoryBudget))
			return
		}
	}
	fp, err := p.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Fail-fast admission: a spec the verifier can prove broken is
	// turned away before it consumes a queue slot or a cache flight.
	// Warm resubmissions skip the verifier entirely — a cached plan
	// already passed it (and the compiler) on its cold submission, so
	// the warm path stays at cache-hit cost.
	if !s.cache.has(fp) {
		if diags := plancheck.Check(p); plancheck.HasErrors(diags) {
			s.rejectInvalid(w, traceID, diags)
			return
		}
	}

	// Admission happens before the job exists: a rejected submission
	// leaves no trace beyond the rejected counter. The queue wait is
	// bounded by the request timeout.
	actx, acancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	if err := s.admit(actx, traceID); err != nil {
		acancel()
		s.stats.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	queueWait := time.Since(arrival)
	s.stats.JobsSubmitted.Add(1)
	jb := s.jobs.create(fp)
	jb.setAdmission(traceID, arrival, queueWait)
	s.flight.Record(telemetry.EventAdmit, jb.id, traceID, queueWait.Nanoseconds(), "")
	s.inflight.Add(1)

	if r.URL.Query().Get("wait") == "false" {
		acancel()
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
			defer cancel()
			s.runJob(ctx, jb, p)
		}()
		writeJSON(w, http.StatusAccepted, jb.status())
		return
	}
	defer acancel()
	s.runJob(actx, jb, p)
	st := jb.status()
	code := http.StatusOK
	switch st.State {
	case StateFailed:
		code = http.StatusInternalServerError
	case StateCanceled:
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })
	sts := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		sts[i] = j.status()
		sts[i].Result = nil // listings stay light; fetch one job for rows
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": sts})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	sub := ""
	if i := strings.Index(id, "/"); i >= 0 {
		id, sub = id[:i], id[i+1:]
	}
	if id == "" || (sub != "" && sub != "trace") {
		httpError(w, http.StatusNotFound, "no such resource")
		return
	}
	jb := s.jobs.get(id)
	if jb == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if sub == "trace" {
		s.handleJobTrace(w, r, jb)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, jb.status())
	case http.MethodDelete:
		jb.requestCancel()
		writeJSON(w, http.StatusOK, jb.status())
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET for status or DELETE to cancel")
	}
}

// ---- execution ----

// admit takes an execution slot, queueing up to QueueDepth waiters.
// Shed submissions (429) leave a flight-recorder event — they are
// exactly what an operator looks for after an overload incident.
func (s *Server) admit(ctx context.Context, traceID string) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.QueueDepth == 0 {
		s.flight.Record(telemetry.EventShed, "", traceID, 0, "queueing disabled")
		return fmt.Errorf("service at capacity (%d jobs running, queueing disabled)", s.cfg.MaxConcurrent)
	}
	if n := s.stats.QueueDepth.Add(1); n > int64(s.cfg.QueueDepth) {
		s.stats.QueueDepth.Add(-1)
		s.flight.Record(telemetry.EventShed, "", traceID, 0, "queue full")
		return fmt.Errorf("service at capacity (%d jobs running, %d queued)", s.cfg.MaxConcurrent, s.cfg.QueueDepth)
	}
	defer s.stats.QueueDepth.Add(-1)
	s.flight.Record(telemetry.EventQueue, "", traceID, 0, "")
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.flight.Record(telemetry.EventShed, "", traceID, 0, "queue wait aborted")
		return fmt.Errorf("queue wait aborted: %w", context.Cause(ctx))
	}
}

// runJob executes one admitted job (the caller holds its slot) and
// records its lifecycle. Blocking; async submissions wrap it in a
// goroutine.
func (s *Server) runJob(ctx context.Context, jb *job, p *spec.Pipeline) {
	defer s.inflight.Done()
	defer func() { <-s.sem }()
	defer s.jobs.retire(jb)

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jb.setRunning(cancel)
	s.stats.RunningJobs.Add(1)
	defer s.stats.RunningJobs.Add(-1)

	t0 := time.Now()
	res, built, hit, err := s.execute(jctx, jb, p)
	dur := time.Since(t0)
	// End-to-end latency (what the exemplars and slow log key on) is
	// measured from request arrival, queue wait included.
	total := time.Since(jb.arrival)
	switch {
	case err == nil:
		s.stats.JobsCompleted.Add(1)
		if hit {
			s.stats.WarmLatency.RecordExemplar(dur.Nanoseconds(), jb.id, jb.traceID)
		} else {
			s.stats.ColdLatency.RecordExemplar(dur.Nanoseconds(), jb.id, jb.traceID)
		}
		jb.finish(StateDone, hit, shapeResult(built, res, s.cfg.MaxResultRows), nil)
		s.flight.Record(telemetry.EventDone, jb.id, jb.traceID, total.Nanoseconds(), "")
	case errors.Is(err, core.ErrCanceled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.stats.JobsCanceled.Add(1)
		jb.finish(StateCanceled, hit, nil, err)
		s.flight.Record(telemetry.EventCanceled, jb.id, jb.traceID, total.Nanoseconds(), "")
	default:
		s.stats.JobsFailed.Add(1)
		jb.finish(StateFailed, hit, nil, err)
		// The error payload carries the job's own black-box tail so the
		// failure arrives with its context attached.
		s.flight.Record(telemetry.EventFailed, jb.id, jb.traceID, total.Nanoseconds(), "")
		jb.setEvents(s.flight.JobEvents(jb.id, 32))
	}
	var engineTrace *trace.Trace
	if res != nil {
		engineTrace = res.Trace
	}
	jb.setTrace(buildJobTrace(jb, engineTrace, total))
	s.noteSlow(jb, total)
}

// execute resolves the job through the plan cache: own the flight
// (compile fresh, capturing the plan), or wait on the in-flight owner
// and re-execute the cached plan. A failed flight is retried by the
// next submitter rather than poisoning the key.
func (s *Server) execute(ctx context.Context, jb *job, p *spec.Pipeline) (*core.Result, *spec.Built, bool, error) {
	lookup := time.Now()
	for attempt := 0; attempt < 4; attempt++ {
		e, owner := s.cache.acquire(jb.fingerprint)
		if owner {
			jb.noteLookup(time.Since(lookup))
			s.flight.Record(telemetry.EventCompile, jb.id, jb.traceID, 0, "")
			built, err := p.Build()
			if err != nil {
				s.cache.fail(e, err)
				return nil, nil, false, err
			}
			s.tuneOpts(&built.Opts, jb)
			s.stats.CacheMisses.Add(1)
			s.flight.Record(telemetry.EventExecute, jb.id, jb.traceID, 0, "")
			jb.noteExecStart()
			res, cp, err := core.CompileAndExecute(ctx, built.Node, built.Kind, built.CSVPath, built.Opts)
			if err != nil {
				s.cache.fail(e, err)
				return nil, built, false, err
			}
			s.cache.complete(e, cp, built)
			return res, built, false, nil
		}
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, nil, false, fmt.Errorf("service: %w", context.Cause(ctx))
		}
		if e.err != nil {
			continue // the owner failed; compete to compile it ourselves
		}
		jb.noteLookup(time.Since(lookup))
		s.stats.CacheHits.Add(1)
		s.flight.Record(telemetry.EventCacheHit, jb.id, jb.traceID, 0, "")
		s.flight.Record(telemetry.EventExecute, jb.id, jb.traceID, 0, "")
		jb.noteExecStart()
		res, err := e.plan.ExecuteLabeled(ctx, e.built.CSVPath, jb.id)
		return res, e.built, true, err
	}
	// Pathological churn of failing flights: run once, uncached.
	jb.noteLookup(time.Since(lookup))
	built, err := p.Build()
	if err != nil {
		return nil, nil, false, err
	}
	s.tuneOpts(&built.Opts, jb)
	s.stats.CacheMisses.Add(1)
	s.flight.Record(telemetry.EventExecute, jb.id, jb.traceID, 0, "")
	jb.noteExecStart()
	res, err := core.ExecuteContext(ctx, built.Node, built.Kind, built.CSVPath, built.Opts)
	return res, built, false, err
}

// tuneOpts applies the server's per-job budgets and telemetry labeling
// on top of the spec's options.
func (s *Server) tuneOpts(o *core.Options, jb *job) {
	if s.cfg.ExecutorsPerJob > 0 && (o.Executors <= 0 || o.Executors > s.cfg.ExecutorsPerJob) {
		o.Executors = s.cfg.ExecutorsPerJob
	}
	o.Telemetry.Enabled = true
	o.Telemetry.Label = jb.id
	// Service jobs always carry a routing ledger in their trace: the
	// per-op normal/general/fallback row counts are the first thing an
	// operator reads from GET /v1/jobs/{id}/trace. Warm re-executions
	// inherit this (compiled plans run with the options they were
	// compiled under), so the ledger is there on cache hits too.
	if o.Trace < trace.LevelRows {
		o.Trace = trace.LevelRows
	}
}

// shapeResult renders an engine result into the job's wire form,
// honoring the sink kind, a take cap and the server row limit.
func shapeResult(b *spec.Built, res *core.Result, maxRows int) *JobResult {
	jr := &JobResult{
		InputRows:  res.Metrics.Counters.InputRows.Load(),
		OutputRows: res.Metrics.Counters.OutputRows.Load(),
		FailedRows: int64(len(res.Failed)),
	}
	if res.Schema != nil {
		jr.Columns = res.Schema.Names()
	}
	switch {
	case b.IsAgg:
		if vals := spec.ResultRows(res, 1); len(vals) == 1 && len(vals[0]) == 1 {
			jr.Value = vals[0][0]
		}
		jr.Columns = nil
	case b.Kind == core.SinkCSV:
		if b.CSVPath != "" {
			jr.CSVPath = b.CSVPath
		} else {
			jr.CSV = string(res.CSV)
		}
	default:
		limit := maxRows
		if b.Take >= 0 && b.Take < limit {
			limit = b.Take
		}
		jr.Rows = spec.ResultRows(res, limit)
		total := spec.ResultLen(res)
		if b.Take >= 0 && b.Take < total {
			total = b.Take
		}
		jr.Truncated = len(jr.Rows) < total
	}
	return jr
}

// estimateInputBytes sizes a job's referenced input for the memory
// budget: inline data verbatim, file-backed sources by on-disk size
// (join build sides included), inline rows at a nominal 64 bytes each.
func estimateInputBytes(p *spec.Pipeline) int64 {
	if p == nil {
		return 0
	}
	n := int64(len(p.Source.Data))
	if p.Source.Path != "" && len(p.Source.Rows) == 0 {
		for _, path := range strings.Split(p.Source.Path, ",") {
			if fi, err := os.Stat(strings.TrimSpace(path)); err == nil {
				n += fi.Size()
			}
		}
	}
	n += int64(len(p.Source.Rows)) * 64
	for i := range p.Ops {
		n += estimateInputBytes(p.Ops[i].Build)
	}
	return n
}

// ---- wire helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	s.stats.JobsRejected.Add(1)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	httpError(w, code, "%s", msg)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
