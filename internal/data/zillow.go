package data

import (
	"fmt"
	"strings"
)

// ZillowConfig sizes the Zillow listings generator.
type ZillowConfig struct {
	Rows int
	Seed uint64
	// DirtyFraction is the share of rows violating the normal case
	// (malformed facts strings, N/A prices). The paper cleaned its 10GB
	// dataset; a small nonzero default exercises the exception paths.
	DirtyFraction float64
}

// ZillowColumns is the input schema (10 columns, per Table 2).
var ZillowColumns = []string{
	"title", "address", "city", "state", "postal_code", "price",
	"facts and features", "real estate provider", "url", "sales_date",
}

var zillowCities = []string{
	"boston", "CAMBRIDGE", "Somerville", "newton", "BROOKLINE",
	"quincy", "medford", "arlington", "WALTHAM", "malden",
}

var zillowStreets = []string{
	"Main St", "Elm St", "Washington Ave", "Park Dr", "Beacon St",
	"Harvard Ave", "Commonwealth Ave", "Centre St",
}

// Zillow renders the listings CSV (with header).
func Zillow(cfg ZillowConfig) []byte {
	if cfg.Rows <= 0 {
		cfg.Rows = 1000
	}
	r := newRng(cfg.Seed ^ 0x21110)
	var sb strings.Builder
	sb.Grow(cfg.Rows * 220)
	sb.WriteString(strings.Join(ZillowColumns, ","))
	sb.WriteByte('\n')
	for i := range cfg.Rows {
		dirty := r.chance(cfg.DirtyFraction)
		offer := r.pick("Sale", "Rent", "Sold", "Foreclosed", "Sale", "Sale", "Rent")
		htype := r.pick("house", "condo", "apartment", "townhouse", "house", "house")
		bd := r.rangeInt(1, 12) // some >=10 rows for the bedroom filter
		ba := r.rangeInt(1, 5)
		sqft := r.rangeInt(450, 5200)
		pricePerSqft := r.rangeInt(120, 900)
		price := sqft * pricePerSqft

		title := fmt.Sprintf("%s For %s - %d bed", capWord(htype), offer, bd)
		address := fmt.Sprintf("%d %s", r.rangeInt(1, 999), r.pick(zillowStreets...))
		city := r.pick(zillowCities...)
		state := "MA"
		postal := fmt.Sprintf("%d", r.rangeInt(1801, 2790)) // leading zero lost, like the real data

		var priceCell, facts string
		switch strings.ToLower(offer) {
		case "rent":
			rent := r.rangeInt(900, 7000)
			priceCell = fmt.Sprintf("$%s/mo", commaInt(rent))
			facts = fmt.Sprintf("%d bds, %d ba , %s sqft", bd, ba, commaInt(sqft))
		case "sold":
			priceCell = fmt.Sprintf("$%s", commaInt(price))
			facts = fmt.Sprintf("%d bds, %d ba , %s sqft Price/sqft: $%d , built %d",
				bd, ba, commaInt(sqft), pricePerSqft, r.rangeInt(1890, 2015))
		default:
			priceCell = fmt.Sprintf("$%s", commaInt(price))
			facts = fmt.Sprintf("%d bds, %d ba , %s sqft", bd, ba, commaInt(sqft))
		}
		if dirty {
			switch r.Intn(3) {
			case 0:
				facts = "studio unit" // extractBd raises ValueError
			case 1:
				priceCell = "N/A" // extractPrice raises ValueError
			default:
				facts = fmt.Sprintf("%d bds", bd) // extractBa raises ValueError
			}
		}
		url := fmt.Sprintf("https://www.zillow.com/homedetails/%d_zpid/", 10000000+i)
		provider := r.pick("Coldwell Banker", "Redfin", "Keller Williams", "Compass")
		date := fmt.Sprintf("%04d-%02d-%02d", r.rangeInt(2015, 2020), r.rangeInt(1, 13), r.rangeInt(1, 29))

		writeCSVRow(&sb, []string{
			title, address, city, state, postal, priceCell, facts, provider, url, date,
		})
	}
	return []byte(sb.String())
}

func capWord(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// writeCSVRow renders cells with minimal quoting.
func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
			sb.WriteByte('"')
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}
