package data

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gotuplex/tuplex/internal/csvio"
)

func TestZillowDeterministicAndWellFormed(t *testing.T) {
	a := Zillow(ZillowConfig{Rows: 500, Seed: 9, DirtyFraction: 0.02})
	b := Zillow(ZillowConfig{Rows: 500, Seed: 9, DirtyFraction: 0.02})
	if !bytes.Equal(a, b) {
		t.Fatal("generator not deterministic")
	}
	c := Zillow(ZillowConfig{Rows: 500, Seed: 10, DirtyFraction: 0.02})
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical data")
	}
	records := csvio.SplitRecords(a)
	if len(records) != 501 {
		t.Fatalf("records = %d", len(records))
	}
	header := csvio.SplitCells(records[0], ',', nil)
	if len(header) != len(ZillowColumns) {
		t.Fatalf("header = %v", header)
	}
	for i, rec := range records[1:] {
		if csvio.CountCells(rec, ',') != len(ZillowColumns) {
			t.Fatalf("row %d has wrong arity: %q", i, rec)
		}
	}
}

func TestZillowFactsFormatMatchesUDFExpectations(t *testing.T) {
	raw := Zillow(ZillowConfig{Rows: 300, Seed: 4})
	records := csvio.SplitRecords(raw)
	factsIdx := 6
	soldSeen := false
	for _, rec := range records[1:] {
		cells := csvio.SplitCells(rec, ',', nil)
		facts := cells[factsIdx]
		if strings.Contains(facts, "Price/sqft:") {
			soldSeen = true
			// extractPrice needs "$N , " after the marker.
			i := strings.Index(facts, "$")
			if i < 0 || !strings.Contains(facts[i:], " , ") {
				t.Fatalf("sold facts not UDF-compatible: %q", facts)
			}
		}
		if strings.Contains(facts, " sqft") && !strings.Contains(facts, "ba , ") {
			t.Fatalf("sqft facts missing 'ba , ' marker: %q", facts)
		}
	}
	if !soldSeen {
		t.Fatal("no sold listings generated")
	}
}

func TestFlightsStructureAndRates(t *testing.T) {
	cfg := FlightsConfig{Rows: 5000, Seed: 2}.WithDefaults()
	raw := Flights(cfg)
	records := csvio.SplitRecords(raw)
	if len(records) != cfg.Rows+1 {
		t.Fatalf("records = %d", len(records))
	}
	header := csvio.SplitCells(records[0], ',', nil)
	if len(header) != 110 {
		t.Fatalf("columns = %d, want 110", len(header))
	}
	idx := map[string]int{}
	for i, h := range header {
		idx[h] = i
	}
	diverted, cancelled := 0, 0
	for _, rec := range records[1:] {
		cells := csvio.SplitCells(rec, ',', nil)
		if len(cells) != 110 {
			t.Fatalf("bad arity: %d", len(cells))
		}
		if cells[idx["DIVERTED"]] == "1.0" {
			diverted++
			if cells[idx["DIV_ACTUAL_ELAPSED_TIME"]] == "" {
				t.Fatal("diverted row missing DIV_ACTUAL_ELAPSED_TIME")
			}
		}
		if cells[idx["CANCELLED"]] == "1.0" {
			cancelled++
			if cells[idx["CANCELLATION_CODE"]] == "" {
				t.Fatal("cancelled row missing code")
			}
		}
	}
	dr := float64(diverted) / float64(cfg.Rows)
	if dr < 0.01 || dr > 0.035 {
		t.Fatalf("diverted rate = %.3f, want ~%.3f", dr, cfg.DivertedFraction)
	}
	if cancelled == 0 {
		t.Fatal("no cancelled flights")
	}
}

func TestCarriersFormatMatchesUDF(t *testing.T) {
	raw := Carriers()
	records := csvio.SplitRecords(raw)
	if len(records) < 5 {
		t.Fatal("too few carriers")
	}
	for _, rec := range records[1:] {
		cells := csvio.SplitCells(rec, ',', nil)
		desc := cells[1]
		// extractDefunctYear relies on "Name (YYYY - [YYYY])".
		if !strings.Contains(desc, "(") || !strings.Contains(desc, "-") || !strings.HasSuffix(desc, ")") {
			t.Fatalf("bad carrier description %q", desc)
		}
	}
}

func TestAirportsColonDelimited(t *testing.T) {
	raw := Airports()
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if got := len(strings.Split(line, ":")); got != len(AirportColumns) {
			t.Fatalf("airport line has %d fields, want %d: %q", got, len(AirportColumns), line)
		}
	}
}

func TestWeblogsFormats(t *testing.T) {
	logs, bad := Weblogs(WeblogConfig{Rows: 2000, Seed: 6})
	lines := strings.Split(strings.TrimSpace(string(logs)), "\n")
	if len(lines) != 2000 {
		t.Fatalf("lines = %d", len(lines))
	}
	badRecords := csvio.SplitRecords(bad)
	if string(badRecords[0]) != "BadIPs" {
		t.Fatalf("bad-IP header = %q", badRecords[0])
	}
	userPaths, badHits := 0, 0
	badSet := map[string]bool{}
	for _, r := range badRecords[1:] {
		badSet[string(r)] = true
	}
	for _, l := range lines {
		if strings.Contains(l, "/~") {
			userPaths++
		}
		if i := strings.IndexByte(l, ' '); i > 0 && badSet[l[:i]] {
			badHits++
		}
	}
	if userPaths == 0 {
		t.Fatal("no /~user paths generated")
	}
	if badHits == 0 {
		t.Fatal("no blacklisted-IP requests generated")
	}
}

func TestThreeOneOneMessiness(t *testing.T) {
	raw := ThreeOneOne(ThreeOneOneConfig{Rows: 3000, Seed: 7, MessyFraction: 0.1})
	records := csvio.SplitRecords(raw)
	zipIdx := -1
	for i, h := range csvio.SplitCells(records[0], ',', nil) {
		if h == "Incident Zip" {
			zipIdx = i
		}
	}
	if zipIdx < 0 {
		t.Fatal("no Incident Zip column")
	}
	kinds := map[string]int{}
	for _, rec := range records[1:] {
		z := csvio.SplitCells(rec, ',', nil)[zipIdx]
		switch {
		case z == "":
			kinds["empty"]++
		case strings.Contains(z, "-"):
			kinds["zip+4"]++
		case strings.Contains(z, "."):
			kinds["float"]++
		case z == "NO CLUE" || z == "00000":
			kinds["placeholder"]++
		default:
			kinds["clean"]++
		}
	}
	for _, k := range []string{"empty", "zip+4", "float", "placeholder", "clean"} {
		if kinds[k] == 0 {
			t.Fatalf("messiness kind %q missing: %v", k, kinds)
		}
	}
}

func TestTPCHLineitemRanges(t *testing.T) {
	raw := TPCHLineitem(TPCHConfig{Rows: 5000, Seed: 8})
	records := csvio.SplitRecords(raw)
	inWindow := 0
	for _, rec := range records[1:] {
		cells := csvio.SplitCells(rec, ',', nil)
		if len(cells) != 4 {
			t.Fatalf("bad arity %q", rec)
		}
		q, ok := csvio.ParseI64(cells[0])
		if !ok || q < 1 || q > 50 {
			t.Fatalf("quantity %q", cells[0])
		}
		d, ok := csvio.ParseF64(cells[2])
		if !ok || d < 0 || d > 0.1 {
			t.Fatalf("discount %q", cells[2])
		}
		s, _ := csvio.ParseI64(cells[3])
		if s >= Q6DateLo && s < Q6DateHi {
			inWindow++
		}
	}
	// ~1/7 of dates should land in the Q6 year.
	frac := float64(inWindow) / 5000
	if frac < 0.08 || frac > 0.22 {
		t.Fatalf("Q6 window fraction = %.3f", frac)
	}
}
