package data

import (
	"fmt"
	"strings"
)

// FlightsConfig sizes the flight on-time performance generator.
type FlightsConfig struct {
	Rows int
	Seed uint64
	// DivertedFraction is the share of diverted flights whose DIV_*
	// columns are populated — these violate the mostly-null normal case
	// and take the general path (≈2.6% in §6.1.2).
	DivertedFraction float64
	// CancelledFraction of flights carry a cancellation code.
	CancelledFraction float64
}

// WithDefaults fills zero fields to the paper's observed rates.
func (c FlightsConfig) WithDefaults() FlightsConfig {
	if c.Rows <= 0 {
		c.Rows = 10000
	}
	if c.DivertedFraction == 0 {
		c.DivertedFraction = 0.02
	}
	if c.CancelledFraction == 0 {
		c.CancelledFraction = 0.006
	}
	return c
}

// flightCarriers: code, name, founded, defunct (0 = active).
var flightCarriers = []struct {
	code    string
	name    string
	founded int
	defunct int
}{
	{"AA", "American Airlines Inc.", 1934, 0},
	{"DL", "Delta Air Lines Inc.", 1929, 0},
	{"UA", "United Air Lines Inc.", 1931, 0},
	{"WN", "Southwest Airlines Co.", 1971, 0},
	{"B6", "JetBlue Airways LLC", 1999, 0},
	{"AS", "Alaska Airlines Inc.", 1932, 0},
	{"NK", "Spirit Air Lines", 1983, 0},
	{"F9", "Frontier Airlines Inc.", 1994, 0},
	{"VX", "Virgin America", 2004, 2018},
	{"NW", "Northwest Airlines Inc.", 1926, 2010},
	{"CO", "Continental Air Lines Inc.", 1934, 2012},
	{"US", "US Airways Inc.", 1939, 2015},
	{"TW", "Trans World Airways LLC", 1925, 2001},
	{"PA", "Pan American World Airways", 1927, 1991},
}

// flightAirports: IATA, ICAO, name, city, country, lat, lon, altitude.
var flightAirports = []struct {
	iata, icao, name, city, country string
	lat, lon                        float64
	alt                             int
}{
	{"BOS", "KBOS", "GENERAL EDWARD LAWRENCE LOGAN INTL", "BOSTON", "USA", 42.3643, -71.0052, 20},
	{"JFK", "KJFK", "JOHN F KENNEDY INTL", "NEW YORK", "USA", 40.6398, -73.7789, 13},
	{"LAX", "KLAX", "LOS ANGELES INTL", "LOS ANGELES", "USA", 33.9425, -118.4081, 125},
	{"ORD", "KORD", "CHICAGO OHARE INTL", "CHICAGO", "USA", 41.9786, -87.9048, 672},
	{"ATL", "KATL", "HARTSFIELD JACKSON ATLANTA INTL", "ATLANTA", "USA", 33.6367, -84.4281, 1026},
	{"SFO", "KSFO", "SAN FRANCISCO INTL", "SAN FRANCISCO", "USA", 37.6190, -122.3749, 13},
	{"SEA", "KSEA", "SEATTLE TACOMA INTL", "SEATTLE", "USA", 47.4490, -122.3093, 433},
	{"DEN", "KDEN", "DENVER INTL", "DENVER", "USA", 39.8617, -104.6731, 5431},
	{"MIA", "KMIA", "MIAMI INTL", "MIAMI", "USA", 25.7932, -80.2906, 8},
	{"DFW", "KDFW", "DALLAS FORT WORTH INTL", "DALLAS-FORT WORTH", "USA", 32.8968, -97.0380, 607},
	{"PHX", "KPHX", "PHOENIX SKY HARBOR INTL", "PHOENIX", "USA", 33.4343, -112.0116, 1135},
	{"LAS", "KLAS", "MC CARRAN INTL", "LAS VEGAS", "USA", 36.0801, -115.1522, 2181},
	// A couple of airports the flight table never references, and one
	// destination with no airport-table entry is exercised by XNA below.
	{"ANC", "PANC", "TED STEVENS ANCHORAGE INTL", "ANCHORAGE", "USA", 61.1744, -149.9963, 152},
}

var flightCityNames = map[string]string{
	"BOS": "Boston, MA", "JFK": "New York, NY", "LAX": "Los Angeles, CA",
	"ORD": "Chicago, IL", "ATL": "Atlanta, GA", "SFO": "San Francisco, CA",
	"SEA": "Seattle, WA", "DEN": "Denver, CO", "MIA": "Miami, FL",
	"DFW": "Dallas/Fort Worth, TX", "PHX": "Phoenix, AZ", "LAS": "Las Vegas, NV",
	"XNA": "Fayetteville, AR", // in flights but not in the airports table (left-join miss)
}

// FlightPerfColumns builds the 110-column header of the BTS on-time
// performance files; the pipeline reads ~30, the rest exist so
// projection pushdown has something real to prune (§6.3.1).
func FlightPerfColumns() []string {
	cols := []string{
		"YEAR", "QUARTER", "MONTH", "DAY_OF_MONTH", "DAY_OF_WEEK", "FL_DATE",
		"OP_UNIQUE_CARRIER", "OP_CARRIER_AIRLINE_ID", "OP_CARRIER", "TAIL_NUM",
		"OP_CARRIER_FL_NUM", "ORIGIN_AIRPORT_ID", "ORIGIN_AIRPORT_SEQ_ID",
		"ORIGIN_CITY_MARKET_ID", "ORIGIN", "ORIGIN_CITY_NAME", "ORIGIN_STATE_ABR",
		"ORIGIN_STATE_FIPS", "ORIGIN_STATE_NM", "ORIGIN_WAC", "DEST_AIRPORT_ID",
		"DEST_AIRPORT_SEQ_ID", "DEST_CITY_MARKET_ID", "DEST", "DEST_CITY_NAME",
		"DEST_STATE_ABR", "DEST_STATE_FIPS", "DEST_STATE_NM", "DEST_WAC",
		"CRS_DEP_TIME", "DEP_TIME", "DEP_DELAY", "DEP_DELAY_NEW", "DEP_DEL15",
		"DEP_DELAY_GROUP", "DEP_TIME_BLK", "TAXI_OUT", "WHEELS_OFF", "WHEELS_ON",
		"TAXI_IN", "CRS_ARR_TIME", "ARR_TIME", "ARR_DELAY", "ARR_DELAY_NEW",
		"ARR_DEL15", "ARR_DELAY_GROUP", "ARR_TIME_BLK", "CANCELLED",
		"CANCELLATION_CODE", "DIVERTED", "CRS_ELAPSED_TIME", "ACTUAL_ELAPSED_TIME",
		"AIR_TIME", "FLIGHTS", "DISTANCE", "DISTANCE_GROUP", "CARRIER_DELAY",
		"WEATHER_DELAY", "NAS_DELAY", "SECURITY_DELAY", "LATE_AIRCRAFT_DELAY",
		"FIRST_DEP_TIME", "TOTAL_ADD_GTIME", "LONGEST_ADD_GTIME", "DIV_AIRPORT_LANDINGS",
		"DIV_REACHED_DEST", "DIV_ACTUAL_ELAPSED_TIME", "DIV_ARR_DELAY", "DIV_DISTANCE",
	}
	for i := len(cols); i < 110; i++ {
		cols = append(cols, fmt.Sprintf("RESERVED_%d", i))
	}
	return cols
}

// Flights renders the on-time performance CSV.
func Flights(cfg FlightsConfig) []byte {
	cfg = cfg.WithDefaults()
	r := newRng(cfg.Seed ^ 0xF115)
	cols := FlightPerfColumns()
	idx := map[string]int{}
	for i, c := range cols {
		idx[c] = i
	}
	var sb strings.Builder
	sb.Grow(cfg.Rows * 300)
	sb.WriteString(strings.Join(cols, ","))
	sb.WriteByte('\n')

	iatas := make([]string, 0, len(flightCityNames))
	for k := range flightCityNames {
		iatas = append(iatas, k)
	}
	// Deterministic order for the seeded generator.
	sortStrings(iatas)

	row := make([]string, len(cols))
	for range cfg.Rows {
		for i := range row {
			row[i] = ""
		}
		carrier := flightCarriers[r.Intn(len(flightCarriers))]
		origin := iatas[r.Intn(len(iatas))]
		dest := iatas[r.Intn(len(iatas))]
		for dest == origin {
			dest = iatas[r.Intn(len(iatas))]
		}
		year := r.rangeInt(2009, 2020)
		elapsed := r.rangeInt(45, 400)
		dep := r.rangeInt(0, 2360)
		set := func(col, v string) { row[idx[col]] = v }
		set("YEAR", fmt.Sprint(year))
		set("QUARTER", fmt.Sprint(1+r.Intn(4)))
		set("MONTH", fmt.Sprint(1+r.Intn(12)))
		set("DAY_OF_MONTH", fmt.Sprint(1+r.Intn(28)))
		set("DAY_OF_WEEK", fmt.Sprint(1+r.Intn(7)))
		set("FL_DATE", fmt.Sprintf("%04d-%02d-%02d", year, 1+r.Intn(12), 1+r.Intn(28)))
		set("OP_UNIQUE_CARRIER", carrier.code)
		set("OP_CARRIER", carrier.code)
		set("OP_CARRIER_AIRLINE_ID", fmt.Sprint(19000+r.Intn(999)))
		set("TAIL_NUM", "N"+fmt.Sprint(100+r.Intn(900))+r.upperWord(2))
		set("OP_CARRIER_FL_NUM", fmt.Sprint(1+r.Intn(9999)))
		set("ORIGIN", origin)
		set("ORIGIN_CITY_NAME", flightCityNames[origin])
		set("DEST", dest)
		set("DEST_CITY_NAME", flightCityNames[dest])
		set("CRS_DEP_TIME", fmt.Sprint(dep))
		set("CRS_ARR_TIME", fmt.Sprint((dep+elapsed)%2400))
		set("CRS_ELAPSED_TIME", fmt.Sprintf("%d.0", elapsed))
		set("DISTANCE", fmt.Sprintf("%d.0", r.rangeInt(100, 2800)))
		set("FLIGHTS", "1.0")

		cancelled := r.chance(cfg.CancelledFraction)
		diverted := !cancelled && r.chance(cfg.DivertedFraction)
		if cancelled {
			set("CANCELLED", "1.0")
			set("DIVERTED", "0.0")
			set("CANCELLATION_CODE", r.pick("A", "B", "C", "D"))
		} else {
			set("CANCELLED", "0.0")
			arrDelay := r.rangeInt(-20, 120)
			set("ACTUAL_ELAPSED_TIME", fmt.Sprintf("%d.0", elapsed+arrDelay/2))
			set("AIR_TIME", fmt.Sprintf("%d.0", elapsed-r.rangeInt(15, 40)))
			set("ARR_DELAY", fmt.Sprintf("%d.0", arrDelay))
			set("DEP_DELAY", fmt.Sprintf("%d.0", r.rangeInt(-10, 90)))
			set("TAXI_IN", fmt.Sprintf("%d.0", r.rangeInt(2, 20)))
			set("TAXI_OUT", fmt.Sprintf("%d.0", r.rangeInt(5, 35)))
			if arrDelay > 15 && r.chance(0.7) {
				// Delay-cause columns are populated only for late
				// flights: sparse columns with occasional values.
				set("CARRIER_DELAY", fmt.Sprintf("%d.0", r.rangeInt(0, arrDelay)))
				set("WEATHER_DELAY", "0.0")
				set("NAS_DELAY", fmt.Sprintf("%d.0", r.rangeInt(0, 30)))
				set("SECURITY_DELAY", "0.0")
				set("LATE_AIRCRAFT_DELAY", fmt.Sprintf("%d.0", r.rangeInt(0, 30)))
			}
			if diverted {
				set("DIVERTED", "1.0")
				set("DIV_AIRPORT_LANDINGS", "1")
				set("DIV_REACHED_DEST", "1.0")
				set("DIV_ACTUAL_ELAPSED_TIME", fmt.Sprintf("%d.0", elapsed+r.rangeInt(60, 240)))
				set("DIV_ARR_DELAY", fmt.Sprintf("%d.0", r.rangeInt(60, 240)))
				set("DIV_DISTANCE", "0.0")
			} else {
				set("DIVERTED", "0.0")
			}
		}
		writeCSVRow(&sb, row)
	}
	return []byte(sb.String())
}

// Carriers renders the L_CARRIER_HISTORY side table.
func Carriers() []byte {
	var sb strings.Builder
	sb.WriteString("Code,Description\n")
	for _, c := range flightCarriers {
		defunct := ""
		if c.defunct > 0 {
			defunct = fmt.Sprint(c.defunct)
		}
		writeCSVRow(&sb, []string{c.code, fmt.Sprintf("%s (%d - %s)", c.name, c.founded, defunct)})
	}
	return []byte(sb.String())
}

// Airports renders the colon-delimited GlobalAirportDatabase side table
// (16 columns, no header).
func Airports() []byte {
	var sb strings.Builder
	for _, a := range flightAirports {
		latDir, lonDir := "N", "W"
		cells := []string{
			a.icao, a.iata, a.name, a.city, a.country,
			fmt.Sprint(int(a.lat)), fmt.Sprint(int(a.lat*60) % 60), fmt.Sprint(int(a.lat*3600) % 60), latDir,
			fmt.Sprint(int(-a.lon)), fmt.Sprint(int(-a.lon*60) % 60), fmt.Sprint(int(-a.lon*3600) % 60), lonDir,
			fmt.Sprint(a.alt),
			fmt.Sprintf("%.3f", a.lat), fmt.Sprintf("%.3f", a.lon),
		}
		sb.WriteString(strings.Join(cells, ":"))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// AirportColumns matches the paper's airport_cols list.
var AirportColumns = []string{
	"ICAOCode", "IATACode", "AirportName", "AirportCity", "Country",
	"LatitudeDegrees", "LatitudeMinutes", "LatitudeSeconds", "LatitudeDirection",
	"LongitudeDegrees", "LongitudeMinutes", "LongitudeSeconds",
	"LongitudeDirection", "Altitude", "LatitudeDecimal", "LongitudeDecimal",
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
