package data

import (
	"fmt"
	"strings"
)

// ThreeOneOneConfig sizes the 311 service-request generator.
type ThreeOneOneConfig struct {
	Rows int
	Seed uint64
	// MessyFraction of zip cells carry the pandas-cookbook messiness:
	// ZIP+4 spellings, '00000' placeholders, 'NO CLUE', NaN-ish blanks.
	MessyFraction float64
}

// ThreeOneOneColumns mirrors the subset of NYC 311 columns the cleaning
// query touches.
var ThreeOneOneColumns = []string{
	"Unique Key", "Created Date", "Agency", "Complaint Type",
	"Descriptor", "Incident Zip", "City", "Borough",
}

var nycZips = []string{
	"10001", "10002", "10003", "10011", "10016", "10019", "10025",
	"11201", "11215", "11217", "11375", "10451", "10301",
}

var nycComplaints = []string{
	"Noise - Street/Sidewalk", "Illegal Parking", "HEAT/HOT WATER",
	"Blocked Driveway", "Street Condition", "Water System", "Rodent",
}

// ThreeOneOne renders the 311 service-requests CSV.
func ThreeOneOne(cfg ThreeOneOneConfig) []byte {
	if cfg.Rows <= 0 {
		cfg.Rows = 1000
	}
	if cfg.MessyFraction == 0 {
		cfg.MessyFraction = 0.08
	}
	r := newRng(cfg.Seed ^ 0x311)
	var sb strings.Builder
	sb.Grow(cfg.Rows * 110)
	sb.WriteString(strings.Join(ThreeOneOneColumns, ","))
	sb.WriteByte('\n')
	for i := range cfg.Rows {
		zip := r.pick(nycZips...)
		if r.chance(cfg.MessyFraction) {
			switch r.Intn(5) {
			case 0:
				zip = zip + "-" + fmt.Sprintf("%04d", r.Intn(10000)) // ZIP+4
			case 1:
				zip = "00000" // placeholder
			case 2:
				zip = "NO CLUE"
			case 3:
				zip = "" // NaN
			default:
				zip = fmt.Sprintf("%d.0", 10000+r.Intn(90000)) // float-ified
			}
		}
		writeCSVRow(&sb, []string{
			fmt.Sprint(26000000 + i),
			fmt.Sprintf("%02d/%02d/%d 0%d:%02d:%02d PM", 1+r.Intn(12), 1+r.Intn(28), r.rangeInt(2013, 2016), r.Intn(10), r.Intn(60), r.Intn(60)),
			r.pick("NYPD", "HPD", "DOT", "DEP", "DSNY"),
			r.pick(nycComplaints...),
			"Loud Music/Party",
			zip,
			r.pick("NEW YORK", "BROOKLYN", "BRONX", "STATEN ISLAND", "QUEENS"),
			r.pick("MANHATTAN", "BROOKLYN", "BRONX", "STATEN ISLAND", "QUEENS"),
		})
	}
	return []byte(sb.String())
}

// TPCHConfig sizes the lineitem generator.
type TPCHConfig struct {
	Rows int
	Seed uint64
}

// TPCHLineitemColumns is the 4-column projection Q6 needs (matching the
// paper's preprocessed input: string date columns converted to ints).
var TPCHLineitemColumns = []string{"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"}

// TPCHLineitem renders the lineitem CSV. Shipdates are days since
// 1992-01-01 over a 7-year range; Q6's 1994 window is [731, 1096).
func TPCHLineitem(cfg TPCHConfig) []byte {
	if cfg.Rows <= 0 {
		cfg.Rows = 10000
	}
	r := newRng(cfg.Seed ^ 0x79c)
	var sb strings.Builder
	sb.Grow(cfg.Rows * 32)
	sb.WriteString(strings.Join(TPCHLineitemColumns, ","))
	sb.WriteByte('\n')
	for range cfg.Rows {
		qty := 1 + r.Intn(50)
		price := float64(90000+r.Intn(10000)) / 100.0 * float64(qty)
		disc := float64(r.Intn(11)) / 100.0
		ship := r.Intn(7 * 365)
		fmt.Fprintf(&sb, "%d,%.2f,%.2f,%d\n", qty, price, disc, ship)
	}
	return []byte(sb.String())
}

// Q6DateLo and Q6DateHi bound the paper's Q6 shipdate window (the year
// starting 731 days after 1992-01-01, i.e. 1994).
const (
	Q6DateLo = 731
	Q6DateHi = 1096
)
