package data

import (
	"fmt"
	"strings"
)

// WeblogConfig sizes the Apache log generator.
type WeblogConfig struct {
	Rows int
	Seed uint64
	// AnomalousFraction of lines are malformed (truncated requests,
	// missing fields) — the rows that made SparkSQL "silently return
	// incorrect results" in §7.
	AnomalousFraction float64
	// UserPathFraction of requests hit /~username paths (the
	// anonymization UDF's targets).
	UserPathFraction float64
	// BadIPFraction of requests come from blacklisted IPs.
	BadIPFraction float64
	// BadIPCount is the size of the blacklist.
	BadIPCount int
}

// WithDefaults fills zero fields.
func (c WeblogConfig) WithDefaults() WeblogConfig {
	if c.Rows <= 0 {
		c.Rows = 10000
	}
	if c.AnomalousFraction == 0 {
		c.AnomalousFraction = 0.0005
	}
	if c.UserPathFraction == 0 {
		c.UserPathFraction = 0.25
	}
	if c.BadIPFraction == 0 {
		c.BadIPFraction = 0.05
	}
	if c.BadIPCount <= 0 {
		c.BadIPCount = 64
	}
	return c
}

var logMonths = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

var logUsers = []string{"alice", "bob", "carol", "dmitri", "erin", "frank", "grace", "heidi"}

var logPaths = []string{
	"/index.html", "/courses/cs101/syllabus.pdf", "/about.html",
	"/research/papers/tuplex.pdf", "/images/logo.png", "/admin/login.php",
	"/cgi-bin/search.cgi", "/static/app.js",
}

// Weblogs renders Apache common-log-format lines plus the bad-IP
// blacklist CSV.
func Weblogs(cfg WeblogConfig) (logs, badIPs []byte) {
	cfg = cfg.WithDefaults()
	r := newRng(cfg.Seed ^ 0x10905)

	bad := make([]string, cfg.BadIPCount)
	badSet := map[string]bool{}
	for i := range bad {
		ip := r.ipv4()
		for badSet[ip] {
			ip = r.ipv4()
		}
		bad[i] = ip
		badSet[ip] = true
	}
	var bb strings.Builder
	bb.WriteString("BadIPs\n")
	for _, ip := range bad {
		bb.WriteString(ip)
		bb.WriteByte('\n')
	}

	var sb strings.Builder
	sb.Grow(cfg.Rows * 110)
	for range cfg.Rows {
		if r.chance(cfg.AnomalousFraction) {
			switch r.Intn(3) {
			case 0:
				sb.WriteString("corrupted log fragment without structure\n")
			case 1:
				// Request field with no method/protocol — the case where
				// regexp_extract returns '' but Python re returns None.
				fmt.Fprintf(&sb, "%s - - [%s] \"-\" 400 0\n", r.ipv4(), logDate(r))
			default:
				fmt.Fprintf(&sb, "%s - -\n", r.ipv4())
			}
			continue
		}
		ip := r.ipv4()
		if r.chance(cfg.BadIPFraction) {
			ip = bad[r.Intn(len(bad))]
		}
		user := "-"
		if r.chance(0.1) {
			user = r.pick(logUsers...)
		}
		path := r.pick(logPaths...)
		if r.chance(cfg.UserPathFraction) {
			path = fmt.Sprintf("/~%s/%s", r.pick(logUsers...), r.pick("index.html", "pubs.html", "cv.pdf", "notes/ml.txt"))
		}
		method := r.pick("GET", "GET", "GET", "POST", "HEAD")
		proto := r.pick("HTTP/1.0", "HTTP/1.1")
		status := r.pick("200", "200", "200", "304", "404", "403", "500")
		size := "-"
		if status == "200" {
			size = fmt.Sprint(r.rangeInt(64, 1<<20))
		}
		fmt.Fprintf(&sb, "%s - %s [%s] \"%s %s %s\" %s %s\n",
			ip, user, logDate(r), method, path, proto, status, size)
	}
	return []byte(sb.String()), []byte(bb.String())
}

func logDate(r *rng) string {
	return fmt.Sprintf("%02d/%s/%d:%02d:%02d:%02d -0400",
		1+r.Intn(28), logMonths[r.Intn(12)], r.rangeInt(2008, 2020),
		r.Intn(24), r.Intn(60), r.Intn(60))
}
