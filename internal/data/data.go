// Package data synthesizes the evaluation datasets of the paper's §6
// (Table 2): Zillow real-estate listings, US flight on-time performance
// with carrier and airport side tables, Apache web-server logs with a
// bad-IP list, NYC 311 service requests and TPC-H lineitem. Generators
// are deterministic (seeded) and reproduce the schema shapes, value
// formats and dirtiness patterns the pipelines' UDFs exercise — including
// the exception-rate knobs (e.g. the ~2.6% diverted-flight rows that
// take the general-case path in §6.1.2).
package data

import (
	"fmt"
	"strings"

	"github.com/gotuplex/tuplex/internal/pyre"
)

// rng wraps the deterministic PRNG with generator conveniences.
type rng struct{ *pyre.PRNG }

func newRng(seed uint64) *rng { return &rng{pyre.NewPRNG(seed)} }

func (r *rng) pick(options ...string) string { return options[r.Intn(len(options))] }

func (r *rng) rangeInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo)
}

func (r *rng) chance(p float64) bool { return r.Float64() < p }

// commaInt renders an int with thousands separators ("1,560").
func commaInt(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var sb strings.Builder
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			sb.WriteByte(',')
		}
		sb.WriteRune(c)
	}
	if neg {
		return "-" + sb.String()
	}
	return sb.String()
}

var letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

func (r *rng) upperWord(n int) string {
	var sb strings.Builder
	for range n {
		sb.WriteByte(letters[r.Intn(26)])
	}
	return sb.String()
}

func (r *rng) ipv4() string {
	return fmt.Sprintf("%d.%d.%d.%d", 1+r.Intn(254), r.Intn(256), r.Intn(256), 1+r.Intn(254))
}
