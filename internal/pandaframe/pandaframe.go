// Package pandaframe is the Pandas-analog baseline: an eager columnar
// frame with a fast native CSV loader and vectorized native kernels for
// numeric comparisons and row selection — but UDFs drop to the boxed
// interpreter via a per-row apply() that materializes a dict per row,
// exactly the cost profile §6.1.1 describes ("its performance suffers
// when UDFs — for which Pandas has no efficient native operators —
// require processing in Python").
package pandaframe

import (
	"fmt"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/interp"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// ColKind is a column's storage layout.
type ColKind uint8

const (
	// ColI64 stores int64 with a validity mask.
	ColI64 ColKind = iota
	// ColF64 stores float64 with a validity mask.
	ColF64
	// ColStr stores strings ("object" columns).
	ColStr
	// ColObj stores boxed values (mixed apply results).
	ColObj
)

// Column is one typed column.
type Column struct {
	Kind  ColKind
	Ints  []int64
	F64s  []float64
	Strs  []string
	Objs  []pyvalue.Value
	Valid []bool // nil means all valid
}

// Len reports the column length.
func (c *Column) Len() int {
	switch c.Kind {
	case ColI64:
		return len(c.Ints)
	case ColF64:
		return len(c.F64s)
	case ColStr:
		return len(c.Strs)
	default:
		return len(c.Objs)
	}
}

// Get boxes one cell.
func (c *Column) Get(i int) pyvalue.Value {
	if c.Valid != nil && !c.Valid[i] {
		return pyvalue.None{}
	}
	switch c.Kind {
	case ColI64:
		return pyvalue.Int(c.Ints[i])
	case ColF64:
		return pyvalue.Float(c.F64s[i])
	case ColStr:
		return pyvalue.Str(c.Strs[i])
	default:
		return c.Objs[i]
	}
}

// Frame is an eager columnar table.
type Frame struct {
	Names []string
	Cols  []*Column
	NRows int
}

// Col returns the named column.
func (f *Frame) Col(name string) (*Column, error) {
	for i, n := range f.Names {
		if n == name {
			return f.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("pandaframe: no column %q", name)
}

// Engine carries UDF execution configuration.
type Engine struct {
	ip *interp.Interp
	// Traced switches apply() to the PyPy-analog traced mode with the
	// cpyext boundary cost (Fig. 6's Pandas+PyPy slowdown).
	Traced   bool
	CExtCost int
	traced   map[string]*interp.Traced
}

// NewEngine returns a Pandas-analog engine.
func NewEngine() *Engine {
	return &Engine{ip: interp.New(nil), traced: map[string]*interp.Traced{}}
}

// FromCSV loads a typed columnar frame: per-column majority typing over
// the whole file (Pandas' read_csv type inference), with mismatching
// cells going to NaN/None — no exception machinery.
func FromCSV(data []byte, header bool) (*Frame, error) {
	records := csvio.SplitRecords(data)
	if len(records) == 0 {
		return nil, fmt.Errorf("pandaframe: empty CSV")
	}
	var names []string
	if header {
		names = csvio.SplitCells(records[0], ',', nil)
		records = records[1:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("pandaframe: no data rows")
	}
	ncols := csvio.CountCells(records[0], ',')
	if names == nil {
		names = make([]string, ncols)
		for i := range names {
			names[i] = fmt.Sprintf("_%d", i)
		}
	}
	// Pass 1: materialize cells (row-major scratch) and vote types.
	cells := make([][]string, len(records))
	intVotes := make([]int, ncols)
	floatVotes := make([]int, ncols)
	strVotes := make([]int, ncols)
	for r, rec := range records {
		cs := csvio.SplitCells(rec, ',', nil)
		cells[r] = cs
		for i := 0; i < ncols && i < len(cs); i++ {
			cell := cs[i]
			if cell == "" {
				continue
			}
			if _, ok := csvio.ParseI64(cell); ok {
				intVotes[i]++
			} else if _, ok := csvio.ParseF64(cell); ok {
				floatVotes[i]++
			} else {
				strVotes[i]++
			}
		}
	}
	f := &Frame{Names: names, NRows: len(records)}
	for i := 0; i < ncols; i++ {
		col := &Column{}
		switch {
		case strVotes[i] > 0:
			col.Kind = ColStr
			col.Strs = make([]string, len(records))
		case floatVotes[i] > 0:
			col.Kind = ColF64
			col.F64s = make([]float64, len(records))
			col.Valid = make([]bool, len(records))
		case intVotes[i] > 0:
			col.Kind = ColI64
			col.Ints = make([]int64, len(records))
			col.Valid = make([]bool, len(records))
		default:
			col.Kind = ColStr
			col.Strs = make([]string, len(records))
		}
		for r := range records {
			var cell string
			if i < len(cells[r]) {
				cell = cells[r][i]
			}
			switch col.Kind {
			case ColStr:
				col.Strs[r] = cell
			case ColF64:
				if v, ok := csvio.ParseF64(cell); ok {
					col.F64s[r] = v
					col.Valid[r] = true
				}
			case ColI64:
				if v, ok := csvio.ParseI64(cell); ok {
					col.Ints[r] = v
					col.Valid[r] = true
				} else if v, ok := csvio.ParseF64(cell); ok {
					col.Ints[r] = int64(v)
					col.Valid[r] = cell != ""
				}
			}
		}
		f.Cols = append(f.Cols, col)
	}
	return f, nil
}

// Apply runs a row UDF (axis=1) over the frame, returning the result
// column. Each call builds a boxed dict row — the apply() tax.
func (e *Engine) Apply(f *Frame, src string) (*Column, error) {
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		return nil, err
	}
	out := &Column{Kind: ColObj, Objs: make([]pyvalue.Value, f.NRows)}
	var tr *interp.Traced
	if e.Traced {
		tr = e.traced[src]
		if tr == nil {
			tr = interp.NewTraced(e.ip, fn, 0)
			tr.CExtBoundaryCost = e.CExtCost
			e.traced[src] = tr
		}
	}
	for r := 0; r < f.NRows; r++ {
		d := pyvalue.NewDict()
		for i, n := range f.Names {
			d.Set(n, f.Cols[i].Get(r))
		}
		var v pyvalue.Value
		if tr != nil {
			v, err = tr.Call([]pyvalue.Value{d})
		} else {
			v, err = e.ip.Call(fn, []pyvalue.Value{d})
		}
		if err != nil {
			// Pandas apply() propagates; our baselines run on clean data
			// and treat errors as NaN to keep the comparison fair.
			v = pyvalue.None{}
		}
		out.Objs[r] = v
	}
	return out, nil
}

// ApplyScalar runs a scalar UDF over one column (Series.apply).
func (e *Engine) ApplyScalar(f *Frame, col, src string) (*Column, error) {
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		return nil, err
	}
	c, err := f.Col(col)
	if err != nil {
		return nil, err
	}
	out := &Column{Kind: ColObj, Objs: make([]pyvalue.Value, f.NRows)}
	for r := 0; r < f.NRows; r++ {
		v, err := e.ip.Call(fn, []pyvalue.Value{c.Get(r)})
		if err != nil {
			v = pyvalue.None{}
		}
		out.Objs[r] = v
	}
	return out, nil
}

// WithColumn returns a new frame with the column appended/replaced
// (full-frame copy: the per-op materialization of eager execution).
func (f *Frame) WithColumn(name string, col *Column) *Frame {
	nf := &Frame{Names: append([]string{}, f.Names...), Cols: append([]*Column{}, f.Cols...), NRows: f.NRows}
	for i, n := range nf.Names {
		if n == name {
			nf.Cols[i] = col
			return nf
		}
	}
	nf.Names = append(nf.Names, name)
	nf.Cols = append(nf.Cols, col)
	return nf
}

// MaskLTInt is the vectorized kernel col < bound (invalid -> false).
func MaskLTInt(c *Column, bound int64) []bool {
	mask := make([]bool, c.Len())
	switch c.Kind {
	case ColI64:
		for i, v := range c.Ints {
			mask[i] = v < bound && (c.Valid == nil || c.Valid[i])
		}
	case ColObj:
		for i, v := range c.Objs {
			if n, ok := v.(pyvalue.Int); ok {
				mask[i] = int64(n) < bound
			}
		}
	}
	return mask
}

// MaskRangeNum keeps lo < col < hi.
func MaskRangeNum(c *Column, lo, hi float64) []bool {
	mask := make([]bool, c.Len())
	switch c.Kind {
	case ColI64:
		for i, v := range c.Ints {
			f := float64(v)
			mask[i] = f > lo && f < hi && (c.Valid == nil || c.Valid[i])
		}
	case ColF64:
		for i, v := range c.F64s {
			mask[i] = v > lo && v < hi && (c.Valid == nil || c.Valid[i])
		}
	case ColObj:
		for i, v := range c.Objs {
			switch n := v.(type) {
			case pyvalue.Int:
				f := float64(n)
				mask[i] = f > lo && f < hi
			case pyvalue.Float:
				mask[i] = float64(n) > lo && float64(n) < hi
			}
		}
	}
	return mask
}

// MaskEqStr keeps col == s.
func MaskEqStr(c *Column, s string) []bool {
	mask := make([]bool, c.Len())
	switch c.Kind {
	case ColStr:
		for i, v := range c.Strs {
			mask[i] = v == s
		}
	case ColObj:
		for i, v := range c.Objs {
			if sv, ok := v.(pyvalue.Str); ok {
				mask[i] = string(sv) == s
			}
		}
	}
	return mask
}

// Gather materializes the masked subset of the frame (a full copy, as
// eager engines do).
func (f *Frame) Gather(mask []bool) *Frame {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	nf := &Frame{Names: append([]string{}, f.Names...), NRows: n}
	for _, c := range f.Cols {
		nc := &Column{Kind: c.Kind}
		if c.Valid != nil {
			nc.Valid = make([]bool, 0, n)
		}
		switch c.Kind {
		case ColI64:
			nc.Ints = make([]int64, 0, n)
			for i, m := range mask {
				if m {
					nc.Ints = append(nc.Ints, c.Ints[i])
					if c.Valid != nil {
						nc.Valid = append(nc.Valid, c.Valid[i])
					}
				}
			}
		case ColF64:
			nc.F64s = make([]float64, 0, n)
			for i, m := range mask {
				if m {
					nc.F64s = append(nc.F64s, c.F64s[i])
					if c.Valid != nil {
						nc.Valid = append(nc.Valid, c.Valid[i])
					}
				}
			}
		case ColStr:
			nc.Strs = make([]string, 0, n)
			for i, m := range mask {
				if m {
					nc.Strs = append(nc.Strs, c.Strs[i])
				}
			}
		default:
			nc.Objs = make([]pyvalue.Value, 0, n)
			for i, m := range mask {
				if m {
					nc.Objs = append(nc.Objs, c.Objs[i])
				}
			}
		}
		nf.Cols = append(nf.Cols, nc)
	}
	return nf
}

// Select projects columns.
func (f *Frame) Select(names ...string) (*Frame, error) {
	nf := &Frame{Names: names, NRows: f.NRows}
	for _, n := range names {
		c, err := f.Col(n)
		if err != nil {
			return nil, err
		}
		nf.Cols = append(nf.Cols, c)
	}
	return nf, nil
}
