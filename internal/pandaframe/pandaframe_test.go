package pandaframe

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

func TestFromCSVTyping(t *testing.T) {
	f, err := FromCSV([]byte("a,b,c\n1,1.5,x\n2,2.5,y\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Col("a")
	if a.Kind != ColI64 || a.Ints[1] != 2 {
		t.Fatalf("a = %+v", a)
	}
	b, _ := f.Col("b")
	if b.Kind != ColF64 || b.F64s[0] != 1.5 {
		t.Fatalf("b = %+v", b)
	}
	c, _ := f.Col("c")
	if c.Kind != ColStr || c.Strs[1] != "y" {
		t.Fatalf("c = %+v", c)
	}
}

func TestNullsBecomeNone(t *testing.T) {
	f, err := FromCSV([]byte("a\n1\n\n3\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Col("a")
	if !pyvalue.Equal(a.Get(1), pyvalue.None{}) {
		t.Fatalf("a[1] = %s", pyvalue.Repr(a.Get(1)))
	}
}

func TestZillowMatchesNative(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 600, Seed: 5, DirtyFraction: 0})
	e := NewEngine()
	f, err := e.RunZillow(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.Zillow(raw)
	if f.NRows != len(want) {
		t.Fatalf("pandas %d rows, native %d", f.NRows, len(want))
	}
	price, _ := f.Col("price")
	zip, _ := f.Col("zipcode")
	for i, w := range want {
		if int64(price.Get(i).(pyvalue.Int)) != w.Price {
			t.Fatalf("row %d price = %v, want %d", i, price.Get(i), w.Price)
		}
		if string(zip.Get(i).(pyvalue.Str)) != w.Zipcode {
			t.Fatalf("row %d zip = %v, want %s", i, zip.Get(i), w.Zipcode)
		}
	}
}

func TestVectorKernels(t *testing.T) {
	c := &Column{Kind: ColI64, Ints: []int64{1, 5, 10, 15}}
	m := MaskLTInt(c, 10)
	if !m[0] || !m[1] || m[2] || m[3] {
		t.Fatalf("mask = %v", m)
	}
	f := &Frame{Names: []string{"v"}, Cols: []*Column{c}, NRows: 4}
	g := f.Gather(m)
	if g.NRows != 2 || g.Cols[0].Ints[1] != 5 {
		t.Fatalf("gather = %+v", g.Cols[0])
	}
}
