package pandaframe

import (
	"github.com/gotuplex/tuplex/internal/pipelines"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// RunZillow executes the Zillow pipeline Pandas-style: UDF columns via
// apply(axis=1), filters via vectorized masks + gathers.
func (e *Engine) RunZillow(raw []byte) (*Frame, error) {
	f, err := FromCSV(raw, true)
	if err != nil {
		return nil, err
	}
	bd, err := e.Apply(f, pipelines.ZillowExtractBd)
	if err != nil {
		return nil, err
	}
	f = f.WithColumn("bedrooms", bd).Gather(MaskLTInt(bd, 10))
	ty, err := e.Apply(f, pipelines.ZillowExtractType)
	if err != nil {
		return nil, err
	}
	f = f.WithColumn("type", ty)
	tyCol, _ := f.Col("type")
	f = f.Gather(MaskEqStr(tyCol, "house"))

	zc, err := e.Apply(f, "lambda x: '%05d' % int(x['postal_code'])")
	if err != nil {
		return nil, err
	}
	f = f.WithColumn("zipcode", zc)
	city, err := e.ApplyScalar(f, "city", "lambda x: x[0].upper() + x[1:].lower()")
	if err != nil {
		return nil, err
	}
	f = f.WithColumn("city", city)
	for _, s := range []struct{ col, src string }{
		{"bathrooms", pipelines.ZillowExtractBa},
		{"sqft", pipelines.ZillowExtractSqft},
		{"offer", pipelines.ZillowExtractOffer},
	} {
		c, err := e.Apply(f, s.src)
		if err != nil {
			return nil, err
		}
		f = f.WithColumn(s.col, c)
	}
	price, err := e.Apply(f, pipelines.ZillowExtractPrice)
	if err != nil {
		return nil, err
	}
	f = f.WithColumn("price", price)
	pc, _ := f.Col("price")
	f = f.Gather(MaskRangeNum(pc, 100000, 2e7))
	return f.Select(pipelines.ZillowOutputColumns...)
}

// Run311Load loads the 311 CSV and returns the Incident Zip column as
// boxed values — the Pandas loading step of the Weld end-to-end
// comparison (§6.2.2: "Weld's benchmark code relies on Pandas to load
// the data").
func Run311Load(raw []byte) ([]pyvalue.Value, error) {
	f, err := FromCSV(raw, true)
	if err != nil {
		return nil, err
	}
	c, err := f.Col("Incident Zip")
	if err != nil {
		return nil, err
	}
	out := make([]pyvalue.Value, c.Len())
	for i := range out {
		out[i] = c.Get(i)
	}
	return out, nil
}
