package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a zero-allocation log-linear latency histogram (the
// HDR-histogram bucket layout): values below 2^subBits land in exact
// unit-width buckets; above that, every power-of-two octave is split
// into 2^subBits linear sub-buckets, bounding the relative quantile
// error at 1/2^subBits (6.25%). The bucket array is pre-sized at
// construction and recording is a single atomic increment — no
// allocation, no locks — so executors can record per-chunk and
// per-exception-resolve latencies without perturbing the engine's
// zero-allocation contract.
type Histogram struct {
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64

	// Exemplar slots (see exemplar.go): lazily allocated, touched only
	// by RecordExemplar/readers, never by the hot-path Record.
	exMu sync.Mutex
	ex   []Exemplar
}

// subBits sets the sub-bucket resolution: 16 linear sub-buckets per
// power-of-two octave.
const subBits = 4

// histMaxValue is the largest representable value (~73 minutes in
// nanoseconds); larger values clamp into the final bucket.
const histMaxValue = int64(1) << 42

// numBuckets covers [0, histMaxValue] at subBits resolution.
var numBuckets = bucketIndex(histMaxValue) + 1

// NewHistogram returns a histogram sized for nanosecond latencies up to
// ~73 minutes.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, numBuckets)}
}

// bucketIndex maps a value to its bucket. Values in [0, 2^subBits) map
// exactly (index == value); above that, index = octave*16 + sub where
// the octave is the value's power-of-two range and sub the next four
// significant bits.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	octave := msb - subBits // 0 for v in [16,32)
	sub := int(uint64(v)>>uint(octave)) & (1<<subBits - 1)
	return (octave+1)<<subBits + sub
}

// bucketLow returns the inclusive lower bound of bucket idx.
func bucketLow(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	octave := idx>>subBits - 1
	sub := idx & (1<<subBits - 1)
	return int64(1<<subBits|sub) << uint(octave)
}

// bucketHigh returns the inclusive upper bound of bucket idx.
func bucketHigh(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	octave := idx>>subBits - 1
	return bucketLow(idx) + int64(1)<<uint(octave) - 1
}

// Record adds one observation (nanoseconds). Negative values count as
// zero; values beyond the histogram range clamp into the last bucket.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	clamped := v
	if clamped > histMaxValue {
		clamped = histMaxValue
	}
	h.counts[bucketIndex(clamped)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// RecordDuration adds one observation from a time.Duration.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all recorded observations (nanoseconds).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns the value at quantile q in [0,1] (the upper bound of
// the bucket holding the rank, HDR convention), or 0 when empty.
// Concurrent recording skews the result by at most the in-flight
// observations — fine for monitoring reads.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return bucketHigh(i)
		}
	}
	return bucketHigh(len(h.counts) - 1)
}

// Max returns the upper bound of the highest non-empty bucket (0 when
// empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return bucketHigh(i)
		}
	}
	return 0
}

// WritePrometheus renders the histogram in Prometheus text exposition
// format as a cumulative-bucket histogram metric named name (unit:
// seconds), with labels (a pre-rendered `k="v",...` fragment, may be
// empty). Only non-empty buckets are emitted, plus the mandatory +Inf
// bucket and _sum/_count series.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n",
			name, labels, sep, float64(bucketHigh(i))/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(h.sum.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}
