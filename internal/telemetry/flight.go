package telemetry

import (
	"sync"
	"time"
)

// FlightRecorder is an always-on, bounded ring of structured service
// lifecycle events (admit / queue / compile / cache_hit / execute /
// shed / invalid / done / failed / canceled / slow / drain). It is the
// service's black box: cheap enough to leave recording permanently,
// bounded so an event storm can never grow memory, and dumped into a
// failed job's error payload and /debug/tuplex/eventz so the operator
// sees the minutes before an incident without having had any
// collection turned on.
//
// Cost contract: the ring is allocated once at construction and
// recording copies fixed-size struct fields (string headers included)
// into a pre-existing slot under a short mutex — zero allocations per
// event, zero work when nothing records. Callers must pass only
// pre-existing strings (job ids, constant kinds), never format into
// Record's arguments.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time
	buf   []FlightEvent
	next  int
	count int
	total int64
}

// Flight event kinds. Constants so recording never formats.
const (
	EventAdmit    = "admit"     // job admitted; Dur = queue wait
	EventQueue    = "queue"     // submission entered the wait queue
	EventShed     = "shed"      // 429: queue full or queueing disabled
	EventInvalid  = "invalid"   // 422: static verifier rejected the spec
	EventReject   = "reject"    // 413/503: budget or drain rejection
	EventCompile  = "compile"   // cache miss: this job owns the compile flight
	EventCacheHit = "cache_hit" // warm submission: compiled plan reused
	EventExecute  = "execute"   // engine run started
	EventDone     = "done"      // job finished; Dur = end-to-end latency
	EventFailed   = "failed"
	EventCanceled = "canceled"
	EventSlow     = "slow"  // job exceeded the slow-job threshold
	EventDrain    = "drain" // graceful shutdown began
)

// FlightEvent is one recorded lifecycle event.
type FlightEvent struct {
	// AtNS is the event time in nanoseconds since the recorder started.
	AtNS int64 `json:"at_ns"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Job is the job id the event belongs to ("" for pre-admission
	// events like queue/shed, which fire before a job exists).
	Job string `json:"job,omitempty"`
	// TraceID is the propagated client trace id, when known.
	TraceID string `json:"trace_id,omitempty"`
	// DurNS carries the event's duration measurement (queue wait for
	// admit, end-to-end latency for done/failed), 0 when inapplicable.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Detail is a short pre-existing string (error class, shed reason).
	Detail string `json:"detail,omitempty"`
}

// DefaultFlightEvents is the ring capacity when size <= 0.
const DefaultFlightEvents = 1024

// NewFlightRecorder returns a recorder with a ring of size events.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightEvents
	}
	return &FlightRecorder{start: time.Now(), buf: make([]FlightEvent, size)}
}

// Record appends one event, overwriting the oldest when full. Nil-safe.
// kind/job/traceID/detail must be pre-existing strings.
func (f *FlightRecorder) Record(kind, job, traceID string, durNS int64, detail string) {
	if f == nil {
		return
	}
	at := time.Since(f.start).Nanoseconds()
	f.mu.Lock()
	f.buf[f.next] = FlightEvent{AtNS: at, Kind: kind, Job: job, TraceID: traceID, DurNS: durNS, Detail: detail}
	f.next = (f.next + 1) % len(f.buf)
	if f.count < len(f.buf) {
		f.count++
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns up to max retained events (0 = all), oldest first,
// plus the count of events dropped by ring wrap-around since start.
func (f *FlightRecorder) Snapshot(max int) (events []FlightEvent, dropped int64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.count
	if max > 0 && n > max {
		n = max
	}
	events = make([]FlightEvent, n)
	for i := range n {
		events[i] = f.buf[(f.next-n+i+len(f.buf))%len(f.buf)]
	}
	return events, f.total - int64(f.count)
}

// JobEvents returns the retained events for one job id, oldest first,
// capped at max (0 = all). Pre-admission events (empty Job) are not
// attributed to any job.
func (f *FlightRecorder) JobEvents(job string, max int) []FlightEvent {
	if f == nil || job == "" {
		return nil
	}
	all, _ := f.Snapshot(0)
	var out []FlightEvent
	for _, e := range all {
		if e.Job == job {
			out = append(out, e)
		}
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// SetFlight attaches a flight recorder to the registry so the
// introspection mux can serve /debug/tuplex/eventz. Nil-safe.
func (r *Registry) SetFlight(f *FlightRecorder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
}

// Flight returns the attached recorder (nil when none).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}
