package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gotuplex/tuplex/internal/metrics"
)

// syncBuffer lets the test poll what the progress goroutine wrote
// without racing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestBucketIndexExactBelowSubBucketRange(t *testing.T) {
	// Values below 2^subBits land in exact unit buckets.
	for v := int64(0); v < 1<<subBits; v++ {
		idx := bucketIndex(v)
		if idx != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want exact", v, idx)
		}
		if bucketLow(idx) != v || bucketHigh(idx) != v {
			t.Fatalf("bucket %d bounds [%d,%d], want [%d,%d]",
				idx, bucketLow(idx), bucketHigh(idx), v, v)
		}
	}
}

func TestBucketBoundsCoverAndNest(t *testing.T) {
	// Every probed value must fall inside its bucket's bounds, and
	// bucket widths must bound the relative error at 1/2^subBits.
	probes := []int64{
		15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 1000,
		1<<20 - 1, 1 << 20, 1<<20 + 1, histMaxValue - 1, histMaxValue,
	}
	for _, v := range probes {
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d]", v, idx, lo, hi)
		}
		if v >= 1<<subBits {
			width := hi - lo + 1
			if float64(width) > float64(v)/float64(int64(1)<<subBits)+1 {
				t.Fatalf("bucket %d width %d too coarse for value %d", idx, width, v)
			}
		}
	}
	// Octave boundary: [16,32) has unit buckets, [32,64) width-2 buckets.
	if bucketIndex(16) == bucketIndex(17) {
		t.Fatal("values 16 and 17 share a bucket; first octave must be unit-width")
	}
	if bucketIndex(32) != bucketIndex(33) {
		t.Fatal("values 32 and 33 must share a width-2 bucket")
	}
	if bucketIndex(33) == bucketIndex(34) {
		t.Fatal("values 33 and 34 must split at the sub-bucket boundary")
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v <= 1<<12; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram()
	// 90 fast observations, 10 slow: p50 tracks the fast mode, p99 the
	// slow, both within the 6.25% relative-error bound (+1 for the
	// bucket-upper-bound convention).
	for i := 0; i < 90; i++ {
		h.Record(1000)
	}
	for i := 0; i < 10; i++ {
		h.Record(100_000)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Sum(); got != 90*1000+10*100_000 {
		t.Fatalf("Sum = %d", got)
	}
	checkNear := func(name string, got, want int64) {
		t.Helper()
		if got < want || float64(got-want) > float64(want)/16+1 {
			t.Fatalf("%s = %d, want within 6.25%% above %d", name, got, want)
		}
	}
	checkNear("p50", h.Quantile(0.50), 1000)
	checkNear("p99", h.Quantile(0.99), 100_000)
	checkNear("Max", h.Max(), 100_000)
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram()
	h.Record(-5) // counts as zero
	h.Record(histMaxValue * 4)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := h.Quantile(0.01); got != 0 {
		t.Fatalf("low quantile = %d, want 0 (negative clamps to zero)", got)
	}
	if got := h.Max(); got < histMaxValue {
		t.Fatalf("Max = %d, want clamped into the final bucket (>= %d)", got, histMaxValue)
	}
	var nilH *Histogram
	nilH.Record(5) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Max() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Fatalf("empty Max = %d, want 0", got)
	}
}

func TestRingWrapsAndSnapshotsChronologically(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 10; i++ {
		r.push(Sample{AtNS: int64(i)})
	}
	got := r.snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want ring size 4", len(got))
	}
	for i, s := range got {
		if want := int64(7 + i); s.AtNS != want {
			t.Fatalf("snapshot[%d].AtNS = %d, want %d (chronological tail)", i, s.AtNS, want)
		}
	}
	if tail := r.snapshot(2); len(tail) != 2 || tail[1].AtNS != 10 {
		t.Fatalf("snapshot(2) = %+v, want the two newest", tail)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	m1 := NewRunMonitor(Config{Label: "a"}, &metrics.Metrics{}, 1)
	m2 := NewRunMonitor(Config{Label: "b"}, &metrics.Metrics{}, 1)
	reg.Register(m1)
	reg.Register(m2)
	if m1.ID() == 0 || m2.ID() <= m1.ID() {
		t.Fatalf("ids = %d, %d, want increasing nonzero", m1.ID(), m2.ID())
	}
	live := reg.Live()
	if len(live) != 2 || live[0] != m1 || live[1] != m2 {
		t.Fatalf("Live() = %v, want [m1 m2] ordered by id", live)
	}
	reg.Unregister(m1)
	if live = reg.Live(); len(live) != 1 || live[0] != m2 {
		t.Fatalf("Live() after unregister = %v, want [m2]", live)
	}
	if recent := reg.Recent(); len(recent) != 1 || recent[0] != m1 {
		t.Fatalf("Recent() = %v, want [m1]", recent)
	}
	// Double unregister is a no-op.
	reg.Unregister(m1)
	if recent := reg.Recent(); len(recent) != 1 {
		t.Fatalf("double unregister duplicated the recent entry: %v", recent)
	}
}

func TestRegistryRecentCapped(t *testing.T) {
	reg := NewRegistry()
	var last *RunMonitor
	for i := 0; i < maxRecentRuns+5; i++ {
		m := NewRunMonitor(Config{}, &metrics.Metrics{}, 1)
		reg.Register(m)
		reg.Unregister(m)
		last = m
	}
	recent := reg.Recent()
	if len(recent) != maxRecentRuns {
		t.Fatalf("recent len = %d, want cap %d", len(recent), maxRecentRuns)
	}
	if recent[len(recent)-1] != last {
		t.Fatal("cap must evict oldest, keep newest")
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *RunMonitor
	// Every engine-facing hook must be a no-op on nil.
	m.Start()
	m.TaskStart()
	m.TaskDone(time.Millisecond)
	m.RecordResolve(time.Millisecond)
	m.SetStages(3)
	m.SetStage(1)
	m.StoreStreamBytes(10)
	m.AddTotalBytes(10)
	m.Stop()
	if m.ID() != 0 || m.Label() != "" || m.Finished() || m.DurNS() != 0 {
		t.Fatal("nil monitor must read as zero")
	}
	if m.Stage() != 0 || m.Stages() != 0 || m.TotalBytes() != 0 {
		t.Fatal("nil monitor stage/bytes must read as zero")
	}
	if s := m.Samples(0); s != nil {
		t.Fatalf("nil monitor Samples = %v", s)
	}
	if _, ok := m.LastSample(); ok {
		t.Fatal("nil monitor must have no last sample")
	}
	if l := m.Latency(); l.Chunk.Count != 0 || l.Resolve.Count != 0 {
		t.Fatalf("nil monitor Latency = %+v", l)
	}
}

func TestMonitorSamplesCountersAndRates(t *testing.T) {
	mm := &metrics.Metrics{}
	m := NewRunMonitor(Config{Interval: time.Millisecond, RingSize: 64, Label: "t"}, mm, 2)
	mm.Counters.InputRows.Store(100)
	mm.Counters.NormalRows.Store(90)
	mm.Counters.GeneralResolved.Store(6)
	mm.Counters.FallbackResolved.Store(3)
	mm.Counters.FailedRows.Store(1)
	mm.Ingest.BytesRead.Store(1 << 20)
	m.StoreStreamBytes(1 << 10)
	m.SetStages(2)
	m.SetStage(1)
	m.TaskStart()
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s, ok := m.LastSample(); ok && s.InputRows == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never observed the counters")
		}
		time.Sleep(time.Millisecond)
	}
	m.TaskDone(5 * time.Millisecond)
	m.RecordResolve(100 * time.Microsecond)
	m.Stop()
	m.Stop() // idempotent

	s, ok := m.LastSample()
	if !ok {
		t.Fatal("no final sample after Stop")
	}
	if s.InputRows != 100 || s.NormalRows != 90 || s.GeneralRows != 6 ||
		s.FallbackRows != 3 || s.FailedRows != 1 {
		t.Fatalf("final sample counters = %+v", s)
	}
	if want := int64(1<<20 + 1<<10); s.BytesRead != want {
		t.Fatalf("BytesRead = %d, want ingest+stream = %d", s.BytesRead, want)
	}
	if s.Stage != 1 {
		t.Fatalf("Stage = %d, want 1", s.Stage)
	}
	if s.Executors != 2 {
		t.Fatalf("Executors = %d, want 2", s.Executors)
	}
	if len(m.Samples(0)) < 2 {
		t.Fatalf("samples = %d, want at least immediate + final", len(m.Samples(0)))
	}
	lat := m.Latency()
	if lat.Chunk.Count != 1 || lat.Resolve.Count != 1 {
		t.Fatalf("Latency counts = %+v, want 1 chunk + 1 resolve", lat)
	}
	if lat.Chunk.P50 < 5*time.Millisecond {
		t.Fatalf("chunk p50 = %v, want >= recorded 5ms", lat.Chunk.P50)
	}
	if !m.Finished() || m.DurNS() <= 0 {
		t.Fatal("monitor must be finished with a frozen duration")
	}
	// First sample has utilization from before TaskDone.
	first := m.Samples(0)[0]
	if first.BusyExecutors != 1 {
		t.Fatalf("first sample BusyExecutors = %d, want 1", first.BusyExecutors)
	}
	if got := first.BusyFraction(); got != 0.5 {
		t.Fatalf("BusyFraction = %g, want 0.5", got)
	}
}

func TestAutoEnableCounting(t *testing.T) {
	if AutoEnabled() {
		t.Fatal("autoEnable must start off")
	}
	r1 := EnableProcess()
	r2 := EnableProcess()
	if !AutoEnabled() {
		t.Fatal("AutoEnabled must be true while enabled")
	}
	r1()
	if !AutoEnabled() {
		t.Fatal("one release must not disable while another holder remains")
	}
	r2()
	if AutoEnabled() {
		t.Fatal("AutoEnabled must clear after final release")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		999:        "999",
		9_999:      "9999",
		10_000:     "10.0k",
		1_500_000:  "1500.0k",
		10_000_000: "10.0M",
	}
	for in, want := range cases {
		if got := humanCount(in); got != want {
			t.Fatalf("humanCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestEtaFor(t *testing.T) {
	m := NewRunMonitor(Config{}, &metrics.Metrics{}, 1)
	if _, ok := etaFor(m, Sample{BytesPerSec: 100}); ok {
		t.Fatal("eta with unknown total must be false")
	}
	m.AddTotalBytes(1000)
	if _, ok := etaFor(m, Sample{BytesRead: 500}); ok {
		t.Fatal("eta with zero throughput must be false")
	}
	eta, ok := etaFor(m, Sample{BytesRead: 500, BytesPerSec: 100})
	if !ok || eta != 5*time.Second {
		t.Fatalf("eta = %v, %v, want 5s", eta, ok)
	}
	if _, ok := etaFor(m, Sample{BytesRead: 1000, BytesPerSec: 100}); ok {
		t.Fatal("eta past the end must be false")
	}
}

func TestProgressRendersAndClears(t *testing.T) {
	reg := NewRegistry()
	mm := &metrics.Metrics{}
	m := NewRunMonitor(Config{Interval: time.Millisecond, Label: "zillow"}, mm, 4)
	mm.Counters.InputRows.Store(12_345)
	reg.Register(m)
	m.SetStages(3)
	m.Start()

	var buf syncBuffer
	stop := StartProgress(&buf, reg, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(buf.String(), "zillow") {
		if time.Now().After(deadline) {
			t.Fatalf("progress line never rendered: %q", buf.String())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	m.Stop()
	reg.Unregister(m)

	out := buf.String()
	if !strings.Contains(out, "zillow stage 1/3") {
		t.Fatalf("progress line missing stage progress: %q", out)
	}
	if !strings.Contains(out, "12.3k rows") {
		t.Fatalf("progress line missing row count: %q", out)
	}
	if !strings.Contains(out, "busy") {
		t.Fatalf("progress line missing executor utilization: %q", out)
	}
	if !strings.HasSuffix(out, "\r") {
		t.Fatalf("stop must clear the line (trailing \\r), got %q", out[len(out)-10:])
	}
}
