package telemetry

import (
	"sort"
	"sync"
)

// maxRecentRuns bounds the finished runs the registry retains for
// /debug/tuplex/runz.
const maxRecentRuns = 16

// Registry tracks a process's live and recently-finished runs so the
// introspection server can report on them. The zero value is unusable;
// use Default (one per process) or NewRegistry in tests.
type Registry struct {
	mu      sync.Mutex
	nextID  int64
	live    map[int64]*RunMonitor
	recent  []*RunMonitor   // oldest first, capped at maxRecentRuns
	service *ServiceStats   // attached by tuplex-serve; nil otherwise
	flight  *FlightRecorder // attached by tuplex-serve; nil otherwise
}

// Default is the process-wide registry the engine and the introspection
// server share.
var Default = NewRegistry()

// NewRegistry returns an empty registry (tests use private ones to stay
// independent of process state).
func NewRegistry() *Registry {
	return &Registry{live: make(map[int64]*RunMonitor)}
}

// Register assigns the monitor a process-unique id and adds it to the
// live set. Nil-safe.
func (r *Registry) Register(m *RunMonitor) {
	if r == nil || m == nil {
		return
	}
	r.mu.Lock()
	r.nextID++
	m.id = r.nextID
	r.live[m.id] = m
	r.mu.Unlock()
}

// Unregister moves a finished monitor from the live set to the recent
// list. Nil-safe.
func (r *Registry) Unregister(m *RunMonitor) {
	if r == nil || m == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.live[m.id]; ok {
		delete(r.live, m.id)
		r.recent = append(r.recent, m)
		if len(r.recent) > maxRecentRuns {
			r.recent = r.recent[len(r.recent)-maxRecentRuns:]
		}
	}
	r.mu.Unlock()
}

// Live returns the live monitors ordered by run id.
func (r *Registry) Live() []*RunMonitor {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*RunMonitor, 0, len(r.live))
	for _, m := range r.live {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Recent returns the retained finished monitors, oldest first.
func (r *Registry) Recent() []*RunMonitor {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]*RunMonitor(nil), r.recent...)
	r.mu.Unlock()
	return out
}
