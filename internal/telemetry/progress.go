package telemetry

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// StartProgress renders a live single-line progress view of the
// registry's runs to w (a TTY: the line is redrawn in place with \r)
// at the given interval (0 = DefaultInterval). The returned stop
// function halts the renderer and clears the line; it is safe to call
// once. Driven entirely by the sampler's ring — the renderer never
// touches engine state.
func StartProgress(w io.Writer, reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		width := 0
		for {
			select {
			case <-quit:
				if width > 0 {
					fmt.Fprintf(w, "\r%s\r", strings.Repeat(" ", width))
				}
				return
			case <-t.C:
				line := renderProgress(reg)
				if line == "" && width == 0 {
					continue
				}
				pad := width - len(line)
				if pad < 0 {
					pad = 0
				}
				fmt.Fprintf(w, "\r%s%s", line, strings.Repeat(" ", pad))
				width = len(line)
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// renderProgress formats one status line over the registry's live runs
// ("" when idle).
func renderProgress(reg *Registry) string {
	live := reg.Live()
	if len(live) == 0 {
		return ""
	}
	parts := make([]string, 0, len(live))
	for _, m := range live {
		parts = append(parts, renderRun(m))
	}
	return strings.Join(parts, "  |  ")
}

func renderRun(m *RunMonitor) string {
	s, _ := m.LastSample()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s stage %d/%d", m.Label(), m.Stage()+1, m.Stages())
	fmt.Fprintf(&sb, "  %s rows", humanCount(s.InputRows))
	fmt.Fprintf(&sb, "  %s rows/s", humanCount(int64(s.RowsPerSec)))
	if s.BytesPerSec > 0 {
		fmt.Fprintf(&sb, "  %.1f MB/s", s.BytesPerSec/1e6)
	}
	if s.InputRows > 0 {
		exc := s.GeneralRows + s.FallbackRows + s.FailedRows
		fmt.Fprintf(&sb, "  exc %.2f%%", 100*float64(exc)/float64(s.InputRows))
	}
	fmt.Fprintf(&sb, "  busy %d/%d", s.BusyExecutors, s.Executors)
	if eta, ok := etaFor(m, s); ok {
		fmt.Fprintf(&sb, "  eta %s", eta.Round(time.Second))
	}
	return sb.String()
}

// etaFor estimates time to completion from known input size and current
// byte throughput (false when either is unknown).
func etaFor(m *RunMonitor, s Sample) (time.Duration, bool) {
	total := m.TotalBytes()
	if total <= 0 || s.BytesPerSec <= 0 || s.BytesRead >= total {
		return 0, false
	}
	secs := float64(total-s.BytesRead) / s.BytesPerSec
	return time.Duration(secs * float64(time.Second)), true
}

// humanCount renders a count with k/M suffixes for the progress line.
func humanCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
