package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gotuplex/tuplex/internal/metrics"
)

// promLine matches one Prometheus text-exposition sample line:
// name{labels} value. Labels are optional; the value must parse as a
// float.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// checkPrometheusText validates the body line by line against the text
// exposition format and returns the metric names seen.
func checkPrometheusText(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		mm := promLine.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("line %d is not valid exposition format: %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(mm[3], 64); err != nil {
			t.Fatalf("line %d has non-numeric value %q: %v", i+1, mm[3], err)
		}
		names[mm[1]] = true
	}
	return names
}

// liveMonitor registers a sampling monitor over seeded counters and
// returns it with its registry (caller stops it).
func liveMonitor(t *testing.T, label string) (*Registry, *RunMonitor, *metrics.Metrics) {
	t.Helper()
	reg := NewRegistry()
	mm := &metrics.Metrics{}
	m := NewRunMonitor(Config{Interval: time.Millisecond, Label: label}, mm, 4)
	reg.Register(m)
	m.SetStages(2)
	m.SetStage(1)
	mm.Counters.InputRows.Store(5000)
	mm.Counters.OutputRows.Store(4900)
	mm.Counters.NormalRows.Store(4900)
	mm.Counters.GeneralResolved.Store(80)
	mm.Counters.FailedRows.Store(20)
	mm.Ingest.BytesRead.Store(123_456)
	m.TaskDone(2 * time.Millisecond) // one chunk latency observation
	m.RecordResolve(50 * time.Microsecond)
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s, ok := m.LastSample(); ok && s.InputRows == 5000 {
			return reg, m, mm
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never observed seeded counters")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	reg, m, _ := liveMonitor(t, `zi"llow\run`) // label needs escaping
	defer m.Stop()
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	names := checkPrometheusText(t, body)
	for _, want := range []string{
		"tuplex_runs_live", "tuplex_input_rows_total", "tuplex_output_rows_total",
		"tuplex_bytes_read_total", "tuplex_path_rows_total", "tuplex_rows_per_sec",
		"tuplex_busy_executors", "tuplex_executors", "tuplex_heap_bytes",
		"tuplex_stage", "tuplex_run_duration_seconds",
		"tuplex_chunk_latency_seconds_bucket", "tuplex_chunk_latency_seconds_count",
		"tuplex_resolve_latency_seconds_sum",
	} {
		if !names[want] {
			t.Fatalf("missing metric %s in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "tuplex_input_rows_total") || !strings.Contains(body, "} 5000\n") {
		t.Fatalf("input rows not exported:\n%s", body)
	}
	if !strings.Contains(body, `path="normal"`) || !strings.Contains(body, `path="failed"`) {
		t.Fatalf("per-path counters missing:\n%s", body)
	}
	if !strings.Contains(body, `label="zi\"llow\\run"`) {
		t.Fatalf("label not escaped:\n%s", body)
	}
	// Histogram must end with the mandatory +Inf bucket matching _count.
	if !strings.Contains(body, `le="+Inf"`) {
		t.Fatalf("histogram missing +Inf bucket:\n%s", body)
	}
}

func TestRunzReportsMidFlightProgress(t *testing.T) {
	reg, m, _ := liveMonitor(t, "stream")
	defer m.Stop()
	m.AddTotalBytes(1 << 20)
	m.StoreStreamBytes(4096)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/tuplex/runz?samples=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rep RunzReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Live) != 1 {
		t.Fatalf("live runs = %d, want the mid-flight run", len(rep.Live))
	}
	r := rep.Live[0]
	if !r.Live || r.Label != "stream" {
		t.Fatalf("run = %+v", r)
	}
	if r.Stage != 1 || r.Stages != 2 {
		t.Fatalf("stage progress = %d/%d, want 1/2", r.Stage, r.Stages)
	}
	if r.InputRows != 5000 || r.NormalRows != 4900 || r.GeneralRows != 80 || r.FailedRows != 20 {
		t.Fatalf("counters = %+v", r)
	}
	if r.TotalBytes != 1<<20 {
		t.Fatalf("TotalBytes = %d", r.TotalBytes)
	}
	if r.DurNS <= 0 {
		t.Fatalf("DurNS = %d, want positive for a live run", r.DurNS)
	}
	if r.ChunkP50NS <= 0 || r.ResolveP50NS <= 0 {
		t.Fatalf("latency percentiles = chunk %d / resolve %d, want positive", r.ChunkP50NS, r.ResolveP50NS)
	}
	if len(r.Samples) == 0 || len(r.Samples) > 8 {
		t.Fatalf("samples = %d, want 1..8 (per ?samples=8)", len(r.Samples))
	}

	// After the run finishes it must move to the recent list.
	m.Stop()
	reg.Unregister(m)
	resp2, err := http.Get(srv.URL + "/debug/tuplex/runz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rep2 RunzReport
	if err := json.NewDecoder(resp2.Body).Decode(&rep2); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Live) != 0 || len(rep2.Recent) != 1 {
		t.Fatalf("after finish: live=%d recent=%d, want 0/1", len(rep2.Live), len(rep2.Recent))
	}
	if rep2.Recent[0].Live || rep2.Recent[0].Samples != nil {
		t.Fatalf("recent run = %+v, want live=false and no samples without ?samples", rep2.Recent[0])
	}
}

func TestMetricsEndpointEmptyRegistry(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	names := checkPrometheusText(t, string(b))
	if !names["tuplex_runs_live"] || !names["tuplex_runs_recent"] {
		t.Fatalf("empty registry must still export run-count gauges:\n%s", b)
	}
}

func TestServeLifecycleAndAutoEnable(t *testing.T) {
	if AutoEnabled() {
		t.Fatal("autoEnable dirty at test start")
	}
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !AutoEnabled() {
		t.Fatal("Serve must auto-enable monitoring")
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if AutoEnabled() {
		t.Fatal("Close must release auto-enable")
	}
}
