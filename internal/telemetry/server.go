package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Server is a live introspection HTTP server over a run registry:
// /metrics (Prometheus text exposition), /debug/tuplex/runz (JSON live
// + recent runs with stage progress) and the stdlib pprof handlers
// under /debug/pprof/. While at least one Server is open, every run in
// the process is monitored (AutoEnabled), so attaching a scraper to a
// long-lived service needs no per-run opt-in.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts an introspection server on addr (e.g. ":9090" or
// "127.0.0.1:0") over the process registry. The caller must Close it.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewMux(Default)},
		done: make(chan struct{}),
	}
	autoEnable.Add(1)
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the server's listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the process-wide auto-enable.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	autoEnable.Add(-1)
	return err
}

// NewMux builds the introspection handler over a registry (exported so
// tests can drive it with httptest and private registries).
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Exemplars are only legal in the OpenMetrics exposition format,
		// so they appear only when the scraper negotiates it; the classic
		// text format stays byte-identical to what it was without them.
		om := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
		if om {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		writePrometheus(w, reg, om)
		if om {
			fmt.Fprintln(w, "# EOF")
		}
	})
	mux.HandleFunc("/debug/tuplex/eventz", func(w http.ResponseWriter, r *http.Request) {
		maxEvents := 0
		if v := r.URL.Query().Get("max"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				maxEvents = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(eventzReport(reg.Flight(), r.URL.Query().Get("job"), maxEvents))
	})
	mux.HandleFunc("/debug/tuplex/runz", func(w http.ResponseWriter, r *http.Request) {
		maxSamples := 0
		if v := r.URL.Query().Get("samples"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				maxSamples = n
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(runzReport(reg, maxSamples))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RunReport is one run's entry in /debug/tuplex/runz.
type RunReport struct {
	ID    int64  `json:"id"`
	Label string `json:"label"`
	Live  bool   `json:"live"`
	// Stage / Stages give stage progress (Stage is the index currently
	// executing).
	Stage  int   `json:"stage"`
	Stages int   `json:"stages"`
	DurNS  int64 `json:"dur_ns"`

	InputRows    int64 `json:"input_rows"`
	OutputRows   int64 `json:"output_rows"`
	NormalRows   int64 `json:"normal_rows"`
	GeneralRows  int64 `json:"general_rows"`
	FallbackRows int64 `json:"fallback_rows"`
	FailedRows   int64 `json:"failed_rows"`
	BytesRead    int64 `json:"bytes_read"`
	TotalBytes   int64 `json:"total_bytes,omitempty"`

	RowsPerSec    float64 `json:"rows_per_sec"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	BusyExecutors int     `json:"busy_executors"`
	Executors     int     `json:"executors"`
	HeapBytes     uint64  `json:"heap_bytes"`

	ChunkP50NS   int64 `json:"chunk_p50_ns"`
	ChunkP99NS   int64 `json:"chunk_p99_ns"`
	ResolveP50NS int64 `json:"resolve_p50_ns"`
	ResolveP99NS int64 `json:"resolve_p99_ns"`

	// Columnar batch-plane activity (0 when the run is row-at-a-time).
	ColumnarRows    int64   `json:"columnar_rows"`
	BouncedRows     int64   `json:"bounced_rows"`
	FusedPasses     int64   `json:"fused_passes"`
	NullElisionRate float64 `json:"null_elision_rate"`

	// Samples is the time-series tail (?samples=N, newest last).
	Samples []Sample `json:"samples,omitempty"`
}

// RunzReport is the /debug/tuplex/runz payload.
type RunzReport struct {
	Live    []RunReport    `json:"live"`
	Recent  []RunReport    `json:"recent"`
	Service *ServiceReport `json:"service,omitempty"`
}

// ServiceReport is the job-service section of /debug/tuplex/runz,
// present only when a tuplex-serve daemon owns the registry.
type ServiceReport struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsInvalid   int64 `json:"jobs_invalid"`
	JobsCanceled  int64 `json:"jobs_canceled"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`

	QueueDepth  int64 `json:"queue_depth"`
	RunningJobs int64 `json:"running_jobs"`

	ColdP50NS int64 `json:"cold_p50_ns"`
	ColdP99NS int64 `json:"cold_p99_ns"`
	WarmP50NS int64 `json:"warm_p50_ns"`
	WarmP99NS int64 `json:"warm_p99_ns"`

	// Exemplars link the latency tails to concrete jobs: the job/trace
	// id retained nearest each histogram's p99 (absent until a job with
	// an id lands in that region).
	ColdP99Exemplar *Exemplar `json:"cold_p99_exemplar,omitempty"`
	WarmP99Exemplar *Exemplar `json:"warm_p99_exemplar,omitempty"`
}

// EventzReport is the /debug/tuplex/eventz payload: the flight
// recorder's retained lifecycle events, oldest first.
type EventzReport struct {
	// Dropped counts events lost to ring wrap-around since start.
	Dropped int64         `json:"dropped"`
	Events  []FlightEvent `json:"events"`
}

func eventzReport(f *FlightRecorder, job string, maxEvents int) EventzReport {
	var rep EventzReport
	if job != "" {
		rep.Events = f.JobEvents(job, maxEvents)
	} else {
		rep.Events, rep.Dropped = f.Snapshot(maxEvents)
	}
	if rep.Events == nil {
		rep.Events = []FlightEvent{}
	}
	return rep
}

func serviceReport(st *ServiceStats) *ServiceReport {
	if st == nil {
		return nil
	}
	rep := &ServiceReport{
		JobsSubmitted:  st.JobsSubmitted.Load(),
		JobsCompleted:  st.JobsCompleted.Load(),
		JobsFailed:     st.JobsFailed.Load(),
		JobsRejected:   st.JobsRejected.Load(),
		JobsInvalid:    st.JobsInvalid.Load(),
		JobsCanceled:   st.JobsCanceled.Load(),
		CacheHits:      st.CacheHits.Load(),
		CacheMisses:    st.CacheMisses.Load(),
		CacheEvictions: st.CacheEvictions.Load(),
		QueueDepth:     st.QueueDepth.Load(),
		RunningJobs:    st.RunningJobs.Load(),
		ColdP50NS:      st.ColdLatency.Quantile(0.50),
		ColdP99NS:      st.ColdLatency.Quantile(0.99),
		WarmP50NS:      st.WarmLatency.Quantile(0.50),
		WarmP99NS:      st.WarmLatency.Quantile(0.99),
	}
	if e, ok := st.ColdLatency.ExemplarNear(0.99); ok {
		rep.ColdP99Exemplar = &e
	}
	if e, ok := st.WarmLatency.ExemplarNear(0.99); ok {
		rep.WarmP99Exemplar = &e
	}
	return rep
}

func runzReport(reg *Registry, maxSamples int) RunzReport {
	var rep RunzReport
	for _, m := range reg.Live() {
		rep.Live = append(rep.Live, runReport(m, true, maxSamples))
	}
	for _, m := range reg.Recent() {
		rep.Recent = append(rep.Recent, runReport(m, false, maxSamples))
	}
	rep.Service = serviceReport(reg.Service())
	return rep
}

func runReport(m *RunMonitor, live bool, maxSamples int) RunReport {
	r := RunReport{
		ID:           m.ID(),
		Label:        m.Label(),
		Live:         live,
		Stage:        m.Stage(),
		Stages:       m.Stages(),
		DurNS:        m.DurNS(),
		TotalBytes:   m.TotalBytes(),
		Executors:    m.executors,
		ChunkP50NS:   m.ChunkLatency.Quantile(0.50),
		ChunkP99NS:   m.ChunkLatency.Quantile(0.99),
		ResolveP50NS: m.ResolveLatency.Quantile(0.50),
		ResolveP99NS: m.ResolveLatency.Quantile(0.99),
	}
	if mm := m.m; mm != nil {
		b := &mm.Batch
		r.ColumnarRows = b.ColumnarRows.Load()
		r.BouncedRows = b.BouncedRows.Load()
		r.FusedPasses = b.FusedPasses.Load()
		r.NullElisionRate = b.ElisionRate()
	}
	// Counter reads go through the last sample so live and finished
	// runs report from the same source the sampler wrote.
	if s, ok := m.LastSample(); ok {
		r.InputRows, r.OutputRows = s.InputRows, s.OutputRows
		r.NormalRows, r.GeneralRows = s.NormalRows, s.GeneralRows
		r.FallbackRows, r.FailedRows = s.FallbackRows, s.FailedRows
		r.BytesRead = s.BytesRead
		r.RowsPerSec, r.BytesPerSec = s.RowsPerSec, s.BytesPerSec
		r.BusyExecutors = s.BusyExecutors
		r.HeapBytes = s.HeapBytes
	}
	if maxSamples > 0 {
		r.Samples = m.Samples(maxSamples)
	}
	return r
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func runLabels(m *RunMonitor) string {
	return fmt.Sprintf(`run="%d",label="%s"`, m.ID(), promEscape(m.Label()))
}

// writePrometheus renders the registry in Prometheus text exposition
// format (hand-rolled: the repo takes no dependencies). When om is set
// (OpenMetrics negotiated) the service latency histograms carry
// exemplars; everything else is format-compatible with both.
func writePrometheus(w http.ResponseWriter, reg *Registry, om bool) {
	writeServicePrometheus(w, reg.Service(), om)
	live, recent := reg.Live(), reg.Recent()
	fmt.Fprintf(w, "# HELP tuplex_runs_live Number of runs currently executing.\n")
	fmt.Fprintf(w, "# TYPE tuplex_runs_live gauge\n")
	fmt.Fprintf(w, "tuplex_runs_live %d\n", len(live))
	fmt.Fprintf(w, "# HELP tuplex_runs_recent Number of retained finished runs.\n")
	fmt.Fprintf(w, "# TYPE tuplex_runs_recent gauge\n")
	fmt.Fprintf(w, "tuplex_runs_recent %d\n", len(recent))

	all := append(append([]*RunMonitor(nil), live...), recent...)
	if len(all) == 0 {
		return
	}

	counter := func(name, help string, get func(Sample) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, m := range all {
			s, _ := m.LastSample()
			fmt.Fprintf(w, "%s{%s} %d\n", name, runLabels(m), get(s))
		}
	}
	counter("tuplex_input_rows_total", "Input rows read.", func(s Sample) int64 { return s.InputRows })
	counter("tuplex_output_rows_total", "Rows that reached the sink.", func(s Sample) int64 { return s.OutputRows })
	counter("tuplex_bytes_read_total", "Raw input bytes consumed.", func(s Sample) int64 { return s.BytesRead })

	fmt.Fprintf(w, "# HELP tuplex_path_rows_total Rows by processing path.\n# TYPE tuplex_path_rows_total counter\n")
	for _, m := range all {
		s, _ := m.LastSample()
		lbl := runLabels(m)
		fmt.Fprintf(w, "tuplex_path_rows_total{%s,path=\"normal\"} %d\n", lbl, s.NormalRows)
		fmt.Fprintf(w, "tuplex_path_rows_total{%s,path=\"general\"} %d\n", lbl, s.GeneralRows)
		fmt.Fprintf(w, "tuplex_path_rows_total{%s,path=\"fallback\"} %d\n", lbl, s.FallbackRows)
		fmt.Fprintf(w, "tuplex_path_rows_total{%s,path=\"failed\"} %d\n", lbl, s.FailedRows)
	}

	gauge := func(name, help string, get func(*RunMonitor, Sample) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, m := range all {
			s, _ := m.LastSample()
			fmt.Fprintf(w, "%s{%s} %g\n", name, runLabels(m), get(m, s))
		}
	}
	gauge("tuplex_rows_per_sec", "Input throughput at the last sample.",
		func(_ *RunMonitor, s Sample) float64 { return s.RowsPerSec })
	gauge("tuplex_bytes_per_sec", "Byte throughput at the last sample.",
		func(_ *RunMonitor, s Sample) float64 { return s.BytesPerSec })
	gauge("tuplex_busy_executors", "Executors running a task at the last sample.",
		func(_ *RunMonitor, s Sample) float64 { return float64(s.BusyExecutors) })
	gauge("tuplex_executors", "Configured executor-pool size.",
		func(m *RunMonitor, _ Sample) float64 { return float64(m.executors) })
	gauge("tuplex_heap_bytes", "Heap bytes in use at the last sample.",
		func(_ *RunMonitor, s Sample) float64 { return float64(s.HeapBytes) })
	gauge("tuplex_stage", "Stage index currently executing.",
		func(m *RunMonitor, _ Sample) float64 { return float64(m.Stage()) })
	gauge("tuplex_stages", "Planned stage count.",
		func(m *RunMonitor, _ Sample) float64 { return float64(m.Stages()) })
	gauge("tuplex_run_duration_seconds", "Run wall clock so far (frozen at finish).",
		func(m *RunMonitor, _ Sample) float64 { return time.Duration(m.DurNS()).Seconds() })

	fmt.Fprintf(w, "# HELP tuplex_chunk_latency_seconds Per-task (partition/chunk) processing latency.\n")
	fmt.Fprintf(w, "# TYPE tuplex_chunk_latency_seconds histogram\n")
	for _, m := range all {
		m.ChunkLatency.WritePrometheus(w, "tuplex_chunk_latency_seconds", runLabels(m))
	}
	fmt.Fprintf(w, "# HELP tuplex_resolve_latency_seconds Per-exception-row resolve latency.\n")
	fmt.Fprintf(w, "# TYPE tuplex_resolve_latency_seconds histogram\n")
	for _, m := range all {
		m.ResolveLatency.WritePrometheus(w, "tuplex_resolve_latency_seconds", runLabels(m))
	}
}

// writeServicePrometheus renders the tuplex-serve job/cache counters.
// A process that never attached ServiceStats emits nothing here.
func writeServicePrometheus(w http.ResponseWriter, st *ServiceStats, om bool) {
	if st == nil {
		return
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("tuplex_service_jobs_submitted_total", "Jobs accepted for execution.", st.JobsSubmitted.Load())
	c("tuplex_service_jobs_completed_total", "Jobs that finished successfully.", st.JobsCompleted.Load())
	c("tuplex_service_jobs_failed_total", "Jobs that finished with an error.", st.JobsFailed.Load())
	c("tuplex_service_jobs_rejected_total", "Submissions rejected by admission control (429/413/503).", st.JobsRejected.Load())
	c("tuplex_service_jobs_invalid_total", "Submissions rejected by the static verifier (422).", st.JobsInvalid.Load())
	c("tuplex_service_jobs_canceled_total", "Jobs canceled by the client or a deadline.", st.JobsCanceled.Load())
	c("tuplex_service_cache_hits_total", "Jobs served from the compiled-pipeline cache.", st.CacheHits.Load())
	c("tuplex_service_cache_misses_total", "Jobs that compiled a fresh pipeline.", st.CacheMisses.Load())
	c("tuplex_service_cache_evictions_total", "Compiled pipelines evicted under the cache cap.", st.CacheEvictions.Load())
	g("tuplex_service_queue_depth", "Submissions waiting for an execution slot.", st.QueueDepth.Load())
	g("tuplex_service_running_jobs", "Jobs currently executing.", st.RunningJobs.Load())
	hist := func(h *Histogram, name string) {
		if om {
			h.WriteOpenMetrics(w, name, "")
		} else {
			h.WritePrometheus(w, name, "")
		}
	}
	fmt.Fprintf(w, "# HELP tuplex_service_cold_latency_seconds End-to-end latency of cache-miss jobs.\n")
	fmt.Fprintf(w, "# TYPE tuplex_service_cold_latency_seconds histogram\n")
	hist(st.ColdLatency, "tuplex_service_cold_latency_seconds")
	fmt.Fprintf(w, "# HELP tuplex_service_warm_latency_seconds End-to-end latency of cache-hit jobs.\n")
	fmt.Fprintf(w, "# TYPE tuplex_service_warm_latency_seconds histogram\n")
	hist(st.WarmLatency, "tuplex_service_warm_latency_seconds")
}
