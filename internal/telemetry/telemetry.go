// Package telemetry is the engine's live-monitoring subsystem: where
// internal/trace explains a run after it finishes, telemetry makes a
// run observable while it executes. A RunMonitor owns a fixed-size
// ring-buffer time-series sampler (the InfluxDB sampler design: one
// writer goroutine, bounded memory, readers snapshot under a short
// lock) that snapshots throughput, per-path routing counters, executor
// utilization and memory pressure at a configurable interval, plus
// zero-allocation latency histograms for per-chunk processing and
// per-exception-resolve work. A process-global Registry tracks live and
// recent runs; the HTTP introspection server (server.go) and the TTY
// progress view (progress.go) read from it.
//
// Cost contract (extends the internal/trace contract): when telemetry
// is off the engine never constructs a RunMonitor, so the execution
// path is byte-for-byte the unmonitored one. When on, instrumentation
// is per-task and per-exception-row only — one atomic add at task
// start/end and one histogram increment per chunk/resolve — never per
// row on the compiled normal path; the sampler goroutine reads shared
// atomics at the sampling interval (default 100ms) and writes into a
// pre-allocated ring.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gotuplex/tuplex/internal/metrics"
)

// DefaultInterval is the sampling interval when Config.Interval is 0.
const DefaultInterval = 100 * time.Millisecond

// DefaultRingSize is the sample-ring capacity when Config.RingSize is 0
// (600 samples = one minute of history at the default interval).
const DefaultRingSize = 600

// Config configures one run's telemetry.
type Config struct {
	// Enabled turns live monitoring on for the run. When false the
	// engine still monitors the run if an introspection server is
	// active in the process (see AutoEnabled).
	Enabled bool
	// Interval is the sampling period (0 = DefaultInterval).
	Interval time.Duration
	// RingSize is the sample-ring capacity (0 = DefaultRingSize).
	RingSize int
	// Label names the run in /metrics, /debug/tuplex/runz and the
	// progress view ("" = "run").
	Label string
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Label == "" {
		c.Label = "run"
	}
	return c
}

// Sample is one point of a run's time series. Cumulative fields are
// absolute counter snapshots; rate and delta fields are relative to the
// previous sample.
type Sample struct {
	// AtNS is the sample time in nanoseconds since the run started.
	AtNS int64 `json:"at_ns"`
	// Stage is the stage executing when the sample was taken.
	Stage int `json:"stage"`
	// InputRows / OutputRows are cumulative row counters.
	InputRows  int64 `json:"input_rows"`
	OutputRows int64 `json:"output_rows"`
	// NormalRows / GeneralRows / FallbackRows / FailedRows are the
	// cumulative per-path routing counters (normal-path completions,
	// general-path resolutions, fallback resolutions, failures).
	NormalRows   int64 `json:"normal_rows"`
	GeneralRows  int64 `json:"general_rows"`
	FallbackRows int64 `json:"fallback_rows"`
	FailedRows   int64 `json:"failed_rows"`
	// BytesRead is the cumulative raw input bytes consumed, including
	// the in-flight streamed chunk producer.
	BytesRead int64 `json:"bytes_read"`
	// RowsPerSec / BytesPerSec are input throughput since the previous
	// sample.
	RowsPerSec  float64 `json:"rows_per_sec"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	// BusyExecutors counts executors running a task at sample time;
	// Executors is the pool size.
	BusyExecutors int `json:"busy_executors"`
	Executors     int `json:"executors"`
	// HeapBytes is runtime.MemStats.HeapAlloc at sample time.
	HeapBytes uint64 `json:"heap_bytes"`
	// GCPauseNS / GCCycles are the GC pause time and cycle count since
	// the previous sample.
	GCPauseNS uint64 `json:"gc_pause_ns"`
	GCCycles  uint32 `json:"gc_cycles"`
}

// BusyFraction reports executor utilization at sample time.
func (s Sample) BusyFraction() float64 {
	if s.Executors == 0 {
		return 0
	}
	return float64(s.BusyExecutors) / float64(s.Executors)
}

// ring is a fixed-size sample buffer: a single writer (the sampler
// goroutine) appends, readers snapshot the chronological tail. The
// mutex is held for one copy at the sampling interval, never on an
// executor path.
type ring struct {
	mu    sync.Mutex
	buf   []Sample
	next  int
	count int
}

func newRing(size int) *ring { return &ring{buf: make([]Sample, size)} }

func (r *ring) push(s Sample) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// snapshot returns up to max samples (0 = all retained) in
// chronological order.
func (r *ring) snapshot(max int) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.count
	if max > 0 && n > max {
		n = max
	}
	out := make([]Sample, n)
	for i := range n {
		out[i] = r.buf[(r.next-n+i+len(r.buf))%len(r.buf)]
	}
	return out
}

// RunMonitor is one run's live-monitoring state. All methods are safe
// on a nil receiver, so engine call sites never branch on whether
// telemetry is enabled.
type RunMonitor struct {
	id    int64
	cfg   Config
	start time.Time

	// m is the run's shared metrics (atomic counters the executors
	// already maintain; the sampler only reads them).
	m *metrics.Metrics

	executors int
	busy      atomic.Int32

	curStage  atomic.Int32
	numStages atomic.Int32

	// streamBytes is the in-flight chunk producer's cumulative byte
	// count for the current streamed stage (folded into
	// metrics.Ingest.BytesRead when the stage finishes).
	streamBytes atomic.Int64
	// totalBytes is the known input size (0 when unknown); the progress
	// view derives an ETA from it.
	totalBytes atomic.Int64

	// ChunkLatency records per-task (one partition / one streamed
	// chunk) processing wall time; ResolveLatency records per-row
	// exception-resolve wall time.
	ChunkLatency   *Histogram
	ResolveLatency *Histogram

	ring     *ring
	stop     chan struct{}
	done     chan struct{}
	finished atomic.Bool
	endNS    atomic.Int64

	// prev* carry sampler-goroutine-local state between ticks.
	prevNS      int64
	prevRows    int64
	prevBytes   int64
	prevGCPause uint64
	prevGCNum   uint32
}

// NewRunMonitor builds a monitor over the run's shared metrics.
// executors is the configured worker-pool size.
func NewRunMonitor(cfg Config, m *metrics.Metrics, executors int) *RunMonitor {
	cfg = cfg.withDefaults()
	if executors < 1 {
		executors = 1
	}
	return &RunMonitor{
		cfg:            cfg,
		start:          time.Now(),
		m:              m,
		executors:      executors,
		ChunkLatency:   NewHistogram(),
		ResolveLatency: NewHistogram(),
		ring:           newRing(cfg.RingSize),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
}

// ID reports the registry-assigned run id (0 before registration).
func (m *RunMonitor) ID() int64 {
	if m == nil {
		return 0
	}
	return m.id
}

// Label reports the run's display label.
func (m *RunMonitor) Label() string {
	if m == nil {
		return ""
	}
	return m.cfg.Label
}

// Start launches the sampler goroutine. It takes one immediate sample
// so even runs shorter than the interval leave a time series.
func (m *RunMonitor) Start() {
	if m == nil {
		return
	}
	go func() {
		defer close(m.done)
		m.sampleOnce()
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				m.sampleOnce()
				return
			case <-t.C:
				m.sampleOnce()
			}
		}
	}()
}

// Stop takes a final sample, stops the sampler goroutine and marks the
// run finished. Idempotent.
func (m *RunMonitor) Stop() {
	if m == nil || m.finished.Swap(true) {
		return
	}
	m.endNS.Store(time.Since(m.start).Nanoseconds())
	close(m.stop)
	<-m.done
}

// Finished reports whether Stop has run.
func (m *RunMonitor) Finished() bool { return m != nil && m.finished.Load() }

// sampleOnce reads the shared counters and appends one sample to the
// ring. Runs on the sampler goroutine only.
func (m *RunMonitor) sampleOnce() {
	now := time.Since(m.start).Nanoseconds()
	c := &m.m.Counters
	rows := c.InputRows.Load()
	bytes := m.m.Ingest.BytesRead.Load() + m.streamBytes.Load()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := Sample{
		AtNS:          now,
		Stage:         int(m.curStage.Load()),
		InputRows:     rows,
		OutputRows:    c.OutputRows.Load(),
		NormalRows:    c.NormalRows.Load(),
		GeneralRows:   c.GeneralResolved.Load(),
		FallbackRows:  c.FallbackResolved.Load(),
		FailedRows:    c.FailedRows.Load(),
		BytesRead:     bytes,
		BusyExecutors: int(m.busy.Load()),
		Executors:     m.executors,
		HeapBytes:     ms.HeapAlloc,
		GCPauseNS:     ms.PauseTotalNs - m.prevGCPause,
		GCCycles:      ms.NumGC - m.prevGCNum,
	}
	if dt := now - m.prevNS; dt > 0 {
		s.RowsPerSec = float64(rows-m.prevRows) / (float64(dt) / 1e9)
		s.BytesPerSec = float64(bytes-m.prevBytes) / (float64(dt) / 1e9)
	}
	m.prevNS, m.prevRows, m.prevBytes = now, rows, bytes
	m.prevGCPause, m.prevGCNum = ms.PauseTotalNs, ms.NumGC
	m.ring.push(s)
}

// Samples returns up to max retained samples (0 = all) in
// chronological order.
func (m *RunMonitor) Samples(max int) []Sample {
	if m == nil {
		return nil
	}
	return m.ring.snapshot(max)
}

// LastSample returns the most recent sample (zero Sample, false when
// none taken yet).
func (m *RunMonitor) LastSample() (Sample, bool) {
	if m == nil {
		return Sample{}, false
	}
	s := m.ring.snapshot(1)
	if len(s) == 0 {
		return Sample{}, false
	}
	return s[0], true
}

// TotalBytes reports the known input size (0 = unknown).
func (m *RunMonitor) TotalBytes() int64 {
	if m == nil {
		return 0
	}
	return m.totalBytes.Load()
}

// Stage and Stages report current stage index and planned stage count.
func (m *RunMonitor) Stage() int {
	if m == nil {
		return 0
	}
	return int(m.curStage.Load())
}

func (m *RunMonitor) Stages() int {
	if m == nil {
		return 0
	}
	return int(m.numStages.Load())
}

// TaskStart marks one executor busy.
func (m *RunMonitor) TaskStart() {
	if m == nil {
		return
	}
	m.busy.Add(1)
}

// TaskDone marks one executor idle and records the task's wall time in
// the chunk-latency histogram.
func (m *RunMonitor) TaskDone(d time.Duration) {
	if m == nil {
		return
	}
	m.busy.Add(-1)
	m.ChunkLatency.Record(d.Nanoseconds())
}

// RecordResolve records one exception row's resolve wall time.
func (m *RunMonitor) RecordResolve(d time.Duration) {
	if m == nil {
		return
	}
	m.ResolveLatency.Record(d.Nanoseconds())
}

// SetStages records the run's planned stage count.
func (m *RunMonitor) SetStages(n int) {
	if m == nil {
		return
	}
	m.numStages.Store(int32(n))
}

// SetStage records the currently-executing stage index.
func (m *RunMonitor) SetStage(i int) {
	if m == nil {
		return
	}
	m.curStage.Store(int32(i))
}

// StoreStreamBytes publishes the in-flight chunk producer's cumulative
// byte count (reset to 0 when the stage folds it into the shared
// ingest counter).
func (m *RunMonitor) StoreStreamBytes(n int64) {
	if m == nil {
		return
	}
	m.streamBytes.Store(n)
}

// AddTotalBytes grows the known input size (for ETA).
func (m *RunMonitor) AddTotalBytes(n int64) {
	if m == nil {
		return
	}
	m.totalBytes.Add(n)
}

// Latency summarizes the run's latency histograms for
// metrics.Metrics.Latency.
func (m *RunMonitor) Latency() metrics.Latency {
	if m == nil {
		return metrics.Latency{}
	}
	return metrics.Latency{
		Chunk:   summarize(m.ChunkLatency),
		Resolve: summarize(m.ResolveLatency),
	}
}

func summarize(h *Histogram) metrics.LatencySummary {
	return metrics.LatencySummary{
		Count: h.Count(),
		P50:   time.Duration(h.Quantile(0.50)),
		P90:   time.Duration(h.Quantile(0.90)),
		P99:   time.Duration(h.Quantile(0.99)),
		Max:   time.Duration(h.Max()),
	}
}

// DurNS reports the run's duration so far (frozen at Stop).
func (m *RunMonitor) DurNS() int64 {
	if m == nil {
		return 0
	}
	if m.finished.Load() {
		return m.endNS.Load()
	}
	return time.Since(m.start).Nanoseconds()
}

// autoEnable counts active introspection servers; any run in the
// process is monitored while one is up.
var autoEnable atomic.Int32

// AutoEnabled reports whether an introspection server is active in the
// process (runs are then monitored even without an explicit opt-in).
func AutoEnabled() bool { return autoEnable.Load() > 0 }

// EnableProcess forces monitoring of every run in the process without
// starting a server (the TTY progress view uses it); call the returned
// release when done.
func EnableProcess() (release func()) {
	autoEnable.Add(1)
	return func() { autoEnable.Add(-1) }
}
