package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	jobs := []string{"j0", "j1", "j2", "j3", "j4", "j5", "j6", "j7", "j8", "j9"}
	for i, j := range jobs {
		f.Record(EventDone, j, "", int64(i), "")
	}
	events, dropped := f.Snapshot(0)
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	for i, e := range events {
		if want := jobs[6+i]; e.Job != want {
			t.Fatalf("event %d is job %q, want %q (oldest first)", i, e.Job, want)
		}
	}
	// max caps to the newest events.
	events, _ = f.Snapshot(2)
	if len(events) != 2 || events[0].Job != "j8" || events[1].Job != "j9" {
		t.Fatalf("Snapshot(2) = %+v, want j8,j9", events)
	}
	// Timestamps are monotone non-decreasing.
	events, _ = f.Snapshot(0)
	for i := 1; i < len(events); i++ {
		if events[i].AtNS < events[i-1].AtNS {
			t.Fatalf("timestamps out of order: %d then %d", events[i-1].AtNS, events[i].AtNS)
		}
	}
}

func TestFlightRecorderJobEvents(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(EventShed, "", "", 0, "queue full") // pre-admission: no job
	f.Record(EventAdmit, "j1", "t1", 100, "")
	f.Record(EventAdmit, "j2", "t2", 200, "")
	f.Record(EventExecute, "j1", "t1", 0, "")
	f.Record(EventDone, "j1", "t1", 5000, "")
	got := f.JobEvents("j1", 0)
	if len(got) != 3 {
		t.Fatalf("j1 has %d events, want 3: %+v", len(got), got)
	}
	if got[0].Kind != EventAdmit || got[1].Kind != EventExecute || got[2].Kind != EventDone {
		t.Fatalf("j1 event order wrong: %+v", got)
	}
	if capped := f.JobEvents("j1", 2); len(capped) != 2 || capped[0].Kind != EventExecute {
		t.Fatalf("JobEvents cap must keep the newest: %+v", capped)
	}
	if f.JobEvents("", 0) != nil {
		t.Fatal("empty job id must return nil")
	}
}

// TestFlightRecordZeroAlloc pins the always-on cost contract: recording
// into the ring allocates nothing.
func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(64)
	job, trace := "j000001", "deadbeef"
	if n := testing.AllocsPerRun(200, func() {
		f.Record(EventAdmit, job, trace, 1234, "")
	}); n != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", n)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(EventAdmit, "j", "", 0, "")
	if ev, dropped := f.Snapshot(0); ev != nil || dropped != 0 {
		t.Fatal("nil Snapshot must be empty")
	}
	if f.JobEvents("j", 0) != nil {
		t.Fatal("nil JobEvents must be empty")
	}
	var r *Registry
	r.SetFlight(nil)
	if r.Flight() != nil {
		t.Fatal("nil registry Flight must be nil")
	}
}

func TestEventzEndpoint(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(32)
	reg.SetFlight(f)
	f.Record(EventShed, "", "", 0, "queue full")
	f.Record(EventAdmit, "j1", "t1", 100, "")
	f.Record(EventCacheHit, "j1", "t1", 0, "")
	f.Record(EventDone, "j1", "t1", 9000, "")

	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	get := func(url string) EventzReport {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var rep EventzReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep := get(srv.URL + "/debug/tuplex/eventz")
	if len(rep.Events) != 4 {
		t.Fatalf("eventz returned %d events, want 4", len(rep.Events))
	}
	if rep.Events[0].Kind != EventShed || rep.Events[0].Detail != "queue full" {
		t.Fatalf("first event = %+v, want the shed", rep.Events[0])
	}

	rep = get(srv.URL + "/debug/tuplex/eventz?job=j1")
	if len(rep.Events) != 3 {
		t.Fatalf("job filter returned %d events, want 3", len(rep.Events))
	}
	for _, e := range rep.Events {
		if e.Job != "j1" {
			t.Fatalf("job filter leaked event %+v", e)
		}
	}

	if rep = get(srv.URL + "/debug/tuplex/eventz?max=2"); len(rep.Events) != 2 {
		t.Fatalf("max=2 returned %d events", len(rep.Events))
	}
}

// TestEventzWithoutRecorder covers a registry that never attached a
// flight recorder (library use): the endpoint must answer with an empty
// report, not crash.
func TestEventzWithoutRecorder(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/tuplex/eventz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep EventzReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 || rep.Dropped != 0 {
		t.Fatalf("empty registry eventz = %+v", rep)
	}
}

func TestExemplarNear(t *testing.T) {
	h := NewHistogram()
	// 100 fast observations without exemplars, one slow one with.
	for range 100 {
		h.Record(1_000_000) // 1ms
	}
	h.RecordExemplar(500_000_000, "j000042", "cafe01") // 500ms tail
	e, ok := h.ExemplarNear(0.99)
	if !ok {
		t.Fatal("no exemplar found")
	}
	if e.Job != "j000042" || e.TraceID != "cafe01" || e.ValueNS != 500_000_000 {
		t.Fatalf("exemplar = %+v", e)
	}
	// p50 sits in an octave with no exemplar; the nearest (the tail one)
	// must still be found.
	if e, ok = h.ExemplarNear(0.50); !ok || e.Job != "j000042" {
		t.Fatalf("ExemplarNear(0.5) = %+v ok=%v, want nearest fallback", e, ok)
	}
	// A fresher job in the same octave overwrites the slot.
	h.RecordExemplar(510_000_000, "j000043", "cafe02")
	if e, _ = h.ExemplarNear(0.99); e.Job != "j000043" {
		t.Fatalf("exemplar not overwritten: %+v", e)
	}
	// Empty histogram and empty job are no-ops.
	empty := NewHistogram()
	if _, ok := empty.ExemplarNear(0.99); ok {
		t.Fatal("empty histogram must have no exemplar")
	}
	empty.RecordExemplar(5, "", "")
	if _, ok := empty.ExemplarNear(0.99); ok {
		t.Fatal("empty job id must not retain an exemplar")
	}
}

// TestMetricsExemplarFormats pins the format negotiation: the classic
// text format never carries exemplars (they are illegal there), while
// an OpenMetrics scrape gets `# {job=...}` annotations and the # EOF
// terminator.
func TestMetricsExemplarFormats(t *testing.T) {
	reg := NewRegistry()
	st := NewServiceStats()
	st.WarmLatency.RecordExemplar(2_000_000, "j000007", "beef99")
	reg.SetService(st)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	fetch := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	classic, ct := fetch("")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("classic Content-Type = %q", ct)
	}
	if strings.Contains(classic, "# {") || strings.Contains(classic, "# EOF") {
		t.Fatalf("classic format must not carry exemplars or EOF:\n%s", classic)
	}
	checkPrometheusText(t, classic)

	om, ct := fetch("application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics Content-Type = %q", ct)
	}
	if !strings.HasSuffix(strings.TrimRight(om, "\n"), "# EOF") {
		t.Fatalf("openmetrics output must end with # EOF:\n%s", om)
	}
	want := `# {job="j000007",trace_id="beef99"} 0.002`
	if !strings.Contains(om, want) {
		t.Fatalf("openmetrics output lacks exemplar %q:\n%s", want, om)
	}
	// The exemplar must hang off a warm-latency bucket line.
	for _, line := range strings.Split(om, "\n") {
		if strings.Contains(line, "# {job=") {
			if !strings.HasPrefix(line, "tuplex_service_warm_latency_seconds_bucket{le=") {
				t.Fatalf("exemplar on unexpected line: %q", line)
			}
		}
	}
}
