package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Exemplars tie a latency histogram's buckets back to concrete jobs: a
// p99 spike on the dashboard becomes "job j000421, trace 8f3a…" that an
// operator can feed straight into GET /v1/jobs/{id}/trace. One exemplar
// slot exists per power-of-two octave of the histogram, so the store is
// tiny (a few dozen slots), bounded, and lazily allocated — a histogram
// that never records an exemplar pays one nil pointer.
//
// The slots are mutex-protected (not atomics): exemplars record once
// per job on the service path, never on the engine's per-row hot path,
// so a short lock is fine and keeps the (value, job, trace) triple
// consistent.

// Exemplar references the concrete observation retained for an octave.
type Exemplar struct {
	ValueNS int64  `json:"value_ns"`
	Job     string `json:"job"`
	TraceID string `json:"trace_id,omitempty"`
}

// exemplarOctaves sizes the per-octave slot array: bucketIndex >>
// subBits maps any representable value to its octave.
var exemplarOctaves = bucketIndex(histMaxValue)>>subBits + 1

// exemplarStore holds the lazily-allocated slots alongside a Histogram.
type exemplarStore struct {
	mu    sync.Mutex
	slots []Exemplar // index = octave; zero Job means empty
}

// octaveOf maps a recorded value to its exemplar slot.
func octaveOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v > histMaxValue {
		v = histMaxValue
	}
	return bucketIndex(v) >> subBits
}

// RecordExemplar records one observation like Record and additionally
// retains (job, traceID) as the exemplar for the value's octave,
// overwriting the previous holder — the freshest job in each latency
// band wins, which is what an operator debugging "why is p99 high right
// now" wants.
func (h *Histogram) RecordExemplar(v int64, job, traceID string) {
	if h == nil {
		return
	}
	h.Record(v)
	if job == "" {
		return
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, exemplarOctaves)
	}
	h.ex[octaveOf(v)] = Exemplar{ValueNS: v, Job: job, TraceID: traceID}
	h.exMu.Unlock()
}

// exemplarAt returns the slot for octave idx (ok=false when empty).
func (h *Histogram) exemplarAt(octave int) (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil || octave < 0 || octave >= len(h.ex) || h.ex[octave].Job == "" {
		return Exemplar{}, false
	}
	return h.ex[octave], true
}

// ExemplarNear returns the retained exemplar closest to quantile q:
// the slot for Quantile(q)'s octave, falling back to the nearest
// non-empty octave below, then above. ok=false when no exemplar has
// been recorded at all.
func (h *Histogram) ExemplarNear(q float64) (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	target := octaveOf(h.Quantile(q))
	if e, ok := h.exemplarAt(target); ok {
		return e, true
	}
	for d := 1; d < exemplarOctaves; d++ {
		if e, ok := h.exemplarAt(target - d); ok {
			return e, true
		}
		if e, ok := h.exemplarAt(target + d); ok {
			return e, true
		}
	}
	return Exemplar{}, false
}

// WriteOpenMetrics renders the histogram like WritePrometheus but in
// OpenMetrics syntax, attaching each octave's exemplar to the last
// bucket line of that octave (`# {job="...",trace_id="..."} value`).
// Exemplars are only legal in the OpenMetrics exposition format, which
// is why /metrics keeps serving the classic text format unless the
// scraper asks for application/openmetrics-text.
func (h *Histogram) WriteOpenMetrics(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d",
			name, labels, sep, float64(bucketHigh(i))/1e9, cum)
		// Attach the octave's exemplar to the first non-empty bucket whose
		// range contains it (OpenMetrics: exemplar value must be <= le).
		if e, ok := h.exemplarAt(i >> subBits); ok && e.ValueNS <= bucketHigh(i) && e.ValueNS >= bucketLow(i) {
			fmt.Fprintf(w, " # {job=\"%s\"", promEscape(e.Job))
			if e.TraceID != "" {
				fmt.Fprintf(w, ",trace_id=\"%s\"", promEscape(e.TraceID))
			}
			fmt.Fprintf(w, "} %g", float64(e.ValueNS)/1e9)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.count.Load())
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(h.sum.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}
