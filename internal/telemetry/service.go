package telemetry

import "sync/atomic"

// ServiceStats aggregates the tuplex-serve job lifecycle and
// compiled-plan cache counters. The service increments them; the
// introspection surface (/metrics, /debug/tuplex/runz) reports them
// alongside the per-run rows. All fields are atomics, so one instance
// is shared freely across request handlers.
type ServiceStats struct {
	JobsSubmitted atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsRejected  atomic.Int64
	JobsInvalid   atomic.Int64
	JobsCanceled  atomic.Int64

	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64

	// QueueDepth / RunningJobs are gauges (current values).
	QueueDepth  atomic.Int64
	RunningJobs atomic.Int64

	// ColdLatency / WarmLatency record end-to-end job latency (ns) split
	// by cache outcome — the ≥10× cold-vs-warm spread is the service's
	// headline number.
	ColdLatency *Histogram
	WarmLatency *Histogram
}

// NewServiceStats returns a zeroed stats block with live histograms.
func NewServiceStats() *ServiceStats {
	return &ServiceStats{ColdLatency: NewHistogram(), WarmLatency: NewHistogram()}
}

// SetService attaches service stats to the registry; the introspection
// handlers pick them up on the next scrape. Nil-safe (detaches).
func (r *Registry) SetService(s *ServiceStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.service = s
	r.mu.Unlock()
}

// Service returns the attached service stats (nil when not serving).
func (r *Registry) Service() *ServiceStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.service
}
