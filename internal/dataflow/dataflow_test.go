package dataflow

import (
	"strings"
	"testing"

	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

func analyzeUDF(t *testing.T, src string, schema *types.Schema, opts Options) (*Result, *inference.Info) {
	t.Helper()
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := inference.TypeFunction(fn, []types.Type{types.Row(schema)}, nil, inference.Options{})
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return Analyze(info, opts), info
}

func analyzeScalar(t *testing.T, src string, paramT types.Type, opts Options) (*Result, *inference.Info) {
	t.Helper()
	fn, err := pyast.ParseUDF(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := inference.TypeFunction(fn, []types.Type{paramT}, nil, inference.Options{})
	if err != nil {
		t.Fatalf("type: %v", err)
	}
	return Analyze(info, opts), info
}

func findExpr(t *testing.T, fn *pyast.Function, pred func(pyast.Expr) bool) pyast.Expr {
	t.Helper()
	var found pyast.Expr
	pyast.InspectStmts(fn.Body, func(n pyast.Node) bool {
		if found != nil {
			return false
		}
		if e, ok := n.(pyast.Expr); ok && pred(e) {
			found = e
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("no matching expression in %s", fn.Source)
	}
	return found
}

func sch(cols ...types.Column) *types.Schema { return types.NewSchema(cols) }

func TestConstantColumnFoldsWithGuard(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	res, info := analyzeUDF(t, "lambda x: x['a'] * 2", s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Const: pyvalue.Int(5)}},
	})
	mul := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		_, ok := e.(*pyast.BinOp)
		return ok
	})
	v, ok := res.Constant(mul)
	if !ok {
		t.Fatalf("product of constant column not folded")
	}
	if iv, _ := v.(pyvalue.Int); iv != 10 {
		t.Fatalf("folded to %v, want 10", v)
	}
	gs := res.RequiredGuards()
	if len(gs) != 1 || gs[0].Col != 0 || !sameScalar(gs[0].Const, pyvalue.Int(5)) {
		t.Fatalf("guards = %+v, want equality guard on col 0", gs)
	}
}

func TestUnusedFactsRequireNoGuards(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	res, _ := analyzeUDF(t, "lambda x: x['a'] * 2", s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Const: pyvalue.Int(5)}},
	})
	if gs := res.RequiredGuards(); len(gs) != 0 {
		t.Fatalf("no queries made, but guards = %+v", gs)
	}
}

func TestIntervalDeadBranch(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	res, info := analyzeUDF(t, "lambda x: 1 if x['a'] > 100 else 0", s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Lo: 0, Hi: 10, HasRange: true}},
	})
	ife := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		_, ok := e.(*pyast.IfExpr)
		return ok
	})
	if arm := res.DeadBranch(ife); arm != inference.DeadThen {
		t.Fatalf("dead arm = %v, want DeadThen", arm)
	}
	gs := res.RequiredGuards()
	if len(gs) != 1 || !gs[0].HasLo || gs[0].Lo != 0 || gs[0].Hi != 10 {
		t.Fatalf("guards = %+v, want range guard [0,10] on col 0", gs)
	}
}

func TestNullColumnDeadBranchIsDepFree(t *testing.T) {
	// A δ-typed Null column: the classifier enforces None, so pruning
	// on it needs no guard.
	s := sch(types.Column{Name: "a", Type: types.Null}, types.Column{Name: "b", Type: types.I64})
	res, info := analyzeUDF(t, "lambda x: x['b'] if x['a'] is None else 0", s, Options{NullFacts: true})
	ife := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		_, ok := e.(*pyast.IfExpr)
		return ok
	})
	if arm := res.DeadBranch(ife); arm != inference.DeadElse {
		t.Fatalf("dead arm = %v, want DeadElse", arm)
	}
	if gs := res.RequiredGuards(); len(gs) != 0 {
		t.Fatalf("type-derived pruning should be guard-free, got %+v", gs)
	}
}

func TestIsNoneRefinementProvesNonNull(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.Option(types.I64)})
	src := "def f(x):\n    if x['a'] is None:\n        return 0\n    return x['a'] + 1"
	res, info := analyzeUDF(t, src, s, Options{NullFacts: true})
	// The x['a'] inside the final return is refined non-null.
	var last pyast.Expr
	pyast.InspectStmts(info.Fn.Body, func(n pyast.Node) bool {
		if sub, ok := n.(*pyast.Subscript); ok && sub.RowIdx == 0 {
			last = sub
		}
		return true
	})
	if last == nil {
		t.Fatal("no row subscript found")
	}
	if !res.NonNull(last) {
		t.Fatal("x['a'] after the None check should be non-null")
	}
	if gs := res.RequiredGuards(); len(gs) != 0 {
		t.Fatalf("control-flow refinement should be guard-free, got %+v", gs)
	}
}

func TestNullFactsGate(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.Option(types.I64)})
	src := "def f(x):\n    if x['a'] is None:\n        return 0\n    return x['a'] + 1"
	res, info := analyzeUDF(t, src, s, Options{NullFacts: false})
	var last pyast.Expr
	pyast.InspectStmts(info.Fn.Body, func(n pyast.Node) bool {
		if sub, ok := n.(*pyast.Subscript); ok && sub.RowIdx == 0 {
			last = sub
		}
		return true
	})
	if res.NonNull(last) {
		t.Fatal("null facts disabled, but NonNull proved")
	}
}

func TestAlwaysRaisesAndLint(t *testing.T) {
	res, info := analyzeScalar(t, "lambda x: 1 // 0", types.I64, Options{NullFacts: true})
	div := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "//"
	})
	k, ok := res.AlwaysRaises(div)
	if !ok || k != pyvalue.ExcZeroDivisionError {
		t.Fatalf("AlwaysRaises = %v,%v, want ZeroDivisionError", k, ok)
	}
	found := false
	for _, l := range res.Lints() {
		if l.Code == "always-raises" && strings.Contains(l.Msg, "ZeroDivisionError") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing always-raises lint, got %v", res.Lints())
	}
}

func TestCanRaiseEmptyForPureArithmetic(t *testing.T) {
	res, _ := analyzeScalar(t, "lambda x: x * 2 + 1", types.I64, Options{NullFacts: true})
	if ks := res.CanRaise(); len(ks) != 0 {
		t.Fatalf("pure int arithmetic should be non-raising, got %v", ks)
	}
}

func TestCanRaiseZeroDivision(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64}, types.Column{Name: "b", Type: types.I64})
	res, _ := analyzeUDF(t, "lambda x: x['a'] // x['b']", s, Options{NullFacts: true})
	if !res.MayRaise(pyvalue.ExcZeroDivisionError) {
		t.Fatalf("division by a column should report ZeroDivisionError, got %v", res.CanRaise())
	}
}

func TestSeededRangeElidesZeroCheck(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64}, types.Column{Name: "b", Type: types.I64})
	res, info := analyzeUDF(t, "lambda x: x['a'] // x['b']", s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64}, {Type: types.I64, Lo: 1, Hi: 9, HasRange: true}},
	})
	div := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "//"
	})
	b := div.(*pyast.BinOp)
	if !res.NonZero(b.Right) {
		t.Fatal("seeded range [1,9] should prove the divisor non-zero")
	}
	gs := res.RequiredGuards()
	if len(gs) != 1 || gs[0].Col != 1 {
		t.Fatalf("guards = %+v, want range guard on col 1", gs)
	}
	// The divisor being provably non-zero under a *guarded* fact means
	// the raise site disappears only with the guard in place; CanRaise
	// stays conservative.
	if !res.MayRaise(pyvalue.ExcZeroDivisionError) {
		t.Fatal("dep-bearing non-zero proof must not remove the CanRaise site")
	}
}

func TestTruthinessRefinement(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	src := "def f(x):\n    if x['a']:\n        return 10 // x['a']\n    return 0"
	res, info := analyzeUDF(t, src, s, Options{NullFacts: true})
	div := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "//"
	})
	b := div.(*pyast.BinOp)
	if !res.NonZero(b.Right) {
		t.Fatal("truthy branch should prove x['a'] != 0")
	}
	if gs := res.RequiredGuards(); len(gs) != 0 {
		t.Fatalf("truthiness refinement should be guard-free, got %+v", gs)
	}
}

func TestOrderRefinement(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	src := "def f(x):\n    if x['a'] >= 3:\n        return x['a'] % 7\n    return -1"
	res, info := analyzeUDF(t, src, s, Options{NullFacts: true})
	mod := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "%"
	})
	b := mod.(*pyast.BinOp)
	if !res.NonZero(b.Left) {
		t.Fatal(">= 3 refinement should prove the dividend non-zero")
	}
	// And the mod result itself is bounded [0,6] → non-negative.
	if !res.NonNegative(mod) {
		t.Fatal("x % 7 should be provably non-negative")
	}
}

func TestUnreachableLint(t *testing.T) {
	src := "def f(x):\n    return x\n    y = 1"
	res, _ := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	found := false
	for _, l := range res.Lints() {
		if l.Code == "unreachable" && l.Pos.Line == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing unreachable lint at line 3, got %v", res.Lints())
	}
}

func TestUnusedVarLint(t *testing.T) {
	src := "def f(x):\n    y = x * 2\n    z = x + 1\n    return z"
	res, _ := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	found := false
	for _, l := range res.Lints() {
		if l.Code == "unused-var" && strings.Contains(l.Msg, "y") {
			found = true
		}
		if l.Code == "unused-var" && strings.Contains(l.Msg, "z") {
			t.Fatalf("z is used but linted: %v", l)
		}
	}
	if !found {
		t.Fatalf("missing unused-var lint for y, got %v", res.Lints())
	}
}

func TestConstantConditionLint(t *testing.T) {
	src := "def f(x):\n    if True:\n        return 1\n    return 2"
	res, _ := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	found := false
	for _, l := range res.Lints() {
		if l.Code == "constant-condition" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing constant-condition lint, got %v", res.Lints())
	}
}

func TestLintsStableAcrossSeeding(t *testing.T) {
	// The lint surface must not depend on sample statistics or flags.
	s := sch(types.Column{Name: "a", Type: types.I64})
	src := "def f(x):\n    y = 1\n    if x['a'] > 5:\n        return 1 // 0\n    return 0"
	seeded, _ := analyzeUDF(t, src, s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Lo: 0, Hi: 3, HasRange: true}},
	})
	bare, _ := analyzeUDF(t, src, s, Options{NullFacts: false})
	a, b := seeded.Lints(), bare.Lints()
	if len(a) != len(b) {
		t.Fatalf("lints differ under seeding: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lint %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRowAliasTracksFacts(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	src := "def f(x):\n    y = x\n    return y['a'] * 2"
	res, info := analyzeUDF(t, src, s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Const: pyvalue.Int(3)}},
	})
	mul := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "*"
	})
	if v, ok := res.Constant(mul); !ok || int64(v.(pyvalue.Int)) != 6 {
		t.Fatalf("aliased row subscript should fold, got %v %v", v, ok)
	}
}

func TestRowMutationKillsFacts(t *testing.T) {
	s := sch(types.Column{Name: "a", Type: types.I64})
	src := "def f(x):\n    x['a'] = 7\n    return x['a'] * 2"
	res, info := analyzeUDF(t, src, s, Options{
		NullFacts: true,
		Columns:   []ColFact{{Type: types.I64, Const: pyvalue.Int(3)}},
	})
	mul := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "*"
	})
	if _, ok := res.Constant(mul); ok {
		t.Fatal("facts must not survive row mutation")
	}
}

func TestBranchJoinWidensConstants(t *testing.T) {
	src := "def f(x):\n    if x > 0:\n        y = 1\n    else:\n        y = 2\n    return y"
	res, info := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	ret := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		n, ok := e.(*pyast.Name)
		return ok && n.Ident == "y"
	})
	_ = ret
	// y is 1 or 2 → not a constant, but interval [1,2] → non-zero.
	var yRead pyast.Expr
	pyast.InspectStmts(info.Fn.Body, func(n pyast.Node) bool {
		if r, ok := n.(*pyast.Return); ok {
			if nm, ok2 := r.X.(*pyast.Name); ok2 && nm.Ident == "y" {
				yRead = nm
			}
		}
		return true
	})
	if yRead == nil {
		t.Fatal("no return-position read of y")
	}
	if _, ok := res.Constant(yRead); ok {
		t.Fatal("y is not constant after the join")
	}
	if !res.NonZero(yRead) {
		t.Fatal("joined interval [1,2] should prove y non-zero")
	}
}

func TestMaybeUnsetNameRaises(t *testing.T) {
	src := "def f(x):\n    if x > 0:\n        y = 1\n    return y"
	res, _ := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	if !res.MayRaise(pyvalue.ExcNameError) {
		t.Fatalf("conditionally-bound y should add NameError, got %v", res.CanRaise())
	}
}

func TestLoopKillsFacts(t *testing.T) {
	src := "def f(x):\n    y = 5\n    for i in range(x):\n        y = y + 1\n    return 10 // y"
	res, info := analyzeScalar(t, src, types.I64, Options{NullFacts: true})
	div := findExpr(t, info.Fn, func(e pyast.Expr) bool {
		b, ok := e.(*pyast.BinOp)
		return ok && b.Op == "//"
	})
	b := div.(*pyast.BinOp)
	if res.NonZero(b.Right) {
		t.Fatal("loop-carried y must lose its facts")
	}
}
