package dataflow

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/types"
)

// A refinement made inside a loop body must not survive to post-loop
// code: the loop may run zero times (or exit via break/return).
func TestLoopRefinementLeak(t *testing.T) {
	s := sch(
		types.Column{Name: "a", Type: types.I64},
		types.Column{Name: "b", Type: types.List(types.I64)},
	)
	src := "def f(x):\n    for v in x['b']:\n        if x['a'] > 5:\n            return 1\n    return 2 if x['a'] > 5 else 3"
	res, info := analyzeUDF(t, src, s, Options{NullFacts: true})
	// the post-loop IfExpr
	var ife pyast.Expr
	pyast.InspectStmts(info.Fn.Body, func(n pyast.Node) bool {
		if e, ok := n.(*pyast.IfExpr); ok {
			ife = e
		}
		return true
	})
	if ife == nil {
		t.Skip("no IfExpr (parse shape differs)")
	}
	if arm := res.DeadBranch(ife); arm != 0 {
		t.Fatalf("post-loop IfExpr wrongly pruned: arm=%v (zero-iteration loop leaves x['a'] unconstrained)", arm)
	}
}
