package dataflow

import (
	"math"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// Nullness is the nullability component of the lattice.
type Nullness uint8

const (
	// NullUnknown is the lattice top: the value may or may not be None.
	NullUnknown Nullness = iota
	// NullNever proves the value is not None on the normal-case path.
	NullNever
	// NullAlways proves the value is None on the normal-case path.
	NullAlways
)

// Fact is one element of the product lattice: constancy × nullability ×
// integer interval. The zero Fact is top (nothing known). deps is the
// bitmask of row columns whose *sampled value statistics* the fact rests
// on; a non-zero deps means the fact only holds for rows that satisfy
// the sampled constraint, so any optimization consuming it must emit a
// runtime guard for those columns. Facts derived from the normal-case
// types alone (which the row classifier enforces) are dep-free.
type Fact struct {
	// Const is the value this expression always evaluates to, when
	// known (scalar kinds plus None only).
	Const pyvalue.Value
	// Null is the nullability component.
	Null Nullness
	// Lo/Hi bound integer values when HasLo/HasHi are set.
	Lo, Hi int64
	HasLo, HasHi bool

	// notZero records a numeric value proven ≠ 0 without interval bounds
	// (e.g. a truthiness check on an unbounded int). Any sampled-column
	// dependence still travels in deps.
	notZero bool

	deps uint64
}

// isTop reports whether the fact carries no information.
func (f Fact) isTop() bool {
	return f.Const == nil && f.Null == NullUnknown && !f.HasLo && !f.HasHi && !f.notZero
}

// withDeps returns f with extra dependency bits.
func (f Fact) withDeps(deps uint64) Fact {
	f.deps |= deps
	return f
}

// constFact builds the fact for a known constant value.
func constFact(v pyvalue.Value) Fact {
	f := Fact{Const: v, Null: NullNever}
	switch v := v.(type) {
	case pyvalue.None:
		f.Null = NullAlways
	case pyvalue.Int:
		f.Lo, f.Hi, f.HasLo, f.HasHi = int64(v), int64(v), true, true
	}
	return f
}

// nonNull returns f refined to never-None.
func (f Fact) nonNull() Fact {
	if f.Null == NullUnknown {
		f.Null = NullNever
	}
	return f
}

// interval extracts the integer bounds, deriving them from an int
// constant when present.
func (f Fact) interval() (lo, hi int64, hasLo, hasHi bool) {
	if iv, ok := f.Const.(pyvalue.Int); ok {
		return int64(iv), int64(iv), true, true
	}
	return f.Lo, f.Hi, f.HasLo, f.HasHi
}

// nonZero reports whether the fact proves the value is a number ≠ 0.
func (f Fact) nonZero() bool {
	switch c := f.Const.(type) {
	case pyvalue.Int:
		return c != 0
	case pyvalue.Float:
		return c != 0
	case pyvalue.Bool:
		return bool(c)
	}
	if f.notZero {
		return true
	}
	lo, hi, hasLo, hasHi := f.interval()
	return (hasLo && lo > 0) || (hasHi && hi < 0)
}

// nonNegative reports whether the fact proves the value is ≥ 0.
func (f Fact) nonNegative() bool {
	lo, _, hasLo, _ := f.interval()
	return hasLo && lo >= 0
}

// truth decides the fact's Python truthiness when provable.
// ok is false when unknown.
func (f Fact) truth() (truthy, ok bool) {
	if f.Const != nil {
		return pyvalue.Truth(f.Const), true
	}
	if f.Null == NullAlways {
		return false, true
	}
	if f.notZero {
		// Only ever set for exact numeric values, where ≠ 0 ⇒ truthy.
		return true, true
	}
	lo, hi, hasLo, hasHi := f.interval()
	if (hasLo && lo > 0) || (hasHi && hi < 0) {
		return true, true
	}
	return false, false
}

// join is the lattice join for merging branch environments: the result
// holds only what both inputs guarantee.
func join(a, b Fact) Fact {
	out := Fact{deps: a.deps | b.deps}
	if a.Const != nil && b.Const != nil && sameScalar(a.Const, b.Const) {
		out.Const = a.Const
	}
	if a.Null == b.Null {
		out.Null = a.Null
	}
	alo, ahi, aHasLo, aHasHi := a.interval()
	blo, bhi, bHasLo, bHasHi := b.interval()
	if aHasLo && bHasLo {
		out.Lo, out.HasLo = min64(alo, blo), true
	}
	if aHasHi && bHasHi {
		out.Hi, out.HasHi = max64(ahi, bhi), true
	}
	out.notZero = a.nonZero() && b.nonZero()
	if out.isTop() {
		out.deps = 0
	}
	return out
}

// meet combines two facts known to hold simultaneously (used when a
// runtime-checked condition refines a seeded fact).
func meet(a, b Fact) Fact {
	out := Fact{deps: a.deps | b.deps}
	out.Const = a.Const
	if out.Const == nil {
		out.Const = b.Const
	}
	out.Null = a.Null
	if out.Null == NullUnknown {
		out.Null = b.Null
	}
	alo, ahi, aHasLo, aHasHi := a.interval()
	blo, bhi, bHasLo, bHasHi := b.interval()
	if aHasLo {
		out.Lo, out.HasLo = alo, true
	}
	if bHasLo && (!out.HasLo || blo > out.Lo) {
		out.Lo, out.HasLo = blo, true
	}
	if aHasHi {
		out.Hi, out.HasHi = ahi, true
	}
	if bHasHi && (!out.HasHi || bhi < out.Hi) {
		out.Hi, out.HasHi = bhi, true
	}
	out.notZero = a.notZero || b.notZero
	return out
}

// sameScalar is strict same-kind scalar equality (no Python cross-kind
// numeric folding: Int(1) and Float(1.0) stay distinct so constants keep
// the representation codegen will materialize).
func sameScalar(a, b pyvalue.Value) bool {
	switch a := a.(type) {
	case pyvalue.None:
		_, ok := b.(pyvalue.None)
		return ok
	case pyvalue.Bool:
		bb, ok := b.(pyvalue.Bool)
		return ok && a == bb
	case pyvalue.Int:
		bb, ok := b.(pyvalue.Int)
		return ok && a == bb
	case pyvalue.Float:
		bb, ok := b.(pyvalue.Float)
		return ok && a == bb
	case pyvalue.Str:
		bb, ok := b.(pyvalue.Str)
		return ok && a == bb
	}
	return false
}

// matchesType reports whether a constant value has exactly the
// representation the static type promises (folding substitutes the
// value for the expression, so the slot kind must match what the
// surrounding compiled code expects).
func matchesType(v pyvalue.Value, t types.Type) bool {
	switch v.(type) {
	case pyvalue.None:
		return t.Kind() == types.KindNull
	case pyvalue.Bool:
		return t.Kind() == types.KindBool
	case pyvalue.Int:
		return t.Kind() == types.KindI64
	case pyvalue.Float:
		return t.Kind() == types.KindF64
	case pyvalue.Str:
		return t.Kind() == types.KindStr
	}
	return false
}

// factFromType seeds the dep-free part of a fact from a normal-case
// type. The row classifier enforces the schema, so type-derived
// nullability needs no runtime guard.
func factFromType(t types.Type, nullFacts bool) Fact {
	if !nullFacts {
		return Fact{}
	}
	switch t.Kind() {
	case types.KindNull:
		return Fact{Const: pyvalue.None{}, Null: NullAlways}
	case types.KindOption, types.KindAny, types.KindInvalid:
		return Fact{}
	default:
		return Fact{Null: NullNever}
	}
}

// Interval arithmetic with explicit overflow checks: any overflow
// drops to top rather than wrapping.

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		return 0, false
	}
	return addOv(a, -b)
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// intervalAdd/Sub/Mul combine two integer intervals; unknown or
// overflowing bounds drop.
func intervalAdd(a, b Fact) (lo, hi int64, hasLo, hasHi bool) {
	alo, ahi, aHasLo, aHasHi := a.interval()
	blo, bhi, bHasLo, bHasHi := b.interval()
	if aHasLo && bHasLo {
		if s, ok := addOv(alo, blo); ok {
			lo, hasLo = s, true
		}
	}
	if aHasHi && bHasHi {
		if s, ok := addOv(ahi, bhi); ok {
			hi, hasHi = s, true
		}
	}
	return
}

func intervalSub(a, b Fact) (lo, hi int64, hasLo, hasHi bool) {
	alo, ahi, aHasLo, aHasHi := a.interval()
	blo, bhi, bHasLo, bHasHi := b.interval()
	if aHasLo && bHasHi {
		if s, ok := subOv(alo, bhi); ok {
			lo, hasLo = s, true
		}
	}
	if aHasHi && bHasLo {
		if s, ok := subOv(ahi, blo); ok {
			hi, hasHi = s, true
		}
	}
	return
}

func intervalMul(a, b Fact) (lo, hi int64, hasLo, hasHi bool) {
	alo, ahi, aHasLo, aHasHi := a.interval()
	blo, bhi, bHasLo, bHasHi := b.interval()
	if !(aHasLo && aHasHi && bHasLo && bHasHi) {
		return
	}
	c0, ok0 := mulOv(alo, blo)
	c1, ok1 := mulOv(alo, bhi)
	c2, ok2 := mulOv(ahi, blo)
	c3, ok3 := mulOv(ahi, bhi)
	if !(ok0 && ok1 && ok2 && ok3) {
		return
	}
	lo = min64(min64(c0, c1), min64(c2, c3))
	hi = max64(max64(c0, c1), max64(c2, c3))
	return lo, hi, true, true
}
