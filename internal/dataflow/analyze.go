package dataflow

import (
	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// env is the per-path abstract state.
type env struct {
	// vars maps every bound local (params included) to its fact.
	vars map[string]Fact
	// row holds per-column facts for the row parameter.
	row []Fact
	// aliases names the variables currently bound to the row parameter
	// value itself.
	aliases map[string]bool
	// maybeUnset marks locals bound on some but not all paths (reading
	// one can raise NameError at runtime).
	maybeUnset map[string]bool
}

func (e *env) clone() *env {
	c := &env{
		vars:       make(map[string]Fact, len(e.vars)),
		aliases:    make(map[string]bool, len(e.aliases)),
		maybeUnset: make(map[string]bool, len(e.maybeUnset)),
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	if e.row != nil {
		c.row = append([]Fact(nil), e.row...)
	}
	for k := range e.aliases {
		c.aliases[k] = true
	}
	for k := range e.maybeUnset {
		c.maybeUnset[k] = true
	}
	return c
}

// merge joins two branch environments into e.
func (e *env) merge(a, b *env) {
	vars := make(map[string]Fact, len(a.vars))
	for k, va := range a.vars {
		if vb, ok := b.vars[k]; ok {
			vars[k] = join(va, vb)
		} else {
			vars[k] = va
			e.maybeUnset[k] = true
		}
	}
	for k, vb := range b.vars {
		if _, ok := a.vars[k]; !ok {
			vars[k] = vb
			e.maybeUnset[k] = true
		}
	}
	e.vars = vars
	for i := range e.row {
		e.row[i] = join(a.row[i], b.row[i])
	}
	aliases := map[string]bool{}
	for k := range a.aliases {
		if b.aliases[k] {
			aliases[k] = true
		}
	}
	e.aliases = aliases
	for k := range a.maybeUnset {
		e.maybeUnset[k] = true
	}
	for k := range b.maybeUnset {
		e.maybeUnset[k] = true
	}
}

type analyzer struct {
	info *inference.Info
	opts Options
	res  *Result
}

func (a *analyzer) run() {
	fn := a.info.Fn
	ev := &env{vars: map[string]Fact{}, aliases: map[string]bool{}, maybeUnset: map[string]bool{}}
	rowParam := len(fn.Params) == 1 && a.info.ParamTypes[0].Kind() == types.KindRow
	if rowParam {
		cols := a.info.ParamTypes[0].Schema().Columns()
		ev.row = make([]Fact, len(cols))
		for i := range cols {
			ev.row[i] = a.seedCol(i, cols[i].Type)
		}
		ev.aliases[fn.Params[0]] = true
		ev.vars[fn.Params[0]] = a.nn(Fact{})
	} else {
		for i, p := range fn.Params {
			f := factFromType(a.info.ParamTypes[i], a.opts.NullFacts)
			if len(fn.Params) == 1 && len(a.opts.Columns) == 1 {
				f = a.seedCol(0, a.info.ParamTypes[0])
			}
			ev.vars[p] = f
		}
	}
	a.stmts(fn.Body, ev)
}

// seedCol builds the initial fact for input column i: dep-free type
// facts plus dep-carrying sampled value statistics.
func (a *analyzer) seedCol(i int, t types.Type) Fact {
	f := factFromType(t, a.opts.NullFacts)
	if i >= len(a.opts.Columns) || i >= maxDepCols {
		return f
	}
	cf := a.opts.Columns[i]
	dep := uint64(1) << uint(i)
	if cf.Const != nil && matchesType(cf.Const, t) {
		f.Const = cf.Const
		f.deps |= dep
		if iv, ok := cf.Const.(pyvalue.Int); ok {
			f.Lo, f.Hi, f.HasLo, f.HasHi = int64(iv), int64(iv), true, true
		}
		return f
	}
	if cf.HasRange && t.Kind() == types.KindI64 {
		f.Lo, f.Hi, f.HasLo, f.HasHi = cf.Lo, cf.Hi, true, true
		f.deps |= dep
	}
	return f
}

// nn applies the never-None component when null facts are enabled.
func (a *analyzer) nn(f Fact) Fact {
	if a.opts.NullFacts && f.Null == NullUnknown {
		f.Null = NullNever
	}
	return f
}

func (a *analyzer) addRaise(k pyvalue.ExcKind) {
	if k != pyvalue.ExcOK {
		a.res.canRaise[k] = true
	}
}

func (a *analyzer) lint(pos pyast.Pos, code, msg string) {
	a.res.lints = append(a.res.lints, Lint{Pos: pos, Code: code, Msg: msg})
}

// record stores a non-top fact for codegen queries.
func (a *analyzer) record(e pyast.Expr, f Fact) Fact {
	if !f.isTop() {
		a.res.facts[e] = f
	}
	return f
}

// ---- statements ----

// stmts analyzes a statement list, returning whether its end is
// unreachable (every path returned, broke or raised).
func (a *analyzer) stmts(ss []pyast.Stmt, ev *env) bool {
	terminated, warned := false, false
	for _, s := range ss {
		if terminated {
			if !warned {
				a.lint(s.Pos(), "unreachable", "unreachable code")
				warned = true
			}
			// Keep analyzing for further lints, but on a scratch env.
			ev = ev.clone()
			terminated = false
		}
		terminated = a.stmt(s, ev)
	}
	return terminated
}

func (a *analyzer) stmt(s pyast.Stmt, ev *env) bool {
	if f, ok := a.info.Failed[s]; ok {
		a.addRaise(kindFromName(f.Raises))
		return true
	}
	switch s := s.(type) {
	case *pyast.ExprStmt:
		a.expr(s.X, ev)
		return false
	case *pyast.Assign:
		v := a.expr(s.Value, ev)
		a.assign(s.Target, s.Value, v, ev)
		return false
	case *pyast.AugAssign:
		cur := a.expr(s.Target, ev)
		rhs := a.expr(s.Value, ev)
		res := a.binFact(s.Target, s.Op, cur, rhs, s.Target, s.Value, exprType(s.Target))
		a.assign(s.Target, nil, res, ev)
		return false
	case *pyast.Return:
		if s.X != nil {
			a.expr(s.X, ev)
		}
		return true
	case *pyast.If:
		return a.ifStmt(s, ev)
	case *pyast.For:
		a.expr(s.Iter, ev)
		a.addRaise(pyvalue.ExcUnsupported) // loop-iteration cap
		varWasBound := false
		if n, ok := s.Var.(*pyast.Name); ok {
			_, varWasBound = ev.vars[n.Ident]
		}
		a.killAssigned(s.Body, ev, s.Var)
		// The body runs zero or more times and the loop exits at the
		// header, so no refinement made inside it is sound afterwards:
		// analyze the body on a scratch env (lints, raise collection)
		// and keep the killed pre-state.
		a.stmts(s.Body, ev.clone())
		// After a zero-iteration loop the loop variable stays unset.
		if n, ok := s.Var.(*pyast.Name); ok && !varWasBound {
			ev.maybeUnset[n.Ident] = true
		}
		return false
	case *pyast.While:
		a.addRaise(pyvalue.ExcUnsupported) // loop-iteration cap
		a.killAssigned(s.Body, ev, nil)
		a.condRaises(s.Cond, ev)
		// As with For: body refinements must not leak past the loop.
		a.stmts(s.Body, ev.clone())
		return false
	case *pyast.Break, *pyast.Continue:
		return true
	default:
		return false
	}
}

// condRaises evaluates a condition purely for its raise sites and
// facts; used for loop conditions where refinement is unsound.
func (a *analyzer) condRaises(e pyast.Expr, ev *env) {
	a.expr(e, ev)
}

func (a *analyzer) assign(target pyast.Expr, value pyast.Expr, v Fact, ev *env) {
	switch target := target.(type) {
	case *pyast.Name:
		ev.vars[target.Ident] = v
		delete(ev.maybeUnset, target.Ident)
		// Track row aliasing: `y = x` makes y an alias of the row.
		if vn, ok := value.(*pyast.Name); ok && ev.aliases[vn.Ident] {
			ev.aliases[target.Ident] = true
		} else {
			delete(ev.aliases, target.Ident)
		}
	case *pyast.Subscript:
		a.expr(target.X, ev)
		a.expr(target.Index, ev)
		// Item assignment: if the container may be the row parameter,
		// all column facts are stale.
		if xn, ok := target.X.(*pyast.Name); ok && ev.aliases[xn.Ident] {
			for i := range ev.row {
				ev.row[i] = Fact{}
			}
		}
	case *pyast.TupleLit:
		for _, el := range target.Elts {
			if n, ok := el.(*pyast.Name); ok {
				ev.vars[n.Ident] = Fact{}
				delete(ev.maybeUnset, n.Ident)
				delete(ev.aliases, n.Ident)
			}
		}
	}
}

// killAssigned conservatively clears facts for everything a loop body
// may rebind (the body runs zero or more times, so no per-iteration
// fact survives).
func (a *analyzer) killAssigned(body []pyast.Stmt, ev *env, loopVar pyast.Expr) {
	kill := func(name string) {
		if _, bound := ev.vars[name]; !bound {
			ev.maybeUnset[name] = true
		}
		ev.vars[name] = Fact{}
		delete(ev.aliases, name)
	}
	killTarget := func(t pyast.Expr) {
		switch t := t.(type) {
		case *pyast.Name:
			kill(t.Ident)
		case *pyast.TupleLit:
			for _, e := range t.Elts {
				if n, ok := e.(*pyast.Name); ok {
					kill(n.Ident)
				}
			}
		case *pyast.Subscript:
			if xn, ok := t.X.(*pyast.Name); ok && ev.aliases[xn.Ident] {
				for i := range ev.row {
					ev.row[i] = Fact{}
				}
			}
		}
	}
	if loopVar != nil {
		killTarget(loopVar)
		// The loop variable is bound by the loop header itself on every
		// iteration; only after a zero-iteration loop is it unset, and
		// the body (which is what we analyze here) always sees it bound.
		if n, ok := loopVar.(*pyast.Name); ok {
			delete(ev.maybeUnset, n.Ident)
		}
	}
	pyast.InspectStmts(body, func(n pyast.Node) bool {
		switch n := n.(type) {
		case *pyast.Assign:
			killTarget(n.Target)
		case *pyast.AugAssign:
			killTarget(n.Target)
		case *pyast.For:
			killTarget(n.Var)
		case *pyast.ListComp:
			kill(n.Var)
		}
		return true
	})
}

func (a *analyzer) ifStmt(s *pyast.If, ev *env) bool {
	cf := a.expr(s.Cond, ev)
	lintConstCond(a, s.Cond)
	if t, ok := cf.truth(); ok {
		if _, already := a.info.Dead[s]; !already {
			arm := inference.DeadThen
			if t {
				arm = inference.DeadElse
			}
			a.res.dead[s] = deadInfo{arm: arm, deps: cf.deps}
		}
		// Analyze the dead arm on a scratch env (lints, conservative
		// raise collection), then continue with the live arm's env.
		if t {
			a.stmts(s.Else, ev.clone())
			return a.stmts(s.Then, ev)
		}
		a.stmts(s.Then, ev.clone())
		return a.stmts(s.Else, ev)
	}
	thenEnv, elseEnv := ev.clone(), ev.clone()
	a.refine(s.Cond, true, thenEnv)
	a.refine(s.Cond, false, elseEnv)
	tTerm := a.stmts(s.Then, thenEnv)
	eTerm := false
	if len(s.Else) > 0 {
		eTerm = a.stmts(s.Else, elseEnv)
	}
	switch {
	case tTerm && eTerm:
		return true
	case tTerm:
		*ev = *elseEnv
	case eTerm:
		*ev = *thenEnv
	default:
		ev.merge(thenEnv, elseEnv)
	}
	return false
}

// lintConstCond reports literally-constant conditions (a user bug, as
// opposed to fact-derived constancy, which is the specializer working).
func lintConstCond(a *analyzer, cond pyast.Expr) {
	if t, ok := litTruth(cond); ok {
		which := "false"
		if t {
			which = "true"
		}
		a.lint(cond.Pos(), "constant-condition", "condition is always "+which)
	}
}

// litTruth folds the truthiness of purely-literal conditions.
func litTruth(e pyast.Expr) (bool, bool) {
	switch e := e.(type) {
	case *pyast.BoolLit:
		return e.B, true
	case *pyast.NoneLit:
		return false, true
	case *pyast.NumLit:
		if e.IsFloat {
			return e.F != 0, true
		}
		return e.I != 0, true
	case *pyast.StrLit:
		return e.S != "", true
	case *pyast.UnaryOp:
		if e.Op == "not" {
			if t, ok := litTruth(e.X); ok {
				return !t, true
			}
		}
	case *pyast.BoolOp:
		all := true
		for _, x := range e.Xs {
			t, ok := litTruth(x)
			if !ok {
				return false, false
			}
			if e.Op == "and" && !t {
				return false, true
			}
			if e.Op == "or" && t {
				return true, true
			}
			all = t
		}
		return all, true
	}
	return false, false
}

// ---- expressions ----

func exprType(e pyast.Expr) types.Type {
	if e == nil {
		return types.Type{}
	}
	return e.Type()
}

func (a *analyzer) expr(e pyast.Expr, ev *env) Fact {
	if e == nil {
		return Fact{}
	}
	if f, ok := a.info.Failed[e]; ok {
		a.addRaise(kindFromName(f.Raises))
		return Fact{}
	}
	switch e := e.(type) {
	case *pyast.NumLit:
		if e.IsFloat {
			return a.record(e, constFact(pyvalue.Float(e.F)))
		}
		return a.record(e, constFact(pyvalue.Int(e.I)))
	case *pyast.StrLit:
		return a.record(e, constFact(pyvalue.Str(e.S)))
	case *pyast.BoolLit:
		return a.record(e, constFact(pyvalue.Bool(e.B)))
	case *pyast.NoneLit:
		return a.record(e, constFact(pyvalue.None{}))
	case *pyast.Name:
		return a.record(e, a.nameFact(e, ev))
	case *pyast.BinOp:
		l := a.expr(e.Left, ev)
		r := a.expr(e.Right, ev)
		return a.record(e, a.binFact(e, e.Op, l, r, e.Left, e.Right, e.Type()))
	case *pyast.UnaryOp:
		return a.record(e, a.unaryFact(e, ev))
	case *pyast.BoolOp:
		return a.record(e, a.boolOpFact(e, ev))
	case *pyast.Compare:
		return a.record(e, a.compareFact(e, ev))
	case *pyast.IfExpr:
		return a.record(e, a.ifExprFact(e, ev))
	case *pyast.Subscript:
		return a.record(e, a.subscriptFact(e, ev))
	case *pyast.Slice:
		return a.record(e, a.sliceFact(e, ev))
	case *pyast.Call:
		return a.record(e, a.callFact(e, ev))
	case *pyast.Attr:
		a.expr(e.X, ev)
		return Fact{}
	case *pyast.TupleLit:
		for _, el := range e.Elts {
			a.expr(el, ev)
		}
		return a.record(e, a.nn(Fact{}))
	case *pyast.ListLit:
		for _, el := range e.Elts {
			a.expr(el, ev)
		}
		return a.record(e, a.nn(Fact{}))
	case *pyast.DictLit:
		for i := range e.Keys {
			a.expr(e.Keys[i], ev)
			a.expr(e.Vals[i], ev)
		}
		return a.record(e, a.nn(Fact{}))
	case *pyast.ListComp:
		a.expr(e.Iter, ev)
		a.addRaise(pyvalue.ExcUnsupported) // loop-iteration cap
		inner := ev.clone()
		inner.vars[e.Var] = Fact{}
		delete(inner.aliases, e.Var)
		delete(inner.maybeUnset, e.Var)
		if e.Cond != nil {
			a.expr(e.Cond, inner)
		}
		a.expr(e.Elt, inner)
		return a.record(e, a.nn(Fact{}))
	default:
		return Fact{}
	}
}

func (a *analyzer) nameFact(e *pyast.Name, ev *env) Fact {
	if f, ok := ev.vars[e.Ident]; ok {
		if ev.maybeUnset[e.Ident] {
			// Reading a conditionally-bound name can raise NameError at
			// runtime; its fact must not drive folding or pruning, or the
			// compiled code would skip the raising read entirely.
			a.addRaise(pyvalue.ExcNameError)
			return Fact{}
		}
		return f
	}
	if v, ok := a.opts.Globals[e.Ident]; ok && v != nil {
		switch v.(type) {
		case pyvalue.Bool, pyvalue.Int, pyvalue.Float, pyvalue.Str:
			return constFact(v)
		case pyvalue.None:
			return constFact(v)
		}
		return a.nn(Fact{})
	}
	if _, ok := a.info.Globals[e.Ident]; ok {
		return Fact{}
	}
	a.addRaise(pyvalue.ExcNameError)
	return Fact{}
}

// exactKind reports whether t is a plain (non-Option, non-Any) type of
// the given kind, i.e. codegen's fast accessors apply without checks.
func exactKind(t types.Type, k types.Kind) bool {
	return !t.IsOption() && t.Kind() == k
}

func inexact(t types.Type) bool {
	return t.IsOption() || t.Kind() == types.KindAny || t.Kind() == types.KindInvalid
}

func (a *analyzer) binFact(node pyast.Expr, op string, l, r Fact, le, re pyast.Expr, resT types.Type) Fact {
	lt, rt := exprType(le), exprType(re)
	deps := l.deps | r.deps
	// Constant folding: both operands known → apply the real operator.
	if l.Const != nil && r.Const != nil {
		v, err := applyBin(op, l.Const, r.Const)
		if err != nil {
			k := pyvalue.KindOf(err)
			a.addRaise(k)
			if deps == 0 && node != nil && k == pyvalue.ExcZeroDivisionError {
				// A dep-free always-raise: every normal-case row raises
				// here, so codegen may compile the expression to an
				// exception exit (and the lint surface reports it).
				a.res.raises[node] = k
				a.lint(node.Pos(), "always-raises",
					"expression always raises "+k.String())
			}
			return Fact{}
		}
		if isScalar(v) {
			return constFact(v).withDeps(deps)
		}
		return a.nn(Fact{deps: deps})
	}
	// Operand-check raise sites (mirrors codegen's asI64/asF64/asStr).
	if inexact(lt) || inexact(rt) {
		a.addRaise(pyvalue.ExcTypeError)
	}
	switch op {
	case "/", "//", "%":
		// Only a dep-free proof removes the raise site: a sample-seeded
		// non-zero divisor holds solely for rows passing the guard, and
		// CanRaise must describe the unguarded normal path too.
		if !(r.nonZero() && r.deps == 0) {
			a.addRaise(pyvalue.ExcZeroDivisionError)
		}
		if op == "%" && lt.Kind() == types.KindStr {
			// String formatting can reject the format spec / operands.
			a.addRaise(pyvalue.ExcTypeError)
			a.addRaise(pyvalue.ExcValueError)
		}
	case "**":
		if exactKind(resT, types.KindI64) && !r.nonNegative() {
			// Negative integer exponents are outside the specialized
			// int arm.
			a.addRaise(pyvalue.ExcUnsupported)
		}
	}
	out := Fact{deps: deps}
	if resT.Kind() == types.KindI64 && !resT.IsOption() {
		switch op {
		case "+":
			out.Lo, out.Hi, out.HasLo, out.HasHi = intervalAdd(l, r)
		case "-":
			out.Lo, out.Hi, out.HasLo, out.HasHi = intervalSub(l, r)
		case "*":
			out.Lo, out.Hi, out.HasLo, out.HasHi = intervalMul(l, r)
		case "%":
			// Python modulo with a constant positive modulus m yields a
			// result in [0, m-1] regardless of the dividend's sign.
			if m, ok := r.Const.(pyvalue.Int); ok && int64(m) > 0 {
				out.Lo, out.Hi, out.HasLo, out.HasHi = 0, int64(m)-1, true, true
			}
		}
	}
	out = a.nn(out)
	if out.isTop() {
		out.deps = 0
	}
	return out
}

func isScalar(v pyvalue.Value) bool {
	switch v.(type) {
	case pyvalue.None, pyvalue.Bool, pyvalue.Int, pyvalue.Float, pyvalue.Str:
		return true
	}
	return false
}

// applyBin mirrors the boxed operator dispatch so folded constants have
// exactly the semantics the general path computes.
func applyBin(op string, x, y pyvalue.Value) (pyvalue.Value, error) {
	switch op {
	case "+":
		return pyvalue.Add(x, y)
	case "-":
		return pyvalue.Sub(x, y)
	case "*":
		return pyvalue.Mul(x, y)
	case "/":
		return pyvalue.TrueDiv(x, y)
	case "//":
		return pyvalue.FloorDiv(x, y)
	case "%":
		return pyvalue.Mod(x, y)
	case "**":
		return pyvalue.Pow(x, y)
	case "&":
		return pyvalue.BitAnd(x, y)
	case "|":
		return pyvalue.BitOr(x, y)
	case "^":
		return pyvalue.BitXor(x, y)
	case "<<":
		return pyvalue.LShift(x, y)
	case ">>":
		return pyvalue.RShift(x, y)
	default:
		return nil, pyvalue.Raise(pyvalue.ExcUnsupported, "operator %q", op)
	}
}

func (a *analyzer) unaryFact(e *pyast.UnaryOp, ev *env) Fact {
	x := a.expr(e.X, ev)
	xt := exprType(e.X)
	switch e.Op {
	case "not":
		if t, ok := x.truth(); ok {
			return constFact(pyvalue.Bool(!t)).withDeps(x.deps)
		}
		return a.nn(Fact{})
	case "-":
		if x.Const != nil {
			if v, err := pyvalue.Neg(x.Const); err == nil && isScalar(v) {
				return constFact(v).withDeps(x.deps)
			}
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		}
		if inexact(xt) || !xt.IsNumeric() {
			a.addRaise(pyvalue.ExcTypeError)
		}
		out := Fact{deps: x.deps}
		if exactKind(exprType(e), types.KindI64) {
			lo, hi, hasLo, hasHi := x.interval()
			if hasHi {
				if v, ok := subOv(0, hi); ok {
					out.Lo, out.HasLo = v, true
				}
			}
			if hasLo {
				if v, ok := subOv(0, lo); ok {
					out.Hi, out.HasHi = v, true
				}
			}
		}
		out = a.nn(out)
		if out.isTop() {
			out.deps = 0
		}
		return out
	case "+":
		if inexact(xt) || !xt.IsNumeric() {
			a.addRaise(pyvalue.ExcTypeError)
		}
		return x
	default: // "~"
		if inexact(xt) {
			a.addRaise(pyvalue.ExcTypeError)
		}
		return a.nn(Fact{})
	}
}

func (a *analyzer) boolOpFact(e *pyast.BoolOp, ev *env) Fact {
	// and/or return operand values; fold when every prefix truth is
	// known, else join all operand facts (the result is one of them).
	facts := make([]Fact, len(e.Xs))
	for i, x := range e.Xs {
		facts[i] = a.expr(x, ev)
	}
	var deps uint64
	result := facts[0]
	decided := true
	for i := 0; i < len(facts); i++ {
		result = facts[i]
		t, ok := facts[i].truth()
		if !ok {
			decided = false
			break
		}
		deps |= facts[i].deps
		if (e.Op == "and" && !t) || (e.Op == "or" && t) {
			break
		}
	}
	if decided {
		return result.withDeps(deps)
	}
	out := facts[0]
	for _, f := range facts[1:] {
		out = join(out, f)
	}
	return out
}

func (a *analyzer) compareFact(e *pyast.Compare, ev *env) Fact {
	first := a.expr(e.First, ev)
	rest := make([]Fact, len(e.Rest))
	for i, x := range e.Rest {
		rest[i] = a.expr(x, ev)
	}
	if len(e.Ops) == 1 {
		if t, deps, ok := a.compareStepFact(e.Ops[0], first, rest[0], e.First, e.Rest[0]); ok {
			return constFact(pyvalue.Bool(t)).withDeps(deps)
		}
		return a.nn(Fact{})
	}
	// Chained comparisons: decide only if every step decides.
	all := true
	res := true
	var deps uint64
	l, le := first, pyast.Expr(e.First)
	for i, op := range e.Ops {
		t, d, ok := a.compareStepFact(op, l, rest[i], le, e.Rest[i])
		if !ok {
			all = false
			break
		}
		deps |= d
		res = res && t
		if !res {
			break
		}
		l, le = rest[i], e.Rest[i]
	}
	if all {
		return constFact(pyvalue.Bool(res)).withDeps(deps)
	}
	return a.nn(Fact{})
}

// compareStepFact decides one comparison step when the facts allow.
func (a *analyzer) compareStepFact(op string, l, r Fact, le, re pyast.Expr) (result bool, deps uint64, ok bool) {
	lt, rt := exprType(le), exprType(re)
	deps = l.deps | r.deps
	// None tests resolve from nullability alone.
	if op == "is" || op == "==" || op == "is not" || op == "!=" {
		neg := op == "is not" || op == "!="
		if _, rNone := re.(*pyast.NoneLit); rNone {
			if l.Null == NullAlways {
				return !neg, l.deps, true
			}
			if l.Null == NullNever {
				return neg, l.deps, true
			}
		}
		if _, lNone := le.(*pyast.NoneLit); lNone {
			if r.Null == NullAlways {
				return !neg, r.deps, true
			}
			if r.Null == NullNever {
				return neg, r.deps, true
			}
		}
	}
	if l.Const != nil && r.Const != nil {
		v, err := pyvalue.Compare(cmpOp(op), l.Const, r.Const)
		if err != nil {
			a.addRaise(pyvalue.KindOf(err))
			return false, 0, false
		}
		if b, isB := v.(pyvalue.Bool); isB {
			if op == "is not" || op == "not in" {
				return !bool(b), deps, true
			}
			return bool(b), deps, true
		}
		return false, 0, false
	}
	// Interval-decided orderings on exact ints.
	if exactKind(lt, types.KindI64) && exactKind(rt, types.KindI64) {
		llo, lhi, lHasLo, lHasHi := l.interval()
		rlo, rhi, rHasLo, rHasHi := r.interval()
		switch op {
		case "<":
			if lHasHi && rHasLo && lhi < rlo {
				return true, deps, true
			}
			if lHasLo && rHasHi && llo >= rhi {
				return false, deps, true
			}
		case "<=":
			if lHasHi && rHasLo && lhi <= rlo {
				return true, deps, true
			}
			if lHasLo && rHasHi && llo > rhi {
				return false, deps, true
			}
		case ">":
			if lHasLo && rHasHi && llo > rhi {
				return true, deps, true
			}
			if lHasHi && rHasLo && lhi <= rlo {
				return false, deps, true
			}
		case ">=":
			if lHasLo && rHasHi && llo >= rhi {
				return true, deps, true
			}
			if lHasHi && rHasLo && lhi < rlo {
				return false, deps, true
			}
		case "==":
			if (lHasHi && rHasLo && lhi < rlo) || (lHasLo && rHasHi && llo > rhi) {
				return false, deps, true
			}
		case "!=":
			if (lHasHi && rHasLo && lhi < rlo) || (lHasLo && rHasHi && llo > rhi) {
				return true, deps, true
			}
		}
	}
	// Raise sites: ordering between inexact or mixed kinds can
	// TypeError at runtime.
	switch op {
	case "<", "<=", ">", ">=":
		if inexact(lt) || inexact(rt) {
			a.addRaise(pyvalue.ExcTypeError)
		}
	case "in", "not in":
		if inexact(rt) {
			a.addRaise(pyvalue.ExcTypeError)
		}
	}
	return false, 0, false
}

// cmpOp maps negated operators onto their base for pyvalue.Compare.
func cmpOp(op string) string {
	switch op {
	case "is not":
		return "is"
	case "not in":
		return "in"
	}
	return op
}

func (a *analyzer) ifExprFact(e *pyast.IfExpr, ev *env) Fact {
	cf := a.expr(e.Cond, ev)
	lintConstCond(a, e.Cond)
	if t, ok := cf.truth(); ok {
		if _, already := a.info.Dead[e]; !already {
			arm := inference.DeadThen
			if t {
				arm = inference.DeadElse
			}
			a.res.dead[e] = deadInfo{arm: arm, deps: cf.deps}
		}
		if t {
			a.expr(e.Else, ev.clone())
			return a.expr(e.Then, ev).withDeps(cf.deps)
		}
		a.expr(e.Then, ev.clone())
		return a.expr(e.Else, ev).withDeps(cf.deps)
	}
	thenEnv, elseEnv := ev.clone(), ev.clone()
	a.refine(e.Cond, true, thenEnv)
	a.refine(e.Cond, false, elseEnv)
	tf := a.expr(e.Then, thenEnv)
	ef := a.expr(e.Else, elseEnv)
	return join(tf, ef)
}

func (a *analyzer) subscriptFact(e *pyast.Subscript, ev *env) Fact {
	xf := a.expr(e.X, ev)
	a.expr(e.Index, ev)
	_ = xf
	xt := exprType(e.X)
	if e.RowIdx >= 0 {
		if xn, ok := e.X.(*pyast.Name); ok && ev.aliases[xn.Ident] && e.RowIdx < len(ev.row) {
			return ev.row[e.RowIdx]
		}
		// A row-typed value that is not the input row (e.g. a dict
		// literal): position is statically resolved, no raise.
		return Fact{}
	}
	switch xt.Kind() {
	case types.KindStr, types.KindList, types.KindTuple:
		a.addRaise(pyvalue.ExcIndexError)
		if inexact(exprType(e.Index)) {
			a.addRaise(pyvalue.ExcTypeError)
		}
	case types.KindDict, types.KindRow:
		a.addRaise(pyvalue.ExcKeyError)
	case types.KindMatch:
		a.addRaise(pyvalue.ExcIndexError)
	default:
		a.addRaise(pyvalue.ExcTypeError)
	}
	return Fact{}
}

func (a *analyzer) sliceFact(e *pyast.Slice, ev *env) Fact {
	a.expr(e.X, ev)
	stepSafe := e.Step == nil
	if e.Step != nil {
		sf := a.expr(e.Step, ev)
		if sf.nonZero() && sf.deps == 0 {
			stepSafe = true
		}
	}
	if e.Lo != nil {
		a.expr(e.Lo, ev)
	}
	if e.Hi != nil {
		a.expr(e.Hi, ev)
	}
	if !stepSafe {
		a.addRaise(pyvalue.ExcValueError) // slice step zero
	}
	if inexact(exprType(e.X)) {
		a.addRaise(pyvalue.ExcTypeError)
	}
	return a.nn(Fact{})
}
