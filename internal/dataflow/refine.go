package dataflow

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// refine narrows the environment under the assumption that cond
// evaluated to the given truthiness. Refinements are derived from a
// condition the generated code actually executes, so they are dep-free
// (no guard needed); they meet into existing facts, which keep their
// own deps.
func (a *analyzer) refine(cond pyast.Expr, truthy bool, ev *env) {
	switch cond := cond.(type) {
	case *pyast.Name, *pyast.Subscript:
		a.refineTruth(cond, truthy, ev)
	case *pyast.UnaryOp:
		if cond.Op == "not" {
			a.refine(cond.X, !truthy, ev)
		}
	case *pyast.BoolOp:
		// `a and b` true ⇒ both true; `a or b` false ⇒ both false.
		if (cond.Op == "and" && truthy) || (cond.Op == "or" && !truthy) {
			for _, x := range cond.Xs {
				a.refine(x, truthy, ev)
			}
		}
	case *pyast.Compare:
		if len(cond.Ops) == 1 {
			a.refineCompare(cond.Ops[0], cond.First, cond.Rest[0], truthy, ev)
		}
	}
}

// refineTruth narrows an lvalue tested directly (`if x:`).
func (a *analyzer) refineTruth(lv pyast.Expr, truthy bool, ev *env) {
	t := exprType(lv)
	if truthy {
		// Truthy excludes None; for exact ints it also excludes 0.
		a.updateLV(lv, ev, func(f Fact) Fact {
			if a.opts.NullFacts {
				f = f.nonNull()
			}
			if exactKind(t, types.KindI64) || exactKind(t, types.KindF64) {
				f.notZero = true
			}
			if exactKind(t, types.KindI64) && f.HasLo && f.Lo == 0 {
				f.Lo = 1
			}
			return f
		})
		return
	}
	// Falsy pins the value for exact scalar types with a single falsy
	// inhabitant. Floats are excluded: -0.0 is falsy but renders
	// differently from 0.0.
	var c pyvalue.Value
	switch {
	case exactKind(t, types.KindI64):
		c = pyvalue.Int(0)
	case exactKind(t, types.KindBool):
		c = pyvalue.Bool(false)
	case exactKind(t, types.KindStr):
		c = pyvalue.Str("")
	default:
		return
	}
	a.updateLV(lv, ev, func(f Fact) Fact { return meet(constFact(c), f) })
}

// refineCompare narrows on a single comparison step.
func (a *analyzer) refineCompare(op string, le, re pyast.Expr, truthy bool, ev *env) {
	// Negated operators flip the branch sense.
	switch op {
	case "is not":
		op, truthy = "is", !truthy
	case "!=":
		op, truthy = "==", !truthy
	}
	// None tests: `x is None` / `x == None`.
	if op == "is" || op == "==" {
		if _, rNone := re.(*pyast.NoneLit); rNone {
			a.refineNone(le, truthy, ev)
			if op == "is" {
				return
			}
		}
		if _, lNone := le.(*pyast.NoneLit); lNone {
			a.refineNone(re, truthy, ev)
			return
		}
	}
	// Equality against a literal constant pins the value.
	if op == "==" && truthy {
		if c := litConst(re); c != nil {
			a.updateLV(le, ev, func(f Fact) Fact { return meet(constFact(c), f) })
		}
		if c := litConst(le); c != nil {
			a.updateLV(re, ev, func(f Fact) Fact { return meet(constFact(c), f) })
		}
		return
	}
	// Orderings against integer literals narrow intervals; mirror when
	// the literal is on the left.
	if c, ok := litConst(re).(pyvalue.Int); ok && exactKind(exprType(le), types.KindI64) {
		a.refineOrder(le, op, int64(c), truthy, ev)
	}
	if c, ok := litConst(le).(pyvalue.Int); ok && exactKind(exprType(re), types.KindI64) {
		a.refineOrder(re, flipOrder(op), int64(c), truthy, ev)
	}
}

func flipOrder(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// refineOrder narrows lv under `lv op c` being truthy/falsy.
func (a *analyzer) refineOrder(lv pyast.Expr, op string, c int64, truthy bool, ev *env) {
	// Reduce to one of: lv ≤ hi, lv ≥ lo.
	var lo, hi int64
	var hasLo, hasHi bool
	eff := op
	if !truthy {
		switch op {
		case "<":
			eff = ">="
		case "<=":
			eff = ">"
		case ">":
			eff = "<="
		case ">=":
			eff = "<"
		default:
			return
		}
	}
	switch eff {
	case "<":
		if v, ok := subOv(c, 1); ok {
			hi, hasHi = v, true
		}
	case "<=":
		hi, hasHi = c, true
	case ">":
		if v, ok := addOv(c, 1); ok {
			lo, hasLo = v, true
		}
	case ">=":
		lo, hasLo = c, true
	default:
		return
	}
	if !hasLo && !hasHi {
		return
	}
	ref := Fact{Lo: lo, Hi: hi, HasLo: hasLo, HasHi: hasHi}
	a.updateLV(lv, ev, func(f Fact) Fact { return meet(ref, f) })
}

// refineNone pins the lvalue's nullability (gated on null facts).
func (a *analyzer) refineNone(lv pyast.Expr, isNone bool, ev *env) {
	if !a.opts.NullFacts {
		return
	}
	a.updateLV(lv, ev, func(f Fact) Fact {
		if isNone {
			return meet(constFact(pyvalue.None{}), f)
		}
		return f.nonNull()
	})
}

// updateLV applies fn to the fact of a refinable lvalue: a plain local
// name, or a row-column subscript through a row alias.
func (a *analyzer) updateLV(lv pyast.Expr, ev *env, fn func(Fact) Fact) {
	switch lv := lv.(type) {
	case *pyast.Name:
		if ev.aliases[lv.Ident] {
			return // the row value itself, not a scalar
		}
		if f, ok := ev.vars[lv.Ident]; ok {
			ev.vars[lv.Ident] = fn(f)
		}
	case *pyast.Subscript:
		if xn, ok := lv.X.(*pyast.Name); ok && ev.aliases[xn.Ident] &&
			lv.RowIdx >= 0 && lv.RowIdx < len(ev.row) {
			ev.row[lv.RowIdx] = fn(ev.row[lv.RowIdx])
		}
	}
}

// litConst extracts the constant value of a literal expression (plus
// negated numbers), without touching the environment.
func litConst(e pyast.Expr) pyvalue.Value {
	switch e := e.(type) {
	case *pyast.NumLit:
		if e.IsFloat {
			return pyvalue.Float(e.F)
		}
		return pyvalue.Int(e.I)
	case *pyast.StrLit:
		return pyvalue.Str(e.S)
	case *pyast.BoolLit:
		return pyvalue.Bool(e.B)
	case *pyast.NoneLit:
		return pyvalue.None{}
	case *pyast.UnaryOp:
		if e.Op == "-" {
			if n, ok := e.X.(*pyast.NumLit); ok {
				if n.IsFloat {
					return pyvalue.Float(-n.F)
				}
				return pyvalue.Int(-n.I)
			}
		}
	}
	return nil
}

// safeNoArgStrMethods never raise when called with no arguments on an
// exact str receiver.
var safeNoArgStrMethods = map[string]bool{
	"upper": true, "lower": true, "strip": true, "lstrip": true,
	"rstrip": true, "capitalize": true, "title": true, "swapcase": true,
}

// callFact models builtin and method calls: a small table of provably
// non-raising calls, everything else conservatively raising.
func (a *analyzer) callFact(e *pyast.Call, ev *env) Fact {
	for _, arg := range e.Args {
		a.expr(arg, ev)
	}
	for _, arg := range e.KwArgs {
		a.expr(arg, ev)
	}
	switch fn := e.Fn.(type) {
	case *pyast.Name:
		switch fn.Ident {
		// Possibly-raising calls return top facts: a fact from a raising
		// expression could fold or prune away the very evaluation that
		// raises.
		case "len":
			var at types.Type
			if len(e.Args) == 1 {
				at = exprType(e.Args[0])
			}
			switch {
			case len(e.Args) != 1:
				a.addRaise(pyvalue.ExcTypeError)
			case exactKind(at, types.KindStr), exactKind(at, types.KindList),
				exactKind(at, types.KindTuple), exactKind(at, types.KindDict),
				at.Kind() == types.KindRow && !at.IsOption():
				// len() of an exact container cannot raise and is ≥ 0.
				return a.nn(Fact{Lo: 0, HasLo: true})
			default:
				a.addRaise(pyvalue.ExcTypeError)
			}
			return Fact{}
		case "str":
			if len(e.Args) == 1 && !inexact(exprType(e.Args[0])) {
				return a.nn(Fact{})
			}
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		case "bool":
			if len(e.Args) == 1 && !inexact(exprType(e.Args[0])) {
				return a.nn(Fact{})
			}
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		case "abs":
			var at types.Type
			if len(e.Args) == 1 {
				at = exprType(e.Args[0])
			}
			if len(e.Args) == 1 && !inexact(at) && at.IsNumeric() {
				return a.nn(Fact{})
			}
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		case "int", "float":
			at := types.Type{}
			if len(e.Args) > 0 {
				at = exprType(e.Args[0])
			}
			if len(e.Args) == 1 && !inexact(at) && at.IsNumeric() {
				return a.nn(Fact{})
			}
			// Parsing strings can fail.
			a.addRaise(pyvalue.ExcValueError)
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		case "range":
			a.addRaise(pyvalue.ExcTypeError)
			return Fact{}
		default:
			a.addRaise(pyvalue.ExcTypeError)
			a.addRaise(pyvalue.ExcValueError)
			a.addRaise(pyvalue.ExcUnsupported)
			return Fact{}
		}
	case *pyast.Attr:
		a.expr(fn.X, ev)
		xt := exprType(fn.X)
		if inexact(xt) {
			a.addRaise(pyvalue.ExcAttributeError)
			a.addRaise(pyvalue.ExcTypeError)
		}
		if exactKind(xt, types.KindStr) && len(e.Args) == 0 && safeNoArgStrMethods[fn.Name] {
			return a.nn(Fact{})
		}
		a.addRaise(pyvalue.ExcTypeError)
		a.addRaise(pyvalue.ExcValueError)
		a.addRaise(pyvalue.ExcAttributeError)
		a.addRaise(pyvalue.ExcIndexError)
		return Fact{}
	default:
		a.expr(e.Fn, ev)
		a.addRaise(pyvalue.ExcUnsupported)
		return Fact{}
	}
}
