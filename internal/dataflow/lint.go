package dataflow

import (
	"strings"

	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
)

// failedLints surfaces the inference failures as lints: statically
// raising expressions and constructs outside the compilable subset.
// These nodes compile into exception exits, so every row reaching them
// takes the general path — worth telling the user about.
func failedLints(info *inference.Info) []Lint {
	var ls []Lint
	for n, f := range info.Failed {
		code := "unsupported"
		if f.Raises != "" {
			code = "always-raises"
		}
		// Reason already names the position; the Lint carries it
		// structurally, so strip the textual prefix.
		msg := strings.TrimPrefix(f.Reason, f.Pos.String()+": ")
		ls = append(ls, Lint{Pos: n.Pos(), Code: code, Msg: msg})
	}
	return ls
}

// unusedVarLints reports locals that are assigned but never read.
// Parameters and "_" are exempt.
func unusedVarLints(fn *pyast.Function) []Lint {
	params := map[string]bool{}
	for _, p := range fn.Params {
		params[p] = true
	}
	assigned := map[string]pyast.Pos{} // first assignment position
	reads := map[string]int{}

	noteAssign := func(t pyast.Expr) {
		switch t := t.(type) {
		case *pyast.Name:
			if _, ok := assigned[t.Ident]; !ok {
				assigned[t.Ident] = t.Pos()
			}
		case *pyast.TupleLit:
			for _, e := range t.Elts {
				if n, ok := e.(*pyast.Name); ok {
					if _, seen := assigned[n.Ident]; !seen {
						assigned[n.Ident] = n.Pos()
					}
				}
			}
		case *pyast.Subscript:
			// x[i] = v reads x (and i); handled by the walk below.
		}
	}

	// Walk statements, distinguishing write-position names from reads.
	var walkExpr func(e pyast.Expr)
	walkExpr = func(e pyast.Expr) {
		pyast.Inspect(e, func(n pyast.Node) bool {
			if nm, ok := n.(*pyast.Name); ok {
				reads[nm.Ident]++
			}
			return true
		})
	}
	var walkStmts func(ss []pyast.Stmt)
	walkStmts = func(ss []pyast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *pyast.Assign:
				noteAssign(s.Target)
				// Subscript targets read their container and index.
				if sub, ok := s.Target.(*pyast.Subscript); ok {
					walkExpr(sub.X)
					walkExpr(sub.Index)
				}
				walkExpr(s.Value)
			case *pyast.AugAssign:
				// target op= value both reads and writes the target.
				noteAssign(s.Target)
				walkExpr(s.Target)
				walkExpr(s.Value)
			case *pyast.ExprStmt:
				walkExpr(s.X)
			case *pyast.Return:
				if s.X != nil {
					walkExpr(s.X)
				}
			case *pyast.If:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *pyast.For:
				noteAssign(s.Var)
				walkExpr(s.Iter)
				walkStmts(s.Body)
			case *pyast.While:
				walkExpr(s.Cond)
				walkStmts(s.Body)
			}
		}
	}
	walkStmts(fn.Body)

	var ls []Lint
	for name, pos := range assigned {
		if params[name] || name == "_" {
			continue
		}
		if reads[name] > countWrites(fn.Body, name) {
			continue
		}
		ls = append(ls, Lint{Pos: pos, Code: "unused-var",
			Msg: "variable " + name + " is assigned but never used"})
	}
	return ls
}

// countWrites counts write-position occurrences of name, so the read
// tally (which the generic walk inflates via AugAssign target reads)
// can be compared fairly. Plain Assign targets are never passed to
// walkExpr, so only AugAssign targets need discounting.
func countWrites(ss []pyast.Stmt, name string) int {
	count := 0
	pyast.InspectStmts(ss, func(n pyast.Node) bool {
		if aug, ok := n.(*pyast.AugAssign); ok {
			if t, ok := aug.Target.(*pyast.Name); ok && t.Ident == name {
				count++
			}
		}
		return true
	})
	return count
}
