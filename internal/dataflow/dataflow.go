// Package dataflow performs forward dataflow analysis over UDF ASTs on
// the normal-case path (§5.1 "code generation optimizations"). It runs a
// product lattice of constancy, nullability and integer intervals,
// seeded from two sources with very different soundness obligations:
//
//   - The normal-case types. The row classifier enforces the schema at
//     runtime, so type-derived facts (a non-Option column is never
//     None, a Null column is always None) hold unconditionally on the
//     normal path. These facts are dep-free.
//
//   - Per-column sample value statistics (internal/sample.ColumnStats:
//     constant cells, integer value ranges). The classifier does NOT
//     enforce these, so every fact derived from them carries a column
//     dependency bitmask. When the code generator consumes such a fact
//     (pruning a branch, folding a constant, eliding a check), the
//     load-bearing columns become runtime guards compiled into the UDF
//     prologue: rows violating a sampled constraint raise and re-execute
//     on the general path with full Python semantics, keeping optimized
//     and unoptimized runs byte-identical.
//
// Three consumers: internal/codegen (dead-branch pruning, constant
// folding, check elision), exception-site inference (which nodes can
// raise, and which kinds — so provably-non-raising guard code is
// skipped and dead resolvers are reported), and the UDF lint surface
// (unreachable code, always-raising expressions, unused variables,
// unsupported constructs) exposed through Result.Warnings.
package dataflow

import (
	"fmt"
	"sort"

	"github.com/gotuplex/tuplex/internal/inference"
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/types"
)

// maxDepCols bounds the column-dependency bitmask; columns past this
// index get type facts only (never value-statistic facts).
const maxDepCols = 64

// ColFact seeds the analysis for one input column of the UDF.
type ColFact struct {
	// Type is the normal-case column type (drives dep-free nullability).
	Type types.Type
	// Const is the value every sampled cell held, when the column was
	// constant across the sample (nil otherwise). Must already match
	// Type's kind.
	Const pyvalue.Value
	// Lo/Hi is the sampled integer value range, valid when HasRange.
	Lo, Hi   int64
	HasRange bool
}

// Options configures one analysis run.
type Options struct {
	// Columns seeds per-column facts for the UDF's row parameter (or,
	// for a single scalar parameter, Columns[0] seeds the parameter
	// itself). Nil means type facts only.
	Columns []ColFact
	// NullFacts enables nullability seeding and refinement; off under
	// the §6.3.3 null-optimization ablation.
	NullFacts bool
	// Globals provides module-level constant values for folding.
	Globals map[string]pyvalue.Value
}

// Lint is one user-facing diagnostic about a UDF.
type Lint struct {
	Pos  pyast.Pos
	Code string // "unreachable", "constant-condition", "always-raises", "unused-var", "unsupported"
	Msg  string
}

func (l Lint) String() string {
	return fmt.Sprintf("%s: %s: %s", l.Pos, l.Code, l.Msg)
}

// Guard is one runtime precondition the compiled UDF must verify before
// running specialized code: the named input column must satisfy the
// sampled constraint the specialization rests on.
type Guard struct {
	// Col is the input column index (post-projection).
	Col int
	// Const, when non-nil, requires the cell to equal this value.
	Const pyvalue.Value
	// Lo/Hi require an integer cell in [Lo, Hi] when HasLo/HasHi.
	Lo, Hi       int64
	HasLo, HasHi bool
}

type deadInfo struct {
	arm  inference.Branch
	deps uint64
}

// Result carries the analysis facts for one UDF. The code generator
// queries it during compilation; queries that consume a sample-seeded
// fact mark the fact's columns as load-bearing, and RequiredGuards
// reports the guards those decisions require.
type Result struct {
	info     *inference.Info
	facts    map[pyast.Expr]Fact
	dead     map[pyast.Node]deadInfo
	raises   map[pyast.Expr]pyvalue.ExcKind
	canRaise map[pyvalue.ExcKind]bool
	lints    []Lint
	cols     []ColFact
	used     uint64
}

// Analyze runs the forward dataflow analysis for a typed UDF. It never
// mutates the AST; info must come from inference.TypeFunction.
func Analyze(info *inference.Info, opts Options) *Result {
	res := &Result{
		info:     info,
		facts:    map[pyast.Expr]Fact{},
		dead:     map[pyast.Node]deadInfo{},
		raises:   map[pyast.Expr]pyvalue.ExcKind{},
		canRaise: map[pyvalue.ExcKind]bool{},
		cols:     opts.Columns,
	}
	a := &analyzer{info: info, opts: opts, res: res}
	a.run()
	res.lints = append(res.lints, failedLints(info)...)
	res.lints = append(res.lints, unusedVarLints(info.Fn)...)
	sortLints(res.lints)
	return res
}

// DeadBranch reports the statically dead arm of an If or IfExpr under
// the analysis facts (supplementing inference.Info.Dead), marking the
// decision's seeded columns as load-bearing.
func (r *Result) DeadBranch(n pyast.Node) inference.Branch {
	d, ok := r.dead[n]
	if !ok {
		return inference.DeadNone
	}
	r.used |= d.deps
	return d.arm
}

// Constant reports the constant value e always evaluates to, when known
// and exactly matching e's static type, marking the decision's seeded
// columns as load-bearing.
func (r *Result) Constant(e pyast.Expr) (pyvalue.Value, bool) {
	f, ok := r.facts[e]
	if !ok || f.Const == nil || !matchesType(f.Const, e.Type()) {
		return nil, false
	}
	r.used |= f.deps
	return f.Const, true
}

// ConstantTruth reports the Python truthiness of e when e is a proven
// constant. ok is false when e's value is not known statically.
func (r *Result) ConstantTruth(e pyast.Expr) (bool, bool) {
	v, ok := r.Constant(e)
	if !ok {
		return false, false
	}
	return pyvalue.Truth(v), true
}

// AlwaysRaises reports that e unconditionally raises the returned
// exception kind (dep-free proofs only, so the exit is valid for every
// normal-case row).
func (r *Result) AlwaysRaises(e pyast.Expr) (pyvalue.ExcKind, bool) {
	k, ok := r.raises[e]
	return k, ok
}

// NonNull reports whether e is provably not None, marking load-bearing
// columns.
func (r *Result) NonNull(e pyast.Expr) bool {
	f, ok := r.facts[e]
	if !ok || f.Null != NullNever {
		return false
	}
	r.used |= f.deps
	return true
}

// NonZero reports whether e is provably a non-zero number, marking
// load-bearing columns.
func (r *Result) NonZero(e pyast.Expr) bool {
	f, ok := r.facts[e]
	if !ok || !f.nonZero() {
		return false
	}
	r.used |= f.deps
	return true
}

// NonNegative reports whether e is provably ≥ 0, marking load-bearing
// columns.
func (r *Result) NonNegative(e pyast.Expr) bool {
	f, ok := r.facts[e]
	if !ok || !f.nonNegative() {
		return false
	}
	r.used |= f.deps
	return true
}

// RequiredGuards lists the runtime guards the consumed facts require.
// Call after compilation has made all its queries.
func (r *Result) RequiredGuards() []Guard {
	var gs []Guard
	for i, cf := range r.cols {
		if i >= maxDepCols || r.used&(1<<uint(i)) == 0 {
			continue
		}
		g := Guard{Col: i}
		if cf.Const != nil {
			g.Const = cf.Const
		} else if cf.HasRange {
			g.Lo, g.Hi, g.HasLo, g.HasHi = cf.Lo, cf.Hi, true, true
		} else {
			continue
		}
		gs = append(gs, g)
	}
	return gs
}

// CanRaise lists the exception kinds the UDF can raise on the
// normal-case path, conservatively over-approximated. An empty slice is
// a proof the compiled UDF never raises.
func (r *Result) CanRaise() []pyvalue.ExcKind {
	ks := make([]pyvalue.ExcKind, 0, len(r.canRaise))
	for k := range r.canRaise {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// MayRaise reports whether the UDF can raise the given kind.
func (r *Result) MayRaise(k pyvalue.ExcKind) bool { return r.canRaise[k] }

// Lints returns the user-facing diagnostics, ordered by position. The
// lint set is independent of sample value statistics and optimization
// flags: only structural and dep-free findings are reported, so the
// same UDF always lints the same way.
func (r *Result) Lints() []Lint { return r.lints }

// PrunedBranches counts fact-derived dead arms found by this analysis
// (excluding those inference already found).
func (r *Result) PrunedBranches() int { return len(r.dead) }

// kindFromName maps a Python exception class name to its kind.
func kindFromName(name string) pyvalue.ExcKind {
	switch name {
	case "TypeError":
		return pyvalue.ExcTypeError
	case "ValueError":
		return pyvalue.ExcValueError
	case "ZeroDivisionError":
		return pyvalue.ExcZeroDivisionError
	case "IndexError":
		return pyvalue.ExcIndexError
	case "KeyError":
		return pyvalue.ExcKeyError
	case "AttributeError":
		return pyvalue.ExcAttributeError
	case "OverflowError":
		return pyvalue.ExcOverflowError
	case "NameError":
		return pyvalue.ExcNameError
	default:
		return pyvalue.ExcUnsupported
	}
}

func sortLints(ls []Lint) {
	sort.SliceStable(ls, func(i, j int) bool {
		if ls[i].Pos.Line != ls[j].Pos.Line {
			return ls[i].Pos.Line < ls[j].Pos.Line
		}
		return ls[i].Pos.Col < ls[j].Pos.Col
	})
}
