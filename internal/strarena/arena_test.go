package strarena

import (
	"strings"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	var a Arena
	ss := []string{"", "x", "hello", strings.Repeat("q", 100)}
	got := make([]string, len(ss))
	for i, s := range ss {
		got[i] = a.Intern([]byte(s))
	}
	for i, s := range ss {
		if got[i] != s {
			t.Fatalf("Intern(%q) = %q", s, got[i])
		}
	}
}

func TestInternSurvivesLaterWrites(t *testing.T) {
	var a Arena
	first := a.Intern([]byte("stable"))
	// Fill well past several chunks; earlier strings must not change.
	pad := []byte(strings.Repeat("z", 1000))
	for range 1000 {
		a.Intern(pad)
	}
	if first != "stable" {
		t.Fatalf("early intern corrupted: %q", first)
	}
}

func TestInternHugeString(t *testing.T) {
	var a Arena
	big := strings.Repeat("ab", maxChunk) // 2 chunks worth
	s := a.Intern([]byte(big))
	if s != big {
		t.Fatal("huge intern mismatch")
	}
	if next := a.Intern([]byte("tail")); next != "tail" {
		t.Fatalf("intern after huge = %q", next)
	}
}

func TestConcat(t *testing.T) {
	var a Arena
	cases := [][2]string{{"", ""}, {"a", ""}, {"", "b"}, {"foo", "bar"},
		{strings.Repeat("x", maxChunk), "y"}}
	for _, c := range cases {
		if got, want := a.Concat(c[0], c[1]), c[0]+c[1]; got != want {
			t.Fatalf("Concat(%q, %q) = %q", c[0], c[1], got)
		}
	}
}

func TestChunkRollover(t *testing.T) {
	var a Arena
	var got []string
	var want []string
	for i := range 10000 {
		s := strings.Repeat(string(rune('a'+i%26)), i%37+1)
		want = append(want, s)
		got = append(got, a.Intern([]byte(s)))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intern %d corrupted: %q != %q", i, got[i], want[i])
		}
	}
}
