// Package strarena provides a bump-pointer arena for short-lived result
// strings produced by hot UDF loops (lower/upper, concatenation,
// percent formatting). Each interned string costs an amortized fraction
// of one chunk allocation instead of its own heap object, which is
// where most of the per-row allocation count of string-heavy pipelines
// goes.
//
// Safety model: chunks are append-only. Intern copies the bytes to the
// chunk's tail and returns a string aliasing that region via
// unsafe.String; the region is never rewritten afterwards (a full chunk
// is abandoned to the garbage collector, never reset), so the aliasing
// string is as immutable as any other. Returned strings keep their
// chunk alive through normal GC liveness — an arena needs no explicit
// free and must never be Reset while interned strings are still
// reachable.
package strarena

import "unsafe"

// Chunk sizing: start small and double. Short-lived arenas (streamed
// ingest creates one frame set per chunk task) intern only a few
// strings each, so a fixed large quantum would strand most of its
// capacity; long-lived arenas quickly reach maxChunk and amortize tens
// of thousands of strings per allocation.
const (
	minChunk = 1 << 10
	maxChunk = 64 << 10
)

// Arena interns strings into append-only chunks. The zero value is
// ready to use. Not safe for concurrent use; give each worker its own.
type Arena struct {
	buf  []byte
	next int // next chunk size
}

// grow abandons the current chunk and starts a fresh one with room for
// at least n bytes.
func (a *Arena) grow(n int) {
	c := a.next
	if c < minChunk {
		c = minChunk
	}
	if a.next < maxChunk {
		a.next = c * 2
	}
	if n > c {
		c = n
	}
	a.buf = make([]byte, 0, c)
}

// Intern copies b into the arena and returns it as a string without a
// per-string allocation.
func (a *Arena) Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		a.grow(len(b))
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	s := a.buf[off:]
	return unsafe.String(&s[0], len(b))
}

// Concat interns the concatenation of two strings.
func (a *Arena) Concat(x, y string) string {
	n := len(x) + len(y)
	if n == 0 {
		return ""
	}
	if len(a.buf)+n > cap(a.buf) {
		a.grow(n)
	}
	off := len(a.buf)
	a.buf = append(a.buf, x...)
	a.buf = append(a.buf, y...)
	s := a.buf[off:]
	return unsafe.String(&s[0], n)
}
