package pipelines

import (
	"strings"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
)

// Flights UDF sources (Appendix A.2).
const (
	FlightsCleanCode = `def cleanCode(t):
    if t["CancellationCode"] == 'A':
        return 'carrier'
    elif t["CancellationCode"] == 'B':
        return 'weather'
    elif t["CancellationCode"] == 'C':
        return 'national air system'
    elif t["CancellationCode"] == 'D':
        return 'security'
    else:
        return None
`
	FlightsDiverted = `def divertedUDF(row):
    diverted = row['Diverted']
    ccode = row['CancellationCode']
    if diverted:
        return 'diverted'
    else:
        if ccode:
            return ccode
        else:
            return 'None'
`
	FlightsFillInTimes = `def fillInTimesUDF(row):
    ACTUAL_ELAPSED_TIME = row['ActualElapsedTime']
    if row['DivReachedDest']:
        if float(row['DivReachedDest']) > 0:
            return float(row['DivActualElapsedTime'])
        else:
            return ACTUAL_ELAPSED_TIME
    else:
        return ACTUAL_ELAPSED_TIME
`
	FlightsExtractDefunctYear = `def extractDefunctYear(t):
    x = t['Description']
    desc = x[x.rfind('-') + 1:x.rfind(')')].strip()
    return int(desc) if len(desc) > 0 else None
`
	FlightsFilterDefunct = `def filterDefunctFlights(row):
    year = row['Year']
    airlineYearDefunct = row['AirlineYearDefunct']

    if airlineYearDefunct:
        return int(year) < int(airlineYearDefunct)
    else:
        return True
`
)

// FlightsNumericCols are cleaned with `int(x) if x else 0`.
var FlightsNumericCols = []string{
	"ActualElapsedTime", "AirTime", "ArrDelay",
	"CarrierDelay", "CrsElapsedTime",
	"DepDelay", "LateAircraftDelay", "NasDelay",
	"SecurityDelay", "TaxiIn", "TaxiOut", "WeatherDelay",
}

// FlightsOutputColumns is the final projection of Appendix A.2.
var FlightsOutputColumns = []string{
	"CarrierName", "CarrierCode", "FlightNumber",
	"Day", "Month", "Year", "DayOfWeek",
	"OriginCity", "OriginState", "OriginAirportIATACode", "OriginLongitude", "OriginLatitude",
	"OriginAltitude",
	"DestCity", "DestState", "DestAirportIATACode", "DestLongitude", "DestLatitude", "DestAltitude",
	"Distance",
	"CancellationReason", "Cancelled", "Diverted", "CrsArrTime", "CrsDepTime",
	"ActualElapsedTime", "AirTime", "ArrDelay",
	"CarrierDelay", "CrsElapsedTime",
	"DepDelay", "LateAircraftDelay", "NasDelay",
	"SecurityDelay", "TaxiIn", "TaxiOut", "WeatherDelay",
	"AirlineYearFounded", "AirlineYearDefunct",
}

// RenameBTSColumn converts BTS header spellings to the pipeline's
// CamelCase names: "".join(w.capitalize() for w in c.split('_')).
func RenameBTSColumn(c string) string {
	parts := strings.Split(c, "_")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "")
}

// FlightsInputs bundles the three source datasets.
type FlightsInputs struct {
	Perf     *tuplex.DataSet
	Carriers *tuplex.DataSet
	Airports *tuplex.DataSet
}

// FlightsSources opens the generated datasets from memory.
func FlightsSources(c *tuplex.Context, perf, carriers, airports []byte) FlightsInputs {
	return FlightsInputs{
		Perf:     c.CSV("", tuplex.CSVData(perf)),
		Carriers: c.CSV("", tuplex.CSVData(carriers)),
		Airports: c.CSV("", tuplex.CSVData(airports),
			tuplex.CSVHeader(false),
			tuplex.CSVDelimiter(':'),
			tuplex.CSVColumns(data.AirportColumns...),
			tuplex.CSVNullValues("", "N/a", "N/A")),
	}
}

// Flights builds the Appendix A.2 pipeline (three joins, heavy column
// renaming, sparse-null handling).
func Flights(in FlightsInputs) *tuplex.DataSet {
	df := in.Perf
	for _, c := range data.FlightPerfColumns() {
		df = df.RenameColumn(c, RenameBTSColumn(c))
	}
	df = df.
		WithColumn("OriginCity", tuplex.UDF("lambda x: x['OriginCityName'][:x['OriginCityName'].rfind(',')].strip()")).
		WithColumn("OriginState", tuplex.UDF("lambda x: x['OriginCityName'][x['OriginCityName'].rfind(',')+1:].strip()")).
		WithColumn("DestCity", tuplex.UDF("lambda x: x['DestCityName'][:x['DestCityName'].rfind(',')].strip()")).
		WithColumn("DestState", tuplex.UDF("lambda x: x['DestCityName'][x['DestCityName'].rfind(',')+1:].strip()")).
		MapColumn("CrsArrTime", tuplex.UDF("lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None")).
		MapColumn("CrsDepTime", tuplex.UDF("lambda x: '{:02}:{:02}'.format(int(x / 100), x % 100) if x else None")).
		WithColumn("CancellationCode", tuplex.UDF(FlightsCleanCode)).
		MapColumn("Diverted", tuplex.UDF("lambda x: True if x > 0 else False")).
		MapColumn("Cancelled", tuplex.UDF("lambda x: True if x > 0 else False")).
		WithColumn("CancellationReason", tuplex.UDF(FlightsDiverted)).
		WithColumn("ActualElapsedTime", tuplex.UDF(FlightsFillInTimes))

	carriers := in.Carriers.
		WithColumn("AirlineName", tuplex.UDF("lambda x: x['Description'][:x['Description'].rfind('(')].strip()")).
		WithColumn("AirlineYearFounded", tuplex.UDF("lambda x: int(x['Description'][x['Description'].rfind('(') + 1:x['Description'].rfind('-')])")).
		WithColumn("AirlineYearDefunct", tuplex.UDF(FlightsExtractDefunctYear))

	airports := in.Airports.
		MapColumn("AirportName", tuplex.UDF("lambda x: string.capwords(x)")).
		MapColumn("AirportCity", tuplex.UDF("lambda x: string.capwords(x)"))

	all := df.Join(carriers, "OpUniqueCarrier", "Code").
		LeftJoinPrefixed(airports, "Origin", "IATACode", "", "Origin").
		LeftJoinPrefixed(airports, "Dest", "IATACode", "", "Dest").
		MapColumn("Distance", tuplex.UDF("lambda x: x / 0.00062137119224")).
		MapColumn("AirlineName", tuplex.UDF(`lambda s: s.replace('Inc.', '') \
    .replace('LLC', '') \
    .replace('Co.', '').strip()`)).
		RenameColumn("OriginLongitudeDecimal", "OriginLongitude").
		RenameColumn("OriginLatitudeDecimal", "OriginLatitude").
		RenameColumn("DestLongitudeDecimal", "DestLongitude").
		RenameColumn("DestLatitudeDecimal", "DestLatitude").
		RenameColumn("OpUniqueCarrier", "CarrierCode").
		RenameColumn("OpCarrierFlNum", "FlightNumber").
		RenameColumn("DayOfMonth", "Day").
		RenameColumn("AirlineName", "CarrierName").
		RenameColumn("Origin", "OriginAirportIATACode").
		RenameColumn("Dest", "DestAirportIATACode").
		Filter(tuplex.UDF(FlightsFilterDefunct))

	for _, c := range FlightsNumericCols {
		all = all.MapColumn(c, tuplex.UDF("lambda x: int(x) if x else 0"))
	}
	return all.SelectColumns(FlightsOutputColumns...)
}
