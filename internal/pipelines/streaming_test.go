package pipelines

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
)

// The streamed ingest path must be observationally identical to the
// materialized one: same rows, same order, same rendered CSV (including
// exception-row splicing). Each Appendix-A pipeline runs under three
// ingest configurations over on-disk files — materialized, streamed with
// tiny chunks (forcing many record-boundary seams), and streamed with
// tiny chunks across several executors — and all must agree byte for
// byte.

func writeTemp(t *testing.T, name string, b []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

var ingestConfigs = []struct {
	name string
	opts []tuplex.Option
}{
	{"materialized", []tuplex.Option{tuplex.WithStreamingIngest(false)}},
	{"streamed-1x", []tuplex.Option{tuplex.WithChunkSize(8 << 10)}},
	{"streamed-4x", []tuplex.Option{tuplex.WithChunkSize(8 << 10), tuplex.WithExecutors(4)}},
}

func rowStrings(rows []tuplex.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint([]any(r))
	}
	return out
}

func requireSameRows(t *testing.T, name string, base, got []string) {
	t.Helper()
	if len(got) != len(base) {
		t.Fatalf("%s: %d rows, materialized %d", name, len(got), len(base))
	}
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("%s: row %d differs:\n  got  %s\n  want %s", name, i, got[i], base[i])
		}
	}
}

func TestStreamingZillowMatchesMaterialized(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 3000, Seed: 42, DirtyFraction: 0.02})
	path := writeTemp(t, "zillow.csv", raw)
	var baseRows []string
	var baseCSV []byte
	for _, cfg := range ingestConfigs {
		c := tuplex.NewContext(cfg.opts...)
		res, err := Zillow(c.CSV(path)).Collect()
		if err != nil {
			t.Fatalf("%s collect: %v", cfg.name, err)
		}
		csvRes, err := Zillow(tuplex.NewContext(cfg.opts...).CSV(path)).ToCSV("")
		if err != nil {
			t.Fatalf("%s tocsv: %v", cfg.name, err)
		}
		rows := rowStrings(res.Rows)
		if baseRows == nil {
			baseRows, baseCSV = rows, csvRes.CSV
			continue
		}
		requireSameRows(t, cfg.name, baseRows, rows)
		if !bytes.Equal(csvRes.CSV, baseCSV) {
			t.Fatalf("%s: rendered CSV differs from materialized", cfg.name)
		}
	}
}

func TestStreamingFlightsMatchesMaterialized(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 4000, Seed: 11, DivertedFraction: 0.05})
	// Split the performance data into two files (each with its own
	// header) to exercise multi-file streaming: the chunk carry must
	// never cross a file boundary.
	recs := bytes.SplitAfter(perf, []byte("\n"))
	header := recs[0]
	mid := len(recs) / 2
	fileA := bytes.Join(recs[:mid], nil)
	fileB := append(append([]byte(nil), header...), bytes.Join(recs[mid:], nil)...)
	dir := t.TempDir()
	perfPath := filepath.Join(dir, "perf_a.csv") + "," + filepath.Join(dir, "perf_b.csv")
	if err := os.WriteFile(filepath.Join(dir, "perf_a.csv"), fileA, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "perf_b.csv"), fileB, 0o644); err != nil {
		t.Fatal(err)
	}
	carriersPath := writeTemp(t, "carriers.csv", data.Carriers())
	airportsPath := writeTemp(t, "airports.csv", data.Airports())

	var base []string
	for _, cfg := range ingestConfigs {
		c := tuplex.NewContext(cfg.opts...)
		in := FlightsInputs{
			Perf:     c.CSV(perfPath),
			Carriers: c.CSV(carriersPath),
			Airports: c.CSV(airportsPath,
				tuplex.CSVHeader(false),
				tuplex.CSVDelimiter(':'),
				tuplex.CSVColumns(data.AirportColumns...),
				tuplex.CSVNullValues("", "N/a", "N/A")),
		}
		res, err := Flights(in).Collect()
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		rows := rowStrings(res.Rows)
		if base == nil {
			base = rows
			if len(base) == 0 {
				t.Fatal("materialized run produced no rows")
			}
			continue
		}
		requireSameRows(t, cfg.name, base, rows)
	}
}

func TestStreamingWeblogsMatchesMaterialized(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 4000, Seed: 5})
	logsPath := writeTemp(t, "access.log", logs)
	badPath := writeTemp(t, "bad_ips.csv", bad)
	// The pipeline anonymizes usernames with random.choice; the PRNG is
	// seeded per partition, so the random letters depend on partition
	// boundaries (which chunked ingest legitimately changes). Normalize
	// the random segment like TestWeblogsAllVariantsAgree does; all
	// other fields must match exactly.
	normalize := func(rows []tuplex.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			endpoint := r[3].(string)
			if strings.HasPrefix(endpoint, "/~") {
				j := strings.IndexByte(endpoint[2:], '/')
				if j < 0 {
					endpoint = "/~*"
				} else {
					endpoint = "/~*" + endpoint[2+j:]
				}
			}
			out[i] = fmt.Sprintf("%v|%v|%v|%v|%v|%v|%v", r[0], r[1], r[2], endpoint, r[4], r[5], r[6])
		}
		return out
	}
	var base []string
	for _, cfg := range ingestConfigs {
		c := tuplex.NewContext(cfg.opts...)
		res, err := Weblogs(c.Text(logsPath), c.CSV(badPath), WeblogStrip).Collect()
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		rows := normalize(res.Rows)
		if base == nil {
			base = rows
			if len(base) == 0 {
				t.Fatal("materialized run produced no rows")
			}
			continue
		}
		requireSameRows(t, cfg.name, base, rows)
	}
}

func TestStreamingThreeOneOneMatchesMaterialized(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 5000, Seed: 17})
	path := writeTemp(t, "311.csv", raw)
	var base []string
	for _, cfg := range ingestConfigs {
		c := tuplex.NewContext(cfg.opts...)
		res, err := ThreeOneOne(c.CSV(path)).Collect()
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		// Unique terminal: first-occurrence order must be preserved by
		// the streamed keys, so exact sequence equality is required.
		rows := rowStrings(res.Rows)
		if base == nil {
			base = rows
			continue
		}
		requireSameRows(t, cfg.name, base, rows)
	}
}

func TestStreamingQ6MatchesMaterialized(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 20000, Seed: 31})
	path := writeTemp(t, "lineitem.csv", raw)
	var base float64
	haveBase := false
	for _, cfg := range ingestConfigs {
		c := tuplex.NewContext(cfg.opts...)
		got, _, err := Q6(c.CSV(path))
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if !haveBase {
			base, haveBase = got, true
			if base == 0 {
				t.Fatal("degenerate Q6 (zero revenue)")
			}
			continue
		}
		if math.Abs(got-base) > 1e-9*math.Max(1, math.Abs(base)) {
			t.Fatalf("%s: revenue %.6f, materialized %.6f", cfg.name, got, base)
		}
	}
}

func TestStreamingIngestMetrics(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 2000, Seed: 9})
	path := writeTemp(t, "zillow.csv", raw)
	c := tuplex.NewContext(tuplex.WithChunkSize(8 << 10))
	res, err := Zillow(c.CSV(path)).Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if got := m.Ingest.BytesRead; got != int64(len(raw)) {
		t.Fatalf("BytesRead = %d, want %d", got, len(raw))
	}
	if m.Ingest.RecordsSplit == 0 {
		t.Fatal("RecordsSplit not counted")
	}
	if len(m.Stages) == 0 {
		t.Fatal("no per-stage ingest figures")
	}
	if m.Stages[0].Bytes != int64(len(raw)) || m.Stages[0].Records == 0 {
		t.Fatalf("stage0 ingest = %+v", m.Stages[0])
	}
	if m.Stages[0].RowsPerSec() <= 0 || m.Stages[0].MBPerSec() <= 0 {
		t.Fatalf("stage0 throughput = %+v", m.Stages[0])
	}
}
