package pipelines

import (
	tuplex "github.com/gotuplex/tuplex"
)

// WeblogLetters is the anonymization alphabet from Appendix A.3.
const WeblogLetters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

// WeblogRandomize is the username-anonymization UDF.
const WeblogRandomize = `def randomize_udf(x):
    return re_sub('^/~[^/]+', '/~' + ''.join([random_choice(LETTERS) for t in range(10)]), x)
`

// WeblogParseStrip is the natural-Python line parser (A.3.1).
const WeblogParseStrip = `def ParseWithStrip(x):
    y = x

    i = y.find(" ")
    ip = y[:i]
    y = y[i + 1:]

    i = y.find(" ")
    client_id = y[:i]
    y = y[i + 1:]

    i = y.find(" ")
    user_id = y[:i]
    y = y[i + 1:]

    i = y.find("]")
    date = y[:i][1:]
    y = y[i + 2:]

    y = y[y.find('"') + 1:]

    method = ""
    endpoint = ""
    protocol = ""
    failed = False
    if y.find(" ") < y.rfind('"'):
        i = y.find(" ")
        method = y[:i]
        y = y[i + 1:]

        i = y.find(" ")
        endpoint = y[:i]
        y = y[i + 1:]

        i = y.rfind('"')
        protocol = y[:i]
        protocol = protocol[protocol.rfind(" ") + 1:]
        y = y[i + 2:]
    else:
        failed = True
        i = y.rfind('"')
        y = y[i + 2:]

    i = y.find(" ")
    response_code = y[:i]
    content_size = y[i + 1:]

    if not failed:
        return {"ip": ip,
                "client_id": client_id,
                "user_id": user_id,
                "date": date,
                "method": method,
                "endpoint": endpoint,
                "protocol": protocol,
                "response_code": int(response_code),
                "content_size": 0 if content_size == '-' else int(content_size)}
    else:
        return {"ip": "",
                "client_id": "",
                "user_id": "",
                "date": "",
                "method": "",
                "endpoint": "",
                "protocol": "",
                "response_code": -1,
                "content_size": -1}
`

// WeblogParseRegex is the single-regex parser (A.3.3).
const WeblogParseRegex = `def ParseWithRegex(logline):
    match = re_search('^(\S+) (\S+) (\S+) \[([\w:/]+\s[+\-]\d{4})\] "(\S+) (\S+)\s*(\S*)\s*" (\d{3}) (\S+)', logline)
    if(match):
        return {"ip": match[1],
                "client_id": match[2],
                "user_id": match[3],
                "date": match[4],
                "method": match[5],
                "endpoint": match[6],
                "protocol": match[7],
                "response_code": int(match[8]),
                "content_size": 0 if match[9] == '-' else int(match[9])}
    else:
        return {"ip": '',
                "client_id": '',
                "user_id": '',
                "date": '',
                "method": '',
                "endpoint": '',
                "protocol": '',
                "response_code": -1,
                "content_size": -1}
`

// WeblogOutputColumns is the final projection.
var WeblogOutputColumns = []string{
	"ip", "date", "method", "endpoint", "protocol", "response_code", "content_size",
}

// WeblogVariant selects the line-splitting strategy of Fig. 5.
type WeblogVariant int

const (
	// WeblogStrip uses natural Python string operations.
	WeblogStrip WeblogVariant = iota
	// WeblogSplit uses the per-field split() pipeline (A.3.2).
	WeblogSplit
	// WeblogRegex uses a single regular expression (A.3.3).
	WeblogRegex
	// WeblogPerColRegex extracts each field with its own regular
	// expression (the only form PySparkSQL's regexp_extract supports —
	// Fig. 5's "per-column regex" group).
	WeblogPerColRegex
)

func (v WeblogVariant) String() string {
	switch v {
	case WeblogStrip:
		return "strip"
	case WeblogSplit:
		return "split"
	case WeblogPerColRegex:
		return "per-column regex"
	default:
		return "single regex"
	}
}

// perColField builds one per-column extraction UDF.
func perColField(pattern string) tuplex.UDFDef {
	return tuplex.UDF(`def extract(x):
    m = re_search('` + pattern + `', x['logline'])
    if m:
        return m[1]
    return ''
`)
}

// weblogPerColRegex builds the per-column-regex parse.
func weblogPerColRegex(logs *tuplex.DataSet) *tuplex.DataSet {
	df := logs.Map(tuplex.UDF("lambda x: {'logline': x}"))
	fields := []struct{ col, pattern string }{
		{"ip", `^(\S+)`},
		{"date", `\[([\w:/]+\s[+\-]\d{4})\]`},
		{"method", `"(\S+) \S+\s*\S*\s*"`},
		{"endpoint", `"\S+ (\S+)\s*\S*\s*"`},
		{"protocol", `"\S+ \S+\s*(\S*)\s*"`},
	}
	for _, f := range fields {
		df = df.WithColumn(f.col, perColField(f.pattern))
	}
	df = df.WithColumn("response_code", tuplex.UDF(`def extract(x):
    m = re_search(' (\d{3}) ', x['logline'])
    if m:
        return int(m[1])
    return -1
`))
	df = df.WithColumn("content_size", tuplex.UDF(`def extract(x):
    m = re_search(' (\S+)$', x['logline'])
    if m:
        return 0 if m[1] == '-' else int(m[1])
    return -1
`))
	return df
}

// Weblogs builds the Appendix A.3 pipeline over a text source of raw log
// lines and the bad-IP CSV.
func Weblogs(logs *tuplex.DataSet, badIPs *tuplex.DataSet, variant WeblogVariant) *tuplex.DataSet {
	randomize := tuplex.UDF(WeblogRandomize).WithGlobal("LETTERS", WeblogLetters)
	var df *tuplex.DataSet
	switch variant {
	case WeblogStrip:
		df = logs.Map(tuplex.UDF(WeblogParseStrip)).
			MapColumn("endpoint", randomize)
	case WeblogPerColRegex:
		df = weblogPerColRegex(logs).
			Filter(tuplex.UDF("lambda x: len(x['ip']) > 0")).
			MapColumn("endpoint", randomize)
	case WeblogSplit:
		df = logs.
			Map(tuplex.UDF("lambda x: {'logline': x}")).
			WithColumn("cols", tuplex.UDF("lambda x: x['logline'].split(' ')")).
			WithColumn("ip", tuplex.UDF("lambda x: x['cols'][0].strip()")).
			WithColumn("client_id", tuplex.UDF("lambda x: x['cols'][1].strip()")).
			WithColumn("user_id", tuplex.UDF("lambda x: x['cols'][2].strip()")).
			WithColumn("date", tuplex.UDF("lambda x: x['cols'][3] + \" \" + x['cols'][4]")).
			MapColumn("date", tuplex.UDF("lambda x: x.strip()")).
			MapColumn("date", tuplex.UDF("lambda x: x[1:-1]")).
			WithColumn("method", tuplex.UDF("lambda x: x['cols'][5].strip()")).
			MapColumn("method", tuplex.UDF("lambda x: x[1:]")).
			WithColumn("endpoint", tuplex.UDF("lambda x: x['cols'][6].strip()")).
			WithColumn("protocol", tuplex.UDF("lambda x: x['cols'][7].strip()")).
			MapColumn("protocol", tuplex.UDF("lambda x: x[:-1]")).
			WithColumn("response_code", tuplex.UDF("lambda x: int(x['cols'][8].strip())")).
			WithColumn("content_size", tuplex.UDF("lambda x: x['cols'][9].strip()")).
			MapColumn("content_size", tuplex.UDF("lambda x: 0 if x == '-' else int(x)")).
			Filter(tuplex.UDF("lambda x: len(x['endpoint']) > 0")).
			MapColumn("endpoint", randomize)
	default:
		df = logs.Map(tuplex.UDF(WeblogParseRegex)).
			MapColumn("endpoint", randomize)
	}
	return df.Join(badIPs, "ip", "BadIPs").
		SelectColumns(WeblogOutputColumns...)
}
