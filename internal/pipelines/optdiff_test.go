package pipelines

import (
	"fmt"
	"math"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
)

// The compiler optimizations (dead-branch pruning, constant folding,
// check elision — all driven by internal/dataflow) specialize the
// compiled normal path on sampled facts, with runtime guards bouncing
// non-conforming rows to the general path. They must therefore be
// invisible end to end: identical output rows, identical failed and
// ignored row counts, on every evaluation pipeline.

// optDiffRun executes one pipeline with compiler optimizations toggled
// and asserts byte-identical outputs and identical exception accounting.
func optDiffRun(t *testing.T, name string, run func(opt bool) *tuplex.Result) {
	t.Helper()
	on := run(true)
	off := run(false)
	if len(on.Rows) != len(off.Rows) {
		t.Fatalf("%s: optimized %d rows, unoptimized %d", name, len(on.Rows), len(off.Rows))
	}
	for i := range on.Rows {
		if fmt.Sprint(on.Rows[i]) != fmt.Sprint(off.Rows[i]) {
			t.Fatalf("%s: row %d differs:\n  optimized   %v\n  unoptimized %v",
				name, i, on.Rows[i], off.Rows[i])
		}
	}
	if string(on.CSV) != string(off.CSV) {
		t.Fatalf("%s: CSV output differs", name)
	}
	cOn, cOff := on.Metrics.Rows, off.Metrics.Rows
	if cOn.Failed != cOff.Failed || cOn.Ignored != cOff.Ignored || cOn.Output != cOff.Output {
		t.Fatalf("%s: exception accounting differs:\n  optimized   failed=%d ignored=%d output=%d\n  unoptimized failed=%d ignored=%d output=%d",
			name, cOn.Failed, cOn.Ignored, cOn.Output, cOff.Failed, cOff.Ignored, cOff.Output)
	}
	if len(on.Failed) != len(off.Failed) {
		t.Fatalf("%s: failed-row lists differ: %d vs %d", name, len(on.Failed), len(off.Failed))
	}
}

func ctxOpt(opt bool, extra ...tuplex.Option) *tuplex.Context {
	opts := append([]tuplex.Option{tuplex.WithCompilerOptimizations(opt)}, extra...)
	return tuplex.NewContext(opts...)
}

func TestOptDiffZillow(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 2000, Seed: 123, DirtyFraction: 0.03})
	optDiffRun(t, "zillow", func(opt bool) *tuplex.Result {
		res, err := Zillow(ctxOpt(opt).CSV("", tuplex.CSVData(raw))).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestOptDiffFlights(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 3000, Seed: 321})
	optDiffRun(t, "flights", func(opt bool) *tuplex.Result {
		in := FlightsSources(ctxOpt(opt), perf, data.Carriers(), data.Airports())
		res, err := Flights(in).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestOptDiffWeblogs(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 2500, Seed: 77})
	for _, variant := range []WeblogVariant{WeblogStrip, WeblogSplit, WeblogRegex} {
		optDiffRun(t, "weblogs/"+variant.String(), func(opt bool) *tuplex.Result {
			// A fixed seed pins the endpoint randomization so both runs
			// compute the same rows.
			c := ctxOpt(opt, tuplex.WithSeed(4242))
			res, err := Weblogs(
				c.Text("", tuplex.TextData(logs)),
				c.CSV("", tuplex.CSVData(bad)),
				variant).Collect()
			if err != nil {
				t.Fatalf("%v: %v", variant, err)
			}
			return res
		})
	}
}

func TestOptDiffThreeOneOne(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 4000, Seed: 55})
	optDiffRun(t, "311", func(opt bool) *tuplex.Result {
		res, err := ThreeOneOne(ctxOpt(opt).CSV("", tuplex.CSVData(raw))).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestOptDiffQ6(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 8000, Seed: 99})
	var revenue [2]float64
	optDiffRun(t, "q6", func(opt bool) *tuplex.Result {
		v, res, err := Q6(ctxOpt(opt).CSV("", tuplex.CSVData(raw)))
		if err != nil {
			t.Fatal(err)
		}
		if opt {
			revenue[0] = v
		} else {
			revenue[1] = v
		}
		return res
	})
	if math.Abs(revenue[0]-revenue[1]) > 1e-9*math.Max(1, math.Abs(revenue[1])) {
		t.Fatalf("q6 revenue differs: optimized %.6f, unoptimized %.6f", revenue[0], revenue[1])
	}
}
