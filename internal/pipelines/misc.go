package pipelines

import (
	"fmt"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
)

// ThreeOneOneFixZip is the pandas-cookbook zip normalization: truncate
// ZIP+4, strip float-ified spellings, reject placeholders.
const ThreeOneOneFixZip = `def fix_zip_codes(zip):
    if not zip:
        return None
    s = str(zip)
    if s.find('.') >= 0:
        s = s[:s.find('.')]
    if s.find('-') >= 0:
        s = s[:s.find('-')]
    if len(s) != 5:
        return None
    if s == '00000':
        return None
    if not s.isdigit():
        return None
    return s
`

// ThreeOneOne builds the 311 cleaning query: normalize zips, drop
// invalid ones, return the unique set (§6.1 "311 and TPC-H Q6").
func ThreeOneOne(ds *tuplex.DataSet) *tuplex.DataSet {
	return ds.
		SelectColumns("Incident Zip").
		MapColumn("Incident Zip", tuplex.UDF(ThreeOneOneFixZip)).
		Filter(tuplex.UDF("lambda x: x is not None")).
		Unique()
}

// Q6UDFs returns the aggregate and combiner UDFs (plus the initial
// accumulator) Q6 runs, so callers can attach them to a plan for
// static validation without executing anything.
func Q6UDFs() (agg, comb tuplex.UDFDef, initial any) {
	agg = tuplex.UDF(fmt.Sprintf(
		"lambda acc, r: acc + r['l_extendedprice'] * r['l_discount'] if (r['l_shipdate'] >= %d and r['l_shipdate'] < %d and 0.05 <= r['l_discount'] <= 0.07 and r['l_quantity'] < 24) else acc",
		data.Q6DateLo, data.Q6DateHi))
	comb = tuplex.UDF("lambda a, b: a + b")
	return agg, comb, 0.0
}

// Q6 runs TPC-H Q6 as a Tuplex aggregate: the revenue sum under the
// shipdate/discount/quantity predicates.
func Q6(ds *tuplex.DataSet) (float64, *tuplex.Result, error) {
	agg, comb, initial := Q6UDFs()
	v, res, err := ds.Aggregate(agg, comb, initial)
	if err != nil {
		return 0, res, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, res, fmt.Errorf("pipelines: Q6 result is %T, want float64", v)
	}
	return f, res, nil
}
