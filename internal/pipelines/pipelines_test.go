package pipelines

import (
	"fmt"
	"math"
	"strings"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
	"github.com/gotuplex/tuplex/internal/handopt"
)

func TestZillowMatchesHandOptimized(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 3000, Seed: 42, DirtyFraction: 0.01})
	c := tuplex.NewContext()
	res, err := Zillow(c.CSV("", tuplex.CSVData(raw))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.Zillow(raw)
	if len(res.Rows) != len(want) {
		t.Fatalf("tuplex %d rows, native %d rows", len(res.Rows), len(want))
	}
	for i, w := range want {
		got := res.Rows[i]
		if got[0] != w.URL || got[1] != w.Zipcode || got[3] != w.City ||
			got[5] != w.Bedrooms || got[6] != w.Bathrooms || got[7] != w.Sqft ||
			got[8] != w.Offer || got[9] != w.Type || got[10] != w.Price {
			t.Fatalf("row %d: tuplex %v, native %+v", i, got, w)
		}
	}
	// Dirty rows must appear in statistics, not as crashes.
	cnt := res.Metrics.Rows
	if cnt.ClassifierRejects+cnt.NormalPathExceptions == 0 {
		t.Fatal("expected some exception rows from the dirty fraction")
	}
	t.Logf("zillow metrics: %s", res.Metrics)
}

func TestZillowUnoptimizedMatchesOptimized(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 1200, Seed: 7, DirtyFraction: 0.02})
	run := func(opts ...tuplex.Option) []tuplex.Row {
		c := tuplex.NewContext(opts...)
		res, err := Zillow(c.CSV("", tuplex.CSVData(raw))).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	base := run()
	for name, opt := range map[string]tuplex.Option{
		"no-logical":      tuplex.WithoutLogicalOptimizations(),
		"no-fusion":       tuplex.WithoutStageFusion(),
		"no-compiler-opt": tuplex.WithoutCompilerOptimizations(),
		"no-null-opt":     tuplex.WithoutNullOptimization(),
		"parallel":        tuplex.WithExecutors(4),
	} {
		got := run(opt)
		if len(got) != len(base) {
			t.Fatalf("%s: %d rows vs %d", name, len(got), len(base))
		}
		for i := range got {
			if fmt.Sprint(got[i]) != fmt.Sprint(base[i]) {
				t.Fatalf("%s: row %d differs: %v vs %v", name, i, got[i], base[i])
			}
		}
	}
}

func TestFlightsPipelineRuns(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 4000, Seed: 11})
	in := FlightsSources(tuplex.NewContext(), perf, data.Carriers(), data.Airports())
	res, err := Flights(in).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no output rows")
	}
	if len(res.Columns) != len(FlightsOutputColumns) {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Column sanity on the first row.
	col := map[string]int{}
	for i, c := range res.Columns {
		col[c] = i
	}
	r0 := res.Rows[0]
	if name, ok := r0[col["CarrierName"]].(string); !ok || name == "" || strings.Contains(name, "Inc.") {
		t.Fatalf("CarrierName = %v (suffixes must be stripped)", r0[col["CarrierName"]])
	}
	if d, ok := r0[col["Distance"]].(float64); !ok || d < 100000 {
		t.Fatalf("Distance = %v (must be converted to meters)", r0[col["Distance"]])
	}
	if _, ok := r0[col["Cancelled"]].(bool); !ok {
		t.Fatalf("Cancelled = %T", r0[col["Cancelled"]])
	}
	// CrsArrTime formatted as HH:MM.
	if s, ok := r0[col["CrsArrTime"]].(string); ok {
		if len(s) < 4 || !strings.Contains(s, ":") {
			t.Fatalf("CrsArrTime = %q", s)
		}
	}
	// Defunct-airline rows must be filtered: every Year < defunct year.
	for _, r := range res.Rows {
		if yd, ok := r[col["AirlineYearDefunct"]].(int64); ok {
			if y := r[col["Year"]].(int64); y >= yd {
				t.Fatalf("defunct airline row survived: year %d >= %d", y, yd)
			}
		}
	}
	t.Logf("flights: %d rows, metrics: %s", len(res.Rows), res.Metrics)
	// The diverted/cancelled generator knobs must produce general-case
	// rows, like §6.1.2's 2.6%.
	cnt := res.Metrics.Rows
	if cnt.ClassifierRejects == 0 {
		t.Fatal("expected diverted rows to leave the normal path")
	}
	if cnt.Failed > 0 {
		t.Fatalf("failed rows: %v", res.Failed[:min(3, len(res.Failed))])
	}
}

func TestFlightsDivertedRowsUseActualDivertedTime(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 3000, Seed: 3, DivertedFraction: 0.05})
	in := FlightsSources(tuplex.NewContext(), perf, data.Carriers(), data.Airports())
	res, err := Flights(in).Collect()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, c := range res.Columns {
		col[c] = i
	}
	sawDiverted := false
	for _, r := range res.Rows {
		if d, ok := r[col["Diverted"]].(bool); ok && d {
			sawDiverted = true
			if r[col["CancellationReason"]] != "diverted" {
				t.Fatalf("diverted row reason = %v", r[col["CancellationReason"]])
			}
			// fillInTimesUDF must have used DIV_ACTUAL_ELAPSED_TIME,
			// which the generator always makes larger than the
			// scheduled elapsed time.
			aet := r[col["ActualElapsedTime"]].(int64)
			crs := r[col["CrsElapsedTime"]].(int64)
			if aet <= crs {
				t.Fatalf("diverted row kept scheduled time: actual %d <= crs %d", aet, crs)
			}
		}
	}
	if !sawDiverted {
		t.Fatal("no diverted rows in output")
	}
}

func TestWeblogsAllVariantsAgree(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 4000, Seed: 5})
	normalize := func(rows []tuplex.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			endpoint := r[3].(string)
			if strings.HasPrefix(endpoint, "/~") {
				j := strings.IndexByte(endpoint[2:], '/')
				if j < 0 {
					endpoint = "/~*"
				} else {
					endpoint = "/~*" + endpoint[2+j:]
				}
			}
			out[i] = fmt.Sprintf("%v|%v|%v|%v|%v|%v|%v", r[0], r[1], r[2], endpoint, r[4], r[5], r[6])
		}
		return out
	}
	var results [][]string
	for _, variant := range []WeblogVariant{WeblogStrip, WeblogSplit, WeblogRegex} {
		c := tuplex.NewContext(tuplex.WithSeed(99))
		res, err := Weblogs(
			c.Text("", tuplex.TextData(logs)),
			c.CSV("", tuplex.CSVData(bad)),
			variant).Collect()
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("%v: no rows", variant)
		}
		results = append(results, normalize(res.Rows))
		t.Logf("%v: %d rows, metrics: %s", variant, len(res.Rows), res.Metrics)
	}
	if fmt.Sprint(results[0]) != fmt.Sprint(results[2]) {
		t.Fatal("strip and regex variants disagree")
	}
	// The split variant never emits parse-failed rows (they die with
	// IndexError on the exception path), while strip/regex emit ip=''
	// rows that the join then drops — so all three agree on retained
	// rows.
	if fmt.Sprint(results[0]) != fmt.Sprint(results[1]) {
		t.Fatal("strip and split variants disagree")
	}
}

func TestWeblogsMatchesHandOptimized(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 3000, Seed: 21})
	c := tuplex.NewContext()
	res, err := Weblogs(c.Text("", tuplex.TextData(logs)), c.CSV("", tuplex.CSVData(bad)), WeblogStrip).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.Weblogs(logs, bad, 1)
	if len(res.Rows) != len(want) {
		t.Fatalf("tuplex %d rows, native %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		got := res.Rows[i]
		if got[0] != w.IP || got[1] != w.Date || got[2] != w.Method ||
			got[4] != w.Protocol || got[5] != w.ResponseCode || got[6] != w.ContentSize {
			t.Fatalf("row %d: %v vs %+v", i, got, w)
		}
	}
}

func TestThreeOneOneMatchesHandOptimized(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 5000, Seed: 17})
	c := tuplex.NewContext()
	res, err := ThreeOneOne(c.CSV("", tuplex.CSVData(raw))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.ThreeOneOne(raw)
	got := map[string]bool{}
	for _, r := range res.Rows {
		got[fmt.Sprint(r[0])] = true
	}
	if len(got) != len(want) {
		t.Fatalf("tuplex %d unique zips %v, native %d %v", len(got), res.Rows, len(want), want)
	}
	for _, z := range want {
		if !got[z] {
			t.Fatalf("missing zip %s", z)
		}
	}
	t.Logf("311: %d unique zips, metrics: %s", len(got), res.Metrics)
}

func TestQ6MatchesHandOptimized(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 20000, Seed: 31})
	c := tuplex.NewContext()
	got, res, err := Q6(c.CSV("", tuplex.CSVData(raw)))
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.Q6(raw, data.Q6DateLo, data.Q6DateHi)
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("tuplex %.4f, native %.4f", got, want)
	}
	if want == 0 {
		t.Fatal("degenerate Q6 (zero revenue)")
	}
	t.Logf("q6 revenue: %.2f, metrics: %s", got, res.Metrics)
}

func TestQ6Parallel(t *testing.T) {
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 20000, Seed: 31})
	c := tuplex.NewContext(tuplex.WithExecutors(4), tuplex.WithPartitionRows(2048))
	got, _, err := Q6(c.CSV("", tuplex.CSVData(raw)))
	if err != nil {
		t.Fatal(err)
	}
	want := handopt.Q6(raw, data.Q6DateLo, data.Q6DateHi)
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("parallel %.4f, native %.4f", got, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
