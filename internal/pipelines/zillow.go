// Package pipelines defines the paper's evaluation pipelines (Appendix
// A) verbatim as Tuplex pipelines, shared by the examples, the
// integration tests and the benchmark harness. The UDF bodies are the
// paper's Python, unchanged.
package pipelines

import (
	tuplex "github.com/gotuplex/tuplex"
)

// Zillow UDF sources (Appendix A.1).
const (
	ZillowExtractBd = `def extractBd(x):
    val = x['facts and features']
    max_idx = val.find(' bd')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	ZillowExtractBa = `def extractBa(x):
    val = x['facts and features']
    max_idx = val.find(' ba')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind(',')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 2
    r = s[split_idx:]
    return int(r)
`
	ZillowExtractSqft = `def extractSqft(x):
    val = x['facts and features']
    max_idx = val.find(' sqft')
    if max_idx < 0:
        max_idx = len(val)
    s = val[:max_idx]
    split_idx = s.rfind('ba ,')
    if split_idx < 0:
        split_idx = 0
    else:
        split_idx += 5
    r = s[split_idx:]
    r = r.replace(',', '')
    return int(r)
`
	ZillowExtractOffer = `def extractOffer(x):
    offer = x['title'].lower()
    if 'sale' in offer:
        return 'sale'
    if 'rent' in offer:
        return 'rent'
    if 'sold' in offer:
        return 'sold'
    if 'foreclose' in offer.lower():
        return 'foreclosed'
    return offer
`
	ZillowExtractType = `def extractType(x):
    t = x['title'].lower()
    type = 'unknown'
    if 'condo' in t or 'apartment' in t:
        type = 'condo'
    if 'house' in t:
        type = 'house'
    return type
`
	ZillowExtractPrice = `def extractPrice(x):
    price = x['price']
    p = 0
    if x['offer'] == 'sold':
        val = x['facts and features']
        s = val[val.find('Price/sqft:') + len('Price/sqft:') + 1:]
        r = s[s.find('$')+1:s.find(', ') - 1]
        price_per_sqft = int(r)
        p = price_per_sqft * x['sqft']
    elif x['offer'] == 'rent':
        max_idx = price.rfind('/')
        p = int(price[1:max_idx].replace(',', ''))
    else:
        p = int(price[1:].replace(',', ''))
    return p
`
)

// ZillowOutputColumns is the pipeline's final projection.
var ZillowOutputColumns = []string{
	"url", "zipcode", "address", "city", "state",
	"bedrooms", "bathrooms", "sqft", "offer", "type", "price",
}

// Zillow builds the Appendix A.1 pipeline over the given CSV source.
func Zillow(ds *tuplex.DataSet) *tuplex.DataSet {
	return ds.
		WithColumn("bedrooms", tuplex.UDF(ZillowExtractBd)).
		Filter(tuplex.UDF("lambda x: x['bedrooms'] < 10")).
		WithColumn("type", tuplex.UDF(ZillowExtractType)).
		Filter(tuplex.UDF("lambda x: x['type'] == 'house'")).
		WithColumn("zipcode", tuplex.UDF("lambda x: '%05d' % int(x['postal_code'])")).
		MapColumn("city", tuplex.UDF("lambda x: x[0].upper() + x[1:].lower()")).
		WithColumn("bathrooms", tuplex.UDF(ZillowExtractBa)).
		WithColumn("sqft", tuplex.UDF(ZillowExtractSqft)).
		WithColumn("offer", tuplex.UDF(ZillowExtractOffer)).
		WithColumn("price", tuplex.UDF(ZillowExtractPrice)).
		Filter(tuplex.UDF("lambda x: 100000 < x['price'] < 2e7")).
		SelectColumns(ZillowOutputColumns...)
}
