package pipelines

import (
	"math"
	"testing"

	tuplex "github.com/gotuplex/tuplex"
	"github.com/gotuplex/tuplex/internal/data"
)

// The columnar batch data plane (column-vector partitions, vectorized
// CSV ingest, batch UDF kernels with selection vectors) is a pure
// execution-strategy choice: it must be invisible end to end. These
// differentials run every paper pipeline twice — columnar on and off —
// over dirty data and require byte-identical CSV output and identical
// row accounting (output/failed/ignored), the same contract the
// compiler-optimization differentials enforce.

// colDiffCSV runs one CSV-sink pipeline in both execution modes and
// compares bytes and accounting.
func colDiffCSV(t *testing.T, name string, run func(col bool) *tuplex.Result) {
	t.Helper()
	on := run(true)
	off := run(false)
	if string(on.CSV) != string(off.CSV) {
		a, b := on.CSV, off.CSV
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo, hiA, hiB := max(0, i-40), min(len(a), i+40), min(len(b), i+40)
		t.Fatalf("%s: CSV differs at byte %d:\n  columnar %q\n  boxed    %q",
			name, i, a[lo:hiA], b[lo:hiB])
	}
	cOn, cOff := on.Metrics.Rows, off.Metrics.Rows
	if cOn.Failed != cOff.Failed || cOn.Ignored != cOff.Ignored || cOn.Output != cOff.Output {
		t.Fatalf("%s: row accounting differs:\n  columnar failed=%d ignored=%d output=%d\n  boxed    failed=%d ignored=%d output=%d",
			name, cOn.Failed, cOn.Ignored, cOn.Output, cOff.Failed, cOff.Ignored, cOff.Output)
	}
	if len(on.Failed) != len(off.Failed) {
		t.Fatalf("%s: failed-row lists differ: %d vs %d", name, len(on.Failed), len(off.Failed))
	}
}

func ctxCol(col bool, extra ...tuplex.Option) *tuplex.Context {
	opts := append([]tuplex.Option{tuplex.WithColumnarExecution(col)}, extra...)
	return tuplex.NewContext(opts...)
}

func TestColumnarDiffZillow(t *testing.T) {
	raw := data.Zillow(data.ZillowConfig{Rows: 2000, Seed: 123, DirtyFraction: 0.03})
	colDiffCSV(t, "zillow", func(col bool) *tuplex.Result {
		res, err := Zillow(ctxCol(col).CSV("", tuplex.CSVData(raw))).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestColumnarDiffZillowStreamed(t *testing.T) {
	// Small chunks force many batch seams; streamed and materialized
	// must both be mode-invariant.
	raw := data.Zillow(data.ZillowConfig{Rows: 3000, Seed: 7, DirtyFraction: 0.05})
	colDiffCSV(t, "zillow/streamed", func(col bool) *tuplex.Result {
		c := ctxCol(col, tuplex.WithChunkSize(8<<10))
		res, err := Zillow(c.CSV("", tuplex.CSVData(raw))).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestColumnarDiffFlights(t *testing.T) {
	perf := data.Flights(data.FlightsConfig{Rows: 3000, Seed: 321})
	colDiffCSV(t, "flights", func(col bool) *tuplex.Result {
		in := FlightsSources(ctxCol(col), perf, data.Carriers(), data.Airports())
		res, err := Flights(in).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestColumnarDiffWeblogs(t *testing.T) {
	logs, bad := data.Weblogs(data.WeblogConfig{Rows: 2500, Seed: 77})
	for _, variant := range []WeblogVariant{WeblogStrip, WeblogSplit, WeblogRegex} {
		colDiffCSV(t, "weblogs/"+variant.String(), func(col bool) *tuplex.Result {
			// A fixed seed pins the endpoint randomization so both
			// modes compute the same rows.
			c := ctxCol(col, tuplex.WithSeed(4242))
			res, err := Weblogs(
				c.Text("", tuplex.TextData(logs)),
				c.CSV("", tuplex.CSVData(bad)),
				variant).ToCSV("")
			if err != nil {
				t.Fatalf("%v: %v", variant, err)
			}
			return res
		})
	}
}

func TestColumnarDiffThreeOneOne(t *testing.T) {
	raw := data.ThreeOneOne(data.ThreeOneOneConfig{Rows: 4000, Seed: 55})
	colDiffCSV(t, "311", func(col bool) *tuplex.Result {
		res, err := ThreeOneOne(ctxCol(col).CSV("", tuplex.CSVData(raw))).ToCSV("")
		if err != nil {
			t.Fatal(err)
		}
		return res
	})
}

func TestColumnarDiffQ6(t *testing.T) {
	// Q6 is an aggregate: compare the scalar and the accounting instead
	// of CSV bytes.
	raw := data.TPCHLineitem(data.TPCHConfig{Rows: 8000, Seed: 99})
	var revenue [2]float64
	var metrics [2]tuplex.RowCounts
	for i, col := range []bool{true, false} {
		v, res, err := Q6(ctxCol(col).CSV("", tuplex.CSVData(raw)))
		if err != nil {
			t.Fatal(err)
		}
		revenue[i] = v
		metrics[i] = res.Metrics.Rows
	}
	if math.Abs(revenue[0]-revenue[1]) > 1e-9*math.Max(1, math.Abs(revenue[1])) {
		t.Fatalf("q6 revenue differs: columnar %.6f, boxed %.6f", revenue[0], revenue[1])
	}
	if metrics[0] != metrics[1] {
		t.Fatalf("q6 accounting differs: columnar %+v, boxed %+v", metrics[0], metrics[1])
	}
}
