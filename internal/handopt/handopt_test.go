package handopt

import (
	"strings"
	"testing"
)

func TestZillowNativeBasics(t *testing.T) {
	csv := strings.Join([]string{
		"title,address,city,state,postal_code,price,facts and features,real estate provider,url,sales_date",
		`House For Sale - 3 bed,1 Main St,boston,MA,2134,"$450,000","3 bds, 2 ba , 1,500 sqft",X,u1,2019-01-01`,
		`Condo For Rent,2 Elm St,cambridge,MA,2139,"$2,000/mo","1 bds, 1 ba , 700 sqft",X,u2,2019-01-02`,
		`House For Sold,3 Oak St,newton,MA,2460,"$1","2 bds, 1 ba , 1,000 sqft Price/sqft: $300 , built 1990",X,u3,2019-01-03`,
		`House For Sale - big,4 Pine St,quincy,MA,2169,"$900,000","12 bds, 6 ba , 9,000 sqft",X,u4,2019-01-04`,
	}, "\n") + "\n"
	rows := Zillow([]byte(csv))
	// Row 1: house for sale, 3bd, price 450000 -> kept.
	// Row 2: condo -> dropped (type filter).
	// Row 3: house sold, 300*1000 = 300000 -> kept.
	// Row 4: 12 bedrooms -> dropped.
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Price != 450000 || rows[0].City != "Boston" || rows[0].Zipcode != "02134" {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Price != 300000 || rows[1].Offer != "sold" {
		t.Fatalf("row1 = %+v", rows[1])
	}
	out := ZillowCSV([]byte(csv))
	if !strings.HasPrefix(string(out), "url,zipcode,") || strings.Count(string(out), "\n") != 3 {
		t.Fatalf("csv = %q", out)
	}
}

func TestParseLogLineNative(t *testing.T) {
	row, ok := parseLogLine(`1.2.3.4 - alice [10/Oct/2019:13:55:36 -0400] "GET /~bob/x.pdf HTTP/1.0" 200 2326`)
	if !ok {
		t.Fatal("parse failed")
	}
	if row.IP != "1.2.3.4" || row.Method != "GET" || row.Endpoint != "/~bob/x.pdf" ||
		row.Protocol != "HTTP/1.0" || row.ResponseCode != 200 || row.ContentSize != 2326 {
		t.Fatalf("row = %+v", row)
	}
	if _, ok := parseLogLine("garbage"); ok {
		t.Fatal("garbage parsed")
	}
	// Dash content size maps to 0.
	row, ok = parseLogLine(`1.2.3.4 - - [10/Oct/2019:13:55:36 -0400] "HEAD /x HTTP/1.1" 304 -`)
	if !ok || row.ContentSize != 0 {
		t.Fatalf("row = %+v ok=%v", row, ok)
	}
}

func TestFixZipNative(t *testing.T) {
	cases := map[string]string{
		"02134":      "02134",
		"02134-1234": "02134",
		"10001.0":    "10001",
		"00000":      "",
		"NO CLUE":    "",
		"":           "",
		"123":        "",
	}
	for in, want := range cases {
		got, ok := fixZip(in)
		if want == "" {
			if ok {
				t.Errorf("fixZip(%q) accepted as %q", in, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("fixZip(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
}

func TestQ6Native(t *testing.T) {
	csv := "l_quantity,l_extendedprice,l_discount,l_shipdate\n" +
		"10,100.00,0.06,800\n" + // qualifies: 6.0
		"30,100.00,0.06,800\n" + // qty too high
		"10,100.00,0.02,800\n" + // discount too low
		"10,100.00,0.06,100\n" // out of window
	got := Q6([]byte(csv), 731, 1096)
	if got != 6.0 {
		t.Fatalf("Q6 = %v", got)
	}
}
