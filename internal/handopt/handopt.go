// Package handopt contains hand-optimized native implementations of the
// evaluation pipelines, written directly against raw bytes with no
// interpreter, no boxing and no genericity. They play the role of the
// paper's hand-optimized C++ baseline (§6.1: "comes within 22% of a
// hand-optimized C++ baseline") and double as correctness oracles for
// the Tuplex pipelines in tests.
package handopt

import (
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
)

// ZillowRow is one output row of the hand-optimized Zillow pipeline.
type ZillowRow struct {
	URL, Zipcode, Address, City, State string
	Bedrooms, Bathrooms, Sqft          int64
	Offer, Type                        string
	Price                              int64
}

// Zillow runs the Zillow pipeline natively over the CSV bytes. Rows that
// would raise in Python are skipped (the cleaned-data assumption the
// paper's C++ baseline makes).
func Zillow(data []byte) []ZillowRow {
	records := csvio.SplitRecords(data)
	if len(records) == 0 {
		return nil
	}
	header := csvio.SplitCells(records[0], ',', nil)
	idx := map[string]int{}
	for i, h := range header {
		idx[h] = i
	}
	iTitle, iAddress, iCity, iState := idx["title"], idx["address"], idx["city"], idx["state"]
	iPostal, iPrice, iFacts, iURL := idx["postal_code"], idx["price"], idx["facts and features"], idx["url"]

	var out []ZillowRow
	var cells []string
	for _, rec := range records[1:] {
		cells = csvio.SplitCells(rec, ',', cells)
		if len(cells) != len(header) {
			continue
		}
		facts := cells[iFacts]
		bd, ok := extractCount(facts, " bd")
		if !ok || bd >= 10 {
			continue
		}
		title := strings.ToLower(cells[iTitle])
		htype := "unknown"
		if strings.Contains(title, "condo") || strings.Contains(title, "apartment") {
			htype = "condo"
		}
		if strings.Contains(title, "house") {
			htype = "house"
		}
		if htype != "house" {
			continue
		}
		postal, err := strconv.ParseInt(strings.TrimSpace(cells[iPostal]), 10, 64)
		if err != nil {
			continue
		}
		city := cells[iCity]
		if len(city) > 0 {
			city = strings.ToUpper(city[:1]) + strings.ToLower(city[1:])
		} else {
			continue // x[0] raises IndexError in Python
		}
		ba, ok := extractCount(facts, " ba")
		if !ok {
			continue
		}
		sqft, ok := extractSqft(facts)
		if !ok {
			continue
		}
		offer := extractOffer(title)
		price, ok := extractPrice(cells[iPrice], offer, facts, sqft)
		if !ok {
			continue
		}
		if !(100000 < price && float64(price) < 2e7) {
			continue
		}
		out = append(out, ZillowRow{
			URL:      cells[iURL],
			Zipcode:  zeroPad5(postal),
			Address:  cells[iAddress],
			City:     city,
			State:    cells[iState],
			Bedrooms: bd, Bathrooms: ba, Sqft: sqft,
			Offer: offer, Type: htype, Price: price,
		})
	}
	return out
}

// ZillowCSV renders the native pipeline's output like tocsv.
func ZillowCSV(data []byte) []byte {
	rows := Zillow(data)
	var sb strings.Builder
	sb.Grow(len(rows) * 120)
	sb.WriteString("url,zipcode,address,city,state,bedrooms,bathrooms,sqft,offer,type,price\n")
	for i := range rows {
		r := &rows[i]
		sb.WriteString(r.URL)
		sb.WriteByte(',')
		sb.WriteString(r.Zipcode)
		sb.WriteByte(',')
		sb.WriteString(r.Address)
		sb.WriteByte(',')
		sb.WriteString(r.City)
		sb.WriteByte(',')
		sb.WriteString(r.State)
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(r.Bedrooms, 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(r.Bathrooms, 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(r.Sqft, 10))
		sb.WriteByte(',')
		sb.WriteString(r.Offer)
		sb.WriteByte(',')
		sb.WriteString(r.Type)
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(r.Price, 10))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// extractCount implements the extractBd/extractBa logic natively.
func extractCount(facts, marker string) (int64, bool) {
	maxIdx := strings.Index(facts, marker)
	if maxIdx < 0 {
		maxIdx = len(facts)
	}
	s := facts[:maxIdx]
	splitIdx := strings.LastIndexByte(s, ',')
	if splitIdx < 0 {
		splitIdx = 0
	} else {
		splitIdx += 2
	}
	if splitIdx > len(s) {
		return 0, false
	}
	return parsePyInt(s[splitIdx:])
}

func extractSqft(facts string) (int64, bool) {
	maxIdx := strings.Index(facts, " sqft")
	if maxIdx < 0 {
		maxIdx = len(facts)
	}
	s := facts[:maxIdx]
	splitIdx := strings.LastIndex(s, "ba ,")
	if splitIdx < 0 {
		splitIdx = 0
	} else {
		splitIdx += 5
	}
	if splitIdx > len(s) {
		return 0, false
	}
	return parsePyInt(strings.ReplaceAll(s[splitIdx:], ",", ""))
}

func extractOffer(lowerTitle string) string {
	switch {
	case strings.Contains(lowerTitle, "sale"):
		return "sale"
	case strings.Contains(lowerTitle, "rent"):
		return "rent"
	case strings.Contains(lowerTitle, "sold"):
		return "sold"
	case strings.Contains(lowerTitle, "foreclose"):
		return "foreclosed"
	default:
		return lowerTitle
	}
}

func extractPrice(price, offer, facts string, sqft int64) (int64, bool) {
	switch offer {
	case "sold":
		marker := "Price/sqft:"
		i := strings.Index(facts, marker)
		start := i + len(marker) + 1
		if i < 0 || start > len(facts) {
			return 0, false
		}
		s := facts[start:]
		d := strings.IndexByte(s, '$')
		e := strings.Index(s, ", ")
		if d < 0 || e-1 < d+1 {
			return 0, false
		}
		pps, ok := parsePyInt(s[d+1 : e-1])
		if !ok {
			return 0, false
		}
		return pps * sqft, true
	case "rent":
		maxIdx := strings.LastIndexByte(price, '/')
		if maxIdx < 1 || len(price) < 1 {
			return 0, false
		}
		return parsePyInt(strings.ReplaceAll(price[1:maxIdx], ",", ""))
	default:
		if len(price) < 1 {
			return 0, false
		}
		return parsePyInt(strings.ReplaceAll(price[1:], ",", ""))
	}
}

// parsePyInt parses like Python's int(str).
func parsePyInt(s string) (int64, bool) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func zeroPad5(n int64) string {
	s := strconv.FormatInt(n, 10)
	for len(s) < 5 {
		s = "0" + s
	}
	return s
}
