package handopt

import (
	"strconv"
	"strings"

	"github.com/gotuplex/tuplex/internal/csvio"
	"github.com/gotuplex/tuplex/internal/pyre"
)

// WeblogRow is one parsed, retained log line.
type WeblogRow struct {
	IP, Date, Method, Endpoint, Protocol string
	ResponseCode, ContentSize            int64
}

// Weblogs runs the log pipeline natively: parse with string ops, replace
// /~user with a random tag, keep lines from blacklisted IPs.
func Weblogs(logs, badIPs []byte, seed uint64) []WeblogRow {
	bad := map[string]bool{}
	recs := csvio.SplitRecords(badIPs)
	for _, r := range recs[1:] {
		bad[string(r)] = true
	}
	rng := pyre.NewPRNG(seed)
	var out []WeblogRow
	start := 0
	for start <= len(logs) {
		end := start
		for end < len(logs) && logs[end] != '\n' {
			end++
		}
		if end > start {
			line := string(logs[start:end])
			if row, ok := parseLogLine(line); ok && bad[row.IP] {
				row.Endpoint = anonymize(row.Endpoint, rng)
				out = append(out, row)
			} else if !ok {
				// Failed parse with empty ip: joins never match; drop.
				_ = row
			}
		}
		if end >= len(logs) {
			break
		}
		start = end + 1
	}
	return out
}

const anonLetters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

func anonymize(endpoint string, rng *pyre.PRNG) string {
	if !strings.HasPrefix(endpoint, "/~") {
		return endpoint
	}
	i := 2
	for i < len(endpoint) && endpoint[i] != '/' {
		i++
	}
	var sb strings.Builder
	sb.WriteString("/~")
	for range 10 {
		sb.WriteString(rng.Choice(anonLetters))
	}
	sb.WriteString(endpoint[i:])
	return sb.String()
}

// parseLogLine mirrors ParseWithStrip.
func parseLogLine(y string) (WeblogRow, bool) {
	var row WeblogRow
	next := func(sep string) (string, bool) {
		i := strings.Index(y, sep)
		if i < 0 {
			return "", false
		}
		v := y[:i]
		y = y[i+len(sep):]
		return v, true
	}
	var ok bool
	if row.IP, ok = next(" "); !ok {
		return row, false
	}
	if _, ok = next(" "); !ok { // client_id
		return row, false
	}
	if _, ok = next(" "); !ok { // user_id
		return row, false
	}
	dateRaw, ok := next("]")
	if !ok || len(dateRaw) < 1 {
		return row, false
	}
	row.Date = dateRaw[1:]
	if len(y) < 1 {
		return row, false
	}
	y = y[1:] // space
	q := strings.IndexByte(y, '"')
	if q < 0 {
		return row, false
	}
	y = y[q+1:]
	sp := strings.IndexByte(y, ' ')
	rq := strings.LastIndexByte(y, '"')
	if sp < 0 || sp >= rq {
		return row, false
	}
	row.Method = y[:sp]
	y = y[sp+1:]
	sp = strings.IndexByte(y, ' ')
	if sp < 0 {
		return row, false
	}
	row.Endpoint = y[:sp]
	y = y[sp+1:]
	rq = strings.LastIndexByte(y, '"')
	if rq < 0 {
		return row, false
	}
	proto := y[:rq]
	if j := strings.LastIndexByte(proto, ' '); j >= 0 {
		proto = proto[j+1:]
	}
	row.Protocol = proto
	if rq+2 > len(y) {
		return row, false
	}
	y = y[rq+2:]
	sp = strings.IndexByte(y, ' ')
	if sp < 0 {
		return row, false
	}
	code, err := strconv.ParseInt(y[:sp], 10, 64)
	if err != nil {
		return row, false
	}
	row.ResponseCode = code
	sizeStr := y[sp+1:]
	if sizeStr == "-" {
		row.ContentSize = 0
	} else {
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil {
			return row, false
		}
		row.ContentSize = size
	}
	return row, true
}

// ThreeOneOne computes the unique cleaned zip codes natively.
func ThreeOneOne(data []byte) []string {
	records := csvio.SplitRecords(data)
	if len(records) == 0 {
		return nil
	}
	header := csvio.SplitCells(records[0], ',', nil)
	zipIdx := -1
	for i, h := range header {
		if h == "Incident Zip" {
			zipIdx = i
		}
	}
	if zipIdx < 0 {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	var cells []string
	for _, rec := range records[1:] {
		cells = csvio.SplitCells(rec, ',', cells)
		if zipIdx >= len(cells) {
			continue
		}
		z, ok := fixZip(cells[zipIdx])
		if !ok {
			continue
		}
		if !seen[z] {
			seen[z] = true
			out = append(out, z)
		}
	}
	return out
}

func fixZip(s string) (string, bool) {
	if s == "" {
		return "", false
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '-'); i >= 0 {
		s = s[:i]
	}
	if len(s) != 5 || s == "00000" {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return "", false
		}
	}
	return s, true
}

// Q6 computes TPC-H Q6 natively over the generated lineitem CSV (ship
// window [lo, hi), 0.05 <= discount <= 0.07, quantity < 24).
func Q6(data []byte, lo, hi int64) float64 {
	records := csvio.SplitRecords(data)
	revenue := 0.0
	var cells []string
	for _, rec := range records[1:] {
		cells = csvio.SplitCells(rec, ',', cells)
		if len(cells) != 4 {
			continue
		}
		qty, err1 := strconv.ParseInt(cells[0], 10, 64)
		price, err2 := strconv.ParseFloat(cells[1], 64)
		disc, err3 := strconv.ParseFloat(cells[2], 64)
		ship, err4 := strconv.ParseInt(cells[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			continue
		}
		if ship >= lo && ship < hi && disc >= 0.05 && disc <= 0.07 && qty < 24 {
			revenue += price * disc
		}
	}
	return revenue
}
