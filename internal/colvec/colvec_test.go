package colvec

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

func TestBitmap(t *testing.T) {
	var b Bitmap
	if b.Get(0) || b.Get(200) {
		t.Fatal("empty bitmap must read false")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(200)
	for _, i := range []int{0, 63, 64, 200} {
		if !b.Get(i) {
			t.Fatalf("bit %d lost", i)
		}
	}
	if b.Get(1) || b.Get(65) || b.Get(199) {
		t.Fatal("unset bits read true")
	}
	b.truncate(64)
	if b.Get(64) || b.Get(200) {
		t.Fatal("truncate(64) must clear bits >= 64")
	}
	if !b.Get(63) {
		t.Fatal("truncate(64) must keep bit 63")
	}
	b.Reset()
	if b.Get(0) || b.Get(63) {
		t.Fatal("reset must clear everything")
	}
}

func TestVecAppendAndRead(t *testing.T) {
	iv := NewVec(types.I64)
	iv.AppendI64(7)
	iv.AppendI64(-3)
	if iv.Len() != 2 || iv.Slot(0).I != 7 || iv.Slot(1).I != -3 {
		t.Fatalf("int vec roundtrip: %+v", iv)
	}

	sv := NewVec(types.Str)
	sv.AppendStrBytes([]byte("hello"))
	sv.AppendStr("")
	sv.AppendStrBytes([]byte("wörld"))
	if sv.Str(0) != "hello" || sv.Str(1) != "" || sv.Str(2) != "wörld" {
		t.Fatalf("str vec roundtrip: %q %q %q", sv.Str(0), sv.Str(1), sv.Str(2))
	}
	if string(sv.RawStr(2)) != "wörld" {
		t.Fatalf("raw str: %q", sv.RawStr(2))
	}
	// Sealed strings must survive vector reuse (Reset + refill).
	kept := sv.Str(0)
	sv.Reset()
	sv.AppendStr("XXXXXXXX")
	if kept != "hello" {
		t.Fatalf("sealed string corrupted by reuse: %q", kept)
	}
}

func TestVecNulls(t *testing.T) {
	v := NewVec(types.Option(types.I64))
	if v.Kind != types.KindI64 || !v.Nullable {
		t.Fatalf("option vec: kind=%v nullable=%v", v.Kind, v.Nullable)
	}
	v.AppendI64(1)
	v.AppendNull()
	v.AppendI64(3)
	if v.IsNull(0) || !v.IsNull(1) || v.IsNull(2) {
		t.Fatal("null bitmap wrong")
	}
	if !v.Slot(1).IsNull() || v.Slot(2).I != 3 {
		t.Fatal("null slot readback wrong")
	}

	nv := NewVec(types.Null)
	nv.AppendUnit()
	if !nv.IsNull(0) || !nv.Slot(0).IsNull() {
		t.Fatal("all-null column must read null")
	}
}

func TestVecTruncate(t *testing.T) {
	v := NewVec(types.Option(types.Str))
	v.AppendStr("aa")
	v.AppendNull()
	v.AppendStr("ccc")
	v.Truncate(2)
	if v.Len() != 2 {
		t.Fatalf("len after truncate: %d", v.Len())
	}
	v.AppendStr("dd")
	if v.Str(2) != "dd" || v.Str(0) != "aa" {
		t.Fatalf("truncate+append: %q %q", v.Str(2), v.Str(0))
	}
	if !v.IsNull(1) || v.IsNull(2) {
		t.Fatal("null bits after truncate")
	}
	// Truncating across a null must clear the bit for the re-used row.
	v.Truncate(1)
	v.AppendStr("ee")
	if v.IsNull(1) {
		t.Fatal("truncate must clear null bit of rolled-back row")
	}
}

func TestVecDenseSet(t *testing.T) {
	v := NewVec(types.Str)
	v.Grow(5)
	// Writes at selected rows only (ascending), holes untouched.
	v.SetStr(1, "one")
	v.SetStr(3, "three")
	if v.Str(1) != "one" || v.Str(3) != "three" {
		t.Fatalf("dense set: %q %q", v.Str(1), v.Str(3))
	}

	f := NewVec(types.F64)
	f.Grow(3)
	f.SetF64(2, 2.5)
	if f.Slot(2).F != 2.5 {
		t.Fatal("dense f64 set")
	}

	o := NewVec(types.Option(types.I64))
	o.Grow(4)
	o.SetI64(0, 9)
	o.SetNull(2)
	if o.IsNull(0) || !o.IsNull(2) {
		t.Fatal("dense null set")
	}
}

func TestVecSetDispatch(t *testing.T) {
	v := NewVec(types.Option(types.I64))
	v.Grow(2)
	v.Set(0, rows.I64(42))
	v.Set(1, rows.Null())
	if v.Slot(0).I != 42 || !v.Slot(1).IsNull() {
		t.Fatal("Set dispatch wrong")
	}

	esc := NewVec(types.List(types.I64))
	if esc.Kind != types.KindAny {
		t.Fatalf("list column must use the escape kind, got %v", esc.Kind)
	}
	esc.Grow(1)
	esc.Set(0, rows.List([]rows.Slot{rows.I64(1), rows.I64(2)}))
	s := esc.Slot(0)
	if s.Tag != types.KindList || len(s.Seq) != 2 {
		t.Fatalf("escape slot roundtrip: %+v", s)
	}
}

func TestBatchBridges(t *testing.T) {
	a := NewVec(types.I64)
	b := NewVec(types.Str)
	for i := 0; i < 4; i++ {
		a.AppendI64(int64(i * 10))
		b.AppendStr(string(rune('a' + i)))
	}
	batch := &Batch{Cols: []*Vec{a, b}, N: 4}

	buf := make(rows.Row, 2)
	row := batch.ReadRow(2, buf)
	if row[0].I != 20 || row[1].S != "c" {
		t.Fatalf("ReadRow: %+v", row)
	}

	sel := []int32{0, 2, 3}
	got := batch.GatherRows(sel)
	if len(got) != 3 || got[1][0].I != 20 || got[2][1].S != "d" {
		t.Fatalf("GatherRows: %+v", got)
	}
	// Bulk backing must still give independent rows.
	got[0][0] = rows.I64(999)
	if got[1][0].I != 20 {
		t.Fatal("gathered rows alias each other")
	}

	if v := batch.BoxValue(1, 1); pyvalue.ToStr(v) != "b" {
		t.Fatalf("BoxValue: %v", v)
	}
}

func TestVecReuseAcrossBatches(t *testing.T) {
	v := NewVec(types.Option(types.Str))
	v.AppendStr("x")
	v.AppendNull()
	v.Reset()
	if v.Len() != 0 {
		t.Fatal("reset length")
	}
	v.AppendStr("fresh")
	if v.IsNull(0) {
		t.Fatal("null bit leaked across reset")
	}
	if v.Str(0) != "fresh" {
		t.Fatalf("reuse read: %q", v.Str(0))
	}
}

func TestSealedStringsSurviveBufferReuse(t *testing.T) {
	// Seal returns aliasing views of the bytes buffer; Reset must donate
	// an aliased buffer to its strings rather than rewrite it in place.
	v := NewVec(types.Str)
	v.AppendStr("alpha")
	v.AppendStr("beta")
	a, b := v.Str(0), v.Str(1)
	v.Reset()
	v.AppendStr("XXXXXXXXXX") // would overwrite "alphabeta" if shared
	if a != "alpha" || b != "beta" {
		t.Fatalf("sealed strings corrupted by reuse: %q, %q", a, b)
	}
	if v.Str(0) != "XXXXXXXXXX" {
		t.Fatalf("post-reset read: %q", v.Str(0))
	}
}

func TestSealAfterAppendExtends(t *testing.T) {
	// Appends after a seal must be visible through a re-seal while the
	// earlier view stays intact.
	v := NewVec(types.Str)
	v.AppendStr("one")
	first := v.Str(0)
	v.AppendStr("two")
	if v.Str(1) != "two" || first != "one" {
		t.Fatalf("re-seal views: %q, %q", first, v.Str(1))
	}
	// Unsealed batches (no string reads) keep reusing their buffer.
	w := NewVec(types.Str)
	w.AppendStr("abc")
	before := cap(w.Bytes)
	w.Reset()
	if cap(w.Bytes) != before {
		t.Fatal("unsealed reset should keep the buffer")
	}
}
