// Package colvec implements the columnar batch representation of the
// normal-case data plane: Arrow-style column vectors with typed Go
// slices per column, null bitmaps, and offset+bytes string storage.
//
// A Vec holds one column of a batch with *dense absolute indexing*:
// every vector in a batch has the batch's full row count, and a
// selection vector (a []int32 of surviving row indices) tracks which
// rows are still live. Filters shrink the selection instead of copying
// columns; derived columns (withColumn/map kernels) are written only at
// selected positions, leaving holes that are never read. This is the Go
// analog of Tuplex's flat-tuple normal-case memory layout, batched: the
// CSV chunk parser appends one cell per column per row with zero
// per-cell boxing, and batch UDF kernels loop over vectors a chunk at a
// time.
//
// String cells live as offset+length pairs into a shared Bytes buffer.
// Reading a cell as a Go string goes through Seal(), which takes an
// immutable aliasing view of the buffer (no copy); individual cells are
// then substrings of that view. Rendering a cell to CSV reads the raw
// bytes and never seals.
package colvec

import (
	"unsafe"

	"github.com/gotuplex/tuplex/internal/pyvalue"
	"github.com/gotuplex/tuplex/internal/rows"
	"github.com/gotuplex/tuplex/internal/types"
)

// Bitmap is a dense bit set marking null rows of one vector.
type Bitmap []uint64

// Set marks bit i (growing the bitmap as needed).
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

// Get reports bit i.
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

// Reset clears all bits, keeping capacity.
func (b *Bitmap) Reset() {
	for i := range *b {
		(*b)[i] = 0
	}
}

// truncate clears bits at positions >= n.
func (b Bitmap) truncate(n int) {
	w := n >> 6
	if w >= len(b) {
		return
	}
	b[w] &= (1 << (uint(n) & 63)) - 1
	for i := w + 1; i < len(b); i++ {
		b[i] = 0
	}
}

// Vec is one column vector. Exactly one payload family is in use,
// selected by Kind (the unwrapped value kind of the column):
//
//   - KindBool → B
//   - KindI64  → I
//   - KindF64  → F
//   - KindStr  → Off/SLen into Bytes
//   - KindNull → no payload (all-null column)
//   - anything else → Slots (boxed escape hatch: lists, tuples, dicts)
//
// Nulls, when non-nil bits are set, marks rows whose payload slot is
// meaningless (Option columns). All payload slices are indexed by
// absolute batch row position.
type Vec struct {
	Kind types.Kind
	// Nullable records that the column's static type admits nulls; the
	// bitmap is consulted only when Nullable is true.
	Nullable bool
	Nulls    Bitmap

	n int // logical length

	B     []bool
	I     []int64
	F     []float64
	Off   []uint32
	SLen  []uint32
	Bytes []byte
	Slots []rows.Slot

	// sealed is the immutable string view of Bytes[:sealLen]; cells read
	// as Go strings substring it. The view aliases Bytes without
	// copying: appends past sealLen never rewrite sealed bytes, and
	// Reset donates an aliased buffer to its strings (the vector takes a
	// fresh one) instead of rewriting it.
	sealed  string
	sealLen int
	donated bool
}

// NewVec returns a vector for the given column type (Option unwraps to
// its element with Nullable set) with capacity hints applied lazily by
// append growth.
func NewVec(t types.Type) *Vec {
	v := &Vec{}
	v.Retype(t)
	return v
}

// Retype resets the vector for a (possibly different) column type.
func (v *Vec) Retype(t types.Type) {
	k := t.Kind()
	nullable := false
	if k == types.KindOption {
		nullable = true
		k = t.Elem().Kind()
	}
	switch k {
	case types.KindBool, types.KindI64, types.KindF64, types.KindStr, types.KindNull:
	default:
		k = types.KindAny // boxed escape hatch
	}
	v.Kind = k
	v.Nullable = nullable
	v.Reset()
}

// Len reports the logical row count.
func (v *Vec) Len() int { return v.n }

// Reset empties the vector, keeping capacity for reuse across batches.
func (v *Vec) Reset() {
	v.n = 0
	v.B = v.B[:0]
	v.I = v.I[:0]
	v.F = v.F[:0]
	v.Off = v.Off[:0]
	v.SLen = v.SLen[:0]
	if v.donated {
		// Sealed strings from the previous batch alias this buffer;
		// rewriting it from offset 0 would corrupt them. Leave it to
		// them and start fresh at the same capacity.
		v.Bytes = make([]byte, 0, cap(v.Bytes))
		v.donated = false
	} else {
		v.Bytes = v.Bytes[:0]
	}
	v.Slots = v.Slots[:0]
	v.Nulls.Reset()
	v.sealed = ""
	v.sealLen = 0
}

// Grow extends the vector's payload storage to length n (dense derived
// columns write at absolute positions; holes stay zero and unread).
func (v *Vec) Grow(n int) {
	v.n = n
	switch v.Kind {
	case types.KindBool:
		v.B = growTo(v.B, n)
	case types.KindI64:
		v.I = growTo(v.I, n)
	case types.KindF64:
		v.F = growTo(v.F, n)
	case types.KindStr:
		v.Off = growTo(v.Off, n)
		v.SLen = growTo(v.SLen, n)
	case types.KindNull:
	default:
		v.Slots = growTo(v.Slots, n)
	}
}

func growTo[T any](s []T, n int) []T {
	if cap(s) < n {
		ns := make([]T, n)
		copy(ns, s[:len(s)])
		return ns
	}
	s = s[:n]
	return s
}

// Truncate rolls the vector back to n rows (parser rollback after a
// rejected record).
func (v *Vec) Truncate(n int) {
	if n >= v.n {
		return
	}
	v.n = n
	switch v.Kind {
	case types.KindBool:
		v.B = v.B[:n]
	case types.KindI64:
		v.I = v.I[:n]
	case types.KindF64:
		v.F = v.F[:n]
	case types.KindStr:
		if len(v.Off) > n {
			v.Bytes = v.Bytes[:v.Off[n]]
		}
		v.Off = v.Off[:n]
		v.SLen = v.SLen[:n]
	case types.KindNull:
	default:
		v.Slots = v.Slots[:n]
	}
	v.Nulls.truncate(n)
}

// ---- Append building (source parse: rows arrive in order) ----

// AppendNull appends a null cell (payload slot zeroed).
func (v *Vec) AppendNull() {
	v.Nulls.Set(v.n)
	v.Nullable = true
	switch v.Kind {
	case types.KindBool:
		v.B = append(v.B, false)
	case types.KindI64:
		v.I = append(v.I, 0)
	case types.KindF64:
		v.F = append(v.F, 0)
	case types.KindStr:
		v.Off = append(v.Off, uint32(len(v.Bytes)))
		v.SLen = append(v.SLen, 0)
	case types.KindNull:
	default:
		v.Slots = append(v.Slots, rows.Null())
	}
	v.n++
}

// AppendBool appends a bool cell.
func (v *Vec) AppendBool(b bool) {
	v.B = append(v.B, b)
	v.n++
}

// AppendI64 appends an integer cell.
func (v *Vec) AppendI64(x int64) {
	v.I = append(v.I, x)
	v.n++
}

// AppendF64 appends a float cell.
func (v *Vec) AppendF64(f float64) {
	v.F = append(v.F, f)
	v.n++
}

// AppendStrBytes appends a string cell by copying raw bytes into the
// shared buffer — the zero-boxing parse path.
func (v *Vec) AppendStrBytes(b []byte) {
	v.Off = append(v.Off, uint32(len(v.Bytes)))
	v.SLen = append(v.SLen, uint32(len(b)))
	v.Bytes = append(v.Bytes, b...)
	v.n++
}

// AppendStr appends a string cell from a Go string.
func (v *Vec) AppendStr(s string) {
	v.Off = append(v.Off, uint32(len(v.Bytes)))
	v.SLen = append(v.SLen, uint32(len(s)))
	v.Bytes = append(v.Bytes, s...)
	v.n++
}

// AppendUnit appends a cell to a no-payload (all-null kind) vector.
func (v *Vec) AppendUnit() { v.n++ }

// AppendSlot appends an arbitrary slot cell, dispatching on the vector
// kind (the slot-source ingest and join-gather paths; the engine only
// routes type-conforming slots here, everything else goes through the
// escape column).
func (v *Vec) AppendSlot(s rows.Slot) {
	if s.Tag == types.KindNull {
		v.AppendNull()
		return
	}
	switch v.Kind {
	case types.KindBool:
		v.AppendBool(s.B)
	case types.KindI64:
		v.AppendI64(s.I)
	case types.KindF64:
		v.AppendF64(s.F)
	case types.KindStr:
		v.AppendStr(s.S)
	case types.KindNull:
		v.AppendUnit()
	default:
		v.Slots = append(v.Slots, s)
		v.n++
	}
}

// AppendFrom appends cell i of src — the vector-to-vector gather used by
// the join kernel. Same-kind cells copy typed payloads directly (string
// bytes move buffer-to-buffer without materializing a Go string); a kind
// mismatch falls back to the slot path.
func (v *Vec) AppendFrom(src *Vec, i int) {
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	if v.Kind == src.Kind {
		switch v.Kind {
		case types.KindBool:
			v.AppendBool(src.B[i])
		case types.KindI64:
			v.AppendI64(src.I[i])
		case types.KindF64:
			v.AppendF64(src.F[i])
		case types.KindStr:
			v.AppendStrBytes(src.RawStr(i))
		case types.KindNull:
			v.AppendUnit()
		default:
			v.Slots = append(v.Slots, src.Slots[i])
			v.n++
		}
		return
	}
	v.AppendSlot(src.Slot(i))
}

// ---- Dense absolute writes (derived kernel outputs) ----

// SetNull marks row i null.
func (v *Vec) SetNull(i int) {
	v.Nullable = true
	v.Nulls.Set(i)
}

// SetBool writes a bool at row i.
func (v *Vec) SetBool(i int, b bool) { v.B[i] = b }

// SetI64 writes an integer at row i.
func (v *Vec) SetI64(i int, x int64) { v.I[i] = x }

// SetF64 writes a float at row i.
func (v *Vec) SetF64(i int, f float64) { v.F[i] = f }

// SetStr writes a string at row i. Bytes append in write order; rows
// must be written in ascending order within a batch (kernels iterate
// the selection vector, which is ascending).
func (v *Vec) SetStr(i int, s string) {
	v.Off[i] = uint32(len(v.Bytes))
	v.SLen[i] = uint32(len(s))
	v.Bytes = append(v.Bytes, s...)
}

// SetSlot writes an escape-hatch boxed slot at row i.
func (v *Vec) SetSlot(i int, s rows.Slot) { v.Slots[i] = s }

// ---- Reading ----

// IsNull reports whether row i is null.
func (v *Vec) IsNull(i int) bool {
	return v.Kind == types.KindNull || (v.Nullable && v.Nulls.Get(i))
}

// AllValid reports that no row of the vector is null, scanning the
// bitmap a word at a time. Batch kernels consult it once per batch to
// dispatch to inner-loop variants with the per-cell null check elided.
func (v *Vec) AllValid() bool {
	if v.Kind == types.KindNull {
		return false
	}
	if !v.Nullable {
		return true
	}
	words := (v.n + 63) >> 6
	if words > len(v.Nulls) {
		words = len(v.Nulls)
	}
	for _, w := range v.Nulls[:words] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Seal refreshes the immutable string view of the bytes buffer. The
// view aliases the buffer — no copy, no allocation. Safe because the
// buffer is append-only within a batch (later appends either extend
// past sealLen or relocate the array, leaving sealed bytes untouched),
// and Reset hands an aliased buffer over to its strings for good.
func (v *Vec) Seal() {
	if v.sealLen != len(v.Bytes) {
		v.sealed = unsafe.String(&v.Bytes[0], len(v.Bytes))
		v.sealLen = len(v.Bytes)
		v.donated = true
	}
}

// Str returns row i as a Go string (substring of the sealed buffer — no
// per-cell allocation).
func (v *Vec) Str(i int) string {
	v.Seal()
	off := v.Off[i]
	return v.sealed[off : off+v.SLen[i]]
}

// RawStr returns row i's string bytes without sealing (CSV rendering).
func (v *Vec) RawStr(i int) []byte {
	off := v.Off[i]
	return v.Bytes[off : off+v.SLen[i]]
}

// Slot returns row i as an unboxed slot (strings via the sealed view).
func (v *Vec) Slot(i int) rows.Slot {
	if v.IsNull(i) {
		return rows.Null()
	}
	switch v.Kind {
	case types.KindBool:
		return rows.Bool(v.B[i])
	case types.KindI64:
		return rows.I64(v.I[i])
	case types.KindF64:
		return rows.F64(v.F[i])
	case types.KindStr:
		return rows.Str(v.Str(i))
	case types.KindNull:
		return rows.Null()
	default:
		return v.Slots[i]
	}
}

// Set writes an arbitrary slot at row i, dispatching on the vector
// kind. A null slot sets the bitmap; a slot whose tag does not match a
// typed payload falls back to the escape column only when the vector is
// an escape vector — otherwise it is a programming error caught by the
// differential suites (the engine only routes type-conforming results
// here).
func (v *Vec) Set(i int, s rows.Slot) {
	if s.Tag == types.KindNull {
		if v.Kind != types.KindNull {
			v.SetNull(i)
		}
		return
	}
	switch v.Kind {
	case types.KindBool:
		v.SetBool(i, s.B)
	case types.KindI64:
		v.SetI64(i, s.I)
	case types.KindF64:
		v.SetF64(i, s.F)
	case types.KindStr:
		v.SetStr(i, s.S)
	case types.KindNull:
	default:
		v.SetSlot(i, s)
	}
}

// Batch is one chunk's worth of rows in columnar form.
type Batch struct {
	Cols []*Vec
	// N is the batch row count (every vector's dense length).
	N int
}

// Slot returns cell (row, col) as an unboxed slot.
func (b *Batch) Slot(row, col int) rows.Slot { return b.Cols[col].Slot(row) }

// ReadRow gathers row i into buf (batch→row bridge for the exception
// path, the boxed program, and row-at-a-time op suffixes). buf must
// have length >= len(b.Cols).
func (b *Batch) ReadRow(i int, buf rows.Row) rows.Row {
	out := buf[:len(b.Cols)]
	for c, v := range b.Cols {
		out[c] = v.Slot(i)
	}
	return out
}

// GatherRows materializes the selected rows as []rows.Row with a single
// bulk backing allocation (the columnar collect/materialize terminal).
// Strings are substrings of each column's sealed buffer.
func (b *Batch) GatherRows(sel []int32) []rows.Row {
	nc := len(b.Cols)
	backing := make([]rows.Slot, len(sel)*nc)
	out := make([]rows.Row, len(sel))
	for oi, ri := range sel {
		row := backing[oi*nc : (oi+1)*nc : (oi+1)*nc]
		for c, v := range b.Cols {
			row[c] = v.Slot(int(ri))
		}
		out[oi] = row
	}
	return out
}

// BoxValue boxes cell (row, col) for the boxed paths.
func (b *Batch) BoxValue(row, col int) pyvalue.Value {
	return b.Cols[col].Slot(row).Value()
}
