package interp

import (
	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

// evalCall dispatches function and method calls: builtins, module
// functions (re, random, string) and methods on values.
func (e *env) evalCall(call *pyast.Call) (pyvalue.Value, error) {
	// Method or module-function call: obj.name(...).
	if attr, ok := call.Fn.(*pyast.Attr); ok {
		if mod, ok := attr.X.(*pyast.Name); ok && isModuleName(mod.Ident) {
			if _, shadowed := e.vars[mod.Ident]; !shadowed {
				args, err := e.evalAll(call.Args)
				if err != nil {
					return nil, err
				}
				return e.callModule(mod.Ident, attr.Name, args)
			}
		}
		recv, err := e.eval(attr.X)
		if err != nil {
			return nil, err
		}
		args, err := e.evalAll(call.Args)
		if err != nil {
			return nil, err
		}
		return pyvalue.CallMethod(recv, attr.Name, args)
	}

	name, ok := call.Fn.(*pyast.Name)
	if !ok {
		// Calling a computed expression: evaluate and call if callable.
		fnv, err := e.eval(call.Fn)
		if err != nil {
			return nil, err
		}
		return e.callValue(fnv, call)
	}
	// A local or global binding shadows builtins.
	if v, bound := e.vars[name.Ident]; bound {
		return e.callValue(v, call)
	}
	if v, bound := e.ip.Globals[name.Ident]; bound {
		if _, isFunc := v.(*pyvalue.Func); isFunc {
			return e.callValue(v, call)
		}
	}
	args, err := e.evalAll(call.Args)
	if err != nil {
		return nil, err
	}
	return e.callBuiltin(name.Ident, args, call)
}

func (e *env) callValue(fnv pyvalue.Value, call *pyast.Call) (pyvalue.Value, error) {
	f, ok := fnv.(*pyvalue.Func)
	if !ok {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "%q object is not callable", pyvalue.TypeName(fnv))
	}
	args, err := e.evalAll(call.Args)
	if err != nil {
		return nil, err
	}
	return f.Call(args)
}

func isModuleName(n string) bool {
	return n == "re" || n == "random" || n == "string" || n == "math"
}

func (e *env) callModule(mod, fn string, args []pyvalue.Value) (pyvalue.Value, error) {
	switch mod + "." + fn {
	case "re.search":
		return e.reSearch(args)
	case "re.sub":
		return e.reSub(args)
	case "re.match":
		return e.reMatch(args)
	case "random.choice":
		return e.randomChoice(args)
	case "string.capwords":
		if len(args) != 1 {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "capwords() takes 1 argument")
		}
		s, ok := args[0].(pyvalue.Str)
		if !ok {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "capwords() argument must be str")
		}
		return pyvalue.Str(pyvalue.Capwords(string(s))), nil
	case "math.floor":
		f, err := pyvalue.ToFloat(args[0])
		if err != nil {
			return nil, err
		}
		return pyvalue.FloorDiv(f, pyvalue.Int(1))
	default:
		return nil, pyvalue.Raise(pyvalue.ExcAttributeError, "module %q has no attribute %q", mod, fn)
	}
}

func twoStrArgs(what string, args []pyvalue.Value) (string, string, error) {
	if len(args) != 2 {
		return "", "", pyvalue.Raise(pyvalue.ExcTypeError, "%s takes 2 arguments (%d given)", what, len(args))
	}
	a, ok := args[0].(pyvalue.Str)
	if !ok {
		return "", "", pyvalue.Raise(pyvalue.ExcTypeError, "%s: expected string, got %s", what, pyvalue.TypeName(args[0]))
	}
	b, ok := args[1].(pyvalue.Str)
	if !ok {
		return "", "", pyvalue.Raise(pyvalue.ExcTypeError, "%s: expected string, got %s", what, pyvalue.TypeName(args[1]))
	}
	return string(a), string(b), nil
}

func (e *env) reSearch(args []pyvalue.Value) (pyvalue.Value, error) {
	pat, s, err := twoStrArgs("re.search()", args)
	if err != nil {
		return nil, err
	}
	re, err := e.ip.Regexp(pat)
	if err != nil {
		return nil, err
	}
	saves := re.Search(s)
	if saves == nil {
		return pyvalue.None{}, nil
	}
	return matchValue(s, saves), nil
}

func (e *env) reMatch(args []pyvalue.Value) (pyvalue.Value, error) {
	pat, s, err := twoStrArgs("re.match()", args)
	if err != nil {
		return nil, err
	}
	re, err := e.ip.Regexp(pat)
	if err != nil {
		return nil, err
	}
	saves := re.MatchPrefix(s)
	if saves == nil {
		return pyvalue.None{}, nil
	}
	return matchValue(s, saves), nil
}

func matchValue(s string, saves []int) *pyvalue.Match {
	n := len(saves) / 2
	m := &pyvalue.Match{Groups: make([]string, n), Present: make([]bool, n)}
	for i := range n {
		if saves[2*i] >= 0 {
			m.Groups[i] = s[saves[2*i]:saves[2*i+1]]
			m.Present[i] = true
		}
	}
	return m
}

func (e *env) reSub(args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) != 3 {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "re.sub() takes 3 arguments (%d given)", len(args))
	}
	pat, ok := args[0].(pyvalue.Str)
	if !ok {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "re.sub(): pattern must be str")
	}
	repl, ok := args[1].(pyvalue.Str)
	if !ok {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "re.sub(): repl must be str")
	}
	s, ok := args[2].(pyvalue.Str)
	if !ok {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "expected string or bytes-like object")
	}
	re, err := e.ip.Regexp(string(pat))
	if err != nil {
		return nil, err
	}
	return pyvalue.Str(re.Sub(string(repl), string(s))), nil
}

func (e *env) randomChoice(args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) != 1 {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "choice() takes 1 argument")
	}
	switch a := args[0].(type) {
	case pyvalue.Str:
		if len(a) == 0 {
			return nil, pyvalue.Raise(pyvalue.ExcIndexError, "Cannot choose from an empty sequence")
		}
		return pyvalue.Str(e.ip.Rand.Choice(string(a))), nil
	case *pyvalue.List:
		if len(a.Items) == 0 {
			return nil, pyvalue.Raise(pyvalue.ExcIndexError, "Cannot choose from an empty sequence")
		}
		return a.Items[e.ip.Rand.Intn(len(a.Items))], nil
	case *pyvalue.Tuple:
		if len(a.Items) == 0 {
			return nil, pyvalue.Raise(pyvalue.ExcIndexError, "Cannot choose from an empty sequence")
		}
		return a.Items[e.ip.Rand.Intn(len(a.Items))], nil
	default:
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "choice() argument must be a sequence")
	}
}

func (e *env) callBuiltin(name string, args []pyvalue.Value, call *pyast.Call) (pyvalue.Value, error) {
	switch name {
	case "len":
		if len(args) != 1 {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "len() takes exactly one argument (%d given)", len(args))
		}
		return pyvalue.Len(args[0])
	case "int":
		if len(args) == 0 {
			return pyvalue.Int(0), nil
		}
		return pyvalue.ToInt(args[0])
	case "float":
		if len(args) == 0 {
			return pyvalue.Float(0), nil
		}
		return pyvalue.ToFloat(args[0])
	case "str":
		if len(args) == 0 {
			return pyvalue.Str(""), nil
		}
		return pyvalue.Str(pyvalue.ToStr(args[0])), nil
	case "bool":
		if len(args) == 0 {
			return pyvalue.Bool(false), nil
		}
		return pyvalue.Bool(pyvalue.Truth(args[0])), nil
	case "abs":
		if len(args) != 1 {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "abs() takes exactly one argument")
		}
		return pyvalue.Abs(args[0])
	case "min":
		return pyvalue.MinMax(args, false)
	case "max":
		return pyvalue.MinMax(args, true)
	case "round":
		if len(args) == 0 {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "round() missing required argument")
		}
		var nd *int64
		rest := args[1:]
		// round(x, ndigits=...) keyword form.
		for i, kw := range call.KwNames {
			if kw == "ndigits" {
				v, err := e.eval(call.KwArgs[i])
				if err != nil {
					return nil, err
				}
				rest = append(rest, v)
			}
		}
		if len(rest) >= 1 {
			if n, ok := rest[0].(pyvalue.Int); ok {
				x := int64(n)
				nd = &x
			}
		}
		return pyvalue.Round(args[0], nd)
	case "range":
		return rangeValues(args)
	case "ord":
		s, ok := args[0].(pyvalue.Str)
		if !ok || len(s) != 1 {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "ord() expected a character")
		}
		return pyvalue.Int(s[0]), nil
	case "chr":
		n, ok := args[0].(pyvalue.Int)
		if !ok {
			return nil, pyvalue.Raise(pyvalue.ExcTypeError, "an integer is required")
		}
		if n < 0 || n > 127 {
			return nil, pyvalue.Raise(pyvalue.ExcValueError, "chr() arg not in supported range")
		}
		return pyvalue.Str(string(rune(n))), nil
	case "sorted":
		return sortedBuiltin(args)
	case "sum":
		return sumBuiltin(args)
	// Module functions imported under flat aliases, as the paper's
	// pipelines do (`from random import choice as random_choice`).
	case "re_search":
		return e.reSearch(args)
	case "re_sub":
		return e.reSub(args)
	case "re_match":
		return e.reMatch(args)
	case "random_choice":
		return e.randomChoice(args)
	case "string_capwords":
		return e.callModule("string", "capwords", args)
	default:
		return nil, pyvalue.Raise(pyvalue.ExcNameError, "name %q is not defined", name)
	}
}

func rangeValues(args []pyvalue.Value) (pyvalue.Value, error) {
	var start, stop, step int64 = 0, 0, 1
	get := func(v pyvalue.Value) (int64, error) {
		n, ok := v.(pyvalue.Int)
		if !ok {
			if b, isBool := v.(pyvalue.Bool); isBool {
				if b {
					return 1, nil
				}
				return 0, nil
			}
			return 0, pyvalue.Raise(pyvalue.ExcTypeError,
				"%q object cannot be interpreted as an integer", pyvalue.TypeName(v))
		}
		return int64(n), nil
	}
	var err error
	switch len(args) {
	case 1:
		stop, err = get(args[0])
	case 2:
		if start, err = get(args[0]); err == nil {
			stop, err = get(args[1])
		}
	case 3:
		if start, err = get(args[0]); err == nil {
			if stop, err = get(args[1]); err == nil {
				step, err = get(args[2])
			}
		}
	default:
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "range expected 1 to 3 arguments, got %d", len(args))
	}
	if err != nil {
		return nil, err
	}
	if step == 0 {
		return nil, pyvalue.Raise(pyvalue.ExcValueError, "range() arg 3 must not be zero")
	}
	out := &pyvalue.List{}
	if step > 0 {
		for i := start; i < stop; i += step {
			out.Items = append(out.Items, pyvalue.Int(i))
		}
	} else {
		for i := start; i > stop; i += step {
			out.Items = append(out.Items, pyvalue.Int(i))
		}
	}
	return out, nil
}

func sortedBuiltin(args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) != 1 {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "sorted expected 1 argument, got %d", len(args))
	}
	items, err := Iterate(args[0])
	if err != nil {
		return nil, err
	}
	out := append([]pyvalue.Value(nil), items...)
	// Insertion sort with Python comparison semantics (raises on
	// unorderable pairs); n is small in UDF usage.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			lt, err := pyvalue.Compare("<", out[j], out[j-1])
			if err != nil {
				return nil, err
			}
			if !pyvalue.Truth(lt) {
				break
			}
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return &pyvalue.List{Items: out}, nil
}

func sumBuiltin(args []pyvalue.Value) (pyvalue.Value, error) {
	if len(args) < 1 || len(args) > 2 {
		return nil, pyvalue.Raise(pyvalue.ExcTypeError, "sum expected 1 or 2 arguments")
	}
	items, err := Iterate(args[0])
	if err != nil {
		return nil, err
	}
	var acc pyvalue.Value = pyvalue.Int(0)
	if len(args) == 2 {
		acc = args[1]
	}
	for _, it := range items {
		acc, err = pyvalue.Add(acc, it)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
