package interp

import (
	"testing"

	"github.com/gotuplex/tuplex/internal/pyast"
	"github.com/gotuplex/tuplex/internal/pyvalue"
)

func TestInterpBitwise(t *testing.T) {
	wantEq(t, evalOK(t, "lambda a, b: a & b", pyvalue.Int(12), pyvalue.Int(10)), pyvalue.Int(8))
	wantEq(t, evalOK(t, "lambda a, b: a | b", pyvalue.Int(12), pyvalue.Int(10)), pyvalue.Int(14))
	wantEq(t, evalOK(t, "lambda a, b: a ^ b", pyvalue.Int(12), pyvalue.Int(10)), pyvalue.Int(6))
	wantEq(t, evalOK(t, "lambda a: a << 2", pyvalue.Int(3)), pyvalue.Int(12))
	wantEq(t, evalOK(t, "lambda a: a >> 1", pyvalue.Int(5)), pyvalue.Int(2))
	wantEq(t, evalOK(t, "lambda a: ~a", pyvalue.Int(5)), pyvalue.Int(-6))
	wantEq(t, evalOK(t, "lambda a: +a", pyvalue.Int(-5)), pyvalue.Int(-5))
}

func TestInterpTupleTargetForLoop(t *testing.T) {
	src := `def f(x):
    total = 0
    for a, b in x:
        total += a * b
    return total
`
	pairs := &pyvalue.List{Items: []pyvalue.Value{
		&pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(2), pyvalue.Int(3)}},
		&pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(4), pyvalue.Int(5)}},
	}}
	wantEq(t, evalOK(t, src, pairs), pyvalue.Int(26))
}

func TestInterpIterateString(t *testing.T) {
	src := `def f(s):
    out = ''
    for ch in s:
        out = ch + out
    return out
`
	wantEq(t, evalOK(t, src, pyvalue.Str("abc")), pyvalue.Str("cba"))
}

func TestInterpUnpackMismatchRaises(t *testing.T) {
	src := `def f(x):
    a, b, c = x
    return a
`
	_, err := runUDF(t, src, &pyvalue.Tuple{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Int(2)}})
	if pyvalue.KindOf(err) != pyvalue.ExcValueError {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpListCompWithCondition(t *testing.T) {
	v := evalOK(t, "lambda s: [c for c in s if c != '-']", pyvalue.Str("a-b-c"))
	l := v.(*pyvalue.List)
	if len(l.Items) != 3 {
		t.Fatalf("got %s", pyvalue.Repr(v))
	}
}

func TestInterpCompiledForLoopOverList(t *testing.T) {
	src := `def f(x):
    out = 0
    for v in x:
        if v > 2:
            break
        out += v
    return out
`
	fn, _ := pyast.ParseUDF(src)
	ip := New(nil)
	compiled, err := ip.Compile(fn)
	if err != nil {
		t.Fatal(err)
	}
	arg := &pyvalue.List{Items: []pyvalue.Value{pyvalue.Int(1), pyvalue.Int(2), pyvalue.Int(5), pyvalue.Int(9)}}
	v, err := compiled.Call(ip, []pyvalue.Value{arg})
	if err != nil {
		t.Fatal(err)
	}
	wantEq(t, v, pyvalue.Int(3))
}

func TestInterpCompiledWhile(t *testing.T) {
	src := `def f(n):
    i = 1
    while i < n:
        i = i * 2
    return i
`
	fn, _ := pyast.ParseUDF(src)
	ip := New(nil)
	compiled, err := ip.Compile(fn)
	if err != nil {
		t.Fatal(err)
	}
	v, err := compiled.Call(ip, []pyvalue.Value{pyvalue.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	wantEq(t, v, pyvalue.Int(128))
}

func TestInterpCompiledSubscriptAssign(t *testing.T) {
	src := `def f(n):
    out = [0, 0]
    out[1] = n
    return out[1]
`
	fn, _ := pyast.ParseUDF(src)
	ip := New(nil)
	compiled, err := ip.Compile(fn)
	if err != nil {
		t.Fatal(err)
	}
	v, err := compiled.Call(ip, []pyvalue.Value{pyvalue.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	wantEq(t, v, pyvalue.Int(9))
}

func TestInterpReturnNoneImplicit(t *testing.T) {
	src := `def f(x):
    y = x + 1
`
	wantEq(t, evalOK(t, src, pyvalue.Int(1)), pyvalue.None{})
	src2 := `def f(x):
    return
`
	wantEq(t, evalOK(t, src2, pyvalue.Int(1)), pyvalue.None{})
}

func TestInterpArityError(t *testing.T) {
	_, err := runUDF(t, "lambda a, b: a", pyvalue.Int(1))
	if pyvalue.KindOf(err) != pyvalue.ExcTypeError {
		t.Fatalf("err = %v", err)
	}
}

func TestTracedBailsOnUnsupported(t *testing.T) {
	// A UDF the closure compiler rejects keeps running interpreted
	// forever (the blackhole), still correct.
	fn, _ := pyast.ParseUDF("lambda x: x + 1")
	ip := New(nil)
	tr := NewTraced(ip, fn, 1)
	for i := range 5 {
		v, err := tr.Call([]pyvalue.Value{pyvalue.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		wantEq(t, v, pyvalue.Int(int64(i+1)))
	}
}

func TestInterpChainedStringMethodsOnNone(t *testing.T) {
	_, err := runUDF(t, "lambda x: x.strip().lower()", pyvalue.None{})
	if pyvalue.KindOf(err) != pyvalue.ExcAttributeError {
		t.Fatalf("err = %v", err)
	}
}

func TestInterpDictIteration(t *testing.T) {
	d := pyvalue.NewDict()
	d.Set("b", pyvalue.Int(1))
	d.Set("a", pyvalue.Int(2))
	src := `def f(d):
    out = ''
    for k in d:
        out += k
    return out
`
	// Iteration follows insertion order like Python 3.7+.
	wantEq(t, evalOK(t, src, d), pyvalue.Str("ba"))
}
